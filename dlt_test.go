package dlt

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestFacadeRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 21 {
		t.Fatalf("registry = %d experiments, want 21", len(exps))
	}
	e, err := ExperimentByID("E1")
	if err != nil || e.ID != "E1" {
		t.Fatalf("ExperimentByID: %+v %v", e, err)
	}
	if _, err := ExperimentByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunExperimentRenders(t *testing.T) {
	var sb strings.Builder
	if err := RunExperiment(context.Background(), "E1", Config{Seed: 3, Scale: 0.2}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "genesis") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if err := RunExperiment(context.Background(), "E99", Config{}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// The facade scheduler must run the registry concurrently and report
// per-experiment results in registry order.
func TestFacadeRunAll(t *testing.T) {
	report, err := RunAll(Config{Seed: 5, Scale: 0.05}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Runs) != 21 {
		t.Fatalf("sweep ran %d/21 experiments", len(report.Runs))
	}
	for i, r := range report.Runs {
		if r.Experiment.ID != Experiments()[i].ID {
			t.Fatalf("run %d is %s, want registry order", i, r.Experiment.ID)
		}
		if r.Table == nil || r.Err != nil {
			t.Fatalf("%s: table=%v err=%v", r.Experiment.ID, r.Table, r.Err)
		}
	}
	var sb strings.Builder
	if err := report.Table().Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "speedup=") {
		t.Fatalf("timing table missing speedup note:\n%s", sb.String())
	}
}

func TestFacadeParadigms(t *testing.T) {
	if Blockchain.String() != "blockchain" || DAG.String() != "dag" {
		t.Fatal("paradigm re-export broken")
	}
}

// The facade constructors must build runnable networks end to end.
func TestFacadeNetworks(t *testing.T) {
	btc, err := NewBitcoinNetwork(BitcoinConfig{
		Net:           NetParams{Nodes: 6, PeerDegree: 2, Seed: 1, MinLatency: 10 * time.Millisecond, MaxLatency: 40 * time.Millisecond},
		BlockInterval: 20 * time.Second,
		Accounts:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := btc.Run(3 * time.Minute); m.BlocksOnMain == 0 {
		t.Fatal("bitcoin facade produced no blocks")
	}

	eth, err := NewEthereumNetwork(EthereumConfig{
		Net:       NetParams{Nodes: 6, PeerDegree: 2, Seed: 2, MinLatency: 10 * time.Millisecond, MaxLatency: 40 * time.Millisecond},
		Consensus: PoS,
		Accounts:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := eth.Run(2 * time.Minute); m.BlocksOnMain == 0 {
		t.Fatal("ethereum facade produced no blocks")
	}

	nano, err := NewNanoNetwork(NanoConfig{
		Net:      NetParams{Nodes: 6, PeerDegree: 2, Seed: 3, MinLatency: 10 * time.Millisecond, MaxLatency: 40 * time.Millisecond},
		Accounts: 12,
		Reps:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	transfers := []workload.TimedPayment{
		{At: time.Second, Payment: workload.Payment{From: 1, To: 2, Amount: 5}},
		{At: 2 * time.Second, Payment: workload.Payment{From: 3, To: 4, Amount: 5}},
	}
	m := nano.RunWithTransfers(20*time.Second, transfers)
	if m.SettledAtObserver != 2 {
		t.Fatalf("nano facade settled %d/2 transfers", m.SettledAtObserver)
	}
}
