package main

import (
	"strings"
	"testing"
	"time"
)

// Out-of-range adversary knobs must be rejected with the flag name in
// the message, and every in-range value — bounds included where legal —
// must pass. Before validateKnobs, a -eclipse-frac 1.5 silently fell
// back to the default sweep.
func TestValidateKnobs(t *testing.T) {
	if err := validateKnobs(knobRanges{}); err != nil {
		t.Fatalf("zero knobs rejected: %v", err)
	}
	if err := validateKnobs(knobRanges{
		eclipseFrac: 1, selfishAlpha: 0.45, selfishGamma: 1,
		withholdWeight: 1, partitionFrac: 0.5, churnNodes: 3, dsTrials: 10,
		syncPullBatch: 65536, backlogCap: 1 << 20, backlogTTL: 24 * time.Hour,
		queue: "calendar", megaNodes: 10_000_000,
		paradigms: []string{"bitcoin", "ethereum", "nano", "tangle"},
	}); err != nil {
		t.Fatalf("in-range knobs rejected: %v", err)
	}
	if err := validateKnobs(knobRanges{queue: "heap"}); err != nil {
		t.Fatalf("-queue heap rejected: %v", err)
	}
	if err := validateKnobs(knobRanges{paradigms: []string{"all"}}); err != nil {
		t.Fatalf("-paradigm all rejected: %v", err)
	}
	bad := []struct {
		flag string
		k    knobRanges
	}{
		{"-eclipse-frac", knobRanges{eclipseFrac: 1.5}},
		{"-eclipse-frac", knobRanges{eclipseFrac: -0.1}},
		{"-selfish-alpha", knobRanges{selfishAlpha: -0.3}},
		{"-selfish-alpha", knobRanges{selfishAlpha: 1}},
		{"-selfish-gamma", knobRanges{selfishGamma: 1.01}},
		{"-selfish-gamma", knobRanges{selfishGamma: -1}},
		{"-withhold-weight", knobRanges{withholdWeight: -0.2}},
		{"-withhold-weight", knobRanges{withholdWeight: 2}},
		{"-fault-partition-frac", knobRanges{partitionFrac: 1}},
		{"-fault-churn-nodes", knobRanges{churnNodes: -1}},
		{"-double-spend-trials", knobRanges{dsTrials: -5}},
		{"-sync-pull-batch", knobRanges{syncPullBatch: -1}},
		{"-sync-pull-batch", knobRanges{syncPullBatch: 65537}},
		{"-backlog-cap", knobRanges{backlogCap: -8}},
		{"-backlog-cap", knobRanges{backlogCap: 1<<20 + 1}},
		{"-backlog-ttl", knobRanges{backlogTTL: -time.Second}},
		{"-backlog-ttl", knobRanges{backlogTTL: 25 * time.Hour}},
		{"-queue", knobRanges{queue: "fibonacci"}},
		{"-mega-nodes", knobRanges{megaNodes: -1}},
		{"-mega-nodes", knobRanges{megaNodes: 10_000_001}},
		{"-paradigm", knobRanges{paradigms: []string{"iota"}}},
		{"-paradigm", knobRanges{paradigms: []string{"bitcoin", "tangel"}}},
	}
	for _, c := range bad {
		err := validateKnobs(c.k)
		if err == nil {
			t.Fatalf("%s: out-of-range value accepted (%+v)", c.flag, c.k)
		}
		if !strings.Contains(err.Error(), c.flag) {
			t.Fatalf("error does not name the flag %s: %v", c.flag, err)
		}
	}
	// The unknown-paradigm message must teach the legal spellings.
	if err := validateKnobs(knobRanges{paradigms: []string{"iota"}}); err == nil ||
		!strings.Contains(err.Error(), "bitcoin") || !strings.Contains(err.Error(), "tangle") {
		t.Fatalf("unknown-paradigm error does not list the legal names: %v", err)
	}
}

// parseParadigms must map the default and explicit 'all' to the empty
// filter, split comma lists, and trim whitespace.
func TestParseParadigms(t *testing.T) {
	if got := parseParadigms("all"); got != nil {
		t.Fatalf("parseParadigms(all) = %v, want nil", got)
	}
	if got := parseParadigms(""); got != nil {
		t.Fatalf("parseParadigms('') = %v, want nil", got)
	}
	got := parseParadigms(" bitcoin, tangle ")
	if len(got) != 2 || got[0] != "bitcoin" || got[1] != "tangle" {
		t.Fatalf("parseParadigms = %v", got)
	}
	// 'all' mixed with names is passed through for validation to accept
	// (it matches everything in core), not silently collapsed.
	if got := parseParadigms("all,nano"); len(got) != 2 {
		t.Fatalf("parseParadigms(all,nano) = %v", got)
	}
}
