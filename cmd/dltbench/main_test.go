package main

import (
	"strings"
	"testing"
	"time"
)

// Out-of-range adversary knobs must be rejected with the flag name in
// the message, and every in-range value — bounds included where legal —
// must pass. Before validateKnobs, a -eclipse-frac 1.5 silently fell
// back to the default sweep.
func TestValidateKnobs(t *testing.T) {
	if err := validateKnobs(knobRanges{}); err != nil {
		t.Fatalf("zero knobs rejected: %v", err)
	}
	if err := validateKnobs(knobRanges{
		eclipseFrac: 1, selfishAlpha: 0.45, selfishGamma: 1,
		withholdWeight: 1, partitionFrac: 0.5, churnNodes: 3, dsTrials: 10,
		syncPullBatch: 65536, backlogCap: 1 << 20, backlogTTL: 24 * time.Hour,
		queue: "calendar", megaNodes: 10_000_000,
	}); err != nil {
		t.Fatalf("in-range knobs rejected: %v", err)
	}
	if err := validateKnobs(knobRanges{queue: "heap"}); err != nil {
		t.Fatalf("-queue heap rejected: %v", err)
	}
	bad := []struct {
		flag string
		k    knobRanges
	}{
		{"-eclipse-frac", knobRanges{eclipseFrac: 1.5}},
		{"-eclipse-frac", knobRanges{eclipseFrac: -0.1}},
		{"-selfish-alpha", knobRanges{selfishAlpha: -0.3}},
		{"-selfish-alpha", knobRanges{selfishAlpha: 1}},
		{"-selfish-gamma", knobRanges{selfishGamma: 1.01}},
		{"-selfish-gamma", knobRanges{selfishGamma: -1}},
		{"-withhold-weight", knobRanges{withholdWeight: -0.2}},
		{"-withhold-weight", knobRanges{withholdWeight: 2}},
		{"-fault-partition-frac", knobRanges{partitionFrac: 1}},
		{"-fault-churn-nodes", knobRanges{churnNodes: -1}},
		{"-double-spend-trials", knobRanges{dsTrials: -5}},
		{"-sync-pull-batch", knobRanges{syncPullBatch: -1}},
		{"-sync-pull-batch", knobRanges{syncPullBatch: 65537}},
		{"-backlog-cap", knobRanges{backlogCap: -8}},
		{"-backlog-cap", knobRanges{backlogCap: 1<<20 + 1}},
		{"-backlog-ttl", knobRanges{backlogTTL: -time.Second}},
		{"-backlog-ttl", knobRanges{backlogTTL: 25 * time.Hour}},
		{"-queue", knobRanges{queue: "fibonacci"}},
		{"-mega-nodes", knobRanges{megaNodes: -1}},
		{"-mega-nodes", knobRanges{megaNodes: 10_000_001}},
	}
	for _, c := range bad {
		err := validateKnobs(c.k)
		if err == nil {
			t.Fatalf("%s: out-of-range value accepted (%+v)", c.flag, c.k)
		}
		if !strings.Contains(err.Error(), c.flag) {
			t.Fatalf("error does not name the flag %s: %v", c.flag, err)
		}
	}
}
