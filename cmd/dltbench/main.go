// Command dltbench regenerates every table of the paper reproduction:
// one experiment per figure or quantitative claim of "Distributed Ledger
// Technology: Blockchain Compared to Directed Acyclic Graph" (ICDCS
// 2018).
//
// Usage:
//
//	dltbench                     # run all experiments at full scale
//	dltbench -experiment E9      # one experiment
//	dltbench -scale 0.25 -seed 7 # smaller/faster, different randomness
//	dltbench -list               # show the registry
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment id (E1…E13) or 'all'")
		seed       = flag.Int64("seed", 42, "random seed; equal seeds reproduce results exactly")
		scale      = flag.Float64("scale", 1.0, "duration/workload scale factor")
		list       = flag.Bool("list", false, "list experiments and exit")
		summary    = flag.Bool("summary", false, "print the §VII five-dimension comparison and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-4s §%-7s %s\n", e.ID, e.Section, e.Title)
		}
		return 0
	}
	if *summary {
		if err := core.Summary().Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	cfg := core.Config{Seed: *seed, Scale: *scale}
	selected := core.Experiments()
	if *experiment != "all" {
		e, err := core.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		selected = []core.Experiment{e}
	}

	for _, e := range selected {
		fmt.Printf("=== %s [§%s] %s\n", e.ID, e.Section, e.Title)
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			return 1
		}
		if err := table.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println()
	}
	return 0
}
