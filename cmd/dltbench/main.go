// Command dltbench regenerates every table of the paper reproduction:
// one experiment per figure or quantitative claim of "Distributed Ledger
// Technology: Blockchain Compared to Directed Acyclic Graph" (ICDCS
// 2018). Experiments are scheduled on the core worker-pool runner, so a
// multi-core host regenerates the whole paper concurrently; -workers 1
// reproduces the serial sweep with identical tables.
//
// Usage:
//
//	dltbench                     # run all experiments, one worker per core
//	dltbench -workers 1          # serial sweep (same tables, slower)
//	dltbench -experiment E9      # one experiment
//	dltbench -scale 0.25 -seed 7 # smaller/faster, different randomness
//	dltbench -nano-batch 32      # add batched Nano sweep rows to E9/E12
//	dltbench -experiment E14 -fault-partition-frac 0.25   # milder split
//	dltbench -experiment E15 -double-spend-trials 10      # tighter rates
//	dltbench -list               # show the registry
//	dltbench -timing             # append the wall-clock/speedup table
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment id (E1…E15) or 'all'")
		seed       = flag.Int64("seed", 42, "random seed; equal seeds reproduce results exactly")
		scale      = flag.Float64("scale", 1.0, "duration/workload scale factor")
		workers    = flag.Int("workers", 0, "parallel experiment workers (0 = one per CPU core)")
		nanoBatch  = flag.Int("nano-batch", 0,
			"add batched Nano sweep rows to E9/E12 with this gossip ingest batch size (<= 1 = serial tables only)")
		nanoWindow = flag.Duration("nano-batch-window", 0,
			"accumulation window for Nano gossip batches (0 = 5ms default)")
		partitionFrac = flag.Float64("fault-partition-frac", 0,
			"minority share of nodes split away in E14's partition scenarios (0 = default 0.5)")
		churnNodes = flag.Int("fault-churn-nodes", 0,
			"nodes that leave and rejoin in E14's churn scenarios (0 = default 2)")
		dsTrials = flag.Int("double-spend-trials", 0,
			"contested double-spend trials per E15 attacker-weight sweep point (0 = default 3)")
		timing  = flag.Bool("timing", false, "print the sweep wall-clock/speedup table")
		list    = flag.Bool("list", false, "list experiments and exit")
		summary = flag.Bool("summary", false, "print the §VII five-dimension comparison and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-4s §%-7s %s\n", e.ID, e.Section, e.Title)
		}
		return 0
	}
	if *summary {
		if err := core.Summary().Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	// -workers bounds both levels of parallelism: the sweep pool and the
	// fan-out of sweep points inside E9/E10/E12. -workers 1 is the fully
	// serial schedule; the tables are identical either way.
	cfg := core.Config{
		Seed: *seed, Scale: *scale, Workers: *workers,
		NanoBatch: *nanoBatch, NanoBatchWindow: *nanoWindow,
		FaultPartitionFrac: *partitionFrac, FaultChurnNodes: *churnNodes,
		DoubleSpendTrials: *dsTrials,
	}
	selected := core.Experiments()
	if *experiment != "all" {
		e, err := core.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		selected = []core.Experiment{e}
	}

	// Ctrl-C cancels the sweep context, which stops scheduling new
	// experiments AND interrupts in-flight ones at their next sweep
	// point; the report marks unfinished work with the context error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	report, runErr := core.RunSelected(ctx, cfg, *workers, selected)
	for _, r := range report.Runs {
		fmt.Printf("=== %s [§%s] %s\n", r.Experiment.ID, r.Experiment.Section, r.Experiment.Title)
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.Experiment.ID, r.Err)
			continue
		}
		if err := r.Table.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println()
	}
	if *timing {
		if err := report.Table().Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if runErr != nil {
		return 1
	}
	return 0
}
