// Command dltbench regenerates every table of the paper reproduction:
// one experiment per figure or quantitative claim of "Distributed Ledger
// Technology: Blockchain Compared to Directed Acyclic Graph" (ICDCS
// 2018). Experiments are scheduled on the core worker-pool runner, so a
// multi-core host regenerates the whole paper concurrently; -workers 1
// reproduces the serial sweep with identical tables.
//
// Usage:
//
//	dltbench                     # run all experiments, one worker per core
//	dltbench -workers 1          # serial sweep (same tables, slower)
//	dltbench -experiment E9      # one experiment
//	dltbench -paradigm tangle    # only the tangle's rows in E9/E19/E20
//	dltbench -paradigm bitcoin,nano              # a two-paradigm comparison
//	dltbench -scale 0.25 -seed 7 # smaller/faster, different randomness
//	dltbench -format json        # machine-readable tables (also: csv)
//	dltbench -nano-batch 32      # add batched Nano sweep rows to E9/E12
//	dltbench -experiment E14 -fault-partition-frac 0.25   # milder split
//	dltbench -experiment E15 -double-spend-trials 10      # tighter rates
//	dltbench -experiment E16 -eclipse-frac 0.4            # extra sweep point
//	dltbench -experiment E17 -selfish-alpha 0.3           # extra sweep point
//	dltbench -experiment E17 -selfish-gamma 0.5           # Eyal–Sirer connectivity
//	dltbench -experiment E18 -double-spend-trials 10      # executed attacks
//	dltbench -experiment E18 -depth-sweep                 # z = 1…6 merchant rules
//	dltbench -experiment E19 -shards 4                    # sharded event lanes
//	dltbench -queue calendar                              # calendar-queue scheduler
//	dltbench -experiment E19 -mega-nodes 1000000          # million-node frontier point
//	dltbench -experiment E20 -sync-pull-batch 8           # narrow cold-sync windows
//	dltbench -experiment E20 -backlog-cap 256             # bounded backlog buffers
//	dltbench -experiment E20 -backlog-ttl 30s             # age-based backlog eviction
//	dltbench -list               # show the registry
//	dltbench -timing             # append the wall-clock/speedup table
//	dltbench -bench-report -bench-out BENCH_010.json      # commit a perf baseline
//	dltbench -bench-compare BENCH_010.json                # live regression gate
//	dltbench -bench-compare old.json -bench-candidate new.json  # diff two files
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/perf"
	"repro/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment id (E1…E21) or 'all'")
		paradigm   = flag.String("paradigm", "all",
			"ledger paradigms the cross-paradigm experiments (E9/E19/E20) build rows for: a comma-separated subset of "+
				strings.Join(netsim.ParadigmNames(), ", ")+", or 'all'")
		seed      = flag.Int64("seed", 42, "random seed; equal seeds reproduce results exactly")
		scale     = flag.Float64("scale", 1.0, "duration/workload scale factor")
		workers   = flag.Int("workers", 0, "parallel experiment workers (0 = one per CPU core)")
		format    = flag.String("format", "text", "table output format: text, csv or json")
		nanoBatch = flag.Int("nano-batch", 0,
			"add batched Nano sweep rows to E9/E12 with this gossip ingest batch size (<= 1 = serial tables only)")
		nanoWindow = flag.Duration("nano-batch-window", 0,
			"accumulation window for Nano gossip batches (0 = 5ms default)")
		partitionFrac = flag.Float64("fault-partition-frac", 0,
			"minority share of nodes split away in E14's partition scenarios (0 = default 0.5)")
		churnNodes = flag.Int("fault-churn-nodes", 0,
			"nodes that leave and rejoin in E14's churn scenarios (0 = default 2)")
		dsTrials = flag.Int("double-spend-trials", 0,
			"contested double-spend trials per E15 attacker-weight sweep point (0 = default 3)")
		eclipseFrac = flag.Float64("eclipse-frac", 0,
			"extra captured-peer fraction added to E16's eclipse sweep (0 = default sweep only)")
		selfishAlpha = flag.Float64("selfish-alpha", 0,
			"extra adversary hash share added to E17's selfish-mining sweep (0 = default sweep only)")
		selfishGamma = flag.Float64("selfish-gamma", 0,
			"Eyal–Sirer connectivity for E17's selfish-mining rows: fraction of honest hash power mining on the adversary's block in an open 1-1 race (0 = historical first-seen races)")
		withholdWeight = flag.Float64("withhold-weight", 0,
			"extra withheld-weight fraction added to E17's vote-withholding sweep (0 = default sweep only)")
		depthSweep = flag.Bool("depth-sweep", false,
			"add E18's confirmation-depth sweep: the executed chain double spend rerun for merchant rules z = 1…6 against two attack-window lengths, with the analytic catch-up odds beside each")
		shards = flag.Int("shards", 0,
			"event-queue lanes per simulated network (<= 0 = 1); tables are identical for every value — a pure capacity knob for mega-scale runs")
		queue = flag.String("queue", "",
			"event-queue backend: heap (binary heap, default) or calendar (O(1) calendar queue); tables are identical under either — a pure scheduler choice")
		megaNodes = flag.Int("mega-nodes", 0,
			"append an unscaled frontier point of this many nodes to E19's sweep when it extends it (0 = default 10^2…10^5 sweep)")
		syncPullBatch = flag.Int("sync-pull-batch", 0,
			"E20 cold-start range-pull window: history blocks per sync request (0 = default 32)")
		backlogCap = flag.Int("backlog-cap", 0,
			"bound on E20's per-node backlog buffers — lattice gap buffer, ingest queue, chain orphan pool (0 = package defaults)")
		backlogTTL = flag.Duration("backlog-ttl", 0,
			"age bound on E20's parked backlog blocks in simulation time, e.g. 30s — stale gaps/orphans evict on the next arrival even under -backlog-cap (0 = disabled)")
		timing  = flag.Bool("timing", false, "print the sweep wall-clock/speedup table (text format only)")
		list    = flag.Bool("list", false, "list experiments and exit")
		summary = flag.Bool("summary", false, "print the §VII five-dimension comparison and exit")

		benchReport = flag.Bool("bench-report", false,
			"run the perf trajectory suite and write the canonical BENCH JSON (see PERFORMANCE.md)")
		benchOut   = flag.String("bench-out", "", "path for the -bench-report output ('' = stdout)")
		benchLabel = flag.String("bench-label", "010", "baseline label embedded in the -bench-report output")
		benchScale = flag.Float64("bench-scale", 1, "perf suite workload scale; reports only compare at equal scale")
		benchTime  = flag.Duration("bench-time", time.Second,
			"minimum measured duration per perf benchmark (CI turns this down, not -bench-scale)")
		benchCompare = flag.String("bench-compare", "",
			"baseline BENCH file to gate against; with -bench-candidate diffs two files, else runs the suite live")
		benchCandidate = flag.String("bench-candidate", "", "candidate BENCH file for -bench-compare")
		benchThreshold = flag.Float64("bench-threshold", perf.DefaultThreshold,
			"regression gate threshold: fail when ns/op or allocs/op grow by more than this fraction")
	)
	flag.Parse()
	if *benchReport {
		return runBenchReport(benchFlags{
			out: *benchOut, label: *benchLabel, scale: *benchScale, benchTime: *benchTime,
		})
	}
	if *benchCompare != "" {
		return runBenchCompare(benchFlags{
			compare: *benchCompare, candidate: *benchCandidate,
			benchTime: *benchTime, threshold: *benchThreshold,
		})
	}
	if *format != "text" && *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown -format %q (want text, csv or json)\n", *format)
		return 1
	}
	// Out-of-range adversary and fault knobs are rejected here with a
	// clear message. The core Config would silently fall back to the
	// default sweeps — correct for programmatic use, but a typed
	// -eclipse-frac 1.5 or -selfish-alpha -0.3 on the command line is a
	// mistake the user should hear about, not a run that quietly ignores
	// the flag.
	if err := validateKnobs(knobRanges{
		eclipseFrac: *eclipseFrac, selfishAlpha: *selfishAlpha, selfishGamma: *selfishGamma,
		withholdWeight: *withholdWeight, partitionFrac: *partitionFrac,
		churnNodes: *churnNodes, dsTrials: *dsTrials,
		syncPullBatch: *syncPullBatch, backlogCap: *backlogCap, backlogTTL: *backlogTTL,
		queue: *queue, megaNodes: *megaNodes, paradigms: parseParadigms(*paradigm),
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-4s §%-7s %s\n", e.ID, e.Section, e.Title)
		}
		return 0
	}
	if *summary {
		if err := core.Summary().Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	// -workers bounds both levels of parallelism: the sweep pool and the
	// fan-out of sweep points inside E9/E10/E12. -workers 1 is the fully
	// serial schedule; the tables are identical either way.
	cfg := core.Config{
		Seed: *seed, Scale: *scale, Workers: *workers,
		Paradigms: parseParadigms(*paradigm),
		NanoBatch: *nanoBatch, NanoBatchWindow: *nanoWindow,
		FaultPartitionFrac: *partitionFrac, FaultChurnNodes: *churnNodes,
		DoubleSpendTrials: *dsTrials,
		EclipseFrac:       *eclipseFrac,
		SelfishAlpha:      *selfishAlpha,
		SelfishGamma:      *selfishGamma,
		WithholdWeight:    *withholdWeight,
		DepthSweep:        *depthSweep,
		Shards:            *shards,
		Queue:             *queue,
		MegaNodes:         *megaNodes,
		SyncPullBatch:     *syncPullBatch,
		BacklogCap:        *backlogCap,
		BacklogTTL:        *backlogTTL,
	}
	selected := core.Experiments()
	if *experiment != "all" {
		e, err := core.ByID(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		selected = []core.Experiment{e}
	}

	// Ctrl-C cancels the sweep context, which stops scheduling new
	// experiments AND interrupts in-flight ones at their next sweep
	// point; the report marks unfinished work with the context error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	report, runErr := core.RunSelected(ctx, cfg, *workers, selected)
	if err := renderReport(os.Stdout, report, *format, *timing); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if runErr != nil {
		return 1
	}
	return 0
}

// knobRanges carries the adversary/fault flag values into validation.
type knobRanges struct {
	eclipseFrac, selfishAlpha, selfishGamma, withholdWeight, partitionFrac float64
	churnNodes, dsTrials, syncPullBatch, backlogCap, megaNodes             int
	backlogTTL                                                             time.Duration
	queue                                                                  string
	paradigms                                                              []string
}

// parseParadigms splits the -paradigm value into paradigm registry
// names. The default 'all' — and an empty value — selects every
// registered paradigm (core.Config treats an empty filter the same
// way), so the historical full-comparison tables need no flag at all.
func parseParadigms(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 1 && out[0] == "all" {
		return nil
	}
	return out
}

// validateKnobs rejects out-of-range adversary and fault knobs with the
// flag name and its legal range.
func validateKnobs(k knobRanges) error {
	if k.eclipseFrac < 0 || k.eclipseFrac > 1 {
		return fmt.Errorf("-eclipse-frac %v out of range: want a captured-peer fraction in [0, 1]", k.eclipseFrac)
	}
	if k.selfishAlpha < 0 || k.selfishAlpha >= 1 {
		return fmt.Errorf("-selfish-alpha %v out of range: want an adversary hash share in [0, 1)", k.selfishAlpha)
	}
	if k.selfishGamma < 0 || k.selfishGamma > 1 {
		return fmt.Errorf("-selfish-gamma %v out of range: want an honest-connectivity fraction in [0, 1]", k.selfishGamma)
	}
	if k.withholdWeight < 0 || k.withholdWeight > 1 {
		return fmt.Errorf("-withhold-weight %v out of range: want a withheld voting-weight fraction in [0, 1]", k.withholdWeight)
	}
	if k.partitionFrac < 0 || k.partitionFrac >= 1 {
		return fmt.Errorf("-fault-partition-frac %v out of range: want a minority share in [0, 1)", k.partitionFrac)
	}
	if k.churnNodes < 0 {
		return fmt.Errorf("-fault-churn-nodes %d out of range: want a non-negative node count", k.churnNodes)
	}
	if k.dsTrials < 0 {
		return fmt.Errorf("-double-spend-trials %d out of range: want a non-negative trial count", k.dsTrials)
	}
	if k.syncPullBatch < 0 || k.syncPullBatch > 65536 {
		return fmt.Errorf("-sync-pull-batch %d out of range: want a window of [0, 65536] blocks", k.syncPullBatch)
	}
	if k.backlogCap < 0 || k.backlogCap > 1<<20 {
		return fmt.Errorf("-backlog-cap %d out of range: want a buffer bound in [0, %d]", k.backlogCap, 1<<20)
	}
	if k.backlogTTL < 0 || k.backlogTTL > 24*time.Hour {
		return fmt.Errorf("-backlog-ttl %v out of range: want an age bound in [0, 24h]", k.backlogTTL)
	}
	if _, err := sim.ParseQueue(k.queue); err != nil {
		return fmt.Errorf("-queue %q unknown: want heap or calendar", k.queue)
	}
	if k.megaNodes < 0 || k.megaNodes > 10_000_000 {
		return fmt.Errorf("-mega-nodes %d out of range: want a node count in [0, 10000000]", k.megaNodes)
	}
	for _, p := range k.paradigms {
		if p == "all" {
			continue
		}
		if _, err := netsim.ParadigmByName(p); err != nil {
			return fmt.Errorf("-paradigm %q unknown: want a comma-separated subset of %s, or 'all'",
				p, strings.Join(netsim.ParadigmNames(), ", "))
		}
	}
	return nil
}

// experimentDoc is one experiment's machine-readable result: identity,
// outcome, and the full table document (headers, rows, notes).
type experimentDoc struct {
	ID      string            `json:"id"`
	Section string            `json:"section"`
	Title   string            `json:"title"`
	Error   string            `json:"error,omitempty"`
	Table   *metrics.TableDoc `json:"table,omitempty"`
}

// renderReport writes the sweep's tables in the selected format. Text is
// the human-readable default; csv and json carry every cell of every
// table, so bench trajectories are diffable and machine-readable.
func renderReport(w io.Writer, report *core.Report, format string, timing bool) error {
	switch format {
	case "json":
		docs := make([]experimentDoc, 0, len(report.Runs))
		for _, r := range report.Runs {
			doc := experimentDoc{ID: r.Experiment.ID, Section: r.Experiment.Section, Title: r.Experiment.Title}
			if r.Err != nil {
				doc.Error = r.Err.Error()
			} else {
				td := r.Table.Doc()
				doc.Table = &td
			}
			docs = append(docs, doc)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(docs)
	case "csv":
		for _, r := range report.Runs {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.Experiment.ID, r.Err)
				continue
			}
			if _, err := fmt.Fprintf(w, "# %s [§%s] %s\n", r.Experiment.ID, r.Experiment.Section, r.Experiment.Title); err != nil {
				return err
			}
			if err := r.Table.RenderCSV(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	default:
		for _, r := range report.Runs {
			if _, err := fmt.Fprintf(w, "=== %s [§%s] %s\n", r.Experiment.ID, r.Experiment.Section, r.Experiment.Title); err != nil {
				return err
			}
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.Experiment.ID, r.Err)
				continue
			}
			if err := r.Table.Render(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if timing {
			return report.Table().Render(w)
		}
		return nil
	}
}
