package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/perf"
)

// benchFlags carries the perf-trajectory flag values out of run().
type benchFlags struct {
	report    bool
	out       string
	label     string
	scale     float64
	benchTime time.Duration
	compare   string
	candidate string
	threshold float64
}

// runBenchReport collects the perf suite and writes the canonical BENCH
// JSON to -bench-out (stdout when empty). Progress goes to stderr so the
// report stays pipeable.
func runBenchReport(f benchFlags) int {
	report, err := perf.Collect(perf.Options{
		Baseline:  f.label,
		Scale:     f.scale,
		BenchTime: f.benchTime,
		Progress:  os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	data, err := perf.Encode(report)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if f.out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(f.out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d entries)\n", f.out, len(report.Entries))
	return 0
}

// runBenchCompare diffs a candidate against the baseline BENCH file
// named by -bench-compare. The candidate is -bench-candidate when given
// (pure file-vs-file diff); otherwise the suite runs live at the
// baseline's scale — which is exactly the CI bench-gate. Exit status 1
// means the gate failed.
func runBenchCompare(f benchFlags) int {
	baseline, err := readBench(f.compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var candidate *perf.Report
	if f.candidate != "" {
		if candidate, err = readBench(f.candidate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		// Live gate run: match the baseline's workload scale (reports at
		// different scales are incomparable); -bench-time is the knob that
		// makes this cheap, not scale.
		candidate, err = perf.Collect(perf.Options{
			Baseline:  "gate",
			Scale:     baseline.Scale,
			BenchTime: f.benchTime,
			Progress:  os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	deltas, ok, err := perf.Compare(baseline, candidate, f.threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := perf.RenderDeltas(os.Stdout, deltas); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "bench gate: FAIL")
		return 1
	}
	fmt.Println("bench gate: ok")
	return 0
}

func readBench(path string) (*perf.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return perf.Decode(data)
}
