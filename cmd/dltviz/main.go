// Command dltviz renders the paper's four figures as ASCII diagrams from
// live data structures built by this repository's ledgers: the blockchain
// (Fig. 1), the block-lattice (Fig. 2), send/receive settlement (Fig. 3)
// and a temporary fork with its resolution (Fig. 4).
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/chain"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/lattice"
	"repro/internal/utxo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	if err := fig1(); err != nil {
		return err
	}
	if err := fig2and3(); err != nil {
		return err
	}
	return fig4()
}

// fig1 draws the hash-linked chain of §II-A.
func fig1() error {
	fmt.Println("Fig. 1 — Blockchain as a data structure")
	fmt.Println()
	ring := keys.NewRing("viz", 4)
	alloc := map[keys.Address]uint64{ring.Addr(0): 10_000}
	ledger, err := utxo.NewLedger(alloc, utxo.DefaultParams())
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		tx, err := utxo.NewPayment(ledger.UTXOSet(), ring.Pair(0), ring.Addr(1), 100, 1)
		if err != nil {
			return err
		}
		if err := ledger.SubmitTx(tx); err != nil {
			return err
		}
		b := ledger.BuildBlock(ring.Addr(3), time.Duration(i+1)*10*time.Minute)
		if _, err := ledger.ProcessBlock(b); err != nil {
			return err
		}
	}
	cells := []string{}
	for _, h := range ledger.Store().MainChain() {
		b, _ := ledger.Store().Get(h)
		label := "genesis"
		if b.Header.Height > 0 {
			label = fmt.Sprintf("block %d", b.Header.Height)
		}
		cells = append(cells, fmt.Sprintf("[%s %s | prev:%s | merkle:%s | %d txs]",
			label, h, b.Header.Parent, b.Header.TxRoot, b.TxCount()))
	}
	fmt.Println("  " + strings.Join(cells, " <- "))
	fmt.Println()
	return nil
}

// fig2and3 draws the block-lattice of §II-B with settled and pending
// transfers.
func fig2and3() error {
	fmt.Println("Fig. 2/3 — Nano's block-lattice with send/receive settlement")
	fmt.Println()
	ring := keys.NewRing("viz-lattice", 4)
	lat, _, err := lattice.New(ring.Pair(0), 1000, 0)
	if err != nil {
		return err
	}
	// A settled transfer 0 -> 1 and an unsettled one 0 -> 2.
	send1, err := lat.NewSend(ring.Pair(0), ring.Addr(1), 300)
	if err != nil {
		return err
	}
	lat.Process(send1)
	open1, err := lat.NewOpen(ring.Pair(1), send1.Hash(), ring.Addr(1))
	if err != nil {
		return err
	}
	lat.Process(open1)
	send2, err := lat.NewSend(ring.Pair(0), ring.Addr(2), 100)
	if err != nil {
		return err
	}
	lat.Process(send2)

	for i := 0; i < 3; i++ {
		addr := ring.Addr(i)
		var cells []string
		for _, b := range lat.Chain(addr) {
			tag := strings.ToUpper(b.Type.String()[:1])
			cells = append(cells, fmt.Sprintf("[%s %s bal=%d]", tag, b.Hash(), b.Balance))
		}
		if len(cells) == 0 {
			cells = append(cells, "(account not yet opened)")
		}
		fmt.Printf("  account %d: %s\n", i, strings.Join(cells, " <- "))
	}
	fmt.Println()
	for _, h := range lat.PendingFor(ring.Addr(2)) {
		p, _ := lat.PendingInfo(h)
		fmt.Printf("  pending (unsettled): send %s of %d awaiting account 2's receive — 'a node has to be online to receive'\n",
			h, p.Amount)
	}
	fmt.Println()
	return nil
}

// fig4 builds a real fork on the generic chain store and shows its
// resolution by the longest-chain rule.
func fig4() error {
	fmt.Println("Fig. 4 — Temporary blockchain fork and resolution")
	fmt.Println()
	genesis := chain.NewGenesis(hashx.Zero)
	store, err := chain.NewStore(genesis, chain.LongestChain)
	if err != nil {
		return err
	}
	mk := func(parent *chain.Block, id byte) *chain.Block {
		payload := chain.OpaquePayload{ID: hashx.Sum([]byte{id}), Bytes: 100, Txs: 5}
		return &chain.Block{Header: chain.Header{
			Parent: parent.Hash(), Height: parent.Header.Height + 1,
			TxRoot: payload.Root(), Difficulty: 1,
		}, Payload: payload}
	}
	a1 := mk(genesis, 1)
	b1 := mk(genesis, 2)
	b2 := mk(b1, 3)
	store.Add(a1)
	resSide := store.Add(b1)
	resReorg := store.Add(b2)

	fmt.Printf("                 ┌─ [A1 %s]            (first seen: tip)\n", a1.Hash())
	fmt.Printf("  [genesis %s] ──┤\n", genesis.Hash())
	fmt.Printf("                 └─ [B1 %s] ── [B2 %s]  (longer: adopted)\n", b1.Hash(), b2.Hash())
	fmt.Println()
	fmt.Printf("  B1 arrives: %s (two blocks claim the same predecessor)\n", resSide.Status)
	fmt.Printf("  B2 arrives: %s — depth-%d reorg abandons A1 and its %d transactions\n",
		resReorg.Status, resReorg.Reorg.Depth(), resReorg.Reorg.AbandonedTxs)
	fmt.Printf("  tip is now B2; A1 confirmations: %d (orphaned)\n", store.Confirmations(a1.Hash()))
	return nil
}
