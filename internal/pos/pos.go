// Package pos implements Proof of Stake as the paper describes it
// (§III-A2): validators deposit stake, the protocol picks block proposers
// with probability proportional to stake, and misbehavior burns the
// offender's deposit — "burning stake has the same economic effect as
// dismantling an attacker's mining equipment". It also implements a
// Casper-FFG-style finality gadget (§IV-A): two-thirds stake votes justify
// checkpoints, consecutive justified checkpoints finalize, and finalized
// checkpoints are the "non-reversible checkpoints, guaranteeing block
// inclusion" the paper attributes to Casper FFG.
package pos

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/hashx"
	"repro/internal/keys"
)

// Registry errors.
var (
	ErrUnknownValidator = errors.New("pos: unknown validator")
	ErrSlashed          = errors.New("pos: validator is slashed")
	ErrNoStake          = errors.New("pos: no active stake")
	ErrZeroDeposit      = errors.New("pos: deposit must be positive")
)

// Validator is one staked participant.
type Validator struct {
	Addr    keys.Address
	Pub     ed25519.PublicKey
	Stake   uint64
	Slashed bool
}

// Registry is the validator set: the "smart contract named Casper" that
// validators "deposit their stake in".
type Registry struct {
	vals   map[keys.Address]*Validator
	order  []keys.Address // sorted, for deterministic iteration
	total  uint64         // active (unslashed) stake
	burned uint64
}

// NewRegistry returns an empty validator set.
func NewRegistry() *Registry {
	return &Registry{vals: make(map[keys.Address]*Validator)}
}

// Deposit stakes amount for the key's address, registering the validator
// on first deposit.
func (r *Registry) Deposit(pub ed25519.PublicKey, amount uint64) error {
	if amount == 0 {
		return ErrZeroDeposit
	}
	addr := keys.AddressOf(pub)
	v, ok := r.vals[addr]
	if !ok {
		v = &Validator{Addr: addr, Pub: pub}
		r.vals[addr] = v
		r.order = append(r.order, addr)
		sort.Slice(r.order, func(i, j int) bool { return r.order[i].Less(r.order[j]) })
	}
	if v.Slashed {
		return ErrSlashed
	}
	v.Stake += amount
	r.total += amount
	return nil
}

// Withdraw removes a validator's full stake and returns it.
func (r *Registry) Withdraw(addr keys.Address) (uint64, error) {
	v, ok := r.vals[addr]
	if !ok {
		return 0, ErrUnknownValidator
	}
	if v.Slashed {
		return 0, ErrSlashed
	}
	amount := v.Stake
	v.Stake = 0
	r.total -= amount
	return amount, nil
}

// Slash burns a validator's entire deposit (§III-A2: "the validator's
// stake is burned, thus penalizing the validator") and returns the amount.
func (r *Registry) Slash(addr keys.Address) (uint64, error) {
	v, ok := r.vals[addr]
	if !ok {
		return 0, ErrUnknownValidator
	}
	if v.Slashed {
		return 0, ErrSlashed
	}
	burned := v.Stake
	v.Stake = 0
	v.Slashed = true
	r.total -= burned
	r.burned += burned
	return burned, nil
}

// StakeOf returns a validator's active stake.
func (r *Registry) StakeOf(addr keys.Address) uint64 {
	if v, ok := r.vals[addr]; ok && !v.Slashed {
		return v.Stake
	}
	return 0
}

// IsSlashed reports whether the validator has been slashed.
func (r *Registry) IsSlashed(addr keys.Address) bool {
	v, ok := r.vals[addr]
	return ok && v.Slashed
}

// TotalStake returns the active stake across all validators.
func (r *Registry) TotalStake() uint64 { return r.total }

// Burned returns the cumulative slashed stake.
func (r *Registry) Burned() uint64 { return r.burned }

// Len returns the number of registered validators (slashed included).
func (r *Registry) Len() int { return len(r.vals) }

// Proposer deterministically selects the slot's block proposer with
// probability proportional to stake: the PoS replacement for the PoW
// lottery. The seed usually is the last finalized checkpoint hash.
func (r *Registry) Proposer(slot uint64, seed hashx.Hash) (keys.Address, error) {
	if r.total == 0 {
		return keys.ZeroAddress, ErrNoStake
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], slot)
	draw := hashx.Concat(seed[:], buf[:]).Uint64() % r.total
	var acc uint64
	for _, addr := range r.order {
		v := r.vals[addr]
		if v.Slashed || v.Stake == 0 {
			continue
		}
		acc += v.Stake
		if draw < acc {
			return addr, nil
		}
	}
	return keys.ZeroAddress, ErrNoStake
}

// Checkpoint identifies an FFG checkpoint: a block hash at an epoch
// boundary.
type Checkpoint struct {
	Hash  hashx.Hash
	Epoch uint64
}

// Vote is one validator's FFG link vote from a justified source to a
// target checkpoint.
type Vote struct {
	Validator keys.Address
	Source    Checkpoint
	Target    Checkpoint
	PubKey    ed25519.PublicKey
	Sig       []byte
}

// voteDigest is the signed content.
func voteDigest(v *Vote) hashx.Hash {
	var buf [2 * (hashx.Size + 8)]byte
	off := 0
	copy(buf[off:], v.Source.Hash[:])
	off += hashx.Size
	binary.BigEndian.PutUint64(buf[off:], v.Source.Epoch)
	off += 8
	copy(buf[off:], v.Target.Hash[:])
	off += hashx.Size
	binary.BigEndian.PutUint64(buf[off:], v.Target.Epoch)
	return hashx.Sum(buf[:])
}

// NewVote builds a signed FFG vote.
func NewVote(kp *keys.KeyPair, source, target Checkpoint) *Vote {
	v := &Vote{Validator: kp.Address(), Source: source, Target: target, PubKey: kp.Pub}
	digest := voteDigest(v)
	v.Sig = kp.Sign(digest[:])
	return v
}

// Verify checks the vote signature and address binding.
func (v *Vote) Verify() bool {
	if keys.AddressOf(v.PubKey) != v.Validator {
		return false
	}
	digest := voteDigest(v)
	return keys.Verify(v.PubKey, digest[:], v.Sig)
}

// FFG errors and slashing causes.
var (
	ErrBadVoteSig     = errors.New("pos: bad vote signature")
	ErrUnjustified    = errors.New("pos: vote source is not justified")
	ErrDoubleVote     = errors.New("pos: double vote (two targets in one epoch)")
	ErrSurroundVote   = errors.New("pos: surround vote")
	ErrEpochRegress   = errors.New("pos: target epoch not after source epoch")
	ErrAlreadyCounted = errors.New("pos: vote already counted")
)

// voteRecord remembers a validator's past links for slashing detection.
type voteRecord struct {
	source Checkpoint
	target Checkpoint
}

// FFG accumulates votes, justifies targets at ≥2/3 stake, and finalizes a
// justified checkpoint when its direct child is justified — the classic
// two-phase Casper FFG rule.
type FFG struct {
	reg       *Registry
	justified map[hashx.Hash]bool
	finalized map[hashx.Hash]bool
	epochOf   map[hashx.Hash]uint64
	tallies   map[hashx.Hash]uint64 // target hash -> stake in favor
	counted   map[hashx.Hash]map[keys.Address]bool
	history   map[keys.Address][]voteRecord
	lastFinal Checkpoint
	lastJust  Checkpoint
}

// NewFFG creates a gadget rooted at the genesis checkpoint, which is both
// justified and finalized by definition.
func NewFFG(reg *Registry, genesis Checkpoint) *FFG {
	f := &FFG{
		reg:       reg,
		justified: map[hashx.Hash]bool{genesis.Hash: true},
		finalized: map[hashx.Hash]bool{genesis.Hash: true},
		epochOf:   map[hashx.Hash]uint64{genesis.Hash: genesis.Epoch},
		tallies:   make(map[hashx.Hash]uint64),
		counted:   make(map[hashx.Hash]map[keys.Address]bool),
		history:   make(map[keys.Address][]voteRecord),
		lastFinal: genesis,
		lastJust:  genesis,
	}
	return f
}

// Justified reports whether a checkpoint hash has been justified.
func (f *FFG) Justified(h hashx.Hash) bool { return f.justified[h] }

// Finalized reports whether a checkpoint hash has been finalized
// (non-reversible, §IV-A).
func (f *FFG) Finalized(h hashx.Hash) bool { return f.finalized[h] }

// LastFinalized returns the highest finalized checkpoint.
func (f *FFG) LastFinalized() Checkpoint { return f.lastFinal }

// LastJustified returns the highest justified checkpoint.
func (f *FFG) LastJustified() Checkpoint { return f.lastJust }

// ProcessVote verifies and counts a vote. Equivocation (double or
// surround votes) slashes the validator and returns the matching error;
// the vote is not counted. It returns whether the vote's target became
// justified and whether that justification finalized the source.
func (f *FFG) ProcessVote(v *Vote) (justified, finalized bool, err error) {
	if !v.Verify() {
		return false, false, ErrBadVoteSig
	}
	stake := f.reg.StakeOf(v.Validator)
	if stake == 0 {
		return false, false, fmt.Errorf("%w: %s", ErrUnknownValidator, v.Validator)
	}
	if v.Target.Epoch <= v.Source.Epoch {
		return false, false, ErrEpochRegress
	}
	if !f.justified[v.Source.Hash] {
		return false, false, fmt.Errorf("%w: source %s@%d", ErrUnjustified, v.Source.Hash, v.Source.Epoch)
	}
	// Slashing conditions.
	for _, rec := range f.history[v.Validator] {
		if rec.target.Epoch == v.Target.Epoch && rec.target.Hash != v.Target.Hash {
			f.reg.Slash(v.Validator)
			return false, false, ErrDoubleVote
		}
		surrounds := v.Source.Epoch < rec.source.Epoch && rec.target.Epoch < v.Target.Epoch
		surrounded := rec.source.Epoch < v.Source.Epoch && v.Target.Epoch < rec.target.Epoch
		if surrounds || surrounded {
			f.reg.Slash(v.Validator)
			return false, false, ErrSurroundVote
		}
	}
	if f.counted[v.Target.Hash] == nil {
		f.counted[v.Target.Hash] = make(map[keys.Address]bool)
	}
	if f.counted[v.Target.Hash][v.Validator] {
		return false, false, ErrAlreadyCounted
	}
	f.counted[v.Target.Hash][v.Validator] = true
	f.history[v.Validator] = append(f.history[v.Validator], voteRecord{source: v.Source, target: v.Target})
	f.tallies[v.Target.Hash] += stake
	f.epochOf[v.Target.Hash] = v.Target.Epoch

	// Supermajority: strictly more than 2/3 of active stake.
	if !f.justified[v.Target.Hash] && 3*f.tallies[v.Target.Hash] > 2*f.reg.TotalStake() {
		f.justified[v.Target.Hash] = true
		justified = true
		if v.Target.Epoch > f.lastJust.Epoch {
			f.lastJust = v.Target
		}
		// Finalize the source when the target is its direct child epoch.
		if v.Target.Epoch == v.Source.Epoch+1 && !f.finalized[v.Source.Hash] {
			f.finalized[v.Source.Hash] = true
			finalized = true
			if v.Source.Epoch > f.lastFinal.Epoch {
				f.lastFinal = v.Source
			}
		}
	}
	return justified, finalized, nil
}
