package pos

import (
	"errors"
	"math"
	"testing"

	"repro/internal/hashx"
	"repro/internal/keys"
)

func reg(t *testing.T, stakes map[int]uint64) (*Registry, *keys.Ring) {
	t.Helper()
	r := keys.NewRing("pos-test", 8)
	g := NewRegistry()
	for i, s := range stakes {
		if err := g.Deposit(r.Pair(i).Pub, s); err != nil {
			t.Fatalf("Deposit: %v", err)
		}
	}
	return g, r
}

func TestDepositWithdraw(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 100, 1: 200})
	if g.TotalStake() != 300 || g.Len() != 2 {
		t.Fatalf("total=%d len=%d", g.TotalStake(), g.Len())
	}
	if g.StakeOf(r.Addr(1)) != 200 {
		t.Fatal("StakeOf wrong")
	}
	// Top-up.
	if err := g.Deposit(r.Pair(0).Pub, 50); err != nil {
		t.Fatal(err)
	}
	if g.StakeOf(r.Addr(0)) != 150 {
		t.Fatal("top-up lost")
	}
	amount, err := g.Withdraw(r.Addr(0))
	if err != nil || amount != 150 {
		t.Fatalf("Withdraw = %d, %v", amount, err)
	}
	if g.TotalStake() != 200 {
		t.Fatal("total not reduced by withdraw")
	}
	if _, err := g.Withdraw(keys.Deterministic("nobody").Address()); !errors.Is(err, ErrUnknownValidator) {
		t.Fatalf("err = %v", err)
	}
	if err := g.Deposit(r.Pair(2).Pub, 0); !errors.Is(err, ErrZeroDeposit) {
		t.Fatalf("err = %v", err)
	}
}

func TestSlashBurnsStake(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 100, 1: 300})
	burned, err := g.Slash(r.Addr(1))
	if err != nil || burned != 300 {
		t.Fatalf("Slash = %d, %v", burned, err)
	}
	if g.TotalStake() != 100 || g.Burned() != 300 {
		t.Fatalf("total=%d burned=%d", g.TotalStake(), g.Burned())
	}
	if !g.IsSlashed(r.Addr(1)) || g.StakeOf(r.Addr(1)) != 0 {
		t.Fatal("slashed validator still has stake")
	}
	// Slashed validators cannot re-enter.
	if err := g.Deposit(r.Pair(1).Pub, 10); !errors.Is(err, ErrSlashed) {
		t.Fatalf("re-deposit err = %v", err)
	}
	if _, err := g.Withdraw(r.Addr(1)); !errors.Is(err, ErrSlashed) {
		t.Fatalf("withdraw err = %v", err)
	}
	if _, err := g.Slash(r.Addr(1)); !errors.Is(err, ErrSlashed) {
		t.Fatalf("double slash err = %v", err)
	}
}

// §III-A2: "The more tokens a validator stakes, it has a higher chance to
// create the next block" — selection frequency must track stake share.
func TestProposerProportionalToStake(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 100, 1: 300, 2: 600})
	counts := map[keys.Address]int{}
	seed := hashx.Sum([]byte("epoch-seed"))
	const n = 50000
	for slot := uint64(0); slot < n; slot++ {
		p, err := g.Proposer(slot, seed)
		if err != nil {
			t.Fatal(err)
		}
		counts[p]++
	}
	for i, want := range map[int]float64{0: 0.1, 1: 0.3, 2: 0.6} {
		got := float64(counts[r.Addr(i)]) / n
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("validator %d proposed %.3f, want ≈%.1f", i, got, want)
		}
	}
}

func TestProposerDeterministicAndSlashedExcluded(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 100, 1: 100})
	seed := hashx.Sum([]byte("s"))
	a1, _ := g.Proposer(7, seed)
	a2, _ := g.Proposer(7, seed)
	if a1 != a2 {
		t.Fatal("proposer not deterministic")
	}
	g.Slash(r.Addr(0))
	for slot := uint64(0); slot < 100; slot++ {
		p, err := g.Proposer(slot, seed)
		if err != nil {
			t.Fatal(err)
		}
		if p == r.Addr(0) {
			t.Fatal("slashed validator proposed")
		}
	}
	g2 := NewRegistry()
	if _, err := g2.Proposer(0, seed); !errors.Is(err, ErrNoStake) {
		t.Fatalf("empty registry err = %v", err)
	}
}

func cp(name string, epoch uint64) Checkpoint {
	return Checkpoint{Hash: hashx.Sum([]byte(name)), Epoch: epoch}
}

func TestVoteSignature(t *testing.T) {
	r := keys.NewRing("ffg-sig", 1)
	v := NewVote(r.Pair(0), cp("a", 0), cp("b", 1))
	if !v.Verify() {
		t.Fatal("fresh vote does not verify")
	}
	v.Target.Epoch = 2
	if v.Verify() {
		t.Fatal("tampered vote verifies")
	}
}

// The FFG happy path: 2/3 stake justifies the child and finalizes the
// parent — §IV-A's "non-reversible checkpoints".
func TestFFGJustifyAndFinalize(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 100, 1: 100, 2: 100})
	genesis := cp("genesis", 0)
	f := NewFFG(g, genesis)
	if !f.Justified(genesis.Hash) || !f.Finalized(genesis.Hash) {
		t.Fatal("genesis must start justified and finalized")
	}
	c1 := cp("c1", 1)

	// First vote: 100/300 — no quorum.
	j, fin, err := f.ProcessVote(NewVote(r.Pair(0), genesis, c1))
	if err != nil || j || fin {
		t.Fatalf("vote1: j=%v f=%v err=%v", j, fin, err)
	}
	// Second vote: 200/300 — not strictly more than 2/3.
	j, fin, err = f.ProcessVote(NewVote(r.Pair(1), genesis, c1))
	if err != nil || j || fin {
		t.Fatalf("vote2: j=%v f=%v err=%v", j, fin, err)
	}
	// Third vote crosses the supermajority: c1 justified, genesis's
	// epoch-child rule finalizes genesis (already final) — and c1 is the
	// new highest justified checkpoint.
	j, _, err = f.ProcessVote(NewVote(r.Pair(2), genesis, c1))
	if err != nil || !j {
		t.Fatalf("vote3: j=%v err=%v", j, err)
	}
	if !f.Justified(c1.Hash) || f.LastJustified() != c1 {
		t.Fatal("c1 not justified")
	}
	// Next epoch: c1 -> c2 votes finalize c1.
	c2 := cp("c2", 2)
	var finalized bool
	for i := 0; i < 3; i++ {
		_, fin, err := f.ProcessVote(NewVote(r.Pair(i), c1, c2))
		if err != nil {
			t.Fatal(err)
		}
		finalized = finalized || fin
	}
	if !finalized || !f.Finalized(c1.Hash) || f.LastFinalized() != c1 {
		t.Fatal("c1 not finalized by justified child")
	}
}

func TestFFGSkippedEpochJustifiesWithoutFinalizing(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 100, 1: 100, 2: 100})
	genesis := cp("genesis", 0)
	f := NewFFG(g, genesis)
	// Vote genesis -> epoch 2 directly (epoch 1 skipped).
	c2 := cp("c2", 2)
	for i := 0; i < 3; i++ {
		if _, fin, err := f.ProcessVote(NewVote(r.Pair(i), genesis, c2)); err != nil {
			t.Fatal(err)
		} else if fin {
			t.Fatal("skipped-epoch link must not finalize")
		}
	}
	if !f.Justified(c2.Hash) {
		t.Fatal("c2 should be justified")
	}
	if f.LastFinalized() != genesis {
		t.Fatal("nothing new should be finalized")
	}
}

func TestFFGRejectsBadVotes(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 100})
	genesis := cp("genesis", 0)
	f := NewFFG(g, genesis)

	// Unjustified source.
	v := NewVote(r.Pair(0), cp("nowhere", 3), cp("c4", 4))
	if _, _, err := f.ProcessVote(v); !errors.Is(err, ErrUnjustified) {
		t.Fatalf("err = %v", err)
	}
	// Epoch regress.
	v = NewVote(r.Pair(0), genesis, cp("c0", 0))
	if _, _, err := f.ProcessVote(v); !errors.Is(err, ErrEpochRegress) {
		t.Fatalf("err = %v", err)
	}
	// Non-validator.
	out := keys.Deterministic("outsider")
	v = NewVote(out, genesis, cp("c1", 1))
	if _, _, err := f.ProcessVote(v); !errors.Is(err, ErrUnknownValidator) {
		t.Fatalf("err = %v", err)
	}
	// Tampered signature.
	v = NewVote(r.Pair(0), genesis, cp("c1", 1))
	v.Sig[0] ^= 0xFF
	if _, _, err := f.ProcessVote(v); !errors.Is(err, ErrBadVoteSig) {
		t.Fatalf("err = %v", err)
	}
	// Duplicate (same vote twice).
	v = NewVote(r.Pair(0), genesis, cp("c1", 1))
	if _, _, err := f.ProcessVote(v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ProcessVote(v); !errors.Is(err, ErrAlreadyCounted) {
		t.Fatalf("err = %v", err)
	}
}

// §III-A2: "If an incorrect block is submitted … the validator's stake is
// burned". Double votes are the FFG incorrectness we detect.
func TestFFGDoubleVoteSlashes(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 100, 1: 100})
	genesis := cp("genesis", 0)
	f := NewFFG(g, genesis)
	if _, _, err := f.ProcessVote(NewVote(r.Pair(0), genesis, cp("a", 1))); err != nil {
		t.Fatal(err)
	}
	// Same epoch, different target: equivocation.
	_, _, err := f.ProcessVote(NewVote(r.Pair(0), genesis, cp("b", 1)))
	if !errors.Is(err, ErrDoubleVote) {
		t.Fatalf("err = %v", err)
	}
	if !g.IsSlashed(r.Addr(0)) {
		t.Fatal("double voter not slashed")
	}
	if g.TotalStake() != 100 {
		t.Fatal("slashed stake still counted")
	}
}

func TestFFGSurroundVoteSlashes(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 100, 1: 100, 2: 100})
	genesis := cp("genesis", 0)
	f := NewFFG(g, genesis)
	// Justify c1 and c2 with the other two validators so later sources
	// are legal.
	c1, c2 := cp("c1", 1), cp("c2", 2)
	for i := 0; i < 3; i++ {
		if _, _, err := f.ProcessVote(NewVote(r.Pair(i), genesis, c1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{1, 2} {
		if _, _, err := f.ProcessVote(NewVote(r.Pair(i), c1, c2)); err != nil {
			t.Fatal(err)
		}
	}
	// Validator 0 voted genesis(0) -> c1(1). Now it votes c1... no:
	// a surround is s2 < s1 < t1 < t2. Validator 0 casts
	// genesis(0) -> c3(3), surrounding its own (c1->c2)? It only voted
	// 0->1 so far. Cast 1->2 first (inner), then 0->3 (outer).
	if _, _, err := f.ProcessVote(NewVote(r.Pair(0), c1, c2)); err != nil {
		t.Fatal(err)
	}
	_, _, err := f.ProcessVote(NewVote(r.Pair(0), genesis, cp("c3", 3)))
	if !errors.Is(err, ErrSurroundVote) {
		t.Fatalf("err = %v", err)
	}
	if !g.IsSlashed(r.Addr(0)) {
		t.Fatal("surround voter not slashed")
	}
}

func TestFFGSlashedVoteDoesNotCount(t *testing.T) {
	g, r := reg(t, map[int]uint64{0: 400, 1: 100, 2: 100})
	genesis := cp("genesis", 0)
	f := NewFFG(g, genesis)
	// Validator 0 gets slashed; its huge stake must not justify anything.
	g.Slash(r.Addr(0))
	c1 := cp("c1", 1)
	if _, _, err := f.ProcessVote(NewVote(r.Pair(0), genesis, c1)); !errors.Is(err, ErrUnknownValidator) {
		t.Fatalf("err = %v", err)
	}
	// The two remaining 100s do reach 2/3 of the reduced 200 total.
	f.ProcessVote(NewVote(r.Pair(1), genesis, c1))
	j, _, err := f.ProcessVote(NewVote(r.Pair(2), genesis, c1))
	if err != nil || !j {
		t.Fatalf("remaining validators failed to justify: %v", err)
	}
}

func BenchmarkProposer(b *testing.B) {
	r := keys.NewRing("bench", 100)
	g := NewRegistry()
	for i := 0; i < 100; i++ {
		g.Deposit(r.Pair(i).Pub, uint64(i+1))
	}
	seed := hashx.Sum([]byte("seed"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Proposer(uint64(i), seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFGVote(b *testing.B) {
	r := keys.NewRing("bench-ffg", 64)
	g := NewRegistry()
	for i := 0; i < 64; i++ {
		g.Deposit(r.Pair(i).Pub, 100)
	}
	genesis := cp("genesis", 0)
	f := NewFFG(g, genesis)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Advance the epoch once per validator round so repeated votes by
		// the same validator never equivocate within an epoch.
		epoch := uint64(i/64) + 1
		target := Checkpoint{
			Hash:  hashx.Sum([]byte{byte(i), byte(i >> 8), byte(i >> 16)}),
			Epoch: epoch,
		}
		v := NewVote(r.Pair(i%64), genesis, target)
		if _, _, err := f.ProcessVote(v); err != nil {
			b.Fatal(err)
		}
	}
}
