// Package netsim wires the ledgers, consensus engines and the
// discrete-event network into whole-system simulations: a Bitcoin-like
// PoW network, an Ethereum-like network (PoW or slot-based PoS with FFG
// finality), and a Nano-like block-lattice network with Open
// Representative Voting. These produce the measurements behind every
// table in the benchmark harness — fork and orphan rates (Fig. 4),
// confirmation confidence (§IV), ledger growth (§V) and throughput under
// network and hardware limits (§VI).
package netsim

import (
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/pow"
	"repro/internal/sim"
)

// NetParams bundles the network-level knobs shared by all simulations.
type NetParams struct {
	// Nodes is the number of full nodes.
	Nodes int
	// PeerDegree is the gossip fan-out (default 4).
	PeerDegree int
	// MinLatency and MaxLatency bound per-link propagation delay.
	MinLatency time.Duration
	MaxLatency time.Duration
	// BytesPerSec adds bandwidth serialization delay when > 0 (drives
	// the §VI-A block-size centralization experiment).
	BytesPerSec float64
	// Seed drives all randomness.
	Seed int64
	// Shards is the event-queue lane count (sim.NewSharded). Results are
	// identical for every value — the lane merge preserves global event
	// order — so it is a pure capacity knob for mega-scale runs. <= 0
	// means 1 (the single-heap layout).
	Shards int
	// Queue selects the event-queue backend per lane (sim.QueueHeap or
	// sim.QueueCalendar). Like Shards it is a pure performance knob:
	// both backends pop in the identical (time, sequence) order.
	Queue sim.QueueBackend
	// SampleBudget caps the exact sample storage of the per-run latency
	// histograms (propagation, confirmation); beyond it they switch to
	// streaming P² estimation with O(1) memory. <= 0 keeps exact
	// histograms, the default — golden-scale runs stay below any
	// reasonable budget, so budgeted runs render identical tables.
	SampleBudget int
}

// withDefaults fills unset values. Only fields that are actually zero
// are defaulted: a user-set MinLatency survives an unset MaxLatency
// (the default MaxLatency is raised to meet it if needed), and inverted
// bounds are normalized by swapping.
func (p NetParams) withDefaults() NetParams {
	if p.Nodes <= 0 {
		p.Nodes = 16
	}
	if p.PeerDegree <= 0 {
		p.PeerDegree = 4
	}
	if p.PeerDegree >= p.Nodes {
		p.PeerDegree = p.Nodes - 1
	}
	if p.MinLatency < 0 {
		p.MinLatency = 0
	}
	if p.MaxLatency < 0 {
		p.MaxLatency = 0
	}
	switch {
	case p.MinLatency == 0 && p.MaxLatency == 0:
		p.MinLatency = 20 * time.Millisecond
		p.MaxLatency = 200 * time.Millisecond
	case p.MaxLatency == 0:
		p.MaxLatency = 200 * time.Millisecond
		if p.MaxLatency < p.MinLatency {
			p.MaxLatency = p.MinLatency
		}
	case p.MinLatency > p.MaxLatency:
		p.MinLatency, p.MaxLatency = p.MaxLatency, p.MinLatency
	}
	return p
}

// buildNetwork constructs the simulator, link model and gossip topology.
func buildNetwork(p NetParams) (*sim.Simulator, *sim.Network) {
	s := sim.NewQueued(p.Seed, p.Shards, p.Queue)
	links := sim.UniformLinks{
		MinLatency:  p.MinLatency,
		MaxLatency:  p.MaxLatency,
		BytesPerSec: p.BytesPerSec,
	}
	return s, sim.NewNetwork(s, links)
}

// ChainMetrics summarizes a blockchain network run from the observer
// node's perspective.
type ChainMetrics struct {
	// Duration is the simulated span.
	Duration time.Duration
	// BlocksOnMain is the main-chain length (genesis excluded).
	BlocksOnMain int
	// BlocksTotal counts every block produced, side chains included.
	BlocksTotal int
	// Orphaned counts blocks that ended up off the main chain — the
	// "discarded or orphaned" branches of Fig. 4.
	Orphaned int
	// OrphanRate is Orphaned / BlocksTotal.
	OrphanRate float64
	// Reorgs counts main-chain switches; MaxReorgDepth the deepest.
	Reorgs        int
	MaxReorgDepth int
	// ConfirmedTxs counts transactions on the main chain (coinbases and
	// the genesis allocation excluded).
	ConfirmedTxs int
	// TPS is ConfirmedTxs / Duration.
	TPS float64
	// PendingAtEnd is the observer's mempool backlog when the run ended
	// (§VI's pending-transaction figure).
	PendingAtEnd int
	// SubmittedTxs counts payment submissions attempted.
	SubmittedTxs int
	// RejectedTxs counts submissions no node accepted.
	RejectedTxs int
	// LedgerBytes is the observer's main-chain size (§V).
	LedgerBytes int
	// MeanBlockInterval is the observed average spacing of main blocks.
	MeanBlockInterval time.Duration
	// Propagation is the distribution of full-network block propagation
	// times (seconds).
	Propagation metrics.Histogram
	// MessagesSent and BytesSent are network totals.
	MessagesSent int
	BytesSent    int64
}

// CatchUpTrial empirically reproduces Nakamoto's attacker race (§IV-A):
// while the honest chain accumulates the z confirmation blocks the
// attacker mines privately in parallel; afterwards the attacker keeps
// going and wins if its private chain ever pulls level (Nakamoto's
// convention). Each successive block belongs to the attacker with
// probability q. Used to validate pow.CatchUpProbability by simulation.
func CatchUpTrial(rng *rand.Rand, q float64, z, maxSteps int) bool {
	honest, attacker := 0, 0
	for honest < z {
		if rng.Float64() < q {
			attacker++
		} else {
			honest++
		}
	}
	deficit := z - attacker
	if deficit <= 0 {
		return true
	}
	for step := 0; step < maxSteps; step++ {
		if rng.Float64() < q {
			deficit--
			if deficit == 0 {
				return true
			}
		} else {
			deficit++
		}
		// Hopeless deficits end early; the walk drifts away at rate
		// (1-2q) per step, so 200+ behind is effectively gone.
		if deficit > z+200 {
			return false
		}
	}
	return false
}

// EmpiricalCatchUp estimates the attacker-success probability over
// trials, the simulated counterpart of the analytic formula.
func EmpiricalCatchUp(rng *rand.Rand, q float64, z, trials int) float64 {
	if trials <= 0 {
		return 0
	}
	wins := 0
	for i := 0; i < trials; i++ {
		if CatchUpTrial(rng, q, z, 1_000_000) {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}

// observedOrphanRate is a shared helper validating measured rates against
// the analytic expectation of pow.ExpectedOrphanRate.
func observedOrphanRate(m ChainMetrics) (measured, analytic float64) {
	measured = m.OrphanRate
	if m.Propagation.N() > 0 && m.MeanBlockInterval > 0 {
		delay := time.Duration(m.Propagation.Quantile(0.5) * float64(time.Second))
		analytic = pow.ExpectedOrphanRate(delay, m.MeanBlockInterval)
	}
	return measured, analytic
}
