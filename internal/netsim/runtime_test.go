package netsim

// Node-runtime and behavior tests: the honest pass-through must change
// nothing (the golden E1–E15 tables pin that at experiment level; here
// it is pinned at network level), and each adversarial behavior must
// produce its signature footprint — isolation for eclipse, withheld
// releases for selfish mining, quorum starvation for vote withholding.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Installing HonestBehavior explicitly on every node must reproduce the
// nil-behavior (fast path) run exactly: the hooks are pass-through, so
// the event sequence and metrics cannot move.
func TestHonestBehaviorIsByteIdenticalNoOp(t *testing.T) {
	run := func(install bool) ChainMetrics {
		net, err := NewBitcoin(BitcoinConfig{
			Net: fastNet(401), BlockInterval: 20 * time.Second, Accounts: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		if install {
			for i := 0; i < 8; i++ {
				net.Runtime().SetBehavior(sim.NodeID(i), HonestBehavior{})
			}
		}
		rng := rand.New(rand.NewSource(402))
		load := workload.Payments(rng, workload.Config{
			Accounts: 16, Rate: 2, Duration: 4 * time.Minute, MaxAmount: 10,
		})
		return net.RunWithPayments(5*time.Minute, load, 5)
	}
	plain, honest := run(false), run(true)
	if plain.BlocksOnMain != honest.BlocksOnMain || plain.BlocksTotal != honest.BlocksTotal ||
		plain.ConfirmedTxs != honest.ConfirmedTxs || plain.MessagesSent != honest.MessagesSent ||
		plain.BytesSent != honest.BytesSent || plain.PendingAtEnd != honest.PendingAtEnd ||
		plain.Reorgs != honest.Reorgs || plain.Orphaned != honest.Orphaned {
		t.Fatalf("explicit HonestBehavior changed the run:\n%+v\nvs\n%+v", plain, honest)
	}
}

// A custom FilterPeers behavior (the README worked example): relay to at
// most one peer. The filtered node still hears everything but fans out
// almost nothing, so network traffic must drop against the honest run.
type throttledRelay struct {
	HonestBehavior
}

func (throttledRelay) FilterPeers(_ sim.NodeID, peers []sim.NodeID) []sim.NodeID {
	if len(peers) > 1 {
		return peers[:1]
	}
	return peers
}

func TestFilterPeersBehaviorThrottlesRelay(t *testing.T) {
	run := func(throttle bool) ChainMetrics {
		net, err := NewBitcoin(BitcoinConfig{
			Net: fastNet(411), BlockInterval: 15 * time.Second, Accounts: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if throttle {
			for i := 1; i < 8; i++ { // observer stays honest
				net.Runtime().SetBehavior(sim.NodeID(i), throttledRelay{})
			}
		}
		return net.Run(5 * time.Minute)
	}
	full, throttled := run(false), run(true)
	if throttled.MessagesSent >= full.MessagesSent {
		t.Fatalf("throttled relay sent %d messages, honest %d",
			throttled.MessagesSent, full.MessagesSent)
	}
}

// A fully eclipsed Bitcoin victim keeps mining a private, stale view:
// its chain must lag or diverge from the consensus the healthy nodes
// agree on, and the captured links must actually drop traffic.
func TestEclipseIsolatesBitcoinVictim(t *testing.T) {
	net, err := NewBitcoin(BitcoinConfig{
		Net: fastNet(421), BlockInterval: 10 * time.Second, Accounts: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	eb := net.Eclipse(0, 1.0)
	if eb == nil || eb.CapturedPeers() == 0 {
		t.Fatal("full eclipse captured no peers")
	}
	net.Run(8 * time.Minute)
	rep := net.EclipseReport(0)
	if rep.HeightLag == 0 && rep.ExposedBlocks == 0 {
		t.Fatalf("fully eclipsed victim kept up with the network: %+v", rep)
	}
	st := net.Runtime().Stats()
	if st.InboundDropped == 0 && st.OutboundDropped == 0 {
		t.Fatal("eclipse dropped no traffic")
	}
}

// frac <= 0 must be a strict no-op: nil behavior, untouched peer view.
func TestEclipseZeroFractionIsNoOp(t *testing.T) {
	net, err := NewBitcoin(BitcoinConfig{
		Net: fastNet(431), BlockInterval: 10 * time.Second, Accounts: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := len(net.Net().Peers(0))
	if eb := net.Eclipse(0, 0); eb != nil {
		t.Fatal("zero-fraction eclipse installed a behavior")
	}
	if got := len(net.Net().Peers(0)); got != before {
		t.Fatalf("zero-fraction eclipse rewrote the peer view: %d -> %d", before, got)
	}
	if net.Runtime().BehaviorOf(0) != nil {
		t.Fatal("behavior installed at frac 0")
	}
}

// A fully eclipsed Nano victim stops hearing block gossip: its lattice
// falls behind a healthy replica's and its settled count collapses
// against the honest baseline.
func TestEclipseStarvesNanoVictim(t *testing.T) {
	run := func(frac float64) (NanoMetrics, int, int) {
		net, err := NewNano(NanoConfig{
			Net: fastNet(441), Accounts: 24, Reps: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		net.Eclipse(0, frac)
		rng := rand.New(rand.NewSource(442))
		transfers := workload.Payments(rng, workload.Config{
			Accounts: 24, Rate: 6, Duration: 20 * time.Second, MaxAmount: 5,
		})
		m := net.RunWithTransfers(40*time.Second, transfers)
		return m, net.BlockCountOf(0), net.BlockCountOf(1)
	}
	honest, _, _ := run(0)
	eclipsed, victimBlocks, healthyBlocks := run(1)
	if eclipsed.SettledAtObserver*2 >= honest.SettledAtObserver {
		t.Fatalf("eclipsed victim settled %d, honest %d — no starvation",
			eclipsed.SettledAtObserver, honest.SettledAtObserver)
	}
	if victimBlocks >= healthyBlocks {
		t.Fatalf("victim lattice (%d blocks) kept pace with healthy replica (%d)",
			victimBlocks, healthyBlocks)
	}
}

// The selfish miner withholds every block it produces and releases the
// private chain when rivals arrive; with a large hash share its revenue
// share on the main chain must be substantial, and the withheld/released
// accounting must balance.
func TestSelfishMinerWithholdsAndReleases(t *testing.T) {
	net, err := NewBitcoin(BitcoinConfig{
		Net:           fastNet(451),
		BlockInterval: 10 * time.Second,
		Accounts:      8,
		// Node 7 holds ~40% of the power.
		HashRates: []float64{1, 1, 1, 1, 1, 1, 1, 4.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	sm := net.InstallSelfishMiner(7)
	net.Run(10 * time.Minute)
	if sm.Produced() == 0 {
		t.Fatal("selfish miner never produced")
	}
	if sm.Released() == 0 {
		t.Fatal("selfish miner never released its private chain")
	}
	if sm.Released()+sm.Withheld() != sm.Produced() {
		t.Fatalf("withheld accounting broken: produced %d, released %d, still private %d",
			sm.Produced(), sm.Released(), sm.Withheld())
	}
	// Race-winning blocks publish directly (OnProduce true), so the
	// runtime's withheld count is bounded by — not equal to — produced.
	if got := net.Runtime().Stats().BlocksWithheld; got == 0 || got > sm.Produced() {
		t.Fatalf("runtime counted %d withheld blocks, behavior produced %d", got, sm.Produced())
	}
	mined, total := net.MinerShare(7)
	if total == 0 || mined == 0 {
		t.Fatalf("no attributed main-chain revenue: %d/%d", mined, total)
	}
}

// Withholding a majority of the voting weight must stall confirmations:
// quorum is unreachable, so the observer confirms (almost) nothing,
// while the zero-withholding baseline confirms plenty.
func TestVoteWithholdingStallsQuorum(t *testing.T) {
	run := func(frac float64) (NanoMetrics, float64) {
		net, err := NewNano(NanoConfig{
			Net: fastNet(461), Accounts: 24, Reps: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := net.InstallVoteWithholding(frac)
		rng := rand.New(rand.NewSource(462))
		transfers := workload.Payments(rng, workload.Config{
			Accounts: 24, Rate: 6, Duration: 20 * time.Second, MaxAmount: 5,
		})
		return net.RunWithTransfers(40*time.Second, transfers), got
	}
	baseline, frac0 := run(0)
	if frac0 != 0 {
		t.Fatalf("zero request withheld %.2f of the weight", frac0)
	}
	stalled, frac6 := run(0.6)
	if frac6 < 0.5 {
		t.Fatalf("requested 60%% withholding, got %.2f", frac6)
	}
	if baseline.ConfirmedBlocks == 0 {
		t.Fatal("baseline confirmed nothing")
	}
	if stalled.ConfirmedBlocks*10 > baseline.ConfirmedBlocks {
		t.Fatalf("majority withholding still confirmed %d blocks (baseline %d)",
			stalled.ConfirmedBlocks, baseline.ConfirmedBlocks)
	}
}

// SetPeersOf rewrites only the targeted node's relay view.
func TestSetPeersOfIsPerNode(t *testing.T) {
	net, err := NewBitcoin(BitcoinConfig{
		Net: fastNet(471), BlockInterval: 10 * time.Second, Accounts: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	othersBefore := append([]sim.NodeID(nil), net.Net().Peers(1)...)
	net.Net().SetPeersOf(0, []sim.NodeID{3})
	if got := net.Net().Peers(0); len(got) != 1 || got[0] != 3 {
		t.Fatalf("SetPeersOf(0) = %v", got)
	}
	after := net.Net().Peers(1)
	if len(after) != len(othersBefore) {
		t.Fatalf("rewriting node 0's view changed node 1's: %v -> %v", othersBefore, after)
	}
}
