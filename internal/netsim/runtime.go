// The shared node-runtime layer: every network simulation used to
// hand-roll node structs, handler dispatch, publish/relay plumbing and
// metric collection three times over. NodeRuntime owns that lifecycle
// once — node registration, inbound dispatch, peer-filtered relay,
// unicast and broadcast — and threads every interaction through a
// per-node Behavior, the seam where adversarial strategies (eclipse,
// selfish mining, vote withholding) plug in without touching the
// protocol code. With every node on the honest pass-through the runtime
// reproduces the historical event sequence byte for byte.
package netsim

import (
	"time"

	"repro/internal/chain"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/sim"
)

// Behavior customizes one node's interaction with the network. Every
// interception point defaults to honest pass-through (HonestBehavior);
// adversarial strategies override the points they need:
//
//   - FilterPeers rewrites the peer list a relay fans out to.
//   - OnInbound vets a delivered message; false drops it unseen.
//   - OnOutbound vets one send; false suppresses that delivery.
//   - OnProduce vets a locally produced block; false withholds it from
//     the network (the producer's own ledger keeps it — a private chain).
//   - OnVote vets a consensus vote this node is about to cast; false
//     withholds it entirely (not even tallied locally).
//
// Behaviors run inside the deterministic simulation loop: they must not
// draw randomness outside the simulator's rng or mutate other nodes.
type Behavior interface {
	FilterPeers(node sim.NodeID, peers []sim.NodeID) []sim.NodeID
	OnInbound(node, from sim.NodeID, payload any, size int) bool
	OnOutbound(node, to sim.NodeID, payload any, size int) bool
	OnProduce(node sim.NodeID, block any) bool
	OnVote(node sim.NodeID, vote any) bool
}

// HonestBehavior is the protocol-following default: every hook passes
// through. Custom behaviors embed it and override only the points they
// intercept.
type HonestBehavior struct{}

// FilterPeers returns the peer list unchanged.
func (HonestBehavior) FilterPeers(_ sim.NodeID, peers []sim.NodeID) []sim.NodeID { return peers }

// OnInbound accepts every delivery.
func (HonestBehavior) OnInbound(_, _ sim.NodeID, _ any, _ int) bool { return true }

// OnOutbound allows every send.
func (HonestBehavior) OnOutbound(_, _ sim.NodeID, _ any, _ int) bool { return true }

// OnProduce publishes every produced block.
func (HonestBehavior) OnProduce(_ sim.NodeID, _ any) bool { return true }

// OnVote casts every vote.
func (HonestBehavior) OnVote(_ sim.NodeID, _ any) bool { return true }

// BehaviorStats counts what the installed behaviors suppressed — the
// stat hook experiments read to report an attack's footprint.
type BehaviorStats struct {
	// InboundDropped counts deliveries a receiver's behavior discarded.
	InboundDropped int
	// OutboundDropped counts sends a sender's behavior suppressed.
	OutboundDropped int
	// BlocksWithheld counts produced blocks kept private (OnProduce).
	BlocksWithheld int
	// VotesWithheld counts consensus votes never cast (OnVote).
	VotesWithheld int
}

// NodeRuntime owns the per-node lifecycle every simulation shares: node
// registration and handler dispatch, behavior-mediated relay/unicast/
// broadcast, and the behavior stat counters. One runtime serves one
// network simulation.
type NodeRuntime struct {
	sim       *sim.Simulator
	net       *sim.Network
	behaviors []Behavior // nil entry = honest (zero-overhead fast path)
	stats     BehaviorStats
}

// newNodeRuntime wraps a simulator and network in a runtime.
func newNodeRuntime(s *sim.Simulator, net *sim.Network) *NodeRuntime {
	return &NodeRuntime{sim: s, net: net}
}

// Sim returns the underlying simulator.
func (r *NodeRuntime) Sim() *sim.Simulator { return r.sim }

// Net returns the underlying network.
func (r *NodeRuntime) Net() *sim.Network { return r.net }

// Stats returns a snapshot of the behavior counters.
func (r *NodeRuntime) Stats() BehaviorStats { return r.stats }

// AddNode registers a node whose deliveries are vetted by its behavior
// before reaching dispatch. The returned id equals the node's index in
// registration order.
func (r *NodeRuntime) AddNode(dispatch sim.Handler) sim.NodeID {
	id := r.net.AddNode(nil)
	r.behaviors = append(r.behaviors, nil)
	r.net.SetHandler(id, func(from sim.NodeID, payload any, size int) {
		if b := r.behaviors[id]; b != nil && !b.OnInbound(id, from, payload, size) {
			r.stats.InboundDropped++
			return
		}
		dispatch(from, payload, size)
	})
	return id
}

// SetBehavior installs (or, with nil, removes) a node's behavior.
func (r *NodeRuntime) SetBehavior(id sim.NodeID, b Behavior) {
	if int(id) < len(r.behaviors) {
		r.behaviors[id] = b
	}
}

// BehaviorOf returns a node's installed behavior (nil = honest).
func (r *NodeRuntime) BehaviorOf(id sim.NodeID) Behavior {
	if int(id) < len(r.behaviors) {
		return r.behaviors[id]
	}
	return nil
}

// send delivers one message through the sender's outbound hook. The
// BehaviorOf lookup tolerates nodes registered directly on the network
// (outside AddNode): they simply have no behavior.
func (r *NodeRuntime) send(from, to sim.NodeID, payload any, size int) {
	if b := r.BehaviorOf(from); b != nil && !b.OnOutbound(from, to, payload, size) {
		r.stats.OutboundDropped++
		return
	}
	r.net.Send(from, to, payload, size)
}

// Unicast sends one message to one node through the outbound hook.
func (r *NodeRuntime) Unicast(from, to sim.NodeID, payload any, size int) {
	r.send(from, to, payload, size)
}

// Relay fans a message out along the sender's behavior-filtered peer
// list — the gossip primitive all three networks flood blocks with.
func (r *NodeRuntime) Relay(from sim.NodeID, payload any, size int) {
	peers := r.net.Peers(from)
	if b := r.BehaviorOf(from); b != nil {
		peers = b.FilterPeers(from, peers)
	}
	for _, p := range peers {
		r.send(from, p, payload, size)
	}
}

// Broadcast sends a message from one node directly to every other node
// in index order — the idealized dissemination votes and post-fault
// catch-up exchanges use.
func (r *NodeRuntime) Broadcast(from sim.NodeID, payload any, size int) {
	for i := 0; i < r.net.NumNodes(); i++ {
		if sim.NodeID(i) != from {
			r.send(from, sim.NodeID(i), payload, size)
		}
	}
}

// produceAllowed consults the producer's behavior for a locally created
// block; false means the block is withheld from the network.
func (r *NodeRuntime) produceAllowed(node sim.NodeID, block any) bool {
	if b := r.BehaviorOf(node); b != nil && !b.OnProduce(node, block) {
		r.stats.BlocksWithheld++
		return false
	}
	return true
}

// voteAllowed consults the voter's behavior for a consensus vote; false
// means the vote is withheld entirely.
func (r *NodeRuntime) voteAllowed(node sim.NodeID, vote any) bool {
	if b := r.BehaviorOf(node); b != nil && !b.OnVote(node, vote) {
		r.stats.VotesWithheld++
		return false
	}
	return true
}

// chainLedger is the ledger surface the chain-side runtime drives; both
// utxo.Ledger (Bitcoin) and account.Ledger (Ethereum) satisfy it — the
// two chain networks differ only in ledger semantics, never in gossip,
// production or measurement plumbing.
type chainLedger interface {
	ProcessBlock(*chain.Block) (chain.AddResult, error)
	BuildBlock(proposer keys.Address, now time.Duration) *chain.Block
	BuildBlockOn(parent hashx.Hash, proposer keys.Address, now time.Duration) (*chain.Block, error)
	Height() uint64
	Store() *chain.Store
	PoolLen() int
	LedgerBytes() int
}

// chainRuntime is the node-runtime core the two chain networks share:
// first-seen block gossip with reach/propagation tracking, block
// production with miner attribution, payment-submission accounting,
// post-fault catch-up exchange, and metric collection from the observer
// (node 0).
type chainRuntime struct {
	rt      *NodeRuntime
	ledgers []chainLedger

	// Struct-of-arrays block state (soa.go): blocks get dense ids in
	// first-sight order (blockIDs), per-node first-seen gossip dedup is
	// one pooled bit matrix sized once per network (seen), and the
	// per-block bookkeeping lives in id-indexed columns — replacing one
	// hash map per node plus three network-wide hash-keyed maps.
	blockIDs  *dex[hashx.Hash]
	seen      *bitRows
	createdAt []time.Duration // block id -> creation time
	minedBy   []int32         // block id -> producing node, -1 = unattributed
	reach     []int32         // block id -> nodes reached

	metrics ChainMetrics
	// Mean block interval needs only the span of production times, so the
	// old append-per-block slice collapses to first/last/count.
	firstBlockAt time.Duration
	lastBlockAt  time.Duration
	blockCount   int

	// confirmedTxs maps the observer's (txsOnMain, blocksOnMain) to the
	// confirmed-transaction count — Bitcoin discounts coinbases and the
	// genesis allocation, Ethereum counts main-chain txs directly.
	confirmedTxs func(txsOnMain, blocksOnMain int) int

	// selfish is the installed selfish-mining adversary, consulted by the
	// production path for the γ side of the 1-1 race (nil = none).
	selfish *SelfishMiningBehavior
	// raceChances counts honest block wins while the adversary's 1-1 race
	// was open (the γ coin's opportunities); raceTaken counts the wins
	// that actually extended the adversary's published block. Their ratio
	// is the measured "effective γ" E17 reports next to the configured
	// value. Both stay zero in honest runs.
	raceChances, raceTaken int

	// consensusScratch is eclipseReport's reusable membership set.
	consensusScratch *epochSet

	// sync runs the pull side of catch-up (syncmgr.go): single-block
	// pulls for orphan-eviction re-fetch and cold-start range pulls over
	// the main chain. Armed only by a cold start; disarmed it adds no
	// events, keeping honest runs byte-identical.
	sync *syncManager
}

// newChainRuntime builds the shared chain core over a fresh runtime,
// with the per-node dedup matrix sized for the network's node count.
func newChainRuntime(s *sim.Simulator, net *sim.Network, nodes int, confirmedTxs func(txsOnMain, blocksOnMain int) int) *chainRuntime {
	c := &chainRuntime{
		rt:           newNodeRuntime(s, net),
		blockIDs:     newDex[hashx.Hash](256),
		seen:         newBitRows(nodes, 256),
		confirmedTxs: confirmedTxs,
	}
	c.sync = newSyncManager(c.rt, func(node sim.NodeID, h hashx.Hash) bool {
		return c.ledgers[node].Store().HasBlock(h)
	})
	return c
}

// blockSlot returns h's dense id, growing the id-indexed bookkeeping
// columns in lockstep so the slot is addressable.
func (c *chainRuntime) blockSlot(h hashx.Hash) int32 {
	id := c.blockIDs.id(h)
	for int(id) >= len(c.reach) {
		c.reach = append(c.reach, 0)
		c.createdAt = append(c.createdAt, 0)
		c.minedBy = append(c.minedBy, -1)
	}
	return id
}

// addNode registers one chain full node: first-seen blocks are counted
// toward propagation, processed into the ledger, and re-flooded to the
// node's (behavior-filtered) peers. The returned id equals the node's
// index.
func (c *chainRuntime) addNode(l chainLedger) sim.NodeID {
	idx := len(c.ledgers)
	c.ledgers = append(c.ledgers, l)
	l.Store().SetOrphanEvicted(func(b *chain.Block) {
		// Bounded orphan pool: the evicted block's dedup bit is cleared
		// so gossip (or a served pull) can re-deliver it, and when the
		// sync manager is armed a deferred re-pull fetches it back from
		// a live peer that adopted it.
		c.sync.stats.BacklogEvicted++
		h := b.Hash()
		c.seen.clear(idx, c.blockSlot(h))
		if !c.sync.armed {
			return
		}
		c.rt.sim.After(gapRepairDelay, func() {
			if tgt := c.sync.rotateTarget(sim.NodeID(idx), sim.NodeID(idx)); tgt != sim.NodeID(idx) {
				c.sync.Pull(sim.NodeID(idx), h, tgt)
			}
		})
	})
	return c.rt.AddNode(func(from sim.NodeID, payload any, size int) {
		switch msg := payload.(type) {
		case *chain.Block:
			id := c.blockSlot(msg.Hash())
			if c.seen.testSet(idx, id) {
				return
			}
			c.reach[id]++
			if int(c.reach[id]) == len(c.ledgers) {
				c.metrics.Propagation.AddDuration(c.rt.sim.Now() - c.createdAt[id])
			}
			// Processing errors mean a byzantine block; honest sims don't
			// produce them, and a relay node still floods valid-looking data.
			_, _ = l.ProcessBlock(msg)
			c.rt.Relay(sim.NodeID(idx), msg, msg.Size())
		case *blockRequest:
			c.serveBlock(idx, from, msg)
		case *rangeRequest:
			c.serveMainRange(idx, from, msg)
		case *rangeReply:
			c.sync.onRangeReply(sim.NodeID(idx), msg)
		}
	})
}

// serveBlock answers a single-block pull from this node's store (side
// and orphan-adopted blocks included — anything attached is servable).
func (c *chainRuntime) serveBlock(idx int, to sim.NodeID, req *blockRequest) {
	if blk, ok := c.ledgers[idx].Store().Get(req.Hash); ok {
		c.sync.stats.BlocksServed++
		c.sync.stats.BytesServed += int64(blk.Size())
		c.rt.Unicast(sim.NodeID(idx), to, blk, blk.Size())
	}
}

// serveMainRange streams one window of this node's main chain — the
// canonical height-ordered history — to a cold-syncing puller.
func (c *chainRuntime) serveMainRange(idx int, to sim.NodeID, req *rangeRequest) {
	st := c.ledgers[idx].Store()
	main := st.MainChain()
	c.sync.serveRange(sim.NodeID(idx), to, req, len(main), func(i int) (any, int) {
		blk, _ := st.Get(main[i])
		return blk, blk.Size()
	})
}

// scheduleColdStart detaches a node at detachAt and rejoins it at
// rejoinAt through the sync manager: the node pulls the main chain from
// a live peer in windows of batch blocks (E20's bootstrap scenario).
func (c *chainRuntime) scheduleColdStart(node int, detachAt, rejoinAt time.Duration, batch int) {
	id := sim.NodeID(node)
	c.rt.sim.At(detachAt, func() { c.rt.net.Detach(id) })
	c.rt.sim.At(rejoinAt, func() {
		c.rt.net.Attach(id)
		target := c.sync.rotateTarget(id, id)
		if target == id {
			return // no live peer to sync from
		}
		c.sync.StartColdSync(id, target, batch)
	})
}

// produce lets node idx extend its own view with a freshly won block —
// the stale-tip race that produces Fig. 4's soft forks when propagation
// lags — then floods it, unless the producer's behavior withholds it
// (selfish mining keeps it on a private chain until release).
func (c *chainRuntime) produce(idx int, proposer keys.Address, difficulty float64) *chain.Block {
	blk := c.ledgers[idx].BuildBlock(proposer, c.rt.sim.Now())
	blk.Header.Difficulty = difficulty
	c.publishProduced(idx, blk)
	return blk
}

// publishProduced runs the shared bookkeeping for a freshly won block —
// creation time, miner attribution, totals, first-seen state — applies
// it to the producer's own ledger, and floods it unless the producer's
// behavior withholds it.
func (c *chainRuntime) publishProduced(idx int, blk *chain.Block) {
	id := c.blockSlot(blk.Hash())
	now := c.rt.sim.Now()
	c.createdAt[id] = now
	c.minedBy[id] = int32(idx)
	c.metrics.BlocksTotal++
	if c.blockCount == 0 {
		c.firstBlockAt = now
	}
	c.lastBlockAt = now
	c.blockCount++
	c.seen.testSet(idx, id)
	c.reach[id] = 1
	_, _ = c.ledgers[idx].ProcessBlock(blk)
	if c.rt.produceAllowed(sim.NodeID(idx), blk) {
		c.rt.Relay(sim.NodeID(idx), blk, blk.Size())
	}
}

// raceProduce is the γ side of the selfish miner's 1-1 race: while the
// race is open, a fraction gamma of honest block wins extend the
// adversary's published block instead of the winner's own first-seen
// tip (Eyal–Sirer's connectivity parameter). It reports whether it
// produced the block; false sends the caller down the normal produce
// path. The rng is drawn only when an installed adversary with γ > 0
// actually has a race open, so γ = 0 — and every honest run —
// reproduces the historical event stream byte for byte.
func (c *chainRuntime) raceProduce(idx int, proposer keys.Address, difficulty float64) bool {
	b := c.selfish
	if b == nil || b.gamma <= 0 || !b.raceOpen || sim.NodeID(idx) == b.node {
		return false
	}
	// Every honest win past this point was a γ opportunity — including
	// wins where the adversary's block had not yet propagated to the
	// winner, which is exactly the gap between configured and effective γ.
	c.raceChances++
	node := c.ledgers[idx]
	if _, ok := node.Store().Get(b.raceTip); !ok {
		return false // the adversary's block has not reached this miner yet
	}
	if c.rt.sim.Rand().Float64() >= b.gamma {
		return false
	}
	blk, err := node.BuildBlockOn(b.raceTip, proposer, c.rt.sim.Now())
	if err != nil {
		return false
	}
	blk.Header.Difficulty = difficulty
	c.publishProduced(idx, blk)
	c.raceTaken++
	return true
}

// produceWithRace is the production entry for honest block wins: the γ
// side of an open selfish race first, the winner's own tip otherwise.
// Keeping the fallback here — not at the per-network call sites — means
// a new production path gets the γ seam for free.
func (c *chainRuntime) produceWithRace(idx int, proposer keys.Address, difficulty float64) {
	if !c.raceProduce(idx, proposer, difficulty) {
		c.produce(idx, proposer, difficulty)
	}
}

// releaseBlock floods a previously withheld block — the selfish miner's
// publish action. Creation-time bookkeeping already happened in produce.
func (c *chainRuntime) releaseBlock(idx int, blk *chain.Block) {
	c.rt.Relay(sim.NodeID(idx), blk, blk.Size())
}

// scheduleSubmit arms a payment submission at the given time: attempt
// builds and pools the transaction and reports acceptance; the runtime
// owns the submitted/rejected accounting both chains used to duplicate.
func (c *chainRuntime) scheduleSubmit(at time.Duration, attempt func() bool) {
	c.rt.sim.At(at, func() {
		c.metrics.SubmittedTxs++
		if !attempt() {
			c.metrics.RejectedTxs++
		}
	})
}

// collect summarizes the run from the observer's (node 0) perspective.
func (c *chainRuntime) collect(duration time.Duration) ChainMetrics {
	obs := c.ledgers[0]
	st := obs.Store().Stats()
	m := &c.metrics
	m.Duration = duration
	m.BlocksOnMain = int(obs.Height())
	m.Orphaned = st.OrphanedTotal
	if m.BlocksTotal > 0 {
		m.OrphanRate = float64(m.Orphaned) / float64(m.BlocksTotal)
	}
	m.Reorgs = st.Reorgs
	m.MaxReorgDepth = st.MaxReorgDepth
	m.ConfirmedTxs = c.confirmedTxs(st.TxsOnMain, m.BlocksOnMain)
	if m.ConfirmedTxs < 0 {
		m.ConfirmedTxs = 0
	}
	if duration > 0 {
		m.TPS = float64(m.ConfirmedTxs) / duration.Seconds()
	}
	m.PendingAtEnd = obs.PoolLen()
	m.LedgerBytes = obs.LedgerBytes()
	if c.blockCount > 1 {
		span := c.lastBlockAt - c.firstBlockAt
		m.MeanBlockInterval = span / time.Duration(c.blockCount-1)
	}
	ns := c.rt.net.Stats()
	m.MessagesSent = ns.MessagesSent
	m.BytesSent = ns.BytesSent
	return *m
}

// faultSurface exposes the pieces the fault driver schedules against.
func (c *chainRuntime) faultSurface() (*sim.Simulator, *sim.Network, int) {
	return c.rt.sim, c.rt.net, len(c.ledgers)
}

// broadcastMainChain floods a node's main chain to everyone — the
// post-heal IBD stand-in; dedup at the receivers keeps the cost one
// delivery per missing block.
func (c *chainRuntime) broadcastMainChain(idx int) {
	l := c.ledgers[idx]
	for _, h := range l.Store().MainChain() {
		if blk, ok := l.Store().Get(h); ok {
			c.rt.Broadcast(sim.NodeID(idx), blk, blk.Size())
		}
	}
}

// sendMainChain serves one node's main chain directly to another — the
// catch-up a rejoining churn node receives from a live peer.
func (c *chainRuntime) sendMainChain(from, to int) {
	l := c.ledgers[from]
	for _, h := range l.Store().MainChain() {
		if blk, ok := l.Store().Get(h); ok {
			c.rt.Unicast(sim.NodeID(from), sim.NodeID(to), blk, blk.Size())
		}
	}
}

// tipsConverged reports whether every node agrees on the chain tip.
func (c *chainRuntime) tipsConverged() bool {
	tip := c.ledgers[0].Store().Tip()
	for _, l := range c.ledgers[1:] {
		if l.Store().Tip() != tip {
			return false
		}
	}
	return true
}

// convergedWithin reports whether every node agrees with the observer's
// main chain at depth back below the observer's tip — tip equality with
// a tolerance for blocks still propagating at the cutoff instant.
func (c *chainRuntime) convergedWithin(back int) bool {
	obs := c.ledgers[0]
	target := int(obs.Height()) - back
	if target < 0 {
		target = 0
	}
	want, ok := obs.Store().HashAtHeight(uint64(target))
	if !ok {
		return false
	}
	for _, l := range c.ledgers[1:] {
		if got, ok := l.Store().HashAtHeight(uint64(target)); !ok || got != want {
			return false
		}
	}
	return true
}

// minerShare reports how many attributed observer main-chain blocks node
// idx produced, against all attributed main-chain blocks — the revenue
// accounting selfish-mining experiments sweep (genesis carries no
// attribution and is excluded).
func (c *chainRuntime) minerShare(idx int) (mined, total int) {
	for _, h := range c.ledgers[0].Store().MainChain() {
		id, ok := c.blockIDs.lookup(h)
		if !ok || int(id) >= len(c.minedBy) || c.minedBy[id] < 0 {
			continue // genesis and injected blocks carry no attribution
		}
		total++
		if c.minedBy[id] == int32(idx) {
			mined++
		}
	}
	return mined, total
}

// effectiveGamma reports the measured γ-race outcome: how many honest
// wins happened while the adversary's race was open, and how many of
// them extended the adversary's block.
func (c *chainRuntime) effectiveGamma() (taken, chances int) {
	return c.raceTaken, c.raceChances
}

// EclipseReport summarizes a victim's divergence from the rest of the
// network after an eclipse: how far its chain lags the consensus view
// and how many of its main-chain blocks the consensus never adopted —
// the window a double spend against the victim rides through.
type EclipseReport struct {
	// VictimHeight and ConsensusHeight are the victim's main-chain
	// height and the highest main-chain height among the other nodes.
	VictimHeight, ConsensusHeight uint64
	// HeightLag is max(0, ConsensusHeight - VictimHeight).
	HeightLag int
	// ExposedBlocks counts victim main-chain blocks (genesis excluded)
	// absent from the consensus main chain: confirmations the victim
	// trusts that the network will never honor.
	ExposedBlocks int
}

// eclipseReport compares the victim's chain against the best chain held
// by any other node (ties broken toward the lowest index, so the report
// is deterministic).
func (c *chainRuntime) eclipseReport(victim int) EclipseReport {
	var r EclipseReport
	best := -1
	for i, l := range c.ledgers {
		if i == victim {
			continue
		}
		if best < 0 || l.Height() > c.ledgers[best].Height() {
			best = i
		}
	}
	if best < 0 {
		return r
	}
	r.VictimHeight = c.ledgers[victim].Height()
	r.ConsensusHeight = c.ledgers[best].Height()
	if r.ConsensusHeight > r.VictimHeight {
		r.HeightLag = int(r.ConsensusHeight - r.VictimHeight)
	}
	// The consensus membership set is epoch-stamped scratch over the dense
	// block ids — reused across calls, cleared in O(1).
	if c.consensusScratch == nil {
		c.consensusScratch = newEpochSet(c.blockIDs.size())
	}
	onConsensus := c.consensusScratch
	onConsensus.clear()
	for _, h := range c.ledgers[best].Store().MainChain() {
		onConsensus.add(c.blockSlot(h))
	}
	for i, h := range c.ledgers[victim].Store().MainChain() {
		if i == 0 {
			continue // shared genesis
		}
		if !onConsensus.has(c.blockSlot(h)) {
			r.ExposedBlocks++
		}
	}
	return r
}
