package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/hashx"
	"repro/internal/orv"
	"repro/internal/workload"
)

func TestNanoBatchDefaults(t *testing.T) {
	c := NanoConfig{BatchSize: 8}.withDefaults()
	if c.BatchWindow != 5*time.Millisecond {
		t.Fatalf("BatchWindow default = %v, want 5ms", c.BatchWindow)
	}
	serial := NanoConfig{}.withDefaults()
	if serial.BatchSize > 1 || serial.BatchWindow != 0 {
		t.Fatalf("serial defaults grew batch knobs: %+v", serial)
	}
	custom := NanoConfig{BatchSize: 8, BatchWindow: time.Millisecond}.withDefaults()
	if custom.BatchWindow != time.Millisecond {
		t.Fatalf("user BatchWindow overwritten: %v", custom.BatchWindow)
	}
}

// nanoRun drives one Nano network with a fixed workload and returns the
// metrics plus the network for state inspection.
func nanoRun(t testing.TB, batch int, window time.Duration) (NanoMetrics, *NanoNet) {
	t.Helper()
	cfg := NanoConfig{
		Net:         fastNet(141),
		Accounts:    24,
		Reps:        4,
		BatchSize:   batch,
		BatchWindow: window,
	}
	net, err := NewNano(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(142))
	transfers := workload.Payments(rng, workload.Config{
		Accounts: 24, Rate: 6, Duration: 30 * time.Second, MaxAmount: 10,
	})
	return net.RunWithTransfers(time.Minute, transfers), net
}

// The tentpole guarantee: BatchSize <= 1 is the historical serial path —
// an explicit 1 and an unset knob produce byte-identical runs.
func TestNanoBatchSizeOneMatchesSerial(t *testing.T) {
	serial, serialNet := nanoRun(t, 0, 0)
	one, oneNet := nanoRun(t, 1, 0)
	if serial.SendsCreated != one.SendsCreated ||
		serial.SettledAtObserver != one.SettledAtObserver ||
		serial.ConfirmedBlocks != one.ConfirmedBlocks ||
		serial.MessagesSent != one.MessagesSent ||
		serial.BytesSent != one.BytesSent ||
		serial.VotesSent != one.VotesSent {
		t.Fatalf("BatchSize=1 diverged from unset:\nserial: %+v\nbatch1: %+v", serial, one)
	}
	if one.GossipBatches != 0 || one.GossipBatchedBlocks != 0 {
		t.Fatalf("serial run recorded gossip batches: %+v", one)
	}
	for i := range serialNet.nodes {
		for acct := 0; acct < 24; acct++ {
			a, _ := serialNet.nodes[i].lat.Head(serialNet.Ring().Addr(acct))
			b, _ := oneNet.nodes[i].lat.Head(oneNet.Ring().Addr(acct))
			if a != b {
				t.Fatalf("node %d account %d head diverged between unset and BatchSize=1", i, acct)
			}
		}
	}
}

// Batched gossip settlement must still settle the workload, confirm by
// vote, relay every block exactly once per link, and converge all
// replicas — with the ingest queue actually batching.
func TestNanoBatchedGossipConverges(t *testing.T) {
	m, net := nanoRun(t, 8, 5*time.Millisecond)
	if m.GossipBatches == 0 || m.GossipBatchedBlocks == 0 {
		t.Fatalf("batching enabled but no batches flushed: %+v", m)
	}
	if m.GossipBatchedBlocks < m.GossipBatches {
		t.Fatalf("batch accounting inverted: %d blocks in %d batches",
			m.GossipBatchedBlocks, m.GossipBatches)
	}
	if m.SendsCreated == 0 {
		t.Fatal("no sends created")
	}
	if frac := float64(m.SettledAtObserver) / float64(m.SendsCreated); frac < 0.9 {
		t.Fatalf("only %.0f%% of sends settled under batching", frac*100)
	}
	if m.ConfirmedBlocks == 0 {
		t.Fatal("no blocks confirmed by vote under batching")
	}
	// All replicas converge on all account heads and conserve value.
	obs := net.nodes[0].lat
	for i, node := range net.nodes {
		if err := node.lat.CheckInvariant(); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if i == 0 {
			continue
		}
		for acct := 0; acct < 24; acct++ {
			addr := net.Ring().Addr(acct)
			want, _ := obs.Head(addr)
			got, _ := node.lat.Head(addr)
			if got != want {
				t.Fatalf("node %d diverged from observer on account %d", i, acct)
			}
		}
	}
}

// A fork injected into a batching network must still be detected and
// resolved by representative vote on every replica.
func TestNanoBatchedDoubleSpendResolved(t *testing.T) {
	cfg := NanoConfig{
		Net:         fastNet(151),
		Accounts:    16,
		Reps:        4,
		BatchSize:   4,
		BatchWindow: 2 * time.Millisecond,
	}
	net, err := NewNano(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.InjectDoubleSpend(5, 2, 3, 10, time.Second)
	m := net.Run(30 * time.Second)
	if m.ForksDetected == 0 {
		t.Fatal("observer never detected the fork under batching")
	}
	head, ok := net.nodes[0].lat.Head(net.Ring().Addr(5))
	if !ok {
		t.Fatal("attacker account missing")
	}
	for i, node := range net.nodes[1:] {
		other, _ := node.lat.Head(net.Ring().Addr(5))
		if other != head {
			t.Fatalf("node %d disagrees on fork winner under batching", i+1)
		}
	}
	for i, node := range net.nodes {
		if err := node.lat.CheckInvariant(); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
}

// Flooding votes for candidates that never materialize must not grow the
// pending buffer past its caps.
func TestNanoPendingVoteFloodBounded(t *testing.T) {
	net, err := NewNano(NanoConfig{Net: fastNet(161), Accounts: 8, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	node := net.nodes[1]
	rep := net.Ring().Pair(0) // a representative with real weight
	// Overflow the candidate table with single-vote ghosts...
	for i := 0; i < maxPendingVoteCandidates+64; i++ {
		ghost := hashx.Sum([]byte(fmt.Sprintf("never-materializes-%d", i)))
		net.onVote(node, orv.NewVote(rep, ghost, 1))
	}
	// ...and overflow one candidate's per-candidate buffer.
	crowded := hashx.Sum([]byte("crowded-ghost"))
	for seq := uint64(1); seq <= maxPendingVotesPerCandidate+8; seq++ {
		net.onVote(node, orv.NewVote(rep, crowded, seq))
	}
	if got := len(node.pendingVotes); got > maxPendingVoteCandidates {
		t.Fatalf("pendingVotes candidates = %d, cap %d", got, maxPendingVoteCandidates)
	}
	for c, waiting := range node.pendingVotes {
		if len(waiting) > maxPendingVotesPerCandidate {
			t.Fatalf("candidate %s buffers %d votes, cap %d",
				c, len(waiting), maxPendingVotesPerCandidate)
		}
	}
	if got := len(node.pendingOrder); got > 2*maxPendingVoteCandidates+1 {
		t.Fatalf("pendingOrder grew unbounded: %d", got)
	}
	// Evicted votes must not be poisoned in the dedup set: a rebroadcast
	// of the oldest (evicted) ghost's vote is buffered again.
	ghost0 := hashx.Sum([]byte("never-materializes-0"))
	if _, live := node.pendingVotes[ghost0]; live {
		t.Fatal("oldest ghost should have been evicted by the flood")
	}
	net.onVote(node, orv.NewVote(rep, ghost0, 1))
	if got := len(node.pendingVotes[ghost0]); got != 1 {
		t.Fatalf("rebroadcast of an evicted vote not re-buffered (got %d buffered)", got)
	}
}

// The seen-vote dedup set rotates generations instead of growing forever,
// and recent votes still dedup.
func TestNanoSeenVoteSetBounded(t *testing.T) {
	net, err := NewNano(NanoConfig{Net: fastNet(171), Accounts: 8, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	row := net.nodes[1].row()
	for i := int32(0); i < maxSeenVotes+maxSeenVotes/2; i++ {
		if net.seenVotes.seen(row, i) {
			t.Fatalf("fresh vote id %d reported as seen", i)
		}
		net.seenVotes.mark(row, i)
	}
	// The live generation's population is tracked exactly; the previous
	// generation held at most one full generation when it rotated out.
	if live := net.seenVotes.count[row]; live > maxSeenVotes {
		t.Fatalf("live dedup generation holds %d ids, bound %d", live, maxSeenVotes)
	}
	last := int32(maxSeenVotes + maxSeenVotes/2 - 1)
	if !net.seenVotes.seen(row, last) {
		t.Fatal("recently seen vote not deduplicated")
	}
	net.seenVotes.unmark(row, last)
	if net.seenVotes.seen(row, last) {
		t.Fatal("unmark did not forget the id")
	}
	// Rotation must be per node: the other rows are untouched.
	if net.seenVotes.seen(net.nodes[2].row(), 0) {
		t.Fatal("vote ids leaked across node rows")
	}
}

// BenchmarkNanoGossipBatch measures live-gossip settlement serially
// versus with batched ingest under a block flood on consumer-grade
// hardware budgets (§VI-B: throughput "determined by the quality of
// consumer grade hardware"). The batched path fans signature and work
// checks across host cores via lattice.ProcessBatch — the wall-clock
// ns/op gain on multi-core hosts — and amortizes the modeled per-block
// budget across BatchCores, so the simulated throughput columns
// (sim-blocks/s, settled-frac) show the lifted hardware ceiling on any
// host. One representative keeps vote traffic proportional to
// confirmations, so block validation — the work the ingest queue
// pipelines — dominates, as on a real node catching up with a flood.
func BenchmarkNanoGossipBatch(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var bps, settledFrac float64
			for i := 0; i < b.N; i++ {
				cfg := NanoConfig{
					Net: NetParams{
						Nodes: 8, PeerDegree: 3, Seed: int64(i + 1),
						MinLatency: 5 * time.Millisecond, MaxLatency: 30 * time.Millisecond,
					},
					Accounts:     128,
					Reps:         1,
					BatchSize:    batch,
					BatchWindow:  25 * time.Millisecond, // gossip-flood fill
					ProcPerBlock: 3 * time.Millisecond,  // consumer-grade validation
					ProcPerVote:  300 * time.Microsecond,
				}
				net, err := NewNano(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(i + 1)))
				transfers := workload.Payments(rng, workload.Config{
					Accounts: 128, Rate: 400, Duration: 10 * time.Second, MaxAmount: 5,
				})
				m := net.RunWithTransfers(15*time.Second, transfers)
				if m.SettledAtObserver == 0 {
					b.Fatal("nothing settled")
				}
				bps += m.BPS
				settledFrac += float64(m.SettledAtObserver) / float64(m.SendsCreated)
			}
			b.ReportMetric(bps/float64(b.N), "sim-blocks/s")
			b.ReportMetric(settledFrac/float64(b.N), "settled-frac")
		})
	}
}
