package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/pow"
	"repro/internal/utxo"
	"repro/internal/workload"
)

// fastNet keeps unit-test networks small and quick.
func fastNet(seed int64) NetParams {
	return NetParams{
		Nodes:      8,
		PeerDegree: 3,
		MinLatency: 10 * time.Millisecond,
		MaxLatency: 50 * time.Millisecond,
		Seed:       seed,
	}
}

func TestBitcoinNetworkConverges(t *testing.T) {
	cfg := BitcoinConfig{
		Net:           fastNet(1),
		BlockInterval: 30 * time.Second,
		Accounts:      32,
	}
	net, err := NewBitcoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	payments := workload.Payments(rng, workload.Config{
		Accounts: 32, Rate: 0.5, Duration: 20 * time.Minute, MaxAmount: 100,
	})
	m := net.RunWithPayments(20*time.Minute, payments, 10)

	if m.BlocksOnMain < 20 {
		t.Fatalf("only %d blocks in 20 min at 30 s interval", m.BlocksOnMain)
	}
	if m.ConfirmedTxs == 0 {
		t.Fatal("no transactions confirmed")
	}
	if m.TPS <= 0 {
		t.Fatal("zero TPS")
	}
	// The mean interval must converge near the target (§VI-A).
	ratio := float64(m.MeanBlockInterval) / float64(30*time.Second)
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("mean interval %v too far from 30s target", m.MeanBlockInterval)
	}
	// Every replica ends on the same tip as the observer (eventual
	// consistency across the gossip network).
	tip := net.ledgers[0].Store().Tip()
	for i, l := range net.ledgers[1:] {
		if l.Store().Tip() != tip {
			t.Fatalf("node %d diverged from observer tip", i+1)
		}
	}
	if m.LedgerBytes == 0 {
		t.Fatal("ledger size not measured")
	}
}

// Fig. 4's mechanism: short block intervals relative to propagation delay
// must produce more orphans than long intervals.
func TestBitcoinOrphanRateGrowsWithShortIntervals(t *testing.T) {
	run := func(interval time.Duration) float64 {
		cfg := BitcoinConfig{
			Net: NetParams{
				Nodes: 10, PeerDegree: 3, Seed: 7,
				// Slow, jittery network.
				MinLatency: 200 * time.Millisecond,
				MaxLatency: 2 * time.Second,
			},
			BlockInterval: interval,
			Accounts:      8,
		}
		net, err := NewBitcoin(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := net.Run(200 * interval)
		return m.OrphanRate
	}
	fast := run(2 * time.Second)
	slow := run(60 * time.Second)
	if fast <= slow {
		t.Fatalf("orphan rate should fall with longer intervals: fast=%.3f slow=%.3f", fast, slow)
	}
	if fast < 0.02 {
		t.Fatalf("2s blocks over a 2s-latency network should fork noticeably, got %.3f", fast)
	}
}

func TestBitcoinNoMiners(t *testing.T) {
	cfg := BitcoinConfig{Net: fastNet(3), HashRates: []float64{0, 0, 0}}
	if _, err := NewBitcoin(cfg); err == nil {
		t.Fatal("zero hash rate must fail: no miners, no throughput (§III-A1)")
	}
}

// The simulated attacker race must agree with Nakamoto's analytic
// formula — the cross-check behind the §IV-A confirmation table.
func TestEmpiricalCatchUpMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		q float64
		z int
	}{{0.1, 2}, {0.2, 3}, {0.3, 4}} {
		analytic := pow.CatchUpProbability(tc.q, tc.z)
		empirical := EmpiricalCatchUp(rng, tc.q, tc.z, 20000)
		if math.Abs(analytic-empirical) > 0.02 {
			t.Fatalf("q=%.1f z=%d: analytic %.4f vs empirical %.4f",
				tc.q, tc.z, analytic, empirical)
		}
	}
}

func TestCatchUpTrialEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Majority attacker always wins eventually.
	if !CatchUpTrial(rng, 0.95, 3, 1_000_000) {
		t.Fatal("95% attacker should catch up")
	}
	if EmpiricalCatchUp(rng, 0.1, 6, 0) != 0 {
		t.Fatal("zero trials should be 0")
	}
}

func TestEthereumPoWNetwork(t *testing.T) {
	cfg := EthereumConfig{
		Net:           fastNet(21),
		Consensus:     PoW,
		BlockInterval: 15 * time.Second,
		Accounts:      32,
	}
	net, err := NewEthereum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	payments := workload.Payments(rng, workload.Config{
		Accounts: 32, Rate: 2, Duration: 5 * time.Minute, MaxAmount: 50,
	})
	m := net.RunWithPayments(5*time.Minute, payments, 1)
	if m.BlocksOnMain < 10 {
		t.Fatalf("blocks = %d", m.BlocksOnMain)
	}
	if m.ConfirmedTxs == 0 || m.TPS <= 0 {
		t.Fatalf("no throughput: %+v", m)
	}
	// Replicas converge.
	tip := net.ledgers[0].Store().Tip()
	for i, l := range net.ledgers[1:] {
		if l.Store().Tip() != tip {
			t.Fatalf("node %d diverged", i+1)
		}
	}
	// State roots agree everywhere (account-model execution determinism).
	root := net.ledgers[0].State().Root()
	for i, l := range net.ledgers[1:] {
		if l.State().Root() != root {
			t.Fatalf("node %d state root diverged", i+1)
		}
	}
}

// §IV-A/§III-A2: the PoS schedule produces ~4 s blocks and FFG finalizes
// checkpoints.
func TestEthereumPoSFinality(t *testing.T) {
	cfg := EthereumConfig{
		Net:           fastNet(31),
		Consensus:     PoS,
		BlockInterval: 4 * time.Second,
		EpochLength:   5,
		Accounts:      16,
	}
	net, err := NewEthereum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := net.Run(4 * time.Minute)
	// One block per 4s slot: ~60 blocks in 4 minutes.
	if m.BlocksOnMain < 40 {
		t.Fatalf("PoS produced only %d blocks", m.BlocksOnMain)
	}
	if m.MeanBlockInterval < 3*time.Second || m.MeanBlockInterval > 5*time.Second {
		t.Fatalf("PoS interval = %v, want ≈4s", m.MeanBlockInterval)
	}
	fin := net.Finality()
	if fin.JustifiedCheckpoints == 0 {
		t.Fatal("no checkpoints justified")
	}
	if fin.FinalizedCheckpoints == 0 {
		t.Fatal("no checkpoints finalized — §IV-A finality missing")
	}
	if fin.MeanFinalityLag <= 0 {
		t.Fatal("finality lag not measured")
	}
	// PoS without forks: no orphans in the honest schedule.
	if m.Orphaned != 0 {
		t.Fatalf("honest PoS run orphaned %d blocks", m.Orphaned)
	}
}

func TestNanoNetworkSettlesTransfers(t *testing.T) {
	cfg := NanoConfig{
		Net:      fastNet(41),
		Accounts: 24,
		Reps:     4,
	}
	net, err := NewNano(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	transfers := workload.Payments(rng, workload.Config{
		Accounts: 24, Rate: 4, Duration: 30 * time.Second, MaxAmount: 10,
	})
	m := net.RunWithTransfers(time.Minute, transfers)
	if m.SendsCreated == 0 {
		t.Fatal("no sends created")
	}
	settledFrac := float64(m.SettledAtObserver) / float64(m.SendsCreated)
	if settledFrac < 0.9 {
		t.Fatalf("only %.0f%% of sends settled", settledFrac*100)
	}
	if m.UnsettledAtEnd > m.SendsCreated/10 {
		t.Fatalf("unsettled backlog %d too high", m.UnsettledAtEnd)
	}
	// §IV-B: blocks confirm by representative quorum, quickly.
	if m.ConfirmedBlocks == 0 {
		t.Fatal("no blocks confirmed by vote")
	}
	if m.CementedBlocks == 0 {
		t.Fatal("no blocks cemented")
	}
	if lat := m.ConfirmLatency.Quantile(0.5); lat <= 0 || lat > 2 {
		t.Fatalf("median confirmation latency %.3fs out of expected range", lat)
	}
	// Value conservation on every replica.
	for i, node := range net.nodes {
		if err := node.lat.CheckInvariant(); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	// §V-B: head-only pruning is far smaller than full history.
	if m.HeadBytes >= m.LedgerBytes {
		t.Fatal("head bytes should undercut ledger bytes")
	}
}

// §II-B: "a node has to be online in order to receive a transaction" —
// transfers to offline receivers stay unsettled.
func TestNanoOfflineReceiversLeaveUnsettled(t *testing.T) {
	cfg := NanoConfig{
		Net:              fastNet(51),
		Accounts:         12,
		Reps:             3,
		OfflineReceivers: map[int]bool{7: true},
	}
	net, err := NewNano(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var transfers []workload.TimedPayment
	for i := 0; i < 5; i++ {
		transfers = append(transfers, workload.TimedPayment{
			At:      time.Duration(i+1) * time.Second,
			Payment: workload.Payment{From: 1, To: 7, Amount: 5},
		})
	}
	// And one online control transfer.
	transfers = append(transfers, workload.TimedPayment{
		At: 6 * time.Second, Payment: workload.Payment{From: 2, To: 3, Amount: 5},
	})
	m := net.RunWithTransfers(30*time.Second, transfers)
	if m.UnsettledAtEnd != 5 {
		t.Fatalf("unsettled = %d, want the 5 offline-bound sends", m.UnsettledAtEnd)
	}
	if net.Observer().Balance(net.Ring().Addr(7)) != net.cfg.Supply/12 {
		t.Fatal("offline receiver's settled balance should be unchanged")
	}
}

// §IV-B/§III-B: a malicious double spend forks an account chain; the
// weighted representative vote picks one winner on every node.
func TestNanoDoubleSpendResolvedByVote(t *testing.T) {
	cfg := NanoConfig{
		Net:      fastNet(61),
		Accounts: 16,
		Reps:     4,
	}
	net, err := NewNano(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.InjectDoubleSpend(5, 2, 3, 10, time.Second)
	m := net.Run(30 * time.Second)
	if m.ForksDetected == 0 {
		t.Fatal("observer never detected the fork")
	}
	// All replicas agree on account 5's head.
	head, ok := net.nodes[0].lat.Head(net.Ring().Addr(5))
	if !ok {
		t.Fatal("attacker account missing")
	}
	for i, node := range net.nodes[1:] {
		other, _ := node.lat.Head(net.Ring().Addr(5))
		if other != head {
			t.Fatalf("node %d disagrees on fork winner", i+1)
		}
	}
	// Conservation holds even through the fork.
	for i, node := range net.nodes {
		if err := node.lat.CheckInvariant(); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	// Exactly one victim got (or will get) the money: settled+pending for
	// the two victims total the attacked amount.
	obs := net.nodes[0].lat
	var got uint64
	for _, v := range []int{2, 3} {
		addr := net.Ring().Addr(v)
		got += obs.Balance(addr) - net.cfg.Supply/16
		for _, p := range obs.PendingFor(addr) {
			info, _ := obs.PendingInfo(p)
			got += info.Amount
		}
	}
	if got != 10 {
		t.Fatalf("double spend leaked value: victims net +%d, want +10", got)
	}
}

// §VI-B: throughput is "determined by the quality of consumer grade
// hardware" — a tight per-block processing budget must cap TPS below an
// unconstrained run.
func TestNanoHardwareBudgetCapsThroughput(t *testing.T) {
	run := func(procPerBlock time.Duration) NanoMetrics {
		cfg := NanoConfig{
			Net:          fastNet(71),
			Accounts:     24,
			Reps:         3,
			ProcPerBlock: procPerBlock,
			ProcPerVote:  procPerBlock / 10,
		}
		net, err := NewNano(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(72))
		transfers := workload.Payments(rng, workload.Config{
			Accounts: 24, Rate: 20, Duration: 20 * time.Second, MaxAmount: 5,
		})
		return net.RunWithTransfers(40*time.Second, transfers)
	}
	fastM := run(0)
	slowM := run(300 * time.Millisecond)
	if slowM.SettledAtObserver >= fastM.SettledAtObserver {
		t.Fatalf("hardware budget did not reduce settlement: %d vs %d",
			slowM.SettledAtObserver, fastM.SettledAtObserver)
	}
	if p50 := slowM.ConfirmLatency.Quantile(0.5); p50 <= fastM.ConfirmLatency.Quantile(0.5) {
		t.Fatalf("budgeted run should confirm slower (%.3f vs %.3f)",
			p50, fastM.ConfirmLatency.Quantile(0.5))
	}
}

func TestNanoSpamThrottle(t *testing.T) {
	cfg := NanoConfig{Net: fastNet(81), Accounts: 8, Reps: 2, WorkBits: 16}
	net, err := NewNano(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MH/s against 16-bit work: ~15 blocks/s max.
	rate := net.SpamThrottle(1e6)
	if math.Abs(rate-1e6/65536) > 1e-9 {
		t.Fatalf("throttle = %f", rate)
	}
	cfg2 := NanoConfig{Net: fastNet(82), Accounts: 8, Reps: 2, WorkBits: 0}
	net2, err := NewNano(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(net2.SpamThrottle(1e6), 1) {
		t.Fatal("no work bits should mean no throttle")
	}
}

// withDefaults must only default fields that are actually zero: a
// user-set MinLatency survives an unset MaxLatency, and inverted bounds
// normalize instead of producing a negative sampling span.
func TestNetParamsWithDefaultsPartialLatency(t *testing.T) {
	both := NetParams{}.withDefaults()
	if both.MinLatency != 20*time.Millisecond || both.MaxLatency != 200*time.Millisecond {
		t.Fatalf("unset latencies defaulted to %v/%v", both.MinLatency, both.MaxLatency)
	}
	minOnly := NetParams{MinLatency: 50 * time.Millisecond}.withDefaults()
	if minOnly.MinLatency != 50*time.Millisecond {
		t.Fatalf("user MinLatency overwritten: %v", minOnly.MinLatency)
	}
	if minOnly.MaxLatency != 200*time.Millisecond {
		t.Fatalf("unset MaxLatency = %v, want 200ms default", minOnly.MaxLatency)
	}
	bigMin := NetParams{MinLatency: 500 * time.Millisecond}.withDefaults()
	if bigMin.MinLatency != 500*time.Millisecond || bigMin.MaxLatency != 500*time.Millisecond {
		t.Fatalf("default MaxLatency not raised to meet MinLatency: %v/%v",
			bigMin.MinLatency, bigMin.MaxLatency)
	}
	maxOnly := NetParams{MaxLatency: 80 * time.Millisecond}.withDefaults()
	if maxOnly.MinLatency != 0 || maxOnly.MaxLatency != 80*time.Millisecond {
		t.Fatalf("max-only config perturbed: %v/%v", maxOnly.MinLatency, maxOnly.MaxLatency)
	}
	inverted := NetParams{MinLatency: 300 * time.Millisecond, MaxLatency: 100 * time.Millisecond}.withDefaults()
	if inverted.MinLatency != 100*time.Millisecond || inverted.MaxLatency != 300*time.Millisecond {
		t.Fatalf("inverted bounds not normalized: %v/%v", inverted.MinLatency, inverted.MaxLatency)
	}
	// And a network built from an inverted config must actually run.
	net, err := NewNano(NanoConfig{
		Net: NetParams{
			Nodes: 4, PeerDegree: 2, Seed: 99,
			MinLatency: 300 * time.Millisecond, MaxLatency: 100 * time.Millisecond,
		},
		Accounts: 8, Reps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(2 * time.Second)
}

func TestConsensusString(t *testing.T) {
	if PoW.String() != "pow" || PoS.String() != "pos" || Consensus(9).String() != "unknown" {
		t.Fatal("Consensus names wrong")
	}
}

func TestObservedOrphanRateHelper(t *testing.T) {
	var m ChainMetrics
	m.OrphanRate = 0.05
	m.MeanBlockInterval = time.Minute
	m.Propagation.Add(2.0) // 2 s median propagation
	measured, analytic := observedOrphanRate(m)
	if measured != 0.05 {
		t.Fatal("measured passthrough wrong")
	}
	want := pow.ExpectedOrphanRate(2*time.Second, time.Minute)
	if math.Abs(analytic-want) > 1e-9 {
		t.Fatalf("analytic = %g want %g", analytic, want)
	}
}

func TestBitcoinLedgerParamsRespected(t *testing.T) {
	// A tiny block size forces many small blocks: the assembled block
	// can never exceed the configured byte budget (§VI-A's size cap).
	params := utxo.DefaultParams()
	params.MaxBlockBytes = 2_000
	params.RetargetWindow = 1 << 30
	cfg := BitcoinConfig{
		Net:           fastNet(91),
		Ledger:        params,
		BlockInterval: 10 * time.Second,
		Accounts:      32,
	}
	net, err := NewBitcoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))
	payments := workload.Payments(rng, workload.Config{
		Accounts: 32, Rate: 10, Duration: 2 * time.Minute, MaxAmount: 10,
	})
	net.RunWithPayments(2*time.Minute, payments, 5)
	for _, h := range net.Observer().Store().MainChain() {
		blk, _ := net.Observer().Store().Get(h)
		if blk.Size() > params.MaxBlockBytes {
			t.Fatalf("block exceeds byte cap: %d > %d", blk.Size(), params.MaxBlockBytes)
		}
	}
}

func BenchmarkBitcoinNet10Min(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := BitcoinConfig{
			Net:           NetParams{Nodes: 8, PeerDegree: 3, Seed: int64(i), MinLatency: 10 * time.Millisecond, MaxLatency: 100 * time.Millisecond},
			BlockInterval: 30 * time.Second,
			Accounts:      16,
		}
		net, err := NewBitcoin(cfg)
		if err != nil {
			b.Fatal(err)
		}
		net.Run(10 * time.Minute)
	}
}

func BenchmarkNanoNet30Sec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := NanoConfig{
			Net:      NetParams{Nodes: 8, PeerDegree: 3, Seed: int64(i), MinLatency: 10 * time.Millisecond, MaxLatency: 50 * time.Millisecond},
			Accounts: 16,
			Reps:     4,
		}
		net, err := NewNano(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		transfers := workload.Payments(rng, workload.Config{
			Accounts: 16, Rate: 5, Duration: 20 * time.Second, MaxAmount: 5,
		})
		net.RunWithTransfers(30*time.Second, transfers)
	}
}
