package netsim

// Tests for the fault-injection driver: partition/heal recovery, churn
// catch-up replay, and contested double spends under an attacker-weight
// sweep — the machinery behind E14/E15.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

func nanoFaultCfg(seed int64, byzantine int) NanoConfig {
	return NanoConfig{
		Net: NetParams{
			Nodes: 8, PeerDegree: 3, Seed: seed,
			MinLatency: 5 * time.Millisecond, MaxLatency: 30 * time.Millisecond,
		},
		Accounts:       24,
		Reps:           8,
		ByzantineNodes: byzantine,
	}
}

func nanoLoad(seed int64, dur time.Duration) []workload.TimedPayment {
	return workload.Payments(rand.New(rand.NewSource(seed)), workload.Config{
		Accounts: 24, Rate: 6, Duration: dur, MaxAmount: 3,
	})
}

// A partition stalls cross-side settlement; the heal catch-up (lattice
// exchange + vote re-broadcast) must reconverge every replica.
func TestNanoPartitionHealRecovers(t *testing.T) {
	net, err := NewNano(nanoFaultCfg(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	fs := FaultSchedule{Partitions: []PartitionWindow{{
		At: 2 * time.Second, HealAt: 8 * time.Second,
		Groups: SplitGroups(8, 0.5),
	}}}
	fs.ApplyToNano(net)
	m := net.RunWithTransfers(14*time.Second, nanoLoad(22, 6*time.Second))

	if m.ConfirmedBlocks == 0 {
		t.Fatal("no confirmations at all under partition/heal")
	}
	if !net.LatticeConverged() {
		t.Fatal("lattices did not reconverge after heal catch-up")
	}
	if ps := net.Net().Stats().Partitioned; ps == 0 {
		t.Fatal("partition window dropped no messages — fault not injected")
	}
}

// Without the heal catch-up the two sides stay diverged — the driver's
// replay is what recovers, not luck.
func TestNanoPartitionWithoutCatchUpStalls(t *testing.T) {
	net, err := NewNano(nanoFaultCfg(21, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Partition mid-run and never heal.
	fs := FaultSchedule{Partitions: []PartitionWindow{{
		At: 2 * time.Second, Groups: SplitGroups(8, 0.5),
	}}}
	fs.ApplyToNano(net)
	net.RunWithTransfers(14*time.Second, nanoLoad(22, 6*time.Second))
	if net.LatticeConverged() {
		t.Fatal("unhealed partition converged — the test scenario lost its teeth")
	}
}

// A churned node misses live gossip; the rejoin exchange must bring it
// back to the observer's exact state.
func TestNanoChurnCatchUp(t *testing.T) {
	net, err := NewNano(nanoFaultCfg(31, 0))
	if err != nil {
		t.Fatal(err)
	}
	fs := FaultSchedule{Churn: []ChurnWindow{
		{Node: 6, LeaveAt: 2 * time.Second, RejoinAt: 8 * time.Second},
		{Node: 7, LeaveAt: 3 * time.Second, RejoinAt: 9 * time.Second},
	}}
	fs.ApplyToNano(net)
	net.RunWithTransfers(14*time.Second, nanoLoad(32, 6*time.Second))

	if cd := net.Net().Stats().ChurnDropped; cd == 0 {
		t.Fatal("churn windows dropped no messages — fault not injected")
	}
	if !net.LatticeConverged() {
		t.Fatal("churned nodes did not catch up after rejoin")
	}
	obs := net.nodes[0].lat.BlockCount()
	for _, idx := range []int{6, 7} {
		if got := net.nodes[idx].lat.BlockCount(); got != obs {
			t.Fatalf("node %d holds %d blocks, observer %d", idx, got, obs)
		}
	}
}

// Bitcoin churn: the rejoined miner re-syncs and every tip converges.
func TestBitcoinChurnCatchUp(t *testing.T) {
	net, err := NewBitcoin(BitcoinConfig{
		Net: NetParams{
			Nodes: 6, PeerDegree: 3, Seed: 41,
			MinLatency: 5 * time.Millisecond, MaxLatency: 25 * time.Millisecond,
		},
		BlockInterval: 5 * time.Second,
		Accounts:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := FaultSchedule{Churn: []ChurnWindow{
		{Node: 5, LeaveAt: 30 * time.Second, RejoinAt: 3 * time.Minute},
	}}
	fs.ApplyToBitcoin(net)
	m := net.Run(5 * time.Minute)

	if m.BlocksOnMain == 0 {
		t.Fatal("no blocks mined")
	}
	if cd := net.Net().Stats().ChurnDropped; cd == 0 {
		t.Fatal("churn window dropped no messages")
	}
	if !net.TipsConverged() {
		t.Fatal("tips diverged after churn rejoin")
	}
}

// Ethereum partition/heal through the shared driver: both sides produce,
// healing reorganizes onto one history.
func TestEthereumPartitionHealConverges(t *testing.T) {
	net, err := NewEthereum(EthereumConfig{
		Net: NetParams{
			Nodes: 6, PeerDegree: 2, Seed: 51,
			MinLatency: 5 * time.Millisecond, MaxLatency: 25 * time.Millisecond,
		},
		Consensus:     PoW,
		BlockInterval: 5 * time.Second,
		Accounts:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := FaultSchedule{Partitions: []PartitionWindow{{
		At: 30 * time.Second, HealAt: 3 * time.Minute,
		Groups: SplitGroups(6, 0.34),
	}}}
	fs.ApplyToEthereum(net)
	m := net.Run(5 * time.Minute)

	if m.BlocksOnMain == 0 {
		t.Fatal("no blocks produced")
	}
	if !net.TipsConverged() {
		t.Fatal("tips diverged after heal")
	}
}

// The loss window drops traffic only inside [At, Until).
func TestLossWindowBounded(t *testing.T) {
	net, err := NewNano(nanoFaultCfg(61, 0))
	if err != nil {
		t.Fatal(err)
	}
	fs := FaultSchedule{Loss: []LossWindow{{Rate: 0.5, At: 2 * time.Second, Until: 4 * time.Second}}}
	fs.ApplyToNano(net)
	net.RunWithTransfers(8*time.Second, nanoLoad(62, 6*time.Second))
	if ld := net.Net().Stats().LossDropped; ld == 0 {
		t.Fatal("loss window dropped nothing")
	}
	if net.Net().Stats().LossDropped > net.Net().Stats().MessagesSent {
		t.Fatal("loss bookkeeping inconsistent")
	}
}

// runDoubleSpend builds a fresh network with k byzantine nodes and runs
// one contested double spend to completion.
func runDoubleSpend(t *testing.T, seed int64, byzantine int) (DoubleSpendOutcome, *NanoNet) {
	t.Helper()
	net, err := NewNano(nanoFaultCfg(seed, byzantine))
	if err != nil {
		t.Fatal(err)
	}
	h := net.InjectContestedDoubleSpend(DoubleSpendPlan{
		Attacker: 7, VictimA: 1, VictimB: 2, Amount: 3, At: 2 * time.Second,
	})
	net.RunWithTransfers(10*time.Second, nanoLoad(seed+1, 1500*time.Millisecond))
	out := net.Outcome(h)
	if !out.Injected {
		t.Fatal("double spend was not injected")
	}
	return out, net
}

// With no attacker weight, honest first-seen voting keeps (or restores)
// the honest send at the observer and the rival never cements.
func TestDoubleSpendHonestMajorityWins(t *testing.T) {
	out, net := runDoubleSpend(t, 71, 0)
	if net.ByzantineWeightFraction() != 0 {
		t.Fatal("expected zero attacker weight")
	}
	if !out.HonestAttached || out.RivalWon {
		t.Fatalf("honest send lost with zero attacker weight: %+v", out)
	}
	if out.RivalCemented {
		t.Fatal("rival cemented with zero attacker weight")
	}
	if net.metrics.ForksDetected == 0 {
		t.Fatal("the double spend produced no fork at the observer")
	}
}

// A super-majority attacker (most representatives hosted on byzantine
// nodes) swings the election: the rival replaces the honest send on the
// observer's lattice.
func TestDoubleSpendMajorityAttackerWins(t *testing.T) {
	out, net := runDoubleSpend(t, 71, 6)
	frac := net.ByzantineWeightFraction()
	if frac < 0.5 {
		t.Fatalf("attacker weight fraction %.2f, want > 0.5 for this scenario", frac)
	}
	if !out.RivalWon || out.HonestAttached {
		t.Fatalf("super-majority attacker failed the double spend: %+v (weight %.2f)", out, frac)
	}
	if !out.Resolved {
		t.Fatalf("fork never resolved at the observer: %+v", out)
	}
}

// Fork-resolution latency is recorded at the observer whenever a
// contested election settles.
func TestForkResolveLatencyRecorded(t *testing.T) {
	out, net := runDoubleSpend(t, 91, 6)
	if !out.Resolved {
		t.Skip("fork did not resolve under this seed; latency undefined")
	}
	if net.metrics.ForkResolveLatency.N() == 0 {
		t.Fatal("resolved fork left no latency sample")
	}
	if net.metrics.ForkResolveLatency.Min() < 0 {
		t.Fatal("negative resolution latency")
	}
}

// The zero-value schedule must leave a run byte-identical to an
// unscripted one — the "no faults reproduces today's tables" invariant.
func TestEmptyScheduleIsNoOp(t *testing.T) {
	run := func(apply bool) NanoMetrics {
		net, err := NewNano(nanoFaultCfg(81, 0))
		if err != nil {
			t.Fatal(err)
		}
		if apply {
			FaultSchedule{}.ApplyToNano(net)
		}
		return net.RunWithTransfers(8*time.Second, nanoLoad(82, 5*time.Second))
	}
	a, b := run(false), run(true)
	if a.SettledAtObserver != b.SettledAtObserver || a.MessagesSent != b.MessagesSent ||
		a.BytesSent != b.BytesSent || a.ConfirmedBlocks != b.ConfirmedBlocks {
		t.Fatalf("empty schedule perturbed the run:\n%+v\nvs\n%+v", a, b)
	}
}

// SplitGroups always leaves both sides nonempty and the observer in the
// majority group 0.
func TestSplitGroupsBounds(t *testing.T) {
	for _, tc := range []struct {
		nodes    int
		frac     float64
		minority int
	}{
		{8, 0.5, 4}, {8, 0.0, 1}, {8, 1.0, 7}, {2, 0.9, 1}, {5, 0.34, 2},
	} {
		g := SplitGroups(tc.nodes, tc.frac)
		if len(g) != tc.minority {
			t.Fatalf("SplitGroups(%d, %.2f) minority = %d, want %d", tc.nodes, tc.frac, len(g), tc.minority)
		}
		if _, has := g[sim.NodeID(0)]; has {
			t.Fatalf("SplitGroups(%d, %.2f) put the observer in the minority", tc.nodes, tc.frac)
		}
	}
}
