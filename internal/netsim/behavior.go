// Adversarial per-node behaviors on the NodeRuntime seam: eclipse
// (peer-table capture of one node), selfish mining (withheld-block
// strategy on the chain side) and vote withholding (silenced ORV weight
// on the lattice side). Each is a Behavior installed on individual
// nodes; the protocol code never branches on them — the interception
// points in runtime.go are the whole attack surface, exactly how the
// DAG-security surveys organize adversaries: per-node strategies layered
// over a common network substrate.
package netsim

import (
	"repro/internal/chain"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/orv"
	"repro/internal/sim"
)

// EclipseBehavior models a victim whose peer table is partially captured
// by an attacker: the captured links are dead — the victim neither
// relays through them (its peer view is rewritten via SetPeersOf) nor
// accepts traffic across them. At fraction 1 the victim is fully
// isolated from its gossip neighborhood and keeps extending a private,
// stale view — the double-spend window E16 measures.
type EclipseBehavior struct {
	HonestBehavior
	victim   sim.NodeID
	captured map[sim.NodeID]bool
	// original is the victim's peer view before capture, and prev its
	// behavior — both restored by LiftEclipse when the attack window
	// closes, so an eclipse composes with other installed behaviors.
	original []sim.NodeID
	prev     Behavior
	// feeder, when set, is the one node the attacker lets through the
	// captured links — the eclipse's whole point in an executed double
	// spend: the victim's view of the ledger is whatever the attacker
	// chooses to feed it (E18).
	feeder    sim.NodeID
	hasFeeder bool
}

// InstallEclipse captures frac of a victim's peer links (rounded to
// nearest, clamped to [0, degree]): the first captured-count entries of
// its sorted peer list become attacker-controlled, the victim's peer
// view shrinks to the survivors, and the behavior drops both directions
// of captured-link traffic. frac <= 0 installs nothing and returns nil —
// a strict no-op, so a zero-fraction sweep point reproduces the honest
// pipeline byte for byte.
func (r *NodeRuntime) InstallEclipse(victim sim.NodeID, frac float64) *EclipseBehavior {
	peers := r.net.Peers(victim)
	if frac <= 0 || len(peers) == 0 {
		return nil
	}
	if frac > 1 {
		frac = 1
	}
	k := int(frac*float64(len(peers)) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(peers) {
		k = len(peers)
	}
	b := &EclipseBehavior{
		victim:   victim,
		captured: make(map[sim.NodeID]bool, k),
		original: append([]sim.NodeID(nil), peers...),
		prev:     r.BehaviorOf(victim),
	}
	for _, p := range peers[:k] {
		b.captured[p] = true
	}
	r.net.SetPeersOf(victim, append([]sim.NodeID(nil), peers[k:]...))
	r.SetBehavior(victim, b)
	return b
}

// InstallEclipseFeeder is InstallEclipse with an attacker-controlled
// feed: the feeder node's traffic passes the captured links in both
// directions and joins the victim's (shrunken) peer view. This is the
// textbook eclipse of the DAG-security surveys — the attacker does not
// merely cut the victim off, it OWNS the victim's view of the network
// and feeds it exactly the ledger state the double spend needs (E18).
func (r *NodeRuntime) InstallEclipseFeeder(victim sim.NodeID, frac float64, feeder sim.NodeID) *EclipseBehavior {
	b := r.InstallEclipse(victim, frac)
	if b == nil {
		return nil
	}
	b.feeder = feeder
	b.hasFeeder = true
	view := []sim.NodeID{feeder}
	for _, p := range r.net.Peers(victim) {
		if p != feeder {
			view = append(view, p)
		}
	}
	r.net.SetPeersOf(victim, view)
	return b
}

// LiftEclipse ends an eclipse: the victim's original peer view and its
// pre-eclipse behavior are restored, so gossip flows again — the heal
// instant an executed-attack scenario releases the honest chain at.
// A nil behavior (frac <= 0 installed nothing) is a no-op.
func (r *NodeRuntime) LiftEclipse(b *EclipseBehavior) {
	if b == nil {
		return
	}
	r.net.SetPeersOf(b.victim, append([]sim.NodeID(nil), b.original...))
	r.SetBehavior(b.victim, b.prev)
}

// CapturedPeers returns how many of the victim's links are captured.
func (b *EclipseBehavior) CapturedPeers() int { return len(b.captured) }

// OnInbound drops deliveries arriving over captured links; the feeder,
// when configured, always passes.
func (b *EclipseBehavior) OnInbound(_, from sim.NodeID, _ any, _ int) bool {
	if b.hasFeeder && from == b.feeder {
		return true
	}
	return !b.captured[from]
}

// OnOutbound drops sends leaving over captured links (direct unicasts
// and broadcasts included — votes, gap-repair pulls, catch-up serves);
// the feeder, when configured, always passes.
func (b *EclipseBehavior) OnOutbound(_, to sim.NodeID, _ any, _ int) bool {
	if b.hasFeeder && to == b.feeder {
		return true
	}
	return !b.captured[to]
}

// SelfishMiningBehavior implements the withheld-block strategy (§IV-A's
// attacker, Eyal–Sirer's state machine): blocks the node produces stay
// on a private chain it keeps mining on. When the honest chain advances,
// the miner reacts by lead: at lead 1 it publishes the private block and
// races (opening the 1-1 race state); at lead 2 it publishes everything
// and wins outright; deeper leads publish one block to keep the honest
// chain chasing. A block produced while the race is open is published
// immediately — the race-winning move honest first-seen relay cannot
// counter.
type SelfishMiningBehavior struct {
	HonestBehavior
	node    sim.NodeID
	release func(*chain.Block)
	// gamma is Eyal–Sirer's connectivity parameter: the fraction of
	// honest hash power that mines on the adversary's block while the
	// 1-1 race is open. The runtime's production path consults it
	// (chainRuntime.raceProduce); zero reproduces the historical
	// first-seen races byte for byte.
	gamma float64
	// seen and prevSeen are the two generations of the bounded inbound
	// dedup set (the same scheme as the nano vote buffers): when seen
	// fills past maxSelfishSeenBlocks it rotates to prevSeen. A block
	// forgotten after two rotations re-applies harmlessly — it is at or
	// below rivalHeight by then and the lead policy ignores it.
	seen     map[hashx.Hash]bool
	prevSeen map[hashx.Hash]bool
	withheld []*chain.Block
	// raceOpen marks the 1-1 race: our lead-1 block was published
	// against a rival of equal height and the next block decides.
	// raceTip is that published block — the branch point γ-connected
	// honest miners extend.
	raceOpen bool
	raceTip  hashx.Hash
	// rivalHeight is the highest PUBLIC chain height the strategy has
	// reacted to — rival (non-self) blocks seen, and its own published
	// branch. Only blocks above it are honest-chain PROGRESS. Same- or
	// lower-height fork siblings — the stale-tip races this simulator
	// deliberately produces — advance nothing and must not trigger the
	// lead policy.
	rivalHeight uint64
	// produced and released count the strategy's footprint.
	produced, released int
}

// maxSelfishSeenBlocks bounds each generation of the selfish miner's
// inbound dedup set; at most 2× this many hashes are held.
const maxSelfishSeenBlocks = 1 << 16

// installSelfishMiner wires the strategy into a chain runtime and
// registers it as the runtime's race adversary (the γ production hook).
// One selfish miner per network: the runtime holds a single race-
// adversary slot, and a silent overwrite would leave the first miner's
// races γ-disconnected — misuse panics instead of mismeasuring.
func (c *chainRuntime) installSelfishMiner(idx int, gamma float64) *SelfishMiningBehavior {
	if c.selfish != nil {
		panic("netsim: only one selfish miner per network")
	}
	if gamma < 0 {
		gamma = 0
	}
	if gamma > 1 {
		gamma = 1
	}
	b := &SelfishMiningBehavior{
		node:  sim.NodeID(idx),
		gamma: gamma,
		seen:  make(map[hashx.Hash]bool),
	}
	b.release = func(blk *chain.Block) { c.releaseBlock(idx, blk) }
	c.rt.SetBehavior(sim.NodeID(idx), b)
	c.selfish = b
	return b
}

// InstallSelfishMiner makes node idx mine selfishly (E17). The node's
// hash share comes from BitcoinConfig.HashRates as usual; only its
// publication strategy changes. Races resolve by first-seen relay
// (γ = 0); use InstallSelfishMinerGamma for a connected adversary.
// At most one selfish miner per network (a second install panics).
func (b *BitcoinNet) InstallSelfishMiner(idx int) *SelfishMiningBehavior {
	return b.chain.installSelfishMiner(idx, 0)
}

// InstallSelfishMinerGamma is InstallSelfishMiner with Eyal–Sirer's γ:
// while the 1-1 race is open, each honest block win mines on the
// adversary's published block with probability gamma instead of the
// miner's own first-seen tip — the adversary's connectivity advantage
// that moves the profitability threshold from 1/3 (γ=0) toward 0 (γ=1).
func (b *BitcoinNet) InstallSelfishMinerGamma(idx int, gamma float64) *SelfishMiningBehavior {
	return b.chain.installSelfishMiner(idx, gamma)
}

// EffectiveGamma reports the measured γ-race outcome: taken honest wins
// that extended the adversary's published race block, out of chances
// honest wins that occurred while the race was open. taken/chances is
// the effective connectivity E17 reports next to the configured γ; it
// falls short of the configuration when the adversary's block had not
// propagated to the winning miner yet. Both are zero in honest runs.
func (b *BitcoinNet) EffectiveGamma() (taken, chances int) {
	return b.chain.effectiveGamma()
}

// EffectiveGamma is the PoW-mode variant; see the BitcoinNet method.
func (e *EthereumNet) EffectiveGamma() (taken, chances int) {
	return e.chain.effectiveGamma()
}

// InstallSelfishMiner makes node idx produce selfishly (PoW mode, E17).
func (e *EthereumNet) InstallSelfishMiner(idx int) *SelfishMiningBehavior {
	return e.chain.installSelfishMiner(idx, 0)
}

// InstallSelfishMinerGamma is the γ-parameterized variant (PoW mode);
// see the BitcoinNet method.
func (e *EthereumNet) InstallSelfishMinerGamma(idx int, gamma float64) *SelfishMiningBehavior {
	return e.chain.installSelfishMiner(idx, gamma)
}

// Gamma returns the strategy's connectivity parameter.
func (b *SelfishMiningBehavior) Gamma() float64 { return b.gamma }

// Withheld reports how many produced blocks are currently private.
func (b *SelfishMiningBehavior) Withheld() int { return len(b.withheld) }

// Produced and Released report the strategy's lifetime counters.
func (b *SelfishMiningBehavior) Produced() int { return b.produced }
func (b *SelfishMiningBehavior) Released() int { return b.released }

// OnProduce withholds the new block — unless the 1-1 race is open, in
// which case this block settles it: published at once, the private
// branch is now strictly longer and the whole network reorgs onto it.
// The published height becomes the new public frontier (rivalHeight):
// without that advance, a stale honest block at the same height arriving
// later would be miscounted as rival progress and trip the lead policy
// against a branch the network has already abandoned.
func (b *SelfishMiningBehavior) OnProduce(_ sim.NodeID, block any) bool {
	blk, ok := block.(*chain.Block)
	if !ok {
		return true
	}
	b.markSeen(blk.Hash())
	b.produced++
	if b.raceOpen {
		b.raceOpen = false
		b.released++
		if blk.Header.Height > b.rivalHeight {
			b.rivalHeight = blk.Header.Height
		}
		return true // publish immediately: the race-winning block
	}
	b.withheld = append(b.withheld, blk)
	return false
}

// OnInbound reacts to honest-chain progress with the Eyal–Sirer policy:
// lead 1 publishes the private block and opens the race, lead 2
// publishes everything (instant win), deeper leads publish one block.
// Only blocks extending past the public frontier count as progress; a
// same-height fork sibling neither resolves an open race nor costs the
// miner a release.
func (b *SelfishMiningBehavior) OnInbound(_, _ sim.NodeID, payload any, _ int) bool {
	blk, ok := payload.(*chain.Block)
	if !ok {
		return true
	}
	h := blk.Hash()
	if b.seen[h] || b.prevSeen[h] {
		return true
	}
	b.markSeen(h)
	if blk.Header.Height <= b.rivalHeight {
		return true // stale block or fork sibling: no honest progress
	}
	b.rivalHeight = blk.Header.Height
	b.raceOpen = false // real rival progress resolves the race
	switch lead := len(b.withheld); {
	case lead == 1:
		b.raceTip = b.withheld[0].Hash()
		b.releaseN(1)
		b.raceOpen = true
	case lead == 2:
		b.releaseN(2)
	case lead > 2:
		b.releaseN(1)
	}
	return true
}

// markSeen records a block hash in the bounded two-generation dedup set,
// rotating generations when the live one fills — long horizons and block
// floods cannot grow the strategy's memory without limit.
func (b *SelfishMiningBehavior) markSeen(h hashx.Hash) {
	if len(b.seen) >= maxSelfishSeenBlocks {
		b.prevSeen = b.seen
		b.seen = make(map[hashx.Hash]bool, len(b.seen)/2)
	}
	b.seen[h] = true
}

// releaseN floods the first n withheld blocks in production order and
// advances the public frontier to the deepest published height: once a
// private block is out, honest blocks at or below it are fork siblings,
// not progress.
func (b *SelfishMiningBehavior) releaseN(n int) {
	for _, w := range b.withheld[:n] {
		b.released++
		if h := w.Header.Height; h > b.rivalHeight {
			b.rivalHeight = h
		}
		b.release(w)
	}
	b.withheld = append([]*chain.Block(nil), b.withheld[n:]...)
}

// VoteWithholdBehavior silences a chosen set of representatives: their
// ORV votes are withheld entirely — never tallied locally, never
// broadcast — so their delegated weight simply vanishes from every
// election (§IV-B's quorum denial). Shared by every node hosting a
// withheld representative.
type VoteWithholdBehavior struct {
	HonestBehavior
	reps map[keys.Address]bool
}

// OnVote withholds votes signed by the silenced representatives.
func (b *VoteWithholdBehavior) OnVote(_ sim.NodeID, vote any) bool {
	v, ok := vote.(*orv.Vote)
	if !ok {
		return true
	}
	return !b.reps[v.Rep]
}

// WithheldReps returns how many representatives are silenced.
func (b *VoteWithholdBehavior) WithheldReps() int { return len(b.reps) }

// InstallVoteWithholding silences representatives holding at least
// weightFrac of the total voting weight, chosen greedily from the
// highest representative index downward (the observer's low-index reps
// stay honest the longest). It returns the weight fraction actually
// withheld — the sweep label for E17. weightFrac <= 0 installs nothing
// and returns 0, a strict no-op.
func (n *NanoNet) InstallVoteWithholding(weightFrac float64) float64 {
	if weightFrac <= 0 || n.cfg.Reps <= 0 {
		return 0
	}
	weights := n.nodes[0].weights
	total := weights.Total()
	if total == 0 {
		return 0
	}
	target := weightFrac * float64(total)
	b := &VoteWithholdBehavior{reps: make(map[keys.Address]bool)}
	var withheld uint64
	for rep := n.cfg.Reps - 1; rep >= 0 && float64(withheld) < target; rep-- {
		addr := n.ring.Addr(rep)
		w := weights.WeightOf(addr)
		if w == 0 {
			continue
		}
		b.reps[addr] = true
		withheld += w
	}
	if len(b.reps) == 0 {
		return 0
	}
	for _, node := range n.nodes {
		for _, rep := range node.repAccounts {
			if b.reps[n.ring.Addr(rep)] {
				n.rt.SetBehavior(node.id, b)
				break
			}
		}
	}
	return float64(withheld) / float64(total)
}

// Eclipse captures frac of a victim node's peer table (E16).
func (b *BitcoinNet) Eclipse(victim int, frac float64) *EclipseBehavior {
	return b.chain.rt.InstallEclipse(sim.NodeID(victim), frac)
}

// Eclipse captures frac of a victim node's peer table (E16).
func (e *EthereumNet) Eclipse(victim int, frac float64) *EclipseBehavior {
	return e.chain.rt.InstallEclipse(sim.NodeID(victim), frac)
}

// Eclipse captures frac of a victim node's peer table (E16).
func (n *NanoNet) Eclipse(victim int, frac float64) *EclipseBehavior {
	return n.rt.InstallEclipse(sim.NodeID(victim), frac)
}

// BlockCountOf reports a node's lattice block count — E16 compares the
// victim's against a healthy replica's to size the eclipse gap.
func (n *NanoNet) BlockCountOf(idx int) int { return n.nodes[idx].lat.BlockCount() }
