package netsim

// Mega-scale regression pins: the struct-of-arrays node core exists so
// a 10⁴-node network is cheap to build and hold. The bound is generous
// (~3× the measured cost) — it catches a return to per-node map churn
// or per-node setup replay, not normal drift.

import (
	"runtime"
	"testing"
	"time"
)

// scaleHeapAlloc settles the heap and reads the live allocation count.
func scaleHeapAlloc() int64 {
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// A 10⁴-node ORV network must stay within a fixed per-node heap
// budget. The dominant cost is the cloned per-node lattice (shared
// immutable blocks, private bookkeeping); the SoA seen-state adds a
// few words per node.
func TestNanoMemoryPerNode10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node construction")
	}
	const nodes = 10_000
	before := scaleHeapAlloc()
	net, err := NewNano(NanoConfig{
		Net: NetParams{
			Nodes: nodes, PeerDegree: 4, Seed: 1,
			MinLatency: 20 * time.Millisecond, MaxLatency: 200 * time.Millisecond,
		},
		Accounts: 16, Reps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	perNode := (scaleHeapAlloc() - before) / nodes
	t.Logf("nano: %d bytes/node", perNode)
	if perNode > 32<<10 {
		t.Fatalf("nano node costs %d bytes of heap, budget is %d", perNode, 32<<10)
	}
	runtime.KeepAlive(net)
}

// The chain-side runtime shares the same budget: per-node state is one
// ledger plus dense SoA columns, never per-node maps over all blocks.
func TestBitcoinMemoryPerNode10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node construction")
	}
	const nodes = 10_000
	before := scaleHeapAlloc()
	net, err := NewBitcoin(BitcoinConfig{
		Net: NetParams{
			Nodes: nodes, PeerDegree: 4, Seed: 1,
			MinLatency: 20 * time.Millisecond, MaxLatency: 200 * time.Millisecond,
		},
		BlockInterval: 30 * time.Second, Accounts: 16, InitialBalance: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	perNode := (scaleHeapAlloc() - before) / nodes
	t.Logf("bitcoin: %d bytes/node", perNode)
	if perNode > 32<<10 {
		t.Fatalf("bitcoin node costs %d bytes of heap, budget is %d", perNode, 32<<10)
	}
	runtime.KeepAlive(net)
}
