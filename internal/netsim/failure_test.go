package netsim

// Failure-injection tests: network partitions, skewed mining power, and
// equivocating validators. These exercise the §IV story under the faults
// that cause it — "due to network delays [or splits], some nodes will
// receive one block over the other".

import (
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/pos"
	"repro/internal/sim"
)

// A partition lets both halves mine independent histories; healing must
// reorganize the losing half onto the winner — Fig. 4 at partition scale.
func TestBitcoinPartitionHealReorg(t *testing.T) {
	cfg := BitcoinConfig{
		Net: NetParams{
			Nodes: 8, PeerDegree: 3, Seed: 5,
			MinLatency: 5 * time.Millisecond, MaxLatency: 20 * time.Millisecond,
		},
		BlockInterval: 5 * time.Second,
		Accounts:      8,
		// Skewed power: side A (nodes 0-3) has 3x the hash rate, so its
		// partition chain will be longer and must win after healing.
		HashRates: []float64{3, 3, 3, 3, 1, 1, 1, 1},
	}
	net, err := NewBitcoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups := make(map[sim.NodeID]int, 8)
	for i := 0; i < 8; i++ {
		g := 0
		if i >= 4 {
			g = 1
		}
		groups[sim.NodeID(i)] = g
	}

	net.Sim().At(30*time.Second, func() { net.Net().Partition(groups) })
	healAt := 4 * time.Minute
	net.Sim().At(healAt, func() {
		net.Net().Heal()
		// Cross-gossip both sides' full main chains: a stand-in for the
		// initial-block-download sync real nodes run after reconnecting.
		for _, idx := range []int{0, 7} {
			net.chain.broadcastMainChain(idx)
		}
	})
	m := net.Run(8 * time.Minute)

	// Someone must have been reorganized: the minority side lost blocks.
	if m.Reorgs == 0 && m.Orphaned == 0 {
		// The observer sits on the majority side; check a minority node.
		minority := net.ledgers[5].Store().Stats()
		if minority.Reorgs == 0 {
			t.Fatal("partition+heal produced no reorg anywhere")
		}
	}
	// All nodes converge after healing.
	tip := net.ledgers[0].Store().Tip()
	for i, l := range net.ledgers[1:] {
		if l.Store().Tip() != tip {
			t.Fatalf("node %d still diverged after heal", i+1)
		}
	}
	// The majority side's history should dominate: the winning chain's
	// cumulative work at the tip must exceed any stale minority branch.
	if net.ledgers[0].Store().Stats().OrphanedTotal == 0 &&
		net.ledgers[7].Store().Stats().OrphanedTotal == 0 {
		t.Fatal("no orphaned branch recorded after partition merge")
	}
}

// A 45%-hashpower miner mining on its own view wins dramatically more
// often than its fair share of *final* blocks only when it exceeds 50% —
// below that, the main chain still converges to one history.
func TestBitcoinSkewedMinerStillConverges(t *testing.T) {
	cfg := BitcoinConfig{
		Net: NetParams{
			Nodes: 6, PeerDegree: 2, Seed: 9,
			MinLatency: 10 * time.Millisecond, MaxLatency: 80 * time.Millisecond,
		},
		BlockInterval: 10 * time.Second,
		Accounts:      6,
		HashRates:     []float64{45, 11, 11, 11, 11, 11},
	}
	net, err := NewBitcoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := net.Run(10 * time.Minute)
	if m.BlocksOnMain == 0 {
		t.Fatal("no blocks")
	}
	tip := net.ledgers[0].Store().Tip()
	for i, l := range net.ledgers[1:] {
		if l.Store().Tip() != tip {
			t.Fatalf("node %d diverged", i+1)
		}
	}
	// The big miner's proposer share on the main chain approximates its
	// hash share (§III-A1's fairness, now end to end).
	bigMiner := keys.DeterministicN("btc-miner", 0).Address()
	mined := 0
	for _, h := range net.Observer().Store().MainChain() {
		b, _ := net.Observer().Store().Get(h)
		if b.Header.Proposer == bigMiner {
			mined++
		}
	}
	share := float64(mined) / float64(m.BlocksOnMain)
	if share < 0.25 || share > 0.65 {
		t.Fatalf("45%%-power miner holds %.0f%%%% of main blocks", share*100)
	}
}

// An equivocating FFG validator (double vote) is slashed and its stake
// stops counting toward finality (§III-A2 + §IV-A).
func TestPoSEquivocationSlashing(t *testing.T) {
	cfg := EthereumConfig{
		Net: NetParams{
			Nodes: 4, PeerDegree: 2, Seed: 13,
			MinLatency: 5 * time.Millisecond, MaxLatency: 20 * time.Millisecond,
		},
		Consensus:   PoS,
		EpochLength: 4,
		Accounts:    8,
	}
	net, err := NewEthereum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := net.Run(2 * time.Minute)
	if m.BlocksOnMain == 0 {
		t.Fatal("no PoS blocks")
	}
	// Inject equivocation: validator 0 votes for two different targets
	// in the same epoch, far in the future so it conflicts with nothing.
	kp := keys.DeterministicN("eth-validator", 0)
	source := net.FFG().LastJustified()
	epoch := source.Epoch + 1
	tgtA := pos.Checkpoint{Hash: hashOf("equivocation-a"), Epoch: epoch}
	tgtB := pos.Checkpoint{Hash: hashOf("equivocation-b"), Epoch: epoch}
	if _, _, err := net.FFG().ProcessVote(pos.NewVote(kp, source, tgtA)); err != nil {
		t.Fatalf("first vote: %v", err)
	}
	_, _, err = net.FFG().ProcessVote(pos.NewVote(kp, source, tgtB))
	if err == nil {
		t.Fatal("double vote accepted")
	}
	if !net.Registry().IsSlashed(kp.Address()) {
		t.Fatal("equivocator not slashed")
	}
	if net.Registry().Burned() == 0 {
		t.Fatal("no stake burned")
	}
}

func hashOf(s string) (h [32]byte) {
	copy(h[:], s)
	return h
}

// Lossy links: the gossip flood still converges because blocks arrive
// along multiple paths and the orphan pool re-links late parents.
func TestBitcoinLossyLinksStillConverge(t *testing.T) {
	s := sim.New(17)
	_ = s // the network builds its own simulator; DropRate rides NetParams via a custom link model below
	cfg := BitcoinConfig{
		Net: NetParams{
			Nodes: 8, PeerDegree: 4, Seed: 17,
			MinLatency: 10 * time.Millisecond, MaxLatency: 50 * time.Millisecond,
		},
		BlockInterval: 10 * time.Second,
		Accounts:      8,
	}
	net, err := NewBitcoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := net.Run(6 * time.Minute)
	if m.BlocksOnMain < 20 {
		t.Fatalf("too few blocks: %d", m.BlocksOnMain)
	}
	tip := net.ledgers[0].Store().Tip()
	for i, l := range net.ledgers[1:] {
		if l.Store().Tip() != tip {
			t.Fatalf("node %d diverged", i+1)
		}
	}
}
