package netsim

// Tests for the sync manager: the two legacy gap-repair failure modes
// (pin-to-dead-target, no re-arm after budget exhaustion) demonstrated
// in legacy mode and repaired in recovery mode, the bounded lattice gap
// buffer under a parentless flood, and the cold-start range-pull
// bootstrap on both paradigms.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/lattice"
	"repro/internal/sim"
	"repro/internal/workload"
)

// syncGapCfg is a tiny 4-node lattice network for gap-repair scenarios.
func syncGapCfg(seed int64) NanoConfig {
	return NanoConfig{
		Net: NetParams{
			Nodes: 4, PeerDegree: 2, Seed: seed,
			MinLatency: 5 * time.Millisecond, MaxLatency: 20 * time.Millisecond,
		},
		Accounts: 8,
		Reps:     2,
	}
}

// isolateRelays pins every node's relay view so crafted blocks cannot
// leak to the victim (node 0) by gossip: recovery must come from the
// sync manager's pulls, not from a lucky flood.
func isolateRelays(n *NanoNet) {
	n.rt.net.SetPeersOf(0, []sim.NodeID{2})
	n.rt.net.SetPeersOf(1, []sim.NodeID{2})
	n.rt.net.SetPeersOf(2, []sim.NodeID{3})
	n.rt.net.SetPeersOf(3, []sim.NodeID{2})
}

// craftChain builds two chained sends on the given lattice (processing
// them locally, never publishing) and returns them oldest-first.
func craftChain(t *testing.T, n *NanoNet, lat *lattice.Lattice) (b1, b2 *lattice.Block) {
	t.Helper()
	b1, err := lat.NewSend(n.ring.Pair(1), n.ring.Addr(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res := lat.Process(b1); res.Status != lattice.Accepted {
		t.Fatalf("craft b1: %v", res.Status)
	}
	b2, err = lat.NewSend(n.ring.Pair(1), n.ring.Addr(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res := lat.Process(b2); res.Status != lattice.Accepted {
		t.Fatalf("craft b2: %v", res.Status)
	}
	return b1, b2
}

// runDeadTargetScenario reproduces the first legacy bug: node 1 crafts
// two chained blocks, node 0 receives only the child from node 1, and
// node 1 churns out before the pull chain can be served — while live
// nodes 2 and 3 hold the missing parent the whole time. The pull's only
// hope is re-targeting off the dead sender.
func runDeadTargetScenario(t *testing.T, recovery bool) *NanoNet {
	t.Helper()
	net, err := NewNano(syncGapCfg(501))
	if err != nil {
		t.Fatal(err)
	}
	isolateRelays(net)
	b1, b2 := craftChain(t, net, net.nodes[1].lat)
	// Live nodes 2 and 3 hold the parent; node 0 never sees it by relay.
	net.onBlock(net.nodes[2], net.nodes[1].id, b1)
	net.onBlock(net.nodes[3], net.nodes[2].id, b1)

	// The churn schedule arms legacy gap repair and kills the sender.
	fs := FaultSchedule{Churn: []ChurnWindow{{Node: 1, LeaveAt: 100 * time.Millisecond}}}
	fs.ApplyToNano(net)
	if recovery {
		net.EnableSyncRecovery()
	}
	net.rt.sim.At(200*time.Millisecond, func() {
		net.onBlock(net.nodes[0], net.nodes[1].id, b2)
	})
	net.Run(15 * time.Second)

	if _, ok := net.nodes[2].lat.Get(b1.Hash()); !ok {
		t.Fatal("scenario setup broken: node 2 does not hold the parent")
	}
	return net
}

// Legacy mode replays the historical bug: every retry burns into the
// detached sender (a unicast at a detached target is a silent no-op)
// and the node stays gapped even though two live peers hold the parent.
func TestSyncPullDeadTargetLegacyStaysGapped(t *testing.T) {
	net := runDeadTargetScenario(t, false)
	if net.nodes[0].lat.GapCount() == 0 {
		t.Fatal("legacy pull recovered off a dead target — the historical bug is gone from legacy mode")
	}
	if net.SyncStats().Retargets != 0 {
		t.Fatalf("legacy pull re-targeted %d times; must pin to the original sender", net.SyncStats().Retargets)
	}
}

// Recovery mode re-targets the pull to a live peer and the gap drains.
func TestSyncPullRetargetsOffDetachedSender(t *testing.T) {
	net := runDeadTargetScenario(t, true)
	if got := net.nodes[0].lat.GapCount(); got != 0 {
		t.Fatalf("victim still has %d gaps; re-target never recovered the parent", got)
	}
	if st := net.SyncStats(); st.Retargets == 0 {
		t.Fatalf("gap drained without a re-target (stats %+v) — scenario lost its teeth", st)
	}
}

// runExhaustionScenario reproduces the second legacy bug: the pull
// target is alive but does not hold the missing parent, so all
// maxGapRepairAttempts requests go unserved (~9.6 s). The parent only
// becomes available on live nodes afterwards — recovery requires the
// exhausted pull to re-arm instead of abandoning the gap forever.
func runExhaustionScenario(t *testing.T, recovery bool) *NanoNet {
	t.Helper()
	net, err := NewNano(syncGapCfg(511))
	if err != nil {
		t.Fatal(err)
	}
	isolateRelays(net)
	// Craft on a detached clone: no live node holds b1 or b2 yet.
	donor := net.nodes[1].lat.Clone()
	b1, b2 := craftChain(t, net, donor)

	if recovery {
		net.EnableSyncRecovery()
	} else {
		net.EnableGapRepair()
	}
	net.rt.sim.At(200*time.Millisecond, func() {
		net.onBlock(net.nodes[0], net.nodes[1].id, b2)
	})
	// Long after the 64-attempt budget is spent, the parent surfaces on
	// every live node except the victim (relay isolation keeps it away).
	net.rt.sim.At(12*time.Second, func() {
		net.onBlock(net.nodes[1], net.nodes[3].id, b1)
		net.onBlock(net.nodes[2], net.nodes[3].id, b1)
		net.onBlock(net.nodes[3], net.nodes[2].id, b1)
	})
	net.Run(25 * time.Second)
	return net
}

// Legacy mode replays the historical bug: the exhausted pull deletes its
// bookkeeping, nothing re-arms, and the node stays gapped forever even
// after the whole network has the block.
func TestSyncPullExhaustionLegacyGapsForever(t *testing.T) {
	net := runExhaustionScenario(t, false)
	if net.nodes[0].lat.GapCount() == 0 {
		t.Fatal("legacy pull recovered after budget exhaustion — the historical bug is gone from legacy mode")
	}
	if net.SyncStats().Rearms != 0 {
		t.Fatalf("legacy pull re-armed %d times; exhaustion must be terminal", net.SyncStats().Rearms)
	}
}

// Recovery mode re-arms the exhausted pull with capped backoff against a
// rotated target and eventually drains the gap.
func TestSyncPullRearmsAfterExhaustion(t *testing.T) {
	net := runExhaustionScenario(t, true)
	if got := net.nodes[0].lat.GapCount(); got != 0 {
		t.Fatalf("victim still has %d gaps; exhausted pull never re-armed", got)
	}
	st := net.SyncStats()
	if st.Rearms == 0 {
		t.Fatalf("gap drained without a re-arm (stats %+v) — scenario lost its teeth", st)
	}
}

// A flood of parentless blocks must not grow the lattice gap buffer
// without bound; evicted blocks unmark their dedup bit so they can be
// re-delivered (mirrors the pendingOrder flood test in nano_batch_test).
func TestNanoGapBufferFloodBounded(t *testing.T) {
	cfg := syncGapCfg(521)
	cfg.BacklogCap = 8
	net, err := NewNano(cfg)
	if err != nil {
		t.Fatal(err)
	}
	isolateRelays(net)
	victim := net.nodes[0]

	// Craft a long chain on a detached clone and deliver everything but
	// the root: every delivered block parks as a gap.
	donor := net.nodes[1].lat.Clone()
	blocks := make([]*lattice.Block, 0, 30)
	for i := 0; i < 30; i++ {
		b, err := donor.NewSend(net.ring.Pair(1), net.ring.Addr(2+i%3), 1)
		if err != nil {
			t.Fatal(err)
		}
		if res := donor.Process(b); res.Status != lattice.Accepted {
			t.Fatalf("craft block %d: %v", i, res.Status)
		}
		blocks = append(blocks, b)
	}
	for _, b := range blocks[1:] {
		net.onBlock(victim, net.nodes[1].id, b)
	}

	if got := victim.lat.GapCount(); got > cfg.BacklogCap {
		t.Fatalf("gap buffer holds %d blocks, cap %d", got, cfg.BacklogCap)
	}
	if victim.lat.GapEvictions() == 0 {
		t.Fatal("flood past the cap evicted nothing")
	}
	if st := net.SyncStats(); st.BacklogEvicted == 0 {
		t.Fatalf("evictions not surfaced in SyncStats: %+v", st)
	}

	// The oldest delivered block was evicted FIFO; its dedup bit must be
	// clear so a re-delivery parks it again instead of vanishing.
	evictions := victim.lat.GapEvictions()
	net.onBlock(victim, net.nodes[1].id, blocks[1])
	if got := victim.lat.GapEvictions(); got != evictions+1 {
		t.Fatalf("re-delivered evicted block did not re-park (evictions %d -> %d); dedup bit still set", evictions, got)
	}
	if got := victim.lat.GapCount(); got > cfg.BacklogCap {
		t.Fatalf("re-park overflowed the cap: %d > %d", got, cfg.BacklogCap)
	}
}

// Cold start on the lattice: a node that missed the whole run range-pulls
// the canonical history stream after rejoin and converges on the
// observer's exact block set.
func TestNanoColdStartCatchesUp(t *testing.T) {
	cfg := NanoConfig{
		Net: NetParams{
			Nodes: 6, PeerDegree: 3, Seed: 531,
			MinLatency: 5 * time.Millisecond, MaxLatency: 25 * time.Millisecond,
		},
		Accounts: 12,
		Reps:     4,
	}
	net, err := NewNano(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the cold node's accounts out of the workload: a detached owner
	// would otherwise mint sends the network never sees.
	all := workload.Payments(rand.New(rand.NewSource(532)), workload.Config{
		Accounts: 12, Rate: 8, Duration: 3 * time.Second, MaxAmount: 3,
	})
	var transfers []workload.TimedPayment
	for _, p := range all {
		if p.From%cfg.Net.Nodes != 5 && p.To%cfg.Net.Nodes != 5 {
			transfers = append(transfers, p)
		}
	}
	net.ScheduleColdStart(5, 100*time.Millisecond, 4*time.Second, 16)
	net.RunWithTransfers(10*time.Second, transfers)

	took, ok := net.ColdSyncDone(5)
	if !ok {
		t.Fatalf("cold sync never completed: %+v", net.SyncStats())
	}
	if took <= 0 {
		t.Fatalf("cold sync took %v", took)
	}
	st := net.SyncStats()
	if st.RangePulls < 2 || st.BytesServed == 0 {
		t.Fatalf("range-pull machinery idle: %+v", st)
	}
	obs, cold := net.nodes[0].lat, net.nodes[5].lat
	if cold.GapCount() != 0 {
		t.Fatalf("cold node still has %d gaps", cold.GapCount())
	}
	if obs.BlockCount() != cold.BlockCount() {
		t.Fatalf("cold node holds %d blocks, observer %d", cold.BlockCount(), obs.BlockCount())
	}
}

// Cold start on the chain: a relay-only node that missed an hour of
// mining range-pulls the main chain after rejoin and converges.
func TestBitcoinColdStartCatchesUp(t *testing.T) {
	net, err := NewBitcoin(BitcoinConfig{
		Net: NetParams{
			Nodes: 6, PeerDegree: 3, Seed: 541,
			MinLatency: 5 * time.Millisecond, MaxLatency: 25 * time.Millisecond,
		},
		HashRates:     []float64{1, 1, 1, 1, 1, 0},
		BlockInterval: 2 * time.Second,
		Accounts:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.ScheduleColdStart(5, 1*time.Second, 60*time.Second, 8)
	m := net.Run(90 * time.Second)

	if m.BlocksOnMain == 0 {
		t.Fatal("no blocks mined")
	}
	if _, ok := net.ColdSyncDone(5); !ok {
		t.Fatalf("cold sync never completed: %+v", net.SyncStats())
	}
	if st := net.SyncStats(); st.RangePulls < 2 || st.BlocksServed == 0 {
		t.Fatalf("range-pull machinery idle: %+v", st)
	}
	if !net.ConvergedWithin(3) {
		t.Fatal("cold node's chain diverged after catch-up")
	}
}
