package netsim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/orv"
	"repro/internal/sim"
	"repro/internal/workload"
)

// NanoConfig parameterizes a Nano-like block-lattice network.
type NanoConfig struct {
	Net NetParams
	// Accounts is the user population; account 0 owns the genesis supply
	// which is distributed evenly at setup.
	Accounts int
	// Reps is the number of representative accounts (accounts 0..Reps-1);
	// every account delegates to rep (index mod Reps).
	Reps int
	// Supply is the total issued value.
	Supply uint64
	// WorkBits is the anti-spam PoW difficulty. Keep 0 in large runs:
	// the throttle it imposes is modeled analytically by SpamThrottle.
	WorkBits int
	// QuorumFraction for ORV confirmation (default 0.5, §IV-B majority).
	QuorumFraction float64
	// ReceiveDelay is how quickly an online owner issues the settling
	// receive after observing a send (Fig. 3).
	ReceiveDelay time.Duration
	// OfflineReceivers lists accounts whose owners never issue receives,
	// reproducing §II-B's "a node has to be online in order to receive a
	// transaction".
	OfflineReceivers map[int]bool
	// ProcPerBlock and ProcPerVote are per-message node processing
	// budgets modeling §VI-B's consumer-hardware limit (zero disables).
	ProcPerBlock time.Duration
	ProcPerVote  time.Duration
	// Workers bounds the parallel validation of live gossip batches
	// (lattice.ProcessBatch): <= 0 means one per CPU core, 1 is fully
	// serial. Results are identical either way.
	Workers int
	// BatchSize enables batched live-gossip settlement: blocks arriving
	// from gossip accumulate in a per-node ingest queue and settle
	// together through lattice.ProcessBatch once BatchSize blocks are
	// waiting or BatchWindow elapses, whichever is first — how real
	// block-lattice nodes keep up with gossip floods (§VI-B). <= 1 (the
	// default) settles one block per arrival, byte-identical to the
	// historical serial path.
	BatchSize int
	// BatchWindow bounds how long a partial ingest batch may wait before
	// it is flushed (default 5ms when BatchSize > 1).
	BatchWindow time.Duration
	// BatchCores models how many consumer-CPU cores a batching node puts
	// behind one flush: a batch of k blocks occupies the node for
	// ceil(k/BatchCores) × ProcPerBlock instead of k × ProcPerBlock —
	// §VI-B's hardware ceiling, lifted by pipelined validation. Default 4
	// when batching is enabled; only meaningful with ProcPerBlock > 0.
	// Fixed (never derived from the host CPU count) so tables stay
	// deterministic across machines and worker counts.
	BatchCores int
	// ByzantineNodes makes the LAST k nodes vote adversarially: when a
	// contested double spend is injected (InjectContestedDoubleSpend),
	// their representatives vote for the attacker's preferred rival,
	// abstain from the honest block's election, and never follow the
	// leader — §IV-B's "malicious attack" forks, with the attacker's
	// voting weight swept by how many representatives those nodes host.
	// Zero (the default) keeps every node honest and reproduces the
	// unfaulted pipeline byte for byte. Node 0 (the observer) is always
	// honest, so the cap is Nodes-1.
	ByzantineNodes int
	// BacklogCap bounds the per-node backlog buffers — the lattice gap
	// buffer and the gossip ingest queue (<= 0 keeps the defaults:
	// lattice.DefaultGapLimit and maxIngestBacklog). Evicted blocks
	// unmark their dedup bit and, when the sync manager is armed,
	// schedule a re-pull.
	BacklogCap int
	// BacklogTTL evicts parked gap blocks by age (simulation time)
	// rather than count: any parked block older than the TTL is dropped
	// on the node's next Process call, even while the buffer is under
	// BacklogCap. <= 0 disables age-based eviction.
	BacklogTTL time.Duration
}

func (c NanoConfig) withDefaults() NanoConfig {
	c.Net = c.Net.withDefaults()
	if c.Accounts <= 0 {
		c.Accounts = 32
	}
	if c.Reps <= 0 {
		c.Reps = 4
	}
	if c.Reps > c.Accounts {
		c.Reps = c.Accounts
	}
	if c.Supply == 0 {
		c.Supply = 1 << 40
	}
	if c.QuorumFraction == 0 {
		c.QuorumFraction = 0.5
	}
	if c.ReceiveDelay <= 0 {
		c.ReceiveDelay = 50 * time.Millisecond
	}
	if c.BatchSize > 1 && c.BatchWindow <= 0 {
		c.BatchWindow = 5 * time.Millisecond
	}
	if c.BatchSize > 1 && c.BatchCores <= 0 {
		c.BatchCores = 4
	}
	if c.ByzantineNodes < 0 {
		c.ByzantineNodes = 0
	}
	if c.ByzantineNodes >= c.Net.Nodes {
		c.ByzantineNodes = c.Net.Nodes - 1
	}
	return c
}

// Bounds on the per-node vote bookkeeping. Votes buffered for candidates
// that never materialize (e.g. rejected rivals) and the seen-vote dedup
// set must not grow without limit under a vote flood.
const (
	// maxPendingVoteCandidates caps how many unknown candidates may hold
	// buffered votes; the oldest buffered candidate is evicted first.
	maxPendingVoteCandidates = 4096
	// maxPendingVotesPerCandidate caps the buffer of any one candidate.
	maxPendingVotesPerCandidate = 64
	// maxSeenVotes bounds the dedup set per generation; the set rotates
	// through two generations, so at most 2×maxSeenVotes ids are held.
	// A vote forgotten after two rotations re-applies harmlessly: the
	// tracker discards stale sequence numbers.
	maxSeenVotes = 1 << 16
)

// maxIngestBacklog bounds the gossip ingest queue when
// NanoConfig.BacklogCap is unset. The count-triggered flush already
// empties the queue at BatchSize, so the default bound only matters if a
// cap below BatchSize is configured — then eviction, not the count
// flush, holds the line (the window timer still settles the remainder).
const maxIngestBacklog = 4096

// nanoNode is one full node: lattice replica, vote tracker, dedup state.
// Hot-path dedup (seen blocks, seen votes) lives in the network-level
// struct-of-arrays matrices (NanoNet.seenBlocks/seenVotes), addressed by
// this node's index; the maps that remain below are cold — forks, vote
// switching, gap repair — and are allocated lazily on first write, so a
// node that never hits those paths (the overwhelming majority at
// mega-scale) carries no map at all.
type nanoNode struct {
	id      sim.NodeID
	lat     *lattice.Lattice
	tracker *orv.Tracker
	weights *orv.Weights
	// byzantine nodes vote for adversary-preferred fork candidates and
	// never switch (NanoConfig.ByzantineNodes).
	byzantine bool
	// repAccounts are representative indices whose owner is this node.
	repAccounts []int
	// forkRoots maps fork-election candidates to their derived roots,
	// shadowing the identity rule for plain candidates (electionRootOf).
	forkRoots map[hashx.Hash]hashx.Hash
	// forkPrev maps a fork election's derived root back to the contested
	// predecessor block it is about (the ResolveFork argument).
	forkPrev map[hashx.Hash]hashx.Hash
	// pendingVotes buffers votes whose candidate block is unknown, capped
	// at maxPendingVoteCandidates candidates of maxPendingVotesPerCandidate
	// votes each; pendingOrder records buffering order for FIFO eviction
	// (entries may be stale once a candidate's votes replay).
	pendingVotes map[hashx.Hash][]*orv.Vote
	pendingOrder []hashx.Hash
	// ingest accumulates gossip blocks awaiting a batched ProcessBatch
	// flush (BatchSize > 1 only); flushTimer is the armed BatchWindow
	// flush event. Each entry remembers its sender for gap repair.
	ingest     []ingestEntry
	flushTimer sim.EventID
	flushArmed bool
	// myVote tracks this node's reps' current choice and switch count.
	myVote   map[hashx.Hash]hashx.Hash
	mySeq    map[hashx.Hash]uint64
	switches map[hashx.Hash]int
	// issuedReceive dedups settle blocks per send.
	issuedReceive map[hashx.Hash]bool
	// resolvedForks dedups fork resolutions.
	resolvedForks map[hashx.Hash]bool
}

// row is the node's row index in the network's pooled bit matrices.
func (node *nanoNode) row() int { return int(node.id) }

// lazyPut inserts into a lazily allocated map, allocating on first write.
// The cold per-node maps stay nil until a node actually hits their path.
func lazyPut[K comparable, V any](m *map[K]V, k K, v V) {
	if *m == nil {
		*m = make(map[K]V)
	}
	(*m)[k] = v
}

// NanoMetrics summarizes a lattice network run.
type NanoMetrics struct {
	Duration time.Duration
	// TransfersSubmitted counts payment requests; SendsCreated the sends
	// actually issued (a sender may lack funds mid-run).
	TransfersSubmitted int
	SendsCreated       int
	// SettledAtObserver counts transfers whose receive reached node 0.
	SettledAtObserver int
	// UnsettledAtEnd is the observer's pending (send-without-receive)
	// count — Fig. 3's "unsettled" census.
	UnsettledAtEnd int
	// TPS counts settled transfers per second; BPS counts lattice blocks
	// per second (Nano's native unit: one transfer = two blocks).
	TPS float64
	BPS float64
	// ConfirmLatency is the distribution of block-creation→quorum
	// delays at the observer, in seconds (§IV-B confirmation).
	ConfirmLatency metrics.Histogram
	// ConfirmedBlocks and CementedBlocks count quorum outcomes.
	ConfirmedBlocks int
	CementedBlocks  int
	// ForksDetected and ForksResolved track §IV-B conflicts.
	ForksDetected int
	ForksResolved int
	// VotesSent counts vote messages network-wide.
	VotesSent    int
	MessagesSent int
	BytesSent    int64
	// GossipBatches and GossipBatchedBlocks count ingest-queue flushes
	// through lattice.ProcessBatch and the blocks they settled (zero when
	// BatchSize <= 1, the serial path).
	GossipBatches       int
	GossipBatchedBlocks int
	// ForkResolveLatency is the distribution of fork-detection→resolution
	// delays at the observer, in seconds — the re-election time §IV-B's
	// representative voting needs to settle a contested predecessor.
	ForkResolveLatency metrics.Histogram
	// LedgerBytes and HeadBytes give the §V-B size comparison.
	LedgerBytes int
	HeadBytes   int
}

// NanoNet is a running block-lattice network simulation. Node lifecycle,
// relay and vote dissemination run through the shared NodeRuntime, so
// per-node Behaviors (eclipse, vote withholding) intercept them.
type NanoNet struct {
	cfg   NanoConfig
	rt    *NodeRuntime
	nodes []*nanoNode
	ring  *keys.Ring

	// Struct-of-arrays dedup state: one dense-id dictionary per concern
	// shared by every node, plus pooled per-node bit matrices sized once
	// for the whole network (soa.go). Replaces three hash maps per node.
	blockIDs   *dex[hashx.Hash]
	voteIDs    *dex[voteKey]
	seenBlocks *bitRows
	seenVotes  *genSeen

	created     map[hashx.Hash]time.Duration // block hash -> creation time
	confirmedAt map[hashx.Hash]bool          // observer confirmations seen
	metrics     NanoMetrics

	// Adversary bookkeeping (InjectContestedDoubleSpend): the attacker's
	// preferred rival blocks, the honest blocks it contests, and when the
	// observer first saw each fork root (for re-election latency).
	advPreferred map[hashx.Hash]bool
	advContested map[hashx.Hash]bool
	forkSeenAt   map[hashx.Hash]time.Duration
	// sync runs the pull side of catch-up (syncmgr.go): single-block gap
	// pulls, cold-start range pulls, backlog-eviction accounting. Armed
	// by FaultSchedule or StartColdSync; disarmed it adds no events.
	sync *syncManager
}

// ingestEntry is one queued gossip block plus the node that sent it.
type ingestEntry struct {
	b    *lattice.Block
	from sim.NodeID
}

// EnableGapRepair arms the sync manager's pull-based bootstrapping that
// lets nodes recover ancestors they missed (partitions, churn, lossy
// periods), at the legacy-compatible level: pulls pin to the original
// sender and give up when the attempt budget is spent, replaying the
// historical event stream byte for byte (the pinned fault tables depend
// on it). Off by default: the repair timers would reorder the event
// sequence of healthy runs and perturb their byte-exact tables.
func (n *NanoNet) EnableGapRepair() { n.sync.arm() }

// EnableSyncRecovery arms the sync manager with the repaired failure
// handling on top: pulls whose target churns out re-target to a live
// peer, and exhausted attempt budgets re-arm with capped backoff
// instead of abandoning the gap forever. Runs armed this way trade
// byte-compatibility with the historical fault tables for actually
// recovering.
func (n *NanoNet) EnableSyncRecovery() { n.sync.armRecovery() }

// NewNano builds the network: identical genesis on every node, an even
// initial distribution processed everywhere at setup, and weight tables
// computed from the resulting delegation (§III-B).
func NewNano(cfg NanoConfig) (*NanoNet, error) {
	cfg = cfg.withDefaults()
	s, net := buildNetwork(cfg.Net)
	ring := keys.NewRing("nano-net", cfg.Accounts)

	// Build the canonical initial distribution once.
	seedLat, _, err := lattice.New(ring.Pair(0), cfg.Supply, cfg.WorkBits)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	share := cfg.Supply / uint64(cfg.Accounts)
	var setupBlocks []*lattice.Block
	for i := 1; i < cfg.Accounts; i++ {
		send, err := seedLat.NewSend(ring.Pair(0), ring.Addr(i), share)
		if err != nil {
			return nil, fmt.Errorf("netsim: distribute: %w", err)
		}
		if res := seedLat.Process(send); res.Status != lattice.Accepted {
			return nil, fmt.Errorf("netsim: distribute send: %v", res.Status)
		}
		rep := ring.Addr(i % cfg.Reps)
		open, err := seedLat.NewOpen(ring.Pair(i), send.Hash(), rep)
		if err != nil {
			return nil, fmt.Errorf("netsim: open: %w", err)
		}
		if res := seedLat.Process(open); res.Status != lattice.Accepted {
			return nil, fmt.Errorf("netsim: distribute open: %v", res.Status)
		}
		setupBlocks = append(setupBlocks, send, open)
	}

	// The template replayed the whole distribution serially, so one
	// integrity check here covers every node: each replica below is a
	// structural clone of this exact verified state.
	if seedLat.GapCount() != 0 || seedLat.BlockCount() != len(setupBlocks)+1 {
		return nil, fmt.Errorf("netsim: distribution incomplete: %d/%d blocks, %d gapped",
			seedLat.BlockCount(), len(setupBlocks)+1, seedLat.GapCount())
	}

	n := &NanoNet{
		cfg:          cfg,
		rt:           newNodeRuntime(s, net),
		ring:         ring,
		blockIDs:     newDex[hashx.Hash](256),
		voteIDs:      newDex[voteKey](256),
		seenBlocks:   newBitRows(cfg.Net.Nodes, 256),
		seenVotes:    newGenSeen(cfg.Net.Nodes, maxSeenVotes, 256),
		created:      make(map[hashx.Hash]time.Duration),
		confirmedAt:  make(map[hashx.Hash]bool),
		advPreferred: make(map[hashx.Hash]bool),
		advContested: make(map[hashx.Hash]bool),
		forkSeenAt:   make(map[hashx.Hash]time.Duration),
	}
	n.sync = newSyncManager(n.rt, func(id sim.NodeID, h hashx.Hash) bool {
		_, ok := n.nodes[id].lat.Get(h)
		return ok
	})
	n.metrics.ConfirmLatency.SetBudget(cfg.Net.SampleBudget)
	n.metrics.ForkResolveLatency.SetBudget(cfg.Net.SampleBudget)

	repWeightTable := seedLat.RepWeights()
	for i := 0; i < cfg.Net.Nodes; i++ {
		// Clone the verified template instead of re-signing a genesis and
		// re-verifying the distribution per node: blocks are immutable and
		// shared, only the bookkeeping is copied — the setup cost no longer
		// scales with nodes × distribution size at mega-scale (E19).
		weights := orv.NewWeights(repWeightTable)
		node := &nanoNode{
			byzantine: cfg.ByzantineNodes > 0 && i >= cfg.Net.Nodes-cfg.ByzantineNodes,
			lat:       seedLat.Clone(),
			tracker:   orv.NewTracker(weights, orv.Config{QuorumFraction: cfg.QuorumFraction}),
			weights:   weights,
		}
		for rep := 0; rep < cfg.Reps; rep++ {
			if n.ownerOf(rep) == i {
				node.repAccounts = append(node.repAccounts, rep)
			}
		}
		node.id = n.rt.AddNode(n.handlerFor(node))
		n.nodes = append(n.nodes, node)
		if cfg.BacklogCap > 0 {
			node.lat.SetGapLimit(cfg.BacklogCap)
		}
		if cfg.BacklogTTL > 0 {
			node.lat.SetClock(s.Now)
			node.lat.SetGapTTL(cfg.BacklogTTL)
		}
		node.lat.SetGapEvicted(n.gapEvictedHook(node))
	}
	net.SetPeers(sim.RandomPeers(s.Rand(), cfg.Net.Nodes, cfg.Net.PeerDegree))

	if cfg.ProcPerBlock > 0 || cfg.ProcPerVote > 0 {
		net.SetProcessing(func(_ sim.NodeID, payload any, _ int) time.Duration {
			switch payload.(type) {
			case *lattice.Block:
				if cfg.BatchSize > 1 {
					// Batched nodes enqueue arrivals for free; the
					// validation budget is charged per flush (Occupy in
					// flushIngest), amortized across BatchCores.
					return 0
				}
				return cfg.ProcPerBlock
			case *orv.Vote:
				return cfg.ProcPerVote
			default:
				return 0
			}
		})
	}
	return n, nil
}

// ownerOf maps an account index to its owner node index.
func (n *NanoNet) ownerOf(account int) int { return account % n.cfg.Net.Nodes }

// Observer returns node 0's lattice.
func (n *NanoNet) Observer() *lattice.Lattice { return n.nodes[0].lat }

// ObserverTracker returns node 0's vote tracker.
func (n *NanoNet) ObserverTracker() *orv.Tracker { return n.nodes[0].tracker }

// Ring returns the account identities.
func (n *NanoNet) Ring() *keys.Ring { return n.ring }

// Sim exposes the simulator.
func (n *NanoNet) Sim() *sim.Simulator { return n.rt.sim }

// Net exposes the underlying network (partitions, stats, loss hooks).
func (n *NanoNet) Net() *sim.Network { return n.rt.net }

// Runtime exposes the node runtime, the seam custom Behaviors install
// through.
func (n *NanoNet) Runtime() *NodeRuntime { return n.rt }

// SyncStats returns the sync manager's pull and backlog counters.
func (n *NanoNet) SyncStats() SyncStats { return n.sync.stats }

// ScheduleColdStart detaches a node at detachAt and rejoins it at
// rejoinAt through the sync manager: the node pulls the canonical
// history stream from a live peer in windows of batch blocks (E20's
// bootstrap scenario). The sync manager arms itself at rejoin.
func (n *NanoNet) ScheduleColdStart(node int, detachAt, rejoinAt time.Duration, batch int) {
	id := n.nodes[node].id
	n.rt.sim.At(detachAt, func() { n.rt.net.Detach(id) })
	n.rt.sim.At(rejoinAt, func() {
		n.rt.net.Attach(id)
		target := n.sync.rotateTarget(id, id)
		if target == id {
			return // no live peer to sync from
		}
		n.sync.StartColdSync(id, target, batch)
	})
}

// ColdSyncDone reports how long the node's cold-start catch-up took to
// drain the server's history stream; ok is false while it is running.
func (n *NanoNet) ColdSyncDone(node int) (time.Duration, bool) {
	return n.sync.coldSyncDone(n.nodes[node].id)
}

// handlerFor dispatches gossip messages.
func (n *NanoNet) handlerFor(node *nanoNode) sim.Handler {
	return func(from sim.NodeID, payload any, size int) {
		switch msg := payload.(type) {
		case *lattice.Block:
			n.onBlock(node, from, msg)
		case *orv.Vote:
			n.onVote(node, msg)
		case *blockRequest:
			n.onBlockRequest(node, from, msg)
		case *rangeRequest:
			n.onRangeRequest(node, from, msg)
		case *rangeReply:
			n.sync.onRangeReply(node.id, msg)
		}
	}
}

// onBlock processes a received lattice block: serially per arrival when
// BatchSize <= 1 (the historical path, reproduced exactly), or through
// the per-node ingest queue when batching is enabled.
func (n *NanoNet) onBlock(node *nanoNode, from sim.NodeID, b *lattice.Block) {
	h := b.Hash()
	if n.seenBlocks.testSet(node.row(), n.blockIDs.id(h)) {
		return
	}
	if n.cfg.BatchSize > 1 {
		n.enqueueIngest(node, b, from)
		return
	}
	if n.reactToResult(node, b, h, node.lat.Process(b), from) {
		n.rt.Relay(node.id, b, b.EncodedSize())
	}
}

// onBlockRequest serves a block the requester is missing (gap repair).
func (n *NanoNet) onBlockRequest(node *nanoNode, from sim.NodeID, req *blockRequest) {
	if blk, ok := node.lat.Get(req.Hash); ok {
		n.sync.stats.BlocksServed++
		n.sync.stats.BytesServed += int64(blk.EncodedSize())
		n.rt.Unicast(node.id, from, blk, blk.EncodedSize())
	}
}

// onRangeRequest serves one window of this node's canonical history — the
// deterministic account-ordered block stream — to a cold-syncing puller.
func (n *NanoNet) onRangeRequest(node *nanoNode, from sim.NodeID, req *rangeRequest) {
	blocks := node.lat.AllBlocks()
	n.sync.serveRange(node.id, from, req, len(blocks), func(i int) (any, int) {
		return blocks[i], blocks[i].EncodedSize()
	})
}

// gapEvictedHook wires one node's lattice gap-buffer eviction into the
// sync manager: the evicted block's dedup bit is cleared so gossip (or a
// served pull) can re-deliver it, and when the manager is armed a
// deferred re-pull fetches the block back from a live peer.
func (n *NanoNet) gapEvictedHook(node *nanoNode) func(*lattice.Block) {
	return func(b *lattice.Block) {
		n.sync.stats.BacklogEvicted++
		h := b.Hash()
		n.seenBlocks.clear(node.row(), n.blockIDs.id(h))
		if !n.sync.armed {
			return
		}
		n.rt.sim.After(gapRepairDelay, func() {
			if tgt := n.sync.rotateTarget(node.id, node.id); tgt != node.id {
				n.sync.Pull(node.id, h, tgt)
			}
		})
	}
}

// reactToResult applies the post-attach handling for one processed
// block — election start, receive scheduling and observer settlement
// counting for the block and every gap it drained, fork-election starts
// for rivals — and reports whether the block may be relayed. It is the
// shared reaction of the serial path and of every block in a flushed
// batch. from is the sender, the gap-repair pull target.
func (n *NanoNet) reactToResult(node *nanoNode, b *lattice.Block, h hashx.Hash, res lattice.Result, from sim.NodeID) bool {
	switch res.Status {
	case lattice.Accepted:
		n.onAttached(node, b, h)
		for _, d := range res.Drained {
			n.onAttached(node, d, d.Hash())
		}
	case lattice.AcceptedFork:
		if node == n.nodes[0] {
			n.metrics.ForksDetected++
			if _, seen := n.forkSeenAt[b.Prev]; !seen {
				n.forkSeenAt[b.Prev] = n.rt.sim.Now()
			}
		}
		n.startForkElection(node, b, res.ForkRivals)
	case lattice.GapPrevious:
		// Buffered inside the lattice; still relay so peers catch up,
		// and pull the missing ancestor when the sync manager is armed.
		n.sync.Pull(node.id, b.Prev, from)
	case lattice.GapSource:
		n.sync.Pull(node.id, b.Source, from)
	case lattice.Rejected:
		return false // do not relay invalid blocks
	}
	return true
}

// enqueueIngest queues a gossip block for batched settlement, flushing
// when the batch fills and arming the BatchWindow timer otherwise.
func (n *NanoNet) enqueueIngest(node *nanoNode, b *lattice.Block, from sim.NodeID) {
	node.ingest = append(node.ingest, ingestEntry{b: b, from: from})
	if len(node.ingest) >= n.cfg.BatchSize {
		n.flushIngest(node)
		return
	}
	cap := n.cfg.BacklogCap
	if cap <= 0 {
		cap = maxIngestBacklog
	}
	if len(node.ingest) > cap {
		// Bounded ingest: drop the oldest queued block, unmark its dedup
		// bit so it can be re-delivered, and re-pull it when armed.
		evicted := node.ingest[0]
		node.ingest = node.ingest[1:]
		n.sync.stats.BacklogEvicted++
		h := evicted.b.Hash()
		n.seenBlocks.clear(node.row(), n.blockIDs.id(h))
		if n.sync.armed {
			from := evicted.from
			n.rt.sim.After(gapRepairDelay, func() { n.sync.Pull(node.id, h, from) })
		}
	}
	if !node.flushArmed {
		node.flushArmed = true
		node.flushTimer = n.rt.sim.After(n.cfg.BatchWindow, func() { n.flushIngest(node) })
	}
}

// flushIngest settles the node's queued gossip blocks in one
// lattice.ProcessBatch call — signature and work checks fan out across
// cfg.Workers — then runs the per-block reactions in arrival order:
// elections open (replaying any votes buffered against the in-flight
// candidates), receives get scheduled, fork elections start, and every
// non-rejected block is relayed exactly once (arrival already dedups via
// seenBlocks).
func (n *NanoNet) flushIngest(node *nanoNode) {
	if node.flushArmed {
		n.rt.sim.Cancel(node.flushTimer)
		node.flushArmed = false
	}
	entries := node.ingest
	node.ingest = nil
	if len(entries) == 0 {
		return
	}
	blocks := make([]*lattice.Block, len(entries))
	for i, e := range entries {
		blocks[i] = e.b
	}
	n.metrics.GossipBatches++
	n.metrics.GossipBatchedBlocks += len(blocks)
	if n.cfg.ProcPerBlock > 0 {
		// The §VI-B hardware budget, batch-pipelined: validating k blocks
		// across BatchCores modeled cores occupies the node for
		// ceil(k/cores) serial block costs instead of k.
		rounds := (len(blocks) + n.cfg.BatchCores - 1) / n.cfg.BatchCores
		n.rt.net.Occupy(node.id, time.Duration(rounds)*n.cfg.ProcPerBlock)
	}
	for i, res := range node.lat.ProcessBatch(blocks, n.cfg.Workers) {
		b := blocks[i]
		if n.reactToResult(node, b, b.Hash(), res, entries[i].from) {
			n.rt.Relay(node.id, b, b.EncodedSize())
		}
	}
}

// onAttached reacts to a block joining the node's lattice: open its
// election, settle inbound sends, and count observer-side settlement.
func (n *NanoNet) onAttached(node *nanoNode, b *lattice.Block, h hashx.Hash) {
	n.startPlainElection(node, b, h)
	n.maybeScheduleReceive(node, b, h)
	if node == n.nodes[0] && (b.Type == lattice.Receive || b.Type == lattice.Open) {
		n.metrics.SettledAtObserver++
	}
}

// electionRootOf resolves the election root a vote candidate tallies
// under. Fork rivals carry an explicit entry (startForkElection shadows
// any earlier plain election); every other candidate is its own root
// exactly when its plain election exists — the identity the old rootOf
// map spelled out one entry per block.
func (n *NanoNet) electionRootOf(node *nanoNode, candidate hashx.Hash) (hashx.Hash, bool) {
	if root, ok := node.forkRoots[candidate]; ok {
		return root, true
	}
	if node.tracker.HasElection(candidate) {
		return candidate, true
	}
	return hashx.Zero, false
}

// startPlainElection opens the single-candidate election of §IV-B's
// automatic voting and votes if this node hosts representatives. A
// byzantine node abstains from elections for the honest blocks its
// attacker contests — its weight backs only the preferred rival.
func (n *NanoNet) startPlainElection(node *nanoNode, b *lattice.Block, h hashx.Hash) {
	if node.tracker.HasElection(h) {
		return
	}
	if err := node.tracker.StartElection(h, h); err != nil {
		return
	}
	if !node.byzantine || !n.advContested[h] {
		n.castVotes(node, h, h, 1)
	}
	n.replayPendingVotes(node, h)
}

// forkRootOf derives the fork election's root from the contested
// predecessor. It must differ from the predecessor's own hash: the
// predecessor already carries its plain confirmation election (usually
// decided long before the fork appears), and rooting the contested
// election there would collide with it.
func forkRootOf(prev hashx.Hash) hashx.Hash {
	buf := make([]byte, 0, len("fork/")+hashx.Size)
	buf = append(buf, "fork/"...)
	buf = append(buf, prev[:]...)
	return hashx.Sum(buf)
}

// startForkElection opens (or extends) the contested-predecessor election
// under its derived fork root. Votes representatives already cast for the
// candidates in their plain elections are adopted into the contested
// election — the vote dedup would otherwise discard their re-broadcasts
// and starve the election.
func (n *NanoNet) startForkElection(node *nanoNode, b *lattice.Block, rivals []hashx.Hash) {
	root := forkRootOf(b.Prev)
	if err := node.tracker.StartElection(root, rivals...); err != nil {
		return
	}
	lazyPut(&node.forkPrev, root, b.Prev)
	for _, c := range rivals {
		lazyPut(&node.forkRoots, c, root)
		if node.tracker.HasElection(c) {
			if out, err := node.tracker.AdoptVotes(root, c, c); err == nil && out.Confirmed {
				n.onConfirmed(node, root, out.Winner)
				return
			}
		}
		n.replayPendingVotes(node, c)
	}
	// Vote for the incumbent this node's lattice attached (first seen) —
	// unless the node is byzantine and the attacker's preferred rival is
	// on the ballot, in which case its weight contests the election.
	if _, voted := node.myVote[root]; !voted && len(node.repAccounts) > 0 {
		if cands, ok := node.lat.ForkCandidates(b.Prev); ok && len(cands) > 0 {
			choice := cands[0]
			if node.byzantine {
				for _, c := range cands {
					if n.advPreferred[c] {
						choice = c
						break
					}
				}
			}
			// Seq 2 outruns the seq-1 plain votes: the re-vote's identity
			// is fresh, so peers that deduped the plain broadcast still
			// tally it in their contested elections.
			n.castVotes(node, root, choice, 2)
		}
	}
}

// castVotes makes every representative hosted on this node vote for
// candidate, recording it locally and broadcasting to all nodes (§IV-B:
// "the network automatically broadcasts consensus information"). Each
// vote passes the node's OnVote behavior hook first: a withheld vote is
// neither tallied locally nor broadcast — its weight simply goes silent
// (VoteWithholdBehavior).
func (n *NanoNet) castVotes(node *nanoNode, root, candidate hashx.Hash, seq uint64) {
	if len(node.repAccounts) == 0 {
		return
	}
	lazyPut(&node.myVote, root, candidate)
	lazyPut(&node.mySeq, root, seq)
	for _, rep := range node.repAccounts {
		v := orv.NewVote(n.ring.Pair(rep), candidate, seq)
		if !n.rt.voteAllowed(node.id, v) {
			continue
		}
		n.metrics.VotesSent++
		n.applyVote(node, v) // count our own vote locally
		n.rt.Broadcast(node.id, v, v.EncodedSize())
	}
}

// onVote processes a received vote. Only votes that were applied or
// buffered are recorded as seen: a vote the caps dropped stays unseen,
// so a later rebroadcast can land once the election exists. Votes are
// identified by their (rep, block, seq) content tuple — no per-message
// digest (the old voteID SHA-256) is computed on this path.
func (n *NanoNet) onVote(node *nanoNode, v *orv.Vote) {
	id := n.voteIDs.id(voteKeyOf(v))
	if n.seenVotes.seen(node.row(), id) {
		return
	}
	if n.applyVote(node, v) {
		n.seenVotes.mark(node.row(), id)
	}
}

func voteKeyOf(v *orv.Vote) voteKey {
	return voteKey{Rep: v.Rep, Block: v.Block, Seq: v.Seq}
}

// applyVote tallies a vote and reacts to the outcome: confirmation,
// cementing, fork resolution, and §III-B leader-following vote switches.
// It reports whether the vote was consumed (applied or buffered); false
// means the pending-buffer caps dropped it.
func (n *NanoNet) applyVote(node *nanoNode, v *orv.Vote) bool {
	root, ok := n.electionRootOf(node, v.Block)
	if !ok {
		return n.bufferPendingVote(node, v)
	}
	out, err := node.tracker.ProcessVote(root, v)
	if err != nil {
		return true
	}
	if out.Confirmed {
		n.onConfirmed(node, root, out.Winner)
		return true
	}
	// Vote switching: follow the leader once it out-tallies our choice.
	// Byzantine representatives never budge — their vote IS the attack.
	if node.byzantine || len(node.repAccounts) == 0 || node.switches[root] >= 3 {
		return true
	}
	mine, voted := node.myVote[root]
	if !voted || mine == hashx.Zero {
		return true
	}
	leader, tally, err := node.tracker.Leader(root)
	if err != nil || leader == hashx.Zero || leader == mine {
		return true
	}
	myWeight := uint64(0)
	for _, rep := range node.repAccounts {
		myWeight += node.weights.WeightOf(n.ring.Addr(rep))
	}
	if tally > myWeight {
		lazyPut(&node.switches, root, node.switches[root]+1)
		n.castVotes(node, root, leader, node.mySeq[root]+1)
	}
	return true
}

// bufferPendingVote stores a vote whose candidate block is still unknown,
// within the pending-buffer caps: a full candidate buffer drops the vote
// (reported as false, so it is never marked seen and a later rebroadcast
// lands once the election exists), and a full candidate table evicts the
// oldest buffered candidate — votes for blocks that never materialize
// (rejected rivals, spam) cannot pin memory.
func (n *NanoNet) bufferPendingVote(node *nanoNode, v *orv.Vote) bool {
	waiting := node.pendingVotes[v.Block]
	if len(waiting) >= maxPendingVotesPerCandidate {
		return false
	}
	if len(waiting) == 0 {
		if len(node.pendingVotes) >= maxPendingVoteCandidates {
			n.evictOldestPendingCandidate(node)
		}
		node.pendingOrder = append(node.pendingOrder, v.Block)
		if len(node.pendingOrder) > 2*maxPendingVoteCandidates {
			compactPendingOrder(node)
		}
	}
	lazyPut(&node.pendingVotes, v.Block, append(waiting, v))
	return true
}

// evictOldestPendingCandidate drops the oldest candidate that still holds
// buffered votes, skipping order entries already replayed or evicted. The
// dropped votes are forgotten from the seen set so rebroadcasts of them
// are not silently ignored.
func (n *NanoNet) evictOldestPendingCandidate(node *nanoNode) {
	for len(node.pendingOrder) > 0 {
		c := node.pendingOrder[0]
		node.pendingOrder = node.pendingOrder[1:]
		if waiting, live := node.pendingVotes[c]; live {
			for _, v := range waiting {
				n.seenVotes.unmark(node.row(), n.voteIDs.id(voteKeyOf(v)))
			}
			delete(node.pendingVotes, c)
			return
		}
	}
}

// compactPendingOrder rebuilds the eviction queue keeping only candidates
// that still hold buffered votes, bounding the queue itself.
func compactPendingOrder(node *nanoNode) {
	kept := node.pendingOrder[:0]
	for _, c := range node.pendingOrder {
		if _, live := node.pendingVotes[c]; live {
			kept = append(kept, c)
		}
	}
	node.pendingOrder = kept
}

// replayPendingVotes re-applies buffered votes once their candidate's
// election exists.
func (n *NanoNet) replayPendingVotes(node *nanoNode, candidate hashx.Hash) {
	waiting := node.pendingVotes[candidate]
	if len(waiting) == 0 {
		return
	}
	delete(node.pendingVotes, candidate)
	for _, v := range waiting {
		n.applyVote(node, v)
	}
}

// onConfirmed handles a quorum: cement the winner, resolve forks, record
// observer-side latency.
func (n *NanoNet) onConfirmed(node *nanoNode, root, winner hashx.Hash) {
	if prev, isFork := node.forkPrev[root]; isFork && !node.resolvedForks[root] {
		lazyPut(&node.resolvedForks, root, true)
		if err := node.lat.ResolveFork(prev, winner); err == nil && node == n.nodes[0] {
			n.metrics.ForksResolved++
			if t0, seen := n.forkSeenAt[prev]; seen {
				n.metrics.ForkResolveLatency.AddDuration(n.rt.sim.Now() - t0)
				delete(n.forkSeenAt, prev)
			}
		}
	}
	_ = node.tracker.Cement(winner)
	if node == n.nodes[0] && !n.confirmedAt[winner] {
		n.confirmedAt[winner] = true
		n.metrics.ConfirmedBlocks++
		if created, ok := n.created[winner]; ok {
			n.metrics.ConfirmLatency.AddDuration(n.rt.sim.Now() - created)
		}
	}
}

// maybeScheduleReceive lets the destination's owner settle an observed
// send after ReceiveDelay (Fig. 3's receive leg).
func (n *NanoNet) maybeScheduleReceive(node *nanoNode, b *lattice.Block, h hashx.Hash) {
	if b.Type != lattice.Send {
		return
	}
	destIdx := n.ring.Index(b.Destination)
	if destIdx < 0 || n.ownerOf(destIdx) != int(node.id) {
		return
	}
	if n.cfg.OfflineReceivers[destIdx] {
		return // §II-B: offline receivers leave the transfer unsettled
	}
	if node.issuedReceive[h] {
		return
	}
	lazyPut(&node.issuedReceive, h, true)
	n.rt.sim.After(n.cfg.ReceiveDelay, func() {
		var (
			settle *lattice.Block
			err    error
		)
		if _, opened := node.lat.Head(b.Destination); opened {
			settle, err = node.lat.NewReceive(n.ring.Pair(destIdx), h)
		} else {
			rep := n.ring.Addr(destIdx % n.cfg.Reps)
			settle, err = node.lat.NewOpen(n.ring.Pair(destIdx), h, rep)
		}
		if err != nil {
			return
		}
		n.publish(node, settle)
	})
}

// publish records, self-processes and floods a locally created block.
func (n *NanoNet) publish(node *nanoNode, b *lattice.Block) {
	h := b.Hash()
	n.created[h] = n.rt.sim.Now()
	n.seenBlocks.testSet(node.row(), n.blockIDs.id(h))
	res := node.lat.Process(b)
	if res.Status == lattice.Accepted {
		n.onAttached(node, b, h)
		for _, d := range res.Drained {
			n.onAttached(node, d, d.Hash())
		}
	}
	n.rt.Relay(node.id, b, b.EncodedSize())
}

// SubmitTransfer schedules a payment: the sender's owner node issues the
// send; the destination's owner settles it when it arrives.
func (n *NanoNet) SubmitTransfer(p workload.TimedPayment) {
	n.rt.sim.At(p.At, func() {
		n.metrics.TransfersSubmitted++
		owner := n.nodes[n.ownerOf(p.From)]
		send, err := owner.lat.NewSend(n.ring.Pair(p.From), n.ring.Addr(p.To), p.Amount)
		if err != nil {
			return
		}
		n.metrics.SendsCreated++
		n.publish(owner, send)
	})
}

// InjectDoubleSpend makes the attacker issue two conflicting sends from
// the same predecessor: the honest one at its owner node, the rival
// directly at the farthest node — §IV-B's "forks in Nano are only
// possible as a result of a malicious attack". It is the legacy form of
// InjectContestedDoubleSpend (adversary.go), which also reports the
// outcome and lets byzantine nodes contest the election.
func (n *NanoNet) InjectDoubleSpend(attacker, victimA, victimB int, amount uint64, at time.Duration) {
	n.InjectContestedDoubleSpend(DoubleSpendPlan{
		Attacker: attacker, VictimA: victimA, VictimB: victimB,
		Amount: amount, At: at,
		Entry: len(n.nodes) - 1, // historical entry point: the far side
	})
}

// SpamThrottle returns the maximum block-generation rate an attacker with
// the given hash rate can sustain at the configured work difficulty —
// §III-B's anti-spam bound (hashRate / 2^bits).
func (n *NanoNet) SpamThrottle(hashRate float64) float64 {
	if n.cfg.WorkBits <= 0 {
		return math.Inf(1)
	}
	return hashRate / hashx.ExpectedAttempts(n.cfg.WorkBits)
}

// Run drives the simulation up to the cutoff and returns the metrics.
// Work queued behind per-node processing budgets that has not executed by
// the cutoff stays unexecuted — that backlog is precisely the §VI-B
// hardware limit the metrics report.
func (n *NanoNet) Run(duration time.Duration) NanoMetrics {
	n.rt.sim.RunUntil(duration)
	return n.collect(duration)
}

// RunWithTransfers submits the stream then runs.
func (n *NanoNet) RunWithTransfers(duration time.Duration, transfers []workload.TimedPayment) NanoMetrics {
	for _, p := range transfers {
		n.SubmitTransfer(p)
	}
	return n.Run(duration)
}

func (n *NanoNet) collect(duration time.Duration) NanoMetrics {
	obs := n.nodes[0]
	m := &n.metrics
	m.Duration = duration
	m.UnsettledAtEnd = obs.lat.PendingCount()
	if duration > 0 {
		m.TPS = float64(m.SettledAtObserver) / duration.Seconds()
		// Nano's native throughput counts blocks (sends + receives).
		setupBlocks := 1 + 2*(n.cfg.Accounts-1)
		m.BPS = float64(obs.lat.BlockCount()-setupBlocks) / duration.Seconds()
	}
	st := obs.tracker.Stats()
	m.CementedBlocks = st.Cemented
	m.LedgerBytes = obs.lat.LedgerBytes()
	m.HeadBytes = obs.lat.HeadBytes()
	ns := n.rt.net.Stats()
	m.MessagesSent = ns.MessagesSent
	m.BytesSent = ns.BytesSent
	return *m
}

// The paradigm-seam registration (paradigm.go): Nano's block-lattice is
// the paper's DAG side.
func init() {
	registerParadigm(ParadigmSpec{
		Name: "nano", Family: "dag", Order: 2,
		Build: func(np NetParams, o BuildOptions) (ParadigmNet, error) {
			net, err := NewNano(NanoConfig{
				Net: np, Accounts: o.Accounts,
				BacklogCap: o.BacklogCap, BacklogTTL: o.BacklogTTL,
			})
			if err != nil {
				return nil, err
			}
			return nanoParadigm{net}, nil
		},
	})
}
