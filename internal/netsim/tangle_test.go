package netsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

// tangleTestNet builds a small tangle network with a deterministic
// payment stream already scheduled.
func tangleTestNet(t *testing.T, seed int64) (*TangleNet, []workload.TimedPayment) {
	t.Helper()
	net, err := NewTangle(TangleConfig{
		Net: NetParams{
			Nodes: 8, PeerDegree: 3, Seed: seed,
			MinLatency: 20 * time.Millisecond, MaxLatency: 200 * time.Millisecond,
		},
		Accounts: 16, ConfirmWeight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	load := workload.Payments(rand.New(rand.NewSource(seed+100)), workload.Config{
		Accounts: 16, Rate: 20, Duration: 20 * time.Second,
		MinAmount: 1, MaxAmount: 10,
	})
	return net, load
}

func TestTangleGossipConvergesAndConfirms(t *testing.T) {
	net, load := tangleTestNet(t, 1)
	m := net.RunWithTransfers(30*time.Second, load)
	if m.VerticesIssued == 0 {
		t.Fatal("no vertices issued")
	}
	if m.ConfirmedAtObserver == 0 {
		t.Fatal("nothing confirmed at the observer")
	}
	// Every replica converges to the same DAG once gossip settles.
	want := net.nodes[0].tg.VertexCount()
	for i, node := range net.nodes {
		if got := node.tg.VertexCount(); got != want {
			t.Fatalf("node %d holds %d vertices, observer holds %d", i, got, want)
		}
	}
	if m.LedgerBytes == 0 || m.MessagesSent == 0 {
		t.Fatal("metrics not collected")
	}
	if m.ConfirmLatency.N() == 0 {
		t.Fatal("no confirm latencies recorded")
	}
}

// tangleFingerprint is the comparable digest of one run: every scalar a
// behavioral change could perturb, plus the exact event count.
type tangleFingerprint struct {
	Issued, Confirmed, Pending, Tips int
	Messages                         int
	Bytes                            int64
	LatN                             int
	LatP50                           float64
	Events                           uint64
}

func fingerprintOf(net *TangleNet, m TangleMetrics) tangleFingerprint {
	return tangleFingerprint{
		Issued: m.VerticesIssued, Confirmed: m.ConfirmedAtObserver,
		Pending: m.PendingAtEnd, Tips: m.TipsAtEnd,
		Messages: m.MessagesSent, Bytes: m.BytesSent,
		LatN: m.ConfirmLatency.N(), LatP50: m.ConfirmLatency.Quantile(0.5),
		Events: net.Sim().EventsRun(),
	}
}

// tangleRunFingerprint runs a fresh seeded network through prep.
func tangleRunFingerprint(t *testing.T, prep func(*TangleNet)) tangleFingerprint {
	t.Helper()
	net, load := tangleTestNet(t, 3)
	if prep != nil {
		prep(net)
	}
	m := net.RunWithTransfers(30*time.Second, load)
	return fingerprintOf(net, m)
}

func TestTangleDeterminism(t *testing.T) {
	f1 := tangleRunFingerprint(t, nil)
	f2 := tangleRunFingerprint(t, nil)
	if f1 != f2 {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", f1, f2)
	}
}

// The parasite hook's existence must cost honest runs nothing: with the
// behavior installed on a node whose accounts never issue a payment,
// its hooks never engage and the run is byte-identical to one with no
// behavior installed at all — same metrics, same event count.
func TestTangleHonestRunsByteIdenticalUnderIdleParasite(t *testing.T) {
	// Accounts map to nodes by account % nodes; route node 5's accounts
	// out of the load so the installed parasite stays idle.
	run := func(install bool) tangleFingerprint {
		net, load := tangleTestNet(t, 3)
		if install {
			net.InstallParasiteChain(5, 4)
		}
		var filtered []workload.TimedPayment
		for _, p := range load {
			if p.From%8 != 5 {
				filtered = append(filtered, p)
			}
		}
		m := net.RunWithTransfers(30*time.Second, filtered)
		return fingerprintOf(net, m)
	}
	clean := run(false)
	dirty := run(true)
	if clean != dirty {
		t.Fatalf("honest run perturbed by an idle parasite install:\n%+v\n%+v", clean, dirty)
	}
}

func TestParasiteChainWithholdsAndReleases(t *testing.T) {
	net, load := tangleTestNet(t, 5)
	b := net.InstallParasiteChain(5, 6)
	m := net.RunWithTransfers(40*time.Second, load)
	if !b.Released() {
		t.Fatalf("parasite never released (withheld %d)", b.Withheld())
	}
	if st := net.Runtime().Stats(); st.BlocksWithheld < 6 {
		t.Fatalf("BlocksWithheld = %d, want >= 6", st.BlocksWithheld)
	}
	// The released sub-tangle floods and self-certifies under pure
	// cumulative weight: attacker-issued vertices reach confirmation.
	if got := net.ConfirmedIssuedBy(5); got == 0 {
		t.Fatal("no parasite vertex confirmed after release")
	}
	if m.ConfirmedAtObserver == 0 {
		t.Fatal("honest traffic stopped confirming")
	}
}

// A parasite run must differ from the honest run — the seam is live.
func TestParasiteChainPerturbsOutcome(t *testing.T) {
	clean := tangleRunFingerprint(t, nil)
	dirty := tangleRunFingerprint(t, func(n *TangleNet) {
		n.InstallParasiteChain(5, 6)
	})
	if clean == dirty {
		t.Fatal("parasite chain had no observable effect")
	}
}

func TestTangleColdStart(t *testing.T) {
	const cold = 7
	net, err := NewTangle(TangleConfig{
		Net: NetParams{
			Nodes: 8, PeerDegree: 3, Seed: 9,
			MinLatency: 20 * time.Millisecond, MaxLatency: 200 * time.Millisecond,
		},
		Accounts: 16, ConfirmWeight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	load := workload.Payments(rand.New(rand.NewSource(909)), workload.Config{
		Accounts: 16, Rate: 10, Duration: 20 * time.Second,
		MinAmount: 1, MaxAmount: 10,
	})
	// Keep the cold node's accounts quiet: a detached owner would mint
	// vertices the network never sees.
	var filtered []workload.TimedPayment
	for _, p := range load {
		if p.From%8 != cold {
			filtered = append(filtered, p)
		}
	}
	net.ScheduleColdStart(cold, 0, 25*time.Second, 16)
	net.RunWithTransfers(40*time.Second, filtered)
	took, ok := net.ColdSyncDone(cold)
	if !ok {
		t.Fatal("cold sync never finished")
	}
	if took <= 0 {
		t.Fatalf("cold sync took %v", took)
	}
	if got, want := net.nodes[cold].tg.VertexCount(), net.Observer().VertexCount(); got < want {
		t.Fatalf("cold node holds %d vertices, observer %d", got, want)
	}
	if st := net.SyncStats(); st.RangePulls == 0 || st.BlocksServed == 0 {
		t.Fatalf("sync stats empty: %+v", st)
	}
}
