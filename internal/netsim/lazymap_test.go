package netsim

// Measured evidence for the lazy-map layout decision (PERFORMANCE.md):
// the lattice node's per-node maps fall into hot columns (already dense
// arrays or pooled bit matrices elsewhere in the struct) and cold maps
// that stay nil unless a node actually hits their path. Converting the
// cold ones to dense columns would charge every node for state only
// fork participants and representatives carry. These tests pin the
// coldness claim: after a loaded honest run, the fork-election maps are
// nil on every node and the vote maps are nil on every non-rep node —
// so the lazy layout's worst case is the measured common case.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestLatticeColdMapsStayNilOnHonestRuns(t *testing.T) {
	net, err := NewNano(NanoConfig{
		Net: NetParams{
			Nodes: 12, PeerDegree: 3, Seed: 31,
			MinLatency: 10 * time.Millisecond, MaxLatency: 80 * time.Millisecond,
		},
		Accounts: 32, Reps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	load := workload.Payments(rand.New(rand.NewSource(37)), workload.Config{
		Accounts: 32, Rate: 40, Duration: 20 * time.Second,
		MinAmount: 1, MaxAmount: 10,
	})
	m := net.RunWithTransfers(30*time.Second, load)
	if m.SettledAtObserver == 0 {
		t.Fatal("run settled nothing; the coldness measurement is vacuous")
	}

	reps, votersAllocated := 0, 0
	for i, node := range net.nodes {
		// Fork-election state must never allocate without a fork: these
		// maps are only written by ResolveFork paths and vote races.
		if node.forkRoots != nil || node.forkPrev != nil {
			t.Fatalf("node %d allocated fork maps on an honest run", i)
		}
		if node.resolvedForks != nil || node.switches != nil {
			t.Fatalf("node %d allocated fork-resolution maps on an honest run", i)
		}
		// Vote state is confined to nodes hosting representatives.
		if len(node.repAccounts) > 0 {
			reps++
			if node.myVote != nil {
				votersAllocated++
			}
			continue
		}
		if node.myVote != nil || node.mySeq != nil {
			t.Fatalf("non-rep node %d allocated vote maps", i)
		}
	}
	if reps == 0 {
		t.Fatal("no node hosts a representative; the vote-map measurement is vacuous")
	}
	// Contested elections are the only plain-vote trigger in this build,
	// so even rep nodes may stay nil — the point is the upper bound.
	if votersAllocated > reps {
		t.Fatalf("vote maps on %d nodes, only %d host reps", votersAllocated, reps)
	}
}

// The adversarial counterpart: a contested double spend must light up
// exactly the fork paths the honest test proves cold — the lazy maps
// allocate where (and only where) the fork actually lands.
func TestLatticeForkMapsAllocateOnlyUnderForks(t *testing.T) {
	net, err := NewNano(NanoConfig{
		Net: NetParams{
			Nodes: 8, PeerDegree: 3, Seed: 41,
			MinLatency: 10 * time.Millisecond, MaxLatency: 60 * time.Millisecond,
		},
		Accounts: 16, Reps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.InjectContestedDoubleSpend(DoubleSpendPlan{
		At: 2 * time.Second, Attacker: 1, VictimA: 2, VictimB: 3, Amount: 50,
	})
	net.Run(20 * time.Second)
	allocated := 0
	for _, node := range net.nodes {
		if node.forkRoots != nil {
			allocated++
		}
	}
	if allocated == 0 {
		t.Fatal("double spend resolved without any node touching fork maps")
	}
}
