package netsim

import (
	"fmt"
	"time"

	"repro/internal/account"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/pos"
	"repro/internal/pow"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Consensus selects the Ethereum network's block production mode.
type Consensus int

const (
	// PoW mines blocks with the Nakamoto lottery (§III-A1).
	PoW Consensus = iota + 1
	// PoS produces a block every slot from a stake-weighted proposer and
	// runs Casper-FFG finality votes at epoch boundaries (§III-A2,
	// §IV-A). Per the paper, "the transition to PoS should decrease
	// Ethereum's block generation time to 4 seconds or lower".
	PoS
)

// String returns the consensus name.
func (c Consensus) String() string {
	switch c {
	case PoW:
		return "pow"
	case PoS:
		return "pos"
	default:
		return "unknown"
	}
}

// EthereumConfig parameterizes an Ethereum-like network.
type EthereumConfig struct {
	Net       NetParams
	Ledger    account.Params
	Consensus Consensus
	// HashRates apply in PoW mode (like BitcoinConfig).
	HashRates []float64
	// BlockInterval is the PoW target (default 15 s) or the PoS slot
	// length (default 4 s).
	BlockInterval time.Duration
	// Stakes apply in PoS mode: per-node validator deposits. Empty
	// defaults to equal stake on every node.
	Stakes []uint64
	// EpochLength is the number of slots per FFG epoch (PoS mode).
	EpochLength uint64
	// Accounts and InitialBalance shape the funded user population.
	Accounts       int
	InitialBalance uint64
	// BacklogCap bounds each node's orphan pool; oldest orphans are
	// evicted FIFO (and re-pulled when the sync manager is armed).
	// <= 0 keeps the chain package default.
	BacklogCap int
	// BacklogTTL evicts parked orphans by age (simulation time) rather
	// than count: any orphan older than the TTL is dropped on the next
	// block arrival, even while the pool is under BacklogCap. <= 0
	// disables age-based eviction.
	BacklogTTL time.Duration
}

func (c EthereumConfig) withDefaults() EthereumConfig {
	c.Net = c.Net.withDefaults()
	if c.Consensus == 0 {
		c.Consensus = PoW
	}
	if c.BlockInterval <= 0 {
		if c.Consensus == PoS {
			c.BlockInterval = 4 * time.Second
		} else {
			c.BlockInterval = 15 * time.Second
		}
	}
	if c.EpochLength == 0 {
		c.EpochLength = 8
	}
	if c.Accounts <= 0 {
		c.Accounts = 64
	}
	if c.InitialBalance == 0 {
		c.InitialBalance = 1 << 40
	}
	if c.Ledger.InitialGasLimit == 0 {
		c.Ledger = account.DefaultParams()
	}
	if len(c.HashRates) == 0 {
		c.HashRates = make([]float64, c.Net.Nodes)
		for i := range c.HashRates {
			c.HashRates[i] = 1
		}
	}
	if len(c.Stakes) == 0 {
		c.Stakes = make([]uint64, c.Net.Nodes)
		for i := range c.Stakes {
			c.Stakes[i] = 100
		}
	}
	return c
}

// FinalityMetrics reports the FFG gadget's progress (PoS mode).
type FinalityMetrics struct {
	JustifiedCheckpoints int
	FinalizedCheckpoints int
	// FinalityLag is the distribution of block-creation→finalization
	// delays in seconds.
	LastFinalizedEpoch uint64
	MeanFinalityLag    time.Duration
}

// EthereumNet is a running Ethereum-like network simulation. Gossip,
// production and measurement plumbing live in the shared chainRuntime;
// this type owns the account ledgers, the consensus mode (PoW lottery or
// PoS slots + FFG) and the payment-construction path.
type EthereumNet struct {
	cfg     EthereumConfig
	chain   *chainRuntime
	ledgers []*account.Ledger
	ring    *keys.Ring
	lottery *pow.Lottery // PoW mode

	// PoS state.
	registry   *pos.Registry
	ffg        *pos.FFG
	validators []*keys.KeyPair
	lastJust   pos.Checkpoint
	finality   FinalityMetrics
	lagSamples []time.Duration
	cpCreated  map[hashx.Hash]time.Duration

	difficulty float64
	nonces     map[int]uint64
}

// NewEthereum builds the network.
func NewEthereum(cfg EthereumConfig) (*EthereumNet, error) {
	cfg = cfg.withDefaults()
	s, net := buildNetwork(cfg.Net)

	ring := keys.NewRing("eth-net", cfg.Accounts)
	alloc := make(map[keys.Address]uint64, cfg.Accounts)
	for i := 0; i < cfg.Accounts; i++ {
		alloc[ring.Addr(i)] = cfg.InitialBalance
	}

	e := &EthereumNet{
		cfg:       cfg,
		chain:     newChainRuntime(s, net, cfg.Net.Nodes, func(txs, _ int) int { return txs }),
		ring:      ring,
		nonces:    make(map[int]uint64),
		cpCreated: make(map[hashx.Hash]time.Duration),
	}
	e.chain.metrics.Propagation.SetBudget(cfg.Net.SampleBudget)

	for i := 0; i < cfg.Net.Nodes; i++ {
		ledger, err := account.NewLedger(alloc, cfg.Ledger)
		if err != nil {
			return nil, fmt.Errorf("netsim: node %d: %w", i, err)
		}
		e.ledgers = append(e.ledgers, ledger)
		e.chain.addNode(ledger)
		if cfg.BacklogCap > 0 {
			ledger.Store().SetOrphanLimit(cfg.BacklogCap)
		}
		if cfg.BacklogTTL > 0 {
			ledger.Store().SetClock(s.Now)
			ledger.Store().SetOrphanTTL(cfg.BacklogTTL)
		}
	}
	net.SetPeers(sim.RandomPeers(s.Rand(), cfg.Net.Nodes, cfg.Net.PeerDegree))

	switch cfg.Consensus {
	case PoW:
		miners := make([]pow.Miner, 0, len(cfg.HashRates))
		for i, hr := range cfg.HashRates {
			if hr > 0 {
				miners = append(miners, pow.Miner{ID: i, HashRate: hr})
			}
		}
		lottery, err := pow.NewLottery(miners)
		if err != nil {
			return nil, fmt.Errorf("netsim: %w", err)
		}
		e.lottery = lottery
		e.difficulty = lottery.DifficultyForInterval(cfg.BlockInterval)
	case PoS:
		e.registry = pos.NewRegistry()
		for i, stake := range cfg.Stakes {
			if stake == 0 {
				continue
			}
			kp := keys.DeterministicN("eth-validator", i)
			if err := e.registry.Deposit(kp.Pub, stake); err != nil {
				return nil, fmt.Errorf("netsim: deposit: %w", err)
			}
			e.validators = append(e.validators, kp)
		}
		genesisCp := pos.Checkpoint{Hash: e.ledgers[0].Genesis().Hash(), Epoch: 0}
		e.ffg = pos.NewFFG(e.registry, genesisCp)
		e.lastJust = genesisCp
	default:
		return nil, fmt.Errorf("netsim: unknown consensus %d", cfg.Consensus)
	}
	return e, nil
}

// Observer returns the node-0 ledger.
func (e *EthereumNet) Observer() *account.Ledger { return e.ledgers[0] }

// Sim exposes the simulator (for scheduling custom events in tests).
func (e *EthereumNet) Sim() *sim.Simulator { return e.chain.rt.sim }

// Net exposes the underlying network (partitions, stats, loss hooks).
func (e *EthereumNet) Net() *sim.Network { return e.chain.rt.net }

// Runtime exposes the node runtime, the seam custom Behaviors install
// through.
func (e *EthereumNet) Runtime() *NodeRuntime { return e.chain.rt }

// Ring returns the funded identities.
func (e *EthereumNet) Ring() *keys.Ring { return e.ring }

// Registry returns the PoS validator registry (nil in PoW mode).
func (e *EthereumNet) Registry() *pos.Registry { return e.registry }

// FFG returns the finality gadget (nil in PoW mode).
func (e *EthereumNet) FFG() *pos.FFG { return e.ffg }

// ScheduleColdStart detaches node at detachAt and rejoins it at
// rejoinAt, range-pulling the main chain from a live peer in windows of
// batch blocks (E20's bootstrap scenario). Arms sync recovery mode.
func (e *EthereumNet) ScheduleColdStart(node int, detachAt, rejoinAt time.Duration, batch int) {
	e.chain.scheduleColdStart(node, detachAt, rejoinAt, batch)
}

// SyncStats reports the sync manager's pull/serve/eviction counters.
func (e *EthereumNet) SyncStats() SyncStats { return e.chain.sync.stats }

// ColdSyncDone reports whether node's cold sync finished, and how long
// it took from rejoin to the final range window.
func (e *EthereumNet) ColdSyncDone(node int) (time.Duration, bool) {
	return e.chain.sync.coldSyncDone(sim.NodeID(node))
}

// produceAt lets a node extend its view and flood the block. An honest
// producer racing an installed selfish miner follows the γ rule first
// (see chainRuntime.raceProduce; a no-op without an adversary).
func (e *EthereumNet) produceAt(nodeIdx int, proposer keys.Address) {
	difficulty := e.difficulty
	if e.cfg.Consensus != PoW {
		difficulty = 1 // PoS blocks carry uniform weight
	}
	e.chain.produceWithRace(nodeIdx, proposer, difficulty)
}

// scheduleMining arms PoW block discovery.
func (e *EthereumNet) scheduleMining() {
	s := e.chain.rt.sim
	interval := e.lottery.SampleInterval(s.Rand(), e.difficulty)
	s.After(interval, func() {
		winner := e.lottery.SampleWinner(s.Rand())
		miner := keys.DeterministicN("eth-miner", winner).Address()
		e.produceAt(winner, miner)
		e.scheduleMining()
	})
}

// schedulePoS arms the slot clock: one proposer per slot, FFG votes every
// epoch boundary.
func (e *EthereumNet) schedulePoS(slot uint64) {
	e.chain.rt.sim.After(e.cfg.BlockInterval, func() {
		seed := e.ffg.LastFinalized().Hash
		proposerAddr, err := e.registry.Proposer(slot, seed)
		if err == nil {
			idx := e.validatorNode(proposerAddr)
			e.produceAt(idx, proposerAddr)
		}
		if slot > 0 && slot%e.cfg.EpochLength == 0 {
			e.runFFGRound(slot)
		}
		e.schedulePoS(slot + 1)
	})
}

// validatorNode maps a validator address to its node index.
func (e *EthereumNet) validatorNode(addr keys.Address) int {
	for i, kp := range e.validators {
		if kp.Address() == addr {
			return i % len(e.ledgers)
		}
	}
	return 0
}

// runFFGRound collects votes from every validator for the checkpoint at
// the current epoch boundary, using the observer's chain.
func (e *EthereumNet) runFFGRound(slot uint64) {
	epoch := slot / e.cfg.EpochLength
	obs := e.ledgers[0]
	cpHeight := slot // one block per slot in the honest schedule
	if cpHeight > obs.Height() {
		cpHeight = obs.Height()
	}
	h, ok := obs.Store().HashAtHeight(cpHeight)
	if !ok {
		return
	}
	target := pos.Checkpoint{Hash: h, Epoch: epoch}
	if _, seen := e.cpCreated[h]; !seen {
		if blk, ok := obs.Store().Get(h); ok {
			e.cpCreated[h] = blk.Header.Time
		} else {
			e.cpCreated[h] = e.chain.rt.sim.Now()
		}
	}
	source := e.lastJust
	for _, kp := range e.validators {
		vote := pos.NewVote(kp, source, target)
		justified, finalized, err := e.ffg.ProcessVote(vote)
		if err != nil {
			continue
		}
		if justified {
			e.finality.JustifiedCheckpoints++
			e.lastJust = target
		}
		if finalized {
			e.finality.FinalizedCheckpoints++
			e.finality.LastFinalizedEpoch = source.Epoch
			if created, ok := e.cpCreated[source.Hash]; ok {
				e.lagSamples = append(e.lagSamples, e.chain.rt.sim.Now()-created)
			}
		}
	}
}

// SubmitPayment schedules a plain transfer; nonces are issued centrally
// per sender so the stream stays executable.
func (e *EthereumNet) SubmitPayment(p workload.TimedPayment, gasPrice uint64) {
	e.chain.scheduleSubmit(p.At, func() bool {
		nonce := e.nonces[p.From]
		e.nonces[p.From]++
		to := e.ring.Addr(p.To)
		tx := &account.Tx{
			Nonce:    nonce,
			To:       &to,
			Value:    p.Amount,
			GasLimit: account.GasTxBase,
			GasPrice: gasPrice,
		}
		tx.Sign(e.ring.Pair(p.From))
		accepted := false
		for _, l := range e.ledgers {
			if err := l.SubmitTx(tx); err == nil {
				accepted = true
			}
		}
		return accepted
	})
}

// Run drives the simulation and returns chain metrics.
func (e *EthereumNet) Run(duration time.Duration) ChainMetrics {
	switch e.cfg.Consensus {
	case PoW:
		e.scheduleMining()
	case PoS:
		e.schedulePoS(1)
	}
	e.chain.rt.sim.RunUntil(duration)
	return e.chain.collect(duration)
}

// RunWithPayments submits the stream then runs.
func (e *EthereumNet) RunWithPayments(duration time.Duration, payments []workload.TimedPayment, gasPrice uint64) ChainMetrics {
	for _, p := range payments {
		e.SubmitPayment(p, gasPrice)
	}
	return e.Run(duration)
}

// Finality returns the FFG metrics of a PoS run.
func (e *EthereumNet) Finality() FinalityMetrics {
	if len(e.lagSamples) > 0 {
		var sum time.Duration
		for _, l := range e.lagSamples {
			sum += l
		}
		e.finality.MeanFinalityLag = sum / time.Duration(len(e.lagSamples))
	}
	return e.finality
}

// MinerShare reports how many observer main-chain blocks node idx
// produced, against all attributed main-chain blocks (E17).
func (e *EthereumNet) MinerShare(idx int) (mined, total int) { return e.chain.minerShare(idx) }

// EclipseReport compares a victim node's chain against the network
// consensus after a run (E16).
func (e *EthereumNet) EclipseReport(victim int) EclipseReport { return e.chain.eclipseReport(victim) }

// The paradigm-seam registration (paradigm.go): Ethereum is the paper's
// second blockchain, PoW with its native 15-second interval.
func init() {
	registerParadigm(ParadigmSpec{
		Name: "ethereum", Family: "blockchain", Order: 1,
		Build: func(np NetParams, o BuildOptions) (ParadigmNet, error) {
			net, err := NewEthereum(EthereumConfig{
				Net: np, Consensus: PoW,
				Accounts: o.Accounts, BacklogCap: o.BacklogCap, BacklogTTL: o.BacklogTTL,
			})
			if err != nil {
				return nil, err
			}
			return ethereumParadigm{net}, nil
		},
	})
}
