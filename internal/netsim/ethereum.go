package netsim

import (
	"fmt"
	"time"

	"repro/internal/account"
	"repro/internal/chain"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/pos"
	"repro/internal/pow"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Consensus selects the Ethereum network's block production mode.
type Consensus int

const (
	// PoW mines blocks with the Nakamoto lottery (§III-A1).
	PoW Consensus = iota + 1
	// PoS produces a block every slot from a stake-weighted proposer and
	// runs Casper-FFG finality votes at epoch boundaries (§III-A2,
	// §IV-A). Per the paper, "the transition to PoS should decrease
	// Ethereum's block generation time to 4 seconds or lower".
	PoS
)

// String returns the consensus name.
func (c Consensus) String() string {
	switch c {
	case PoW:
		return "pow"
	case PoS:
		return "pos"
	default:
		return "unknown"
	}
}

// EthereumConfig parameterizes an Ethereum-like network.
type EthereumConfig struct {
	Net       NetParams
	Ledger    account.Params
	Consensus Consensus
	// HashRates apply in PoW mode (like BitcoinConfig).
	HashRates []float64
	// BlockInterval is the PoW target (default 15 s) or the PoS slot
	// length (default 4 s).
	BlockInterval time.Duration
	// Stakes apply in PoS mode: per-node validator deposits. Empty
	// defaults to equal stake on every node.
	Stakes []uint64
	// EpochLength is the number of slots per FFG epoch (PoS mode).
	EpochLength uint64
	// Accounts and InitialBalance shape the funded user population.
	Accounts       int
	InitialBalance uint64
}

func (c EthereumConfig) withDefaults() EthereumConfig {
	c.Net = c.Net.withDefaults()
	if c.Consensus == 0 {
		c.Consensus = PoW
	}
	if c.BlockInterval <= 0 {
		if c.Consensus == PoS {
			c.BlockInterval = 4 * time.Second
		} else {
			c.BlockInterval = 15 * time.Second
		}
	}
	if c.EpochLength == 0 {
		c.EpochLength = 8
	}
	if c.Accounts <= 0 {
		c.Accounts = 64
	}
	if c.InitialBalance == 0 {
		c.InitialBalance = 1 << 40
	}
	if c.Ledger.InitialGasLimit == 0 {
		c.Ledger = account.DefaultParams()
	}
	if len(c.HashRates) == 0 {
		c.HashRates = make([]float64, c.Net.Nodes)
		for i := range c.HashRates {
			c.HashRates[i] = 1
		}
	}
	if len(c.Stakes) == 0 {
		c.Stakes = make([]uint64, c.Net.Nodes)
		for i := range c.Stakes {
			c.Stakes[i] = 100
		}
	}
	return c
}

// ethNode is one full node.
type ethNode struct {
	id     sim.NodeID
	ledger *account.Ledger
	seen   map[hashx.Hash]bool
}

// FinalityMetrics reports the FFG gadget's progress (PoS mode).
type FinalityMetrics struct {
	JustifiedCheckpoints int
	FinalizedCheckpoints int
	// FinalityLag is the distribution of block-creation→finalization
	// delays in seconds.
	LastFinalizedEpoch uint64
	MeanFinalityLag    time.Duration
}

// EthereumNet is a running Ethereum-like network simulation.
type EthereumNet struct {
	cfg     EthereumConfig
	sim     *sim.Simulator
	net     *sim.Network
	nodes   []*ethNode
	ring    *keys.Ring
	lottery *pow.Lottery // PoW mode

	// PoS state.
	registry   *pos.Registry
	ffg        *pos.FFG
	validators []*keys.KeyPair
	lastJust   pos.Checkpoint
	finality   FinalityMetrics
	lagSamples []time.Duration
	cpCreated  map[hashx.Hash]time.Duration

	difficulty float64
	nonces     map[int]uint64
	created    map[hashx.Hash]time.Duration
	reach      map[hashx.Hash]int
	metrics    ChainMetrics
	blockTimes []time.Duration
}

// NewEthereum builds the network.
func NewEthereum(cfg EthereumConfig) (*EthereumNet, error) {
	cfg = cfg.withDefaults()
	s, net := buildNetwork(cfg.Net)

	ring := keys.NewRing("eth-net", cfg.Accounts)
	alloc := make(map[keys.Address]uint64, cfg.Accounts)
	for i := 0; i < cfg.Accounts; i++ {
		alloc[ring.Addr(i)] = cfg.InitialBalance
	}

	e := &EthereumNet{
		cfg:       cfg,
		sim:       s,
		net:       net,
		ring:      ring,
		nonces:    make(map[int]uint64),
		created:   make(map[hashx.Hash]time.Duration),
		reach:     make(map[hashx.Hash]int),
		cpCreated: make(map[hashx.Hash]time.Duration),
	}

	for i := 0; i < cfg.Net.Nodes; i++ {
		ledger, err := account.NewLedger(alloc, cfg.Ledger)
		if err != nil {
			return nil, fmt.Errorf("netsim: node %d: %w", i, err)
		}
		node := &ethNode{ledger: ledger, seen: make(map[hashx.Hash]bool)}
		node.id = net.AddNode(nil)
		net.SetHandler(node.id, e.handlerFor(node))
		e.nodes = append(e.nodes, node)
	}
	net.SetPeers(sim.RandomPeers(s.Rand(), cfg.Net.Nodes, cfg.Net.PeerDegree))

	switch cfg.Consensus {
	case PoW:
		miners := make([]pow.Miner, 0, len(cfg.HashRates))
		for i, hr := range cfg.HashRates {
			if hr > 0 {
				miners = append(miners, pow.Miner{ID: i, HashRate: hr})
			}
		}
		lottery, err := pow.NewLottery(miners)
		if err != nil {
			return nil, fmt.Errorf("netsim: %w", err)
		}
		e.lottery = lottery
		e.difficulty = lottery.DifficultyForInterval(cfg.BlockInterval)
	case PoS:
		e.registry = pos.NewRegistry()
		for i, stake := range cfg.Stakes {
			if stake == 0 {
				continue
			}
			kp := keys.DeterministicN("eth-validator", i)
			if err := e.registry.Deposit(kp.Pub, stake); err != nil {
				return nil, fmt.Errorf("netsim: deposit: %w", err)
			}
			e.validators = append(e.validators, kp)
		}
		genesisCp := pos.Checkpoint{Hash: e.nodes[0].ledger.Genesis().Hash(), Epoch: 0}
		e.ffg = pos.NewFFG(e.registry, genesisCp)
		e.lastJust = genesisCp
	default:
		return nil, fmt.Errorf("netsim: unknown consensus %d", cfg.Consensus)
	}
	return e, nil
}

// Observer returns the node-0 ledger.
func (e *EthereumNet) Observer() *account.Ledger { return e.nodes[0].ledger }

// Sim exposes the simulator (for scheduling custom events in tests).
func (e *EthereumNet) Sim() *sim.Simulator { return e.sim }

// Ring returns the funded identities.
func (e *EthereumNet) Ring() *keys.Ring { return e.ring }

// Registry returns the PoS validator registry (nil in PoW mode).
func (e *EthereumNet) Registry() *pos.Registry { return e.registry }

// FFG returns the finality gadget (nil in PoW mode).
func (e *EthereumNet) FFG() *pos.FFG { return e.ffg }

func (e *EthereumNet) handlerFor(n *ethNode) sim.Handler {
	return func(from sim.NodeID, payload any, size int) {
		blk, ok := payload.(*chain.Block)
		if !ok {
			return
		}
		h := blk.Hash()
		if n.seen[h] {
			return
		}
		n.seen[h] = true
		e.reach[h]++
		if e.reach[h] == len(e.nodes) {
			e.metrics.Propagation.AddDuration(e.sim.Now() - e.created[h])
		}
		_, _ = n.ledger.ProcessBlock(blk)
		e.net.SendToPeers(n.id, blk, blk.Size())
	}
}

// produceAt lets a node extend its view and flood the block.
func (e *EthereumNet) produceAt(nodeIdx int, proposer keys.Address) {
	node := e.nodes[nodeIdx]
	blk := node.ledger.BuildBlock(proposer, e.sim.Now())
	if e.cfg.Consensus == PoW {
		blk.Header.Difficulty = e.difficulty
	} else {
		blk.Header.Difficulty = 1 // PoS blocks carry uniform weight
	}
	h := blk.Hash()
	e.created[h] = e.sim.Now()
	e.metrics.BlocksTotal++
	e.blockTimes = append(e.blockTimes, e.sim.Now())
	node.seen[h] = true
	e.reach[h] = 1
	_, _ = node.ledger.ProcessBlock(blk)
	e.net.SendToPeers(node.id, blk, blk.Size())
}

// scheduleMining arms PoW block discovery.
func (e *EthereumNet) scheduleMining() {
	interval := e.lottery.SampleInterval(e.sim.Rand(), e.difficulty)
	e.sim.After(interval, func() {
		winner := e.lottery.SampleWinner(e.sim.Rand())
		miner := keys.DeterministicN("eth-miner", winner).Address()
		e.produceAt(winner, miner)
		e.scheduleMining()
	})
}

// schedulePoS arms the slot clock: one proposer per slot, FFG votes every
// epoch boundary.
func (e *EthereumNet) schedulePoS(slot uint64) {
	e.sim.After(e.cfg.BlockInterval, func() {
		seed := e.ffg.LastFinalized().Hash
		proposerAddr, err := e.registry.Proposer(slot, seed)
		if err == nil {
			idx := e.validatorNode(proposerAddr)
			e.produceAt(idx, proposerAddr)
		}
		if slot > 0 && slot%e.cfg.EpochLength == 0 {
			e.runFFGRound(slot)
		}
		e.schedulePoS(slot + 1)
	})
}

// validatorNode maps a validator address to its node index.
func (e *EthereumNet) validatorNode(addr keys.Address) int {
	for i, kp := range e.validators {
		if kp.Address() == addr {
			return i % len(e.nodes)
		}
	}
	return 0
}

// runFFGRound collects votes from every validator for the checkpoint at
// the current epoch boundary, using the observer's chain.
func (e *EthereumNet) runFFGRound(slot uint64) {
	epoch := slot / e.cfg.EpochLength
	obs := e.nodes[0].ledger
	cpHeight := slot // one block per slot in the honest schedule
	if cpHeight > obs.Height() {
		cpHeight = obs.Height()
	}
	h, ok := obs.Store().HashAtHeight(cpHeight)
	if !ok {
		return
	}
	target := pos.Checkpoint{Hash: h, Epoch: epoch}
	if _, seen := e.cpCreated[h]; !seen {
		if blk, ok := obs.Store().Get(h); ok {
			e.cpCreated[h] = blk.Header.Time
		} else {
			e.cpCreated[h] = e.sim.Now()
		}
	}
	source := e.lastJust
	for _, kp := range e.validators {
		vote := pos.NewVote(kp, source, target)
		justified, finalized, err := e.ffg.ProcessVote(vote)
		if err != nil {
			continue
		}
		if justified {
			e.finality.JustifiedCheckpoints++
			e.lastJust = target
		}
		if finalized {
			e.finality.FinalizedCheckpoints++
			e.finality.LastFinalizedEpoch = source.Epoch
			if created, ok := e.cpCreated[source.Hash]; ok {
				e.lagSamples = append(e.lagSamples, e.sim.Now()-created)
			}
		}
	}
}

// SubmitPayment schedules a plain transfer; nonces are issued centrally
// per sender so the stream stays executable.
func (e *EthereumNet) SubmitPayment(p workload.TimedPayment, gasPrice uint64) {
	e.sim.At(p.At, func() {
		e.metrics.SubmittedTxs++
		nonce := e.nonces[p.From]
		e.nonces[p.From]++
		to := e.ring.Addr(p.To)
		tx := &account.Tx{
			Nonce:    nonce,
			To:       &to,
			Value:    p.Amount,
			GasLimit: account.GasTxBase,
			GasPrice: gasPrice,
		}
		tx.Sign(e.ring.Pair(p.From))
		accepted := false
		for _, n := range e.nodes {
			if err := n.ledger.SubmitTx(tx); err == nil {
				accepted = true
			}
		}
		if !accepted {
			e.metrics.RejectedTxs++
		}
	})
}

// Run drives the simulation and returns chain metrics.
func (e *EthereumNet) Run(duration time.Duration) ChainMetrics {
	switch e.cfg.Consensus {
	case PoW:
		e.scheduleMining()
	case PoS:
		e.schedulePoS(1)
	}
	e.sim.RunUntil(duration)
	return e.collect(duration)
}

// RunWithPayments submits the stream then runs.
func (e *EthereumNet) RunWithPayments(duration time.Duration, payments []workload.TimedPayment, gasPrice uint64) ChainMetrics {
	for _, p := range payments {
		e.SubmitPayment(p, gasPrice)
	}
	return e.Run(duration)
}

// Finality returns the FFG metrics of a PoS run.
func (e *EthereumNet) Finality() FinalityMetrics {
	if len(e.lagSamples) > 0 {
		var sum time.Duration
		for _, l := range e.lagSamples {
			sum += l
		}
		e.finality.MeanFinalityLag = sum / time.Duration(len(e.lagSamples))
	}
	return e.finality
}

func (e *EthereumNet) collect(duration time.Duration) ChainMetrics {
	obs := e.nodes[0].ledger
	st := obs.Store().Stats()
	m := &e.metrics
	m.Duration = duration
	m.BlocksOnMain = int(obs.Height())
	m.Orphaned = st.OrphanedTotal
	if m.BlocksTotal > 0 {
		m.OrphanRate = float64(m.Orphaned) / float64(m.BlocksTotal)
	}
	m.Reorgs = st.Reorgs
	m.MaxReorgDepth = st.MaxReorgDepth
	m.ConfirmedTxs = st.TxsOnMain
	if duration > 0 {
		m.TPS = float64(m.ConfirmedTxs) / duration.Seconds()
	}
	m.PendingAtEnd = obs.Pool().Len()
	m.LedgerBytes = obs.LedgerBytes()
	if len(e.blockTimes) > 1 {
		span := e.blockTimes[len(e.blockTimes)-1] - e.blockTimes[0]
		m.MeanBlockInterval = span / time.Duration(len(e.blockTimes)-1)
	}
	ns := e.net.Stats()
	m.MessagesSent = ns.MessagesSent
	m.BytesSent = ns.BytesSent
	return *m
}
