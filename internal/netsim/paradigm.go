// The paradigm seam: one registry all four ledger simulations plug
// into, so the cross-paradigm experiments (throughput, scaling law,
// cold start) iterate a list instead of hand-rolling each network's
// construction. A ParadigmSpec names the paradigm, builds its network
// from shared knobs, and the returned ParadigmNet exposes the common
// surface every comparison needs: the NodeRuntime/Behavior seam,
// settlement submission, the sync-manager cold-start machinery, the
// canonical history stream, and a summary metrics view. Each network
// file registers its own spec (see the init functions in bitcoin.go,
// ethereum.go, nano.go and tangle.go); the registry orders specs
// explicitly so iteration order never depends on file names or init
// sequencing.
package netsim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// BuildOptions carries the cross-paradigm construction knobs a
// comparison experiment sweeps; each Build maps them onto its network's
// native config and fills paradigm-specific settings with defaults.
type BuildOptions struct {
	// Accounts is the funded user population (<= 0 keeps the paradigm
	// default).
	Accounts int
	// BacklogCap and BacklogTTL bound the per-node backlog buffers,
	// exactly as the per-network configs define them.
	BacklogCap int
	BacklogTTL time.Duration
}

// ParadigmMetrics is the cross-paradigm summary of one run — the
// least-common-denominator view comparison tables read. Each network's
// native metrics struct (ChainMetrics, NanoMetrics, TangleMetrics)
// remains the full-resolution surface.
type ParadigmMetrics struct {
	Duration time.Duration
	// Throughput is settled operations per second in the paradigm's
	// native unit: confirmed transactions (chains), settled transfers
	// (lattice), confirmed vertices (tangle).
	Throughput float64
	// Confirmed counts those settled operations; Pending what the
	// observer still holds unsettled at the cutoff.
	Confirmed int
	Pending   int
	// FinalityP50 is the paradigm's native first-confirmation latency
	// estimate in seconds: mean block interval for the chains, the p50
	// of the observer's confirm-latency histogram for the vote- and
	// coverage-based ledgers.
	FinalityP50 float64
	// MessagesSent and BytesSent count network traffic; LedgerBytes is
	// the observer's modeled storage footprint (§V).
	MessagesSent int
	BytesSent    int64
	LedgerBytes  int
}

// ParadigmNet is the common surface a built network exposes to
// comparison experiments. All four networks satisfy it through thin
// adapters (the native Run methods return native metrics).
type ParadigmNet interface {
	// Sim, Net and Runtime expose the simulation substrate — Runtime is
	// the Behavior seam adversarial strategies install into.
	Sim() *sim.Simulator
	Net() *sim.Network
	Runtime() *NodeRuntime

	// Submit schedules one settlement operation.
	Submit(p workload.TimedPayment)
	// RunSpan drives the simulation to the cutoff and summarizes it.
	RunSpan(duration time.Duration) ParadigmMetrics

	// CanonicalLength is the observer's canonical-stream length: main
	// chain for the chains, account-ordered block stream for the
	// lattice, attachment-ordered vertex stream for the tangle.
	CanonicalLength() int

	// Cold-start machinery (E20), backed by the shared sync manager.
	ScheduleColdStart(node int, detachAt, rejoinAt time.Duration, batch int)
	ColdSyncDone(node int) (time.Duration, bool)
	SyncStats() SyncStats
}

// ParadigmSpec registers one ledger paradigm with the seam.
type ParadigmSpec struct {
	// Name is the registry key ("bitcoin", "ethereum", "nano",
	// "tangle") — the spelling dltbench's -paradigm knob validates.
	Name string
	// Family tags which side of the paper's comparison the paradigm
	// belongs to ("blockchain" or "dag").
	Family string
	// Order fixes the registry iteration order explicitly.
	Order int
	// Build constructs a network from the shared knobs.
	Build func(NetParams, BuildOptions) (ParadigmNet, error)
}

var paradigmRegistry []ParadigmSpec

// registerParadigm adds a spec; each network file calls it from init.
func registerParadigm(spec ParadigmSpec) {
	paradigmRegistry = append(paradigmRegistry, spec)
}

// Paradigms returns the registered specs in their fixed Order.
func Paradigms() []ParadigmSpec {
	out := make([]ParadigmSpec, len(paradigmRegistry))
	copy(out, paradigmRegistry)
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// ParadigmNames returns the registered names in registry order — the
// legal values for paradigm-selection knobs.
func ParadigmNames() []string {
	specs := Paradigms()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ParadigmByName finds a registered spec.
func ParadigmByName(name string) (ParadigmSpec, error) {
	for _, s := range Paradigms() {
		if s.Name == name {
			return s, nil
		}
	}
	return ParadigmSpec{}, fmt.Errorf("netsim: unknown paradigm %q (have %v)", name, ParadigmNames())
}

// ---- adapters -------------------------------------------------------

// bitcoinParadigm adapts BitcoinNet to the seam.
type bitcoinParadigm struct{ *BitcoinNet }

func (p bitcoinParadigm) Submit(tp workload.TimedPayment) { p.SubmitPayment(tp, 1) }

func (p bitcoinParadigm) RunSpan(d time.Duration) ParadigmMetrics {
	return chainSummary(p.Run(d))
}

func (p bitcoinParadigm) CanonicalLength() int {
	return len(p.Observer().Store().MainChain())
}

// ethereumParadigm adapts EthereumNet to the seam.
type ethereumParadigm struct{ *EthereumNet }

func (p ethereumParadigm) Submit(tp workload.TimedPayment) { p.SubmitPayment(tp, 1) }

func (p ethereumParadigm) RunSpan(d time.Duration) ParadigmMetrics {
	return chainSummary(p.Run(d))
}

func (p ethereumParadigm) CanonicalLength() int {
	return len(p.Observer().Store().MainChain())
}

// chainSummary maps ChainMetrics onto the common view.
func chainSummary(m ChainMetrics) ParadigmMetrics {
	return ParadigmMetrics{
		Duration:     m.Duration,
		Throughput:   m.TPS,
		Confirmed:    m.ConfirmedTxs,
		Pending:      m.PendingAtEnd,
		FinalityP50:  m.MeanBlockInterval.Seconds(),
		MessagesSent: m.MessagesSent, BytesSent: m.BytesSent,
		LedgerBytes: m.LedgerBytes,
	}
}

// nanoParadigm adapts NanoNet to the seam.
type nanoParadigm struct{ *NanoNet }

func (p nanoParadigm) Submit(tp workload.TimedPayment) { p.SubmitTransfer(tp) }

func (p nanoParadigm) RunSpan(d time.Duration) ParadigmMetrics {
	m := p.Run(d)
	return ParadigmMetrics{
		Duration:     m.Duration,
		Throughput:   m.TPS,
		Confirmed:    m.SettledAtObserver,
		Pending:      m.UnsettledAtEnd,
		FinalityP50:  m.ConfirmLatency.Quantile(0.5),
		MessagesSent: m.MessagesSent, BytesSent: m.BytesSent,
		LedgerBytes: m.LedgerBytes,
	}
}

func (p nanoParadigm) CanonicalLength() int { return p.Observer().BlockCount() }

// tangleParadigm adapts TangleNet to the seam.
type tangleParadigm struct{ *TangleNet }

func (p tangleParadigm) Submit(tp workload.TimedPayment) { p.SubmitTransfer(tp) }

func (p tangleParadigm) RunSpan(d time.Duration) ParadigmMetrics {
	m := p.Run(d)
	return ParadigmMetrics{
		Duration:     m.Duration,
		Throughput:   m.VPS,
		Confirmed:    m.ConfirmedAtObserver,
		Pending:      m.PendingAtEnd,
		FinalityP50:  m.ConfirmLatency.Quantile(0.5),
		MessagesSent: m.MessagesSent, BytesSent: m.BytesSent,
		LedgerBytes: m.LedgerBytes,
	}
}

func (p tangleParadigm) CanonicalLength() int { return p.Observer().VertexCount() }
