// The per-node sync manager: the pull side of catching up. Real ledger
// nodes run a sync daemon that notices the node is behind — after churn
// rejoin, a partition heal, or a cold start — and pulls the missing
// history from live peers, instead of hoping the push-side gossip
// happens to re-deliver it. This file centralizes that machinery for
// all three simulators on the NodeRuntime seam:
//
//   - Single-block pulls (Pull) replace nano.go's old
//     scheduleGapRepair/repairTick chain. The legacy cadence is kept
//     exactly — immediate first request, one retry every
//     gapRepairDelay, maxGapRepairAttempts per round — so runs where
//     the legacy chain succeeded replay byte-identically. Two legacy
//     failure modes are fixed on top: a pull whose target churns out
//     re-targets to a live peer (the old code burned the whole budget
//     into a dead link — the network drops a unicast at a detached
//     target before any rng draw, so those requests were silent
//     no-ops), and an exhausted budget re-arms with capped exponential
//     backoff against a rotated target instead of giving up forever.
//   - Range pulls (StartColdSync) drive bootstrap: the puller walks the
//     server's canonical history stream window by window until it has
//     drained it, re-targeting when the server churns out or a window
//     times out. Chains serve their main chain; the lattice serves its
//     account-ordered block stream.
//
// The manager stays disarmed until a fault schedule or a cold start
// arms it: an armed manager adds events only on paths that were
// already failing, so honest no-fault runs — and their golden tables —
// are untouched.
package netsim

import (
	"time"

	"repro/internal/hashx"
	"repro/internal/sim"
)

// Pull cadence. gapRepairDelay and maxGapRepairAttempts reproduce the
// historical gap-repair chain exactly; the re-arm knobs bound the new
// recovery path layered on top of it.
const (
	gapRepairDelay       = 150 * time.Millisecond
	maxGapRepairAttempts = 64
	// maxPullRearms bounds how many exhausted attempt budgets a single
	// missing hash may re-arm; with the capped backoff below one pull
	// can stay alive for minutes of simulated time, not forever.
	maxPullRearms = 8
	// pullRearmCap caps the exponential re-arm backoff.
	pullRearmCap = 2400 * time.Millisecond
)

// blockRequest asks a peer to serve one block by hash.
type blockRequest struct {
	Hash hashx.Hash
}

// blockRequestSize is the modeled wire size of a block request.
const blockRequestSize = hashx.Size + 8

// rangeRequest asks a peer for one window of its canonical history
// stream — the main chain for the chain paradigms, the account-ordered
// lattice block stream for the block-lattice — starting at offset From,
// at most Max blocks.
type rangeRequest struct {
	From int
	Max  int
}

// rangeReply trails a served window: Next is the offset after the last
// block served, Total the length of the server's stream at serve time.
// Next >= Total tells the puller it has drained the server's history;
// anything the server minted after that instant arrives by normal
// gossip, since the puller is attached again.
type rangeReply struct {
	Next  int
	Total int
}

// rangeMsgSize is the modeled wire size of a range request or reply.
const rangeMsgSize = 24

// defaultPullBatch is the range-pull window when the caller passes no
// batch size.
const defaultPullBatch = 32

// Cold-sync supervision: how long the puller waits for a window's
// trailing reply before re-targeting and re-requesting, and how many
// such timeouts it tolerates before declaring the sync failed.
const (
	coldSyncTimeout    = 500 * time.Millisecond
	maxColdSyncRetries = 64
)

// SyncStats counts the sync manager's work — the BehaviorStats-style
// surface experiments read.
type SyncStats struct {
	// SyncPulls counts single-block pull requests sent (gap repair).
	SyncPulls int
	// Retries counts pull requests past the first for the same hash and
	// cold-sync windows re-requested after a timeout.
	Retries int
	// Retargets counts pulls redirected away from a detached target.
	Retargets int
	// Rearms counts exhausted attempt budgets revived with backoff.
	Rearms int
	// RangePulls counts cold-sync window requests sent.
	RangePulls int
	// BlocksServed and BytesServed count blocks served to pullers —
	// both single-block and range windows; BytesServed is the
	// pulled-bytes measure E20 reports.
	BlocksServed int
	BytesServed  int64
	// BacklogEvicted counts blocks dropped from bounded backlog buffers
	// (lattice gap buffer, chain orphan pool, ingest queue).
	BacklogEvicted int
}

// pullKey identifies one live single-block pull chain.
type pullKey struct {
	node sim.NodeID
	h    hashx.Hash
}

// coldSync is one node's range-pull bootstrap in flight.
type coldSync struct {
	node    sim.NodeID
	target  sim.NodeID
	batch   int
	next    int // stream offset to request next
	seq     int // bumps on every reply; stale timeout checks no-op
	retries int
	started time.Duration
	doneAt  time.Duration
	done    bool
	failed  bool
}

// syncManager runs the pull side of one network simulation. It is
// shared by every node (state is keyed by node id) and stays disarmed —
// contributing zero events — until EnableGapRepair or StartColdSync
// arms it.
type syncManager struct {
	rt    *NodeRuntime
	stats SyncStats
	armed bool
	// recover enables the repaired behavior on top of the legacy
	// cadence: re-targeting detached pull targets and re-arming
	// exhausted attempt budgets. Off under plain arm() so fault
	// schedules replay the historical (buggy) event stream byte for
	// byte — the golden tables E14/E15/E18 are pinned to; on for cold
	// syncs and for callers that opt in via armRecovery().
	recover bool
	// has reports whether a node already holds a block — the paradigm
	// supplies it (lattice attachment for Nano, store membership for
	// the chains).
	has func(node sim.NodeID, h hashx.Hash) bool

	pulling map[pullKey]bool
	cold    map[sim.NodeID]*coldSync
}

// newSyncManager builds a disarmed manager over the runtime.
func newSyncManager(rt *NodeRuntime, has func(node sim.NodeID, h hashx.Hash) bool) *syncManager {
	return &syncManager{
		rt:      rt,
		has:     has,
		pulling: make(map[pullKey]bool),
		cold:    make(map[sim.NodeID]*coldSync),
	}
}

// arm enables pulls at the legacy-compatible level. Kept separate from
// construction so honest runs pay no extra events (see package comment).
func (m *syncManager) arm() { m.armed = true }

// armRecovery enables pulls plus the repaired failure handling
// (re-target + re-arm). Runs armed this way trade byte-compatibility
// with the historical fault tables for actually recovering.
func (m *syncManager) armRecovery() {
	m.armed = true
	m.recover = true
}

// rotateTarget picks a live pull target for node, preferring its own
// peers (in peer-list order, deterministically — no rng draw) and
// falling back to the lowest-indexed attached node. avoid is the target
// that just failed; it is returned unchanged only if no alternative
// exists.
func (m *syncManager) rotateTarget(node, avoid sim.NodeID) sim.NodeID {
	for _, p := range m.rt.net.Peers(node) {
		if p != node && p != avoid && !m.rt.net.IsDetached(p) {
			return p
		}
	}
	for i := 0; i < m.rt.net.NumNodes(); i++ {
		id := sim.NodeID(i)
		if id != node && id != avoid && !m.rt.net.IsDetached(id) {
			return id
		}
	}
	return avoid
}

// Pull starts (at most one) pull chain for a missing block: ask target,
// retry every gapRepairDelay until the block attaches or the attempt
// budget is spent, then re-arm with backoff against a rotated target.
// The first target is the node that sent the gapped block — it
// processed what it relayed, so it either holds the ancestor or is
// repairing it itself; the request walk terminates at the creator.
func (m *syncManager) Pull(node sim.NodeID, missing hashx.Hash, target sim.NodeID) {
	if !m.armed || target == node {
		return
	}
	k := pullKey{node: node, h: missing}
	if m.pulling[k] {
		return
	}
	m.pulling[k] = true
	m.pullTick(node, missing, target, 0, 0)
}

func (m *syncManager) pullTick(node sim.NodeID, missing hashx.Hash, target sim.NodeID, attempt, rearms int) {
	if m.has(node, missing) {
		delete(m.pulling, pullKey{node: node, h: missing})
		return
	}
	if attempt >= maxGapRepairAttempts {
		// The legacy repair chain dropped its bookkeeping here and
		// nothing ever re-armed: the node stayed gapped forever unless
		// a fresh duplicate happened to arrive. In recovery mode the
		// pull revives against a rotated target with capped exponential
		// backoff instead.
		if !m.recover || rearms >= maxPullRearms {
			delete(m.pulling, pullKey{node: node, h: missing})
			return
		}
		delay := gapRepairDelay << uint(rearms+1)
		if delay > pullRearmCap {
			delay = pullRearmCap
		}
		next := m.rotateTarget(node, target)
		m.stats.Rearms++
		m.rt.sim.After(delay, func() { m.pullTick(node, missing, next, 0, rearms+1) })
		return
	}
	if attempt > 0 {
		m.stats.Retries++
	}
	// A unicast at a detached target is dropped by the network before
	// it draws any randomness — the legacy chain burned its whole
	// budget into that dead link. In recovery mode, redirect to a live
	// peer; while the original target is alive the legacy cadence is
	// reproduced as-is.
	if m.recover && m.rt.net.IsDetached(target) && !m.rt.net.IsDetached(node) {
		if alt := m.rotateTarget(node, target); alt != target {
			target = alt
			m.stats.Retargets++
		}
	}
	m.stats.SyncPulls++
	m.rt.Unicast(node, target, &blockRequest{Hash: missing}, blockRequestSize)
	m.rt.sim.After(gapRepairDelay, func() { m.pullTick(node, missing, target, attempt+1, rearms) })
}

// StartColdSync begins a range-pull bootstrap: node walks target's
// canonical history stream window by window (batch blocks per request;
// <= 0 means defaultPullBatch) until it has drained it. Arms the
// manager, so gap repair backstops any stream blocks that arrive out of
// order or are minted while the sync runs.
func (m *syncManager) StartColdSync(node, target sim.NodeID, batch int) {
	if batch <= 0 {
		batch = defaultPullBatch
	}
	m.armRecovery()
	cs := &coldSync{node: node, target: target, batch: batch, started: m.rt.sim.Now()}
	m.cold[node] = cs
	m.requestWindow(cs)
}

// requestWindow asks the current target for the next stream window and
// arms the timeout watchdog.
func (m *syncManager) requestWindow(cs *coldSync) {
	if m.rt.net.IsDetached(cs.target) && !m.rt.net.IsDetached(cs.node) {
		if alt := m.rotateTarget(cs.node, cs.target); alt != cs.target {
			cs.target = alt
			m.stats.Retargets++
		}
	}
	m.stats.RangePulls++
	m.rt.Unicast(cs.node, cs.target, &rangeRequest{From: cs.next, Max: cs.batch}, rangeMsgSize)
	seq := cs.seq
	m.rt.sim.After(coldSyncTimeout, func() { m.checkWindowProgress(cs, seq) })
}

// checkWindowProgress fires coldSyncTimeout after a window request; if
// no reply advanced the sync since, it rotates the target and
// re-requests, up to maxColdSyncRetries timeouts.
func (m *syncManager) checkWindowProgress(cs *coldSync, seq int) {
	if cs.done || cs.failed || cs.seq != seq {
		return
	}
	cs.retries++
	if cs.retries > maxColdSyncRetries {
		cs.failed = true
		return
	}
	m.stats.Retries++
	if alt := m.rotateTarget(cs.node, cs.target); alt != cs.target {
		cs.target = alt
		m.stats.Retargets++
	}
	m.requestWindow(cs)
}

// onRangeReply advances a node's cold sync: request the next window, or
// record completion when the server's stream is drained.
func (m *syncManager) onRangeReply(node sim.NodeID, reply *rangeReply) {
	cs := m.cold[node]
	if cs == nil || cs.done || cs.failed {
		return
	}
	cs.seq++
	cs.retries = 0
	if reply.Next >= reply.Total {
		cs.done = true
		cs.doneAt = m.rt.sim.Now()
		return
	}
	cs.next = reply.Next
	m.requestWindow(cs)
}

// serveRange streams one window of the server's canonical history to
// the puller — blockAt returns the payload and modeled wire size at a
// stream offset — followed by the trailing rangeReply.
func (m *syncManager) serveRange(server, to sim.NodeID, req *rangeRequest, total int, blockAt func(int) (any, int)) {
	from, max := req.From, req.Max
	if from < 0 {
		from = 0
	}
	if max <= 0 {
		max = defaultPullBatch
	}
	next := from
	for ; next < total && next < from+max; next++ {
		payload, size := blockAt(next)
		m.stats.BlocksServed++
		m.stats.BytesServed += int64(size)
		m.rt.Unicast(server, to, payload, size)
	}
	m.rt.Unicast(server, to, &rangeReply{Next: next, Total: total}, rangeMsgSize)
}

// coldSyncDone reports when a node's cold sync drained the server
// stream, measured from StartColdSync. ok is false while the sync is
// still running (or failed, or was never started).
func (m *syncManager) coldSyncDone(node sim.NodeID) (time.Duration, bool) {
	cs := m.cold[node]
	if cs == nil || !cs.done {
		return 0, false
	}
	return cs.doneAt - cs.started, true
}
