// The fault-injection scenario driver: scripted partitions, node churn
// and lossy periods applied to any of the three network simulations, plus
// the contested double-spend attack on the block-lattice. The paper's
// central §IV claim — blockchain forks resolve by depth while Nano
// settles by vote quorum — is exactly a claim about behavior under these
// faults, so the E14/E15 experiments build on this file.
//
// All injection is scheduled on the network's own deterministic
// simulator: a given schedule and seed reproduce the same adversity
// byte for byte, and an empty schedule is a strict no-op (the unfaulted
// pipeline is untouched).
package netsim

import (
	"bytes"
	"sort"
	"time"

	"repro/internal/hashx"
	"repro/internal/lattice"
	"repro/internal/orv"
	"repro/internal/sim"
)

// PartitionWindow splits the network into connectivity groups at At and
// heals it at HealAt (no heal if HealAt <= At). On heal the driver also
// replays a catch-up sync between the former groups, standing in for the
// bootstrap/IBD real nodes run after reconnecting.
type PartitionWindow struct {
	At     time.Duration
	HealAt time.Duration
	// Groups assigns nodes to sides; unlisted nodes form group 0.
	Groups map[sim.NodeID]int
}

// ChurnWindow takes one node offline at LeaveAt and rejoins it at
// RejoinAt (no rejoin if RejoinAt <= LeaveAt). On rejoin the driver
// replays a catch-up exchange with a live peer.
type ChurnWindow struct {
	Node    int
	LeaveAt time.Duration
	// RejoinAt returns the node with its stale state plus a catch-up.
	RejoinAt time.Duration
}

// LossWindow raises the network's extra loss rate to Rate during
// [At, Until).
type LossWindow struct {
	Rate      float64
	At, Until time.Duration
}

// FaultSchedule scripts adversity for one simulation run. The zero value
// schedules nothing.
type FaultSchedule struct {
	Partitions []PartitionWindow
	Churn      []ChurnWindow
	Loss       []LossWindow
}

// SplitGroups builds a two-sided partition map: the LAST frac×nodes
// nodes (rounded to nearest) are split away into group 1, clamped to
// [1, nodes-1] so both sides are nonempty. Node 0, the observer, always
// stays in group 0 — the minority side only while frac <= 0.5.
func SplitGroups(nodes int, frac float64) map[sim.NodeID]int {
	if nodes < 2 {
		return map[sim.NodeID]int{}
	}
	minority := int(frac*float64(nodes) + 0.5)
	if minority < 1 {
		minority = 1
	}
	if minority > nodes-1 {
		minority = nodes - 1
	}
	groups := make(map[sim.NodeID]int, minority)
	for i := nodes - minority; i < nodes; i++ {
		groups[sim.NodeID(i)] = 1
	}
	return groups
}

// groupReps returns one representative node per connectivity group of a
// partition map (the lowest node id of each side, group 0 included), in
// group order — the deterministic sync endpoints for post-heal catch-up.
func groupReps(groups map[sim.NodeID]int, nodes int) []int {
	rep := map[int]int{}
	for i := 0; i < nodes; i++ {
		g := groups[sim.NodeID(i)]
		if cur, ok := rep[g]; !ok || i < cur {
			rep[g] = i
		}
	}
	gs := make([]int, 0, len(rep))
	for g := range rep {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	out := make([]int, 0, len(gs))
	for _, g := range gs {
		out = append(out, rep[g])
	}
	return out
}

// scheduleLoss arms the loss windows on a network.
func scheduleLoss(s *sim.Simulator, net *sim.Network, windows []LossWindow) {
	for _, lw := range windows {
		lw := lw
		s.At(lw.At, func() { net.SetLossRate(lw.Rate) })
		if lw.Until > lw.At {
			s.At(lw.Until, func() { net.SetLossRate(0) })
		}
	}
}

// applyToChain schedules the fault script on a chain network's shared
// runtime core — Bitcoin and Ethereum differ only in ledger type, and
// the catch-up semantics (main-chain exchange, the IBD stand-in) live
// once in chainRuntime. Healed partitions and rejoining nodes catch up
// by exchanging main chains.
func applyToChain(fs FaultSchedule, c *chainRuntime) {
	s, net, nodes := c.faultSurface()
	for _, pw := range fs.Partitions {
		pw := pw
		s.At(pw.At, func() { net.Partition(pw.Groups) })
		if pw.HealAt > pw.At {
			s.At(pw.HealAt, func() {
				net.Heal()
				for _, idx := range groupReps(pw.Groups, nodes) {
					c.broadcastMainChain(idx)
				}
			})
		}
	}
	for _, cw := range fs.Churn {
		cw := cw
		if cw.Node < 0 || cw.Node >= nodes {
			continue
		}
		s.At(cw.LeaveAt, func() { net.Detach(sim.NodeID(cw.Node)) })
		if cw.RejoinAt > cw.LeaveAt {
			s.At(cw.RejoinAt, func() {
				net.Attach(sim.NodeID(cw.Node))
				// Bidirectional catch-up: the rejoined node re-floods its
				// stale view (its partition-era blocks may still win), and
				// a live peer serves it the canonical history.
				c.broadcastMainChain(cw.Node)
				if live := firstAttachedNode(net, nodes, cw.Node); live >= 0 {
					c.sendMainChain(live, cw.Node)
				}
			})
		}
	}
	scheduleLoss(s, net, fs.Loss)
}

// ApplyToBitcoin schedules the fault script on a Bitcoin network.
func (fs FaultSchedule) ApplyToBitcoin(b *BitcoinNet) { applyToChain(fs, b.chain) }

// ApplyToEthereum schedules the fault script on an Ethereum network.
func (fs FaultSchedule) ApplyToEthereum(e *EthereumNet) { applyToChain(fs, e.chain) }

// firstAttachedNode returns the lowest-index attached node other than
// skip, or -1 when every other node is detached.
func firstAttachedNode(net *sim.Network, nodes, skip int) int {
	for i := 0; i < nodes; i++ {
		if i != skip && !net.IsDetached(sim.NodeID(i)) {
			return i
		}
	}
	return -1
}

// Empty reports whether the schedule injects nothing.
func (fs FaultSchedule) Empty() bool {
	return len(fs.Partitions) == 0 && len(fs.Churn) == 0 && len(fs.Loss) == 0
}

// ApplyToNano schedules the fault script on a Nano network. A non-empty
// schedule arms the gap-repair pull (bootstrapping); on heal or rejoin,
// nodes exchange their full lattices and re-broadcast representative
// votes for still-open elections — the re-election that lets stalled
// accounts recover. The exchange is SENT in per-chain order, but link
// jitter reorders delivery, so recovery leans on the lattice gap buffers
// and on gap repair — which also pulls blocks that were still queued
// behind processing budgets at the exchange instant.
func (fs FaultSchedule) ApplyToNano(n *NanoNet) {
	if fs.Empty() {
		return
	}
	n.EnableGapRepair()
	for _, pw := range fs.Partitions {
		pw := pw
		n.rt.sim.At(pw.At, func() { n.rt.net.Partition(pw.Groups) })
		if pw.HealAt > pw.At {
			n.rt.sim.At(pw.HealAt, func() {
				n.rt.net.Heal()
				reps := groupReps(pw.Groups, len(n.nodes))
				// Every node serves its lattice to the other sides' reps
				// (a node whose gossip peers all sat across the split may
				// hold blocks nobody else has); first-seen relay floods
				// the novelty from the reps.
				for i := range n.nodes {
					gi := pw.Groups[sim.NodeID(i)]
					for _, r := range reps {
						if i != r && pw.Groups[sim.NodeID(r)] != gi {
							n.sendLattice(i, r)
						}
					}
				}
				for _, node := range n.nodes {
					n.resendOpenVotes(node)
				}
			})
		}
	}
	for _, cw := range fs.Churn {
		cw := cw
		if cw.Node < 0 || cw.Node >= len(n.nodes) {
			continue
		}
		n.rt.sim.At(cw.LeaveAt, func() { n.rt.net.Detach(sim.NodeID(cw.Node)) })
		if cw.RejoinAt > cw.LeaveAt {
			n.rt.sim.At(cw.RejoinAt, func() {
				n.rt.net.Attach(sim.NodeID(cw.Node))
				if live := firstAttachedNode(n.rt.net, len(n.nodes), cw.Node); live >= 0 {
					n.sendLattice(live, cw.Node)
					n.sendLattice(cw.Node, live)
				}
				for _, node := range n.nodes {
					n.resendOpenVotes(node)
				}
			})
		}
	}
	scheduleLoss(n.rt.sim, n.rt.net, fs.Loss)
}

// sendLattice serves node from's entire lattice to node to; receivers
// dedup seen blocks and relay only novelty.
func (n *NanoNet) sendLattice(from, to int) {
	src, dst := n.nodes[from], n.nodes[to]
	for _, b := range src.lat.AllBlocks() {
		n.rt.Unicast(src.id, dst.id, b, b.EncodedSize())
	}
}

// resendOpenVotes re-broadcasts a node's current representative votes for
// every election it has not yet seen confirmed, in deterministic root
// order. Re-votes carry their original sequence numbers, so nodes that
// already tallied them discard the duplicates and only the other side of
// a former split learns anything new.
func (n *NanoNet) resendOpenVotes(node *nanoNode) { n.resendVotes(node, false) }

// resendDecidedVotes re-broadcasts a node's current votes INCLUDING the
// ones for elections it already saw decided — the confirm-ack real nodes
// serve on request. A node that confirmed and cemented a block during a
// split never re-votes through resendOpenVotes, so a victim discovering
// the fork only after heal would starve without this: the executed
// double-spend scenarios (E18) schedule it at their heal instant.
func (n *NanoNet) resendDecidedVotes(node *nanoNode) { n.resendVotes(node, true) }

func (n *NanoNet) resendVotes(node *nanoNode, includeDecided bool) {
	if len(node.repAccounts) == 0 || len(node.myVote) == 0 {
		return
	}
	roots := make([]hashx.Hash, 0, len(node.myVote))
	for root, cand := range node.myVote {
		if cand == hashx.Zero || (!includeDecided && node.tracker.Confirmed(cand)) {
			continue
		}
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return bytes.Compare(roots[i][:], roots[j][:]) < 0 })
	for _, root := range roots {
		cand, seq := node.myVote[root], node.mySeq[root]
		for _, rep := range node.repAccounts {
			v := orv.NewVote(n.ring.Pair(rep), cand, seq)
			if !n.rt.voteAllowed(node.id, v) {
				continue
			}
			n.metrics.VotesSent++
			n.rt.Broadcast(node.id, v, v.EncodedSize())
		}
	}
}

// DoubleSpendPlan schedules a contested double spend: the attacker
// account signs two conflicting sends from the same predecessor — the
// honest one published at its owner node, the rival injected at a node
// halfway across the network (§IV-B: "forks in Nano are only possible as
// a result of a malicious attack").
type DoubleSpendPlan struct {
	Attacker, VictimA, VictimB int
	Amount                     uint64
	At                         time.Duration
	// Entry is the node index the rival send enters at; 0 (the zero
	// value) places it halfway across the network from the attacker's
	// owner node.
	Entry int
}

// DoubleSpendHandle reports what a scheduled double spend actually
// injected; fields fill when the event fires.
type DoubleSpendHandle struct {
	// Injected is false if the attacker lacked funds at At.
	Injected bool
	// Honest and Rival are the conflicting send hashes; Root is their
	// shared predecessor, the fork election's root.
	Honest, Rival, Root hashx.Hash
}

// DoubleSpendOutcome summarizes the observer's final verdict on an
// injected double spend.
type DoubleSpendOutcome struct {
	Injected bool
	// RivalWon reports that the attacker's rival send is attached at the
	// observer — the double spend SUCCEEDED against the honest payment.
	RivalWon bool
	// HonestAttached reports the honest send on the observer's lattice.
	HonestAttached bool
	// RivalCemented reports the rival irreversibly cemented.
	RivalCemented bool
	// Resolved reports the fork election completed at the observer.
	Resolved bool
}

// InjectContestedDoubleSpend schedules the conflicting sends and registers
// the rival as the adversary's preferred candidate, so byzantine nodes
// (NanoConfig.ByzantineNodes) contest the election with their weight.
// With zero byzantine nodes this is exactly the legacy InjectDoubleSpend
// fault: honest representatives resolve it by first-seen + leader-follow
// voting.
func (n *NanoNet) InjectContestedDoubleSpend(p DoubleSpendPlan) *DoubleSpendHandle {
	h := &DoubleSpendHandle{}
	n.rt.sim.At(p.At, func() {
		ownerIdx := n.ownerOf(p.Attacker)
		owner := n.nodes[ownerIdx]
		head, ok := owner.lat.HeadBlock(n.ring.Addr(p.Attacker))
		if !ok || head.Balance < p.Amount {
			return
		}
		prev := head.Hash()
		honest, err := owner.lat.NewSend(n.ring.Pair(p.Attacker), n.ring.Addr(p.VictimA), p.Amount)
		if err != nil {
			return
		}
		rival, err := lattice.NewForkSend(
			n.ring.Pair(p.Attacker), prev, head.Balance,
			n.ring.Addr(p.VictimB), p.Amount, head.Representative, n.cfg.WorkBits)
		if err != nil {
			return
		}
		h.Injected = true
		h.Honest, h.Rival, h.Root = honest.Hash(), rival.Hash(), prev
		// Register the attack before publishing: byzantine nodes must
		// already know which candidate to back when the blocks arrive.
		n.advContested[h.Honest] = true
		n.advPreferred[h.Rival] = true
		n.publish(owner, honest)
		entryIdx := p.Entry
		if entryIdx <= 0 || entryIdx >= len(n.nodes) {
			entryIdx = (ownerIdx + len(n.nodes)/2) % len(n.nodes)
		}
		n.created[h.Rival] = n.rt.sim.Now()
		n.rt.Unicast(owner.id, n.nodes[entryIdx].id, rival, rival.EncodedSize())
	})
	return h
}

// Outcome reads the observer's final state for an injected double spend.
// Call after the run completes.
func (n *NanoNet) Outcome(h *DoubleSpendHandle) DoubleSpendOutcome {
	out := DoubleSpendOutcome{Injected: h.Injected}
	if !h.Injected {
		return out
	}
	obs := n.nodes[0]
	_, out.RivalWon = obs.lat.Get(h.Rival)
	_, out.HonestAttached = obs.lat.Get(h.Honest)
	out.RivalCemented = obs.tracker.IsCemented(h.Rival)
	out.Resolved = obs.resolvedForks[forkRootOf(h.Root)]
	return out
}

// LatticeConverged reports whether every node agrees on every account's
// chain head — the "recovered" verdict after partitions and churn.
func (n *NanoNet) LatticeConverged() bool {
	obs := n.nodes[0]
	for i := 0; i < n.cfg.Accounts; i++ {
		addr := n.ring.Addr(i)
		h0, ok0 := obs.lat.Head(addr)
		for _, node := range n.nodes[1:] {
			if h, ok := node.lat.Head(addr); ok != ok0 || h != h0 {
				return false
			}
		}
	}
	return true
}

// TipsConverged reports whether every node agrees on the chain tip.
func (b *BitcoinNet) TipsConverged() bool { return b.chain.tipsConverged() }

// ConvergedWithin reports whether every node agrees with the observer's
// main chain at depth back below the observer's tip — tip equality with a
// tolerance for blocks still propagating at the cutoff instant.
func (b *BitcoinNet) ConvergedWithin(back int) bool { return b.chain.convergedWithin(back) }

// TipsConverged reports whether every node agrees on the chain tip.
func (e *EthereumNet) TipsConverged() bool { return e.chain.tipsConverged() }

// ConvergedWithin is the tolerance-based convergence check (see the
// BitcoinNet variant).
func (e *EthereumNet) ConvergedWithin(back int) bool { return e.chain.convergedWithin(back) }

// ByzantineWeightFraction reports the share of total voting weight held
// by representatives hosted on byzantine nodes — the attacker's measured
// strength in an E15 sweep point.
func (n *NanoNet) ByzantineWeightFraction() float64 {
	if n.cfg.ByzantineNodes <= 0 {
		return 0
	}
	weights := n.nodes[0].weights
	total := weights.Total()
	if total == 0 {
		return 0
	}
	var byz uint64
	for _, node := range n.nodes {
		if !node.byzantine {
			continue
		}
		for _, rep := range node.repAccounts {
			byz += weights.WeightOf(n.ring.Addr(rep))
		}
	}
	return float64(byz) / float64(total)
}
