package netsim

// Whole-network smart-contract test: the paper notes Ethereum's
// "significant benefit compared to Bitcoin since it supports smart
// contracts". A contract deployed through the gossiping network must end
// up with identical code and storage on every replica, because each node
// independently re-executes every block.

import (
	"testing"
	"time"

	"repro/internal/account"
)

func TestEthereumContractConvergesAcrossNetwork(t *testing.T) {
	cfg := EthereumConfig{
		Net:           fastNet(101),
		Consensus:     PoS, // deterministic slot schedule
		BlockInterval: 4 * time.Second,
		Accounts:      8,
	}
	net, err := NewEthereum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deployer := net.Ring().Pair(0)

	// A counter contract: storage[0] += calldata[0] on every call.
	code := account.Asm(
		account.OpPush, 0,
		account.OpPush, 0, account.OpSLoad,
		account.OpPush, 0, account.OpCallData,
		account.OpAdd,
		account.OpSStore,
		account.OpStop,
	)
	deploy := &account.Tx{Nonce: 0, Data: code, GasLimit: 300_000, GasPrice: 1}
	deploy.Sign(deployer)
	contractAddr := account.ContractAddress(deployer.Address(), 0)

	// Submit the deployment to every node at t=1s, then three calls.
	net.Sim().At(time.Second, func() {
		for _, l := range net.ledgers {
			if err := l.SubmitTx(deploy); err != nil {
				t.Errorf("deploy submit: %v", err)
			}
		}
	})
	for i := 0; i < 3; i++ {
		i := i
		net.Sim().At(time.Duration(10+5*i)*time.Second, func() {
			call := &account.Tx{
				Nonce: uint64(1 + i), To: &contractAddr,
				Data: account.Asm(7), GasLimit: 100_000, GasPrice: 1,
			}
			call.Sign(deployer)
			for _, l := range net.ledgers {
				_ = l.SubmitTx(call) // later nonces queue
			}
		})
	}
	net.Run(60 * time.Second)

	// Every replica holds the same code and the same counter value.
	want := net.ledgers[0].State().GetStorage(contractAddr, 0)
	if want != 21 {
		t.Fatalf("counter = %d, want 21 (3 calls x 7)", want)
	}
	for i, l := range net.ledgers {
		st := l.State()
		if !st.GetAccount(contractAddr).IsContract() {
			t.Fatalf("node %d lost the contract code", i)
		}
		if got := st.GetStorage(contractAddr, 0); got != want {
			t.Fatalf("node %d storage = %d, want %d", i, got, want)
		}
		if st.Root() != net.ledgers[0].State().Root() {
			t.Fatalf("node %d state root diverged", i)
		}
	}
}
