package netsim

// Tests for the executed-attack layer: the γ-parameterized selfish-mining
// race, the race-win state-machine regression, the bounded adversary
// memory, eclipse lift/restore, and the E18 executed double-spend
// scenarios carried through to an actual wrong settlement on both
// ledgers.

import (
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/sim"
)

// testBlock crafts a payload-free chain block with a distinct hash.
func testBlock(height uint64, nonce uint64) *chain.Block {
	return &chain.Block{Header: chain.Header{Height: height, Nonce: nonce}}
}

// newTestSelfish builds a bare behavior with a recording release hook.
func newTestSelfish() (*SelfishMiningBehavior, *[]*chain.Block) {
	var released []*chain.Block
	b := &SelfishMiningBehavior{node: 7, seen: make(map[hashx.Hash]bool)}
	b.release = func(blk *chain.Block) { released = append(released, blk) }
	return b, &released
}

// Regression for the race-win publish path: winning the 1-1 race by
// producing the next block must advance the public frontier past the
// published private branch. Before the fix, a stale honest block at the
// same height arriving later was miscounted as rival progress and
// tripped the lead policy — prematurely publishing a fresh private block
// against a branch the network had already abandoned.
func TestSelfishRaceWinAdvancesFrontier(t *testing.T) {
	b, released := newTestSelfish()

	if b.OnProduce(7, testBlock(1, 1)) {
		t.Fatal("first private block must be withheld")
	}
	// Honest rival at height 1: lead-1 race opens, private block published.
	b.OnInbound(7, 0, testBlock(1, 2), 0)
	if !b.raceOpen || len(*released) != 1 {
		t.Fatalf("race should be open with one release, got open=%v released=%d", b.raceOpen, len(*released))
	}
	// The adversary wins the race: next production publishes immediately.
	raceWin := testBlock(2, 3)
	if !b.OnProduce(7, raceWin) {
		t.Fatal("race-winning block must publish immediately")
	}
	if b.raceOpen {
		t.Fatal("producing the race-winning block must close the race")
	}
	if b.rivalHeight != 2 {
		t.Fatalf("rivalHeight = %d after publishing at height 2, want 2", b.rivalHeight)
	}
	// New private block on the now-public branch.
	if b.OnProduce(7, testBlock(3, 4)) {
		t.Fatal("post-race private block must be withheld")
	}
	// A stale honest sibling at the published height is NOT progress: it
	// must not cost a release or open a bogus race. (The race win above
	// published through the production path, so the release hook still
	// counts one call.)
	b.OnInbound(7, 0, testBlock(2, 5), 0)
	if b.raceOpen || len(*released) != 1 || b.Withheld() != 1 {
		t.Fatalf("stale sibling tripped the lead policy: open=%v released=%d withheld=%d",
			b.raceOpen, len(*released), b.Withheld())
	}
	// Genuine progress at height 3 opens the next race.
	b.OnInbound(7, 0, testBlock(3, 6), 0)
	if !b.raceOpen || len(*released) != 2 || b.Withheld() != 0 {
		t.Fatalf("real progress should race: open=%v released=%d withheld=%d",
			b.raceOpen, len(*released), b.Withheld())
	}
}

// Publishing at lead 2 (the instant win) must also advance the frontier
// to the deepest released block, so late same-height siblings are inert.
func TestSelfishLeadTwoReleaseAdvancesFrontier(t *testing.T) {
	b, released := newTestSelfish()
	b.OnProduce(7, testBlock(1, 1))
	b.OnProduce(7, testBlock(2, 2))
	b.OnInbound(7, 0, testBlock(1, 3), 0) // rival at 1 against lead 2
	if len(*released) != 2 || b.raceOpen {
		t.Fatalf("lead-2 must publish both without racing: released=%d open=%v", len(*released), b.raceOpen)
	}
	if b.rivalHeight != 2 {
		t.Fatalf("rivalHeight = %d after releasing through height 2, want 2", b.rivalHeight)
	}
	b.OnProduce(7, testBlock(3, 4)) // fresh private block
	b.OnInbound(7, 0, testBlock(2, 5), 0)
	if len(*released) != 2 || b.raceOpen || b.Withheld() != 1 {
		t.Fatalf("stale sibling after lead-2 release tripped the policy: released=%d open=%v withheld=%d",
			len(*released), b.raceOpen, b.Withheld())
	}
}

// The selfish miner's inbound dedup memory must stay bounded under a
// block flood (the same two-generation scheme as the nano vote buffers).
func TestSelfishSeenBounded(t *testing.T) {
	b, _ := newTestSelfish()
	flood := 2*maxSelfishSeenBlocks + maxSelfishSeenBlocks/2
	for i := 0; i < flood; i++ {
		// Height 0 blocks never count as progress, so the flood exercises
		// only the dedup bookkeeping.
		b.OnInbound(7, 0, testBlock(0, uint64(i)+10), 0)
	}
	if held := len(b.seen) + len(b.prevSeen); held > 2*maxSelfishSeenBlocks {
		t.Fatalf("seen set grew to %d entries, cap is %d", held, 2*maxSelfishSeenBlocks)
	}
	// Dedup still works across the rotation boundary for recent blocks.
	recent := testBlock(0, uint64(flood)+10)
	b.OnInbound(7, 0, recent, 0)
	before := len(b.seen) + len(b.prevSeen)
	b.OnInbound(7, 0, recent, 0)
	if after := len(b.seen) + len(b.prevSeen); after != before {
		t.Fatal("duplicate delivery changed the dedup set")
	}
}

// LiftEclipse must restore the victim's peer view and remove the
// behavior, and gossip must actually flow again afterwards.
func TestEclipseLiftRestores(t *testing.T) {
	net, err := NewBitcoin(BitcoinConfig{
		Net: fastNet(421), BlockInterval: 10 * time.Second, Accounts: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	original := append([]sim.NodeID(nil), net.Net().Peers(0)...)
	ecl := net.Runtime().InstallEclipse(0, 1)
	if ecl == nil || net.Runtime().BehaviorOf(0) == nil {
		t.Fatal("full eclipse must install a behavior")
	}
	if got := net.Net().Peers(0); len(got) != 0 {
		t.Fatalf("fully eclipsed victim still has peers: %v", got)
	}
	net.Runtime().LiftEclipse(ecl)
	if net.Runtime().BehaviorOf(0) != nil {
		t.Fatal("lift must remove the behavior")
	}
	restored := net.Net().Peers(0)
	if len(restored) != len(original) {
		t.Fatalf("peer view not restored: %v vs %v", restored, original)
	}
	for i, p := range original {
		if restored[i] != p {
			t.Fatalf("peer view not restored: %v vs %v", restored, original)
		}
	}
	// Lifting a nil behavior (frac <= 0 installed nothing) is a no-op.
	net.Runtime().LiftEclipse(nil)
}

// With γ = 1 every honest win during an open race must mine on the
// adversary's published block. The scenario is driven by hand: a private
// adversary block, an honest rival opening the race, then an honest
// production that must extend the adversary's branch.
func TestGammaRaceMinesOnAdversaryBlock(t *testing.T) {
	net, err := NewBitcoin(BitcoinConfig{
		Net: NetParams{
			Nodes: 3, PeerDegree: 2, Seed: 431,
			MinLatency: 5 * time.Millisecond, MaxLatency: 10 * time.Millisecond,
		},
		BlockInterval: 10 * time.Second, Accounts: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm := net.InstallSelfishMinerGamma(2, 1)
	adv := net.chain.produce(2, addrOf(2), net.difficulty) // withheld, private
	if sm.Withheld() != 1 {
		t.Fatal("adversary block should be withheld")
	}
	rival := net.chain.produce(0, addrOf(0), net.difficulty) // honest rival at the same height
	net.Sim().RunUntil(time.Second)                          // relay settles; race opens at the adversary
	if !sm.raceOpen || sm.raceTip != adv.Hash() {
		t.Fatalf("race should be open on the adversary's block: open=%v", sm.raceOpen)
	}
	if _, ok := net.chain.ledgers[1].Store().Get(adv.Hash()); !ok {
		t.Fatal("published adversary block should have reached node 1")
	}
	// γ = 1: the draw always mines on the adversary's block.
	if !net.chain.raceProduce(1, addrOf(1), net.difficulty) {
		t.Fatal("γ=1 honest win during an open race must take the γ path")
	}
	tip := net.chain.ledgers[1].Store().TipBlock()
	if tip.Header.Parent != adv.Hash() {
		t.Fatalf("γ block extends %s, want the adversary block %s (rival %s)",
			tip.Header.Parent, adv.Hash(), rival.Hash())
	}
}

// addrOf derives the same miner identity the production scheduler uses.
func addrOf(i int) keys.Address { return keys.DeterministicN("btc-miner", i).Address() }

// The executed eclipse double spend on the chain side: the victim
// self-confirms the fed payment to the merchant's depth rule, the heal
// releases the honest chain, and the payment is reverted while the rival
// spend stands.
func TestChainEclipseDoubleSpendExecutes(t *testing.T) {
	out := runChainDoubleSpend(t, 441, false)
	if !out.Accepted {
		t.Fatalf("victim never accepted the payment: %+v", out)
	}
	if !out.Reverted || out.HonestConfirmed {
		t.Fatalf("accepted payment was not reverted: %+v", out)
	}
	if !out.RivalConfirmed {
		t.Fatalf("rival spend did not confirm at the victim: %+v", out)
	}
}

// The partition-hidden fork variant: the double spend matures inside the
// minority split and the heal reorganizes it away.
func TestChainPartitionHiddenForkExecutes(t *testing.T) {
	out := runChainDoubleSpend(t, 443, true)
	if !out.Accepted {
		t.Fatalf("victim never accepted the payment: %+v", out)
	}
	if !out.Reverted || !out.RivalConfirmed {
		t.Fatalf("hidden fork did not execute: %+v", out)
	}
}

// runChainDoubleSpend drives the canonical scenario — the same
// constructor core's E18 rows build from, so these regressions pin the
// exact configuration the experiment runs.
func runChainDoubleSpend(t *testing.T, seed int64, partition bool) ChainDoubleSpendOutcome {
	t.Helper()
	cfg, plan, fs, dur := ChainDoubleSpendScenario(seed, partition)
	net, err := NewBitcoin(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs != nil {
		fs.ApplyToBitcoin(net)
	}
	h := net.ScheduleDoubleSpend(plan)
	net.Run(dur)
	out := net.DoubleSpendVerdict(h)
	if !out.Injected {
		t.Fatal("double spend was not injected")
	}
	return out
}

// The executed eclipse double spend on the lattice side: the fed send
// attaches and settles at the victim but never reaches quorum there (the
// eclipsed victim cannot hear the representatives — Nano's defense), and
// the heal's fork election rolls the payment back.
func TestLatticeEclipseDoubleSpendExecutes(t *testing.T) {
	out := runLatticeDoubleSpend(t, 451, false)
	if !out.Accepted || !out.Settled {
		t.Fatalf("fed send never settled at the victim: %+v", out)
	}
	if out.ConfirmedAtVictim {
		t.Fatalf("eclipsed victim reached quorum, which should be impossible: %+v", out)
	}
	if !out.Reverted || out.HonestFinal || !out.RivalFinal {
		t.Fatalf("fork election did not revert the fed send: %+v", out)
	}
	if !out.Resolved {
		t.Fatalf("fork never resolved at the victim: %+v", out)
	}
}

// The partition-hidden fork on the lattice: minority-side attachment,
// majority-side quorum, post-heal re-election reverts the victim.
func TestLatticePartitionHiddenForkExecutes(t *testing.T) {
	out := runLatticeDoubleSpend(t, 453, true)
	if !out.Accepted {
		t.Fatalf("send never attached at the victim: %+v", out)
	}
	if out.ConfirmedAtVictim {
		t.Fatalf("minority side reached quorum, which should be impossible: %+v", out)
	}
	if !out.Reverted || !out.RivalFinal {
		t.Fatalf("hidden fork did not execute: %+v", out)
	}
}

// runLatticeDoubleSpend drives the canonical scenario — the same
// constructor core's E18 rows build from.
func runLatticeDoubleSpend(t *testing.T, seed int64, partition bool) LatticeDoubleSpendOutcome {
	t.Helper()
	cfg, plan, fs, dur := LatticeDoubleSpendScenario(seed, partition)
	net, err := NewNano(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs != nil {
		fs.ApplyToNano(net)
	}
	h := net.ScheduleExecutedDoubleSpend(plan)
	net.Run(dur)
	out := net.ExecutedOutcome(h)
	if !out.Injected {
		t.Fatal("double spend was not injected")
	}
	return out
}

// An unscheduled plan must leave the pipeline untouched: the honest run
// with and without a constructed-but-never-armed handle is identical.
func TestExecutedPlansAreInertUntilScheduled(t *testing.T) {
	run := func(arm bool) NanoMetrics {
		net, err := NewNano(NanoConfig{Net: fastNet(461), Accounts: 16, Reps: 4})
		if err != nil {
			t.Fatal(err)
		}
		if arm {
			// Scheduled far past the run's end: the events never fire.
			net.ScheduleExecutedDoubleSpend(LatticeDoubleSpendPlan{
				Victim: 0, Attacker: 15, Merchant: 8, Rival: 9, Amount: 1,
				At: time.Hour, HealAt: 2 * time.Hour, Eclipse: true,
			})
		}
		return net.Run(3 * time.Second)
	}
	a, b := run(false), run(true)
	if a.BPS != b.BPS || a.MessagesSent != b.MessagesSent || a.BytesSent != b.BytesSent ||
		a.ConfirmedBlocks != b.ConfirmedBlocks {
		t.Fatalf("unfired plan perturbed the run:\n%+v\nvs\n%+v", a, b)
	}
}
