// Struct-of-arrays node state. Per-node dedup bookkeeping used to be a
// map[hashx.Hash]bool per node per concern — at mega-scale (E19 sweeps
// to 10⁵ nodes) that is hundreds of thousands of churning hash maps
// whose keys each re-hash 32-byte digests. The types below replace them
// with network-level dense-id dictionaries (one map total, shared by
// every node) plus pooled per-node bit matrices sized once per network:
// membership is one bit, marking is one OR, and the per-node cost of a
// gossiped message stops paying map overhead entirely.
//
// Every structure is deterministic: ids are assigned in first-sight
// order by the (deterministic) event loop, and no iteration order ever
// escapes, so golden tables are byte-identical to the map-based code.
package netsim

import (
	"repro/internal/hashx"
	"repro/internal/keys"
)

// dex assigns dense int32 ids to keys in first-sight order. One dex per
// network per concern replaces a hash-keyed map per node: nodes address
// each other's bit rows through the shared id space.
type dex[K comparable] struct {
	ids map[K]int32
}

func newDex[K comparable](hint int) *dex[K] {
	return &dex[K]{ids: make(map[K]int32, hint)}
}

// id returns the dense id for k, assigning the next one on first sight.
func (d *dex[K]) id(k K) int32 {
	if id, ok := d.ids[k]; ok {
		return id
	}
	id := int32(len(d.ids))
	d.ids[k] = id
	return id
}

// lookup returns k's id without assigning one.
func (d *dex[K]) lookup(k K) (int32, bool) {
	id, ok := d.ids[k]
	return id, ok
}

// size is the number of ids assigned so far.
func (d *dex[K]) size() int { return len(d.ids) }

// voteKey identifies a vote by content — representative, candidate block
// and sequence number. Keying dedup state by this tuple replaces the
// old voteID SHA-256 digest: tuple equality IS the identity, so the
// per-message hash disappears from the gossip hot path.
type voteKey struct {
	Rep   keys.Address
	Block hashx.Hash
	Seq   uint64
}

// bitRows is a pooled per-node bit matrix: one backing []uint64 holds a
// fixed-stride row per node, so N nodes tracking M ids cost N×M bits in
// one allocation instead of N maps. The stride grows by doubling (with
// a row repack) when an id outgrows it; rows are only as wide as the
// largest id actually seen.
type bitRows struct {
	words  []uint64
	stride int // words per row
	nodes  int
}

func newBitRows(nodes, idHint int) *bitRows {
	stride := (idHint + 63) / 64
	if stride < 1 {
		stride = 1
	}
	return &bitRows{words: make([]uint64, nodes*stride), stride: stride, nodes: nodes}
}

// grow widens every row to at least wantWords words, repacking in place
// order (row i keeps its bits at the same in-row offsets).
func (r *bitRows) grow(wantWords int) {
	stride := r.stride
	for stride < wantWords {
		stride *= 2
	}
	words := make([]uint64, r.nodes*stride)
	for n := 0; n < r.nodes; n++ {
		copy(words[n*stride:n*stride+r.stride], r.words[n*r.stride:(n+1)*r.stride])
	}
	r.words, r.stride = words, stride
}

func (r *bitRows) test(node int, id int32) bool {
	w := int(id) / 64
	if w >= r.stride {
		return false
	}
	return r.words[node*r.stride+w]&(1<<(uint(id)%64)) != 0
}

// testSet reports whether id was already set for node, setting it either
// way.
func (r *bitRows) testSet(node int, id int32) bool {
	w := int(id) / 64
	if w >= r.stride {
		r.grow(w + 1)
	}
	bit := uint64(1) << (uint(id) % 64)
	p := &r.words[node*r.stride+w]
	was := *p&bit != 0
	*p |= bit
	return was
}

// clear unsets id for node, reporting whether it was set.
func (r *bitRows) clear(node int, id int32) bool {
	w := int(id) / 64
	if w >= r.stride {
		return false
	}
	bit := uint64(1) << (uint(id) % 64)
	p := &r.words[node*r.stride+w]
	was := *p&bit != 0
	*p &^= bit
	return was
}

// zeroRow clears every bit in node's row.
func (r *bitRows) zeroRow(node int) {
	row := r.words[node*r.stride : (node+1)*r.stride]
	for i := range row {
		row[i] = 0
	}
}

// copyRow copies src's row over dst's row (same matrix).
func (r *bitRows) copyRowTo(dst *bitRows, node int) {
	copy(dst.words[node*dst.stride:(node+1)*dst.stride], r.words[node*r.stride:(node+1)*r.stride])
}

// genSeen is the bounded two-generation dedup set in bit-matrix form,
// mirroring the old per-node seenVotes/prevSeenVotes map pair exactly:
// an id is seen if it is in the current or previous generation; marking
// past the per-node limit rotates (current becomes previous, a fresh
// generation starts), so at most 2×limit ids are held per node and an
// id forgotten after two rotations re-applies harmlessly downstream.
type genSeen struct {
	cur, prev *bitRows
	count     []int // set bits in cur, per node — the rotation trigger
	limit     int
}

func newGenSeen(nodes, limit, idHint int) *genSeen {
	return &genSeen{
		cur:   newBitRows(nodes, idHint),
		prev:  newBitRows(nodes, idHint),
		count: make([]int, nodes),
		limit: limit,
	}
}

func (g *genSeen) seen(node int, id int32) bool {
	return g.cur.test(node, id) || g.prev.test(node, id)
}

// mark records id for node, rotating generations first when the live one
// is full — the same order as the map code (rotation check precedes the
// insert), so rotation boundaries land on identical marks.
func (g *genSeen) mark(node int, id int32) {
	if g.count[node] >= g.limit {
		g.rotate(node)
	}
	if !g.cur.testSet(node, id) {
		g.count[node]++
	}
}

// unmark forgets id for node in both generations, so a rebroadcast is
// accepted again.
func (g *genSeen) unmark(node int, id int32) {
	if g.cur.clear(node, id) {
		g.count[node]--
	}
	g.prev.clear(node, id)
}

func (g *genSeen) rotate(node int) {
	if g.prev.stride < g.cur.stride {
		g.prev.grow(g.cur.stride)
	}
	g.cur.copyRowTo(g.prev, node)
	g.cur.zeroRow(node)
	g.count[node] = 0
}

// epochSet is a reusable membership set over dense ids with O(1) reset:
// an id is a member iff its stamp equals the current epoch, so clearing
// is one increment instead of a fresh map per call. Used for per-call
// scratch sets (e.g. the eclipse report's consensus-prefix walk).
type epochSet struct {
	stamps []uint32
	epoch  uint32
}

func newEpochSet(hint int) *epochSet {
	return &epochSet{stamps: make([]uint32, hint), epoch: 1}
}

// clear empties the set. When the epoch counter wraps, the stamps are
// hard-zeroed so ids stamped 2³² clears ago cannot alias back in.
func (s *epochSet) clear() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamps {
			s.stamps[i] = 0
		}
		s.epoch = 1
	}
}

func (s *epochSet) add(id int32) {
	if int(id) >= len(s.stamps) {
		grown := make([]uint32, 2*int(id)+1)
		copy(grown, s.stamps)
		s.stamps = grown
	}
	s.stamps[id] = s.epoch
}

func (s *epochSet) has(id int32) bool {
	return int(id) < len(s.stamps) && s.stamps[id] == s.epoch
}
