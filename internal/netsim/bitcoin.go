package netsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/pow"
	"repro/internal/sim"
	"repro/internal/utxo"
	"repro/internal/workload"
)

// BitcoinConfig parameterizes a Bitcoin-like PoW network.
type BitcoinConfig struct {
	Net NetParams
	// Ledger holds the chain parameters (block size, subsidy, interval).
	Ledger utxo.Params
	// HashRates gives each node's mining power (len ≤ Nodes; zero means
	// the node only relays). Empty defaults to equal power everywhere.
	HashRates []float64
	// BlockInterval is the target mean time between blocks; the lottery
	// difficulty is derived from it, so §VI-A's "block generation time
	// converges to a fixed value" holds by construction.
	BlockInterval time.Duration
	// Accounts is the number of funded user accounts.
	Accounts int
	// InitialBalance funds each account at genesis.
	InitialBalance uint64
}

func (c BitcoinConfig) withDefaults() BitcoinConfig {
	c.Net = c.Net.withDefaults()
	if c.BlockInterval <= 0 {
		c.BlockInterval = 10 * time.Minute
	}
	if c.Accounts <= 0 {
		c.Accounts = 64
	}
	if c.InitialBalance == 0 {
		c.InitialBalance = 1_000_000
	}
	if c.Ledger.MaxBlockBytes == 0 {
		c.Ledger = utxo.DefaultParams()
		// Keep difficulty static during short simulated spans.
		c.Ledger.RetargetWindow = 1 << 30
	}
	if len(c.HashRates) == 0 {
		c.HashRates = make([]float64, c.Net.Nodes)
		for i := range c.HashRates {
			c.HashRates[i] = 1
		}
	}
	return c
}

// btcNode is one full node: a ledger replica plus gossip dedup state.
type btcNode struct {
	id     sim.NodeID
	ledger *utxo.Ledger
	seen   map[hashx.Hash]bool
}

// BitcoinNet is a running Bitcoin-like network simulation.
type BitcoinNet struct {
	cfg     BitcoinConfig
	sim     *sim.Simulator
	net     *sim.Network
	nodes   []*btcNode
	ring    *keys.Ring
	lottery *pow.Lottery

	difficulty float64
	created    map[hashx.Hash]time.Duration // block hash -> creation time
	reach      map[hashx.Hash]int           // block hash -> nodes reached
	metrics    ChainMetrics
	blockTimes []time.Duration
}

// NewBitcoin builds the network: every node holds an identical genesis
// (same allocation), miners share the PoW lottery, and blocks flood the
// gossip topology.
func NewBitcoin(cfg BitcoinConfig) (*BitcoinNet, error) {
	cfg = cfg.withDefaults()
	s, net := buildNetwork(cfg.Net)

	ring := keys.NewRing("btc-net", cfg.Accounts)
	alloc := make(map[keys.Address]uint64, cfg.Accounts)
	for i := 0; i < cfg.Accounts; i++ {
		alloc[ring.Addr(i)] = cfg.InitialBalance
	}

	miners := make([]pow.Miner, 0, len(cfg.HashRates))
	for i, hr := range cfg.HashRates {
		if hr > 0 {
			miners = append(miners, pow.Miner{ID: i, HashRate: hr})
		}
	}
	lottery, err := pow.NewLottery(miners)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}

	b := &BitcoinNet{
		cfg:     cfg,
		sim:     s,
		net:     net,
		ring:    ring,
		lottery: lottery,
		created: make(map[hashx.Hash]time.Duration),
		reach:   make(map[hashx.Hash]int),
	}
	b.difficulty = lottery.DifficultyForInterval(cfg.BlockInterval)

	for i := 0; i < cfg.Net.Nodes; i++ {
		ledger, err := utxo.NewLedger(alloc, cfg.Ledger)
		if err != nil {
			return nil, fmt.Errorf("netsim: node %d: %w", i, err)
		}
		node := &btcNode{ledger: ledger, seen: make(map[hashx.Hash]bool)}
		node.id = net.AddNode(nil)
		net.SetHandler(node.id, b.handlerFor(node))
		b.nodes = append(b.nodes, node)
	}
	net.SetPeers(sim.RandomPeers(s.Rand(), cfg.Net.Nodes, cfg.Net.PeerDegree))
	return b, nil
}

// Observer returns the ledger of the observer node (node 0), whose view
// defines the reported metrics.
func (b *BitcoinNet) Observer() *utxo.Ledger { return b.nodes[0].ledger }

// Ring returns the funded account identities.
func (b *BitcoinNet) Ring() *keys.Ring { return b.ring }

// Sim exposes the simulator (for scheduling custom events in tests).
func (b *BitcoinNet) Sim() *sim.Simulator { return b.sim }

// handlerFor returns the gossip handler of a node: first-seen blocks are
// processed and re-flooded to peers.
func (b *BitcoinNet) handlerFor(n *btcNode) sim.Handler {
	return func(from sim.NodeID, payload any, size int) {
		blk, ok := payload.(*chain.Block)
		if !ok {
			return
		}
		h := blk.Hash()
		if n.seen[h] {
			return
		}
		n.seen[h] = true
		b.reach[h]++
		if b.reach[h] == len(b.nodes) {
			b.metrics.Propagation.AddDuration(b.sim.Now() - b.created[h])
		}
		// Processing errors mean a byzantine block; honest sims don't
		// produce them, and a relay node still floods valid-looking data.
		_, _ = n.ledger.ProcessBlock(blk)
		b.net.SendToPeers(n.id, blk, blk.Size())
	}
}

// scheduleMining arms the next global block-discovery event.
func (b *BitcoinNet) scheduleMining() {
	interval := b.lottery.SampleInterval(b.sim.Rand(), b.difficulty)
	b.sim.After(interval, func() {
		winner := b.lottery.SampleWinner(b.sim.Rand())
		b.mineAt(winner)
		b.scheduleMining()
	})
}

// mineAt lets the winning node extend its own view — the stale-tip race
// that produces Fig. 4's soft forks when propagation lags.
func (b *BitcoinNet) mineAt(nodeIdx int) {
	node := b.nodes[nodeIdx]
	miner := keys.DeterministicN("btc-miner", nodeIdx).Address()
	blk := node.ledger.BuildBlock(miner, b.sim.Now())
	blk.Header.Difficulty = b.difficulty
	h := blk.Hash()
	b.created[h] = b.sim.Now()
	b.metrics.BlocksTotal++
	b.blockTimes = append(b.blockTimes, b.sim.Now())
	node.seen[h] = true
	b.reach[h] = 1
	_, _ = node.ledger.ProcessBlock(blk)
	b.net.SendToPeers(node.id, blk, blk.Size())
}

// SubmitPayment schedules a payment: the sender's home node builds the
// transaction from its current view and every node pools it. Returns
// false if scheduling parameters are invalid.
func (b *BitcoinNet) SubmitPayment(p workload.TimedPayment, fee uint64) {
	b.sim.At(p.At, func() {
		b.metrics.SubmittedTxs++
		home := b.nodes[p.From%len(b.nodes)]
		tx, err := utxo.NewPaymentAvoiding(
			home.ledger.UTXOSet(), home.ledger.Pool().Spends,
			b.ring.Pair(p.From), b.ring.Addr(p.To), p.Amount, fee)
		if err != nil {
			b.metrics.RejectedTxs++
			return
		}
		accepted := false
		for _, n := range b.nodes {
			if err := n.ledger.SubmitTx(tx); err == nil {
				accepted = true
			}
		}
		if !accepted {
			b.metrics.RejectedTxs++
		}
	})
}

// Run drives the simulation for the given span and returns the metrics.
func (b *BitcoinNet) Run(duration time.Duration) ChainMetrics {
	b.scheduleMining()
	b.sim.RunUntil(duration)
	return b.collect(duration)
}

// RunWithPayments submits the payment stream before running.
func (b *BitcoinNet) RunWithPayments(duration time.Duration, payments []workload.TimedPayment, fee uint64) ChainMetrics {
	for _, p := range payments {
		b.SubmitPayment(p, fee)
	}
	return b.Run(duration)
}

func (b *BitcoinNet) collect(duration time.Duration) ChainMetrics {
	obs := b.nodes[0].ledger
	st := obs.Store().Stats()
	m := &b.metrics
	m.Duration = duration
	m.BlocksOnMain = int(obs.Height())
	m.Orphaned = st.OrphanedTotal
	if m.BlocksTotal > 0 {
		m.OrphanRate = float64(m.Orphaned) / float64(m.BlocksTotal)
	}
	m.Reorgs = st.Reorgs
	m.MaxReorgDepth = st.MaxReorgDepth
	// Main-chain transactions minus one coinbase per block and minus the
	// genesis allocation tx.
	m.ConfirmedTxs = st.TxsOnMain - m.BlocksOnMain - 1
	if m.ConfirmedTxs < 0 {
		m.ConfirmedTxs = 0
	}
	if duration > 0 {
		m.TPS = float64(m.ConfirmedTxs) / duration.Seconds()
	}
	m.PendingAtEnd = obs.Pool().Len()
	m.LedgerBytes = obs.LedgerBytes()
	if len(b.blockTimes) > 1 {
		span := b.blockTimes[len(b.blockTimes)-1] - b.blockTimes[0]
		m.MeanBlockInterval = span / time.Duration(len(b.blockTimes)-1)
	}
	ns := b.net.Stats()
	m.MessagesSent = ns.MessagesSent
	m.BytesSent = ns.BytesSent
	return *m
}

// ErrNoMiners mirrors §III-A1: with no hash rate there is no throughput.
var ErrNoMiners = errors.New("netsim: no mining power configured")
