package netsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/keys"
	"repro/internal/pow"
	"repro/internal/sim"
	"repro/internal/utxo"
	"repro/internal/workload"
)

// BitcoinConfig parameterizes a Bitcoin-like PoW network.
type BitcoinConfig struct {
	Net NetParams
	// Ledger holds the chain parameters (block size, subsidy, interval).
	Ledger utxo.Params
	// HashRates gives each node's mining power (len ≤ Nodes; zero means
	// the node only relays). Empty defaults to equal power everywhere.
	HashRates []float64
	// BlockInterval is the target mean time between blocks; the lottery
	// difficulty is derived from it, so §VI-A's "block generation time
	// converges to a fixed value" holds by construction.
	BlockInterval time.Duration
	// Accounts is the number of funded user accounts.
	Accounts int
	// InitialBalance funds each account at genesis.
	InitialBalance uint64
	// BacklogCap bounds each node's orphan pool; oldest orphans are
	// evicted FIFO (and re-pulled when the sync manager is armed).
	// <= 0 keeps the chain package default.
	BacklogCap int
	// BacklogTTL evicts parked orphans by age (simulation time) rather
	// than count: any orphan older than the TTL is dropped on the next
	// block arrival, even while the pool is under BacklogCap. <= 0
	// disables age-based eviction.
	BacklogTTL time.Duration
}

func (c BitcoinConfig) withDefaults() BitcoinConfig {
	c.Net = c.Net.withDefaults()
	if c.BlockInterval <= 0 {
		c.BlockInterval = 10 * time.Minute
	}
	if c.Accounts <= 0 {
		c.Accounts = 64
	}
	if c.InitialBalance == 0 {
		c.InitialBalance = 1_000_000
	}
	if c.Ledger.MaxBlockBytes == 0 {
		c.Ledger = utxo.DefaultParams()
		// Keep difficulty static during short simulated spans.
		c.Ledger.RetargetWindow = 1 << 30
	}
	if len(c.HashRates) == 0 {
		c.HashRates = make([]float64, c.Net.Nodes)
		for i := range c.HashRates {
			c.HashRates[i] = 1
		}
	}
	return c
}

// BitcoinNet is a running Bitcoin-like network simulation. All gossip,
// production and measurement plumbing lives in the shared chainRuntime;
// this type owns only what is Bitcoin-specific: the UTXO ledgers, the
// PoW lottery and the payment-construction path.
type BitcoinNet struct {
	cfg     BitcoinConfig
	chain   *chainRuntime
	ledgers []*utxo.Ledger
	ring    *keys.Ring
	lottery *pow.Lottery

	difficulty float64
}

// NewBitcoin builds the network: every node holds an identical genesis
// (same allocation), miners share the PoW lottery, and blocks flood the
// gossip topology.
func NewBitcoin(cfg BitcoinConfig) (*BitcoinNet, error) {
	cfg = cfg.withDefaults()
	s, net := buildNetwork(cfg.Net)

	ring := keys.NewRing("btc-net", cfg.Accounts)
	alloc := make(map[keys.Address]uint64, cfg.Accounts)
	for i := 0; i < cfg.Accounts; i++ {
		alloc[ring.Addr(i)] = cfg.InitialBalance
	}

	miners := make([]pow.Miner, 0, len(cfg.HashRates))
	for i, hr := range cfg.HashRates {
		if hr > 0 {
			miners = append(miners, pow.Miner{ID: i, HashRate: hr})
		}
	}
	lottery, err := pow.NewLottery(miners)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}

	b := &BitcoinNet{
		cfg: cfg,
		// Main-chain transactions minus one coinbase per block and minus
		// the genesis allocation tx.
		chain:   newChainRuntime(s, net, cfg.Net.Nodes, func(txs, blocks int) int { return txs - blocks - 1 }),
		ring:    ring,
		lottery: lottery,
	}
	b.difficulty = lottery.DifficultyForInterval(cfg.BlockInterval)
	b.chain.metrics.Propagation.SetBudget(cfg.Net.SampleBudget)

	for i := 0; i < cfg.Net.Nodes; i++ {
		ledger, err := utxo.NewLedger(alloc, cfg.Ledger)
		if err != nil {
			return nil, fmt.Errorf("netsim: node %d: %w", i, err)
		}
		b.ledgers = append(b.ledgers, ledger)
		b.chain.addNode(ledger)
		if cfg.BacklogCap > 0 {
			ledger.Store().SetOrphanLimit(cfg.BacklogCap)
		}
		if cfg.BacklogTTL > 0 {
			ledger.Store().SetClock(s.Now)
			ledger.Store().SetOrphanTTL(cfg.BacklogTTL)
		}
	}
	net.SetPeers(sim.RandomPeers(s.Rand(), cfg.Net.Nodes, cfg.Net.PeerDegree))
	return b, nil
}

// Observer returns the ledger of the observer node (node 0), whose view
// defines the reported metrics.
func (b *BitcoinNet) Observer() *utxo.Ledger { return b.ledgers[0] }

// Ring returns the funded account identities.
func (b *BitcoinNet) Ring() *keys.Ring { return b.ring }

// Sim exposes the simulator (for scheduling custom events in tests).
func (b *BitcoinNet) Sim() *sim.Simulator { return b.chain.rt.sim }

// Net exposes the underlying network (partitions, stats, loss hooks).
func (b *BitcoinNet) Net() *sim.Network { return b.chain.rt.net }

// Runtime exposes the node runtime, the seam custom Behaviors install
// through.
func (b *BitcoinNet) Runtime() *NodeRuntime { return b.chain.rt }

// ScheduleColdStart detaches node at detachAt and rejoins it at
// rejoinAt, range-pulling the main chain from a live peer in windows of
// batch blocks (E20's bootstrap scenario). Arms sync recovery mode.
func (b *BitcoinNet) ScheduleColdStart(node int, detachAt, rejoinAt time.Duration, batch int) {
	b.chain.scheduleColdStart(node, detachAt, rejoinAt, batch)
}

// SyncStats reports the sync manager's pull/serve/eviction counters.
func (b *BitcoinNet) SyncStats() SyncStats { return b.chain.sync.stats }

// ColdSyncDone reports whether node's cold sync finished, and how long
// it took from rejoin to the final range window.
func (b *BitcoinNet) ColdSyncDone(node int) (time.Duration, bool) {
	return b.chain.sync.coldSyncDone(sim.NodeID(node))
}

// scheduleMining arms the next global block-discovery event.
func (b *BitcoinNet) scheduleMining() {
	s := b.chain.rt.sim
	interval := b.lottery.SampleInterval(s.Rand(), b.difficulty)
	s.After(interval, func() {
		winner := b.lottery.SampleWinner(s.Rand())
		miner := keys.DeterministicN("btc-miner", winner).Address()
		// An honest win while a selfish miner's 1-1 race is open mines on
		// the adversary's published block with probability γ (Eyal–Sirer);
		// otherwise — and always with γ = 0 — on the winner's own tip.
		b.chain.produceWithRace(winner, miner, b.difficulty)
		b.scheduleMining()
	})
}

// SubmitPayment schedules a payment: the sender's home node builds the
// transaction from its current view and every node pools it.
func (b *BitcoinNet) SubmitPayment(p workload.TimedPayment, fee uint64) {
	b.chain.scheduleSubmit(p.At, func() bool {
		home := b.ledgers[p.From%len(b.ledgers)]
		tx, err := utxo.NewPaymentAvoiding(
			home.UTXOSet(), home.Pool().Spends,
			b.ring.Pair(p.From), b.ring.Addr(p.To), p.Amount, fee)
		if err != nil {
			return false
		}
		accepted := false
		for _, l := range b.ledgers {
			if err := l.SubmitTx(tx); err == nil {
				accepted = true
			}
		}
		return accepted
	})
}

// Run drives the simulation for the given span and returns the metrics.
func (b *BitcoinNet) Run(duration time.Duration) ChainMetrics {
	b.scheduleMining()
	b.chain.rt.sim.RunUntil(duration)
	return b.chain.collect(duration)
}

// RunWithPayments submits the payment stream before running.
func (b *BitcoinNet) RunWithPayments(duration time.Duration, payments []workload.TimedPayment, fee uint64) ChainMetrics {
	for _, p := range payments {
		b.SubmitPayment(p, fee)
	}
	return b.Run(duration)
}

// MinerShare reports how many observer main-chain blocks node idx mined,
// against all attributed main-chain blocks — the selfish miner's revenue
// accounting (E17).
func (b *BitcoinNet) MinerShare(idx int) (mined, total int) { return b.chain.minerShare(idx) }

// EclipseReport compares a victim node's chain against the network
// consensus after a run (E16).
func (b *BitcoinNet) EclipseReport(victim int) EclipseReport { return b.chain.eclipseReport(victim) }

// ErrNoMiners mirrors §III-A1: with no hash rate there is no throughput.
var ErrNoMiners = errors.New("netsim: no mining power configured")

// The paradigm-seam registration (paradigm.go): Bitcoin is the paper's
// reference PoW blockchain. The seam build keeps a 30-second block
// interval so comparison runs settle inside short simulated spans.
func init() {
	registerParadigm(ParadigmSpec{
		Name: "bitcoin", Family: "blockchain", Order: 0,
		Build: func(np NetParams, o BuildOptions) (ParadigmNet, error) {
			net, err := NewBitcoin(BitcoinConfig{
				Net: np, BlockInterval: 30 * time.Second,
				Accounts: o.Accounts, BacklogCap: o.BacklogCap, BacklogTTL: o.BacklogTTL,
			})
			if err != nil {
				return nil, err
			}
			return bitcoinParadigm{net}, nil
		},
	})
}
