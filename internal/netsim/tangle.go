// The cooperative-tangle network simulation: the third ledger paradigm
// of the comparison. Unlike the chains (leaders win block production)
// and the block-lattice (owners append, representatives vote), the
// tangle has no privileged role at all — every payment is a vertex that
// approves two earlier vertices, and confirmation is cumulative
// coverage of later arrivals (internal/tangle). Gossip, cold start and
// adversarial behaviors run through the same NodeRuntime/Behavior seam
// and sync manager as the other three networks; tip selection is the
// tangle's own extension point on that seam (TipSelector), which is
// where the parasite-chain attack plugs in.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tangle"
	"repro/internal/workload"
)

// TangleConfig parameterizes a cooperative-tangle network.
type TangleConfig struct {
	Net NetParams
	// Accounts is the issuing population; account i is operated by node
	// i mod Nodes, and account 0 signs the genesis vertex.
	Accounts int
	// Supply is the value the genesis vertex carries.
	Supply uint64
	// ConfirmWeight is the cumulative-coverage threshold: a vertex is
	// confirmed once that many later vertices sit in its future cone
	// (default 4) — the cooperative analogue of §IV's depth rules.
	ConfirmWeight int
	// BacklogCap bounds the per-node parked-vertex buffer (<= 0 keeps
	// tangle.DefaultGapLimit). Evicted vertices unmark their dedup bit
	// and, when the sync manager is armed, schedule a re-pull.
	BacklogCap int
}

func (c TangleConfig) withDefaults() TangleConfig {
	c.Net = c.Net.withDefaults()
	if c.Accounts <= 0 {
		c.Accounts = 16
	}
	if c.Supply == 0 {
		c.Supply = 1 << 40
	}
	if c.ConfirmWeight <= 0 {
		c.ConfirmWeight = 4
	}
	return c
}

// TipSelector is the tangle's tip-selection hook on the Behavior seam:
// a node's behavior that also implements TipSelector overrides which
// two vertices a locally issued payment approves. Returning ok=false
// falls back to the honest uniform-tip rule. view is the issuing node's
// own replica — selectors read it, never mutate it.
type TipSelector interface {
	SelectTangleTips(node sim.NodeID, view *tangle.Tangle, rng *rand.Rand) (a, b hashx.Hash, ok bool)
}

// TangleMetrics summarizes a tangle run from the observer (node 0).
type TangleMetrics struct {
	Duration time.Duration
	// TransfersSubmitted counts payment requests; VerticesIssued the
	// vertices actually created and attached at their issuer.
	TransfersSubmitted int
	VerticesIssued     int
	// ConfirmedAtObserver counts vertices past the coverage threshold at
	// node 0 (genesis excluded — it is born confirmed).
	ConfirmedAtObserver int
	// PendingAtEnd is the observer's attached-but-unconfirmed count —
	// coverage the DAG's frontier has not yet accumulated.
	PendingAtEnd int
	// TipsAtEnd is the observer's unapproved-vertex count.
	TipsAtEnd int
	// VPS counts confirmed vertices per second at the observer — the
	// tangle's native throughput unit (one transaction per vertex).
	VPS float64
	// ConfirmLatency is the distribution of vertex-creation→coverage
	// delays at the observer, in seconds (§IV confirmation).
	ConfirmLatency metrics.Histogram
	MessagesSent   int
	BytesSent      int64
	// LedgerBytes is the observer's modeled storage footprint (§V).
	LedgerBytes int
}

// tangleNode is one full node: its replica of the DAG.
type tangleNode struct {
	id sim.NodeID
	tg *tangle.Tangle
}

// row returns the node's dedup-matrix row.
func (node *tangleNode) row() int { return int(node.id) }

// TangleNet is a running cooperative-tangle network simulation.
type TangleNet struct {
	cfg   TangleConfig
	rt    *NodeRuntime
	nodes []*tangleNode
	ring  *keys.Ring

	// Struct-of-arrays dedup state, shared shape with the other three
	// networks: dense vertex ids plus one pooled per-node bit matrix.
	vertexIDs *dex[hashx.Hash]
	seen      *bitRows

	created     map[hashx.Hash]time.Duration // vertex hash -> creation time
	confirmedAt map[hashx.Hash]bool          // observer confirmations seen
	issuedBy    map[hashx.Hash]sim.NodeID    // vertex hash -> issuing node
	seqs        []uint64                     // per-account issuer counters
	metrics     TangleMetrics

	sync *syncManager
}

// NewTangle builds the network: every node starts from the identical
// genesis vertex signed by account 0.
func NewTangle(cfg TangleConfig) (*TangleNet, error) {
	cfg = cfg.withDefaults()
	s, net := buildNetwork(cfg.Net)
	ring := keys.NewRing("tangle-net", cfg.Accounts)
	genesis := tangle.Genesis(ring.Pair(0), cfg.Supply)

	n := &TangleNet{
		cfg:         cfg,
		rt:          newNodeRuntime(s, net),
		ring:        ring,
		vertexIDs:   newDex[hashx.Hash](256),
		seen:        newBitRows(cfg.Net.Nodes, 256),
		created:     make(map[hashx.Hash]time.Duration),
		confirmedAt: make(map[hashx.Hash]bool),
		issuedBy:    make(map[hashx.Hash]sim.NodeID),
		seqs:        make([]uint64, cfg.Accounts),
	}
	n.sync = newSyncManager(n.rt, func(id sim.NodeID, h hashx.Hash) bool {
		return n.nodes[id].tg.Has(h)
	})
	n.metrics.ConfirmLatency.SetBudget(cfg.Net.SampleBudget)

	for i := 0; i < cfg.Net.Nodes; i++ {
		tg, err := tangle.New(genesis, cfg.ConfirmWeight)
		if err != nil {
			return nil, fmt.Errorf("netsim: %w", err)
		}
		node := &tangleNode{tg: tg}
		node.id = n.rt.AddNode(n.handlerFor(node))
		n.nodes = append(n.nodes, node)
		if cfg.BacklogCap > 0 {
			tg.SetGapLimit(cfg.BacklogCap)
		}
		tg.SetGapEvicted(n.gapEvictedHook(node))
	}
	net.SetPeers(sim.RandomPeers(s.Rand(), cfg.Net.Nodes, cfg.Net.PeerDegree))
	return n, nil
}

// Observer returns node 0's replica.
func (n *TangleNet) Observer() *tangle.Tangle { return n.nodes[0].tg }

// Ring returns the account identities.
func (n *TangleNet) Ring() *keys.Ring { return n.ring }

// Sim returns the underlying simulator.
func (n *TangleNet) Sim() *sim.Simulator { return n.rt.sim }

// Net returns the underlying network.
func (n *TangleNet) Net() *sim.Network { return n.rt.net }

// Runtime returns the node runtime, the behavior-installation surface.
func (n *TangleNet) Runtime() *NodeRuntime { return n.rt }

// SyncStats returns the sync manager's pull and backlog counters.
func (n *TangleNet) SyncStats() SyncStats { return n.sync.stats }

// EnableSyncRecovery arms the sync manager with re-targeting and
// re-arming, so gap pulls actually recover under churn.
func (n *TangleNet) EnableSyncRecovery() { n.sync.armRecovery() }

// ScheduleColdStart detaches a node at detachAt and rejoins it at
// rejoinAt through the sync manager: the node pulls the attachment-
// ordered vertex stream from a live peer in windows of batch vertices
// (E20's bootstrap scenario).
func (n *TangleNet) ScheduleColdStart(node int, detachAt, rejoinAt time.Duration, batch int) {
	id := n.nodes[node].id
	n.rt.sim.At(detachAt, func() { n.rt.net.Detach(id) })
	n.rt.sim.At(rejoinAt, func() {
		n.rt.net.Attach(id)
		target := n.sync.rotateTarget(id, id)
		if target == id {
			return // no live peer to sync from
		}
		n.sync.StartColdSync(id, target, batch)
	})
}

// ColdSyncDone reports how long the node's cold-start catch-up took to
// drain the server's history stream; ok is false while it is running.
func (n *TangleNet) ColdSyncDone(node int) (time.Duration, bool) {
	return n.sync.coldSyncDone(n.nodes[node].id)
}

// handlerFor dispatches gossip messages.
func (n *TangleNet) handlerFor(node *tangleNode) sim.Handler {
	return func(from sim.NodeID, payload any, size int) {
		switch msg := payload.(type) {
		case *tangle.Vertex:
			n.onVertex(node, from, msg)
		case *blockRequest:
			n.onVertexRequest(node, from, msg)
		case *rangeRequest:
			n.onRangeRequest(node, from, msg)
		case *rangeReply:
			n.sync.onRangeReply(node.id, msg)
		}
	}
}

// onVertex processes a received vertex: first-seen dedup, attach, and
// re-flood. Gapped vertices park inside the replica and still relay so
// peers ahead of this node catch up; the missing parent is pulled when
// the sync manager is armed.
func (n *TangleNet) onVertex(node *tangleNode, from sim.NodeID, v *tangle.Vertex) {
	h := v.Hash()
	if n.seen.testSet(node.row(), n.vertexIDs.id(h)) {
		return
	}
	res := node.tg.Attach(v)
	switch res.Status {
	case tangle.Rejected:
		return // do not relay invalid vertices
	case tangle.GapParent:
		n.sync.Pull(node.id, res.Missing, from)
	case tangle.Accepted:
		n.noteConfirmed(node, res.Confirmed)
	}
	n.rt.Relay(node.id, v, v.EncodedSize())
}

// onVertexRequest serves a vertex the requester is missing (gap repair).
func (n *TangleNet) onVertexRequest(node *tangleNode, from sim.NodeID, req *blockRequest) {
	if v, ok := node.tg.Get(req.Hash); ok {
		n.sync.stats.BlocksServed++
		n.sync.stats.BytesServed += int64(v.EncodedSize())
		n.rt.Unicast(node.id, from, v, v.EncodedSize())
	}
}

// onRangeRequest serves one window of this node's canonical history —
// the attachment-ordered vertex stream, a topological order by
// construction — to a cold-syncing puller.
func (n *TangleNet) onRangeRequest(node *tangleNode, from sim.NodeID, req *rangeRequest) {
	vertices := node.tg.AllVertices()
	n.sync.serveRange(node.id, from, req, len(vertices), func(i int) (any, int) {
		return vertices[i], vertices[i].EncodedSize()
	})
}

// gapEvictedHook wires one node's parked-vertex eviction into the sync
// manager, mirroring the lattice gap buffer: the evicted vertex's dedup
// bit is cleared so gossip (or a served pull) can re-deliver it, and
// when the manager is armed a deferred re-pull fetches it back.
func (n *TangleNet) gapEvictedHook(node *tangleNode) func(*tangle.Vertex) {
	return func(v *tangle.Vertex) {
		n.sync.stats.BacklogEvicted++
		h := v.Hash()
		n.seen.clear(node.row(), n.vertexIDs.id(h))
		if !n.sync.armed {
			return
		}
		n.rt.sim.After(gapRepairDelay, func() {
			if tgt := n.sync.rotateTarget(node.id, node.id); tgt != node.id {
				n.sync.Pull(node.id, h, tgt)
			}
		})
	}
}

// noteConfirmed records observer-side confirmations.
func (n *TangleNet) noteConfirmed(node *tangleNode, confirmed []hashx.Hash) {
	if node != n.nodes[0] {
		return
	}
	for _, h := range confirmed {
		if n.confirmedAt[h] {
			continue
		}
		n.confirmedAt[h] = true
		n.metrics.ConfirmedAtObserver++
		if created, ok := n.created[h]; ok {
			n.metrics.ConfirmLatency.AddDuration(n.rt.sim.Now() - created)
		}
	}
}

// selectTips picks the two parents for a vertex node is about to issue:
// the node's TipSelector behavior when one is installed and engaged,
// the honest uniform-tip rule otherwise.
func (n *TangleNet) selectTips(node *tangleNode) (hashx.Hash, hashx.Hash) {
	if sel, ok := n.rt.BehaviorOf(node.id).(TipSelector); ok {
		if a, b, engaged := sel.SelectTangleTips(node.id, node.tg, n.rt.sim.Rand()); engaged {
			return a, b
		}
	}
	return node.tg.SelectTips(n.rt.sim.Rand())
}

// publish records, self-attaches and floods a locally created vertex —
// unless the issuer's behavior withholds it (the parasite chain keeps
// its sub-tangle private until release).
func (n *TangleNet) publish(node *tangleNode, v *tangle.Vertex) {
	h := v.Hash()
	n.created[h] = n.rt.sim.Now()
	n.issuedBy[h] = node.id
	n.seen.testSet(node.row(), n.vertexIDs.id(h))
	res := node.tg.Attach(v)
	if res.Status == tangle.Accepted {
		n.noteConfirmed(node, res.Confirmed)
	}
	if n.rt.produceAllowed(node.id, v) {
		n.rt.Relay(node.id, v, v.EncodedSize())
	}
}

// SubmitTransfer schedules a payment: at p.At the sender's owner node
// selects two tips from its own view, issues the signed vertex and
// floods it.
func (n *TangleNet) SubmitTransfer(p workload.TimedPayment) {
	n.rt.sim.At(p.At, func() {
		n.metrics.TransfersSubmitted++
		if p.From < 0 || p.From >= n.cfg.Accounts {
			return
		}
		node := n.nodes[p.From%n.cfg.Net.Nodes]
		pa, pb := n.selectTips(node)
		n.seqs[p.From]++
		v := tangle.NewVertex(n.ring.Pair(p.From), n.seqs[p.From], pa, pb, n.ring.Addr(p.To%n.cfg.Accounts), p.Amount)
		n.metrics.VerticesIssued++
		n.publish(node, v)
	})
}

// Run drives the simulation up to the cutoff and returns the metrics.
func (n *TangleNet) Run(duration time.Duration) TangleMetrics {
	n.rt.sim.RunUntil(duration)
	return n.collect(duration)
}

// RunWithTransfers submits the stream then runs.
func (n *TangleNet) RunWithTransfers(duration time.Duration, transfers []workload.TimedPayment) TangleMetrics {
	for _, p := range transfers {
		n.SubmitTransfer(p)
	}
	return n.Run(duration)
}

func (n *TangleNet) collect(duration time.Duration) TangleMetrics {
	obs := n.nodes[0]
	m := &n.metrics
	m.Duration = duration
	// Genesis is born confirmed and excluded from the confirmed count.
	m.PendingAtEnd = obs.tg.VertexCount() - obs.tg.ConfirmedCount()
	m.TipsAtEnd = obs.tg.TipCount()
	if duration > 0 {
		m.VPS = float64(m.ConfirmedAtObserver) / duration.Seconds()
	}
	m.LedgerBytes = obs.tg.LedgerBytes()
	ns := n.rt.net.Stats()
	m.MessagesSent = ns.MessagesSent
	m.BytesSent = ns.BytesSent
	return *m
}

// ConfirmedIssuedBy counts confirmed observer-side vertices that the
// given node issued — the adversary-success measure E21's parasite rows
// report.
func (n *TangleNet) ConfirmedIssuedBy(node int) int {
	count := 0
	for h := range n.confirmedAt {
		if issuer, ok := n.issuedBy[h]; ok && issuer == sim.NodeID(node) {
			count++
		}
	}
	return count
}

// ParasiteChainBehavior grows a hidden sub-tangle: while hiding, the
// attacker's issued vertices are withheld from the network (OnProduce)
// and chained onto each other instead of the honest tips — the first
// hidden vertex anchors into the attacker's current honest view, every
// later one approves its predecessor twice. When the chain reaches
// ReleaseDepth the whole sub-tangle floods at once. Under pure
// cumulative-weight confirmation the released chain carries its own
// coverage — each hidden vertex already sits in the future cone of its
// ancestors — which is exactly the weakness parasite chains exploit and
// the reason production tangles bias tip selection instead of counting
// weight alone (E21's adversary rows measure it).
type ParasiteChainBehavior struct {
	HonestBehavior
	net  *TangleNet
	node sim.NodeID
	// ReleaseDepth is the hidden-chain length that triggers release.
	ReleaseDepth int

	hidden   []*tangle.Vertex
	lastTip  hashx.Hash
	released bool
}

// Withheld counts hidden vertices not yet released.
func (b *ParasiteChainBehavior) Withheld() int {
	if b.released {
		return 0
	}
	return len(b.hidden)
}

// Released reports whether the sub-tangle has been published.
func (b *ParasiteChainBehavior) Released() bool { return b.released }

// SelectTangleTips chains hidden vertices onto each other; the first
// one anchors at the honest tips, and after release the attacker
// behaves honestly again.
func (b *ParasiteChainBehavior) SelectTangleTips(_ sim.NodeID, view *tangle.Tangle, rng *rand.Rand) (hashx.Hash, hashx.Hash, bool) {
	if b.released {
		return hashx.Zero, hashx.Zero, false
	}
	if len(b.hidden) == 0 {
		a, c := view.SelectTips(rng)
		return a, c, true
	}
	return b.lastTip, b.lastTip, true
}

// OnProduce withholds the vertex while the chain is hiding, releasing
// the whole sub-tangle when it reaches ReleaseDepth.
func (b *ParasiteChainBehavior) OnProduce(_ sim.NodeID, block any) bool {
	if b.released {
		return true
	}
	v, ok := block.(*tangle.Vertex)
	if !ok {
		return true
	}
	b.hidden = append(b.hidden, v)
	b.lastTip = v.Hash()
	if len(b.hidden) >= b.ReleaseDepth {
		// Defer the flood one event so the release happens outside the
		// issuing call path, mirroring the selfish miner's release.
		b.released = true
		release := b.hidden
		b.hidden = nil
		b.net.rt.sim.After(0, func() {
			node := b.net.nodes[b.node]
			for _, hv := range release {
				b.net.rt.Relay(node.id, hv, hv.EncodedSize())
			}
		})
	}
	return false
}

// InstallParasiteChain installs the parasite-chain adversary on a node:
// payments issued by that node grow the hidden sub-tangle until it is
// releaseDepth vertices long, then flood at once.
func (n *TangleNet) InstallParasiteChain(node, releaseDepth int) *ParasiteChainBehavior {
	if releaseDepth < 1 {
		releaseDepth = 1
	}
	b := &ParasiteChainBehavior{net: n, node: n.nodes[node].id, ReleaseDepth: releaseDepth}
	n.rt.SetBehavior(n.nodes[node].id, b)
	return b
}

// The paradigm-seam registration (paradigm.go): the cooperative tangle
// is the third ledger of the comparison — leaderless settlement with
// coverage-based confirmation.
func init() {
	registerParadigm(ParadigmSpec{
		Name: "tangle", Family: "dag", Order: 3,
		Build: func(np NetParams, o BuildOptions) (ParadigmNet, error) {
			net, err := NewTangle(TangleConfig{
				Net: np, Accounts: o.Accounts, BacklogCap: o.BacklogCap,
			})
			if err != nil {
				return nil, err
			}
			return tangleParadigm{net}, nil
		},
	})
}
