// Executed double-spend scenarios (E18): where E16/E17 measure an
// adversary's EXPOSURE — victim lag, withheld weight — these drivers
// carry the attack through to a wrong settlement and report whether it
// actually happened. Two combined-fault shapes on each ledger:
//
//   - eclipse + double spend: the victim's peer table is captured, the
//     attacker feeds it a payment the rest of the network never sees,
//     and the honest chain is released on heal;
//   - partition-hidden fork: the conflicting spends mature on opposite
//     sides of a network split, and the heal exchange makes one side
//     discover it has been robbed.
//
// Both run on the PR-4 Behavior seam and the PR-3 FaultSchedule: the
// protocol code never branches on the attack, and a plan that is never
// scheduled leaves the pipeline byte-identical to the honest run.
package netsim

import (
	"time"

	"repro/internal/hashx"
	"repro/internal/lattice"
	"repro/internal/sim"
	"repro/internal/utxo"
)

// ChainDoubleSpendPlan schedules an executed double spend on a chain
// network. At the At instant the attacker signs two conflicting payments
// from the same deterministic input selection: the honest one (to the merchant)
// enters the pools of the victim's side only, the rival (back to an
// attacker account) enters everyone else's. At HealAt the attack window
// closes: the victim's confirmation depth of the honest payment is
// recorded and, in eclipse mode, the captured links are restored and the
// honest chain released (the catch-up exchange churn rejoins use).
type ChainDoubleSpendPlan struct {
	// Victim is the merchant's node — the node whose acceptance and
	// later revert the verdict is about.
	Victim int
	// HonestSide lists the nodes that receive the honest payment; every
	// other node receives the rival. Nil means the victim alone (the
	// eclipse shape). The partition shape lists the victim's group.
	HonestSide []int
	// Attacker, Merchant and Rival are account indexes: the spender, the
	// honest payee, and the attacker-controlled rival payee. Keep them
	// outside the background workload so the conflicting pair stays
	// valid on every node's view.
	Attacker, Merchant, Rival int
	Amount, Fee               uint64
	// Confirmations is the depth the victim requires before accepting
	// the payment (§IV-A's merchant rule).
	Confirmations int
	At, HealAt    time.Duration
	// EclipseFrac > 0 captures that share of the victim's links during
	// [At, HealAt). Zero leaves the links alone — the partition shape
	// schedules its split through FaultSchedule instead.
	EclipseFrac float64
}

// ChainDoubleSpendHandle reports what a scheduled chain double spend
// actually did; fields fill as the events fire.
type ChainDoubleSpendHandle struct {
	// Injected is false if the conflicting pair could not be built.
	Injected bool
	// HonestTx and RivalTx are the conflicting transaction ids.
	HonestTx, RivalTx hashx.Hash
	// AcceptedConf is the victim's confirmation depth of the honest
	// payment at the heal instant — what the merchant trusted.
	AcceptedConf int

	victim, confirmations int
}

// ChainDoubleSpendOutcome is the verdict read after the run.
type ChainDoubleSpendOutcome struct {
	Injected bool
	// Accepted: the victim saw the required confirmation depth while the
	// attack window was open.
	Accepted bool
	// Reverted: the payment was accepted and is no longer on the
	// victim's main chain — the double spend EXECUTED.
	Reverted bool
	// HonestConfirmed and RivalConfirmed report which spend sits on the
	// victim's main chain at the end.
	HonestConfirmed, RivalConfirmed bool
}

// conflictingTxs reports whether the two transactions spend at least one
// common output — the guarantee that mining one invalidates the other.
func conflictingTxs(a, b *utxo.Tx) bool {
	spent := make(map[utxo.Outpoint]bool, len(a.Ins))
	for _, in := range a.Ins {
		spent[in.Prev] = true
	}
	for _, in := range b.Ins {
		if spent[in.Prev] {
			return true
		}
	}
	return false
}

// ScheduleDoubleSpend arms the executed chain double spend (E18). The
// two payments are built against the victim's UTXO view with identical
// amount and fee, so the deterministic largest-first input selection
// picks the same outputs for both — a guaranteed conflict.
func (b *BitcoinNet) ScheduleDoubleSpend(p ChainDoubleSpendPlan) *ChainDoubleSpendHandle {
	h := &ChainDoubleSpendHandle{victim: p.Victim, confirmations: p.Confirmations}
	s := b.chain.rt.sim
	var ecl *EclipseBehavior
	s.At(p.At, func() {
		view := b.ledgers[p.Victim].UTXOSet()
		honest, err := utxo.NewPayment(view, b.ring.Pair(p.Attacker), b.ring.Addr(p.Merchant), p.Amount, p.Fee)
		if err != nil {
			return
		}
		rival, err := utxo.NewPayment(view, b.ring.Pair(p.Attacker), b.ring.Addr(p.Rival), p.Amount, p.Fee)
		if err != nil || !conflictingTxs(honest, rival) {
			return
		}
		h.Injected = true
		h.HonestTx, h.RivalTx = honest.ID(), rival.ID()
		if p.EclipseFrac > 0 {
			ecl = b.chain.rt.InstallEclipse(sim.NodeID(p.Victim), p.EclipseFrac)
		}
		side := map[int]bool{p.Victim: true}
		for _, n := range p.HonestSide {
			side[n] = true
		}
		for i, l := range b.ledgers {
			if side[i] {
				_ = l.SubmitTx(honest)
			} else {
				_ = l.SubmitTx(rival)
			}
		}
	})
	s.At(p.HealAt, func() {
		if !h.Injected {
			return
		}
		h.AcceptedConf = b.ledgers[p.Victim].Confirmations(h.HonestTx)
		if ecl != nil {
			b.chain.rt.LiftEclipse(ecl)
			// Release the honest chain on heal: the victim re-floods its
			// private view (its branch may still win on its own merits)
			// and a live peer serves the canonical history — the same
			// bidirectional exchange a rejoining churn node runs.
			b.chain.broadcastMainChain(p.Victim)
			if live := firstAttachedNode(b.chain.rt.net, len(b.ledgers), p.Victim); live >= 0 {
				b.chain.sendMainChain(live, p.Victim)
			}
		}
	})
	return h
}

// DoubleSpendVerdict reads the victim's final state for a scheduled
// chain double spend. Call after the run completes.
func (b *BitcoinNet) DoubleSpendVerdict(h *ChainDoubleSpendHandle) ChainDoubleSpendOutcome {
	out := ChainDoubleSpendOutcome{Injected: h.Injected}
	if !h.Injected {
		return out
	}
	victim := b.ledgers[h.victim]
	out.Accepted = h.AcceptedConf >= h.confirmations
	out.HonestConfirmed = victim.Confirmations(h.HonestTx) > 0
	out.RivalConfirmed = victim.Confirmations(h.RivalTx) > 0
	out.Reverted = out.Accepted && !out.HonestConfirmed
	return out
}

// suppressHashes drops specific inbound blocks by hash. It is installed
// on the eclipse feeder node so the pay-to-victim send it fabricates
// never enters its own lattice — an honest relay there would leak the
// hidden spend out of the eclipse.
type suppressHashes struct {
	HonestBehavior
	drop map[hashx.Hash]bool
}

// OnInbound drops the suppressed lattice blocks.
func (b *suppressHashes) OnInbound(_, _ sim.NodeID, payload any, _ int) bool {
	if blk, ok := payload.(*lattice.Block); ok {
		return !b.drop[blk.Hash()]
	}
	return true
}

// LatticeDoubleSpendPlan schedules an executed double spend on a Nano
// network. The attacker signs two conflicting sends from the same
// predecessor: the honest one (to the victim node's merchant account) is
// delivered to the victim only, the rival enters the honest side and
// wins its quorum there. On heal the fork becomes visible and the
// representatives' fork election decides which send survives.
type LatticeDoubleSpendPlan struct {
	// Victim is the merchant's owner node.
	Victim int
	// Attacker, Merchant and Rival are account indexes; the Merchant
	// must be owned by the Victim node so the receive issues there. Keep
	// all three outside the background workload.
	Attacker, Merchant, Rival int
	Amount                    uint64
	// Entry is the honest-side node the rival send enters at.
	Entry int
	// HonestFrom is the node that delivers the honest send to the
	// victim; <= 0 defaults to the attacker's owner node. The partition
	// shape must pick a node inside the victim's group — a cross-split
	// unicast is dropped by the partition itself.
	HonestFrom int
	At, HealAt time.Duration
	// Eclipse, when true, fully captures the victim's peer table with
	// the attacker's owner node as the feeder for the whole window, and
	// runs the lattice exchange on heal. When false the caller hides
	// the fork with a FaultSchedule partition instead.
	Eclipse bool
}

// LatticeDoubleSpendHandle reports what the scheduled lattice double
// spend actually did; fields fill as the events fire.
type LatticeDoubleSpendHandle struct {
	Injected bool
	// Honest and Rival are the conflicting send hashes; Root is their
	// shared predecessor (the fork election's subject).
	Honest, Rival, Root hashx.Hash
	// AcceptedAtHeal: the honest send was attached at the victim when
	// the window closed. SettledAtHeal: the merchant had issued its
	// receive by then (the zero-confirmation merchant's "payment done").
	// ConfirmedAtHeal: vote quorum was reached at the victim inside the
	// window — Nano's defense predicts this stays false, because the
	// eclipsed victim cannot hear the representatives.
	AcceptedAtHeal, SettledAtHeal, ConfirmedAtHeal bool

	victim int
}

// LatticeDoubleSpendOutcome is the verdict read after the run.
type LatticeDoubleSpendOutcome struct {
	Injected bool
	// Accepted and Settled mirror the handle's heal-time observations.
	Accepted, Settled bool
	// ConfirmedAtVictim: quorum at the victim inside the window.
	ConfirmedAtVictim bool
	// Reverted: the send the victim accepted — attached at heal, or
	// settled by the merchant's receive inside the window (the receive
	// implies it was attached, even if a leaked rival rolled it back
	// before the heal instant) — is gone from the victim's lattice at
	// the end. The zero-confirmation merchant shipped against a payment
	// that no longer exists: the double spend EXECUTED.
	Reverted bool
	// HonestFinal and RivalFinal report which send sits on the victim's
	// lattice at the end; RivalCemented whether the rival is
	// irreversibly cemented there; Resolved whether the fork election
	// completed at the victim.
	HonestFinal, RivalFinal bool
	RivalCemented           bool
	Resolved                bool
}

// ScheduleExecutedDoubleSpend arms the executed lattice double spend
// (E18). Both sends are crafted offline from the attacker's current head
// as seen by the victim — the attacker's account is quiescent, so every
// replica agrees on that head — and injected by unicast, never processed
// at the attacker's own node first.
func (n *NanoNet) ScheduleExecutedDoubleSpend(p LatticeDoubleSpendPlan) *LatticeDoubleSpendHandle {
	h := &LatticeDoubleSpendHandle{victim: p.Victim}
	feederIdx := n.ownerOf(p.Attacker)
	var (
		ecl        *EclipseBehavior
		prevFeeder Behavior
	)
	n.rt.sim.At(p.At, func() {
		victim := n.nodes[p.Victim]
		head, ok := victim.lat.HeadBlock(n.ring.Addr(p.Attacker))
		if !ok || head.Balance < p.Amount {
			return
		}
		prev := head.Hash()
		honest, err := lattice.NewForkSend(n.ring.Pair(p.Attacker), prev, head.Balance,
			n.ring.Addr(p.Merchant), p.Amount, head.Representative, n.cfg.WorkBits)
		if err != nil {
			return
		}
		rival, err := lattice.NewForkSend(n.ring.Pair(p.Attacker), prev, head.Balance,
			n.ring.Addr(p.Rival), p.Amount, head.Representative, n.cfg.WorkBits)
		if err != nil {
			return
		}
		h.Injected = true
		h.Honest, h.Rival, h.Root = honest.Hash(), rival.Hash(), prev
		feeder := n.nodes[feederIdx]
		if p.Eclipse {
			ecl = n.rt.InstallEclipseFeeder(victim.id, 1, feeder.id)
			prevFeeder = n.rt.BehaviorOf(feeder.id)
			n.rt.SetBehavior(feeder.id, &suppressHashes{drop: map[hashx.Hash]bool{h.Honest: true}})
		}
		honestFrom := feeder.id
		if p.HonestFrom > 0 && p.HonestFrom < len(n.nodes) {
			honestFrom = n.nodes[p.HonestFrom].id
		}
		entryIdx := p.Entry
		if entryIdx <= 0 || entryIdx >= len(n.nodes) {
			entryIdx = (feederIdx + len(n.nodes)/2) % len(n.nodes)
		}
		n.created[h.Honest] = n.rt.sim.Now()
		n.created[h.Rival] = n.rt.sim.Now()
		n.rt.Unicast(honestFrom, victim.id, honest, honest.EncodedSize())
		n.rt.Unicast(feeder.id, n.nodes[entryIdx].id, rival, rival.EncodedSize())
	})
	n.rt.sim.At(p.HealAt, func() {
		if !h.Injected {
			return
		}
		victim := n.nodes[p.Victim]
		_, h.AcceptedAtHeal = victim.lat.Get(h.Honest)
		h.SettledAtHeal = victim.issuedReceive[h.Honest]
		h.ConfirmedAtHeal = victim.tracker.Confirmed(h.Honest)
		if ecl != nil {
			n.rt.LiftEclipse(ecl)
			// Restore (not null) the feeder's pre-attack behavior, so the
			// scenario composes with other installed adversaries.
			n.rt.SetBehavior(n.nodes[feederIdx].id, prevFeeder)
			// Release the honest view both ways: the victim's hidden
			// spend spreads (opening fork elections at every
			// representative) and a live peer serves the canonical
			// lattice — the churn-rejoin exchange.
			if live := firstAttachedNode(n.rt.net, len(n.nodes), p.Victim); live >= 0 {
				n.sendLattice(p.Victim, live)
				n.sendLattice(live, p.Victim)
			}
		}
		// Representatives answer the now-visible fork with their decided
		// votes (the confirm-ack): a side that confirmed the rival during
		// the window never re-votes through the open-election path, and
		// the victim's fork election would starve without these.
		for _, node := range n.nodes {
			n.resendDecidedVotes(node)
		}
	})
	return h
}

// ChainDoubleSpendScenario is the canonical E18 chain scenario: a
// 6-node Bitcoin network, victim node 0 under a full eclipse (or split
// into a {0, 1} minority), a 2-confirmation merchant rule, and a heal
// at 135 s that releases the honest chain. It returns the network
// config, the plan to schedule, the partition schedule (nil for the
// eclipse shape) and the run horizon. Core's E18 rows and the netsim
// regression tests both build from this one constructor, so tuning the
// scenario cannot silently diverge the experiment from the tests that
// pin it. Apply the schedule BEFORE arming the plan: at the shared heal
// instant the partition must lift first.
func ChainDoubleSpendScenario(seed int64, partition bool) (BitcoinConfig, ChainDoubleSpendPlan, *FaultSchedule, time.Duration) {
	cfg := BitcoinConfig{
		Net: NetParams{
			Nodes: 6, PeerDegree: 3, Seed: seed,
			MinLatency: 20 * time.Millisecond, MaxLatency: 120 * time.Millisecond,
		},
		BlockInterval: 5 * time.Second, Accounts: 8, InitialBalance: 1 << 20,
	}
	plan := ChainDoubleSpendPlan{
		Victim: 0, Attacker: 7, Merchant: 6, Rival: 5,
		Amount: 1000, Fee: 5, Confirmations: 2,
		At: 10 * time.Second, HealAt: 135 * time.Second,
	}
	var fs *FaultSchedule
	if partition {
		plan.HonestSide = []int{0, 1}
		fs = &FaultSchedule{Partitions: []PartitionWindow{{
			At: 5 * time.Second, HealAt: 135 * time.Second,
			Groups: map[sim.NodeID]int{0: 1, 1: 1},
		}}}
	} else {
		plan.EclipseFrac = 1
	}
	return cfg, plan, fs, 170 * time.Second
}

// LatticeDoubleSpendScenario is the canonical E18 lattice scenario: a
// 10-node, 10-representative Nano network, victim node 0 fed a
// conflicting send under a full feeder eclipse (or a {0, 1} minority
// split), heal at 6 s. Same contract as ChainDoubleSpendScenario.
func LatticeDoubleSpendScenario(seed int64, partition bool) (NanoConfig, LatticeDoubleSpendPlan, *FaultSchedule, time.Duration) {
	cfg := NanoConfig{
		Net: NetParams{
			Nodes: 10, PeerDegree: 3, Seed: seed,
			MinLatency: 10 * time.Millisecond, MaxLatency: 60 * time.Millisecond,
		},
		Accounts: 40, Reps: 10,
	}
	plan := LatticeDoubleSpendPlan{
		Victim: 0, Attacker: 39, Merchant: 30, Rival: 28,
		Amount: 3, Entry: 5,
		At: 2 * time.Second, HealAt: 6 * time.Second,
	}
	var fs *FaultSchedule
	if partition {
		plan.HonestFrom = 1
		fs = &FaultSchedule{Partitions: []PartitionWindow{{
			At: time.Second, HealAt: 6 * time.Second,
			Groups: map[sim.NodeID]int{0: 1, 1: 1},
		}}}
	} else {
		plan.Eclipse = true
	}
	return cfg, plan, fs, 10 * time.Second
}

// ExecutedOutcome reads the victim's final state for a scheduled lattice
// double spend. Call after the run completes.
func (n *NanoNet) ExecutedOutcome(h *LatticeDoubleSpendHandle) LatticeDoubleSpendOutcome {
	out := LatticeDoubleSpendOutcome{Injected: h.Injected}
	if !h.Injected {
		return out
	}
	victim := n.nodes[h.victim]
	out.Accepted = h.AcceptedAtHeal
	out.Settled = h.SettledAtHeal
	out.ConfirmedAtVictim = h.ConfirmedAtHeal
	_, out.HonestFinal = victim.lat.Get(h.Honest)
	_, out.RivalFinal = victim.lat.Get(h.Rival)
	out.RivalCemented = victim.tracker.IsCemented(h.Rival)
	out.Resolved = victim.resolvedForks[forkRootOf(h.Root)]
	out.Reverted = (h.AcceptedAtHeal || h.SettledAtHeal) && !out.HonestFinal
	return out
}
