package netsim

import (
	"testing"
)

// refGenSeen is the original per-node two-map dedup scheme, kept as the
// executable specification the bit-matrix genSeen is fuzzed against.
type refGenSeen struct {
	cur, prev map[int32]bool
	limit     int
}

func newRefGenSeen(limit int) *refGenSeen {
	return &refGenSeen{cur: make(map[int32]bool), prev: make(map[int32]bool), limit: limit}
}

func (r *refGenSeen) seen(id int32) bool { return r.cur[id] || r.prev[id] }

func (r *refGenSeen) mark(id int32) {
	if len(r.cur) >= r.limit {
		r.prev = r.cur
		r.cur = make(map[int32]bool)
	}
	r.cur[id] = true
}

func (r *refGenSeen) unmark(id int32) {
	delete(r.cur, id)
	delete(r.prev, id)
}

// FuzzGenSeen drives the bit-matrix genSeen and the two-map reference
// with the same operation stream — mark, unmark, query, across several
// nodes and a tiny rotation limit so generation rotations are frequent —
// and fails on the first divergent membership answer.
func FuzzGenSeen(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xFF, 0x80, 7, 7, 7})
	f.Add([]byte{1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const nodes, limit = 3, 4
		g := newGenSeen(nodes, limit, 8)
		refs := make([]*refGenSeen, nodes)
		for i := range refs {
			refs[i] = newRefGenSeen(limit)
		}
		for i := 0; i+1 < len(ops); i += 2 {
			node := int(ops[i]>>6) % nodes
			id := int32(ops[i+1])
			switch ops[i] & 3 {
			case 0, 1: // mark dominates, like gossip traffic
				// onVote-style guard: only unseen ids are marked.
				if !g.seen(node, id) {
					g.mark(node, id)
				}
				if !refs[node].seen(id) {
					refs[node].mark(id)
				}
			case 2:
				g.unmark(node, id)
				refs[node].unmark(id)
			}
			if got, want := g.seen(node, id), refs[node].seen(id); got != want {
				t.Fatalf("op %d: node %d id %d: genSeen=%v reference=%v", i, node, id, got, want)
			}
		}
		// Full cross-check: every (node, id) pair must agree.
		for n := 0; n < nodes; n++ {
			for id := int32(0); id < 256; id++ {
				if got, want := g.seen(n, id), refs[n].seen(id); got != want {
					t.Fatalf("final: node %d id %d: genSeen=%v reference=%v", n, id, got, want)
				}
			}
		}
	})
}

// FuzzEpochSet checks the stamp set against a plain map across add/clear
// streams, including epochs forced next to the uint32 wrap point where a
// stale stamp could alias back in.
func FuzzEpochSet(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0xFF, 3}, false)
	f.Add([]byte{5, 5, 0x80, 9}, true)
	f.Fuzz(func(t *testing.T, ops []byte, nearWrap bool) {
		s := newEpochSet(4)
		if nearWrap {
			// Park the epoch two clears away from wrapping, with a stale
			// stamp that must never alias back into membership.
			s.epoch = ^uint32(0) - 1
			s.stamps = append(s.stamps, s.epoch+2) // would match epoch 0 pre-fix
		}
		ref := make(map[int32]bool)
		for i, op := range ops {
			id := int32(op & 0x3F)
			switch {
			case op&0x80 != 0:
				s.clear()
				ref = make(map[int32]bool)
			default:
				s.add(id)
				ref[id] = true
			}
			if got, want := s.has(id), ref[id]; got != want {
				t.Fatalf("op %d: id %d: epochSet=%v reference=%v (epoch %d)", i, id, got, want, s.epoch)
			}
		}
		for id := int32(0); id < 64; id++ {
			if got, want := s.has(id), ref[id]; got != want {
				t.Fatalf("final: id %d: epochSet=%v reference=%v (epoch %d)", id, got, want, s.epoch)
			}
		}
	})
}

// TestEpochSetWrap pins the wrap behavior deterministically: stamps
// written before the epoch counter wraps can never read as members after.
func TestEpochSetWrap(t *testing.T) {
	s := newEpochSet(8)
	s.epoch = ^uint32(0) // one clear away from wrapping
	s.add(3)
	if !s.has(3) {
		t.Fatal("freshly added id missing")
	}
	s.clear() // wraps: stamps zeroed, epoch restarts at 1
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	if s.has(3) {
		t.Fatal("stale id survived the epoch wrap")
	}
	s.add(5)
	if !s.has(5) || s.has(3) {
		t.Fatal("membership wrong after post-wrap add")
	}
}

// TestBitRowsGrowRepack pins that widening the stride preserves every
// row's bits at their original in-row offsets.
func TestBitRowsGrowRepack(t *testing.T) {
	r := newBitRows(3, 8) // stride 1 word
	r.testSet(0, 5)
	r.testSet(1, 63)
	r.testSet(2, 0)
	r.testSet(1, 200) // forces a grow+repack
	for _, c := range []struct {
		node int
		id   int32
	}{{0, 5}, {1, 63}, {2, 0}, {1, 200}} {
		if !r.test(c.node, c.id) {
			t.Fatalf("bit (%d,%d) lost across grow", c.node, c.id)
		}
	}
	if r.test(0, 63) || r.test(2, 200) || r.test(1, 5) {
		t.Fatal("grow smeared bits across rows")
	}
}

// TestGenSeenRotation pins the generation-rotation boundary: the limit'th
// mark rotates first, and ids from two generations ago are forgotten.
func TestGenSeenRotation(t *testing.T) {
	g := newGenSeen(1, 2, 8)
	g.mark(0, 1)
	g.mark(0, 2) // cur full: {1,2}
	g.mark(0, 3) // rotates: prev={1,2}, cur={3}
	for _, id := range []int32{1, 2, 3} {
		if !g.seen(0, id) {
			t.Fatalf("id %d missing after first rotation", id)
		}
	}
	g.mark(0, 4) // cur={3,4}
	g.mark(0, 5) // rotates: prev={3,4}, cur={5}
	if g.seen(0, 1) || g.seen(0, 2) {
		t.Fatal("two-generations-old ids must be forgotten")
	}
	for _, id := range []int32{3, 4, 5} {
		if !g.seen(0, id) {
			t.Fatalf("id %d missing after second rotation", id)
		}
	}
}
