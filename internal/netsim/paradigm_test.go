package netsim

// The paradigm seam's contract: the registry lists every ledger in its
// fixed comparison order, each spec's Build produces a runnable network
// from the shared knobs, and the seam-built network behaves exactly
// like one constructed through the native config — in particular,
// building through the seam must not double-arm the chains' mining
// loops (Build once scheduled mining that Run then scheduled again,
// silently doubling the block rate on the seam path only).

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestParadigmRegistryOrderAndLookup(t *testing.T) {
	wantNames := []string{"bitcoin", "ethereum", "nano", "tangle"}
	wantFamily := map[string]string{
		"bitcoin": "blockchain", "ethereum": "blockchain",
		"nano": "dag", "tangle": "dag",
	}
	specs := Paradigms()
	if len(specs) != len(wantNames) {
		t.Fatalf("registry has %d paradigms, want %d", len(specs), len(wantNames))
	}
	for i, s := range specs {
		if s.Name != wantNames[i] {
			t.Fatalf("paradigm %d = %q, want %q", i, s.Name, wantNames[i])
		}
		if s.Family != wantFamily[s.Name] {
			t.Fatalf("%s family = %q, want %q", s.Name, s.Family, wantFamily[s.Name])
		}
		if s.Build == nil {
			t.Fatalf("%s has no Build", s.Name)
		}
		byName, err := ParadigmByName(s.Name)
		if err != nil || byName.Order != s.Order {
			t.Fatalf("ParadigmByName(%s) = %+v, %v", s.Name, byName, err)
		}
	}
	if _, err := ParadigmByName("ripple"); err == nil {
		t.Fatal("unknown paradigm did not error")
	}
}

// Every registered paradigm must build from the shared knobs and carry
// real traffic through the uniform surface: submissions settle, the
// canonical stream grows, and the summary metrics are populated.
func TestParadigmBuildAndRun(t *testing.T) {
	np := NetParams{
		Nodes: 8, PeerDegree: 3, Seed: 97,
		MinLatency: 20 * time.Millisecond, MaxLatency: 120 * time.Millisecond,
	}
	load := workload.Payments(rand.New(rand.NewSource(101)), workload.Config{
		Accounts: 16, Rate: 4, Duration: 3 * time.Minute,
		MinAmount: 1, MaxAmount: 5,
	})
	for _, spec := range Paradigms() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			net, err := spec.Build(np, BuildOptions{Accounts: 16})
			if err != nil {
				t.Fatal(err)
			}
			if net.Sim() == nil || net.Net() == nil || net.Runtime() == nil {
				t.Fatal("seam network exposes no substrate")
			}
			for _, p := range load {
				net.Submit(p)
			}
			m := net.RunSpan(6 * time.Minute)
			if m.Confirmed == 0 {
				t.Fatalf("%s confirmed nothing through the seam: %+v", spec.Name, m)
			}
			if m.Throughput <= 0 || m.MessagesSent == 0 || m.LedgerBytes == 0 {
				t.Fatalf("%s summary metrics not populated: %+v", spec.Name, m)
			}
			if net.CanonicalLength() == 0 {
				t.Fatalf("%s canonical stream empty after a loaded run", spec.Name)
			}
		})
	}
}

// The seam must be construction-only sugar: a bitcoin network built
// through the registry replays byte-identically to one built through
// BitcoinConfig directly. This is the regression test for the
// double-armed mining loop — with mining scheduled in both Build and
// Run, the seam-built chain grew at twice the native block rate.
func TestParadigmBuildMatchesNativeConstruction(t *testing.T) {
	np := NetParams{
		Nodes: 8, PeerDegree: 3, Seed: 55,
		MinLatency: 20 * time.Millisecond, MaxLatency: 120 * time.Millisecond,
	}
	spec, err := ParadigmByName("bitcoin")
	if err != nil {
		t.Fatal(err)
	}
	seam, err := spec.Build(np, BuildOptions{Accounts: 16})
	if err != nil {
		t.Fatal(err)
	}
	native, err := NewBitcoin(BitcoinConfig{
		Net: np, BlockInterval: 30 * time.Second, Accounts: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm := seam.RunSpan(10 * time.Minute)
	nm := native.Run(10 * time.Minute)
	if sm.Confirmed != nm.ConfirmedTxs || seam.CanonicalLength() != len(native.Observer().Store().MainChain()) {
		t.Fatalf("seam diverged from native construction: seam confirmed=%d len=%d, native confirmed=%d len=%d",
			sm.Confirmed, seam.CanonicalLength(), nm.ConfirmedTxs, len(native.Observer().Store().MainChain()))
	}
	if sm.MessagesSent != nm.MessagesSent || sm.BytesSent != nm.BytesSent {
		t.Fatalf("seam traffic diverged: %d/%d msgs, %d/%d bytes",
			sm.MessagesSent, nm.MessagesSent, sm.BytesSent, nm.BytesSent)
	}
}
