package core

import (
	"repro/internal/par"
)

// fanOut runs n independent sub-tasks across the configured worker pool
// and returns their results in index order — the building block that lets
// an experiment's sweep points (one simulated network each) run
// concurrently without perturbing table order or determinism. Every task
// runs even if an earlier one fails; the lowest-index error is returned.
func fanOut[T any](cfg Config, n int, task func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	par.Each(n, cfg.Workers, 1, func(i int) {
		out[i], errs[i] = task(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
