package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/par"
)

// fanOut runs n independent sub-tasks across the configured worker pool
// and returns their results in index order — the building block that lets
// an experiment's sweep points (one simulated network each) run
// concurrently without perturbing table order or determinism. Every task
// runs even if an earlier one fails, and every failure is reported: the
// returned error joins all of them (errors.Join) tagged with their sweep
// index, so a multi-point failure is diagnosed in one pass. A context
// cancelled mid-sweep skips the tasks that have not started yet, marking
// them with the context error.
func fanOut[T any](ctx context.Context, cfg Config, n int, task func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	par.Each(n, cfg.Workers, 1, func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("not started: %w", err)
			return
		}
		out[i], errs[i] = task(i)
	})
	var failures []error
	for i, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("sweep point %d: %w", i, err))
		}
	}
	return out, errors.Join(failures...)
}
