package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/orv"
	"repro/internal/pos"
	"repro/internal/pow"
)

// RunE13Consensus reproduces §III's consensus comparison on one table:
// the PoW lottery elects leaders proportionally to hash power, the PoS
// lottery proportionally to stake (with slashing burning a cheater's
// deposit), and Nano's ORV resolves conflicts by balance-weighted
// representative votes with no leader election at all.
func RunE13Consensus(ctx context.Context, cfg Config) (*metrics.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E13 (§III): leader election and conflict resolution",
		"mechanism", "participant", "resource-share", "observed-share/outcome")

	// PoW: win frequency tracks hash rate (§III-A1).
	lottery, err := pow.NewLottery([]pow.Miner{
		{ID: 0, HashRate: 10}, {ID: 1, HashRate: 30}, {ID: 2, HashRate: 60},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	draws := cfg.count(50_000)
	powWins := map[int]int{}
	for i := 0; i < draws; i++ {
		powWins[lottery.SampleWinner(rng)]++
	}
	for id, share := range []float64{0.10, 0.30, 0.60} {
		got := float64(powWins[id]) / float64(draws)
		t.AddRow("PoW lottery", fmt.Sprintf("miner %d", id), metrics.Pct(share), metrics.Pct(got))
		if got < share*0.8 || got > share*1.2 {
			return nil, fmt.Errorf("core: e13 PoW share off: %.3f vs %.3f", got, share)
		}
	}

	// PoS: proposer frequency tracks stake; slashing burns the deposit
	// (§III-A2).
	ring := keys.NewRing("e13-validators", 4)
	reg := pos.NewRegistry()
	stakes := []uint64{100, 300, 600}
	for i, s := range stakes {
		if err := reg.Deposit(ring.Pair(i).Pub, s); err != nil {
			return nil, err
		}
	}
	seed := hashx.Sum([]byte("e13-epoch"))
	posWins := map[keys.Address]int{}
	for slot := 0; slot < draws; slot++ {
		p, err := reg.Proposer(uint64(slot), seed)
		if err != nil {
			return nil, err
		}
		posWins[p]++
	}
	for i, s := range stakes {
		share := float64(s) / 1000
		got := float64(posWins[ring.Addr(i)]) / float64(draws)
		t.AddRow("PoS lottery", fmt.Sprintf("validator %d", i), metrics.Pct(share), metrics.Pct(got))
	}
	burned, err := reg.Slash(ring.Addr(2))
	if err != nil {
		return nil, err
	}
	t.AddRow("PoS slashing", "validator 2 (cheater)", metrics.U64(burned)+" staked",
		fmt.Sprintf("stake burned; %d left in pool", reg.TotalStake()))

	// ORV: the §III-B conflict — "the winning transaction is the one
	// that gained the most votes with regards to the voters weight".
	reps := keys.NewRing("e13-reps", 3)
	weights := orv.NewWeights(map[keys.Address]uint64{
		reps.Addr(0): 40, reps.Addr(1): 35, reps.Addr(2): 25,
	})
	tracker := orv.NewTracker(weights, orv.Config{QuorumFraction: 0.5})
	root := hashx.Sum([]byte("contested-prev"))
	honest := hashx.Sum([]byte("honest-send"))
	rival := hashx.Sum([]byte("double-spend"))
	if err := tracker.StartElection(root, honest, rival); err != nil {
		return nil, err
	}
	if _, err := tracker.ProcessVote(root, orv.NewVote(reps.Pair(0), honest, 1)); err != nil {
		return nil, err
	}
	if _, err := tracker.ProcessVote(root, orv.NewVote(reps.Pair(1), rival, 1)); err != nil {
		return nil, err
	}
	// Rep 1 switches to the heavier side — vote switching converges.
	out, err := tracker.ProcessVote(root, orv.NewVote(reps.Pair(1), honest, 2))
	if err != nil {
		return nil, err
	}
	if !out.Confirmed || out.Winner != honest {
		return nil, fmt.Errorf("core: e13 ORV did not confirm the weighted winner")
	}
	t.AddRow("ORV conflict", "honest send vs double spend", "75 vs 25 weight",
		fmt.Sprintf("honest wins with %d of %d quorum", out.Tally, out.Quorum))
	t.AddRow("ORV normal case", "conflict-free block", "—",
		"no voting overhead required (§III-B)")

	t.AddNote("PoW and PoS elect leaders stochastically ∝ resources; Nano has no leader — users order their own transactions (§III-B)")
	t.AddNote("slashing: 'burning stake has the same economic effect as dismantling an attacker's mining equipment' (§III-A2)")
	return t, nil
}
