// Package core is the reproduction of the paper's contribution: the
// five-dimension comparison of blockchain and DAG distributed ledgers
// (data structures §II, consensus §III, confirmation confidence §IV,
// ledger size §V, scalability §VI). Every figure and quantitative claim
// in the paper maps to one Experiment here; running an experiment
// regenerates the corresponding table with the same shape — who wins, by
// what factor, where the crossovers fall.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Paradigm tags which side of the comparison a system belongs to.
type Paradigm int

const (
	// Blockchain bundles transactions into hash-linked blocks (§II-A).
	Blockchain Paradigm = iota + 1
	// DAG stores one transaction per node of a directed acyclic graph
	// (§II-B).
	DAG
)

// String returns the paradigm name.
func (p Paradigm) String() string {
	switch p {
	case Blockchain:
		return "blockchain"
	case DAG:
		return "dag"
	default:
		return "unknown"
	}
}

// Config tunes experiment runs.
type Config struct {
	// Seed drives all randomness; equal seeds reproduce results exactly.
	Seed int64
	// Scale stretches or shrinks simulated durations and workload sizes
	// (1.0 = the defaults used in EXPERIMENTS.md; tests use less).
	Scale float64
	// Workers bounds intra-experiment parallelism: experiments whose
	// sweep points are independent simulations (E9, E10, E12) fan them
	// out across this many goroutines (<= 0 means one per CPU core).
	// Results are identical for every value.
	Workers int
	// NanoBatch adds batched Nano sweep rows to E9/E12 when > 1: each
	// batched row reruns the serial row's network with that live-gossip
	// ingest batch size (netsim.NanoConfig.BatchSize). Unset (or 1)
	// keeps the serial-only tables, byte-identical to their historical
	// output.
	NanoBatch int
	// NanoBatchWindow is the accumulation window for those rows; 0 keeps
	// netsim's 5ms default.
	NanoBatchWindow time.Duration
	// FaultPartitionFrac is the share of nodes split away into group 1
	// during E14's partition scenarios (default 0.5; values outside
	// (0,1) fall back to it). Node 0, the observer, always stays in
	// group 0 — the minority side only while the fraction is <= 0.5.
	// The baseline rows always run unfaulted regardless.
	FaultPartitionFrac float64
	// FaultChurnNodes is how many nodes leave and rejoin during E14's
	// churn scenarios (default 2; the experiment clamps it to its 8-node
	// networks, observer excluded, and labels rows with the clamped
	// count).
	FaultChurnNodes int
	// DoubleSpendTrials is the number of independent contested
	// double-spend networks E15 runs per attacker-weight sweep point
	// (default 3). Each trial uses its own derived seed.
	DoubleSpendTrials int
	// EclipseFrac adds one extra captured-peer fraction to E16's sweep
	// (inserted in sorted position, deduplicated). Zero — or a value
	// outside (0, 1] — keeps the default {0, 25%, 50%, 75%, 100%} sweep.
	EclipseFrac float64
	// SelfishAlpha adds one extra adversary hash-share point to E17's
	// selfish-mining sweep. Zero — or a value outside (0, 1) — keeps the
	// default {0, 15%, 25%, 35%, 45%} sweep.
	SelfishAlpha float64
	// SelfishGamma is Eyal–Sirer's connectivity parameter for E17's
	// selfish-mining rows: the fraction of honest hash power that mines
	// on the adversary's block while the 1-1 race is open. Zero (the
	// default, and any value outside [0, 1]) reproduces the historical
	// first-seen races byte for byte; the classic profitability
	// thresholds fall from 1/3 (γ=0) through 1/4 (γ=1/2) to 0 (γ=1).
	SelfishGamma float64
	// WithholdWeight adds one extra withheld-weight fraction to E17's
	// vote-withholding sweep. Zero — or a value outside (0, 1] — keeps
	// the default {0, 25%, 55%} sweep.
	WithholdWeight float64
	// Shards is the event-queue lane count every simulated network runs
	// with (sim.NewSharded via netsim.NetParams.Shards). Results are
	// identical for every value — pinned by test, like Workers — so it is
	// a pure capacity knob for mega-scale runs. <= 0 means 1.
	Shards int
	// Queue selects the event-queue backend every simulated network runs
	// on: "heap" (the default, also "") or "calendar" (sim.ParseQueue).
	// Both backends pop in the identical (time, sequence) order — pinned
	// by invariance and fuzz tests — so every table is byte-identical
	// under either; the calendar queue keeps per-operation cost flat at
	// mega-scale pending-event populations. Unknown spellings fall back
	// to the heap (dltbench validates user input before it gets here).
	Queue string
	// MegaNodes appends one extra node-count point to E19's sweep on
	// both paradigms — the 10⁶-node frontier. The point is time- and
	// memory-budgeted: it reuses the fixed sweep workload, keeps the
	// sweep's scaled horizon, and caps latency-histogram storage via
	// streaming quantiles, so it completes under a pinned memory-per-
	// node budget (pinned by test). <= 0 (the default) keeps the
	// historical sweep byte-identical.
	MegaNodes int
	// DepthSweep adds E18's confirmation-depth sweep rows: the executed
	// chain double spend rerun for merchant rules z = 1…6 against two
	// attack-window lengths, with the E15 analytic catch-up odds beside
	// each. False (the default) keeps the historical E18 table
	// byte-identical.
	DepthSweep bool
	// Paradigms filters which registered ledger paradigms the
	// cross-paradigm comparison experiments (E9, E19, E20) build rows
	// for, by netsim registry name ("bitcoin", "ethereum", "nano",
	// "tangle"). Empty — or any entry equal to "all" — selects every
	// registered paradigm, the historical tables. dltbench validates
	// spellings against netsim.ParadigmNames() before they get here.
	Paradigms []string
	// SyncPullBatch is E20's cold-start range-pull window: how many
	// history blocks one sync request asks a peer for. <= 0 means the
	// sync manager's default (32).
	SyncPullBatch int
	// BacklogCap bounds the per-node backlog buffers in E20's networks —
	// the lattice gap buffer, the gossip ingest queue and the chain
	// orphan pool (netsim's BacklogCap knobs). <= 0 keeps the package
	// defaults.
	BacklogCap int
	// BacklogTTL evicts E20's parked backlog blocks by age (simulation
	// time): a gap or orphan older than the TTL is dropped on the next
	// arrival even while its buffer is under BacklogCap. <= 0 (the
	// default) disables age-based eviction and keeps tables
	// byte-identical.
	BacklogTTL time.Duration
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.FaultPartitionFrac <= 0 || c.FaultPartitionFrac >= 1 {
		c.FaultPartitionFrac = 0.5
	}
	if c.FaultChurnNodes <= 0 {
		c.FaultChurnNodes = 2
	}
	if c.DoubleSpendTrials <= 0 {
		c.DoubleSpendTrials = 3
	}
	if c.EclipseFrac <= 0 || c.EclipseFrac > 1 {
		c.EclipseFrac = 0
	}
	if c.SelfishAlpha <= 0 || c.SelfishAlpha >= 1 {
		c.SelfishAlpha = 0
	}
	if c.SelfishGamma <= 0 || c.SelfishGamma > 1 {
		c.SelfishGamma = 0
	}
	if c.WithholdWeight <= 0 || c.WithholdWeight > 1 {
		c.WithholdWeight = 0
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.MegaNodes < 0 {
		c.MegaNodes = 0
	}
	if c.BacklogTTL < 0 {
		c.BacklogTTL = 0
	}
	return c
}

// queue resolves the Queue knob to its sim backend; unknown spellings
// fall back to the heap default.
func (c Config) queue() sim.QueueBackend {
	b, _ := sim.ParseQueue(c.Queue)
	return b
}

// dur scales a baseline duration.
func (c Config) dur(base time.Duration) time.Duration {
	return time.Duration(float64(base) * c.Scale)
}

// count scales a baseline count (minimum 1).
func (c Config) count(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Experiment reproduces one figure or quantitative claim of the paper.
type Experiment struct {
	// ID is the experiment key (E1…E21).
	ID string
	// Title names the reproduced artifact.
	Title string
	// Section is the paper section the artifact appears in.
	Section string
	// Run executes the experiment and renders its table. Cancelling ctx
	// interrupts the experiment between sweep points — mid-flight, not
	// just between experiments.
	Run func(ctx context.Context, cfg Config) (*metrics.Table, error)
}

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Fig. 1 — blockchain as a data structure", Section: "II-A", Run: RunE1BlockchainStructure},
		{ID: "E2", Title: "Fig. 2 — Nano's DAG, the block-lattice", Section: "II-B", Run: RunE2BlockLattice},
		{ID: "E3", Title: "Fig. 3 — send/receive settlement in the block lattice", Section: "II-B", Run: RunE3Settlement},
		{ID: "E4", Title: "Fig. 4 — temporary blockchain forks", Section: "IV-A", Run: RunE4Forks},
		{ID: "E5", Title: "confirmation confidence vs depth (6 conf BTC, 5–11 ETH)", Section: "IV-A", Run: RunE5Confirmation},
		{ID: "E6", Title: "Nano vote-based confirmation", Section: "IV-B", Run: RunE6VoteConfirmation},
		{ID: "E7", Title: "ledger size (145.95 / 39.62 / 3.42 GB)", Section: "V", Run: RunE7LedgerSize},
		{ID: "E8", Title: "pruning: block files, fast sync, head-only", Section: "V", Run: RunE8Pruning},
		{ID: "E9", Title: "throughput: 3–7 / 7–15 / uncapped TPS", Section: "VI", Run: RunE9Throughput},
		{ID: "E10", Title: "block-size increase vs centralization", Section: "VI-A", Run: RunE10BlockSize},
		{ID: "E11", Title: "off-chain scaling: channels and Plasma", Section: "VI-A", Run: RunE11OffChain},
		{ID: "E12", Title: "sharding and DAG hardware limits", Section: "VI-A/B", Run: RunE12Sharding},
		{ID: "E13", Title: "consensus properties: PoW, PoS, ORV", Section: "III", Run: RunE13Consensus},
		{ID: "E14", Title: "partition & churn resilience: reorg depth vs re-election", Section: "IV", Run: RunE14Resilience},
		{ID: "E15", Title: "double-spend success vs attacker weight/hashrate", Section: "IV", Run: RunE15DoubleSpend},
		{ID: "E16", Title: "eclipse attack: victim lag & double-spend exposure vs captured peers", Section: "IV", Run: RunE16Eclipse},
		{ID: "E17", Title: "selfish mining & vote withholding vs adversary power", Section: "III/IV", Run: RunE17Strategy},
		{ID: "E18", Title: "executed double-spends under combined adversaries (eclipse, hidden forks)", Section: "IV", Run: RunE18ExecutedDoubleSpend},
		{ID: "E19", Title: "scaling law: throughput, finality & memory per node vs network size", Section: "VI", Run: RunE19ScalingLaw},
		{ID: "E20", Title: "cold-start bootstrap: catch-up latency & pulled bytes vs ledger length", Section: "V", Run: RunE20ColdStart},
		{ID: "E21", Title: "tangle confirmation: coverage threshold & parasite chain", Section: "IV", Run: RunE21TangleConfirmation},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}
