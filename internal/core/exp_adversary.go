package core

// E14 and E15: the paper's §IV confidence claims measured under the
// adversity that motivates them. Blockchains resolve conflict by depth —
// partitions and churn surface as reorgs and orphaned branches — while
// the block-lattice resolves by representative vote — the same faults
// surface as stalled accounts and re-elections. E14 injects partitions
// and churn into the E9 networks; E15 sweeps attacker power on both
// sides: the Nakamoto catch-up race for chains, contested double-spend
// elections for Nano.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pow"
	"repro/internal/workload"
)

// e14Nodes is the node count of both E9 networks E14 reuses.
const e14Nodes = 8

// e14PartitionFaults splits the network for the middle third of the run.
func e14PartitionFaults(cfg Config, dur time.Duration) *netsim.FaultSchedule {
	return &netsim.FaultSchedule{Partitions: []netsim.PartitionWindow{{
		At:     dur / 3,
		HealAt: dur * 2 / 3,
		Groups: netsim.SplitGroups(e14Nodes, cfg.FaultPartitionFrac),
	}}}
}

// e14Churn is FaultChurnNodes clamped to the E14 network size (node 0
// must stay as the observer) — both the schedule and the scenario label
// use it, so the table never claims more churn than was injected.
func e14Churn(cfg Config) int {
	if cfg.FaultChurnNodes > e14Nodes-1 {
		return e14Nodes - 1
	}
	return cfg.FaultChurnNodes
}

// e14ChurnFaults takes e14Churn(cfg) nodes offline across the middle of
// the run, staggered so the network never loses them all at once; every
// node rejoins with a catch-up replay well before the end.
func e14ChurnFaults(cfg Config, dur time.Duration) *netsim.FaultSchedule {
	churn := e14Churn(cfg)
	fs := &netsim.FaultSchedule{}
	for i := 0; i < churn; i++ {
		stagger := time.Duration(i) * dur / 16
		rejoin := dur*5/8 + stagger
		// Even at the churn cap the last rejoin leaves dur/8 of run for
		// the catch-up replay to land before the cutoff.
		if max := dur * 7 / 8; rejoin > max {
			rejoin = max
		}
		fs.Churn = append(fs.Churn, netsim.ChurnWindow{
			Node:     e14Nodes - 1 - i, // churn from the top; node 0 observes
			LeaveAt:  dur/4 + stagger,
			RejoinAt: rejoin,
		})
	}
	return fs
}

// RunE14Resilience measures partition and churn resilience on the two E9
// networks. The baseline rows run the byte-identical unfaulted pipeline
// (their throughput and backlog cells equal the corresponding E9 cells);
// the fault rows replay the same seed and workload with a partition
// window or churn schedule injected, so every delta in the table is
// attributable to the fault alone. Chains pay in reorg depth and orphan
// rate (§IV-A); the lattice pays in stalled settlements and confirmation
// latency until re-election recovers it (§IV-B).
func RunE14Resilience(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E14 (§IV): partition & churn resilience — chain vs lattice",
		"scenario", "system", "throughput", "reorgs", "max-depth", "orphan-rate",
		"pending/unsettled", "confirm-p95", "recovered")

	recoveredCell := func(converged bool) string {
		if converged {
			return "yes"
		}
		return "DIVERGED"
	}
	chainRow := func(scenario string, m netsim.ChainMetrics, converged bool) []string {
		return []string{
			scenario, "bitcoin (PoW)", metrics.F(m.TPS),
			metrics.I(m.Reorgs), metrics.I(m.MaxReorgDepth), metrics.Pct(m.OrphanRate),
			metrics.I(m.PendingAtEnd), "—", recoveredCell(converged),
		}
	}
	nanoRow := func(scenario string, m netsim.NanoMetrics, converged bool) []string {
		return []string{
			scenario, "nano (ORV)", metrics.F(m.BPS),
			"—", "—", "—",
			metrics.I(m.UnsettledAtEnd),
			fmt.Sprintf("%.0f ms", 1000*m.ConfirmLatency.Quantile(0.95)),
			recoveredCell(converged),
		}
	}

	btcDur, nanoDur := e9BitcoinDur(cfg), e9NanoDur(cfg)
	scenario := fmt.Sprintf("partition %d%%/%d%%, middle third",
		100-int(100*cfg.FaultPartitionFrac), int(100*cfg.FaultPartitionFrac))
	churnLabel := fmt.Sprintf("churn %d nodes, staggered", e14Churn(cfg))

	// Six independent sweep points fan out across cfg.Workers; rows land
	// in fixed order. The baseline rows MUST stay first: the golden test
	// compares them against E9 cell by cell.
	points := []func() ([]string, error){
		func() ([]string, error) {
			m, conv, err := e9Bitcoin(cfg, nil)
			return chainRow("baseline (no faults)", m, conv), err
		},
		func() ([]string, error) {
			m, conv, err := e9Nano(cfg, 1, 0, nil, true)
			return nanoRow("baseline (no faults)", m, conv), err
		},
		func() ([]string, error) {
			m, conv, err := e9Bitcoin(cfg, e14PartitionFaults(cfg, btcDur))
			return chainRow(scenario, m, conv), err
		},
		func() ([]string, error) {
			m, conv, err := e9Nano(cfg, 1, 0, e14PartitionFaults(cfg, nanoDur), true)
			return nanoRow(scenario, m, conv), err
		},
		func() ([]string, error) {
			m, conv, err := e9Bitcoin(cfg, e14ChurnFaults(cfg, btcDur))
			return chainRow(churnLabel, m, conv), err
		},
		func() ([]string, error) {
			m, conv, err := e9Nano(cfg, 1, 0, e14ChurnFaults(cfg, nanoDur), true)
			return nanoRow(churnLabel, m, conv), err
		},
	}
	rows, err := fanOut(ctx, cfg, len(points), func(i int) ([]string, error) { return points[i]() })
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("baseline rows rerun the E9 networks unfaulted — their throughput and backlog cells match E9 byte for byte")
	t.AddNote("chains absorb splits as reorgs/orphans once the longer side wins (§IV-A); the lattice stalls cross-side settlement until heal catch-up and vote re-broadcast re-elect (§IV-B)")
	t.AddNote("heal/rejoin catch-up: chains exchange main chains (IBD stand-in); lattice nodes exchange full lattices and re-broadcast open-election votes")
	return t, nil
}

// e15NanoTrial runs one contested double spend on a fresh 10-node
// lattice network with k byzantine nodes and reports the observer's
// verdict, the measured attacker weight share, and the trial's
// fork-resolution latency histogram (for cross-trial pooling). Seed
// strides keep every (k, trial) network and workload stream disjoint
// even at large -double-spend-trials values.
func e15NanoTrial(cfg Config, k int, trial int) (netsim.DoubleSpendOutcome, float64, metrics.Histogram, error) {
	net, err := netsim.NewNano(netsim.NanoConfig{
		Net:      cfg.netParams(10, 3, cfg.Seed+int64(100_000*(k+1)+trial), 10*time.Millisecond, 60*time.Millisecond),
		Accounts: 40, Reps: 10, Workers: cfg.Workers,
		ByzantineNodes: k,
	})
	if err != nil {
		return netsim.DoubleSpendOutcome{}, 0, metrics.Histogram{}, err
	}
	// The attacker account lives on the highest node, byzantine whenever
	// k >= 1, so the attack and its voting weight share an owner.
	h := net.InjectContestedDoubleSpend(netsim.DoubleSpendPlan{
		Attacker: 9, VictimA: 1, VictimB: 2, Amount: 3, At: 2 * time.Second,
	})
	load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+int64(100_000*(k+51)+trial))), workload.Config{
		Accounts: 40, Rate: 8, Duration: 1500 * time.Millisecond, MaxAmount: 3,
	})
	m := net.RunWithTransfers(10*time.Second, load)
	return net.Outcome(h), net.ByzantineWeightFraction(), m.ForkResolveLatency, nil
}

// contestedSpendCells are the rendered cells of one contested-double-
// spend sweep point, shared between E15's lattice rows and E18's
// zero-fault baseline row (which must stay byte-identical to E15's
// k = 0 row — pinned by TestE18ZeroFaultMatchesE15Baselines).
type contestedSpendCells struct {
	Share, Trials, Success, Resolved, Honest, Latency string
}

// e15NanoCells aggregates DoubleSpendTrials contested-spend trials at k
// byzantine nodes into rendered cells. Resolution latencies pool across
// trials so the reported mean is over every observed re-election, not an
// average of per-trial summaries.
func e15NanoCells(cfg Config, k int) (contestedSpendCells, error) {
	var (
		share                            float64
		pooled                           metrics.Histogram
		wins, resolved, honest, injected int
	)
	for trial := 0; trial < cfg.DoubleSpendTrials; trial++ {
		out, frac, lat, err := e15NanoTrial(cfg, k, trial)
		if err != nil {
			return contestedSpendCells{}, err
		}
		share = frac
		if out.Injected {
			injected++
		}
		if out.RivalWon {
			wins++
		}
		if out.Resolved {
			resolved++
		}
		if out.HonestAttached {
			honest++
		}
		pooled.Merge(&lat)
	}
	if injected == 0 {
		return contestedSpendCells{}, fmt.Errorf("core: e15: no double spend injected at k=%d", k)
	}
	latencyCell := "—"
	if pooled.N() > 0 {
		latencyCell = fmt.Sprintf("%.0f ms", 1000*pooled.Mean())
	}
	return contestedSpendCells{
		Share:    metrics.Pct(share),
		Trials:   metrics.I(injected),
		Success:  metrics.F4(float64(wins) / float64(injected)),
		Resolved: fmt.Sprintf("%d/%d", resolved, injected),
		Honest:   fmt.Sprintf("%d/%d", honest, injected),
		Latency:  latencyCell,
	}, nil
}

// e15ChainRaceCells renders one chain-side catch-up-race sweep point's
// cells. Each point owns a derived rng (cfg.Seed + 1000 + i) so the
// fan-out schedule cannot leak into the trial stream; E18's zero-fault
// chain row reuses point 0 (q = 0), keeping it byte-identical to E15's
// baseline by construction.
func e15ChainRaceCells(cfg Config, i int, q float64) (trials, success, analytic string) {
	chainTrials := cfg.count(2000)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+i)))
	simulated := netsim.EmpiricalCatchUp(rng, q, 6, chainTrials)
	return metrics.I(chainTrials), metrics.F4(simulated), metrics.F4(pow.CatchUpProbability(q, 6))
}

// RunE15DoubleSpend sweeps attacker power on both sides of the paper's
// comparison. Chain side: the §IV-A Nakamoto catch-up race at z=6
// confirmations, attacker hash share q swept — analytic formula vs
// simulated races (netsim.CatchUpTrial). Lattice side: §IV-B contested
// double spends with the attacker's representatives swept from zero to a
// super-majority of the voting weight; success means the rival send
// displaces the honest payment on the observer's lattice. The zero-power
// rows on both sides are the unfaulted baselines.
func RunE15DoubleSpend(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E15 (§IV): double-spend success vs attacker power",
		"system", "attacker-share", "trials", "success-rate", "analytic", "resolved", "honest-survives", "resolve-mean")

	qs := []float64{0, 0.05, 0.10, 0.20, 0.30, 0.45}
	byzCounts := []int{0, 2, 4, 6}

	rows, err := fanOut(ctx, cfg, len(qs)+len(byzCounts), func(i int) ([]string, error) {
		if i < len(qs) {
			// Chain sweep point: attacker hash share q racing 6
			// confirmations.
			trials, success, analytic := e15ChainRaceCells(cfg, i, qs[i])
			return []string{
				"bitcoin (z=6 catch-up race)", metrics.Pct(qs[i]), trials,
				success, analytic,
				"—", "—", "—",
			}, nil
		}
		// Lattice sweep point: k of 10 nodes byzantine, each trial a
		// fresh network and double spend.
		k := byzCounts[i-len(qs)]
		cells, err := e15NanoCells(cfg, k)
		if err != nil {
			return nil, err
		}
		return []string{
			fmt.Sprintf("nano (ORV, %d/10 byzantine)", k), cells.Share, cells.Trials,
			cells.Success, "—", cells.Resolved, cells.Honest, cells.Latency,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}

	t.AddNote("chain: Nakamoto's race — the analytic column is pow.CatchUpProbability; six confirmations hold ~10%% attackers below 0.1%% success (§IV-A)")
	t.AddNote("nano: a double spend needs voting weight, not hashrate — the rival displaces the honest send only when byzantine representatives out-tally the honest quorum (§IV-B)")
	t.AddNote("zero-share rows are the unfaulted baselines on both sides")
	return t, nil
}
