package core

// Tests for the behavior-driven experiments: E16/E17 must be
// deterministic for any worker count (the acceptance invariant of the
// node-runtime refactor), their zero-power rows must be honest
// baselines, and the strategy sweeps must show their signature shapes.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// E16 and E17 must render byte-identically for any worker count: every
// sweep point owns derived seeds, so the fan-out schedule cannot leak
// into the tables.
func TestE16E17DeterministicAcrossWorkers(t *testing.T) {
	for _, exp := range []struct {
		id  string
		run func(context.Context, Config) (*metrics.Table, error)
	}{
		{"E16", RunE16Eclipse},
		{"E17", RunE17Strategy},
	} {
		exp := exp
		t.Run(exp.id, func(t *testing.T) {
			render := func(workers int) string {
				tbl, err := exp.run(context.Background(), Config{Seed: 37, Scale: 0.05, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				var sb strings.Builder
				if err := tbl.Render(&sb); err != nil {
					t.Fatal(err)
				}
				return sb.String()
			}
			serial := render(1)
			for _, workers := range []int{4, DefaultWorkers()} {
				if got := render(workers); got != serial {
					t.Fatalf("%s diverged at workers=%d:\n--- got ---\n%s\n--- want ---\n%s",
						exp.id, workers, got, serial)
				}
			}
		})
	}
}

// The eclipse sweep's full-capture row must show the victim behind the
// network on at least one side of the comparison, and the zero row must
// report no dropped traffic (the honest pipeline).
func TestE16EclipseShape(t *testing.T) {
	tbl, err := RunE16Eclipse(context.Background(), Config{Seed: 41, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if len(rows) != 10 {
		t.Fatalf("E16 rows = %d, want 5 fractions x 2 systems", len(rows))
	}
	// Zero rows (first two): no link drops.
	for _, row := range rows[:2] {
		if row[0] != "0.00%" || row[8] != "0" {
			t.Fatalf("E16 zero row not honest: %v", row)
		}
	}
	// Full-capture rows (last two): traffic dropped, and at least one
	// system shows a positive lag.
	lagSeen := false
	for _, row := range rows[8:] {
		if row[0] != "100.00%" {
			t.Fatalf("E16 row order broken: %v", row)
		}
		if row[8] == "0" {
			t.Fatalf("full eclipse dropped no traffic: %v", row)
		}
		if row[4] != "0" && row[4] != "—" {
			lagSeen = true
		}
	}
	if !lagSeen {
		t.Fatalf("full eclipse produced no victim lag:\n%v\n%v", rows[8], rows[9])
	}
}

// The withholding sweep's majority row must confirm (far) less than the
// honest baseline, and the selfish-mining zero row must attribute no
// revenue to the silent adversary.
func TestE17StrategyShape(t *testing.T) {
	cfg := Config{Seed: 43, Scale: 0.2}
	tbl, err := RunE17Strategy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	alphas, withholds := len(e17Alphas(cfg.withDefaults())), len(e17Withholds(cfg.withDefaults()))
	if len(rows) != alphas+withholds {
		t.Fatalf("E17 rows = %d, want %d", len(rows), alphas+withholds)
	}
	// Chain zero row: no power, no revenue, nothing withheld.
	if rows[0][1] != "0.00%" || rows[0][2] != "0.00%" || rows[0][8] != "0" {
		t.Fatalf("selfish zero row not honest: %v", rows[0])
	}
	// Lattice rows: baseline confirms, majority withholding stalls.
	base, stalled := rows[alphas], rows[len(rows)-1]
	if base[1] != "0.00%" || base[6] == "0" {
		t.Fatalf("withholding baseline row broken: %v", base)
	}
	if stalled[6] != "0" {
		t.Fatalf("majority withholding still confirmed: %v", stalled)
	}
	if stalled[8] == "0" {
		t.Fatalf("majority withholding withheld no votes: %v", stalled)
	}
}

// The flag-added sweep points insert in sorted position without
// disturbing the defaults, and out-of-range knobs are ignored.
func TestStrategySweepKnobs(t *testing.T) {
	c := Config{EclipseFrac: 0.4, SelfishAlpha: 0.3, WithholdWeight: 0.8}.withDefaults()
	if got := e16Fracs(c); len(got) != 6 || got[2] != 0.4 {
		t.Fatalf("eclipse sweep = %v", got)
	}
	if got := e17Alphas(c); len(got) != 6 || got[3] != 0.3 {
		t.Fatalf("alpha sweep = %v", got)
	}
	if got := e17Withholds(c); len(got) != 4 || got[3] != 0.8 {
		t.Fatalf("withhold sweep = %v", got)
	}
	// Duplicates and out-of-range values change nothing.
	c = Config{EclipseFrac: 0.5, SelfishAlpha: 1.5, WithholdWeight: -1}.withDefaults()
	if got := e16Fracs(c); len(got) != 5 {
		t.Fatalf("duplicate eclipse point added: %v", got)
	}
	if got := e17Alphas(c); len(got) != 5 {
		t.Fatalf("out-of-range alpha accepted: %v", got)
	}
	if got := e17Withholds(c); len(got) != 3 {
		t.Fatalf("out-of-range withhold accepted: %v", got)
	}
}
