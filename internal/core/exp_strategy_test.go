package core

// Tests for the behavior-driven experiments: E16/E17 must be
// deterministic for any worker count (the acceptance invariant of the
// node-runtime refactor), their zero-power rows must be honest
// baselines, and the strategy sweeps must show their signature shapes.

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/pow"
	"repro/internal/sim"
)

// E16, E17 and E18 must render byte-identically for any worker count:
// every sweep point owns derived seeds, so the fan-out schedule cannot
// leak into the tables.
func TestE16toE18DeterministicAcrossWorkers(t *testing.T) {
	for _, exp := range []struct {
		id  string
		run func(context.Context, Config) (*metrics.Table, error)
	}{
		{"E16", RunE16Eclipse},
		{"E17", RunE17Strategy},
		{"E18", RunE18ExecutedDoubleSpend},
	} {
		exp := exp
		t.Run(exp.id, func(t *testing.T) {
			render := func(workers int) string {
				tbl, err := exp.run(context.Background(), Config{Seed: 37, Scale: 0.05, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				var sb strings.Builder
				if err := tbl.Render(&sb); err != nil {
					t.Fatal(err)
				}
				return sb.String()
			}
			serial := render(1)
			for _, workers := range []int{4, DefaultWorkers()} {
				if got := render(workers); got != serial {
					t.Fatalf("%s diverged at workers=%d:\n--- got ---\n%s\n--- want ---\n%s",
						exp.id, workers, got, serial)
				}
			}
		})
	}
}

// The eclipse sweep's full-capture row must show the victim behind the
// network on at least one side of the comparison, and the zero row must
// report no dropped traffic (the honest pipeline).
func TestE16EclipseShape(t *testing.T) {
	tbl, err := RunE16Eclipse(context.Background(), Config{Seed: 41, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if len(rows) != 10 {
		t.Fatalf("E16 rows = %d, want 5 fractions x 2 systems", len(rows))
	}
	// Zero rows (first two): no link drops.
	for _, row := range rows[:2] {
		if row[0] != "0.00%" || row[8] != "0" {
			t.Fatalf("E16 zero row not honest: %v", row)
		}
	}
	// Full-capture rows (last two): traffic dropped, and at least one
	// system shows a positive lag.
	lagSeen := false
	for _, row := range rows[8:] {
		if row[0] != "100.00%" {
			t.Fatalf("E16 row order broken: %v", row)
		}
		if row[8] == "0" {
			t.Fatalf("full eclipse dropped no traffic: %v", row)
		}
		if row[4] != "0" && row[4] != "—" {
			lagSeen = true
		}
	}
	if !lagSeen {
		t.Fatalf("full eclipse produced no victim lag:\n%v\n%v", rows[8], rows[9])
	}
}

// The withholding sweep's majority row must confirm (far) less than the
// honest baseline, and the selfish-mining zero row must attribute no
// revenue to the silent adversary.
func TestE17StrategyShape(t *testing.T) {
	cfg := Config{Seed: 43, Scale: 0.2}
	tbl, err := RunE17Strategy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	alphas, withholds := len(e17Alphas(cfg.withDefaults())), len(e17Withholds(cfg.withDefaults()))
	if len(rows) != alphas+withholds {
		t.Fatalf("E17 rows = %d, want %d", len(rows), alphas+withholds)
	}
	// Chain zero row: no power, no revenue, nothing withheld.
	if rows[0][1] != "0.00%" || rows[0][3] != "0.00%" || rows[0][10] != "0" {
		t.Fatalf("selfish zero row not honest: %v", rows[0])
	}
	// Lattice rows: baseline confirms, majority withholding stalls.
	base, stalled := rows[alphas], rows[len(rows)-1]
	if base[1] != "0.00%" || base[8] == "0" {
		t.Fatalf("withholding baseline row broken: %v", base)
	}
	if stalled[8] != "0" {
		t.Fatalf("majority withholding still confirmed: %v", stalled)
	}
	if stalled[10] == "0" {
		t.Fatalf("majority withholding withheld no votes: %v", stalled)
	}
}

// The γ-parameterized selfish-mining race must bracket Eyal–Sirer's
// classic profitability thresholds on E17's own network (the acceptance
// criterion of the -selfish-gamma knob). Analytically the frontier
// (1-γ)/(3-2γ) runs from 1/3 at γ=0 through 1/4 at γ=1/2 toward 0 at
// γ=1; in simulation, a quarter-share miner — comfortably below the γ=0
// threshold — must LOSE revenue in the historical first-seen race and
// WIN it once every open race is mined on its block. Long horizons
// (~4300 blocks) keep the lottery noise far from the asserted margins;
// the runs are deterministic, so this never flakes.
func TestE17GammaBracketsClassicThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon simulations")
	}
	// Analytic frontier first: the closed form pins the classic numbers.
	if got := pow.SelfishThreshold(0); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("SelfishThreshold(0) = %v, want 1/3", got)
	}
	if got := pow.SelfishThreshold(0.5); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("SelfishThreshold(0.5) = %v, want 1/4", got)
	}
	if got := pow.SelfishThreshold(1); got != 0 {
		t.Fatalf("SelfishThreshold(1) = %v, want 0", got)
	}
	share := func(alpha, gamma float64) float64 {
		net, err := e17SelfishNet(7, alpha, 1, sim.QueueHeap)
		if err != nil {
			t.Fatal(err)
		}
		net.InstallSelfishMinerGamma(e17SelfishNodes-1, gamma)
		net.Run(12 * time.Hour)
		mined, total := net.MinerShare(e17SelfishNodes - 1)
		if total == 0 {
			t.Fatal("no blocks attributed")
		}
		return float64(mined) / float64(total)
	}
	// γ = 0: the threshold sits at ~1/3. A quarter-share selfish miner
	// earns LESS than its hash share (withholding burns blocks), while a
	// 45% miner earns far more.
	if got := share(0.25, 0); got >= 0.25 {
		t.Fatalf("γ=0 α=0.25: revenue share %.4f, want < α (below the 1/3 threshold)", got)
	}
	if got := share(0.45, 0); got <= 0.45 {
		t.Fatalf("γ=0 α=0.45: revenue share %.4f, want > α (above the 1/3 threshold)", got)
	}
	// γ = 1: the threshold falls below 1/4 — the SAME quarter-share miner
	// that lost the first-seen races now profits from them.
	if got := share(0.25, 1); got <= 0.25 {
		t.Fatalf("γ=1 α=0.25: revenue share %.4f, want > α (the threshold dropped past 1/4)", got)
	}
	if got := share(0.45, 1); got <= 0.45 {
		t.Fatalf("γ=1 α=0.45: revenue share %.4f, want > α", got)
	}
}

// Config.SelfishGamma must thread into the selfish-mining rows: the γ
// cell renders it, and the analytic cell moves with it.
func TestE17GammaCellThreads(t *testing.T) {
	cfg := Config{Seed: 43, Scale: 0.05, SelfishGamma: 1}.withDefaults()
	row, err := e17Selfish(cfg, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if row[2] != "100.00%" {
		t.Fatalf("γ cell = %q, want 100.00%%", row[2])
	}
	// γ > 0 inserts the measured effective-gamma column after gamma; at
	// γ=1 every open-race honest win whose miner already held the
	// adversary's block extends it, so the cell is a percentage (or the
	// dash when no race ever opened), never empty.
	if row[3] == "" {
		t.Fatalf("effective-gamma cell missing, row = %v", row)
	}
	if want := metrics.Pct(pow.SelfishRevenue(0.35, 1)); row[5] != want {
		t.Fatalf("analytic cell = %q, want %q", row[5], want)
	}
}

// The flag-added sweep points insert in sorted position without
// disturbing the defaults, and out-of-range knobs are ignored.
func TestStrategySweepKnobs(t *testing.T) {
	c := Config{EclipseFrac: 0.4, SelfishAlpha: 0.3, WithholdWeight: 0.8}.withDefaults()
	if got := e16Fracs(c); len(got) != 6 || got[2] != 0.4 {
		t.Fatalf("eclipse sweep = %v", got)
	}
	if got := e17Alphas(c); len(got) != 6 || got[3] != 0.3 {
		t.Fatalf("alpha sweep = %v", got)
	}
	if got := e17Withholds(c); len(got) != 4 || got[3] != 0.8 {
		t.Fatalf("withhold sweep = %v", got)
	}
	// Duplicates and out-of-range values change nothing.
	c = Config{EclipseFrac: 0.5, SelfishAlpha: 1.5, WithholdWeight: -1}.withDefaults()
	if got := e16Fracs(c); len(got) != 5 {
		t.Fatalf("duplicate eclipse point added: %v", got)
	}
	// Near-duplicates dedupe too: a float within 1e-9 of a built-in point
	// (0.05+0.2 != 0.25 exactly) would render an identical table row.
	if got := e17Withholds(Config{WithholdWeight: 0.05 + 0.2}.withDefaults()); len(got) != 3 {
		t.Fatalf("near-duplicate withhold point added: %v", got)
	}
	if got := e17Alphas(c); len(got) != 5 {
		t.Fatalf("out-of-range alpha accepted: %v", got)
	}
	if got := e17Withholds(c); len(got) != 3 {
		t.Fatalf("out-of-range withhold accepted: %v", got)
	}
}
