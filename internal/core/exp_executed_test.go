package core

// Tests for E18: the zero-fault baseline rows must carry exactly the
// cells E15's zero-power sweep points produce (same constructors, same
// seed, byte for byte), the executed-attack rows must actually execute,
// and the table must be worker-count invariant.

import (
	"context"
	"strings"
	"testing"
)

// The acceptance invariant: E18's baseline rows rerun E15's zero-power
// sweep points through the shared cell constructors, so every shared
// cell is byte-identical — E18's attack rows are measured against the
// same unfaulted pipeline E15 pinned.
func TestE18ZeroFaultMatchesE15Baselines(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the E15 sweep points twice")
	}
	cfg := Config{Seed: 17, Scale: 0.1}
	e15, err := RunE15DoubleSpend(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e18, err := RunE18ExecutedDoubleSpend(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r15, r18 := e15.Rows(), e18.Rows()
	// E15: row 0 is the q=0 chain race, row 6 the 0-byzantine lattice
	// point. E18: rows 0 and 1 are the baselines, their cells 1..8 laid
	// out in E15's column order (system, share, trials, success,
	// analytic, resolved, honest, latency).
	for _, cmp := range []struct {
		name           string
		e15Row, e18Row int
	}{
		{"bitcoin", 0, 0},
		{"nano", 6, 1},
	} {
		if !strings.HasPrefix(r18[cmp.e18Row][0], "baseline") {
			t.Fatalf("E18 baseline row moved: %q", r18[cmp.e18Row][0])
		}
		for col := 0; col < 8; col++ {
			got, want := r18[cmp.e18Row][col+1], r15[cmp.e15Row][col]
			if got != want {
				t.Errorf("%s baseline cell %d: E18 %q != E15 %q", cmp.name, col, got, want)
			}
		}
	}
}

// The attack rows must report EXECUTED double spends: on every scenario
// the victim accepts the payment inside the window and at least one
// trial reverts it, and the lattice victim never reaches vote quorum
// while captured (Nano's defense).
func TestE18AttacksExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the executed-attack scenarios")
	}
	tbl, err := RunE18ExecutedDoubleSpend(context.Background(), Config{Seed: 7, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if len(rows) != 6 {
		t.Fatalf("E18 rows = %d, want 2 baselines + 4 scenarios", len(rows))
	}
	for _, row := range rows[2:] {
		if row[4] == "0.0000" {
			t.Errorf("scenario %q / %q executed nothing: %v", row[0], row[1], row)
		}
		if row[6] == "0/"+row[3] {
			t.Errorf("scenario %q / %q: victim never accepted: %v", row[0], row[1], row)
		}
	}
	// Lattice rows (last two): quorum@heal must be zero — the captured
	// victim cannot hear the representatives inside the window.
	for _, row := range rows[4:] {
		if row[9] != "0/"+row[3] {
			t.Errorf("lattice scenario %q reached quorum in the window: %v", row[0], row)
		}
	}
}
