package core

// E16 and E17: per-node adversarial strategies on the netsim Behavior
// seam. Where E14/E15 injected *network* faults (partitions, churn,
// contested double spends), these two sweep *strategic* deviations by
// individual participants — the deviations the paper's §III/§IV
// comparison is ultimately about. E16 captures a victim's peer table
// (eclipse) and measures how far its view of either ledger falls behind
// the consensus; E17 sweeps adversary power for the two canonical
// withholding strategies: selfish mining on the chain side (§IV-A's
// attacker with a publication strategy instead of a race) and vote
// withholding on the lattice side (§IV-B's quorum denial).

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pow"
	"repro/internal/sim"
	"repro/internal/workload"
)

// sweepWithExtra returns the default sweep with one optional extra point
// inserted in sorted position (deduplicated); extra <= 0 means none.
// Keeping the default sweep stable means a flag-added point never
// perturbs the other rows. Dedup is tolerance-based, not exact: a flag
// value within 1e-9 of a built-in point (think 0.05+0.2 arriving as
// 0.25000000000000004) would render an identical table row, so it is
// treated as the built-in point rather than duplicated.
func sweepWithExtra(defaults []float64, extra float64) []float64 {
	out := append([]float64(nil), defaults...)
	if extra > 0 {
		for _, v := range out {
			if math.Abs(v-extra) < 1e-9 {
				return out
			}
		}
		out = append(out, extra)
		sort.Float64s(out)
	}
	return out
}

// e16Fracs is E16's captured-peer-fraction sweep.
func e16Fracs(cfg Config) []float64 {
	return sweepWithExtra([]float64{0, 0.25, 0.5, 0.75, 1.0}, cfg.EclipseFrac)
}

// e16Bitcoin runs one eclipse sweep point on a Bitcoin network: node 0
// (the observer) is the victim; frac of its peer links are captured. At
// zero the pipeline is the untouched honest run.
func e16Bitcoin(cfg Config, frac float64) ([]string, error) {
	net, err := netsim.NewBitcoin(netsim.BitcoinConfig{
		Net:           cfg.netParams(10, 4, cfg.Seed+11, 20*time.Millisecond, 150*time.Millisecond),
		BlockInterval: 15 * time.Second, Accounts: 64, InitialBalance: 1 << 32,
	})
	if err != nil {
		return nil, err
	}
	net.Eclipse(0, frac)
	dur := cfg.dur(10 * time.Minute)
	load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+211)), workload.Config{
		Accounts: 64, Rate: 8, Duration: dur, MaxAmount: 20,
	})
	m := net.RunWithPayments(dur, load, 5)
	rep := net.EclipseReport(0)
	st := net.Runtime().Stats()
	return []string{
		metrics.Pct(frac), "bitcoin (PoW)",
		metrics.I(int(rep.VictimHeight)), metrics.I(int(rep.ConsensusHeight)),
		metrics.I(rep.HeightLag), metrics.I(rep.ExposedBlocks),
		metrics.I(m.PendingAtEnd), "—",
		metrics.I(st.InboundDropped + st.OutboundDropped),
	}, nil
}

// e16Nano runs one eclipse sweep point on a Nano network: the victim is
// node 0 (the observer), so the observer-side metrics — settled count,
// unsettled backlog, confirmation latency — are the victim's experience.
func e16Nano(cfg Config, frac float64) ([]string, error) {
	net, err := netsim.NewNano(netsim.NanoConfig{
		Net:      cfg.netParams(10, 4, cfg.Seed+13, 10*time.Millisecond, 60*time.Millisecond),
		Accounts: 40, Reps: 4, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	net.Eclipse(0, frac)
	dur := cfg.dur(30 * time.Second)
	load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+213)), workload.Config{
		Accounts: 40, Rate: 20, Duration: dur * 3 / 4, MaxAmount: 5,
	})
	m := net.RunWithTransfers(dur, load)
	victimBlocks, healthyBlocks := net.BlockCountOf(0), net.BlockCountOf(1)
	lag := healthyBlocks - victimBlocks
	if lag < 0 {
		lag = 0
	}
	confirmCell := "—"
	if m.ConfirmLatency.N() > 0 {
		confirmCell = fmt.Sprintf("%.0f ms", 1000*m.ConfirmLatency.Quantile(0.95))
	}
	st := net.Runtime().Stats()
	return []string{
		metrics.Pct(frac), "nano (ORV)",
		metrics.I(victimBlocks), metrics.I(healthyBlocks),
		metrics.I(lag), "—",
		metrics.I(m.UnsettledAtEnd), confirmCell,
		metrics.I(st.InboundDropped + st.OutboundDropped),
	}, nil
}

// RunE16Eclipse sweeps an eclipse attack's captured-peer fraction on
// both sides of the comparison. The victim is the observer node; its
// captured links are dead in both directions, so its ledger view is
// whatever leaks through the surviving links. Chains expose the victim
// to stale confirmations (blocks it trusts that the consensus chain
// never adopted — the classic eclipse double-spend window); the lattice
// starves the victim of block gossip, so its settlement and confirmation
// pipeline stalls.
func RunE16Eclipse(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E16 (§IV): eclipse attack — victim lag & exposure vs captured peers",
		"captured", "system", "victim-progress", "network-progress",
		"lag", "exposed-blocks", "victim-backlog", "confirm-p95", "link-drops")

	fracs := e16Fracs(cfg)
	// One bitcoin and one nano point per fraction, fanned out across
	// cfg.Workers; rows land grouped by fraction, chain first.
	rows, err := fanOut(ctx, cfg, 2*len(fracs), func(i int) ([]string, error) {
		frac := fracs[i/2]
		if i%2 == 0 {
			return e16Bitcoin(cfg, frac)
		}
		return e16Nano(cfg, frac)
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("victim is node 0 (the observer); captured links drop traffic both ways, and the victim's peer view shrinks to the survivors (sim.SetPeersOf)")
	t.AddNote("chain progress is main-chain height; exposed-blocks counts victim main-chain blocks the consensus never adopted — confirmations a double spend rides through (§IV-A)")
	t.AddNote("lattice progress is attached lattice blocks (victim vs healthy replica); an eclipsed victim cannot hear sends, so receives never issue and settlement stalls (§II-B, §IV-B)")
	t.AddNote("0%% rows are the untouched honest pipeline")
	return t, nil
}

// e17Alphas and e17Withholds are E17's adversary-power sweeps.
func e17Alphas(cfg Config) []float64 {
	return sweepWithExtra([]float64{0, 0.15, 0.25, 0.35, 0.45}, cfg.SelfishAlpha)
}
func e17Withholds(cfg Config) []float64 {
	return sweepWithExtra([]float64{0, 0.25, 0.55}, cfg.WithholdWeight)
}

// e17SelfishNodes is the E17 selfish-mining network size; the adversary
// is the last node.
const e17SelfishNodes = 8

// e17SelfishNet builds E17's selfish-mining network: e17SelfishNodes-1
// honest unit-rate miners against an alpha hash share on the last node.
// The threshold test reuses this constructor at longer horizons, so the
// network the classic-threshold assertions run on is exactly the one the
// E17 table sweeps.
func e17SelfishNet(seed int64, alpha float64, shards int, queue sim.QueueBackend) (*netsim.BitcoinNet, error) {
	const nodes = e17SelfishNodes
	rates := make([]float64, nodes)
	for i := 0; i < nodes-1; i++ {
		rates[i] = 1
	}
	if alpha > 0 {
		// alpha share against nodes-1 honest units of power.
		rates[nodes-1] = alpha * float64(nodes-1) / (1 - alpha)
	}
	return netsim.NewBitcoin(netsim.BitcoinConfig{
		Net: netsim.NetParams{
			Nodes: nodes, PeerDegree: 3, Seed: seed, Shards: shards, Queue: queue,
			MinLatency: 20 * time.Millisecond, MaxLatency: 150 * time.Millisecond,
		},
		BlockInterval: 10 * time.Second, Accounts: 32, InitialBalance: 1 << 32,
		HashRates: rates,
	})
}

// e17Selfish runs one selfish-mining sweep point: the last node holds an
// alpha share of the hash power and publishes via the withheld-block
// strategy, racing with Eyal–Sirer's connectivity γ (Config.SelfishGamma;
// 0 is the historical first-seen race). Revenue share is its fraction of
// attributed observer main-chain blocks; the honest expectation is alpha
// itself.
func e17Selfish(cfg Config, alpha float64) ([]string, error) {
	const nodes = e17SelfishNodes
	net, err := e17SelfishNet(cfg.Seed+17, alpha, cfg.Shards, cfg.queue())
	if err != nil {
		return nil, err
	}
	sm := net.InstallSelfishMinerGamma(nodes-1, cfg.SelfishGamma)
	dur := cfg.dur(12 * time.Minute)
	load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+217)), workload.Config{
		Accounts: 32, Rate: 5, Duration: dur, MaxAmount: 10,
	})
	m := net.RunWithPayments(dur, load, 5)
	mined, total := net.MinerShare(nodes - 1)
	share, shareCell, gainCell := 0.0, "—", "—"
	if total > 0 {
		share = float64(mined) / float64(total)
		shareCell = metrics.Pct(share)
	}
	// Relative gain compares the adversary's main-chain share against the
	// share of blocks it actually produced this run (not the nominal
	// alpha, which lottery variance blurs at finite block counts): > 1
	// means withholding kept more of its blocks canonical than honest
	// publication would have.
	if alpha > 0 && m.BlocksTotal > 0 && sm.Produced() > 0 {
		producedShare := float64(sm.Produced()) / float64(m.BlocksTotal)
		gainCell = metrics.F(share / producedShare)
	}
	row := []string{"bitcoin (selfish mining)", metrics.Pct(alpha), metrics.Pct(sm.Gamma())}
	if cfg.SelfishGamma > 0 {
		// Measured effective γ: the share of open-race honest wins that
		// actually extended the adversary's block. It trails the
		// configured value when the adversary's block had not propagated
		// to the winning miner yet.
		effCell := "—"
		if taken, chances := net.EffectiveGamma(); chances > 0 {
			effCell = metrics.Pct(float64(taken) / float64(chances))
		}
		row = append(row, effCell)
	}
	return append(row,
		shareCell, metrics.Pct(pow.SelfishRevenue(alpha, sm.Gamma())), gainCell,
		metrics.Pct(m.OrphanRate),
		metrics.F(m.TPS), metrics.I(m.BlocksOnMain), "—",
		metrics.I(sm.Produced()),
	), nil
}

// e17Withhold runs one vote-withholding sweep point: representatives
// holding ~w of the voting weight go silent. The confirmation pipeline
// inflates as quorum thins and stalls once the silent weight passes the
// quorum margin.
func e17Withhold(cfg Config, w float64) ([]string, error) {
	net, err := netsim.NewNano(netsim.NanoConfig{
		Net:      cfg.netParams(10, 4, cfg.Seed+19, 10*time.Millisecond, 60*time.Millisecond),
		Accounts: 40, Reps: 8, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	actual := net.InstallVoteWithholding(w)
	dur := cfg.dur(30 * time.Second)
	load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+219)), workload.Config{
		Accounts: 40, Rate: 20, Duration: dur * 3 / 4, MaxAmount: 5,
	})
	m := net.RunWithTransfers(dur, load)
	confirmCell := "—"
	if m.ConfirmLatency.N() > 0 {
		confirmCell = fmt.Sprintf("%.0f ms", 1000*m.ConfirmLatency.Quantile(0.95))
	}
	row := []string{"nano (vote withholding)", metrics.Pct(actual), "—"}
	if cfg.SelfishGamma > 0 {
		row = append(row, "—") // effective-gamma is a chain-side concept
	}
	return append(row,
		"—", "—", "—", "—",
		metrics.F(m.BPS), metrics.I(m.ConfirmedBlocks), confirmCell,
		metrics.I(net.Runtime().Stats().VotesWithheld),
	), nil
}

// RunE17Strategy sweeps adversary power for the two canonical
// withholding strategies. Chain side: a selfish miner with hash share
// alpha withholds every block it finds and releases its private chain
// when rivals appear — revenue share above alpha is stolen from honest
// miners, and the forced races inflate the orphan rate (§IV-A's
// attacker, given a strategy instead of a race). Lattice side:
// representatives holding a sweep of the voting weight cast no votes at
// all — confirmation latency inflates as quorum thins and settlement
// confirmation stalls entirely once the silent weight crosses the
// quorum margin (§IV-B).
func RunE17Strategy(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	headers := []string{"system", "adversary-power", "gamma"}
	if cfg.SelfishGamma > 0 {
		// Only a γ-parameterized run has races to measure; the default
		// table keeps its historical column set byte for byte.
		headers = append(headers, "effective-gamma")
	}
	headers = append(headers, "revenue-share", "analytic",
		"relative-gain", "orphan-rate", "throughput", "confirmed", "confirm-p95", "withheld")
	t := metrics.NewTable("E17 (§III/§IV): selfish mining & vote withholding vs adversary power",
		headers...)

	alphas, withholds := e17Alphas(cfg), e17Withholds(cfg)
	rows, err := fanOut(ctx, cfg, len(alphas)+len(withholds), func(i int) ([]string, error) {
		if i < len(alphas) {
			return e17Selfish(cfg, alphas[i])
		}
		return e17Withhold(cfg, withholds[i-len(alphas)])
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("selfish mining: revenue-share is the adversary's slice of attributed main-chain blocks; relative-gain compares it to the share it produced — honest publication yields 1.00, withholding exceeds it past the profitability threshold (§IV-A)")
	t.AddNote("gamma is Eyal–Sirer's connectivity: the honest hash fraction mining on the adversary's block in an open 1-1 race; the analytic column is their closed-form pool revenue (pow.SelfishRevenue) — profitable above alpha = 1/3 at gamma=0, earlier as gamma rises (-selfish-gamma)")
	if cfg.SelfishGamma > 0 {
		t.AddNote("effective-gamma is the measured race outcome: open-race honest wins that extended the adversary's block, over all open-race honest wins — it trails the configured gamma when the adversary's block had not propagated to the winner yet")
	}
	t.AddNote("vote withholding: silenced representatives never vote, so their weight vanishes from every election; past the quorum margin nothing confirms (§IV-B) — compare confirm-p95 and confirmed against the 0%% row")
	t.AddNote("withheld column: blocks kept private (chain) / votes never cast (lattice)")
	t.AddNote("zero-power rows are the untouched honest pipelines")
	return t, nil
}
