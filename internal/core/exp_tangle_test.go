package core

// E21 acceptance properties: the tangle-confirmation table must be a
// pure function of (Seed, Scale) — identical for any event-queue shard
// count and any worker count, like E19/E20 — and every sweep point must
// measure something: honest rows confirm traffic, parasite rows release
// their hidden sub-tangle and land attacker vertices.

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func renderE21(t *testing.T, cfg Config) string {
	t.Helper()
	tbl, err := RunE21TangleConfirmation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// The tangle rides the same deterministic simulator as the other
// paradigms: E21 renders byte-identically for any shard count and any
// sweep-point fan-out width.
func TestE21ShardAndWorkerInvariance(t *testing.T) {
	base := Config{Seed: 11, Scale: 0.02}
	serial := renderE21(t, Config{Seed: base.Seed, Scale: base.Scale, Shards: 1, Workers: 1})
	for _, variant := range []Config{
		{Seed: base.Seed, Scale: base.Scale, Shards: 4, Workers: 1},
		{Seed: base.Seed, Scale: base.Scale, Shards: 8, Workers: DefaultWorkers()},
		{Seed: base.Seed, Scale: base.Scale, Shards: 1, Workers: 4},
	} {
		if got := renderE21(t, variant); got != serial {
			t.Fatalf("E21 diverged at shards=%d workers=%d:\n--- got ---\n%s\n--- want ---\n%s",
				variant.Shards, variant.Workers, got, serial)
		}
	}
}

// Every sweep point must measure something: honest thresholds confirm,
// the parasite releases and self-certifies.
func TestE21RowsCarryData(t *testing.T) {
	tbl, err := RunE21TangleConfirmation(context.Background(), Config{Seed: 11, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if want := len(e21Weights) + len(e21ReleaseDepths); len(rows) != want {
		t.Fatalf("E21 rows = %d, want %d", len(rows), want)
	}
	for i, row := range rows {
		if row[3] == "0" {
			t.Fatalf("row %d confirmed nothing: %v", i, row)
		}
		if i < len(e21Weights) {
			if row[0] != "honest" {
				t.Fatalf("row %d scenario = %q, want honest", i, row[0])
			}
			continue
		}
		if !strings.HasPrefix(row[0], "parasite (release at ") {
			t.Fatalf("parasite row %d never released: %v", i, row)
		}
		attacker, err := strconv.Atoi(row[8])
		if err != nil || attacker == 0 {
			t.Fatalf("parasite row %d landed no attacker vertices: %v", i, row)
		}
		depth := e21ReleaseDepths[i-len(e21Weights)]
		if withheld, err := strconv.Atoi(row[9]); err != nil || withheld < depth {
			t.Fatalf("parasite row %d withheld %s, want >= %d", i, row[9], depth)
		}
	}
}

// The honest confidence/latency tradeoff must hold: the thresholds all
// run the identical network and workload (confirmation never feeds back
// into gossip), so a higher coverage threshold never confirms more
// vertices than a lower one.
func TestE21ThresholdShape(t *testing.T) {
	tbl, err := RunE21TangleConfirmation(context.Background(), Config{Seed: 11, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	prev := -1
	for i := range e21Weights {
		confirmed, err := strconv.Atoi(rows[i][3])
		if err != nil {
			t.Fatalf("row %d confirmed cell %q not a count", i, rows[i][3])
		}
		if prev >= 0 && confirmed > prev {
			t.Fatalf("threshold %d confirmed %d > threshold %d's %d",
				e21Weights[i], confirmed, e21Weights[i-1], prev)
		}
		prev = confirmed
	}
}
