package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/account"
	"repro/internal/channels"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/plasma"
	"repro/internal/sharding"
	"repro/internal/utxo"
	"repro/internal/workload"
)

// e9SysResult is one E9 sweep point: its rendered row and the value the
// cross-system shape check compares (TPS, or BPS for Nano).
type e9SysResult struct {
	row []string
	tps float64
}

// e9BitcoinDur and e9NanoDur are the simulated spans of the E9 bitcoin
// and nano networks — E14 schedules its fault windows relative to them.
func e9BitcoinDur(cfg Config) time.Duration { return cfg.dur(12 * time.Minute) }
func e9NanoDur(cfg Config) time.Duration    { return cfg.dur(40 * time.Second) }

// e9Bitcoin runs the E9 bitcoin network — the paper's 1 MB/10 min system
// under a saturating workload — optionally under a fault schedule. With
// faults == nil the run is byte-identical to the historical E9 row; E14's
// baseline rows and its partition/churn scenarios all reuse it. The
// second return reports whether every node's tip converged by the end.
func e9Bitcoin(cfg Config, faults *netsim.FaultSchedule) (netsim.ChainMetrics, bool, error) {
	btcParams := utxo.DefaultParams()
	btcParams.MaxBlockBytes = 19_000
	btcParams.RetargetWindow = 1 << 30
	btcParams.GenesisOutputsPerAccount = 64
	btc, err := netsim.NewBitcoin(netsim.BitcoinConfig{
		Net:    cfg.netParams(8, 3, cfg.Seed, 50*time.Millisecond, 500*time.Millisecond),
		Ledger: btcParams, BlockInterval: 30 * time.Second,
		Accounts: 128, InitialBalance: 1 << 32,
	})
	if err != nil {
		return netsim.ChainMetrics{}, false, err
	}
	if faults != nil {
		faults.ApplyToBitcoin(btc)
	}
	dur := e9BitcoinDur(cfg)
	load := workload.Payments(rand.New(rand.NewSource(cfg.Seed)), workload.Config{
		Accounts: 128, Rate: 30, Duration: dur, MaxAmount: 50,
	})
	m := btc.RunWithPayments(dur, load, 10)
	// Tip equality with a two-block tolerance: blocks still propagating
	// at the cutoff instant are not divergence.
	return m, btc.ConvergedWithin(2), nil
}

// e9Nano runs the E9 Nano network — consumer-hardware budget, optional
// gossip batching — optionally under a fault schedule. With faults == nil
// the run is byte-identical to the historical E9 row. When assess is set
// the second return reports whether every replica's lattice converged
// once the network quiesced (E14's recovery verdict); E9's own sweep
// rows pass false and skip the post-cutoff drain entirely.
func e9Nano(cfg Config, batch int, window time.Duration, faults *netsim.FaultSchedule, assess bool) (netsim.NanoMetrics, bool, error) {
	nanoDur := e9NanoDur(cfg)
	nano, err := netsim.NewNano(netsim.NanoConfig{
		Net:      cfg.netParams(8, 3, cfg.Seed+3, 10*time.Millisecond, 80*time.Millisecond),
		Accounts: 64, Reps: 4, Workers: cfg.Workers,
		BatchSize: batch, BatchWindow: window,
		ProcPerBlock: 4 * time.Millisecond, // consumer-grade validation
		ProcPerVote:  500 * time.Microsecond,
	})
	if err != nil {
		return netsim.NanoMetrics{}, false, err
	}
	if faults != nil {
		faults.ApplyToNano(nano)
	}
	load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+103)), workload.Config{
		Accounts: 64, Rate: 120, Duration: nanoDur * 3 / 4, MaxAmount: 5,
	})
	m := nano.RunWithTransfers(nanoDur, load)
	if !assess {
		return m, false, nil
	}
	// Convergence is judged at quiescence: the metrics freeze at the E9
	// cutoff (baseline cells stay byte-identical to E9), then the event
	// queue drains — the saturated §VI-B backlog settles and only real
	// divergence (an unhealed split, a node that never caught up) remains.
	nano.Sim().Run(0)
	return m, nano.LatticeConverged(), nil
}

// e9NanoSystem builds an E9 Nano sweep point. Every batch setting runs
// the identical network, seed and workload, so the batched row isolates
// the live-gossip settlement pipeline (§VI-B: throughput bounded by
// hardware, not protocol).
func e9NanoSystem(cfg Config, label, capacity string, batch int, window time.Duration) func() (e9SysResult, error) {
	return func() (e9SysResult, error) {
		m, _, err := e9Nano(cfg, batch, window, nil, false)
		if err != nil {
			return e9SysResult{}, err
		}
		return e9SysResult{tps: m.BPS, row: []string{
			label, "none (per-account)", capacity,
			metrics.F(m.BPS), "306 peak / 105.75 avg", metrics.I(m.UnsettledAtEnd)}}, nil
	}
}

// e9BitcoinSystems is the bitcoin paradigm's E9 contribution: ~1900
// transactions per 1 MB block every 10 min. The interval is shortened
// 20× for simulation; the byte budget shrinks with it and is expressed
// in *our* ~198 B transfer encoding so the per-block transaction count
// — what the paper's 3–7 TPS reflects — matches mainnet's (1900 ×
// 198 B ÷ 20 ≈ 19 KB per 30 s). The network itself lives in e9Bitcoin,
// shared with E14's fault scenarios.
func e9BitcoinSystems(cfg Config) []e9System {
	return []e9System{{key: "bitcoin", run: func() (e9SysResult, error) {
		m, _, err := e9Bitcoin(cfg, nil)
		if err != nil {
			return e9SysResult{}, err
		}
		return e9SysResult{tps: m.TPS, row: []string{
			"bitcoin (PoW)", "10 min (scaled 30 s)", "1 MB blocks",
			metrics.F(m.TPS), "3–7", metrics.I(m.PendingAtEnd)}}, nil
	}}}
}

// e9EthereumSystems is the ethereum paradigm's E9 contribution: the PoW
// and PoS consensus variants, two sweep systems from one registration.
func e9EthereumSystems(cfg Config) []e9System {
	net8 := func(seed int64) netsim.NetParams {
		return cfg.netParams(8, 3, seed, 50*time.Millisecond, 500*time.Millisecond)
	}
	dur := cfg.dur(12 * time.Minute)
	return []e9System{
		// Ethereum PoW: 15 s blocks, gas-limited. The 2018 mainnet ran an
		// 8M gas limit with an average transaction of ~50k gas (contract
		// mix); our workload is pure 21k-gas transfers, so the equivalent
		// per-block budget is 8M × 21/50 ≈ 3.4M.
		{key: "eth-pow", run: func() (e9SysResult, error) {
			ethParams := account.DefaultParams()
			ethParams.InitialGasLimit = 3_400_000
			ethParams.TargetGasLimit = 3_400_000
			eth, err := netsim.NewEthereum(netsim.EthereumConfig{
				Net: net8(cfg.Seed + 1), Consensus: netsim.PoW, Ledger: ethParams,
				BlockInterval: 15 * time.Second, Accounts: 128,
			})
			if err != nil {
				return e9SysResult{}, err
			}
			load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+101)), workload.Config{
				Accounts: 128, Rate: 40, Duration: dur, MaxAmount: 50,
			})
			m := eth.RunWithPayments(dur, load, 1)
			return e9SysResult{tps: m.TPS, row: []string{
				"ethereum (PoW)", "15 s", "8M gas (≈3.4M at transfer gas)",
				metrics.F(m.TPS), "7–15", metrics.I(m.PendingAtEnd)}}, nil
		}},
		// Ethereum PoS: 4 s slots ("the transition to PoS should decrease
		// Ethereum's block generation time to 4 seconds or lower").
		{key: "eth-pos", run: func() (e9SysResult, error) {
			pos, err := netsim.NewEthereum(netsim.EthereumConfig{
				Net: net8(cfg.Seed + 2), Consensus: netsim.PoS,
				BlockInterval: 4 * time.Second, Accounts: 128,
			})
			if err != nil {
				return e9SysResult{}, err
			}
			load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+102)), workload.Config{
				Accounts: 128, Rate: 60, Duration: dur, MaxAmount: 50,
			})
			m := pos.RunWithPayments(dur, load, 1)
			return e9SysResult{tps: m.TPS, row: []string{
				"ethereum (PoS)", "4 s", "8M gas blocks",
				metrics.F(m.TPS), "> PoW", metrics.I(m.PendingAtEnd)}}, nil
		}},
	}
}

// e9NanoSystems is the nano paradigm's E9 contribution: the serial
// system plus, when -nano-batch opts in, the batched twin of the same
// network — the serial-vs-batched sweep column. Unset keeps the
// historical serial-only table.
func e9NanoSystems(cfg Config) []e9System {
	out := []e9System{{key: "nano",
		run: e9NanoSystem(cfg, "nano (ORV)", "node hardware", 1, 0)}}
	if cfg.NanoBatch > 1 {
		out = append(out, e9System{key: "nano-batch", run: e9NanoSystem(cfg,
			fmt.Sprintf("nano (ORV, batch=%d)", cfg.NanoBatch),
			"node hardware + gossip batch", cfg.NanoBatch, cfg.NanoBatchWindow)})
	}
	return out
}

// RunE9Throughput reproduces §VI's throughput comparison: Bitcoin 3–7
// TPS (1 MB blocks every ~10 min), Ethereum 7–15 TPS (gas-limited ~15 s
// blocks), PoS at ~4 s blocks, Nano protocol-uncapped but bounded by
// node hardware (306 TPS peak / 105.75 avg on the 2018 stress test), the
// cooperative tangle at its own hardware-bound vertex rate, and Visa's
// 56,000 TPS as the yardstick. Each system runs under a saturating
// workload; the pending backlog mirrors the paper's 186,951/22,473
// queue observations. The system list comes from the paradigm registry
// (Config.Paradigms filters it): every selected paradigm contributes
// its sweep systems in registry order.
func RunE9Throughput(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E9 (§VI): throughput under saturation",
		"system", "block-interval", "capacity-limit", "measured-tps", "paper-range", "pending-at-end")

	// The systems are independent simulations with disjoint seeds (each
	// workload rng derives from cfg.Seed and the system index), so they
	// fan out across cfg.Workers and report in fixed registry order.
	systems := e9Systems(cfg)
	results, err := fanOut(ctx, cfg, len(systems), func(i int) (e9SysResult, error) { return systems[i].run() })
	if err != nil {
		return nil, err
	}
	tpsOf := map[string]float64{}
	for i, r := range results {
		t.AddRow(r.row...)
		tpsOf[systems[i].key] = r.tps
	}

	t.AddRow("visa (reference)", "—", "central infrastructure", "56000.00", "56,000", "—")
	t.AddNote("blockchains are capped by block size/gas × interval; Nano has 'no inherent cap in the protocol itself' (§VI-B)")
	t.AddNote("pending backlogs mirror §VI's queues: 186,951 (Bitcoin) vs 22,473 (Ethereum) pending on 05.01.2018")
	if cfg.NanoBatch > 1 && cfg.paradigmEnabled("nano") {
		t.AddNote("the batched nano row settles gossip through lattice.ProcessBatch ingest batches (-nano-batch); batch=1 reproduces the serial row")
	}
	// The §VI ordering claims, checked for whichever systems the filter
	// kept: blockchains under the gas-limited chain, both under the DAGs.
	if btc, eth, ok := pair(tpsOf, "bitcoin", "eth-pow"); ok && btc >= eth {
		return nil, fmt.Errorf("core: e9 shape violated: bitcoin %.2f >= ethereum %.2f TPS", btc, eth)
	}
	if eth, nano, ok := pair(tpsOf, "eth-pow", "nano"); ok && eth >= nano {
		return nil, fmt.Errorf("core: e9 shape violated: ethereum %.2f >= nano %.2f", eth, nano)
	}
	return t, nil
}

// pair fetches two systems' sweep values when both ran.
func pair(m map[string]float64, a, b string) (float64, float64, bool) {
	va, oka := m[a]
	vb, okb := m[b]
	return va, vb, oka && okb
}

// RunE10BlockSize reproduces §VI-A's block-size tradeoff: bigger blocks
// raise TPS but slow propagation until "consumer hardware would become
// unable to process blocks", centralizing the network. Propagation time
// as a fraction of the block interval is the centralization proxy.
func RunE10BlockSize(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E10 (§VI-A): block-size increase (Segwit2x debate)",
		"block-size", "measured-tps", "p95-propagation", "propagation/interval", "orphan-rate")
	const interval = 30 * time.Second
	// Each block size is an independent simulated network with its own
	// seed; the five sweep points fan out across cfg.Workers and the rows
	// are emitted in size order regardless of completion order.
	sizes := []int{1, 2, 4, 8, 16}
	rows, err := fanOut(ctx, cfg, len(sizes), func(i int) ([]string, error) {
		mb := sizes[i]
		params := utxo.DefaultParams()
		params.MaxBlockBytes = mb * 19_000 // mainnet-equivalent MB, scaled as in E9
		params.RetargetWindow = 1 << 30
		params.GenesisOutputsPerAccount = 64
		net, err := netsim.NewBitcoin(netsim.BitcoinConfig{
			Net: netsim.NetParams{
				Nodes: 10, PeerDegree: 3, Seed: cfg.Seed, Shards: cfg.Shards, Queue: cfg.queue(),
				MinLatency:  50 * time.Millisecond,
				MaxLatency:  300 * time.Millisecond,
				BytesPerSec: 100_000, // consumer-grade links
			},
			Ledger: params, BlockInterval: interval,
			Accounts: 128, InitialBalance: 1 << 32,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(mb)))
		dur := cfg.dur(10 * time.Minute)
		load := workload.Payments(rng, workload.Config{
			Accounts: 128, Rate: 120, Duration: dur, MaxAmount: 10,
		})
		m := net.RunWithPayments(dur, load, 5)
		p95 := time.Duration(m.Propagation.Quantile(0.95) * float64(time.Second))
		return []string{
			fmt.Sprintf("%d MB", mb), metrics.F(m.TPS), metrics.Dur(p95),
			metrics.Pct(float64(p95) / float64(interval)), metrics.Pct(m.OrphanRate),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("TPS grows with block size, but propagation eats into the interval — the §VI-A centralization pressure toward 'supercomputers'")
	return t, nil
}

// RunE11OffChain reproduces §VI-A's off-chain scaling: payment channels
// (Lightning/Raiden) run micro-transactions with two on-chain operations
// total, and Plasma commits thousands of sidechain transactions under one
// 40-byte Merkle root, with fraud proofs punishing a Byzantine operator.
func RunE11OffChain(ctx context.Context, cfg Config) (*metrics.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E11 (§VI-A): off-chain scaling",
		"approach", "logical-txs", "on-chain-cost", "amplification")

	// On-chain baseline: every payment is an on-chain transaction.
	n := cfg.count(10_000)
	t.AddRow("on-chain payments", metrics.I(n), fmt.Sprintf("%d txs", n), "1.0x")

	// Payment channel: open, stream, close.
	a, b := keys.Deterministic("e11-a"), keys.Deterministic("e11-b")
	ch, err := channels.OpenChannel(a, b, uint64(n), 0, time.Minute)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := ch.Pay(a.Address(), 1); err != nil {
			return nil, err
		}
	}
	if _, _, err := ch.CooperativeClose(); err != nil {
		return nil, err
	}
	t.AddRow("payment channel", metrics.I(ch.Updates()),
		fmt.Sprintf("%d txs (open+close)", ch.OnChainOps()),
		fmt.Sprintf("%.0fx", float64(ch.Updates())/float64(ch.OnChainOps())))

	// Plasma: commit batches of sidechain transactions as Merkle roots.
	ring := keys.NewRing("e11-plasma", 4)
	rc, err := plasma.NewRootChain(ring.Addr(0), 1_000)
	if err != nil {
		return nil, err
	}
	op := plasma.NewOperator(ring.Pair(0), rc)
	op.SetWorkers(cfg.Workers)
	op.Deposit(ring.Addr(1), uint64(n))
	perBlock := n / 10
	for blk := 0; blk < 10; blk++ {
		for i := 0; i < perBlock; i++ {
			if err := op.Submit(ring.Addr(1), ring.Addr(2), 1); err != nil {
				return nil, err
			}
		}
		if _, err := op.Seal(); err != nil {
			return nil, err
		}
	}
	t.AddRow("plasma sidechain", metrics.I(op.TxsCommitted()),
		fmt.Sprintf("%d B in roots", rc.OnChainBytes()),
		fmt.Sprintf("%.0fx bytes", op.CompressionRatio()))

	// The faulty state: fraud proof slashes the operator.
	evilRC, err := plasma.NewRootChain(ring.Addr(0), 500)
	if err != nil {
		return nil, err
	}
	evil := plasma.NewOperator(ring.Pair(0), evilRC)
	evil.SetWorkers(cfg.Workers)
	evil.AllowFraud()
	evil.Deposit(ring.Addr(1), 1)
	if err := evil.Submit(ring.Addr(1), ring.Addr(3), 9_999); err != nil {
		return nil, err
	}
	blk, err := evil.Seal()
	if err != nil {
		return nil, err
	}
	proof, err := blk.Prove(0)
	if err != nil {
		return nil, err
	}
	reward, err := evilRC.SubmitFraudProof(blk.Number, blk.Txs[0], proof)
	if err != nil {
		return nil, err
	}
	t.AddNote("channels: 'micro transactions at high volume and speed, avoiding the transaction cap of the network' (§VI-A)")
	t.AddNote(fmt.Sprintf("plasma fraud proof demonstrated: Byzantine operator slashed, %d bond awarded to the prover", reward))
	return t, nil
}

// RunE12Sharding reproduces the two scalability endgames of §VI: K-way
// sharding for blockchains ("no longer forcing all nodes to process all
// incoming transactions") and Nano's hardware-bound throughput (§VI-B:
// protocol-uncapped, limited by "consumer grade hardware and network
// conditions").
func RunE12Sharding(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E12 (§VI-A/B): sharding and DAG hardware limits",
		"configuration", "throughput", "load-factor", "per-tx-work")

	// Every shard count and every hardware budget is an independent
	// network; both sweeps fan out across cfg.Workers in row order.
	ring := keys.NewRing("e12", 256)
	rounds := cfg.count(20)
	shardCounts := []int{1, 2, 4, 8, 16}
	shardRows, err := fanOut(ctx, cfg, len(shardCounts), func(idx int) ([]string, error) {
		k := shardCounts[idx]
		net, err := sharding.NewNetwork(k)
		if err != nil {
			return nil, err
		}
		net.SetWorkers(cfg.Workers)
		for i := 0; i < ring.Len(); i++ {
			net.Fund(ring.Addr(i), 1_000_000)
		}
		for round := 0; round < rounds; round++ {
			for i := 0; i < ring.Len(); i++ {
				if err := net.Transfer(ring.Addr(i), ring.Addr((i+round+1)%ring.Len()), 1); err != nil {
					return nil, err
				}
			}
			if err := net.SealAll(); err != nil {
				return nil, err
			}
		}
		load := net.Load()
		cross := float64(load.CrossTxs) / float64(load.CrossTxs+load.LocalTxs)
		capacity := sharding.CapacityTPS(k, 100, cross)
		return []string{
			fmt.Sprintf("blockchain, K=%d shards (%.0f%% cross)", k, 100*cross),
			fmt.Sprintf("%.0f tps @100/node", capacity),
			metrics.Pct(load.LoadFactor),
			metrics.F(load.PerTxWork),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range shardRows {
		t.AddRow(row...)
	}

	// Nano under increasing hardware budgets, serial and batched: the
	// serial points reproduce the historical rows byte for byte; the
	// batched points rerun the identical network with the live-gossip
	// ingest queue enabled (Config.NanoBatch) — the batched-vs-serial
	// sweep column of §VI-B. Opt-in via -nano-batch > 1; unset keeps the
	// historical serial-only table.
	procs := []time.Duration{20 * time.Millisecond, 5 * time.Millisecond, 1 * time.Millisecond}
	type nanoPoint struct {
		proc  time.Duration
		batch int
	}
	points := make([]nanoPoint, 0, 2*len(procs))
	for _, proc := range procs {
		points = append(points, nanoPoint{proc: proc, batch: 1})
	}
	if cfg.NanoBatch > 1 {
		for _, proc := range procs {
			points = append(points, nanoPoint{proc: proc, batch: cfg.NanoBatch})
		}
	}
	nanoRows, err := fanOut(ctx, cfg, len(points), func(idx int) ([]string, error) {
		pt := points[idx]
		net, err := netsim.NewNano(netsim.NanoConfig{
			Net:      cfg.netParams(8, 3, cfg.Seed, 10*time.Millisecond, 60*time.Millisecond),
			Accounts: 64, Reps: 4, Workers: cfg.Workers,
			BatchSize: pt.batch, BatchWindow: cfg.NanoBatchWindow,
			ProcPerBlock: pt.proc, ProcPerVote: pt.proc / 10,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		dur := cfg.dur(30 * time.Second)
		load := workload.Payments(rng, workload.Config{
			Accounts: 64, Rate: 150, Duration: dur * 3 / 4, MaxAmount: 5,
		})
		m := net.RunWithTransfers(dur, load)
		label := fmt.Sprintf("nano, %v/block hardware", pt.proc)
		if pt.batch > 1 {
			label = fmt.Sprintf("nano, %v/block hardware, batch=%d", pt.proc, pt.batch)
		}
		return []string{
			label,
			fmt.Sprintf("%.1f blocks/s", m.BPS),
			"1 (every node processes all)", "2.00",
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range nanoRows {
		t.AddRow(row...)
	}
	t.AddNote("sharding: load factor ≈ 1/K — the §VII definition of a scalable DLT")
	t.AddNote("nano: protocol-uncapped; faster hardware raises the ceiling (306 TPS peak vs 105.75 avg in the 2018 stress test)")
	if cfg.NanoBatch > 1 {
		t.AddNote("batch rows: gossip settles through lattice.ProcessBatch ingest batches, amortizing the per-block budget across modeled cores")
	}
	return t, nil
}
