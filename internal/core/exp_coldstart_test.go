package core

// E20 acceptance properties: the cold-start table must be a pure
// function of (Seed, Scale) — identical for any event-queue shard count
// and any worker count — and every sweep point must actually complete
// its catch-up and pull bytes (an "incomplete" row measures nothing).

import (
	"context"
	"strings"
	"testing"
)

func renderE20(t *testing.T, cfg Config) string {
	t.Helper()
	tbl, err := RunE20ColdStart(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// The sync manager's pulls ride the same deterministic simulator as the
// gossip they recover: E20 renders byte-identically for any shard count
// and any sweep-point fan-out width.
func TestE20ShardAndWorkerInvariance(t *testing.T) {
	base := Config{Seed: 11, Scale: 0.02}
	serial := renderE20(t, Config{Seed: base.Seed, Scale: base.Scale, Shards: 1, Workers: 1})
	for _, variant := range []Config{
		{Seed: base.Seed, Scale: base.Scale, Shards: 4, Workers: 1},
		{Seed: base.Seed, Scale: base.Scale, Shards: 8, Workers: DefaultWorkers()},
		{Seed: base.Seed, Scale: base.Scale, Shards: 1, Workers: 4},
	} {
		if got := renderE20(t, variant); got != serial {
			t.Fatalf("E20 diverged at shards=%d workers=%d:\n--- got ---\n%s\n--- want ---\n%s",
				variant.Shards, variant.Workers, got, serial)
		}
	}
}

// Every point must finish its bootstrap within the horizon and pull a
// growing history: catch-up complete, bytes pulled, range pulls issued.
func TestE20RowsCarryData(t *testing.T) {
	tbl, err := RunE20ColdStart(context.Background(), Config{Seed: 11, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	cfg := Config{Scale: 0.02}.withDefaults()
	if want := len(e20Systems(cfg)) * len(e20Factors); len(rows) != want {
		t.Fatalf("E20 rows = %d, want %d", len(rows), want)
	}
	for _, row := range rows {
		if row[4] == "incomplete" {
			t.Fatalf("cold sync never completed: %v", row)
		}
		if row[5] == "0 B" {
			t.Fatalf("zero bytes pulled: %v", row)
		}
		if row[6] == "0" {
			t.Fatalf("no range pulls issued: %v", row)
		}
		if row[2] == "0" {
			t.Fatalf("empty history — the point bootstrapped nothing: %v", row)
		}
	}
}

// The sync knobs must actually reach the networks: a smaller pull batch
// means strictly more range windows for the same history.
func TestE20PullBatchKnob(t *testing.T) {
	cfg := Config{Seed: 11, Scale: 0.02}
	wide, err := RunE20ColdStart(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	narrowCfg := cfg
	narrowCfg.SyncPullBatch = 2
	narrow, err := RunE20ColdStart(context.Background(), narrowCfg)
	if err != nil {
		t.Fatal(err)
	}
	morePulls := false
	for i, row := range narrow.Rows() {
		if row[6] > wide.Rows()[i][6] || len(row[6]) > len(wide.Rows()[i][6]) {
			morePulls = true
		}
	}
	if !morePulls {
		t.Fatal("SyncPullBatch=2 issued no more range pulls than the default window")
	}
}
