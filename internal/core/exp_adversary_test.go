package core

// Golden tests for the adversarial experiments: E14's baseline rows must
// reproduce E9's unfaulted pipeline byte for byte, and E15's zero-power
// rows are the unfaulted baselines on both sides.

import (
	"context"
	"strings"
	"testing"
)

// The acceptance invariant: with zero attackers and no injected faults,
// E14's baseline rows carry exactly the cells the unfaulted E9 pipeline
// produces — same simulation, same seed, same formatting, byte for byte.
func TestE14BaselineMatchesE9(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the E9 networks four times")
	}
	cfg := Config{Seed: 17, Scale: 0.1}
	e9, err := RunE9Throughput(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e14, err := RunE14Resilience(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r9, r14 := e9.Rows(), e14.Rows()
	// E9: row 0 bitcoin, row 3 nano; columns measured-tps=3, pending=5.
	// E14: row 0 bitcoin baseline, row 1 nano baseline; columns
	// throughput=2, pending/unsettled=6.
	for _, cmp := range []struct {
		name          string
		e9Row, e14Row int
		e9Col, e14Col int
		what          string
	}{
		{"bitcoin", 0, 0, 3, 2, "throughput"},
		{"bitcoin", 0, 0, 5, 6, "backlog"},
		{"nano", 3, 1, 3, 2, "throughput"},
		{"nano", 3, 1, 5, 6, "backlog"},
	} {
		got, want := r14[cmp.e14Row][cmp.e14Col], r9[cmp.e9Row][cmp.e9Col]
		if got != want {
			t.Errorf("%s %s: E14 baseline %q != E9 %q", cmp.name, cmp.what, got, want)
		}
	}
	if !strings.HasPrefix(r14[0][0], "baseline") || !strings.HasPrefix(r14[1][0], "baseline") {
		t.Fatalf("E14 baseline rows moved: %q / %q", r14[0][0], r14[1][0])
	}
}

// E15's zero-power rows: a 0%-hashrate attacker never wins the catch-up
// race, and the zero-byzantine lattice point reports zero attacker share.
func TestE15ZeroPowerBaselines(t *testing.T) {
	tbl, err := RunE15DoubleSpend(context.Background(), Config{Seed: 23, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if len(rows) != 10 {
		t.Fatalf("E15 rows = %d, want 6 chain + 4 nano sweep points", len(rows))
	}
	// Row 0: q=0 chain point — simulated and analytic success are zero.
	if rows[0][1] != "0.00%" || rows[0][3] != "0.0000" || rows[0][4] != "0.0000" {
		t.Fatalf("chain zero-power row wrong: %v", rows[0])
	}
	// Row 6: k=0 nano point — no byzantine weight.
	if rows[6][1] != "0.00%" {
		t.Fatalf("nano zero-power row wrong: %v", rows[6])
	}
	// Every nano point injected at least one double spend.
	for _, row := range rows[6:] {
		if row[2] == "0" {
			t.Fatalf("nano sweep point with zero injected trials: %v", row)
		}
	}
}

// E15 must be deterministic for any worker count: the sweep points own
// derived rngs, so the fan-out schedule cannot leak into the table.
func TestE15DeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		tbl, err := RunE15DoubleSpend(context.Background(), Config{Seed: 29, Scale: 0.05, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial := render(1)
	for _, workers := range []int{4, DefaultWorkers()} {
		if got := render(workers); got != serial {
			t.Fatalf("E15 diverged at workers=%d:\n--- got ---\n%s\n--- want ---\n%s", workers, got, serial)
		}
	}
}

// E14 must also be worker-count independent, faults included.
func TestE14DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the E9 networks repeatedly")
	}
	render := func(workers int) string {
		tbl, err := RunE14Resilience(context.Background(), Config{Seed: 31, Scale: 0.05, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial := render(1)
	if got := render(6); got != serial {
		t.Fatalf("E14 diverged at workers=6:\n--- got ---\n%s\n--- want ---\n%s", got, serial)
	}
}

// The fault knobs default sensibly and thread through withDefaults.
func TestAdversaryConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.FaultPartitionFrac != 0.5 || c.FaultChurnNodes != 2 || c.DoubleSpendTrials != 3 {
		t.Fatalf("adversary defaults wrong: %+v", c)
	}
	c = Config{FaultPartitionFrac: 1.5, FaultChurnNodes: -1, DoubleSpendTrials: 0}.withDefaults()
	if c.FaultPartitionFrac != 0.5 || c.FaultChurnNodes != 2 || c.DoubleSpendTrials != 3 {
		t.Fatalf("adversary clamps wrong: %+v", c)
	}
	c = Config{FaultPartitionFrac: 0.25, FaultChurnNodes: 3, DoubleSpendTrials: 5}.withDefaults()
	if c.FaultPartitionFrac != 0.25 || c.FaultChurnNodes != 3 || c.DoubleSpendTrials != 5 {
		t.Fatalf("explicit adversary config overwritten: %+v", c)
	}
}
