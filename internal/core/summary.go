package core

import (
	"repro/internal/metrics"
)

// Summary renders the paper's §VII conclusion as a table: the
// five-dimension qualitative comparison between the two paradigms, each
// row backed by the experiment that measures it in this repository.
func Summary() *metrics.Table {
	t := metrics.NewTable("Blockchain vs. DAG — the paper's comparison (§VII), experiment-backed",
		"dimension", "blockchain (Bitcoin/Ethereum)", "DAG (Nano)", "experiments")
	t.AddRow(
		"data structure (§II)",
		"transactions bundled in hash-linked blocks; one global chain",
		"one chain per account; each block a single transaction",
		"E1, E2, E3",
	)
	t.AddRow(
		"consensus (§III)",
		"stochastic leader election: PoW hash lottery or PoS stake lottery",
		"no leaders: users order own transactions; weighted representative votes on conflicts",
		"E13",
	)
	t.AddRow(
		"confirmation (§IV)",
		"probabilistic: wait 6 (BTC) / 5-11 (ETH) blocks against orphaning; FFG checkpoints for finality",
		"vote quorum in network-latency time; cementing for finality",
		"E4, E5, E6, E14-E17",
	)
	t.AddRow(
		"ledger size (§V)",
		"145.95 GB / 39.62 GB; prune block files or state deltas (fast sync)",
		"3.42 GB; head-only pruning possible because accounts store balances",
		"E7, E8",
	)
	t.AddRow(
		"scalability (§VI)",
		"capped by block size x interval; escape via bigger blocks, channels, Plasma, sharding",
		"no protocol cap; bounded by node hardware and network conditions",
		"E9, E10, E11, E12",
	)
	t.AddNote("neither paradigm guarantees scalability per se: 'every node does not need to process every transaction' is the bar (§VII)")
	t.AddNote("run `dltbench -experiment <id>` to regenerate the evidence behind any row")
	return t
}
