package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

// renderAll renders every table of a report into one string, in request
// order, so sweeps can be compared byte for byte.
func renderAll(t *testing.T, r *Report) string {
	t.Helper()
	var sb strings.Builder
	for _, run := range r.Runs {
		if run.Err != nil {
			t.Fatalf("%s: %v", run.Experiment.ID, run.Err)
		}
		fmt.Fprintf(&sb, "== %s seed=%d\n", run.Experiment.ID, run.Seed)
		if err := run.Table.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// The tentpole guarantee: same sweep seed, any worker count, identical
// tables — scheduling must never leak into results.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	base, err := RunAll(Config{Seed: 7, Scale: 0.05, Workers: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, base)
	// workers=4 stresses queueing, workers=17 (one per experiment) plus
	// inner fan-out is the most adversarial schedule; NumCPU is whatever
	// this host would default to. Tables must be byte-identical for all.
	variants := []int{4, 17}
	if n := DefaultWorkers(); n != 1 && n != 4 && n != 17 {
		variants = append(variants, n)
	}
	for _, workers := range variants {
		rep, err := RunAll(Config{Seed: 7, Scale: 0.05, Workers: workers}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderAll(t, rep); got != want {
			t.Fatalf("workers=%d diverged from workers=1:\n--- got ---\n%s\n--- want ---\n%s", workers, got, want)
		}
		if rep.Workers != workers {
			t.Fatalf("report workers = %d, want %d", rep.Workers, workers)
		}
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	a, b := DeriveSeed(42, "E1"), DeriveSeed(42, "E1")
	if a != b {
		t.Fatalf("DeriveSeed not stable: %d vs %d", a, b)
	}
	if DeriveSeed(42, "E1") == DeriveSeed(42, "E2") {
		t.Fatal("different experiments share a derived seed")
	}
	if DeriveSeed(42, "E1") == DeriveSeed(43, "E1") {
		t.Fatal("different base seeds share a derived seed")
	}
	if DeriveSeed(42, "E1") <= 0 {
		t.Fatal("derived seed must stay positive so withDefaults keeps it")
	}
}

func fakeExperiment(id string, run func(Config) (*metrics.Table, error)) Experiment {
	return Experiment{
		ID: id, Title: "fake " + id, Section: "test",
		Run: func(_ context.Context, cfg Config) (*metrics.Table, error) { return run(cfg) },
	}
}

func TestRunSelectedErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	ok := func(Config) (*metrics.Table, error) {
		ran.Add(1)
		return metrics.NewTable("t", "c"), nil
	}
	bad := func(Config) (*metrics.Table, error) { return nil, boom }
	panicky := func(Config) (*metrics.Table, error) { panic("kaboom") }

	exps := []Experiment{
		fakeExperiment("F1", ok),
		fakeExperiment("F2", bad),
		fakeExperiment("F3", panicky),
		fakeExperiment("F4", ok),
	}
	rep, err := RunSelected(context.Background(), Config{Seed: 1, Scale: 1}, 2, exps)
	if err == nil {
		t.Fatal("aggregate error missing")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("aggregate error does not wrap the experiment error: %v", err)
	}
	if !strings.Contains(err.Error(), "F2") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("aggregate error lacks detail: %v", err)
	}
	// A failing or panicking experiment must not stop its siblings.
	if got := ran.Load(); got != 2 {
		t.Fatalf("healthy experiments ran %d/2 times", got)
	}
	if rep.Runs[0].Err != nil || rep.Runs[3].Err != nil {
		t.Fatalf("healthy runs carry errors: %v %v", rep.Runs[0].Err, rep.Runs[3].Err)
	}
	if rep.Runs[1].Err == nil || rep.Runs[2].Err == nil {
		t.Fatal("failed runs lack errors")
	}
}

func TestRunSelectedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	// The first experiment cancels the context; with one worker, every
	// later experiment must be marked not-started with the context error.
	exps := []Experiment{
		fakeExperiment("C1", func(Config) (*metrics.Table, error) {
			ran.Add(1)
			cancel()
			return metrics.NewTable("t", "c"), nil
		}),
		fakeExperiment("C2", func(Config) (*metrics.Table, error) {
			ran.Add(1)
			return metrics.NewTable("t", "c"), nil
		}),
		fakeExperiment("C3", func(Config) (*metrics.Table, error) {
			ran.Add(1)
			return metrics.NewTable("t", "c"), nil
		}),
	}
	rep, err := RunSelected(ctx, Config{Seed: 1, Scale: 1}, 1, exps)
	if err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d experiments ran after cancellation, want 1", got)
	}
	for _, run := range rep.Runs[1:] {
		if !errors.Is(run.Err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", run.Experiment.ID, run.Err)
		}
	}
}

// fanOut must report every failing sweep point, not just the lowest
// index: a multi-point failure is diagnosed in one pass.
func TestFanOutJoinsAllErrors(t *testing.T) {
	errA, errB := errors.New("point-two-broke"), errors.New("point-five-broke")
	out, err := fanOut(context.Background(), Config{Workers: 2}, 6, func(i int) (int, error) {
		switch i {
		case 2:
			return 0, errA
		case 5:
			return 0, errB
		default:
			return i * 10, nil
		}
	})
	if err == nil {
		t.Fatal("fanOut swallowed the failures")
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error missing a failure: %v", err)
	}
	for _, want := range []string{"sweep point 2", "sweep point 5"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error lacks index context %q: %v", want, err)
		}
	}
	// Healthy points still ran and returned results.
	if out[0] != 0 || out[1] != 10 || out[3] != 30 || out[4] != 40 {
		t.Fatalf("healthy results clobbered: %v", out)
	}
}

// Cancelling the context mid-experiment must stop the sweep points that
// have not started — interruption mid-flight, not just between
// experiments.
func TestFanOutCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_, err := fanOut(ctx, Config{Workers: 1}, 5, func(i int) (int, error) {
		started.Add(1)
		if i == 1 {
			cancel()
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("cancelled fan-out reported no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := started.Load(); got != 2 {
		t.Fatalf("%d sweep points ran after cancellation, want 2", got)
	}
}

// And end to end: a context cancelled while an experiment is inside its
// sweep interrupts that experiment, whose error records the cancellation.
func TestExperimentCancelledMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunE9Throughput(ctx, Config{Seed: 5, Scale: 0.05}); !errors.Is(err, context.Canceled) {
		t.Fatalf("E9 under a cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := RunE4Forks(ctx, Config{Seed: 5, Scale: 0.05}); !errors.Is(err, context.Canceled) {
		t.Fatalf("E4 under a cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestReportTableAndSpeedup(t *testing.T) {
	rep, err := RunSelected(context.Background(), Config{Seed: 3, Scale: 1}, 2, []Experiment{
		fakeExperiment("T1", func(Config) (*metrics.Table, error) { return metrics.NewTable("t", "c"), nil }),
		fakeExperiment("T2", func(Config) (*metrics.Table, error) { return metrics.NewTable("t", "c"), nil }),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.Table().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T1", "T2", "speedup=", "workers=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report table missing %q:\n%s", want, out)
		}
	}
	if rep.SerialTime() < rep.Runs[0].Elapsed {
		t.Fatal("serial sum below a single run")
	}
}
