package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/keys"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/utxo"
	"repro/internal/workload"
)

// RunE1BlockchainStructure reproduces Fig. 1: ordered blocks whose
// headers reference the predecessor's hash, transactions committed under
// a Merkle root, and the genesis block with no predecessor. The table
// lists the built chain and verifies both invariants on every block.
func RunE1BlockchainStructure(ctx context.Context, cfg Config) (*metrics.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ring := keys.NewRing("e1", 8)
	alloc := map[keys.Address]uint64{ring.Addr(0): 1_000_000}
	params := utxo.DefaultParams()
	params.InitialDifficulty = 1
	ledger, err := utxo.NewLedger(alloc, params)
	if err != nil {
		return nil, err
	}
	blocks := cfg.count(8)
	for i := 0; i < blocks; i++ {
		tx, err := utxo.NewPayment(ledger.UTXOSet(), ring.Pair(0), ring.Addr(1+i%6), 100, 1)
		if err != nil {
			return nil, err
		}
		if err := ledger.SubmitTx(tx); err != nil {
			return nil, err
		}
		b := ledger.BuildBlock(ring.Addr(7), time.Duration(i+1)*10*time.Minute)
		if _, err := ledger.ProcessBlock(b); err != nil {
			return nil, err
		}
	}

	t := metrics.NewTable("E1 (Fig. 1): blockchain as a data structure",
		"height", "block", "parent", "txs", "merkle-root", "links-ok")
	store := ledger.Store()
	prev := ""
	for _, h := range store.MainChain() {
		b, _ := store.Get(h)
		parent := b.Header.Parent.String()
		if b.Header.Height == 0 {
			parent = "(genesis: none)"
		}
		linkOK := b.Header.Height == 0 || parent == prev
		rootOK := b.Payload.Root() == b.Header.TxRoot
		t.AddRow(
			metrics.U64(b.Header.Height), h.String(), parent,
			metrics.I(b.TxCount()), b.Header.TxRoot.String(),
			fmt.Sprintf("%v/%v", linkOK, rootOK),
		)
		if !linkOK || !rootOK {
			return nil, fmt.Errorf("core: structural invariant broken at height %d", b.Header.Height)
		}
		prev = h.String()
	}
	t.AddNote("every header stores its predecessor's hash; transactions are hashed in a Merkle tree (paper §II-A)")
	t.AddNote("the genesis block hard-codes the initial state and has no predecessor")
	return t, nil
}

// RunE2BlockLattice reproduces Fig. 2: the block-lattice where "every
// account is linked to its own account-chain", each block holding a
// single transaction.
func RunE2BlockLattice(ctx context.Context, cfg Config) (*metrics.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ring := keys.NewRing("e2", 6)
	lat, _, err := lattice.New(ring.Pair(0), 1_000_000, 0)
	if err != nil {
		return nil, err
	}
	// A braid of transfers across four accounts.
	transfers := []struct{ from, to, amount int }{
		{0, 1, 300}, {0, 2, 200}, {1, 3, 100}, {2, 1, 50}, {1, 0, 25},
	}
	for _, tr := range transfers {
		send, err := lat.NewSend(ring.Pair(tr.from), ring.Addr(tr.to), uint64(tr.amount))
		if err != nil {
			return nil, err
		}
		if res := lat.Process(send); res.Status != lattice.Accepted {
			return nil, fmt.Errorf("core: e2 send: %v", res.Status)
		}
		var settle *lattice.Block
		if _, opened := lat.Head(ring.Addr(tr.to)); opened {
			settle, err = lat.NewReceive(ring.Pair(tr.to), send.Hash())
		} else {
			settle, err = lat.NewOpen(ring.Pair(tr.to), send.Hash(), ring.Addr(tr.to))
		}
		if err != nil {
			return nil, err
		}
		if res := lat.Process(settle); res.Status != lattice.Accepted {
			return nil, fmt.Errorf("core: e2 settle: %v", res.Status)
		}
	}
	if err := lat.CheckInvariant(); err != nil {
		return nil, err
	}

	t := metrics.NewTable("E2 (Fig. 2): Nano's DAG, the block-lattice",
		"account", "chain-blocks", "chain (types)", "balance")
	for i := 0; i < 4; i++ {
		chain := lat.Chain(ring.Addr(i))
		types := make([]string, len(chain))
		for j, b := range chain {
			types[j] = b.Type.String()
		}
		t.AddRow(
			ring.Addr(i).String(), metrics.I(len(chain)),
			strings.Join(types, "→"), metrics.U64(lat.Balance(ring.Addr(i))),
		)
	}
	t.AddNote("each account owns a dedicated chain; every block is a single transaction (paper §II-B)")
	t.AddNote("value conservation verified: settled balances + pending = genesis supply")
	return t, nil
}

// RunE3Settlement reproduces Fig. 3: a transfer takes a send and a
// matching receive; until the receive, funds are pending/unsettled, and
// offline receivers never settle ("a node has to be online in order to
// receive a transaction").
func RunE3Settlement(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	run := func(offline map[int]bool) (netsim.NanoMetrics, error) {
		net, err := netsim.NewNano(netsim.NanoConfig{
			Net:              cfg.netParams(8, 3, cfg.Seed, 10*time.Millisecond, 60*time.Millisecond),
			Accounts:         16,
			Reps:             4,
			OfflineReceivers: offline,
			Workers:          cfg.Workers,
		})
		if err != nil {
			return netsim.NanoMetrics{}, err
		}
		var transfers []workload.TimedPayment
		n := cfg.count(20)
		for i := 0; i < n; i++ {
			transfers = append(transfers, workload.TimedPayment{
				At:      time.Duration(i+1) * 200 * time.Millisecond,
				Payment: workload.Payment{From: 1 + i%4, To: 8 + i%4, Amount: 3},
			})
		}
		return net.RunWithTransfers(cfg.dur(30*time.Second), transfers), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	online, err := run(nil)
	if err != nil {
		return nil, err
	}
	// Each receiver population is its own simulation; honor cancellation
	// between the two sweep points.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	offline, err := run(map[int]bool{8: true, 9: true, 10: true, 11: true})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable("E3 (Fig. 3): send/receive settlement",
		"receivers", "sends", "settled", "unsettled-at-end")
	t.AddRow("online", metrics.I(online.SendsCreated), metrics.I(online.SettledAtObserver), metrics.I(online.UnsettledAtEnd))
	t.AddRow("offline", metrics.I(offline.SendsCreated), metrics.I(offline.SettledAtObserver), metrics.I(offline.UnsettledAtEnd))
	t.AddNote("a send deducts the sender immediately; funds stay pending until the receiver generates the matching receive (paper §II-B, Fig. 3)")
	t.AddNote("offline receivers leave every transfer unsettled — the paper's stated downside of the two-phase design")
	if offline.UnsettledAtEnd <= online.UnsettledAtEnd {
		return nil, fmt.Errorf("core: e3 shape violated: offline unsettled %d <= online %d",
			offline.UnsettledAtEnd, online.UnsettledAtEnd)
	}
	return t, nil
}
