package core

// Golden tables, pinned byte for byte. E1–E15 are the historical
// simulations captured from the pre-node-runtime networks: with every
// node on the honest pass-through Behavior the refactored
// BitcoinNet/EthereumNet/NanoNet must reproduce these files exactly —
// same simulations, same event order, same formatting. E16–E18 were
// captured when the executed-attack layer landed (E17 with the γ and
// analytic columns, E18 from its first version) and pin the adversarial
// tables the same way going forward.
//
// NOTE on provenance: the E1–E15 files were rendered with the
// rune-width Render fix already in place (it landed in the same PR,
// before the capture), so they differ from a literal pre-refactor
// binary's output ONLY in column padding around multibyte cells. Every
// cell value — the simulation data — is the pre-refactor networks'
// verbatim output.
//
// Regenerate (only when a deliberate table change lands) with:
//
//	go test ./internal/core -run TestGoldenTables -update-golden
//
// The files live in testdata/golden_E*.txt; goldenCfg below is the seed
// and scale they were captured at.

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the testdata golden tables")

// goldenCfg is the fixed configuration the goldens were captured at.
// Workers is left at the default: tables are worker-count invariant.
func goldenCfg() Config { return Config{Seed: 7, Scale: 0.1} }

// goldenIDs are every pinned experiment: the historical E1–E15 the
// node-runtime refactor must preserve, the adversarial E16–E18
// captured when the executed-attack layer landed, the E19 scaling
// law captured with the struct-of-arrays node core, the E20
// cold-start bootstrap captured with the sync-manager layer, and the
// E21 tangle confirmation captured with the third-paradigm seam (E9,
// E19 and E20 were recaptured then: the registry lift itself replayed
// them byte-for-byte, and the tangle paradigm then appended its rows).
var goldenIDs = []string{
	"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
	"E9", "E10", "E11", "E12", "E13", "E14", "E15",
	"E16", "E17", "E18", "E19", "E20", "E21",
}

func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	runGoldenSuite(t, goldenCfg(), *updateGolden)
}

// TestGoldenTablesCalendar re-renders every golden experiment on the
// calendar-queue backend and compares against the same golden files —
// the tentpole equivalence claim: the backend is a pure performance
// choice, invisible to every table byte. Never updates goldens: the
// heap backend is the reference that captures them.
func TestGoldenTablesCalendar(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	cfg := goldenCfg()
	cfg.Queue = "calendar"
	runGoldenSuite(t, cfg, false)
}

func runGoldenSuite(t *testing.T, cfg Config, update bool) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := e.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := tbl.Render(&sb); err != nil {
				t.Fatal(err)
			}
			got := sb.String()
			assertJSONRoundTrip(t, tbl, got)
			path := filepath.Join("testdata", "golden_"+id+".txt")
			if update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden missing (run with -update-golden to capture): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s table diverged from the golden (queue=%s):\n--- got ---\n%s--- want ---\n%s", id, cfg.Queue, got, want)
			}
		})
	}
}

// assertJSONRoundTrip proves a table survives the machine-readable path
// losslessly: RenderJSON → unmarshal → FromDoc renders byte-identically
// to the original (the `dltbench -format json` acceptance property).
func assertJSONRoundTrip(t *testing.T, tbl *metrics.Table, rendered string) {
	t.Helper()
	var js strings.Builder
	if err := tbl.RenderJSON(&js); err != nil {
		t.Fatalf("RenderJSON: %v", err)
	}
	var doc metrics.TableDoc
	if err := json.Unmarshal([]byte(js.String()), &doc); err != nil {
		t.Fatalf("JSON not parseable: %v", err)
	}
	var back strings.Builder
	if err := metrics.FromDoc(doc).Render(&back); err != nil {
		t.Fatal(err)
	}
	if back.String() != rendered {
		t.Fatalf("JSON round-trip changed the table:\n--- round-tripped ---\n%s--- original ---\n%s", back.String(), rendered)
	}
}
