package core

import (
	"context"
	"strings"
	"testing"
	"time"
)

// smallCfg keeps experiment runs quick in unit tests.
func smallCfg() Config { return Config{Seed: 7, Scale: 0.25} }

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 21 {
		t.Fatalf("registry has %d experiments, want 21", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Section == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E5")
	if err != nil || e.ID != "E5" {
		t.Fatalf("ByID(E5) = %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Seed == 0 {
		t.Fatalf("defaults = %+v", c)
	}
	if got := c.dur(10 * time.Second); got != 10*time.Second {
		t.Fatalf("dur = %v", got)
	}
	half := Config{Scale: 0.5}.withDefaults()
	if got := half.dur(10 * time.Second); got != 5*time.Second {
		t.Fatalf("scaled dur = %v", got)
	}
	if half.count(1) != 1 {
		t.Fatal("count must floor at 1")
	}
}

func TestParadigmString(t *testing.T) {
	if Blockchain.String() != "blockchain" || DAG.String() != "dag" || Paradigm(9).String() != "unknown" {
		t.Fatal("paradigm names wrong")
	}
}

// Each experiment must run and produce a non-empty table whose title
// carries its figure/section tag. E9/E10 are heavier and exercised in
// their own tests below with reduced scale.
func TestExperimentsProduceTables(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.ID == "E9" || e.ID == "E10" || e.ID == "E14" {
				t.Skip("covered by dedicated tests at smaller scale")
			}
			tbl, err := e.Run(context.Background(), smallCfg())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.NumRows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			var sb strings.Builder
			if err := tbl.Render(&sb); err != nil {
				t.Fatalf("%s render: %v", e.ID, err)
			}
			if !strings.Contains(sb.String(), e.ID) {
				t.Fatalf("%s table title missing experiment id:\n%s", e.ID, sb.String())
			}
		})
	}
}

// E9's shape assertions (bitcoin < ethereum < nano) are enforced inside
// the runner; this test exists so the assertion actually executes in CI.
func TestE9ThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	tbl, err := RunE9Throughput(context.Background(), Config{Seed: 11, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"bitcoin", "ethereum", "nano", "visa", "56,000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E9 table missing %q:\n%s", want, out)
		}
	}
}

func TestE10BlockSizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	tbl, err := RunE10BlockSize(context.Background(), Config{Seed: 13, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 5 {
		t.Fatalf("E10 rows = %d, want 5 block sizes", tbl.NumRows())
	}
}

// Equal seeds must reproduce identical tables (deterministic simulation).
func TestExperimentDeterminism(t *testing.T) {
	render := func() string {
		tbl, err := RunE4Forks(context.Background(), Config{Seed: 99, Scale: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("same seed produced different E4 tables")
	}
}
