package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/account"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/prune"
)

// Paper §V observation ages (operation spans at the quoted snapshots).
const (
	bitcoinAge  = time.Duration(9*365*24) * time.Hour
	ethereumAge = time.Duration(2.45*365*24) * time.Hour
	nanoAge     = time.Duration(2.6*365*24) * time.Hour
)

// RunE7LedgerSize reproduces §V's headline numbers: Bitcoin 145.95 GB,
// Ethereum 39.62 GB, Nano 3.42 GB with ~6,700,078 blocks. The growth
// models are driven by per-record wire costs matching the ledgers built
// in this repository, projected over each system's operating age.
func RunE7LedgerSize(ctx context.Context, cfg Config) (*metrics.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E7 (§V): ledger size at the paper's snapshot dates",
		"system", "age", "blocks", "projected-size", "paper-reports", "rel-err")
	rows := []struct {
		model         prune.GrowthModel
		age           time.Duration
		paperGB       float64
		excludeDeltas bool
	}{
		{prune.Bitcoin2018(), bitcoinAge, 145.95, false},
		{prune.Ethereum2018(), ethereumAge, 39.62, true}, // etherscan's fast-sync chart
		{prune.Nano2018(), nanoAge, 3.42, false},
	}
	for _, r := range rows {
		b := r.model.After(r.age)
		total := b.Total()
		if r.excludeDeltas {
			total -= b.StateDeltas
		}
		relErr := (float64(total)/1e9 - r.paperGB) / r.paperGB
		t.AddRow(
			r.model.Name,
			fmt.Sprintf("%.1f y", r.age.Hours()/24/365),
			metrics.I64(b.Blocks),
			metrics.Bytes(float64(total)),
			fmt.Sprintf("%.2f GB", r.paperGB),
			metrics.Pct(relErr),
		)
	}
	t.AddNote("Bitcoin 145.95 GB and Ethereum 39.62 GB on 02.01.2018; Nano 3.42 GB with ~6,700,078 blocks on 25.02.2018 (paper §V)")
	t.AddNote("the shape matters: Bitcoin ≫ Ethereum ≫ Nano, driven by block size × age — 'its size is constantly increasing'")
	return t, nil
}

// RunE8Pruning reproduces §V-A/B's three size-reduction mechanisms:
// Bitcoin block-file pruning, Ethereum state-delta discarding via fast
// sync, and Nano's head-only ledger, plus a live measurement of the
// Ethereum mechanism on this repository's persistent state trie.
func RunE8Pruning(ctx context.Context, cfg Config) (*metrics.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E8 (§V): pruning strategies",
		"strategy", "keeps", "full", "pruned", "savings")

	btc := prune.Bitcoin2018().After(bitcoinAge)
	btcRep, err := prune.BitcoinPrune(btc, 550, 3_000_000_000)
	if err != nil {
		return nil, err
	}
	t.AddRow("bitcoin block-file prune", "headers + UTXO + last 550 blocks",
		metrics.Bytes(float64(btcRep.FullBytes)), metrics.Bytes(float64(btcRep.PrunedBytes)),
		metrics.Pct(btcRep.Savings()))

	eth := prune.Ethereum2018().After(ethereumAge)
	ethRep, err := prune.EthereumFastSync(eth, 1024, 1_500_000_000)
	if err != nil {
		return nil, err
	}
	t.AddRow("ethereum fast sync", "blocks + receipts + state at pivot (head-1024)",
		metrics.Bytes(float64(ethRep.FullBytes)), metrics.Bytes(float64(ethRep.PrunedBytes)),
		metrics.Pct(ethRep.Savings()))

	nano := prune.Nano2018().After(nanoAge)
	nanoRep, err := prune.NanoPrune(nano, 300_000, 510)
	if err != nil {
		return nil, err
	}
	t.AddRow("nano head-only", "one head block per account",
		metrics.Bytes(float64(nanoRep.FullBytes)), metrics.Bytes(float64(nanoRep.PrunedBytes)),
		metrics.Pct(nanoRep.Savings()))

	// Live measurement: build an account-model chain and compare an
	// archive node (every historical state) with a fast-synced node
	// (tip state only) on the real persistent trie.
	live, err := liveStateDeltaMeasurement(cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("ethereum state trie (live, this repo)", "tip state vs all historical roots",
		metrics.Bytes(float64(live.archive)), metrics.Bytes(float64(live.tip)),
		metrics.Pct(1-float64(live.tip)/float64(live.archive)))

	t.AddNote("pruned nodes trade history for disk: 'other nodes are no longer able to download the entire history of a pruned node' (§V-A)")
	t.AddNote("Nano's account-balance model is why head-only pruning works: no unspent-output history is needed (§V-B)")
	return t, nil
}

type liveDelta struct {
	archive int
	tip     int
}

// liveStateDeltaMeasurement builds a real chain on the account ledger and
// measures archive vs tip-state footprints on the persistent trie.
func liveStateDeltaMeasurement(cfg Config) (liveDelta, error) {
	ring := keys.NewRing("e8-live", 32)
	alloc := make(map[keys.Address]uint64, 32)
	for i := 0; i < 32; i++ {
		alloc[ring.Addr(i)] = 1 << 40
	}
	params := account.DefaultParams()
	ledger, err := account.NewLedger(alloc, params)
	if err != nil {
		return liveDelta{}, err
	}
	nonces := make(map[int]uint64, 32)
	blocks := cfg.count(30)
	for i := 0; i < blocks; i++ {
		for j := 0; j < 8; j++ {
			from := (i + j) % 32
			to := ring.Addr((i + j + 1) % 32)
			tx := &account.Tx{
				Nonce: nonces[from], To: &to, Value: 100,
				GasLimit: account.GasTxBase, GasPrice: 1,
			}
			tx.Sign(ring.Pair(from))
			nonces[from]++
			if err := ledger.SubmitTx(tx); err != nil {
				return liveDelta{}, err
			}
		}
		b := ledger.BuildBlock(ring.Addr(0), time.Duration(i+1)*15*time.Second)
		if _, err := ledger.ProcessBlock(b); err != nil {
			return liveDelta{}, err
		}
	}
	archive := ledger.ArchiveBytes()
	tip := ledger.StateBytes()
	if tip.Bytes >= archive.Bytes {
		return liveDelta{}, fmt.Errorf("core: e8 live measurement inverted: %d >= %d", tip.Bytes, archive.Bytes)
	}
	return liveDelta{archive: archive.Bytes, tip: tip.Bytes}, nil
}
