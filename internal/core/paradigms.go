package core

// The core side of the paradigm seam (netsim.ParadigmSpec): each
// registered ledger paradigm contributes rows to the cross-paradigm
// comparison experiments through one hook set here, and the experiments
// iterate the registry instead of hand-rolling every network. The hook
// table is keyed by the netsim registry names, iterated in registry
// order and filtered by Config.Paradigms, so adding a paradigm to the
// comparison tables is one table entry — the sweep loops in E9/E19/E20
// never change. A registered paradigm without a hook for some
// experiment simply contributes no rows there (ethereum has no
// scaling-law or cold-start hook: its E19/E20 story is the bitcoin
// row's with a shorter interval).

import (
	"time"

	"repro/internal/netsim"
)

// netParams builds the standard simulated-network parameters every
// experiment shares: explicit topology and latency band, with the
// config's event-queue shape (Shards, Queue backend) threaded through.
func (c Config) netParams(nodes, degree int, seed int64, minLat, maxLat time.Duration) netsim.NetParams {
	return netsim.NetParams{
		Nodes: nodes, PeerDegree: degree, Seed: seed, Shards: c.Shards, Queue: c.queue(),
		MinLatency: minLat, MaxLatency: maxLat,
	}
}

// paradigmEnabled reports whether the config selects the named
// paradigm. An empty filter — and the literal "all" — selects every
// registered paradigm; dltbench validates spellings before they get
// here, so an unknown name simply matches nothing.
func (c Config) paradigmEnabled(name string) bool {
	if len(c.Paradigms) == 0 {
		return true
	}
	for _, p := range c.Paradigms {
		if p == "all" || p == name {
			return true
		}
	}
	return false
}

// e9System is one E9 sweep system: a stable key derived from the
// registry name (ethereum contributes two consensus variants, nano an
// optional batched twin) plus the runner producing its row. The shape
// check looks systems up by key, so filtered sweeps skip the
// comparisons their systems are absent from.
type e9System struct {
	key string
	run func() (e9SysResult, error)
}

// paradigmHooks binds one registered paradigm to the comparison
// experiments it contributes rows to. Nil hooks contribute nothing.
type paradigmHooks struct {
	// e9 returns the paradigm's throughput-sweep systems (E9).
	e9 func(cfg Config) []e9System
	// e19 runs one scaling-law sweep point at the given network size.
	e19 func(cfg Config, nodes int) ([]string, error)
	// e20 runs one cold-start sweep point at the given history factor.
	e20 func(cfg Config, factor int) ([]string, error)
}

// paradigmHookTable maps netsim registry names to their hooks. Order
// comes from the registry (ParadigmSpec.Order), never from this map.
var paradigmHookTable = map[string]paradigmHooks{
	"bitcoin":  {e9: e9BitcoinSystems, e19: e19Chain, e20: e20Chain},
	"ethereum": {e9: e9EthereumSystems},
	"nano":     {e9: e9NanoSystems, e19: e19Nano, e20: e20Nano},
	"tangle":   {e9: e9TangleSystems, e19: e19Tangle, e20: e20Tangle},
}

// enabledParadigmHooks returns the hook sets of every selected
// paradigm, in registry order.
func enabledParadigmHooks(cfg Config) []paradigmHooks {
	var out []paradigmHooks
	for _, spec := range netsim.Paradigms() {
		if !cfg.paradigmEnabled(spec.Name) {
			continue
		}
		if h, ok := paradigmHookTable[spec.Name]; ok {
			out = append(out, h)
		}
	}
	return out
}

// e9Systems collects the throughput-sweep systems of every selected
// paradigm, in registry order — the E9 row order.
func e9Systems(cfg Config) []e9System {
	var out []e9System
	for _, h := range enabledParadigmHooks(cfg) {
		if h.e9 != nil {
			out = append(out, h.e9(cfg)...)
		}
	}
	return out
}

// sweepPointFn runs one sweep point of a per-size or per-factor
// comparison (E19's node counts, E20's history factors).
type sweepPointFn func(cfg Config, point int) ([]string, error)

// e19Systems and e20Systems collect the selected paradigms' sweep
// hooks in registry order — the per-point row order of E19 and E20.
func e19Systems(cfg Config) []sweepPointFn {
	var out []sweepPointFn
	for _, h := range enabledParadigmHooks(cfg) {
		if h.e19 != nil {
			out = append(out, h.e19)
		}
	}
	return out
}

func e20Systems(cfg Config) []sweepPointFn {
	var out []sweepPointFn
	for _, h := range enabledParadigmHooks(cfg) {
		if h.e20 != nil {
			out = append(out, h.e20)
		}
	}
	return out
}
