package core

// E19: the paper's §VI scalability comparison probed on the axis the
// paper never measures — network size. Both paradigms run the same
// fixed workload at node counts swept 10² → 10⁵ and report throughput,
// finality latency and per-node message/state cost. The sweep
// dimensions follow the DAG-systems SoK (throughput, finality, memory
// growth per node); the mega-scale points are what the struct-of-arrays
// node state, the sharded event lanes and the memoized signature
// verification exist for. Every cell is computed from deterministic
// counters (events, messages, modeled ledger bytes), never from
// runtime.MemStats, so tables are identical for any worker count and
// any shard count K — both pinned by test.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// e19BaseCounts is the unscaled node-count sweep (10² → 10⁵).
var e19BaseCounts = []int{100, 1_000, 10_000, 100_000}

// e19SampleBudget caps exact latency-sample storage per histogram. The
// golden-scale and default sweeps stay far below it — their histograms
// remain exact and the tables byte-identical — while the 10⁵/10⁶-node
// points, whose propagation columns would otherwise hold one float64
// per node per block, collapse into O(1)-memory streaming quantiles.
const e19SampleBudget = 1 << 18

// e19NodeCounts scales the sweep by cfg.Scale, floors every point at 8
// nodes (the smallest network with the standard peer degree) and drops
// collapsed duplicates, keeping ascending order. A positive
// cfg.MegaNodes appends the unscaled frontier point (10⁶ in the
// mega-scale runs) when it extends the sweep.
func e19NodeCounts(cfg Config) []int {
	var out []int
	for _, base := range e19BaseCounts {
		n := cfg.count(base)
		if n < 8 {
			n = 8
		}
		if len(out) == 0 || n > out[len(out)-1] {
			out = append(out, n)
		}
	}
	if n := cfg.MegaNodes; n >= 8 && (len(out) == 0 || n > out[len(out)-1]) {
		out = append(out, n)
	}
	return out
}

// e19Accounts is the fixed user population: the sweep varies the node
// count alone, so every extra cost in a row is attributable to network
// size, not workload size.
const e19Accounts = 16

// e19Load builds one sweep point's payment schedule. The window is
// floored so scaled-down test runs still carry traffic, and an empty
// Poisson draw falls back to a single deterministic payment — a sweep
// row with zero settled transfers measures nothing.
func e19Load(seed int64, rate float64, span time.Duration, maxAmount uint64) []workload.TimedPayment {
	load := workload.Payments(rand.New(rand.NewSource(seed)), workload.Config{
		Accounts: e19Accounts, Rate: rate, Duration: span, MaxAmount: maxAmount,
	})
	if len(load) == 0 {
		load = []workload.TimedPayment{{At: span / 2, Payment: workload.Payment{From: 0, To: 1, Amount: 1}}}
	}
	return load
}

// e19Span floors a scaled duration: tiny -scale factors must shrink the
// horizon, not erase it.
func e19Span(cfg Config, base, floor time.Duration) time.Duration {
	if d := cfg.dur(base); d > floor {
		return d
	}
	return floor
}

// e19Row renders one sweep point. Finality is in milliseconds; message
// and byte costs are normalized per node — the curves the scaling law is
// about (a broadcast paradigm's per-node cost is flat only while the
// per-node constant hides the O(N) fan-out the totals reveal).
func e19Row(system string, nodes int, events uint64, msgs int, traffic int64, tput, finality float64, stateBytes int) []string {
	return []string{
		system, metrics.I(nodes), metrics.F(tput),
		fmt.Sprintf("%.0f ms", 1000*finality),
		metrics.F1(float64(msgs) / float64(nodes)),
		metrics.Bytes(float64(traffic) / float64(nodes)),
		metrics.Bytes(float64(stateBytes)),
		metrics.U64(events),
	}
}

// e19Chain runs one chain-side sweep point: a PoW network of the given
// size with the block interval and horizon scaled together, so every
// point produces the same ~10-block schedule and the row isolates the
// propagation/validation cost of size. Finality is the observed mean
// block interval plus the median full-network propagation delay — the
// expected wait for one confirmation (§IV-A's weakest merchant rule).
func e19Chain(cfg Config, nodes int) ([]string, error) {
	np := cfg.netParams(nodes, 4, cfg.Seed+int64(nodes), 20*time.Millisecond, 200*time.Millisecond)
	np.SampleBudget = e19SampleBudget
	net, err := netsim.NewBitcoin(netsim.BitcoinConfig{
		Net:           np,
		BlockInterval: cfg.dur(30 * time.Second), Accounts: e19Accounts, InitialBalance: 1 << 30,
	})
	if err != nil {
		return nil, err
	}
	span := e19Span(cfg, 10*time.Second, 5*time.Second)
	load := e19Load(cfg.Seed+int64(43+nodes), 2, span, 20)
	horizon := cfg.dur(5 * time.Minute)
	if min := span + 6*cfg.dur(30*time.Second); horizon < min {
		horizon = min
	}
	m := net.RunWithPayments(horizon, load, 2)
	finality := m.MeanBlockInterval.Seconds()
	if m.Propagation.N() > 0 {
		finality += m.Propagation.Quantile(0.5)
	}
	return e19Row("bitcoin (PoW)", nodes, net.Sim().EventsRun(),
		m.MessagesSent, m.BytesSent, m.TPS, finality, m.LedgerBytes), nil
}

// e19Nano runs one lattice-side sweep point: an ORV network of the given
// size settling the same fixed transfer schedule. Finality is the median
// block-creation→quorum delay at the observer — vote aggregation, not
// block depth, so it tracks propagation alone as the network grows.
func e19Nano(cfg Config, nodes int) ([]string, error) {
	np := cfg.netParams(nodes, 4, cfg.Seed+int64(nodes)+1, 20*time.Millisecond, 200*time.Millisecond)
	np.SampleBudget = e19SampleBudget
	net, err := netsim.NewNano(netsim.NanoConfig{
		Net:      np,
		Accounts: e19Accounts, Reps: 4, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	span := e19Span(cfg, 10*time.Second, 5*time.Second)
	load := e19Load(cfg.Seed+int64(47+nodes), 1, span, 5)
	horizon := cfg.dur(30 * time.Second)
	if min := span + 10*time.Second; horizon < min {
		horizon = min
	}
	m := net.RunWithTransfers(horizon, load)
	finality := 0.0
	if m.ConfirmLatency.N() > 0 {
		finality = m.ConfirmLatency.Quantile(0.5)
	}
	return e19Row("nano (ORV)", nodes, net.Sim().EventsRun(),
		m.MessagesSent, m.BytesSent, m.BPS, finality, m.LedgerBytes), nil
}

// RunE19ScalingLaw sweeps network size on every selected paradigm with
// a scaling-law hook (10² → 10⁵ nodes at Scale 1) under a fixed
// workload and reports the scaling-law curves: throughput, finality
// latency, per-node message and traffic cost, modeled state per node
// and total simulator events. The system list comes from the paradigm
// registry (Config.Paradigms filters it). Sweep points fan out across
// cfg.Workers; rows land in fixed (size, system) order.
func RunE19ScalingLaw(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	counts := e19NodeCounts(cfg)
	t := metrics.NewTable("E19 (§VI): scaling law — throughput, finality & per-node cost vs network size",
		"system", "nodes", "throughput", "finality-p50", "msgs/node", "traffic/node", "state/node", "events")

	sys := e19Systems(cfg)
	rows, err := fanOut(ctx, cfg, len(sys)*len(counts), func(i int) ([]string, error) {
		return sys[i%len(sys)](cfg, counts[i/len(sys)])
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("fixed workload at every size: cost deltas are network-size effects, not load effects")
	t.AddNote("chain finality = mean block interval + median full-network propagation (1-conf wait); lattice finality = median vote-quorum delay at the observer")
	t.AddNote("state/node is the modeled ledger size every full node stores (§V); msgs/node and traffic/node are the per-node share of network totals")
	t.AddNote("cells derive from deterministic counters only — tables are identical for any Workers and any event-queue shard count (sim.NewSharded)")
	return t, nil
}
