// The experiment scheduler: a worker-pool engine that runs the E1…E19
// registry with bounded parallelism. Experiments are self-contained (each
// builds its own simulators and instance-scoped randomness), so the sweep
// parallelizes across cores — which is itself the paper's §VI point about
// DAG settlement: independent work need not be serialized. The scheduler
// derives a private deterministic seed per experiment, so results are
// identical for any worker count and any completion order.
package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/hashx"
	"repro/internal/metrics"
	"repro/internal/par"
)

// DefaultWorkers is the scheduler's default parallelism.
func DefaultWorkers() int { return runtime.NumCPU() }

// DeriveSeed maps a sweep seed and an experiment ID to the experiment's
// private seed. Derived seeds decorrelate the experiments' random streams
// and depend only on (base, id) — never on scheduling — so a sweep is
// reproducible for any worker count.
func DeriveSeed(base int64, id string) int64 {
	digest := hashx.Sum([]byte(fmt.Sprintf("runner/%s/%d", id, base)))
	s := int64(binary.BigEndian.Uint64(digest[:8]) &^ (1 << 63))
	if s == 0 {
		s = base // avoid 0, which Config.withDefaults would rewrite
	}
	return s
}

// Run is the outcome of one scheduled experiment.
type Run struct {
	Experiment Experiment
	// Seed is the derived seed the experiment actually ran with.
	Seed int64
	// Table is the experiment's result (nil when Err is set).
	Table *metrics.Table
	// Err is the experiment failure, a recovered panic, or the context
	// error for experiments the scheduler never started.
	Err error
	// Elapsed is the experiment's own wall clock.
	Elapsed time.Duration
}

// Report aggregates a scheduled sweep.
type Report struct {
	// Runs holds one entry per requested experiment, in request order.
	Runs []Run
	// Workers is the parallelism the sweep ran with.
	Workers int
	// Elapsed is the wall clock of the whole sweep.
	Elapsed time.Duration
}

// Err joins every experiment error in request order (nil if all passed).
func (r *Report) Err() error {
	var errs []error
	for _, run := range r.Runs {
		if run.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", run.Experiment.ID, run.Err))
		}
	}
	return errors.Join(errs...)
}

// SerialTime sums the per-experiment wall clocks — the cost a single
// worker would pay for the same sweep.
func (r *Report) SerialTime() time.Duration {
	var total time.Duration
	for _, run := range r.Runs {
		total += run.Elapsed
	}
	return total
}

// Speedup is the sweep's aggregate parallel speedup: serial-sum over
// sweep wall clock.
func (r *Report) Speedup() float64 { return metrics.Speedup(r.SerialTime(), r.Elapsed) }

// Table renders the sweep timing: per-experiment wall clock and share of
// the serial sum, with aggregate wall-clock/speedup notes — the §IV
// "concurrent settlement" story measured on the reproduction itself.
func (r *Report) Table() *metrics.Table {
	t := metrics.NewTable("experiment sweep — wall clock", "id", "section", "status", "seed", "wall", "share")
	serial := r.SerialTime()
	for _, run := range r.Runs {
		status := "ok"
		if run.Err != nil {
			status = "error"
		}
		share := 0.0
		if serial > 0 {
			share = float64(run.Elapsed) / float64(serial)
		}
		t.AddRow(run.Experiment.ID, run.Experiment.Section, status,
			metrics.I64(run.Seed), metrics.Dur(run.Elapsed), metrics.Pct(share))
	}
	t.AddNote("workers=%d wall=%s serial-sum=%s speedup=%s",
		r.Workers, metrics.Dur(r.Elapsed), metrics.Dur(serial), metrics.X(r.Speedup()))
	return t
}

// RunAll executes the full registry with bounded parallelism (workers <= 0
// means DefaultWorkers) and returns the aggregated report. The returned
// error is Report.Err.
func RunAll(cfg Config, workers int) (*Report, error) {
	return RunSelected(context.Background(), cfg, workers, Experiments())
}

// RunAllContext is RunAll with cancellation: experiments not yet started
// when ctx is done are marked with ctx's error instead of running.
func RunAllContext(ctx context.Context, cfg Config, workers int) (*Report, error) {
	return RunSelected(ctx, cfg, workers, Experiments())
}

// RunSelected schedules an arbitrary experiment list across the pool.
func RunSelected(ctx context.Context, cfg Config, workers int, exps []Experiment) (*Report, error) {
	cfg = cfg.withDefaults()
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(exps) && len(exps) > 0 {
		workers = len(exps)
	}
	report := &Report{Runs: make([]Run, len(exps)), Workers: workers}
	start := time.Now()
	par.Each(len(exps), workers, 1, func(i int) {
		report.Runs[i] = runOne(ctx, cfg, exps[i])
	})
	report.Elapsed = time.Since(start)
	return report, report.Err()
}

// runOne executes a single experiment under its derived seed, converting
// panics into errors so one bad experiment cannot take down the sweep.
func runOne(ctx context.Context, cfg Config, e Experiment) (run Run) {
	run.Experiment = e
	run.Seed = DeriveSeed(cfg.Seed, e.ID)
	if err := ctx.Err(); err != nil {
		run.Err = fmt.Errorf("not started: %w", err)
		return run
	}
	defer func() {
		if p := recover(); p != nil {
			run.Err = fmt.Errorf("panic: %v", p)
		}
	}()
	ecfg := cfg
	ecfg.Seed = run.Seed
	start := time.Now()
	run.Table, run.Err = e.Run(ctx, ecfg)
	run.Elapsed = time.Since(start)
	return run
}
