package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pow"
	"repro/internal/workload"
)

// RunE4Forks reproduces Fig. 4: soft forks arise when "two different
// blocks are created at roughly the same time" relative to propagation
// delay, and resolve when one branch outgrows the other. The sweep shows
// orphan rate falling as the block interval grows — the quantitative
// reason Bitcoin tolerates 10-minute blocks.
func RunE4Forks(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E4 (Fig. 4): temporary forks vs block interval",
		"interval", "blocks", "orphaned", "orphan-rate", "analytic", "reorgs", "max-depth")
	intervals := []time.Duration{2 * time.Second, 5 * time.Second, 15 * time.Second, 60 * time.Second, 10 * time.Minute}
	for _, interval := range intervals {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		net, err := netsim.NewBitcoin(netsim.BitcoinConfig{
			Net:           cfg.netParams(12, 3, cfg.Seed, 200*time.Millisecond, 2*time.Second),
			BlockInterval: interval,
			Accounts:      8,
		})
		if err != nil {
			return nil, err
		}
		blocks := cfg.count(150)
		m := net.Run(time.Duration(blocks) * interval)
		analytic := pow.ExpectedOrphanRate(time.Second, interval) // ≈median gossip delay
		t.AddRow(
			interval.String(), metrics.I(m.BlocksTotal), metrics.I(m.Orphaned),
			metrics.Pct(m.OrphanRate), metrics.Pct(analytic),
			metrics.I(m.Reorgs), metrics.I(m.MaxReorgDepth),
		)
	}
	t.AddNote("typical forks (depth 1) dominate; deeper 'atypical' forks appear only at short intervals — the two cases drawn in Fig. 4")
	t.AddNote("the longer chain is adopted; orphaned transactions return to the mempool for re-inclusion (paper §IV-A)")
	return t, nil
}

// RunE5Confirmation reproduces §IV-A's confirmation-depth guidance: the
// probability that a buried transaction is reversed, as a function of
// attacker hash share q and depth z — analytically (Nakamoto) and by
// simulated attacker races. The classic rules fall out: ~6 blocks at
// q=10% for <0.1% risk (Bitcoin), and a 5–11 window for Ethereum's
// operating range.
func RunE5Confirmation(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	depths := []int{1, 2, 4, 6, 8, 11}
	t := metrics.NewTable("E5 (§IV-A): P(transaction reversed) vs confirmation depth",
		"attacker-q", "z=1", "z=2", "z=4", "z=6", "z=8", "z=11", "sim z=6", "z for <0.1% risk")
	trials := cfg.count(4000)
	for _, q := range []float64{0.05, 0.10, 0.20, 0.30, 0.45} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := []string{metrics.Pct(q)}
		for _, z := range depths {
			row = append(row, metrics.F4(pow.CatchUpProbability(q, z)))
		}
		row = append(row, metrics.F4(netsim.EmpiricalCatchUp(rng, q, 6, trials)))
		row = append(row, metrics.I(pow.ConfirmationsForRisk(q, 0.001, 200)))
		t.AddRow(row...)
	}
	t.AddNote("six confirmations for Bitcoin and five-to-eleven for Ethereum (paper §IV-A) correspond to ~10 percent attackers at sub-0.1 percent risk")
	t.AddNote("simulated attacker races (sim z=6 column) agree with Nakamoto's analytic formula")
	return t, nil
}

// RunE6VoteConfirmation reproduces §IV-B: in Nano "a transaction is
// confirmed when there is a majority of votes cast in favor … by the
// representatives" — no blocks to wait for, just vote latency, measured
// here against quorum thresholds and representative counts, with
// cementing as the finality marker.
func RunE6VoteConfirmation(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E6 (§IV-B): Nano confirmation by representative vote",
		"quorum", "reps", "confirmed", "cemented", "p50-latency", "p95-latency")
	for _, quorum := range []float64{0.5, 0.67} {
		for _, reps := range []int{4, 8} {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			net, err := netsim.NewNano(netsim.NanoConfig{
				Net:            cfg.netParams(10, 3, cfg.Seed, 20*time.Millisecond, 120*time.Millisecond),
				Accounts:       24,
				Reps:           reps,
				QuorumFraction: quorum,
				Workers:        cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			transfers := workload.Payments(rng, workload.Config{
				Accounts: 24, Rate: 4, Duration: cfg.dur(20 * time.Second), MaxAmount: 5,
			})
			m := net.RunWithTransfers(cfg.dur(40*time.Second), transfers)
			if m.ConfirmedBlocks == 0 {
				return nil, fmt.Errorf("core: e6: no confirmations at quorum %.2f", quorum)
			}
			t.AddRow(
				metrics.Pct(quorum), metrics.I(reps),
				metrics.I(m.ConfirmedBlocks), metrics.I(m.CementedBlocks),
				fmt.Sprintf("%.0f ms", 1000*m.ConfirmLatency.Quantile(0.5)),
				fmt.Sprintf("%.0f ms", 1000*m.ConfirmLatency.Quantile(0.95)),
			)
		}
	}
	t.AddNote("representatives vote automatically on first-seen blocks; confirmation is sub-second network latency, not block depth (paper §IV-B)")
	t.AddNote("cementing marks confirmed blocks irreversible — the planned finality feature the paper cites")
	return t, nil
}
