package core

// The tangle's side of the comparison: the cooperative tx-as-vertex DAG
// (§II-B's second family — IOTA-style, one transaction per vertex, two
// approved parents, cumulative-coverage confirmation) registered as the
// third ledger paradigm. This file holds its rows in the cross-paradigm
// sweeps (E9 throughput, E19 scaling law, E20 cold start) and E21, the
// tangle-specific confirmation experiment: the coverage-threshold sweep
// — the cooperative analogue of §IV-A's depth rules — plus the
// parasite-chain adversary on the tip-selection seam.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// e9TangleDur is the tangle's E9 horizon: like Nano it settles in
// seconds, not block intervals, so the saturating window is short.
func e9TangleDur(cfg Config) time.Duration { return cfg.dur(40 * time.Second) }

// e9TangleSystems is the tangle paradigm's E9 contribution: every
// payment is one vertex approving two tips, so throughput has no block
// cap at all — confirmation rate is bounded by traffic itself (coverage
// accumulates only as fast as later vertices arrive) and node hardware.
func e9TangleSystems(cfg Config) []e9System {
	return []e9System{{key: "tangle", run: func() (e9SysResult, error) {
		net, err := netsim.NewTangle(netsim.TangleConfig{
			Net:      cfg.netParams(8, 3, cfg.Seed+4, 20*time.Millisecond, 120*time.Millisecond),
			Accounts: 64,
		})
		if err != nil {
			return e9SysResult{}, err
		}
		dur := e9TangleDur(cfg)
		load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+104)), workload.Config{
			Accounts: 64, Rate: 120, Duration: dur * 3 / 4, MaxAmount: 5,
		})
		m := net.RunWithTransfers(dur, load)
		return e9SysResult{tps: m.VPS, row: []string{
			"tangle (coverage)", "none (per-tx vertex)", "traffic + node hardware",
			metrics.F(m.VPS), "uncapped", metrics.I(m.PendingAtEnd)}}, nil
	}}}
}

// e19Tangle runs one tangle-side scaling-law point: a cooperative DAG
// of the given size settling the same fixed transfer schedule. Finality
// is the median creation→coverage delay at the observer — like the
// lattice it tracks propagation, not block depth, but the threshold is
// met by later traffic instead of votes.
func e19Tangle(cfg Config, nodes int) ([]string, error) {
	np := cfg.netParams(nodes, 4, cfg.Seed+int64(nodes)+2, 20*time.Millisecond, 200*time.Millisecond)
	np.SampleBudget = e19SampleBudget
	// Coverage comes from later traffic alone, so the fixed sweep
	// workload (a handful of transfers at every size) pairs with the
	// minimum meaningful threshold — otherwise the tail of every run
	// would sit forever under-covered and the row would measure nothing.
	net, err := netsim.NewTangle(netsim.TangleConfig{
		Net: np, Accounts: e19Accounts, ConfirmWeight: 2,
	})
	if err != nil {
		return nil, err
	}
	span := e19Span(cfg, 10*time.Second, 5*time.Second)
	load := e19Load(cfg.Seed+int64(53+nodes), 2, span, 5)
	horizon := cfg.dur(30 * time.Second)
	if min := span + 10*time.Second; horizon < min {
		horizon = min
	}
	m := net.RunWithTransfers(horizon, load)
	finality := 0.0
	if m.ConfirmLatency.N() > 0 {
		finality = m.ConfirmLatency.Quantile(0.5)
	}
	return e19Row("tangle (coverage)", nodes, net.Sim().EventsRun(),
		m.MessagesSent, m.BytesSent, m.VPS, finality, m.LedgerBytes), nil
}

// e20Tangle runs one tangle-side cold-start point: an 8-node network
// accumulates factor × the base span of vertices while the cold node
// (node 7) sits detached, then goes quiet; on rejoin the cold node
// range-pulls the attachment-ordered vertex stream — a topological
// order, so every pulled vertex attaches without parking. Transfers
// touching accounts owned by the cold node are filtered out — a
// detached owner would mint vertices the network never sees.
func e20Tangle(cfg Config, factor int) ([]string, error) {
	const nodes, cold = 8, 7
	np := cfg.netParams(nodes, 4, cfg.Seed+int64(300+factor), 20*time.Millisecond, 200*time.Millisecond)
	np.SampleBudget = e19SampleBudget
	net, err := netsim.NewTangle(netsim.TangleConfig{
		Net: np, Accounts: e19Accounts, BacklogCap: cfg.BacklogCap,
	})
	if err != nil {
		return nil, err
	}
	span := time.Duration(factor) * e19Span(cfg, time.Minute, 6*time.Second)
	var load []workload.TimedPayment
	for _, p := range e19Load(cfg.Seed+int64(307+factor), 2, span, 5) {
		if p.From%nodes != cold && p.To%nodes != cold {
			load = append(load, p)
		}
	}
	// Rejoin after the frontier quiesces: the pulled stream is static.
	joinAt := span + e19Span(cfg, 20*time.Second, 4*time.Second)
	net.ScheduleColdStart(cold, 0, joinAt, cfg.SyncPullBatch)
	horizon := joinAt + e19Span(cfg, 30*time.Second, 6*time.Second)
	net.RunWithTransfers(horizon, load)
	took, ok := net.ColdSyncDone(cold)
	return e20Row("tangle (coverage)", factor, net.Observer().VertexCount(), net.Observer().LedgerBytes(),
		took, ok, net.SyncStats()), nil
}

// e21Weights is the coverage-threshold sweep — the tangle's analogue of
// §IV-A's merchant depth rules (more required coverage = more
// confidence = more latency).
var e21Weights = []int{2, 4, 8}

// e21ReleaseDepths sweeps how long the parasite chain stays hidden
// before flooding the network.
var e21ReleaseDepths = []int{4, 8}

// e21ParasiteNode hosts the adversary: its behavior withholds every
// locally issued vertex into a private sub-tangle anchored at the
// public frontier, then releases the whole chain at once.
const e21ParasiteNode = 5

// e21Net builds one E21 network; every sweep point gets a disjoint
// seed stride.
func e21Net(cfg Config, confirmWeight int, seedOff int64) (*netsim.TangleNet, []workload.TimedPayment, time.Duration, error) {
	net, err := netsim.NewTangle(netsim.TangleConfig{
		Net:           cfg.netParams(8, 3, cfg.Seed+seedOff, 20*time.Millisecond, 120*time.Millisecond),
		Accounts:      e19Accounts,
		ConfirmWeight: confirmWeight,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	dur := e19Span(cfg, 40*time.Second, 8*time.Second)
	load := workload.Payments(rand.New(rand.NewSource(cfg.Seed+seedOff+1000)), workload.Config{
		Accounts: e19Accounts, Rate: 20, Duration: dur * 3 / 4, MaxAmount: 5,
	})
	return net, load, dur, nil
}

// e21Row renders one E21 sweep point.
func e21Row(scenario string, weight int, m netsim.TangleMetrics, attackerConfirmed, withheld string) []string {
	p50, p95 := "—", "—"
	if m.ConfirmLatency.N() > 0 {
		p50 = metrics.F1(1000*m.ConfirmLatency.Quantile(0.5)) + " ms"
		p95 = metrics.F1(1000*m.ConfirmLatency.Quantile(0.95)) + " ms"
	}
	return []string{
		scenario, metrics.I(weight), metrics.I(m.VerticesIssued),
		metrics.I(m.ConfirmedAtObserver), metrics.I(m.PendingAtEnd), metrics.I(m.TipsAtEnd),
		p50, p95, attackerConfirmed, withheld,
	}
}

// e21Honest runs one honest coverage-threshold point. Every threshold
// reruns the identical network, seed and workload — confirmation never
// feeds back into gossip or tip selection, so the DAG is the same and
// the sweep isolates the threshold itself: confirmed counts fall and
// latencies stretch as the required coverage grows.
func e21Honest(cfg Config, weight int) ([]string, error) {
	net, load, dur, err := e21Net(cfg, weight, 400)
	if err != nil {
		return nil, err
	}
	m := net.RunWithTransfers(dur, load)
	return e21Row("honest", weight, m, "—", "—"), nil
}

// e21Parasite runs one parasite-chain point at the default threshold:
// the adversary's tip-selection behavior grows a hidden sub-tangle and
// floods it at the release depth. Under pure cumulative weight the
// released chain self-certifies — each hidden vertex already carries
// the coverage of everything the attacker stacked on top of it — which
// is exactly why production tangles bias tip selection against
// side-chains; the attacker-confirmed column quantifies that weakness.
func e21Parasite(cfg Config, releaseDepth int) ([]string, error) {
	const weight = 4
	net, load, dur, err := e21Net(cfg, weight, int64(500+10*releaseDepth))
	if err != nil {
		return nil, err
	}
	b := net.InstallParasiteChain(e21ParasiteNode, releaseDepth)
	m := net.RunWithTransfers(dur, load)
	scenario := fmt.Sprintf("parasite (release at %d)", releaseDepth)
	if !b.Released() {
		scenario = fmt.Sprintf("parasite (unreleased, %d withheld)", b.Withheld())
	}
	st := net.Runtime().Stats()
	return e21Row(scenario, weight, m,
		metrics.I(net.ConfirmedIssuedBy(e21ParasiteNode)), metrics.I(st.BlocksWithheld)), nil
}

// RunE21TangleConfirmation measures the tangle's confirmation behavior
// on both axes the paper applies to the other ledgers: confidence
// (coverage threshold sweep, §IV's depth-rule analogue) and adversarial
// pressure (the parasite chain on the tip-selection seam). Sweep points
// fan out across cfg.Workers; rows land in fixed order.
func RunE21TangleConfirmation(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E21 (§IV): tangle confirmation — coverage threshold & parasite chain",
		"scenario", "confirm-weight", "vertices", "confirmed", "pending", "tips",
		"p50-latency", "p95-latency", "attacker-confirmed", "withheld")

	n := len(e21Weights) + len(e21ReleaseDepths)
	rows, err := fanOut(ctx, cfg, n, func(i int) ([]string, error) {
		if i < len(e21Weights) {
			return e21Honest(cfg, e21Weights[i])
		}
		return e21Parasite(cfg, e21ReleaseDepths[i-len(e21Weights)])
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("confirm-weight is the cumulative-coverage threshold: the cooperative analogue of §IV-A's depth rules — higher thresholds buy confidence with latency")
	t.AddNote("the parasite chain withholds vertices into a hidden sub-tangle and floods it at the release depth (tip-selection Behavior seam)")
	t.AddNote("under pure cumulative weight the released sub-tangle self-certifies (attacker-confirmed > 0) — the known weakness that makes production tangles bias tip selection against side-chains")
	t.AddNote("cells derive from deterministic counters only — tables are identical for any Workers and any Shards value")
	return t, nil
}
