package core

// E19 acceptance properties: the scaling-law table must be a pure
// function of (Seed, Scale) — identical for any event-queue shard count
// K and any worker count — and every sweep row must actually carry
// traffic (the floored workload guarantees at least one settled
// transfer even at tiny test scales).

import (
	"context"
	"strings"
	"testing"
)

func renderE19(t *testing.T, cfg Config) string {
	t.Helper()
	tbl, err := RunE19ScalingLaw(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// The sharded event loop must be invisible in the results: E19 renders
// byte-identically for K = 1, 4, 8 lanes and for any sweep-point
// fan-out width.
func TestE19ShardAndWorkerInvariance(t *testing.T) {
	base := Config{Seed: 11, Scale: 0.02}
	serial := renderE19(t, Config{Seed: base.Seed, Scale: base.Scale, Shards: 1, Workers: 1})
	for _, variant := range []Config{
		{Seed: base.Seed, Scale: base.Scale, Shards: 4, Workers: 1},
		{Seed: base.Seed, Scale: base.Scale, Shards: 8, Workers: DefaultWorkers()},
		{Seed: base.Seed, Scale: base.Scale, Shards: 1, Workers: 4},
	} {
		if got := renderE19(t, variant); got != serial {
			t.Fatalf("E19 diverged at shards=%d workers=%d:\n--- got ---\n%s\n--- want ---\n%s",
				variant.Shards, variant.Workers, got, serial)
		}
	}
}

// Every sweep point must settle traffic: a row whose throughput or
// event count is zero measures nothing (the regression this pins was a
// scaled-down workload window rounding to an empty Poisson draw).
func TestE19RowsCarryTraffic(t *testing.T) {
	tbl, err := RunE19ScalingLaw(context.Background(), Config{Seed: 11, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	if want := 2 * len(e19NodeCounts(Config{Scale: 0.02}.withDefaults())); len(rows) != want {
		t.Fatalf("E19 rows = %d, want %d", len(rows), want)
	}
	for _, row := range rows {
		if row[2] == "0.00" {
			t.Fatalf("zero-throughput sweep row: %v", row)
		}
		if row[7] == "0" {
			t.Fatalf("zero-event sweep row: %v", row)
		}
	}
}

// The node-count sweep must scale with cfg.Scale but never collapse
// below the minimum viable network, and must stay strictly ascending
// with duplicates dropped.
func TestE19NodeCounts(t *testing.T) {
	if got := e19NodeCounts(Config{Scale: 1}.withDefaults()); len(got) != 4 || got[0] != 100 || got[3] != 100_000 {
		t.Fatalf("full-scale sweep = %v", got)
	}
	tiny := e19NodeCounts(Config{Scale: 0.0001}.withDefaults())
	if len(tiny) == 0 {
		t.Fatalf("tiny-scale sweep collapsed to nothing")
	}
	for i, n := range tiny {
		if n < 8 {
			t.Fatalf("sweep point %d below the 8-node floor: %v", i, tiny)
		}
		if i > 0 && n <= tiny[i-1] {
			t.Fatalf("sweep not strictly ascending: %v", tiny)
		}
	}
}
