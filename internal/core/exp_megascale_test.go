package core

// E19 acceptance properties: the scaling-law table must be a pure
// function of (Seed, Scale) — identical for any event-queue shard count
// K and any worker count — and every sweep row must actually carry
// traffic (the floored workload guarantees at least one settled
// transfer even at tiny test scales).

import (
	"context"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func renderE19(t *testing.T, cfg Config) string {
	t.Helper()
	tbl, err := RunE19ScalingLaw(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// The sharded event loop must be invisible in the results: E19 renders
// byte-identically for K = 1, 4, 8 lanes and for any sweep-point
// fan-out width.
func TestE19ShardAndWorkerInvariance(t *testing.T) {
	base := Config{Seed: 11, Scale: 0.02}
	serial := renderE19(t, Config{Seed: base.Seed, Scale: base.Scale, Shards: 1, Workers: 1})
	for _, variant := range []Config{
		{Seed: base.Seed, Scale: base.Scale, Shards: 4, Workers: 1},
		{Seed: base.Seed, Scale: base.Scale, Shards: 8, Workers: DefaultWorkers()},
		{Seed: base.Seed, Scale: base.Scale, Shards: 1, Workers: 4},
	} {
		if got := renderE19(t, variant); got != serial {
			t.Fatalf("E19 diverged at shards=%d workers=%d:\n--- got ---\n%s\n--- want ---\n%s",
				variant.Shards, variant.Workers, got, serial)
		}
	}
}

// Every sweep point must settle traffic: a row whose throughput or
// event count is zero measures nothing (the regression this pins was a
// scaled-down workload window rounding to an empty Poisson draw).
func TestE19RowsCarryTraffic(t *testing.T) {
	tbl, err := RunE19ScalingLaw(context.Background(), Config{Seed: 11, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rows := tbl.Rows()
	cfg := Config{Scale: 0.02}.withDefaults()
	if want := len(e19Systems(cfg)) * len(e19NodeCounts(cfg)); len(rows) != want {
		t.Fatalf("E19 rows = %d, want %d", len(rows), want)
	}
	for _, row := range rows {
		if row[2] == "0.00" {
			t.Fatalf("zero-throughput sweep row: %v", row)
		}
		if row[7] == "0" {
			t.Fatalf("zero-event sweep row: %v", row)
		}
	}
}

// MegaNodes must append exactly one unscaled frontier point, and only
// when it actually extends the sweep.
func TestE19MegaNodesAppendsPoint(t *testing.T) {
	counts := e19NodeCounts(Config{Scale: 0.02, MegaNodes: 1_000_000}.withDefaults())
	if counts[len(counts)-1] != 1_000_000 {
		t.Fatalf("sweep %v missing the 10^6 frontier point", counts)
	}
	// A frontier point inside the existing sweep is dropped, not inserted.
	counts = e19NodeCounts(Config{Scale: 1, MegaNodes: 50_000}.withDefaults())
	if counts[len(counts)-1] != 100_000 {
		t.Fatalf("non-extending MegaNodes altered the sweep: %v", counts)
	}
}

// e19MegaBudgetPerNode bounds the heap high-water mark, in bytes per
// node, of the 10^6-node chain-side frontier point. The measured cost
// is ~37 KB/node — every node owns a full UTXO ledger replica (store,
// utxo set, mempool) on top of the struct-of-arrays network state, and
// HeapSys carries the GC's ~2x headroom over live bytes. The budget
// leaves ~25% for allocator variance while still failing loudly if a
// layout change regresses per-node cost — at a million nodes, every
// stray KB/node is another GB of RAM.
const e19MegaBudgetPerNode = 48 << 10

// TestE19MegaFrontier drives the chain-side sweep to the million-node
// frontier and pins the per-node memory budget. The point costs minutes
// of wall clock on one core, so it only runs when DLT_MEGA=1 (the CI
// e19-smoke lane sets it).
func TestE19MegaFrontier(t *testing.T) {
	if os.Getenv("DLT_MEGA") == "" {
		t.Skip("set DLT_MEGA=1 to run the 10^6-node frontier point")
	}
	const nodes = 1_000_000
	cfg := Config{Seed: 11, Scale: 0.02, MegaNodes: nodes}.withDefaults()
	row, err := e19Chain(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if row[1] != metrics.I(nodes) {
		t.Fatalf("frontier row reports %s nodes, want %s", row[1], metrics.I(nodes))
	}
	if row[2] == "0.00" {
		t.Fatalf("frontier point settled no traffic: %v", row)
	}

	// HeapSys is the high-water mark of heap address space the run ever
	// asked the OS for — the number that decides whether the frontier
	// fits a machine, unlike post-GC live bytes.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	perNode := float64(ms.HeapSys) / nodes
	t.Logf("frontier row: %v", row)
	t.Logf("heap high-water: %.0f MiB total, %.0f B/node (budget %d B/node)",
		float64(ms.HeapSys)/(1<<20), perNode, e19MegaBudgetPerNode)
	if perNode > e19MegaBudgetPerNode {
		t.Fatalf("heap high-water %.0f B/node exceeds the %d B/node budget",
			perNode, e19MegaBudgetPerNode)
	}
}

// The node-count sweep must scale with cfg.Scale but never collapse
// below the minimum viable network, and must stay strictly ascending
// with duplicates dropped.
func TestE19NodeCounts(t *testing.T) {
	if got := e19NodeCounts(Config{Scale: 1}.withDefaults()); len(got) != 4 || got[0] != 100 || got[3] != 100_000 {
		t.Fatalf("full-scale sweep = %v", got)
	}
	tiny := e19NodeCounts(Config{Scale: 0.0001}.withDefaults())
	if len(tiny) == 0 {
		t.Fatalf("tiny-scale sweep collapsed to nothing")
	}
	for i, n := range tiny {
		if n < 8 {
			t.Fatalf("sweep point %d below the 8-node floor: %v", i, tiny)
		}
		if i > 0 && n <= tiny[i-1] {
			t.Fatalf("sweep not strictly ascending: %v", tiny)
		}
	}
}
