package core

// E20: the bootstrap cost the paper's §V ledger-size comparison implies
// but never measures — how long a node that was offline for the whole
// run takes to catch up, and how many bytes it must pull, as the ledger
// grows. A fresh (cold) node joining a ledger network cannot settle
// anything until it has synchronized the history, so §V's size gap
// (145.95 GB Bitcoin vs 3.42 GB Nano at the paper's snapshot) is also a
// join-latency gap. Both paradigms run the same schedule shape: traffic
// builds a history for factor × base-span, then the cold node rejoins
// and the netsim sync manager range-pulls the canonical stream from a
// live peer. Every cell derives from deterministic sim counters, so the
// table is identical for any Workers and any Shards value (pinned by
// test, like E19).

import (
	"context"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// e20Factors scales the pre-join history span: each row's ledger is
// factor × the base span's worth of traffic.
var e20Factors = []int{1, 2, 4}

// e20Row renders one cold-start point.
func e20Row(system string, factor, history, ledgerBytes int, took time.Duration, ok bool, st netsim.SyncStats) []string {
	catchUp := "incomplete"
	if ok {
		catchUp = metrics.F1(took.Seconds()*1000) + " ms"
	}
	return []string{
		system, metrics.I(factor), metrics.I(history),
		metrics.Bytes(float64(ledgerBytes)), catchUp,
		metrics.Bytes(float64(st.BytesServed)), metrics.I(st.RangePulls),
		metrics.I(st.BacklogEvicted),
	}
}

// e20Chain runs one chain-side point: a 10-node PoW network mines for
// factor × the base span while the cold node (relay-only, node 9) sits
// detached; on rejoin it range-pulls the main chain. The payment stream
// keeps blocks non-empty so ledger bytes grow with history length.
func e20Chain(cfg Config, factor int) ([]string, error) {
	const nodes, cold = 10, 9
	rates := make([]float64, nodes)
	for i := 0; i < cold; i++ {
		rates[i] = 1
	}
	np := cfg.netParams(nodes, 4, cfg.Seed+int64(100+factor), 20*time.Millisecond, 200*time.Millisecond)
	np.SampleBudget = e19SampleBudget
	net, err := netsim.NewBitcoin(netsim.BitcoinConfig{
		Net:           np,
		HashRates:     rates,
		BlockInterval: cfg.dur(10 * time.Second),
		// Accounts stop short of the cold node's index: every home ledger
		// building payments is a live one.
		Accounts: 8, InitialBalance: 1 << 30,
		BacklogCap: cfg.BacklogCap, BacklogTTL: cfg.BacklogTTL,
	})
	if err != nil {
		return nil, err
	}
	joinAt := time.Duration(factor) * e19Span(cfg, 2*time.Minute, 12*time.Second)
	var load []workload.TimedPayment
	for _, p := range e19Load(cfg.Seed+int64(103+factor), 2, joinAt, 20) {
		if p.From < 8 && p.To < 8 {
			load = append(load, p)
		}
	}
	net.ScheduleColdStart(cold, 0, joinAt, cfg.SyncPullBatch)
	horizon := joinAt + e19Span(cfg, time.Minute, 10*time.Second)
	m := net.RunWithPayments(horizon, load, 2)
	took, ok := net.ColdSyncDone(cold)
	return e20Row("bitcoin (PoW)", factor, m.BlocksOnMain, m.LedgerBytes, took, ok, net.SyncStats()), nil
}

// e20Nano runs one lattice-side point: an 8-node ORV network settles
// factor × the base span of transfers while the cold node (node 7) sits
// detached, then goes quiet; on rejoin the cold node range-pulls the
// account-ordered block stream. Transfers touching accounts owned by
// the cold node are filtered out — a detached owner would mint sends
// the network never sees.
func e20Nano(cfg Config, factor int) ([]string, error) {
	const nodes, cold = 8, 7
	np := cfg.netParams(nodes, 4, cfg.Seed+int64(200+factor), 20*time.Millisecond, 200*time.Millisecond)
	np.SampleBudget = e19SampleBudget
	net, err := netsim.NewNano(netsim.NanoConfig{
		Net:      np,
		Accounts: e19Accounts, Reps: 4, Workers: cfg.Workers,
		BacklogCap: cfg.BacklogCap, BacklogTTL: cfg.BacklogTTL,
	})
	if err != nil {
		return nil, err
	}
	span := time.Duration(factor) * e19Span(cfg, time.Minute, 6*time.Second)
	var load []workload.TimedPayment
	for _, p := range e19Load(cfg.Seed+int64(207+factor), 2, span, 5) {
		if p.From%nodes != cold && p.To%nodes != cold {
			load = append(load, p)
		}
	}
	// Rejoin after in-flight receives settle: the pulled stream is static.
	joinAt := span + e19Span(cfg, 20*time.Second, 4*time.Second)
	net.ScheduleColdStart(cold, 0, joinAt, cfg.SyncPullBatch)
	horizon := joinAt + e19Span(cfg, 30*time.Second, 6*time.Second)
	net.RunWithTransfers(horizon, load)
	took, ok := net.ColdSyncDone(cold)
	return e20Row("nano (ORV)", factor, net.Observer().BlockCount(), net.Observer().LedgerBytes(),
		took, ok, net.SyncStats()), nil
}

// RunE20ColdStart measures bootstrap catch-up on every selected
// paradigm with a cold-start hook: the time and pulled bytes a cold
// node needs to join, swept over ledger length (history factors 1, 2,
// 4). The system list comes from the paradigm registry
// (Config.Paradigms filters it). Points fan out across cfg.Workers;
// rows land in fixed (factor, system) order.
func RunE20ColdStart(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E20 (§V): cold-start bootstrap — catch-up latency & pulled bytes vs ledger length",
		"system", "history-factor", "history-blocks", "ledger", "catch-up", "pulled", "range-pulls", "evicted")

	sys := e20Systems(cfg)
	rows, err := fanOut(ctx, cfg, len(sys)*len(e20Factors), func(i int) ([]string, error) {
		return sys[i%len(sys)](cfg, e20Factors[i/len(sys)])
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("the cold node is detached from t=0 and rejoins after the history is built; catch-up is rejoin → final range window (sim time)")
	t.AddNote("chains pull the main chain in height order; the lattice pulls the account-ordered block stream — both through the netsim sync manager")
	t.AddNote("pulled counts every block served to pullers (range windows + gap-repair backstop); evicted counts bounded-backlog drops")
	t.AddNote("cells derive from deterministic counters only — tables are identical for any Workers and any Shards value")
	return t, nil
}
