package core

// E18: executed double spends under combined adversaries. E15 measured
// the *odds* of an attack (catch-up races, contested elections) and
// E16/E17 measured an adversary's *exposure* (victim lag, withheld
// weight); E18 carries the attack through to a wrong settlement and
// reports whether it actually happened. Two combined-fault shapes per
// ledger, built on the netsim executed-attack drivers: an eclipse that
// owns the victim's view and feeds it a payment the rest of the network
// never sees, and a partition that hides the conflicting spend until the
// heal exchange surfaces it. The zero-fault baseline rows reuse E15's
// sweep-point cell constructors, so they stay byte-identical to E15's
// zero-power rows by construction (pinned by the golden suite).

import (
	"context"
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/pow"
)

// e18Seed* are the per-scenario seed strides; each (scenario, trial)
// pair owns a disjoint network seed so neither the fan-out schedule nor
// the trial count of one scenario can perturb another.
const (
	e18SeedChainEclipse   = 500_000
	e18SeedChainPartition = 510_000
	e18SeedNanoEclipse    = 520_000
	e18SeedNanoPartition  = 530_000
	e18SeedDepthSweep     = 540_000
)

// e18ChainTrial runs one executed chain double spend on a fresh network
// built from the canonical netsim scenario (see
// netsim.ChainDoubleSpendScenario): the victim (node 0, the merchant's
// node) is either fully eclipsed or split into a 2-node minority, the
// honest payment is fed to its side only, and the heal releases the
// honest chain against the victim's private view. The merchant's rule
// is 2 confirmations — deliberately shallow, the §IV-A point being that
// depth bought *inside* a captured view is void.
func e18ChainTrial(cfg Config, stride int64, trial int, partition bool) (netsim.ChainDoubleSpendOutcome, error) {
	bcfg, plan, fs, dur := netsim.ChainDoubleSpendScenario(cfg.Seed+stride+int64(trial), partition)
	net, err := netsim.NewBitcoin(bcfg)
	if err != nil {
		return netsim.ChainDoubleSpendOutcome{}, err
	}
	if fs != nil {
		fs.ApplyToBitcoin(net)
	}
	h := net.ScheduleDoubleSpend(plan)
	net.Run(dur)
	return net.DoubleSpendVerdict(h), nil
}

// e18NanoTrial runs one executed lattice double spend on a fresh
// network built from the canonical netsim scenario (see
// netsim.LatticeDoubleSpendScenario). The conflicting sends fork the
// attacker's account: the honest one reaches only the victim's side,
// the rival wins its quorum on the honest side, and the heal's fork
// election decides which send survives on the victim's lattice.
func e18NanoTrial(cfg Config, stride int64, trial int, partition bool) (netsim.LatticeDoubleSpendOutcome, error) {
	ncfg, plan, fs, dur := netsim.LatticeDoubleSpendScenario(cfg.Seed+stride+int64(trial), partition)
	ncfg.Workers = cfg.Workers
	net, err := netsim.NewNano(ncfg)
	if err != nil {
		return netsim.LatticeDoubleSpendOutcome{}, err
	}
	if fs != nil {
		fs.ApplyToNano(net)
	}
	h := net.ScheduleExecutedDoubleSpend(plan)
	net.Run(dur)
	return net.ExecutedOutcome(h), nil
}

// outOf renders a k-of-n count cell.
func outOf(k, n int) string { return fmt.Sprintf("%d/%d", k, n) }

// e18ChainRow aggregates DoubleSpendTrials executed chain double spends
// into one table row.
func e18ChainRow(cfg Config, scenario string, stride int64, adversary string, partition bool) ([]string, error) {
	var injected, accepted, reverted, honest int
	for trial := 0; trial < cfg.DoubleSpendTrials; trial++ {
		out, err := e18ChainTrial(cfg, stride, trial, partition)
		if err != nil {
			return nil, err
		}
		if !out.Injected {
			continue
		}
		injected++
		if out.Accepted {
			accepted++
		}
		if out.Reverted {
			reverted++
		}
		if out.HonestConfirmed {
			honest++
		}
	}
	if injected == 0 {
		return nil, fmt.Errorf("core: e18: no chain double spend injected (%s)", scenario)
	}
	return []string{
		scenario, "bitcoin (PoW, z=2 merchant)", adversary, metrics.I(injected),
		metrics.F4(float64(reverted) / float64(injected)), "—",
		outOf(accepted, injected), outOf(honest, injected), "—", "—",
	}, nil
}

// e18NanoRow aggregates DoubleSpendTrials executed lattice double spends
// into one table row. "Accepted" for the zero-confirmation merchant is
// the issued receive at heal time; the quorum column counts trials where
// the victim reached vote quorum *inside* the attack window — Nano's
// defense predicts zero, because a captured victim cannot hear the
// representatives.
func e18NanoRow(cfg Config, scenario string, stride int64, adversary string, partition bool) ([]string, error) {
	var injected, settled, reverted, honest, quorum int
	for trial := 0; trial < cfg.DoubleSpendTrials; trial++ {
		out, err := e18NanoTrial(cfg, stride, trial, partition)
		if err != nil {
			return nil, err
		}
		if !out.Injected {
			continue
		}
		injected++
		if out.Settled {
			settled++
		}
		if out.Reverted {
			reverted++
		}
		if out.HonestFinal {
			honest++
		}
		if out.ConfirmedAtVictim {
			quorum++
		}
	}
	if injected == 0 {
		return nil, fmt.Errorf("core: e18: no lattice double spend injected (%s)", scenario)
	}
	return []string{
		scenario, "nano (ORV, zero-conf merchant)", adversary, metrics.I(injected),
		metrics.F4(float64(reverted) / float64(injected)), "—",
		outOf(settled, injected), outOf(honest, injected), "—", outOf(quorum, injected),
	}, nil
}

// e18DepthWindows are the two attack-window lengths the confirmation-
// depth sweep crosses with the merchant rule: the canonical scenario's
// 135 s heal and a window less than half as long. The sweep's point is
// the interplay — a deeper rule only defends when the window is too
// short to manufacture that many confirmations inside the captured view.
var e18DepthWindows = []time.Duration{135 * time.Second, 75 * time.Second}

// e18DepthZs is the merchant-rule sweep, z = 1…6 (§IV-A's range from
// reckless to Nakamoto's canonical six).
var e18DepthZs = []int{1, 2, 3, 4, 5, 6}

// e18DepthRow aggregates DoubleSpendTrials executed eclipse double
// spends for one (z, window) sweep point. The analytic column is
// Nakamoto's catch-up probability for an attacker holding the captured
// side's hash share at depth z — what §IV-A says such an attacker could
// achieve in a fair race, next to what the eclipse actually executed.
func e18DepthRow(cfg Config, stride int64, z int, healAt time.Duration) ([]string, error) {
	var injected, accepted, reverted, honest int
	for trial := 0; trial < cfg.DoubleSpendTrials; trial++ {
		bcfg, plan, _, dur := netsim.ChainDoubleSpendScenario(cfg.Seed+stride+int64(trial), false)
		plan.Confirmations = z
		plan.HealAt = healAt
		net, err := netsim.NewBitcoin(bcfg)
		if err != nil {
			return nil, err
		}
		h := net.ScheduleDoubleSpend(plan)
		net.Run(dur)
		out := net.DoubleSpendVerdict(h)
		if !out.Injected {
			continue
		}
		injected++
		if out.Accepted {
			accepted++
		}
		if out.Reverted {
			reverted++
		}
		if out.HonestConfirmed {
			honest++
		}
	}
	if injected == 0 {
		return nil, fmt.Errorf("core: e18: no depth-sweep double spend injected (z=%d, heal %s)", z, healAt)
	}
	// The canonical scenario mines uniformly across its 6 nodes and the
	// eclipse captures the victim alone, so the captured view holds 1/6
	// of the network's hash power.
	const capturedShare = 1.0 / 6
	return []string{
		fmt.Sprintf("depth sweep (heal %ds)", int(healAt.Seconds())),
		fmt.Sprintf("bitcoin (PoW, z=%d merchant)", z), "100.00% links", metrics.I(injected),
		metrics.F4(float64(reverted) / float64(injected)),
		metrics.F4(pow.CatchUpProbability(capturedShare, z)),
		outOf(accepted, injected), outOf(honest, injected), "—", "—",
	}, nil
}

// RunE18ExecutedDoubleSpend executes double spends under combined
// adversaries on both sides of the paper's comparison and reports
// whether the victim's accepted payment was actually reverted. Chain
// side: the victim's 2-confirmation acceptance is manufactured inside a
// captured view (full eclipse, or a partition hiding the fork) and the
// heal's longer honest chain reorganizes it away — §IV-A's double-spend
// window, carried through. Lattice side: the zero-confirmation merchant
// settles the fed send, the rival wins quorum on the honest side, and
// the post-heal fork election rolls the merchant's payment back — while
// the quorum column shows the victim never reached vote confirmation
// inside the window, Nano's §IV-B defense for merchants who wait for it.
// The baseline rows rerun E15's zero-power sweep points through the
// shared cell constructors, byte-identical to E15's rows.
func RunE18ExecutedDoubleSpend(ctx context.Context, cfg Config) (*metrics.Table, error) {
	cfg = cfg.withDefaults()
	t := metrics.NewTable("E18 (§IV): executed double spends under combined adversaries",
		"scenario", "system", "adversary", "trials", "executed", "analytic",
		"accepted", "honest-final", "resolve-mean", "quorum@heal")

	points := []func() ([]string, error){
		// Baseline rows first: the golden suite pins their cells to E15's
		// zero-power rows (same constructors, same cells, plus the
		// scenario label and the trailing quorum column).
		func() ([]string, error) {
			trials, success, analytic := e15ChainRaceCells(cfg, 0, 0)
			return []string{
				"baseline (no faults)", "bitcoin (z=6 catch-up race)", metrics.Pct(0),
				trials, success, analytic, "—", "—", "—", "—",
			}, nil
		},
		func() ([]string, error) {
			cells, err := e15NanoCells(cfg, 0)
			if err != nil {
				return nil, err
			}
			return []string{
				"baseline (no faults)", "nano (ORV, 0/10 byzantine)", cells.Share,
				cells.Trials, cells.Success, "—", cells.Resolved, cells.Honest, cells.Latency, "—",
			}, nil
		},
		func() ([]string, error) {
			return e18ChainRow(cfg, "eclipse + double spend", e18SeedChainEclipse, "100.00% links", false)
		},
		func() ([]string, error) {
			return e18ChainRow(cfg, "partition-hidden fork", e18SeedChainPartition, "33.33% split", true)
		},
		func() ([]string, error) {
			return e18NanoRow(cfg, "eclipse + double spend", e18SeedNanoEclipse, "100.00% links", false)
		},
		func() ([]string, error) {
			return e18NanoRow(cfg, "partition-hidden fork", e18SeedNanoPartition, "20.00% split", true)
		},
	}
	if cfg.DepthSweep {
		// The sweep appends after the historical rows, window-major, so
		// the default table stays byte-identical with DepthSweep off.
		for wi, healAt := range e18DepthWindows {
			for _, z := range e18DepthZs {
				wi, z, healAt := wi, z, healAt
				points = append(points, func() ([]string, error) {
					stride := int64(e18SeedDepthSweep + wi*3_000 + z*500)
					return e18DepthRow(cfg, stride, z, healAt)
				})
			}
		}
	}
	rows, err := fanOut(ctx, cfg, len(points), func(i int) ([]string, error) { return points[i]() })
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.AddNote("executed = accepted by the victim inside the attack window, then gone from its ledger after heal — the double spend actually happened (§IV)")
	t.AddNote("chain: the victim accepts at 2 confirmations mined inside its captured view; the released honest chain out-works its branch and the reorg strands the payment (§IV-A)")
	t.AddNote("lattice: accepted = the zero-conf merchant's issued receive at heal; quorum@heal counts trials where the victim reached vote quorum inside the window — a captured victim cannot, so a merchant waiting for confirmation refuses the payment (§IV-B)")
	t.AddNote("baseline rows rerun E15's zero-power sweep points — their cells match E15 byte for byte")
	if cfg.DepthSweep {
		t.AddNote("depth sweep: the eclipse shape rerun for merchant rules z = 1…6 against two window lengths; analytic is Nakamoto's catch-up odds for the captured side's 1/6 hash share — depth defends only once the window is too short to manufacture z confirmations inside the captured view (§IV-A)")
	}
	return t, nil
}
