// Package hashx provides the hashing primitives shared by every ledger in
// this repository: the 32-byte SHA-256 Hash type, proof-of-work targets
// expressed either as leading-zero-bit counts (the paper's "pattern starts
// with at least a predefined number of 0 bits", §III-A1) or as full 256-bit
// thresholds for fractional difficulty, and a Hashcash-style stamp used by
// the Nano-like lattice as an anti-spam measure (§III-B).
package hashx

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/big"
	"math/bits"
)

// Size is the byte length of a Hash.
const Size = 32

// Hash is a 32-byte SHA-256 digest. The zero value is the all-zero hash,
// used as the "no parent" marker for genesis blocks.
type Hash [Size]byte

// Zero is the all-zero hash. Genesis blocks reference it as their parent.
var Zero Hash

// Sum returns the SHA-256 digest of data.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// SumDouble returns SHA-256(SHA-256(data)), the digest Bitcoin applies to
// block headers and transactions.
func SumDouble(data []byte) Hash {
	first := sha256.Sum256(data)
	return sha256.Sum256(first[:])
}

// Concat hashes the concatenation of all parts in order.
func Concat(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// Join hashes the concatenation of two hashes, the interior-node operation
// of Merkle trees.
func Join(a, b Hash) Hash {
	var buf [2 * Size]byte
	copy(buf[:Size], a[:])
	copy(buf[Size:], b[:])
	return Sum(buf[:])
}

// FromHex parses a 64-character hex string into a Hash.
func FromHex(s string) (Hash, error) {
	var h Hash
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("hashx: parse hex: %w", err)
	}
	if len(raw) != Size {
		return Zero, fmt.Errorf("hashx: hex hash must be %d bytes, got %d", Size, len(raw))
	}
	copy(h[:], raw)
	return h, nil
}

// Hex returns the full lowercase hex encoding of h.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// String returns a short 8-hex-digit prefix, convenient for logs and
// rendered figures.
func (h Hash) String() string { return hex.EncodeToString(h[:4]) }

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == Zero }

// Cmp compares two hashes as big-endian integers, returning -1, 0 or +1.
func (h Hash) Cmp(other Hash) int {
	for i := 0; i < Size; i++ {
		switch {
		case h[i] < other[i]:
			return -1
		case h[i] > other[i]:
			return 1
		}
	}
	return 0
}

// LeadingZeroBits returns the number of leading zero bits of h interpreted
// as a big-endian integer.
func (h Hash) LeadingZeroBits() int {
	n := 0
	for _, b := range h {
		if b == 0 {
			n += 8
			continue
		}
		n += bits.LeadingZeros8(b)
		break
	}
	return n
}

// Big returns h as a big-endian big.Int. The result is freshly allocated.
func (h Hash) Big() *big.Int { return new(big.Int).SetBytes(h[:]) }

// Uint64 folds the first 8 bytes of h into a uint64. It is used to derive
// deterministic pseudo-random values (e.g. proposer lotteries) from hashes.
func (h Hash) Uint64() uint64 { return binary.BigEndian.Uint64(h[:8]) }

// maxTarget is 2^256 - 1, the easiest possible target.
var maxTarget = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1))

// MaxTarget returns a copy of the easiest possible target (2^256 - 1).
func MaxTarget() *big.Int { return new(big.Int).Set(maxTarget) }

// TargetForDifficulty returns the 256-bit threshold a hash must be strictly
// below so that finding it takes an expected `difficulty` attempts.
// Difficulty values below 1 are clamped to 1.
func TargetForDifficulty(difficulty float64) *big.Int {
	if difficulty < 1 || math.IsNaN(difficulty) {
		difficulty = 1
	}
	d, _ := new(big.Float).SetFloat64(difficulty).Int(nil)
	if d.Sign() <= 0 {
		d = big.NewInt(1)
	}
	return new(big.Int).Div(maxTarget, d)
}

// DifficultyForTarget is the inverse of TargetForDifficulty: the expected
// number of attempts to find a hash below target.
func DifficultyForTarget(target *big.Int) float64 {
	if target == nil || target.Sign() <= 0 {
		return math.Inf(1)
	}
	q := new(big.Float).Quo(new(big.Float).SetInt(maxTarget), new(big.Float).SetInt(target))
	f, _ := q.Float64()
	return f
}

// MeetsTarget reports whether h, as a big-endian integer, is strictly below
// target. This is the "partial hash inversion" acceptance test (§III-A1).
func MeetsTarget(h Hash, target *big.Int) bool {
	return h.Big().Cmp(target) < 0
}

// MeetsBits reports whether h starts with at least `zeroBits` zero bits,
// the coarse formulation used by Hashcash and by the paper's description of
// Bitcoin's puzzle.
func MeetsBits(h Hash, zeroBits int) bool {
	return h.LeadingZeroBits() >= zeroBits
}

// Stamp is a solved Hashcash puzzle over an arbitrary payload.
type Stamp struct {
	// Nonce is the free variable that makes the digest meet the
	// difficulty bits.
	Nonce uint64
	// Bits is the number of leading zero bits the stamp guarantees.
	Bits int
}

// stampDigest computes the digest checked by Hashcash stamps.
func stampDigest(payload []byte, nonce uint64) Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], nonce)
	return Concat(payload, buf[:])
}

// FindStamp searches nonces starting at start for one whose digest over
// payload has at least bits leading zero bits. It gives up after maxIter
// attempts and reports ok=false. It is the anti-spam proof of work a Nano
// account performs before publishing a lattice block.
func FindStamp(payload []byte, bits int, start, maxIter uint64) (Stamp, bool) {
	for i := uint64(0); i < maxIter; i++ {
		nonce := start + i
		if MeetsBits(stampDigest(payload, nonce), bits) {
			return Stamp{Nonce: nonce, Bits: bits}, true
		}
	}
	return Stamp{}, false
}

// VerifyStamp reports whether the stamp's nonce makes the payload digest
// meet the stamp's difficulty bits.
func VerifyStamp(payload []byte, s Stamp) bool {
	return MeetsBits(stampDigest(payload, s.Nonce), s.Bits)
}

// ExpectedAttempts returns the expected number of hash evaluations needed
// to find a stamp with the given number of leading zero bits (2^bits).
func ExpectedAttempts(bits int) float64 { return math.Exp2(float64(bits)) }
