package hashx

import (
	"math"
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	a := Sum([]byte("hello"))
	b := Sum([]byte("hello"))
	if a != b {
		t.Fatalf("Sum not deterministic: %s vs %s", a.Hex(), b.Hex())
	}
	if a == Sum([]byte("world")) {
		t.Fatalf("distinct inputs hashed equal")
	}
}

func TestSumDoubleDiffersFromSum(t *testing.T) {
	data := []byte("block header")
	if Sum(data) == SumDouble(data) {
		t.Fatal("SumDouble should differ from Sum")
	}
	inner := Sum(data)
	if SumDouble(data) != Sum(inner[:]) {
		t.Fatal("SumDouble is not SHA256(SHA256(x))")
	}
}

func TestConcatMatchesManualConcat(t *testing.T) {
	got := Concat([]byte("ab"), []byte("cd"))
	want := Sum([]byte("abcd"))
	if got != want {
		t.Fatalf("Concat mismatch: %s vs %s", got.Hex(), want.Hex())
	}
}

func TestJoinOrderMatters(t *testing.T) {
	a, b := Sum([]byte("a")), Sum([]byte("b"))
	if Join(a, b) == Join(b, a) {
		t.Fatal("Join must not be commutative")
	}
}

func TestHexRoundTrip(t *testing.T) {
	h := Sum([]byte("round trip"))
	parsed, err := FromHex(h.Hex())
	if err != nil {
		t.Fatalf("FromHex: %v", err)
	}
	if parsed != h {
		t.Fatalf("round trip mismatch")
	}
}

func TestFromHexErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"too short", "abcd"},
		{"not hex", strings.Repeat("zz", 32)},
		{"too long", strings.Repeat("ab", 40)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromHex(tc.in); err == nil {
				t.Fatalf("FromHex(%q) should fail", tc.in)
			}
		})
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Fatal("Zero.IsZero() = false")
	}
	if Sum(nil).IsZero() {
		t.Fatal("hash of empty input should not be zero")
	}
}

func TestCmpMatchesBigIntOrder(t *testing.T) {
	f := func(a, b [Size]byte) bool {
		ha, hb := Hash(a), Hash(b)
		want := ha.Big().Cmp(hb.Big())
		return ha.Cmp(hb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeadingZeroBits(t *testing.T) {
	cases := []struct {
		name string
		h    Hash
		want int
	}{
		{"all zero", Zero, 256},
		{"first bit set", Hash{0x80}, 0},
		{"one leading zero", Hash{0x40}, 1},
		{"full zero byte", Hash{0x00, 0xFF}, 8},
		{"byte and a half", Hash{0x00, 0x08}, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.h.LeadingZeroBits(); got != tc.want {
				t.Fatalf("LeadingZeroBits() = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestTargetDifficultyRoundTrip(t *testing.T) {
	for _, d := range []float64{1, 2, 16, 1024, 1e6, 1e12} {
		target := TargetForDifficulty(d)
		got := DifficultyForTarget(target)
		if math.Abs(got-d)/d > 0.01 {
			t.Fatalf("difficulty %g round-tripped to %g", d, got)
		}
	}
}

func TestTargetForDifficultyClamps(t *testing.T) {
	if TargetForDifficulty(0).Cmp(MaxTarget()) != 0 {
		t.Fatal("difficulty 0 should clamp to easiest target")
	}
	if TargetForDifficulty(math.NaN()).Cmp(MaxTarget()) != 0 {
		t.Fatal("NaN difficulty should clamp to easiest target")
	}
}

func TestDifficultyForTargetDegenerate(t *testing.T) {
	if !math.IsInf(DifficultyForTarget(nil), 1) {
		t.Fatal("nil target should be infinitely hard")
	}
	if !math.IsInf(DifficultyForTarget(big.NewInt(0)), 1) {
		t.Fatal("zero target should be infinitely hard")
	}
}

func TestMeetsTargetBoundary(t *testing.T) {
	target := big.NewInt(1000)
	var below, equal Hash
	below[Size-1] = 0xFF // 255 < 1000
	equal.SetBytesFromBig(big.NewInt(1000))
	if !MeetsTarget(below, target) {
		t.Fatal("255 should meet target 1000")
	}
	if MeetsTarget(equal, target) {
		t.Fatal("equality must not meet target (strict less-than)")
	}
}

// SetBytesFromBig is a test helper placing a big.Int value into the
// low-order bytes of a Hash.
func (h *Hash) SetBytesFromBig(v *big.Int) {
	raw := v.Bytes()
	copy(h[Size-len(raw):], raw)
}

func TestMeetsBits(t *testing.T) {
	h := Hash{0x00, 0x0F} // 12 leading zero bits
	if !MeetsBits(h, 12) {
		t.Fatal("h has exactly 12 zero bits, MeetsBits(12) should pass")
	}
	if MeetsBits(h, 13) {
		t.Fatal("h has only 12 zero bits, MeetsBits(13) should fail")
	}
}

func TestFindAndVerifyStamp(t *testing.T) {
	payload := []byte("lattice block / account 7")
	stamp, ok := FindStamp(payload, 10, 0, 1<<20)
	if !ok {
		t.Fatal("10-bit stamp should be found within 2^20 attempts")
	}
	if !VerifyStamp(payload, stamp) {
		t.Fatal("found stamp failed verification")
	}
	if VerifyStamp([]byte("different payload"), stamp) {
		t.Fatal("stamp must not verify for a different payload")
	}
}

func TestFindStampGivesUp(t *testing.T) {
	if _, ok := FindStamp([]byte("x"), 64, 0, 4); ok {
		t.Fatal("64-bit stamp in 4 attempts is (effectively) impossible")
	}
}

func TestExpectedAttempts(t *testing.T) {
	if got := ExpectedAttempts(10); got != 1024 {
		t.Fatalf("ExpectedAttempts(10) = %g, want 1024", got)
	}
}

func TestUint64Deterministic(t *testing.T) {
	h := Sum([]byte("seed"))
	if h.Uint64() != h.Uint64() {
		t.Fatal("Uint64 not deterministic")
	}
	// distinct hashes should (overwhelmingly) fold differently
	if Sum([]byte("a")).Uint64() == Sum([]byte("b")).Uint64() {
		t.Fatal("suspicious Uint64 collision on trivial inputs")
	}
}

func BenchmarkSum(b *testing.B) {
	data := make([]byte, 512)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Sum(data)
	}
}

func BenchmarkFindStamp12Bits(b *testing.B) {
	payload := []byte("bench payload")
	for i := 0; i < b.N; i++ {
		if _, ok := FindStamp(payload, 12, uint64(i)<<32, 1<<24); !ok {
			b.Fatal("stamp not found")
		}
	}
}
