// Package workload generates the transaction traffic the experiments feed
// into each ledger: Poisson payment arrivals over uniform or Zipf-skewed
// account populations, bursty load for backlog experiments (paper §VI's
// pending-transaction counts), double-spend attack plans for the
// confirmation experiments (§IV) and spam floods for Nano's anti-spam PoW
// (§III-B).
//
// Generators are pure functions of an explicit *rand.Rand so that every
// experiment is reproducible from its seed.
package workload

import (
	"math/rand"
	"time"
)

// Payment is one value transfer between ring-indexed accounts.
type Payment struct {
	From   int
	To     int
	Amount uint64
}

// TimedPayment schedules a payment at a virtual time.
type TimedPayment struct {
	At time.Duration
	Payment
}

// Config shapes a generated payment stream.
type Config struct {
	// Accounts is the number of participating accounts (ring indices
	// 0..Accounts-1).
	Accounts int
	// Rate is the mean arrival rate in payments per second (Poisson).
	Rate float64
	// Duration is the span of virtual time to cover.
	Duration time.Duration
	// ZipfS skews sender/receiver choice when > 1 (s parameter of the
	// Zipf law); 0 selects uniformly.
	ZipfS float64
	// MinAmount and MaxAmount bound the uniform payment size; both
	// default to 1 when zero.
	MinAmount uint64
	MaxAmount uint64
}

// picker chooses account indices.
type picker struct {
	n    int
	zipf *rand.Zipf
	rng  *rand.Rand
}

func newPicker(rng *rand.Rand, cfg Config) picker {
	p := picker{n: cfg.Accounts, rng: rng}
	if cfg.ZipfS > 1 {
		p.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Accounts-1))
	}
	return p
}

func (p picker) pick() int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return p.rng.Intn(p.n)
}

// Payments generates a Poisson stream of payments over cfg.Duration,
// sorted by arrival time. Sender and receiver always differ.
func Payments(rng *rand.Rand, cfg Config) []TimedPayment {
	if cfg.Accounts < 2 || cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil
	}
	lo, hi := cfg.MinAmount, cfg.MaxAmount
	if lo == 0 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	p := newPicker(rng, cfg)
	est := int(cfg.Rate*cfg.Duration.Seconds()) + 1
	out := make([]TimedPayment, 0, est)
	mean := time.Duration(float64(time.Second) / cfg.Rate)
	for t := time.Duration(0); ; {
		t += time.Duration(rng.ExpFloat64() * float64(mean))
		if t > cfg.Duration {
			break
		}
		from := p.pick()
		to := p.pick()
		for to == from {
			to = p.pick()
		}
		amount := lo
		if hi > lo {
			amount = lo + uint64(rng.Int63n(int64(hi-lo)+1))
		}
		out = append(out, TimedPayment{At: t, Payment: Payment{From: from, To: to, Amount: amount}})
	}
	return out
}

// Burst generates payments in periodic bursts: quiet for period−burstLen,
// then burstRate payments/second for burstLen. It models the backlog
// spikes behind the paper's pending-transaction figures (§VI).
func Burst(rng *rand.Rand, cfg Config, burstLen, period time.Duration) []TimedPayment {
	if cfg.Accounts < 2 || cfg.Rate <= 0 || cfg.Duration <= 0 || burstLen <= 0 || period < burstLen {
		return nil
	}
	p := newPicker(rng, cfg)
	lo, hi := cfg.MinAmount, cfg.MaxAmount
	if lo == 0 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	var out []TimedPayment
	mean := time.Duration(float64(time.Second) / cfg.Rate)
	for start := time.Duration(0); start < cfg.Duration; start += period {
		for t := start; t < start+burstLen && t < cfg.Duration; {
			t += time.Duration(rng.ExpFloat64() * float64(mean))
			if t >= start+burstLen || t > cfg.Duration {
				break
			}
			from := p.pick()
			to := p.pick()
			for to == from {
				to = p.pick()
			}
			amount := lo
			if hi > lo {
				amount = lo + uint64(rng.Int63n(int64(hi-lo)+1))
			}
			out = append(out, TimedPayment{At: t, Payment: Payment{From: from, To: to, Amount: amount}})
		}
	}
	return out
}

// DoubleSpend is an attack plan: the attacker pays the victim, waits for
// the merchant's confirmation depth, then tries to replace that history
// with a conflicting payment to itself (§IV-A's orphaning risk, §III-B's
// Nano fork scenario).
type DoubleSpend struct {
	// Attacker and Victim are ring indices.
	Attacker int
	Victim   int
	// Amount is the value of both conflicting payments.
	Amount uint64
	// At is when the honest-looking payment is issued.
	At time.Duration
	// TargetDepth is the confirmation depth the merchant waits for.
	TargetDepth int
}

// DoubleSpends schedules n attack attempts spread uniformly over the
// duration, each from a distinct attacker index (0..n-1 shifted by base).
func DoubleSpends(rng *rand.Rand, n, base, victims int, amount uint64, dur time.Duration, depth int) []DoubleSpend {
	out := make([]DoubleSpend, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, DoubleSpend{
			Attacker:    base + i,
			Victim:      rng.Intn(victims),
			Amount:      amount,
			At:          time.Duration(rng.Int63n(int64(dur))),
			TargetDepth: depth,
		})
	}
	return out
}

// Spam is a flood of minimum-value self-payments from one account,
// modeling the "over-generation of transactions by a malicious user"
// that Nano's anti-spam PoW throttles (§III-B).
type Spam struct {
	From  int
	Count int
	// Rate is the attempted injection rate in tx/second.
	Rate float64
	At   time.Duration
}

// SpamFlood expands a Spam plan into timed payments to a sink account.
func SpamFlood(s Spam, sink int) []TimedPayment {
	if s.Count <= 0 || s.Rate <= 0 {
		return nil
	}
	gap := time.Duration(float64(time.Second) / s.Rate)
	out := make([]TimedPayment, 0, s.Count)
	for i := 0; i < s.Count; i++ {
		out = append(out, TimedPayment{
			At:      s.At + time.Duration(i)*gap,
			Payment: Payment{From: s.From, To: sink, Amount: 1},
		})
	}
	return out
}

// Merge combines multiple sorted payment streams into one sorted stream.
func Merge(streams ...[]TimedPayment) []TimedPayment {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]TimedPayment, 0, total)
	for _, s := range streams {
		out = append(out, s...)
	}
	// Simple insertion-friendly sort; streams are mostly sorted already.
	sortTimed(out)
	return out
}

func sortTimed(ps []TimedPayment) {
	// Shell sort: no extra allocation, fine at experiment scale, stable
	// enough for our purposes (exact ties are broken arbitrarily but
	// deterministically).
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(ps); i++ {
			tmp := ps[i]
			j := i
			for ; j >= gap && ps[j-gap].At > tmp.At; j -= gap {
				ps[j] = ps[j-gap]
			}
			ps[j] = tmp
		}
	}
}
