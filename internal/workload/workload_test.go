package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestPaymentsRateAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Accounts: 50, Rate: 100, Duration: 60 * time.Second, MinAmount: 5, MaxAmount: 10}
	ps := Payments(rng, cfg)
	// Poisson with mean 6000: expect within ±5σ.
	mean := 6000.0
	if math.Abs(float64(len(ps))-mean) > 5*math.Sqrt(mean) {
		t.Fatalf("generated %d payments, want ≈%d", len(ps), int(mean))
	}
	var prev time.Duration
	for _, p := range ps {
		if p.At < prev {
			t.Fatal("payments not sorted by time")
		}
		prev = p.At
		if p.At > cfg.Duration {
			t.Fatal("payment beyond duration")
		}
		if p.From == p.To {
			t.Fatal("self-payment generated")
		}
		if p.From < 0 || p.From >= 50 || p.To < 0 || p.To >= 50 {
			t.Fatal("account index out of range")
		}
		if p.Amount < 5 || p.Amount > 10 {
			t.Fatalf("amount %d out of [5,10]", p.Amount)
		}
	}
}

func TestPaymentsDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := Payments(rng, Config{Accounts: 5, Rate: 10, Duration: 10 * time.Second})
	for _, p := range ps {
		if p.Amount != 1 {
			t.Fatalf("default amount should be 1, got %d", p.Amount)
		}
	}
}

func TestPaymentsDegenerateConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if Payments(rng, Config{Accounts: 1, Rate: 1, Duration: time.Second}) != nil {
		t.Fatal("1 account should generate nothing")
	}
	if Payments(rng, Config{Accounts: 5, Rate: 0, Duration: time.Second}) != nil {
		t.Fatal("0 rate should generate nothing")
	}
	if Payments(rng, Config{Accounts: 5, Rate: 1, Duration: 0}) != nil {
		t.Fatal("0 duration should generate nothing")
	}
}

func TestPaymentsDeterministic(t *testing.T) {
	cfg := Config{Accounts: 10, Rate: 50, Duration: 10 * time.Second}
	a := Payments(rand.New(rand.NewSource(7)), cfg)
	b := Payments(rand.New(rand.NewSource(7)), cfg)
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := Config{Accounts: 100, Rate: 200, Duration: 60 * time.Second, ZipfS: 1.5}
	ps := Payments(rng, cfg)
	counts := make([]int, 100)
	for _, p := range ps {
		counts[p.From]++
	}
	// Zipf: account 0 must dominate the tail by a wide margin.
	tail := 0
	for _, c := range counts[50:] {
		tail += c
	}
	if counts[0] < tail {
		t.Fatalf("zipf skew missing: head=%d tail-sum=%d", counts[0], tail)
	}
}

func TestBurstQuietPeriods(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := Config{Accounts: 10, Rate: 1000, Duration: 10 * time.Second}
	burstLen, period := time.Second, 5*time.Second
	ps := Burst(rng, cfg, burstLen, period)
	if len(ps) == 0 {
		t.Fatal("no burst traffic generated")
	}
	for _, p := range ps {
		offset := p.At % period
		if offset > burstLen {
			t.Fatalf("payment at %v falls outside burst window", p.At)
		}
	}
	if Burst(rng, cfg, 2*time.Second, time.Second) != nil {
		t.Fatal("period < burstLen should generate nothing")
	}
}

func TestDoubleSpends(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	plans := DoubleSpends(rng, 10, 100, 20, 500, time.Minute, 6)
	if len(plans) != 10 {
		t.Fatalf("got %d plans", len(plans))
	}
	seen := map[int]bool{}
	for _, p := range plans {
		if p.Attacker < 100 || p.Attacker >= 110 {
			t.Fatalf("attacker index %d out of range", p.Attacker)
		}
		if seen[p.Attacker] {
			t.Fatal("duplicate attacker")
		}
		seen[p.Attacker] = true
		if p.Victim < 0 || p.Victim >= 20 {
			t.Fatalf("victim %d out of range", p.Victim)
		}
		if p.At < 0 || p.At >= time.Minute {
			t.Fatalf("attack time %v out of range", p.At)
		}
		if p.Amount != 500 || p.TargetDepth != 6 {
			t.Fatal("plan fields wrong")
		}
	}
}

func TestSpamFlood(t *testing.T) {
	s := Spam{From: 3, Count: 100, Rate: 50, At: time.Second}
	ps := SpamFlood(s, 9)
	if len(ps) != 100 {
		t.Fatalf("got %d spam payments", len(ps))
	}
	if ps[0].At != time.Second {
		t.Fatal("first spam payment should start at s.At")
	}
	gap := ps[1].At - ps[0].At
	if gap != 20*time.Millisecond {
		t.Fatalf("spam gap = %v, want 20ms", gap)
	}
	for _, p := range ps {
		if p.From != 3 || p.To != 9 || p.Amount != 1 {
			t.Fatal("spam payment fields wrong")
		}
	}
	if SpamFlood(Spam{Count: 0, Rate: 1}, 0) != nil {
		t.Fatal("empty spam should be nil")
	}
}

func TestMergeSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := Payments(rng, Config{Accounts: 5, Rate: 20, Duration: 5 * time.Second})
	b := SpamFlood(Spam{From: 1, Count: 50, Rate: 25, At: 0}, 2)
	merged := Merge(a, b)
	if len(merged) != len(a)+len(b) {
		t.Fatalf("merge lost payments: %d != %d+%d", len(merged), len(a), len(b))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].At < merged[i-1].At {
			t.Fatal("merged stream not sorted")
		}
	}
}

func BenchmarkPayments(b *testing.B) {
	cfg := Config{Accounts: 1000, Rate: 1000, Duration: 60 * time.Second, ZipfS: 1.2}
	for i := 0; i < b.N; i++ {
		Payments(rand.New(rand.NewSource(int64(i))), cfg)
	}
}
