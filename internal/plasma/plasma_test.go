package plasma

import (
	"errors"
	"testing"

	"repro/internal/keys"
)

func setup(t *testing.T) (*Operator, *RootChain, *keys.Ring) {
	t.Helper()
	r := keys.NewRing("plasma-test", 8)
	rc, err := NewRootChain(r.Addr(0), 1_000)
	if err != nil {
		t.Fatalf("NewRootChain: %v", err)
	}
	op := NewOperator(r.Pair(0), rc)
	return op, rc, r
}

func TestRootChainValidation(t *testing.T) {
	r := keys.NewRing("rc", 1)
	if _, err := NewRootChain(r.Addr(0), 0); !errors.Is(err, ErrNoBond) {
		t.Fatalf("err = %v", err)
	}
}

func TestHappyPathCommitAndExit(t *testing.T) {
	op, rc, r := setup(t)
	op.Deposit(r.Addr(1), 100)
	if err := op.Submit(r.Addr(1), r.Addr(2), 40); err != nil {
		t.Fatal(err)
	}
	if err := op.Submit(r.Addr(1), r.Addr(3), 10); err != nil {
		t.Fatal(err)
	}
	blk, err := op.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if rc.Commitments() != 1 || rc.OnChainBytes() != CommitmentBytes {
		t.Fatalf("commitments=%d bytes=%d", rc.Commitments(), rc.OnChainBytes())
	}
	if op.Balance(r.Addr(1)) != 50 || op.Balance(r.Addr(2)) != 40 {
		t.Fatal("sidechain balances wrong")
	}
	// The recipient exits with an inclusion proof.
	proof, err := blk.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Exit(blk.Number, blk.Txs[0], proof, 40); err != nil {
		t.Fatalf("Exit: %v", err)
	}
	// Double exit is rejected.
	if err := rc.Exit(blk.Number, blk.Txs[0], proof, 40); err == nil {
		t.Fatal("double exit accepted")
	}
	// Exiting more than the transfer is rejected.
	proof1, _ := blk.Prove(1)
	if err := rc.Exit(blk.Number, blk.Txs[1], proof1, 11); !errors.Is(err, ErrExitTooSmall) {
		t.Fatalf("err = %v", err)
	}
}

func TestExitRejectsBadProofs(t *testing.T) {
	op, rc, r := setup(t)
	op.Deposit(r.Addr(1), 100)
	op.Submit(r.Addr(1), r.Addr(2), 40)
	blk, _ := op.Seal()
	proof, _ := blk.Prove(0)

	// Unknown block.
	if err := rc.Exit(99, blk.Txs[0], proof, 40); !errors.Is(err, ErrUnknownBlock) {
		t.Fatalf("err = %v", err)
	}
	// Tampered transaction.
	forged := blk.Txs[0]
	forged.Amount = 4_000
	if err := rc.Exit(blk.Number, forged, proof, 4_000); !errors.Is(err, ErrProofInvalid) {
		t.Fatalf("err = %v", err)
	}
}

func TestHonestOperatorRejectsOverdraft(t *testing.T) {
	op, _, r := setup(t)
	op.Deposit(r.Addr(1), 10)
	if err := op.Submit(r.Addr(1), r.Addr(2), 11); !errors.Is(err, ErrOverdraft) {
		t.Fatalf("err = %v", err)
	}
}

// §VI-A's faulty state: a Byzantine operator commits an invalid transfer;
// a stakeholder proves fraud and the operator's bond is slashed.
func TestFraudProofSlashesOperator(t *testing.T) {
	op, rc, r := setup(t)
	op.AllowFraud()
	op.Deposit(r.Addr(1), 10)
	// Fraud: spend 1000 from an account holding 10.
	if err := op.Submit(r.Addr(1), r.Addr(2), 1_000); err != nil {
		t.Fatal(err)
	}
	blk, err := op.Seal()
	if err != nil {
		t.Fatal(err)
	}
	proof, _ := blk.Prove(0)
	reward, err := rc.SubmitFraudProof(blk.Number, blk.Txs[0], proof)
	if err != nil {
		t.Fatalf("SubmitFraudProof: %v", err)
	}
	if reward != 1_000 {
		t.Fatalf("reward = %d, want the full bond", reward)
	}
	if !rc.Slashed() || rc.Bond() != 0 {
		t.Fatal("operator not slashed")
	}
	// A slashed operator can no longer commit.
	if err := rc.Commit(99, blk.Root()); !errors.Is(err, ErrSlashed) {
		t.Fatalf("err = %v", err)
	}
	if _, err := rc.SubmitFraudProof(blk.Number, blk.Txs[0], proof); !errors.Is(err, ErrSlashed) {
		t.Fatalf("err = %v", err)
	}
}

func TestFraudProofRejectsHonestTx(t *testing.T) {
	op, rc, r := setup(t)
	op.Deposit(r.Addr(1), 100)
	op.Submit(r.Addr(1), r.Addr(2), 40)
	blk, _ := op.Seal()
	proof, _ := blk.Prove(0)
	if _, err := rc.SubmitFraudProof(blk.Number, blk.Txs[0], proof); !errors.Is(err, ErrTxHonest) {
		t.Fatalf("err = %v", err)
	}
	if rc.Slashed() {
		t.Fatal("honest tx slashed the operator")
	}
}

// The compression claim: thousands of sidechain transactions cost the
// root chain a few dozen bytes per block.
func TestCompressionRatio(t *testing.T) {
	op, rc, r := setup(t)
	op.Deposit(r.Addr(1), 1_000_000)
	const perBlock = 1_000
	for blkN := 0; blkN < 5; blkN++ {
		for i := 0; i < perBlock; i++ {
			if err := op.Submit(r.Addr(1), r.Addr(2), 1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := op.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if op.TxsCommitted() != 5*perBlock {
		t.Fatalf("committed = %d", op.TxsCommitted())
	}
	if rc.OnChainBytes() != 5*CommitmentBytes {
		t.Fatalf("on-chain bytes = %d", rc.OnChainBytes())
	}
	ratio := op.CompressionRatio()
	// 1000 txs × 56 B vs 40 B on chain → ≈1400× per block.
	if ratio < 1_000 {
		t.Fatalf("compression ratio = %.0f, want > 1000", ratio)
	}
	// Fresh operator with no commitments has ratio 0.
	rc2, _ := NewRootChain(r.Addr(0), 1)
	if NewOperator(r.Pair(0), rc2).CompressionRatio() != 0 {
		t.Fatal("empty operator ratio should be 0")
	}
}

func TestBlockByNumber(t *testing.T) {
	op, _, r := setup(t)
	op.Deposit(r.Addr(1), 10)
	op.Submit(r.Addr(1), r.Addr(2), 5)
	blk, _ := op.Seal()
	got, ok := op.BlockByNumber(blk.Number)
	if !ok || got.Root() != blk.Root() {
		t.Fatal("BlockByNumber lookup failed")
	}
	if _, ok := op.BlockByNumber(42); ok {
		t.Fatal("phantom block found")
	}
}

func BenchmarkSeal1000Txs(b *testing.B) {
	r := keys.NewRing("plasma-bench", 3)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rc, err := NewRootChain(r.Addr(0), 1)
		if err != nil {
			b.Fatal(err)
		}
		op := NewOperator(r.Pair(0), rc)
		op.Deposit(r.Addr(1), 1<<40)
		for j := 0; j < 1000; j++ {
			op.Submit(r.Addr(1), r.Addr(2), 1)
		}
		b.StartTimer()
		if _, err := op.Seal(); err != nil {
			b.Fatal(err)
		}
	}
}
