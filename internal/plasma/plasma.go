// Package plasma implements the nested-chain scaling construction of
// paper §VI-A: "The framework creates a nested blockchain structure …
// Only Merkle roots created in the sidechains are periodically broadcasted
// to the main network during non-faulty states allowing scalable
// transactions. For faulty states, stakeholders need to display proof of
// fraud and the Byzantine node gets penalized."
//
// An operator batches sidechain transactions into Plasma blocks and
// commits only the Merkle root on the root chain; users hold inclusion
// proofs. Each transaction declares the sender's pre-balance, so a fraud
// proof is stateless: an inclusion proof of a transaction whose amount
// exceeds its declared balance (or whose declared balance disagrees with
// the previous committed state) convicts the operator and slashes its
// bond.
package plasma

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/merkle"
)

// Tx is one sidechain transfer. PrevBalance is the sender's balance
// before this transaction according to the operator — the declaration
// fraud proofs check.
type Tx struct {
	From        keys.Address
	To          keys.Address
	Amount      uint64
	PrevBalance uint64
}

// txWireSize models the sidechain encoding of a transaction.
const txWireSize = 2*keys.AddressSize + 16

// Encode serializes the transaction as a Merkle leaf.
func (t Tx) Encode() []byte {
	buf := make([]byte, 0, txWireSize)
	buf = append(buf, t.From[:]...)
	buf = append(buf, t.To[:]...)
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], t.Amount)
	buf = append(buf, scratch[:]...)
	binary.BigEndian.PutUint64(scratch[:], t.PrevBalance)
	return append(buf, scratch[:]...)
}

// Block is a sealed batch of sidechain transactions.
type Block struct {
	Number uint64
	Txs    []Tx
	tree   *merkle.Tree
}

// Root returns the block's Merkle root — the only bytes that reach the
// root chain.
func (b *Block) Root() hashx.Hash { return b.tree.Root() }

// Prove returns the inclusion proof for the i-th transaction.
func (b *Block) Prove(i int) (merkle.Proof, error) { return b.tree.Prove(i) }

// CommitmentBytes is the on-chain footprint of one commitment: the root
// plus the block number. This constant is the heart of the compression
// argument: thousands of sidechain transactions cost the root chain 40
// bytes.
const CommitmentBytes = hashx.Size + 8

// Commitment is one root-chain record.
type Commitment struct {
	Number uint64
	Root   hashx.Hash
}

// Errors.
var (
	ErrNoBond       = errors.New("plasma: operator bond must be positive")
	ErrSlashed      = errors.New("plasma: operator already slashed")
	ErrUnknownBlock = errors.New("plasma: unknown committed block")
	ErrProofInvalid = errors.New("plasma: merkle proof does not verify")
	ErrTxHonest     = errors.New("plasma: transaction is not fraudulent")
	ErrOverdraft    = errors.New("plasma: sender balance too low")
	ErrExitTooSmall = errors.New("plasma: exit amount exceeds proven transfer")
)

// RootChain is the main-chain contract: it holds the operator's bond and
// the sequence of commitments, verifies exits, and adjudicates fraud.
type RootChain struct {
	operator    keys.Address
	bond        uint64
	slashed     bool
	commitments map[uint64]Commitment
	latest      uint64
	onChainByte int
	exited      map[hashx.Hash]bool
}

// NewRootChain deploys the contract with the operator's bond at stake.
func NewRootChain(operator keys.Address, bond uint64) (*RootChain, error) {
	if bond == 0 {
		return nil, ErrNoBond
	}
	return &RootChain{
		operator:    operator,
		bond:        bond,
		commitments: make(map[uint64]Commitment),
		exited:      make(map[hashx.Hash]bool),
	}, nil
}

// Commit records a sidechain block root. Only the root and number touch
// the chain.
func (rc *RootChain) Commit(number uint64, root hashx.Hash) error {
	if rc.slashed {
		return ErrSlashed
	}
	rc.commitments[number] = Commitment{Number: number, Root: root}
	if number > rc.latest {
		rc.latest = number
	}
	rc.onChainByte += CommitmentBytes
	return nil
}

// Commitments returns the number of recorded roots.
func (rc *RootChain) Commitments() int { return len(rc.commitments) }

// OnChainBytes returns the cumulative root-chain bytes consumed.
func (rc *RootChain) OnChainBytes() int { return rc.onChainByte }

// Bond returns the operator's remaining bond.
func (rc *RootChain) Bond() uint64 {
	if rc.slashed {
		return 0
	}
	return rc.bond
}

// Slashed reports whether fraud was proven.
func (rc *RootChain) Slashed() bool { return rc.slashed }

// VerifyInclusion checks that tx is part of the committed block.
func (rc *RootChain) VerifyInclusion(number uint64, tx Tx, proof merkle.Proof) error {
	c, ok := rc.commitments[number]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlock, number)
	}
	if !merkle.VerifyData(c.Root, tx.Encode(), proof) {
		return ErrProofInvalid
	}
	return nil
}

// Exit lets a user withdraw funds by proving a transfer to them was
// committed. Each proven transfer can exit once.
func (rc *RootChain) Exit(number uint64, tx Tx, proof merkle.Proof, amount uint64) error {
	if err := rc.VerifyInclusion(number, tx, proof); err != nil {
		return err
	}
	if amount > tx.Amount {
		return ErrExitTooSmall
	}
	leaf := hashx.Sum(tx.Encode())
	if rc.exited[leaf] {
		return errors.New("plasma: transfer already exited")
	}
	rc.exited[leaf] = true
	return nil
}

// SubmitFraudProof convicts the operator with an inclusion proof of a
// transaction that overdraws its declared balance ("stakeholders need to
// display proof of fraud and the Byzantine node gets penalized"). The
// slashed bond is awarded to the prover.
func (rc *RootChain) SubmitFraudProof(number uint64, tx Tx, proof merkle.Proof) (reward uint64, err error) {
	if rc.slashed {
		return 0, ErrSlashed
	}
	if err := rc.VerifyInclusion(number, tx, proof); err != nil {
		return 0, err
	}
	if tx.Amount <= tx.PrevBalance {
		return 0, ErrTxHonest
	}
	rc.slashed = true
	reward = rc.bond
	return reward, nil
}

// Operator runs the sidechain: it collects transactions, tracks balances,
// seals blocks and commits their roots. A malicious operator can be
// constructed with AllowFraud to exercise the fraud-proof path.
type Operator struct {
	kp         *keys.KeyPair
	rc         *RootChain
	balances   map[keys.Address]uint64
	pending    []Tx
	blocks     map[uint64]*Block
	nextNumber uint64
	allowFraud bool
	txsTotal   int
	workers    int
}

// NewOperator creates a sidechain operator bound to a root chain.
func NewOperator(kp *keys.KeyPair, rc *RootChain) *Operator {
	return &Operator{
		kp:         kp,
		rc:         rc,
		balances:   make(map[keys.Address]uint64),
		blocks:     make(map[uint64]*Block),
		nextNumber: 1,
	}
}

// AllowFraud disables the operator's own overdraft check, modeling a
// Byzantine operator.
func (o *Operator) AllowFraud() { o.allowFraud = true }

// SetWorkers bounds the parallel leaf hashing of Seal (<= 0 means one
// per CPU core, 1 is fully serial). Roots are identical either way.
func (o *Operator) SetWorkers(workers int) { o.workers = workers }

// Deposit credits a user on the sidechain (the on-chain deposit leg is
// out of scope; experiments fund accounts directly).
func (o *Operator) Deposit(addr keys.Address, amount uint64) {
	o.balances[addr] += amount
}

// Balance returns a user's sidechain balance.
func (o *Operator) Balance(addr keys.Address) uint64 { return o.balances[addr] }

// Submit queues a transfer into the next block.
func (o *Operator) Submit(from, to keys.Address, amount uint64) error {
	bal := o.balances[from]
	if !o.allowFraud && bal < amount {
		return fmt.Errorf("%w: %d < %d", ErrOverdraft, bal, amount)
	}
	tx := Tx{From: from, To: to, Amount: amount, PrevBalance: bal}
	o.pending = append(o.pending, tx)
	// Apply optimistically (saturating when fraudulent).
	if bal >= amount {
		o.balances[from] = bal - amount
	} else {
		o.balances[from] = 0
	}
	o.balances[to] += amount
	return nil
}

// Seal batches pending transactions into a block and commits its root.
func (o *Operator) Seal() (*Block, error) {
	leaves := make([][]byte, len(o.pending))
	for i, tx := range o.pending {
		leaves[i] = tx.Encode()
	}
	b := &Block{Number: o.nextNumber, Txs: o.pending, tree: merkle.NewParallel(leaves, o.workers)}
	if err := o.rc.Commit(b.Number, b.Root()); err != nil {
		return nil, err
	}
	o.blocks[b.Number] = b
	o.txsTotal += len(o.pending)
	o.pending = nil
	o.nextNumber++
	return b, nil
}

// BlockByNumber returns a sealed block (users need it to build proofs;
// data availability is assumed, as in the paper's non-faulty case).
func (o *Operator) BlockByNumber(n uint64) (*Block, bool) {
	b, ok := o.blocks[n]
	return b, ok
}

// TxsCommitted returns the total sidechain transactions committed.
func (o *Operator) TxsCommitted() int { return o.txsTotal }

// SidechainBytes returns the modeled off-chain data footprint.
func (o *Operator) SidechainBytes() int { return o.txsTotal * txWireSize }

// CompressionRatio returns off-chain transaction bytes per on-chain
// commitment byte — the §VI-A scalability win.
func (o *Operator) CompressionRatio() float64 {
	onChain := o.rc.OnChainBytes()
	if onChain == 0 {
		return 0
	}
	return float64(o.SidechainBytes()) / float64(onChain)
}
