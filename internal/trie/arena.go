package trie

// Node arena: slab allocation for the copy-on-write hot path. Every Put
// down a k-deep path discards-and-rebuilds k nodes; at mega scale that
// is millions of tiny heap objects per simulated block. An arena-backed
// trie batches node and byte-slice allocations into fixed-size slabs,
// turning ~one allocation per node into ~one per slab while leaving the
// structure, hashes and copy-on-write sharing untouched.
//
// Lifetime: a slab stays reachable while any node carved from it is —
// nodes a later Put shadows keep their slab alive until every neighbor
// dies too. The waste is bounded by one slab's worth of dead nodes per
// live slab and is the price of the allocation batching; tries whose
// old versions must be reclaimed eagerly should stay on Empty().
//
// Concurrency: an arena is shared by every trie in a lineage, and
// mutating any of them appends to the shared slabs. Lineages rooted at
// EmptyArena therefore serialize ALL mutation across the whole family,
// not just per value — the simulated ledgers mutate single-threaded, so
// this costs them nothing. Readers are unaffected: existing nodes are
// never moved or rewritten.

const (
	// arenaNodeChunk is the node-slab capacity. 256 branch nodes is
	// ~72KB — big enough to cut allocation counts by two orders of
	// magnitude, small enough that a mostly-dead slab is cheap.
	arenaNodeChunk = 256
	// arenaByteChunk is the byte-slab capacity for path and value
	// copies; entries larger than a quarter of it get their own
	// allocation so one oversized value cannot strand a whole slab.
	arenaByteChunk = 1 << 14
)

// arena hands out trie nodes and durable byte copies from slabs.
type arena struct {
	branches []branchNode
	leaves   []leafNode
	bytes    []byte
}

// emptyValue is the shared non-nil empty value: branch/leaf values use
// nil to mean "absent", so empty stored values must stay non-nil.
var emptyValue = []byte{}

func (a *arena) newBranch() *branchNode {
	if len(a.branches) == cap(a.branches) {
		a.branches = make([]branchNode, 0, arenaNodeChunk)
	}
	a.branches = a.branches[:len(a.branches)+1]
	return &a.branches[len(a.branches)-1]
}

func (a *arena) newLeaf() *leafNode {
	if len(a.leaves) == cap(a.leaves) {
		a.leaves = make([]leafNode, 0, arenaNodeChunk)
	}
	a.leaves = a.leaves[:len(a.leaves)+1]
	return &a.leaves[len(a.leaves)-1]
}

// copyBytes returns a durable copy of b carved from the byte slab. The
// three-index slice keeps later slab appends from aliasing the result.
func (a *arena) copyBytes(b []byte) []byte {
	if len(b) == 0 {
		return emptyValue
	}
	if len(b) > arenaByteChunk/4 {
		out := make([]byte, len(b))
		copy(out, b)
		return out
	}
	if len(a.bytes)+len(b) > cap(a.bytes) {
		a.bytes = make([]byte, 0, arenaByteChunk)
	}
	start := len(a.bytes)
	a.bytes = append(a.bytes, b...)
	return a.bytes[start:len(a.bytes):len(a.bytes)]
}

// mkLeaf allocates a leaf from the arena, or the heap when a is nil.
// path and value must already be durable (arena- or heap-owned).
func mkLeaf(a *arena, path, value []byte) *leafNode {
	if a == nil {
		return &leafNode{path: path, value: value}
	}
	l := a.newLeaf()
	l.path, l.value = path, value
	return l
}

// mkBranch allocates a zeroed branch from the arena, or the heap when a
// is nil. Slab elements are born zeroed and never reused, so no clear
// is needed.
func mkBranch(a *arena) *branchNode {
	if a == nil {
		return &branchNode{}
	}
	return a.newBranch()
}

// EmptyArena returns an empty trie whose whole derived lineage carves
// nodes and stored bytes from one shared slab arena — the allocation-
// batched variant the simulated world states run on. See the package
// notes above on lifetime and on lineage-wide mutation serialization.
func EmptyArena() *Trie { return &Trie{arena: &arena{}} }
