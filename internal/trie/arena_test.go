package trie

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/hashx"
)

// An arena-backed trie must be observationally identical to a plain one
// through an arbitrary interleaving of puts, overwrites and deletes:
// same roots at every step, same items, same counts. The arena batches
// allocations; it must never change structure.
func TestArenaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	plain, backed := Empty(), EmptyArena()
	key := func(i int) []byte { return []byte{0x0A, byte(i), byte(i >> 8), byte(3 * i)} }
	for step := 0; step < 4000; step++ {
		i := rng.Intn(300)
		if rng.Intn(5) == 0 {
			plain = plain.Delete(key(i))
			backed = backed.Delete(key(i))
		} else {
			v := []byte{byte(step), byte(step >> 8), byte(i)}
			plain = plain.Put(key(i), v)
			backed = backed.Put(key(i), v)
		}
		if plain.Root() != backed.Root() {
			t.Fatalf("roots diverged at step %d: %v vs %v", step, plain.Root(), backed.Root())
		}
		if plain.Len() != backed.Len() {
			t.Fatalf("counts diverged at step %d: %d vs %d", step, plain.Len(), backed.Len())
		}
	}
	pi, bi := plain.Items(), backed.Items()
	if len(pi) != len(bi) {
		t.Fatalf("item counts differ: %d vs %d", len(pi), len(bi))
	}
	for i := range pi {
		if !bytes.Equal(pi[i].Key, bi[i].Key) || !bytes.Equal(pi[i].Value, bi[i].Value) {
			t.Fatalf("item %d differs: %v vs %v", i, pi[i], bi[i])
		}
	}
}

// Old versions of an arena-backed lineage stay readable after later
// mutations — copy-on-write must survive the slab allocation.
func TestArenaSnapshotsStable(t *testing.T) {
	cur := EmptyArena()
	var snaps []*Trie
	var roots []hashx.Hash
	for i := 0; i < 200; i++ {
		cur = cur.Put([]byte{byte(i), byte(i * 7)}, []byte{byte(i)})
		snaps = append(snaps, cur)
		roots = append(roots, cur.Root())
	}
	for i, s := range snaps {
		if s.Root() != roots[i] {
			t.Fatalf("snapshot %d root changed after later puts", i)
		}
		if v, ok := s.Get([]byte{byte(i), byte(i * 7)}); !ok || v[0] != byte(i) {
			t.Fatalf("snapshot %d lost its newest key", i)
		}
		if s.Len() != i+1 {
			t.Fatalf("snapshot %d count = %d, want %d", i, s.Len(), i+1)
		}
	}
}

// Mutating the caller's value slice after Put must not leak into an
// arena-backed trie (the Put-copies contract), and an empty value must
// stay distinguishable from an absent key.
func TestArenaValueIsolation(t *testing.T) {
	tr := EmptyArena()
	v := []byte{1, 2, 3}
	tr = tr.Put([]byte("k"), v)
	v[0] = 99
	got, ok := tr.Get([]byte("k"))
	if !ok || got[0] != 1 {
		t.Fatalf("caller mutation leaked into the trie: %v", got)
	}
	tr = tr.Put([]byte("empty"), nil)
	if got, ok := tr.Get([]byte("empty")); !ok || got == nil || len(got) != 0 {
		t.Fatalf("empty value not stored as present-and-empty: %v ok=%v", got, ok)
	}
	if _, ok := tr.Get([]byte("absent")); ok {
		t.Fatal("absent key reads as present")
	}
}

// Keys longer than the stack nibble buffer fall back to heap expansion
// and must still round-trip on both backends.
func TestArenaLongKeys(t *testing.T) {
	long := bytes.Repeat([]byte{0xAB, 0xCD}, 40) // 80 bytes > nibbleBuf/2
	for _, tr := range []*Trie{Empty(), EmptyArena()} {
		tr = tr.Put(long, []byte("v"))
		if got, ok := tr.Get(long); !ok || string(got) != "v" {
			t.Fatalf("long key lost: %q ok=%v", got, ok)
		}
		tr = tr.Delete(long)
		if _, ok := tr.Get(long); ok {
			t.Fatal("long key survived delete")
		}
	}
}
