package trie

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hashx"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%05d", i)) }

func TestEmpty(t *testing.T) {
	tr := Empty()
	if tr.Root() != hashx.Zero {
		t.Fatal("empty trie root should be zero")
	}
	if tr.Len() != 0 {
		t.Fatal("empty trie Len should be 0")
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("Get on empty trie should miss")
	}
}

func TestPutGet(t *testing.T) {
	tr := Empty()
	for i := 0; i < 100; i++ {
		tr = tr.Put(key(i), val(i))
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	for i := 0; i < 100; i++ {
		got, ok := tr.Get(key(i))
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get(key %d) = %q, %v", i, got, ok)
		}
	}
	if _, ok := tr.Get([]byte("absent")); ok {
		t.Fatal("absent key should miss")
	}
}

func TestOverwriteDoesNotGrow(t *testing.T) {
	tr := Empty().Put([]byte("k"), []byte("v1"))
	tr2 := tr.Put([]byte("k"), []byte("v2"))
	if tr2.Len() != 1 {
		t.Fatalf("Len after overwrite = %d, want 1", tr2.Len())
	}
	got, _ := tr2.Get([]byte("k"))
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("overwrite lost: %q", got)
	}
	// original snapshot unaffected
	got, _ = tr.Get([]byte("k"))
	if !bytes.Equal(got, []byte("v1")) {
		t.Fatal("persistence violated: old snapshot changed")
	}
}

func TestPrefixKeys(t *testing.T) {
	// One key is a strict prefix of another: the value must live on a
	// branch node.
	tr := Empty().
		Put([]byte("ab"), []byte("short")).
		Put([]byte("abcd"), []byte("long"))
	if got, ok := tr.Get([]byte("ab")); !ok || string(got) != "short" {
		t.Fatalf("prefix key lost: %q %v", got, ok)
	}
	if got, ok := tr.Get([]byte("abcd")); !ok || string(got) != "long" {
		t.Fatalf("long key lost: %q %v", got, ok)
	}
	if _, ok := tr.Get([]byte("abc")); ok {
		t.Fatal("middle key should miss")
	}
	// Delete the prefix; the long key must survive.
	tr = tr.Delete([]byte("ab"))
	if _, ok := tr.Get([]byte("ab")); ok {
		t.Fatal("deleted prefix key still present")
	}
	if _, ok := tr.Get([]byte("abcd")); !ok {
		t.Fatal("sibling key lost by delete")
	}
}

func TestDelete(t *testing.T) {
	tr := Empty()
	for i := 0; i < 50; i++ {
		tr = tr.Put(key(i), val(i))
	}
	for i := 0; i < 50; i += 2 {
		tr = tr.Delete(key(i))
	}
	if tr.Len() != 25 {
		t.Fatalf("Len after deletes = %d, want 25", tr.Len())
	}
	for i := 0; i < 50; i++ {
		_, ok := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v want=%v", i, ok, want)
		}
	}
}

func TestDeleteAbsentReturnsSame(t *testing.T) {
	tr := Empty().Put([]byte("a"), []byte("1"))
	tr2 := tr.Delete([]byte("zz"))
	if tr2 != tr {
		t.Fatal("deleting an absent key should return the same trie")
	}
}

func TestDeleteToEmpty(t *testing.T) {
	tr := Empty().Put([]byte("only"), []byte("v")).Delete([]byte("only"))
	if tr.Len() != 0 || tr.Root() != hashx.Zero {
		t.Fatal("deleting the only key should restore the empty root")
	}
}

// The root must be a pure function of contents, independent of insertion
// order and of any delete history.
func TestRootCanonicalOrderIndependent(t *testing.T) {
	keys := [][]byte{
		[]byte("alpha"), []byte("albatross"), []byte("beta"),
		[]byte("al"), []byte("alphabet"), []byte("b"),
	}
	a := Empty()
	for _, k := range keys {
		a = a.Put(k, append([]byte("v:"), k...))
	}
	b := Empty()
	for i := len(keys) - 1; i >= 0; i-- {
		b = b.Put(keys[i], append([]byte("v:"), keys[i]...))
	}
	if a.Root() != b.Root() {
		t.Fatal("root depends on insertion order")
	}
}

func TestRootCanonicalAfterDeletes(t *testing.T) {
	// build {a,b,c}, delete b  ==  build {a,c}
	withDelete := Empty().
		Put([]byte("aa1"), []byte("x")).
		Put([]byte("aa2"), []byte("y")).
		Put([]byte("ab3"), []byte("z")).
		Delete([]byte("aa2"))
	fresh := Empty().
		Put([]byte("aa1"), []byte("x")).
		Put([]byte("ab3"), []byte("z"))
	if withDelete.Root() != fresh.Root() {
		t.Fatal("delete left a non-canonical shape")
	}
}

func TestQuickCanonicalRoot(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 5
		type kv struct{ k, v []byte }
		kvs := make([]kv, 0, n)
		seen := map[string]bool{}
		for len(kvs) < n {
			k := make([]byte, rng.Intn(6)+1)
			rng.Read(k)
			if seen[string(k)] {
				continue
			}
			seen[string(k)] = true
			v := make([]byte, rng.Intn(8)+1)
			rng.Read(v)
			kvs = append(kvs, kv{k, v})
		}
		// Insert in two different random orders, with some extra keys
		// added and deleted along the way in trie a.
		a := Empty()
		perm := rng.Perm(n)
		for _, i := range perm {
			a = a.Put(kvs[i].k, kvs[i].v)
			if rng.Intn(3) == 0 {
				extra := append([]byte{0xFE}, byte(rng.Intn(255)))
				a = a.Put(extra, []byte("tmp"))
				a = a.Delete(extra)
			}
		}
		b := Empty()
		for _, i := range rng.Perm(n) {
			b = b.Put(kvs[i].k, kvs[i].v)
		}
		return a.Root() == b.Root() && a.Len() == b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRootChangesOnMutation(t *testing.T) {
	tr := Empty().Put([]byte("k1"), []byte("v1")).Put([]byte("k2"), []byte("v2"))
	r := tr.Root()
	if tr.Put([]byte("k1"), []byte("other")).Root() == r {
		t.Fatal("value change did not change root")
	}
	if tr.Put([]byte("k3"), []byte("v3")).Root() == r {
		t.Fatal("insert did not change root")
	}
	if tr.Delete([]byte("k2")).Root() == r {
		t.Fatal("delete did not change root")
	}
}

func TestItemsAndFastSyncRoundTrip(t *testing.T) {
	tr := Empty()
	for i := 0; i < 200; i++ {
		tr = tr.Put(key(i), val(i))
	}
	items := tr.Items()
	if len(items) != 200 {
		t.Fatalf("Items returned %d entries, want 200", len(items))
	}
	// lexicographic order
	for i := 1; i < len(items); i++ {
		if bytes.Compare(items[i-1].Key, items[i].Key) >= 0 {
			t.Fatal("Items not in lexicographic key order")
		}
	}
	rebuilt := FromItems(items)
	if rebuilt.Root() != tr.Root() {
		t.Fatal("fast-sync rebuild root mismatch")
	}
}

func TestQuickItemsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := Empty()
		for i := 0; i < rng.Intn(50)+1; i++ {
			k := make([]byte, rng.Intn(5)+1)
			rng.Read(k)
			v := make([]byte, rng.Intn(5)+1)
			rng.Read(v)
			tr = tr.Put(k, v)
		}
		return FromItems(tr.Items()).Root() == tr.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasure(t *testing.T) {
	tr := Empty()
	s0 := tr.Measure()
	if s0.Nodes != 0 || s0.Bytes != 0 {
		t.Fatal("empty trie should measure zero")
	}
	tr = tr.Put([]byte("a"), []byte("1"))
	s1 := tr.Measure()
	if s1.Nodes == 0 || s1.Bytes == 0 {
		t.Fatal("non-empty trie should measure non-zero")
	}
	big := tr
	for i := 0; i < 100; i++ {
		big = big.Put(key(i), val(i))
	}
	if got := big.Measure(); got.Nodes <= s1.Nodes {
		t.Fatal("bigger trie should have more nodes")
	}
}

func TestDiffStatsSharing(t *testing.T) {
	base := Empty()
	for i := 0; i < 100; i++ {
		base = base.Put(key(i), val(i))
	}
	// One-key update: delta must be much smaller than the whole trie.
	next := base.Put(key(7), []byte("changed"))
	delta := DiffStats(base, next)
	full := next.Measure()
	if delta.Nodes == 0 {
		t.Fatal("delta should be non-empty")
	}
	if delta.Nodes >= full.Nodes/2 {
		t.Fatalf("delta (%d nodes) should be far smaller than full (%d nodes)",
			delta.Nodes, full.Nodes)
	}
	// No change: zero delta.
	if d := DiffStats(base, base); d.Nodes != 0 {
		t.Fatalf("self-diff should be zero, got %d nodes", d.Nodes)
	}
}

func TestMeasureManySharesStructure(t *testing.T) {
	base := Empty()
	for i := 0; i < 50; i++ {
		base = base.Put(key(i), val(i))
	}
	next := base.Put(key(0), []byte("new"))
	both := MeasureMany([]*Trie{base, next})
	sum := base.Measure().Bytes + next.Measure().Bytes
	if both.Bytes >= sum {
		t.Fatalf("archive of two snapshots (%d B) should cost less than sum (%d B)",
			both.Bytes, sum)
	}
	if both.Bytes < base.Measure().Bytes {
		t.Fatal("archive cannot cost less than one snapshot")
	}
}

func TestValueIsolation(t *testing.T) {
	v := []byte("mutable")
	tr := Empty().Put([]byte("k"), v)
	v[0] = 'X'
	got, _ := tr.Get([]byte("k"))
	if string(got) != "mutable" {
		t.Fatal("Put must copy the value slice")
	}
}

func BenchmarkPut(b *testing.B) {
	tr := Empty()
	for i := 0; i < 1000; i++ {
		tr = tr.Put(key(i), val(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i%1000), []byte("new-value"))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := Empty()
	for i := 0; i < 1000; i++ {
		tr = tr.Put(key(i), val(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Get(key(i % 1000)); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkRoot1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr := Empty()
		for j := 0; j < 1000; j++ {
			tr = tr.Put(key(j), val(j))
		}
		b.StartTimer()
		_ = tr.Root()
	}
}
