// Package trie implements a persistent (copy-on-write) Merkle Patricia-style
// trie. It is the substrate for the Ethereum-like world state the paper
// discusses in §V-A: every block commits to a state root, historical roots
// share unchanged subtrees ("deltas in the global state"), pruning discards
// the node sets only reachable from old roots, and fast sync enumerates the
// full key/value set at a pivot root to rebuild state without replaying
// history.
//
// The trie is hexary with two node kinds, branch and leaf; shared key
// prefixes form chains of single-child branches. This keeps the structure
// canonical — the root hash depends only on the key/value content, never on
// the insertion order — which the tests verify by property checking.
//
// A Trie value is immutable: Put and Delete return a new Trie that shares
// all untouched nodes with its parent. Tries are not safe for concurrent
// mutation but any number of goroutines may read distinct Trie values.
package trie

import (
	"bytes"
	"encoding/binary"

	"repro/internal/hashx"
)

// node is either a *leafNode or a *branchNode.
type node interface {
	// hash returns the Merkle digest of the subtree, memoizing it.
	hash() hashx.Hash
	// encodedSize returns the modeled on-disk size of this single node.
	encodedSize() int
}

// leafNode stores the remaining key path (in nibbles) and the value.
type leafNode struct {
	path  []byte // nibbles remaining below the parent
	value []byte
	memo  hashx.Hash
	done  bool
}

// branchNode fans out on the next nibble; value is set when a key
// terminates exactly at this node (a key that is a prefix of another).
type branchNode struct {
	children [16]node
	value    []byte // nil means no value terminates here
	memo     hashx.Hash
	done     bool
}

func (l *leafNode) hash() hashx.Hash {
	if l.done {
		return l.memo
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(l.path)))
	l.memo = hashx.Concat([]byte{0x02}, lenBuf[:], l.path, l.value)
	l.done = true
	return l.memo
}

func (l *leafNode) encodedSize() int { return 1 + 4 + len(l.path) + len(l.value) }

func (b *branchNode) hash() hashx.Hash {
	if b.done {
		return b.memo
	}
	buf := make([]byte, 0, 1+16*hashx.Size+1+len(b.value))
	buf = append(buf, 0x01)
	for _, c := range b.children {
		if c == nil {
			buf = append(buf, hashx.Zero[:]...)
		} else {
			h := c.hash()
			buf = append(buf, h[:]...)
		}
	}
	if b.value != nil {
		buf = append(buf, 0x01)
		buf = append(buf, b.value...)
	} else {
		buf = append(buf, 0x00)
	}
	b.memo = hashx.Sum(buf)
	b.done = true
	return b.memo
}

func (b *branchNode) encodedSize() int {
	// 16 child references plus the optional value.
	return 1 + 16*hashx.Size + 1 + len(b.value)
}

// Trie is an immutable key/value map with a Merkle root. The zero value is
// the empty trie. Tries rooted at EmptyArena carry a shared slab arena
// (see arena.go) that batches the copy-on-write node churn.
type Trie struct {
	root  node
	count int
	arena *arena
}

// Empty returns the empty trie.
func Empty() *Trie { return &Trie{} }

// Len returns the number of keys stored.
func (t *Trie) Len() int { return t.count }

// Root returns the Merkle root of the trie, or hashx.Zero when empty.
func (t *Trie) Root() hashx.Hash {
	if t.root == nil {
		return hashx.Zero
	}
	return t.root.hash()
}

// nibbles expands a key into 4-bit digits, high nibble first.
func nibbles(key []byte) []byte {
	return appendNibbles(make([]byte, 0, 2*len(key)), key)
}

// appendNibbles expands key into dst, letting hot paths expand typical
// (short) keys into a stack buffer instead of a fresh heap slice.
func appendNibbles(dst, key []byte) []byte {
	for _, b := range key {
		dst = append(dst, b>>4, b&0x0F)
	}
	return dst
}

// nibbleBuf is the stack scratch for key expansion: keys up to 32 bytes
// (every ledger key — accounts, storage slots — fits) expand without
// allocating; longer keys fall back to the heap.
type nibbleBuf [64]byte

// expand converts key to nibbles using buf when it fits.
func (buf *nibbleBuf) expand(key []byte) []byte {
	if 2*len(key) <= len(buf) {
		return appendNibbles(buf[:0], key)
	}
	return nibbles(key)
}

// packNibbles reassembles a full nibble path into the original key bytes.
// The path length is always even for byte keys.
func packNibbles(path []byte) []byte {
	out := make([]byte, len(path)/2)
	for i := range out {
		out[i] = path[2*i]<<4 | path[2*i+1]
	}
	return out
}

// Get returns the value stored under key, or ok=false.
func (t *Trie) Get(key []byte) (value []byte, ok bool) {
	n := t.root
	var buf nibbleBuf
	path := buf.expand(key)
	for {
		switch cur := n.(type) {
		case nil:
			return nil, false
		case *leafNode:
			if bytes.Equal(cur.path, path) {
				return cur.value, true
			}
			return nil, false
		case *branchNode:
			if len(path) == 0 {
				if cur.value == nil {
					return nil, false
				}
				return cur.value, true
			}
			n = cur.children[path[0]]
			path = path[1:]
		default:
			return nil, false
		}
	}
}

// Put returns a new trie with key bound to value. The value slice is
// copied so later caller mutation cannot corrupt shared structure.
func (t *Trie) Put(key, value []byte) *Trie {
	var v, path []byte
	if t.arena != nil {
		// Arena mode: expand the key on the stack, then make the path
		// and value durable in one slab each — leaves retain subslices
		// of both, so they must outlive this call.
		var buf nibbleBuf
		path = t.arena.copyBytes(buf.expand(key))
		v = t.arena.copyBytes(value)
	} else {
		path = nibbles(key)
		v = make([]byte, len(value))
		copy(v, value)
		if v == nil {
			v = []byte{}
		}
	}
	root, added := put(t.arena, t.root, path, v)
	count := t.count
	if added {
		count++
	}
	return &Trie{root: root, count: count, arena: t.arena}
}

// put inserts value at path below n, returning the replacement node and
// whether a brand-new key was created (false when overwriting). path and
// value must be durable; nodes come from the arena when a is non-nil.
func put(a *arena, n node, path, value []byte) (node, bool) {
	switch cur := n.(type) {
	case nil:
		return mkLeaf(a, path, value), true
	case *leafNode:
		if bytes.Equal(cur.path, path) {
			return mkLeaf(a, path, value), false
		}
		// Split: find the common prefix, fan out below it.
		cp := commonPrefix(cur.path, path)
		br := mkBranch(a)
		if len(cur.path) == cp {
			br.value = cur.value
		} else {
			br.children[cur.path[cp]] = mkLeaf(a, cur.path[cp+1:], cur.value)
		}
		if len(path) == cp {
			br.value = value
		} else {
			br.children[path[cp]] = mkLeaf(a, path[cp+1:], value)
		}
		// Wrap the shared prefix in a chain of single-child branches.
		var out node = br
		for i := cp - 1; i >= 0; i-- {
			wrap := mkBranch(a)
			wrap.children[path[i]] = out
			out = wrap
		}
		return out, true
	case *branchNode:
		nb := mkBranch(a)
		nb.children, nb.value = cur.children, cur.value
		if len(path) == 0 {
			added := cur.value == nil
			nb.value = value
			return nb, added
		}
		child, added := put(a, cur.children[path[0]], path[1:], value)
		nb.children[path[0]] = child
		return nb, added
	default:
		panic("trie: unknown node type")
	}
}

func commonPrefix(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Delete returns a new trie without key. If the key was absent the
// original trie is returned unchanged. Deletions are rare enough that
// replacement nodes stay on the plain heap even in arena mode.
func (t *Trie) Delete(key []byte) *Trie {
	var buf nibbleBuf
	root, deleted := del(t.root, buf.expand(key))
	if !deleted {
		return t
	}
	return &Trie{root: root, count: t.count - 1, arena: t.arena}
}

func del(n node, path []byte) (node, bool) {
	switch cur := n.(type) {
	case nil:
		return nil, false
	case *leafNode:
		if bytes.Equal(cur.path, path) {
			return nil, true
		}
		return cur, false
	case *branchNode:
		if len(path) == 0 {
			if cur.value == nil {
				return cur, false
			}
			nb := &branchNode{children: cur.children}
			return contract(nb), true
		}
		child, deleted := del(cur.children[path[0]], path[1:])
		if !deleted {
			return cur, false
		}
		nb := &branchNode{children: cur.children, value: cur.value}
		nb.children[path[0]] = child
		return contract(nb), true
	default:
		panic("trie: unknown node type")
	}
}

// contract restores the canonical shape after a deletion: a branch without
// a value and with a single leaf child merges into that leaf. Single-child
// branches over a *branch* child are kept — they are exactly how fresh
// builds encode shared prefixes, so the shape stays insertion-order free.
func contract(b *branchNode) node {
	var (
		only     node
		onlyIdx  int
		childcnt int
	)
	for i, c := range b.children {
		if c != nil {
			childcnt++
			only = c
			onlyIdx = i
		}
	}
	switch {
	case childcnt == 0 && b.value == nil:
		return nil
	case childcnt == 0:
		return &leafNode{path: nil, value: b.value}
	case childcnt == 1 && b.value == nil:
		if lf, ok := only.(*leafNode); ok {
			merged := make([]byte, 0, 1+len(lf.path))
			merged = append(merged, byte(onlyIdx))
			merged = append(merged, lf.path...)
			return &leafNode{path: merged, value: lf.value}
		}
		return b
	default:
		return b
	}
}

// KV is one key/value pair of a trie enumeration.
type KV struct {
	Key   []byte
	Value []byte
}

// Items enumerates all key/value pairs in lexicographic key order. This is
// the "download an entire recent state" step of fast sync (§V-A).
func (t *Trie) Items() []KV {
	out := make([]KV, 0, t.count)
	var walk func(n node, prefix []byte)
	walk = func(n node, prefix []byte) {
		switch cur := n.(type) {
		case nil:
		case *leafNode:
			full := append(append([]byte{}, prefix...), cur.path...)
			out = append(out, KV{Key: packNibbles(full), Value: cur.value})
		case *branchNode:
			if cur.value != nil {
				out = append(out, KV{Key: packNibbles(prefix), Value: cur.value})
			}
			for i, c := range cur.children {
				if c != nil {
					walk(c, append(append([]byte{}, prefix...), byte(i)))
				}
			}
		}
	}
	walk(t.root, nil)
	return out
}

// FromItems rebuilds a trie from an enumeration, the receiving half of
// fast sync. The resulting root must (and, by canonicality, does) match the
// root the items were enumerated from.
func FromItems(items []KV) *Trie {
	t := Empty()
	for _, kv := range items {
		t = t.Put(kv.Key, kv.Value)
	}
	return t
}

// Stats describes the storage footprint of a trie snapshot.
type Stats struct {
	// Nodes is the number of distinct trie nodes reachable from the root.
	Nodes int
	// Bytes is the modeled encoded size of those nodes.
	Bytes int
}

// Measure walks the trie and returns its storage footprint. Structure
// shared with other tries is still counted: Measure answers "what does
// storing this snapshot alone cost".
func (t *Trie) Measure() Stats {
	var s Stats
	seen := make(map[hashx.Hash]struct{})
	var walk func(n node)
	walk = func(n node) {
		if n == nil {
			return
		}
		h := n.hash()
		if _, dup := seen[h]; dup {
			return
		}
		seen[h] = struct{}{}
		s.Nodes++
		s.Bytes += n.encodedSize()
		if br, ok := n.(*branchNode); ok {
			for _, c := range br.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return s
}

// hashSet collects the hashes of every node reachable from t.
func (t *Trie) hashSet() map[hashx.Hash]struct{} {
	set := make(map[hashx.Hash]struct{})
	var walk func(n node)
	walk = func(n node) {
		if n == nil {
			return
		}
		h := n.hash()
		if _, dup := set[h]; dup {
			return
		}
		set[h] = struct{}{}
		if br, ok := n.(*branchNode); ok {
			for _, c := range br.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return set
}

// DiffStats returns the footprint of the nodes reachable from new but not
// from old: the state delta a block writes (§V-A, "a delta in a global
// state is the difference between two states of the ledger"). Descent is
// pruned at shared subtrees, so the cost is proportional to the delta.
func DiffStats(old, new *Trie) Stats {
	oldSet := old.hashSet()
	var s Stats
	seen := make(map[hashx.Hash]struct{})
	var walk func(n node)
	walk = func(n node) {
		if n == nil {
			return
		}
		h := n.hash()
		if _, shared := oldSet[h]; shared {
			return // identical subtree, nothing new below it
		}
		if _, dup := seen[h]; dup {
			return
		}
		seen[h] = struct{}{}
		s.Nodes++
		s.Bytes += n.encodedSize()
		if br, ok := n.(*branchNode); ok {
			for _, c := range br.children {
				walk(c)
			}
		}
	}
	walk(new.root)
	return s
}

// MeasureMany returns the combined footprint of several snapshots with
// shared structure counted once — the cost of an archive node retaining
// every historical root.
func MeasureMany(tries []*Trie) Stats {
	var s Stats
	seen := make(map[hashx.Hash]struct{})
	var walk func(n node)
	walk = func(n node) {
		if n == nil {
			return
		}
		h := n.hash()
		if _, dup := seen[h]; dup {
			return
		}
		seen[h] = struct{}{}
		s.Nodes++
		s.Bytes += n.encodedSize()
		if br, ok := n.(*branchNode); ok {
			for _, c := range br.children {
				walk(c)
			}
		}
	}
	for _, t := range tries {
		walk(t.root)
	}
	return s
}
