package prune

import (
	"errors"
	"math"
	"testing"
	"time"
)

// yearsBetween approximates the operating age the paper's §V snapshots
// imply.
const (
	bitcoinAge  = time.Duration(9*365*24) * time.Hour    // 2009-01 → 2018-01
	ethereumAge = time.Duration(2.45*365*24) * time.Hour // 2015-07 → 2018-01
	nanoAge     = time.Duration(2.6*365*24) * time.Hour  // ~2015-08 → 2018-02
)

// §V's headline numbers: the calibrated models must land within 15% of
// the sizes the paper reports.
func TestCalibrationMatchesPaperSizes(t *testing.T) {
	cases := []struct {
		model  GrowthModel
		age    time.Duration
		wantGB float64
		// Ethereum's 39.62 GB is the *fast-synced* chaindata (the cited
		// chart is "chain data size fast"), i.e. without state deltas.
		excludeDeltas bool
	}{
		{Bitcoin2018(), bitcoinAge, 145.95, false},
		{Ethereum2018(), ethereumAge, 39.62, true},
		{Nano2018(), nanoAge, 3.42, false},
	}
	for _, tc := range cases {
		t.Run(tc.model.Name, func(t *testing.T) {
			b := tc.model.After(tc.age)
			total := b.Total()
			if tc.excludeDeltas {
				total -= b.StateDeltas
			}
			gotGB := float64(total) / 1e9
			if math.Abs(gotGB-tc.wantGB)/tc.wantGB > 0.15 {
				t.Fatalf("%s projects %.2f GB, paper reports %.2f GB", tc.model.Name, gotGB, tc.wantGB)
			}
		})
	}
}

// §V: Nano's ledger holds ~6,700,078 blocks at its snapshot date.
func TestNanoBlockCountShape(t *testing.T) {
	b := Nano2018().After(nanoAge)
	if b.Blocks < 6_000_000 || b.Blocks > 7_500_000 {
		t.Fatalf("nano model projects %d blocks, paper reports ≈6.7M", b.Blocks)
	}
}

// The paper's qualitative ordering: Bitcoin ≫ Ethereum ≫ Nano.
func TestSizeOrdering(t *testing.T) {
	btc := Bitcoin2018().After(bitcoinAge).Total()
	eth := Ethereum2018().After(ethereumAge)
	ethFast := eth.Total() - eth.StateDeltas
	nano := Nano2018().After(nanoAge).Total()
	if !(btc > ethFast && ethFast > nano) {
		t.Fatalf("ordering violated: %d / %d / %d", btc, ethFast, nano)
	}
}

func TestAfterDegenerate(t *testing.T) {
	m := Bitcoin2018()
	if m.After(0).Total() != 0 {
		t.Fatal("zero age should be empty")
	}
	m.BlockInterval = 0
	if m.After(time.Hour).Total() != 0 {
		t.Fatal("zero interval should be empty")
	}
}

func TestGrowthIsLinear(t *testing.T) {
	m := Ethereum2018()
	oneYear := m.After(365 * 24 * time.Hour).Total()
	twoYears := m.After(2 * 365 * 24 * time.Hour).Total()
	ratio := float64(twoYears) / float64(oneYear)
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("growth not linear: ratio %.3f", ratio)
	}
}

func TestTxRate(t *testing.T) {
	// Bitcoin model: 1900 txs / 600 s ≈ 3.2 TPS — inside the paper's
	// "between 3 and 7 transactions per second".
	r := Bitcoin2018().TxRate()
	if r < 3 || r > 7 {
		t.Fatalf("bitcoin model TPS = %.2f, want within [3,7]", r)
	}
	// Ethereum model: 38/15 ≈ 2.5... the paper says 7-15 for 2018 peak
	// conditions; our calibration targets the average that yields the
	// reported chain size. It must at least exceed Bitcoin's.
	if Ethereum2018().TxRate() <= 0 {
		t.Fatal("ethereum rate must be positive")
	}
	var zero GrowthModel
	if zero.TxRate() != 0 {
		t.Fatal("zero model should have zero rate")
	}
}

func TestBitcoinPrune(t *testing.T) {
	full := Bitcoin2018().After(bitcoinAge)
	const utxoBytes = 3_000_000_000 // ~3 GB UTXO set in 2018
	rep, err := BitcoinPrune(full, 550, utxoBytes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrunedBytes >= rep.FullBytes {
		t.Fatal("pruning must shrink the ledger")
	}
	// Headers and UTXO set are retained; savings should still be >90%.
	if rep.Savings() < 0.9 {
		t.Fatalf("savings = %.2f, want > 0.9", rep.Savings())
	}
	// Keeping more blocks than exist degenerates to (almost) full size.
	all, err := BitcoinPrune(full, full.Blocks+10, utxoBytes)
	if err != nil {
		t.Fatal(err)
	}
	if all.Savings() > 0.01 {
		t.Fatalf("keeping everything should save ≈0, got %.3f", all.Savings())
	}
	if _, err := BitcoinPrune(Breakdown{}, 10, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
}

func TestEthereumFastSync(t *testing.T) {
	full := Ethereum2018().After(ethereumAge)
	const stateBytes = 1_500_000_000 // recent state ~1.5 GB
	rep, err := EthereumFastSync(full, 1024, stateBytes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrunedBytes >= rep.FullBytes {
		t.Fatal("fast sync must shrink an archive node")
	}
	// Blocks and receipts stay; only state deltas go. Savings equals
	// (deltas - recent deltas) / (total + state).
	wantDrop := full.StateDeltas - int64(float64(full.StateDeltas)/float64(full.Blocks)*1024)
	gotDrop := rep.FullBytes - rep.PrunedBytes
	if gotDrop != wantDrop {
		t.Fatalf("dropped %d, want %d", gotDrop, wantDrop)
	}
	if _, err := EthereumFastSync(Breakdown{}, 1024, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
	if _, err := EthereumFastSync(full, -1, 0); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
}

func TestNanoPrune(t *testing.T) {
	full := Nano2018().After(nanoAge)
	// ~300k accounts in early 2018.
	rep, err := NanoPrune(full, 300_000, 510)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Savings() < 0.9 {
		t.Fatalf("head-only pruning savings = %.2f, want > 0.9", rep.Savings())
	}
	// More accounts than blocks cannot exceed the full size.
	rep2, err := NanoPrune(full, full.Blocks*2, 510)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.PrunedBytes > rep2.FullBytes {
		t.Fatal("pruned size exceeded full size")
	}
	if _, err := NanoPrune(full, -1, 510); !errors.Is(err, ErrBadParams) {
		t.Fatalf("err = %v", err)
	}
}

func TestNanoNodeClasses(t *testing.T) {
	full := Nano2018().After(nanoAge)
	hist := NanoNodeBytes(Historical, full, 300_000, 510)
	cur := NanoNodeBytes(Current, full, 300_000, 510)
	light := NanoNodeBytes(Light, full, 300_000, 510)
	if !(hist > cur && cur > light && light == 0) {
		t.Fatalf("node class ordering violated: %d/%d/%d", hist, cur, light)
	}
	if Historical.String() != "historical" || Current.String() != "current" || Light.String() != "light" {
		t.Fatal("node class names wrong")
	}
}

func TestSavingsEdge(t *testing.T) {
	if (Report{}).Savings() != 0 {
		t.Fatal("empty report savings should be 0")
	}
}

func TestScaleMeasured(t *testing.T) {
	got := ScaleMeasured(1000, time.Minute, time.Hour)
	if got != 60_000 {
		t.Fatalf("ScaleMeasured = %d, want 60000", got)
	}
	if ScaleMeasured(1000, 0, time.Hour) != 0 {
		t.Fatal("zero measured duration should yield 0")
	}
}
