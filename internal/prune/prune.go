// Package prune implements the ledger-size models and pruning mechanisms
// of paper §V: "As every ledger contains all information since its
// genesis, its size is constantly increasing." It provides growth models
// calibrated to the sizes the paper reports (Bitcoin 145.95 GB, Ethereum
// 39.62 GB, Nano 3.42 GB at 6,700,078 blocks), plus the three pruning
// strategies compared in §V-A/B: Bitcoin block-file pruning, Ethereum
// state-delta discarding with fast sync, and Nano head-only pruning.
package prune

import (
	"errors"
	"time"
)

// Breakdown itemizes ledger bytes by record class.
type Breakdown struct {
	Headers     int64
	Txs         int64
	Receipts    int64
	StateDeltas int64
	Blocks      int64 // block count, not bytes
}

// Total sums all byte classes.
func (b Breakdown) Total() int64 { return b.Headers + b.Txs + b.Receipts + b.StateDeltas }

// GrowthModel projects how a ledger grows over time. It is calibrated
// from per-record wire costs so small simulated runs (which measure real
// per-record sizes) extrapolate to mainnet scale.
type GrowthModel struct {
	Name string
	// BlockInterval is the mean time between blocks.
	BlockInterval time.Duration
	// HeaderBytes is the per-block header/overhead cost.
	HeaderBytes int
	// TxPerBlock is the average transaction count per block.
	TxPerBlock int
	// TxBytes is the average transaction size.
	TxBytes int
	// ReceiptBytes per transaction (Ethereum; zero elsewhere).
	ReceiptBytes int
	// StateDeltaBytesPerTx is the state-trie delta a transaction writes
	// (Ethereum archive data; zero elsewhere).
	StateDeltaBytesPerTx int
}

// After projects the ledger composition after a duration of operation.
func (m GrowthModel) After(age time.Duration) Breakdown {
	if m.BlockInterval <= 0 || age <= 0 {
		return Breakdown{}
	}
	blocks := int64(age / m.BlockInterval)
	txs := blocks * int64(m.TxPerBlock)
	return Breakdown{
		Headers:     blocks * int64(m.HeaderBytes),
		Txs:         txs * int64(m.TxBytes),
		Receipts:    txs * int64(m.ReceiptBytes),
		StateDeltas: txs * int64(m.StateDeltaBytesPerTx),
		Blocks:      blocks,
	}
}

// TxRate returns the model's average transaction throughput.
func (m GrowthModel) TxRate() float64 {
	if m.BlockInterval <= 0 {
		return 0
	}
	return float64(m.TxPerBlock) / m.BlockInterval.Seconds()
}

// Calibrated models. The per-record costs are chosen so that the model
// reproduces the paper's reported sizes at the paper's observation dates
// (§V: Bitcoin 145.95 GB on 02.01.2018 after ~9 years; Ethereum 39.62 GB
// after ~2.5 years; Nano 3.42 GB at 6,700,078 blocks on 25.02.2018).

// Bitcoin2018 models Bitcoin at the start of 2018: 10-minute blocks
// averaging ~1900 transactions of ~160 B (SegWit-era averages).
func Bitcoin2018() GrowthModel {
	return GrowthModel{
		Name:          "bitcoin",
		BlockInterval: 10 * time.Minute,
		HeaderBytes:   300, // header + coinbase + per-block overhead
		TxPerBlock:    1900,
		TxBytes:       162,
	}
}

// Ethereum2018 models Ethereum at the start of 2018: 15-second blocks of
// ~38 transactions, with receipts; state deltas are what archive nodes
// additionally keep and fast sync discards.
func Ethereum2018() GrowthModel {
	return GrowthModel{
		Name:                 "ethereum",
		BlockInterval:        15 * time.Second,
		HeaderBytes:          540,
		TxPerBlock:           38,
		TxBytes:              130,
		ReceiptBytes:         60,
		StateDeltaBytesPerTx: 350,
	}
}

// Nano2018 models Nano in February 2018: each transaction is one ~510 B
// ledger record (state block plus database overhead); the "block
// interval" is the mean inter-transaction time implied by 6.7 M blocks
// over ~2.5 years of operation.
func Nano2018() GrowthModel {
	return GrowthModel{
		Name:          "nano",
		BlockInterval: 12 * time.Second, // ~6.7M blocks over ~2.6 years
		HeaderBytes:   0,
		TxPerBlock:    1,
		TxBytes:       510,
	}
}

// Report compares a full ledger with its pruned form.
type Report struct {
	Strategy    string
	FullBytes   int64
	PrunedBytes int64
}

// Savings returns the fraction of bytes removed.
func (r Report) Savings() float64 {
	if r.FullBytes == 0 {
		return 0
	}
	return 1 - float64(r.PrunedBytes)/float64(r.FullBytes)
}

// ErrBadParams flags nonsensical pruning parameters.
var ErrBadParams = errors.New("prune: bad parameters")

// BitcoinPrune models Bitcoin's block-file pruning (§V-A): after full
// validation the node keeps all headers, the UTXO set, and only the most
// recent keepBlocks raw blocks "to relay recent blocks to peers and
// handle soft forks". The downside — peers can no longer download history
// from this node — is a property of the result, not of the math.
func BitcoinPrune(full Breakdown, keepBlocks int64, utxoSetBytes int64) (Report, error) {
	if keepBlocks < 0 || full.Blocks <= 0 {
		return Report{}, ErrBadParams
	}
	if keepBlocks > full.Blocks {
		keepBlocks = full.Blocks
	}
	perBlockBody := float64(full.Txs) / float64(full.Blocks)
	pruned := full.Headers + // all headers are kept
		int64(perBlockBody*float64(keepBlocks)) + // recent raw blocks
		utxoSetBytes // the spendable state
	return Report{Strategy: "bitcoin-prune", FullBytes: full.Total() + utxoSetBytes, PrunedBytes: pruned}, nil
}

// EthereumFastSync models geth's fast sync (§V-A): download headers,
// bodies and receipts for the whole chain, then "pull an entire recent
// state" at the pivot (head − pivotDepth) instead of replaying history.
// The result is "a database pruned of the state deltas": only the state
// touched from the pivot onward is kept.
func EthereumFastSync(full Breakdown, pivotDepth int64, stateBytes int64) (Report, error) {
	if full.Blocks <= 0 || pivotDepth < 0 || stateBytes < 0 {
		return Report{}, ErrBadParams
	}
	if pivotDepth > full.Blocks {
		pivotDepth = full.Blocks
	}
	deltaPerBlock := float64(full.StateDeltas) / float64(full.Blocks)
	recentDeltas := int64(deltaPerBlock * float64(pivotDepth))
	pruned := full.Headers + full.Txs + full.Receipts + stateBytes + recentDeltas
	return Report{Strategy: "ethereum-fast-sync", FullBytes: full.Total() + stateBytes, PrunedBytes: pruned}, nil
}

// NanoPrune models Nano's planned pruning (§V-B): "since the accounts
// keep record of account balances instead of unspent transaction inputs,
// all other historical data can be discarded" — a current node keeps one
// head block per account.
func NanoPrune(full Breakdown, accounts int64, blockBytes int64) (Report, error) {
	if accounts < 0 || blockBytes <= 0 {
		return Report{}, ErrBadParams
	}
	kept := accounts * blockBytes
	if kept > full.Total() {
		kept = full.Total()
	}
	return Report{Strategy: "nano-head-only", FullBytes: full.Total(), PrunedBytes: kept}, nil
}

// NodeClass is Nano's node taxonomy (§V-B).
type NodeClass int

const (
	// Historical nodes "keep record of all transactions".
	Historical NodeClass = iota + 1
	// Current nodes "keep only the head of account-chains".
	Current
	// Light nodes "do not hold any ledger data".
	Light
)

// String returns the class name.
func (c NodeClass) String() string {
	switch c {
	case Historical:
		return "historical"
	case Current:
		return "current"
	case Light:
		return "light"
	default:
		return "unknown"
	}
}

// NanoNodeBytes returns the storage requirement of each Nano node class
// given the full ledger and the account count.
func NanoNodeBytes(class NodeClass, full Breakdown, accounts int64, blockBytes int64) int64 {
	switch class {
	case Historical:
		return full.Total()
	case Current:
		kept := accounts * blockBytes
		if kept > full.Total() {
			kept = full.Total()
		}
		return kept
	default:
		return 0
	}
}

// ScaleMeasured extrapolates a measured small-scale ledger to a longer
// duration: the bridge between what the simulation builds (seconds to
// minutes of virtual time) and the multi-year mainnet sizes of §V.
func ScaleMeasured(measuredBytes int64, measured, target time.Duration) int64 {
	if measured <= 0 {
		return 0
	}
	return int64(float64(measuredBytes) * float64(target) / float64(measured))
}
