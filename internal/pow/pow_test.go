package pow

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chain"
)

func TestMineAndVerifyHeader(t *testing.T) {
	h := &chain.Header{Height: 1, Difficulty: 256} // ~8 zero bits
	nonce, ok := MineHeader(h, 1<<20)
	if !ok {
		t.Fatal("failed to mine difficulty-256 header in 2^20 attempts")
	}
	if h.Nonce != nonce {
		t.Fatal("MineHeader must set the header nonce")
	}
	if !VerifyHeader(h) {
		t.Fatal("mined header does not verify")
	}
	h.Nonce++
	if VerifyHeader(h) {
		t.Fatal("altered nonce should (overwhelmingly) fail verification")
	}
}

func TestMineHeaderGivesUp(t *testing.T) {
	h := &chain.Header{Difficulty: math.Pow(2, 60)}
	if _, ok := MineHeader(h, 10); ok {
		t.Fatal("2^60 difficulty in 10 attempts is effectively impossible")
	}
}

func TestBitcoinRetarget(t *testing.T) {
	cases := []struct {
		name             string
		prev             float64
		actual, expected time.Duration
		want             float64
	}{
		{"on schedule", 1000, 20 * time.Minute, 20 * time.Minute, 1000},
		{"too fast doubles", 1000, 10 * time.Minute, 20 * time.Minute, 2000},
		{"too slow halves", 1000, 40 * time.Minute, 20 * time.Minute, 500},
		{"clamped up", 1000, time.Minute, 20 * time.Minute, 4000},
		{"clamped down", 1000, 200 * time.Minute, 20 * time.Minute, 250},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := BitcoinRetarget(tc.prev, tc.actual, tc.expected, 4)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("got %g, want %g", got, tc.want)
			}
		})
	}
	if BitcoinRetarget(1000, 0, time.Minute, 4) != 1000 {
		t.Fatal("degenerate input should return prev")
	}
	if BitcoinRetarget(0.5, time.Minute, time.Minute, 4) < 1 {
		t.Fatal("difficulty must not drop below 1")
	}
}

func TestEthereumAdjustConverges(t *testing.T) {
	// Fast blocks raise difficulty, slow blocks lower it.
	if EthereumAdjust(1e6, 2*time.Second) <= 1e6 {
		t.Fatal("fast block should raise difficulty")
	}
	if EthereumAdjust(1e6, 30*time.Second) >= 1e6 {
		t.Fatal("slow block should lower difficulty")
	}
	// The -99 clamp bounds the drop.
	next := EthereumAdjust(1e6, time.Hour)
	if next < 1e6*(1-99.0/2048)-1 {
		t.Fatalf("clamp violated: %g", next)
	}
	if EthereumAdjust(1, time.Hour) < 1 {
		t.Fatal("difficulty must not drop below 1")
	}
}

func TestLotteryRejectsNoHashRate(t *testing.T) {
	if _, err := NewLottery(nil); !errors.Is(err, ErrNoHashRate) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewLottery([]Miner{{ID: 1, HashRate: 0}}); !errors.Is(err, ErrNoHashRate) {
		t.Fatalf("err = %v", err)
	}
}

// The PoW lottery must elect leaders proportionally to hash power — the
// core fairness property of §III-A1.
func TestLotteryWinnerProportional(t *testing.T) {
	l, err := NewLottery([]Miner{
		{ID: 0, HashRate: 10},
		{ID: 1, HashRate: 30},
		{ID: 2, HashRate: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	wins := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		wins[l.SampleWinner(rng)]++
	}
	for id, wantFrac := range map[int]float64{0: 0.10, 1: 0.30, 2: 0.60} {
		got := float64(wins[id]) / n
		if math.Abs(got-wantFrac) > 0.01 {
			t.Fatalf("miner %d won %.3f, want ≈%.2f", id, got, wantFrac)
		}
	}
}

func TestLotteryIntervalMean(t *testing.T) {
	l, err := NewLottery([]Miner{{ID: 0, HashRate: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	difficulty := l.DifficultyForInterval(10 * time.Second)
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += l.SampleInterval(rng, difficulty)
	}
	mean := sum.Seconds() / n
	if mean < 9.5 || mean > 10.5 {
		t.Fatalf("mean interval = %.2f s, want ≈10 s", mean)
	}
}

func TestDifficultyForIntervalFloor(t *testing.T) {
	l, _ := NewLottery([]Miner{{ID: 0, HashRate: 0.001}})
	if l.DifficultyForInterval(time.Nanosecond) < 1 {
		t.Fatal("difficulty must be at least 1")
	}
}

func TestCatchUpProbabilityKnownValues(t *testing.T) {
	// Reference values from Nakamoto's paper (section 11).
	cases := []struct {
		q    float64
		z    int
		want float64
	}{
		{0.10, 0, 1.0},
		{0.10, 5, 0.0009137},
		{0.10, 10, 0.0000012},
		{0.30, 5, 0.1773523},
		{0.30, 10, 0.0416605},
	}
	for _, tc := range cases {
		got := CatchUpProbability(tc.q, tc.z)
		if math.Abs(got-tc.want) > 1e-4 {
			t.Fatalf("P(q=%.2f, z=%d) = %.7f, want %.7f", tc.q, tc.z, got, tc.want)
		}
	}
}

func TestCatchUpProbabilityBounds(t *testing.T) {
	if CatchUpProbability(0, 6) != 0 {
		t.Fatal("q=0 should never catch up")
	}
	if CatchUpProbability(0.5, 6) != 1 {
		t.Fatal("q=0.5 always catches up")
	}
	if CatchUpProbability(0.7, 6) != 1 {
		t.Fatal("majority attacker always catches up")
	}
	// Monotone decreasing in z.
	prev := 1.1
	for z := 0; z <= 12; z++ {
		p := CatchUpProbability(0.25, z)
		if p > prev {
			t.Fatalf("P not monotone at z=%d: %g > %g", z, p, prev)
		}
		prev = p
	}
}

// §IV-A: "six for Bitcoin" — with q ≈ 10% the classic 6-block rule gives
// < 0.1% attacker success.
func TestConfirmationsForRiskMatchesPaperGuidance(t *testing.T) {
	z := ConfirmationsForRisk(0.10, 0.001, 50)
	if z != 5 && z != 6 {
		t.Fatalf("q=10%%, risk 0.1%% needs z=%d, expected ≈6 (Nakamoto gives 5)", z)
	}
	// Ethereum's 5–11 window corresponds to similar risk at slightly
	// different q; at q=30% the same risk needs many more blocks.
	z30 := ConfirmationsForRisk(0.30, 0.001, 100)
	if z30 <= z {
		t.Fatal("stronger attacker must require more confirmations")
	}
	if ConfirmationsForRisk(0.5, 0.001, 100) != -1 {
		t.Fatal("q >= 0.5 can never be safe")
	}
}

func TestExpectedOrphanRate(t *testing.T) {
	// Bitcoin-like: 10s propagation vs 600s interval → ~1.65% stale rate.
	r := ExpectedOrphanRate(10*time.Second, 600*time.Second)
	if r < 0.015 || r > 0.018 {
		t.Fatalf("orphan rate = %.4f, want ≈0.0165", r)
	}
	// Ethereum-like: same delay vs 15s interval → far higher.
	r2 := ExpectedOrphanRate(10*time.Second, 15*time.Second)
	if r2 <= r {
		t.Fatal("shorter interval must raise orphan rate")
	}
	if ExpectedOrphanRate(time.Second, 0) != 1 {
		t.Fatal("zero interval should saturate at 1")
	}
}

// TestSelfishRevenueThresholds pins the classic Eyal–Sirer profitability
// frontier: selfish mining beats honest mining (revenue share exceeds the
// hash share alpha) only above 1/3 of the hash power at gamma = 0, above
// 1/4 at gamma = 1/2, and at any share at all once gamma = 1 — the curve
// E17's γ-parameterized sweep reproduces.
func TestSelfishRevenueThresholds(t *testing.T) {
	cases := []struct {
		gamma     float64
		below     []float64 // alphas where honest mining wins
		above     []float64 // alphas where selfish mining wins
		threshold float64
	}{
		{0, []float64{0.05, 0.15, 0.25, 0.30, 0.33}, []float64{0.34, 0.35, 0.40, 0.45}, 1.0 / 3},
		{0.5, []float64{0.05, 0.15, 0.20, 0.24}, []float64{0.26, 0.30, 0.35, 0.45}, 0.25},
		{1, nil, []float64{0.01, 0.05, 0.15, 0.25, 0.35, 0.45}, 0},
	}
	for _, c := range cases {
		for _, alpha := range c.below {
			if r := SelfishRevenue(alpha, c.gamma); r >= alpha {
				t.Fatalf("gamma=%.2f alpha=%.2f: revenue %.4f should trail the honest share", c.gamma, alpha, r)
			}
		}
		for _, alpha := range c.above {
			if r := SelfishRevenue(alpha, c.gamma); r <= alpha {
				t.Fatalf("gamma=%.2f alpha=%.2f: revenue %.4f should exceed the honest share", c.gamma, alpha, r)
			}
		}
		if got := SelfishThreshold(c.gamma); math.Abs(got-c.threshold) > 1e-12 {
			t.Fatalf("SelfishThreshold(%.2f) = %v, want %v", c.gamma, got, c.threshold)
		}
	}
	// Connectivity only helps the attacker: revenue is monotone in gamma.
	for _, alpha := range []float64{0.1, 0.25, 0.4} {
		prev := -1.0
		for _, gamma := range []float64{0, 0.25, 0.5, 0.75, 1} {
			r := SelfishRevenue(alpha, gamma)
			if r < prev {
				t.Fatalf("revenue fell from %.4f to %.4f raising gamma to %.2f at alpha=%.2f", prev, r, gamma, alpha)
			}
			prev = r
		}
	}
	if SelfishRevenue(0, 0.5) != 0 {
		t.Fatal("no hash power earns no revenue")
	}
	if SelfishRevenue(0.5, 0) != 1 {
		t.Fatal("a majority attacker takes the whole chain")
	}
}

func BenchmarkMineHeaderDifficulty4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := &chain.Header{Height: uint64(i), Difficulty: 4096}
		if _, ok := MineHeader(h, 1<<24); !ok {
			b.Fatal("mining failed")
		}
	}
}

func BenchmarkSampleWinner(b *testing.B) {
	miners := make([]Miner, 1000)
	for i := range miners {
		miners[i] = Miner{ID: i, HashRate: float64(i + 1)}
	}
	l, err := NewLottery(miners)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.SampleWinner(rng)
	}
}
