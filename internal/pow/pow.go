// Package pow implements Nakamoto-style proof of work (paper §III-A1):
// partial hash inversion as the leader-election lottery, the difficulty
// retargeting rules that keep block generation time converging to a fixed
// value (§VI-A), a Poisson-process mining model for network-scale
// simulation, and the confirmation-confidence mathematics behind §IV-A's
// "six blocks for Bitcoin, five to eleven for Ethereum" guidance.
package pow

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"time"

	"repro/internal/chain"
	"repro/internal/hashx"
)

// MineHeader performs real partial hash inversion: it searches nonces so
// the header hash falls below the target derived from header.Difficulty.
// It mutates the header's Nonce on success. Intended for unit tests and
// small difficulties; network experiments use the Poisson model instead.
func MineHeader(h *chain.Header, maxAttempts uint64) (uint64, bool) {
	target := hashx.TargetForDifficulty(h.Difficulty)
	for i := uint64(0); i < maxAttempts; i++ {
		h.Nonce = i
		if hashx.MeetsTarget(h.Hash(), target) {
			return i, true
		}
	}
	return 0, false
}

// VerifyHeader checks the header's proof of work against its declared
// difficulty.
func VerifyHeader(h *chain.Header) bool {
	return hashx.MeetsTarget(h.Hash(), hashx.TargetForDifficulty(h.Difficulty))
}

// BitcoinRetarget computes the next difficulty after a retarget window
// (Bitcoin: 2016 blocks). actual is the time the window took, expected the
// time it should have taken; the adjustment is clamped to maxFactor (4 in
// Bitcoin) in both directions, and difficulty never drops below 1.
func BitcoinRetarget(prev float64, actual, expected time.Duration, maxFactor float64) float64 {
	if actual <= 0 || expected <= 0 || maxFactor < 1 {
		return prev
	}
	ratio := float64(expected) / float64(actual)
	if ratio > maxFactor {
		ratio = maxFactor
	}
	if ratio < 1/maxFactor {
		ratio = 1 / maxFactor
	}
	next := prev * ratio
	if next < 1 {
		next = 1
	}
	return next
}

// EthereumAdjust computes a per-block difficulty adjustment in the style
// of Ethereum Homestead: each block nudges difficulty by parent/2048 ×
// max(1 − elapsed/10s, −99), pulling the block interval toward ~13–15 s.
func EthereumAdjust(parent float64, elapsed time.Duration) float64 {
	step := 1 - float64(elapsed)/float64(10*time.Second)
	if step < -99 {
		step = -99
	}
	next := parent * (1 + step/2048)
	if next < 1 {
		next = 1
	}
	return next
}

// Miner is a participant in the mining lottery with a hash rate in
// hashes/second.
type Miner struct {
	ID       int
	HashRate float64
}

// Lottery models the PoW leader election over a set of miners: block
// discovery is a Poisson process with rate totalHashRate/difficulty, and
// the winner of each block is drawn proportionally to hash rate — the
// "form of a lottery" of §III-A.
type Lottery struct {
	miners []Miner
	total  float64
	cum    []float64
}

// ErrNoHashRate indicates the lottery has no mining power: "If there are
// no miners, no blocks can be mined and there is no transaction
// throughput" (§III-A1).
var ErrNoHashRate = errors.New("pow: total hash rate is zero")

// NewLottery builds a lottery over miners with positive hash rate.
func NewLottery(miners []Miner) (*Lottery, error) {
	l := &Lottery{miners: make([]Miner, 0, len(miners))}
	for _, m := range miners {
		if m.HashRate <= 0 {
			continue
		}
		l.miners = append(l.miners, m)
		l.total += m.HashRate
		l.cum = append(l.cum, l.total)
	}
	if l.total <= 0 {
		return nil, ErrNoHashRate
	}
	return l, nil
}

// TotalHashRate returns the summed hash rate.
func (l *Lottery) TotalHashRate() float64 { return l.total }

// SampleInterval draws the time until the network finds the next block at
// the given difficulty: Exp(difficulty / totalHashRate).
func (l *Lottery) SampleInterval(rng *rand.Rand, difficulty float64) time.Duration {
	if difficulty < 1 {
		difficulty = 1
	}
	mean := difficulty / l.total // seconds
	return time.Duration(rng.ExpFloat64() * mean * float64(time.Second))
}

// SampleWinner draws the block finder proportionally to hash rate and
// returns its Miner.ID.
func (l *Lottery) SampleWinner(rng *rand.Rand) int {
	x := rng.Float64() * l.total
	// Binary search the cumulative rates.
	lo, hi := 0, len(l.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if l.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return l.miners[lo].ID
}

// DifficultyForInterval returns the difficulty that makes the expected
// block interval equal target at the lottery's hash rate.
func (l *Lottery) DifficultyForInterval(target time.Duration) float64 {
	d := l.total * target.Seconds()
	if d < 1 {
		d = 1
	}
	return d
}

// CatchUpProbability is Nakamoto's attacker-success formula: the
// probability that an attacker controlling fraction q of the hash rate
// ever overtakes a transaction buried z blocks deep. This is the analytic
// backbone of §IV-A's confirmation-depth recommendations.
func CatchUpProbability(q float64, z int) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 0.5 {
		return 1
	}
	if z <= 0 {
		return 1
	}
	p := 1 - q
	lambda := float64(z) * q / p
	sum := 1.0
	for k := 0; k <= z; k++ {
		poisson := math.Exp(-lambda)
		for i := 1; i <= k; i++ {
			poisson *= lambda / float64(i)
		}
		sum -= poisson * (1 - math.Pow(q/p, float64(z-k)))
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// ConfirmationsForRisk returns the smallest confirmation depth z at which
// an attacker with hash-rate share q succeeds with probability below risk.
// It returns -1 if no depth up to maxZ suffices (q ≥ 0.5: the supermajority
// assumption of §III-A is violated).
func ConfirmationsForRisk(q, risk float64, maxZ int) int {
	for z := 0; z <= maxZ; z++ {
		if CatchUpProbability(q, z) < risk {
			return z
		}
	}
	return -1
}

// SelfishRevenue is Eyal–Sirer's closed-form relative pool revenue for a
// selfish miner with hash share alpha and race parameter gamma (the
// fraction of honest power that mines on the adversary's block during an
// open 1-1 race; their eq. 8). The pool profits — revenue exceeds the
// honest expectation alpha — exactly when alpha > SelfishThreshold(gamma):
// 1/3 at gamma = 0, 1/4 at gamma = 1/2, falling to 0 at gamma = 1. This
// is the analytic column E17's simulated revenue-share sweeps are
// compared against.
func SelfishRevenue(alpha, gamma float64) float64 {
	if alpha <= 0 {
		return 0
	}
	if alpha >= 0.5 {
		return 1
	}
	if gamma < 0 {
		gamma = 0
	}
	if gamma > 1 {
		gamma = 1
	}
	num := alpha*(1-alpha)*(1-alpha)*(4*alpha+gamma*(1-2*alpha)) - alpha*alpha*alpha
	den := 1 - alpha*(1+(2-alpha)*alpha)
	if den <= 0 {
		return 1
	}
	r := num / den
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// SelfishThreshold is the minimum hash share at which selfish mining beats
// honest mining for a given gamma: (1-gamma)/(3-2*gamma) — the classic
// profitability frontier, 1/3 at gamma = 0 through 1/4 at gamma = 1/2
// down to 0 at gamma = 1.
func SelfishThreshold(gamma float64) float64 {
	if gamma < 0 {
		gamma = 0
	}
	if gamma > 1 {
		gamma = 1
	}
	return (1 - gamma) / (3 - 2*gamma)
}

// ExpectedOrphanRate approximates the stale/orphan block rate for a given
// block interval and network-wide propagation delay: two blocks conflict
// when a second one is found before the first propagates, so the rate is
// ≈ 1 − e^(−delay/interval). This is the quantitative core of Fig. 4's
// "two different blocks are created at roughly the same time".
func ExpectedOrphanRate(propagationDelay, blockInterval time.Duration) float64 {
	if blockInterval <= 0 {
		return 1
	}
	return 1 - math.Exp(-float64(propagationDelay)/float64(blockInterval))
}

// Target re-exports the difficulty→threshold conversion for callers that
// verify real mined headers.
func Target(difficulty float64) *big.Int { return hashx.TargetForDifficulty(difficulty) }
