package tangle

// FuzzTangleTipSelection: the tangle's contract is that any vertex
// stream — tip-selected approvals interleaved with out-of-order
// arrivals, duplicates, unknown-parent orphans and corrupted
// signatures — never panics, never orphans a confirmed vertex, and
// keeps confirmation closed over ancestry (a confirmed vertex's parents
// are attached and confirmed) and monotone (nothing is reported
// confirmed twice, nothing ever reverts). The fuzzer drives both the
// op mix and the delivery order from raw bytes so coverage feedback
// explores the interleavings gossip reordering produces.

import (
	"math/rand"
	"testing"

	"repro/internal/hashx"
	"repro/internal/keys"
)

// fuzzTangleAccounts keeps key generation cheap per exec.
const fuzzTangleAccounts = 3

var fuzzRing = keys.NewRing("tangle-fuzz", fuzzTangleAccounts)

// buildVertexStream turns fuzz bytes into a delivery stream. A builder
// tangle tracks the valid view so generated vertices approve real tips;
// the stream also carries vertices the builder would reject or park.
func buildVertexStream(data []byte) (*Vertex, []*Vertex) {
	gen := Genesis(fuzzRing.Pair(0), 1_000)
	builder, err := New(gen, 3)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(11))
	seq := uint64(0)
	var stream []*Vertex
	const maxOps = 32
	ops := 0
	for i := 0; i+1 < len(data) && ops < maxOps; i += 2 {
		ops++
		op, arg := data[i]%4, data[i+1]
		seq++
		who := int(arg) % fuzzTangleAccounts
		switch op {
		case 0, 1: // valid vertex on the builder's current tips
			pa, pb := builder.SelectTips(rng)
			v := NewVertex(fuzzRing.Pair(who), seq, pa, pb, fuzzRing.Addr(0), 1)
			builder.Attach(v)
			stream = append(stream, v)
		case 2: // orphan: approve a parent that does not exist
			missing := hashx.Sum([]byte{arg, byte(i), 0xfe})
			pa, _ := builder.SelectTips(rng)
			v := NewVertex(fuzzRing.Pair(who), seq, pa, missing, fuzzRing.Addr(0), 1)
			stream = append(stream, v)
		case 3: // duplicate or corrupted copy of an earlier vertex
			if len(stream) == 0 {
				continue
			}
			orig := stream[int(arg)%len(stream)]
			if arg%2 == 0 {
				stream = append(stream, orig)
			} else {
				bad := *orig
				bad.Sig = append([]byte(nil), orig.Sig...)
				bad.Sig[int(arg)%len(bad.Sig)] ^= 0x20
				stream = append(stream, &bad)
			}
		}
	}
	return gen, stream
}

func FuzzTangleTipSelection(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 3, 2, 4, 3, 5}, uint8(0))
	f.Add([]byte{2, 9, 0, 1, 2, 7, 3, 2, 0, 0, 1, 1}, uint8(3))
	f.Add([]byte{3, 4, 3, 5, 0, 0, 0, 1, 2, 2, 2, 3}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, shuffle uint8) {
		gen, stream := buildVertexStream(data)
		tg, err := New(gen, 3)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		tg.SetGapLimit(8)
		// Deliver in a fuzz-chosen order: gossip does not preserve issue
		// order, and parking must absorb whatever arrives early.
		order := make([]int, len(stream))
		for i := range order {
			order[i] = i
		}
		perm := rand.New(rand.NewSource(int64(shuffle)))
		perm.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

		confirmed := map[hashx.Hash]bool{gen.Hash(): true}
		for _, idx := range order {
			res := tg.Attach(stream[idx])
			for _, h := range res.Confirmed {
				if confirmed[h] {
					t.Fatalf("vertex %x reported confirmed twice", h[:4])
				}
				confirmed[h] = true
			}
		}
		// Nothing reported confirmed may ever be orphaned or revert.
		for h := range confirmed {
			if !tg.Has(h) {
				t.Fatalf("confirmed vertex %x orphaned", h[:4])
			}
			if !tg.Confirmed(h) {
				t.Fatalf("confirmed vertex %x reverted", h[:4])
			}
		}
		// And the replica's own view must agree: coverage closed over
		// ancestry, counts consistent.
		count := 0
		for _, v := range tg.AllVertices() {
			h := v.Hash()
			if tg.Confirmed(h) {
				count++
				for _, p := range [2]hashx.Hash{v.ParentA, v.ParentB} {
					if p == hashx.Zero {
						continue
					}
					if !tg.Has(p) || !tg.Confirmed(p) {
						t.Fatalf("confirmed vertex %x has unconfirmed parent %x", h[:4], p[:4])
					}
				}
			}
		}
		if count != tg.ConfirmedCount() {
			t.Fatalf("ConfirmedCount = %d, flags say %d", tg.ConfirmedCount(), count)
		}
	})
}
