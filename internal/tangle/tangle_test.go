package tangle

import (
	"math/rand"
	"testing"

	"repro/internal/hashx"
	"repro/internal/keys"
)

func testRing(t testing.TB, n int) *keys.Ring {
	t.Helper()
	return keys.NewRing("tangle-test", n)
}

func newTestTangle(t testing.TB, ring *keys.Ring, confirmWeight int) (*Tangle, *Vertex) {
	t.Helper()
	gen := Genesis(ring.Pair(0), 1_000_000)
	tg, err := New(gen, confirmWeight)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tg, gen
}

func TestVertexHashAndSig(t *testing.T) {
	ring := testRing(t, 2)
	gen := Genesis(ring.Pair(0), 10)
	v := NewVertex(ring.Pair(1), 1, gen.Hash(), gen.Hash(), ring.Addr(0), 5)
	if v.Hash() != v.Hash() {
		t.Fatal("hash not stable")
	}
	if !v.VerifySig() {
		t.Fatal("valid signature rejected")
	}
	if v.EncodedSize() != wireSize {
		t.Fatalf("EncodedSize = %d, want %d", v.EncodedSize(), wireSize)
	}
	// A value copy must re-hash (pointer-identity memo) and a tampered
	// signature must fail even after a prior success on the original.
	cp := *v
	if cp.Hash() != v.Hash() {
		t.Fatal("copy hashes differently")
	}
	bad := *v
	bad.Sig = append([]byte(nil), v.Sig...)
	bad.Sig[0] ^= 0x40
	if bad.VerifySig() {
		t.Fatal("tampered signature accepted")
	}
	// Wrong issuer for the key.
	imp := NewVertex(ring.Pair(1), 2, gen.Hash(), gen.Hash(), ring.Addr(0), 5)
	imp.Issuer = ring.Addr(0)
	imp.memoSelf = nil // force re-hash over the forged issuer
	if imp.VerifySig() {
		t.Fatal("issuer/key mismatch accepted")
	}
}

func TestGenesisBornConfirmed(t *testing.T) {
	ring := testRing(t, 1)
	tg, gen := newTestTangle(t, ring, 4)
	if !tg.Confirmed(gen.Hash()) {
		t.Fatal("genesis not confirmed")
	}
	if tg.ConfirmedCount() != 1 || tg.VertexCount() != 1 || tg.TipCount() != 1 {
		t.Fatalf("counts = %d/%d/%d, want 1/1/1",
			tg.ConfirmedCount(), tg.VertexCount(), tg.TipCount())
	}
}

// chainOf attaches a linear chain of n vertices on top of the genesis
// and returns them in attach order.
func chainOf(t *testing.T, tg *Tangle, ring *keys.Ring, gen *Vertex, n int) []*Vertex {
	t.Helper()
	prev := gen.Hash()
	out := make([]*Vertex, 0, n)
	for i := 0; i < n; i++ {
		v := NewVertex(ring.Pair(0), uint64(i+1), prev, prev, ring.Addr(0), 1)
		if res := tg.Attach(v); res.Status != Accepted {
			t.Fatalf("attach %d: %v", i, res.Status)
		}
		prev = v.Hash()
		out = append(out, v)
	}
	return out
}

func TestCumulativeCoverageConfirms(t *testing.T) {
	ring := testRing(t, 1)
	tg, gen := newTestTangle(t, ring, 3)
	chain := chainOf(t, tg, ring, gen, 5)
	// In a chain with threshold 3, vertex k gains weight from each of
	// its descendants: v0 has 4 descendants -> confirmed, v1 has 3 ->
	// confirmed, v2 has 2, v3 has 1, v4 has 0.
	for i, v := range chain {
		want := len(chain)-1-i >= 3
		if got := tg.Confirmed(v.Hash()); got != want {
			t.Fatalf("vertex %d confirmed = %v, want %v (weight %d)",
				i, got, want, tg.Weight(v.Hash()))
		}
	}
	if tg.ConfirmedCount() != 3 { // genesis + v0 + v1
		t.Fatalf("ConfirmedCount = %d, want 3", tg.ConfirmedCount())
	}
}

func TestConfirmOrderAncestorsFirst(t *testing.T) {
	ring := testRing(t, 1)
	tg, gen := newTestTangle(t, ring, 4)
	var confirmed []hashx.Hash
	prev := gen.Hash()
	var made []*Vertex
	for i := 0; i < 8; i++ {
		v := NewVertex(ring.Pair(0), uint64(i+1), prev, prev, ring.Addr(0), 1)
		res := tg.Attach(v)
		if res.Status != Accepted {
			t.Fatalf("attach %d: %v", i, res.Status)
		}
		confirmed = append(confirmed, res.Confirmed...)
		prev = v.Hash()
		made = append(made, v)
	}
	if len(confirmed) == 0 {
		t.Fatal("nothing confirmed")
	}
	// Attach order is ancestor order on a chain: reported confirmations
	// must respect it.
	pos := map[hashx.Hash]int{}
	for i, v := range made {
		pos[v.Hash()] = i
	}
	for i := 1; i < len(confirmed); i++ {
		if pos[confirmed[i-1]] > pos[confirmed[i]] {
			t.Fatalf("confirmation order violates ancestry: %d before %d",
				pos[confirmed[i-1]], pos[confirmed[i]])
		}
	}
}

func TestGapParkingAndDrain(t *testing.T) {
	ring := testRing(t, 1)
	tg, gen := newTestTangle(t, ring, 100)
	v1 := NewVertex(ring.Pair(0), 1, gen.Hash(), gen.Hash(), ring.Addr(0), 1)
	v2 := NewVertex(ring.Pair(0), 2, v1.Hash(), v1.Hash(), ring.Addr(0), 1)
	v3 := NewVertex(ring.Pair(0), 3, v2.Hash(), v2.Hash(), ring.Addr(0), 1)
	if res := tg.Attach(v3); res.Status != GapParent || res.Missing != v2.Hash() {
		t.Fatalf("v3 = %v (missing %x), want gap on v2", res.Status, res.Missing[:4])
	}
	if res := tg.Attach(v2); res.Status != GapParent || res.Missing != v1.Hash() {
		t.Fatalf("v2 = %v, want gap on v1", res.Status)
	}
	if tg.ParkedCount() != 2 {
		t.Fatalf("ParkedCount = %d, want 2", tg.ParkedCount())
	}
	res := tg.Attach(v1)
	if res.Status != Accepted {
		t.Fatalf("v1 = %v", res.Status)
	}
	if len(res.Drained) != 2 || res.Drained[0] != v2 || res.Drained[1] != v3 {
		t.Fatalf("drained %d vertices, want [v2 v3]", len(res.Drained))
	}
	if tg.ParkedCount() != 0 || tg.VertexCount() != 4 {
		t.Fatalf("parked %d / vertices %d, want 0 / 4", tg.ParkedCount(), tg.VertexCount())
	}
}

func TestDuplicateAndRejected(t *testing.T) {
	ring := testRing(t, 1)
	tg, gen := newTestTangle(t, ring, 4)
	v := NewVertex(ring.Pair(0), 1, gen.Hash(), gen.Hash(), ring.Addr(0), 1)
	if res := tg.Attach(v); res.Status != Accepted {
		t.Fatalf("first attach: %v", res.Status)
	}
	if res := tg.Attach(v); res.Status != Duplicate {
		t.Fatalf("second attach: %v, want duplicate", res.Status)
	}
	bad := NewVertex(ring.Pair(0), 2, gen.Hash(), gen.Hash(), ring.Addr(0), 1)
	bad.Sig[0] ^= 1
	if res := tg.Attach(bad); res.Status != Rejected {
		t.Fatalf("bad sig: %v, want rejected", res.Status)
	}
}

func TestTipsTrackAttachment(t *testing.T) {
	ring := testRing(t, 1)
	tg, gen := newTestTangle(t, ring, 100)
	v1 := NewVertex(ring.Pair(0), 1, gen.Hash(), gen.Hash(), ring.Addr(0), 1)
	tg.Attach(v1)
	if tg.TipCount() != 1 {
		t.Fatalf("tips after v1 = %d, want 1 (genesis approved)", tg.TipCount())
	}
	// Two vertices approving v1 from different draws: both become tips.
	v2 := NewVertex(ring.Pair(0), 2, v1.Hash(), v1.Hash(), ring.Addr(0), 1)
	v3 := NewVertex(ring.Pair(0), 3, v1.Hash(), v1.Hash(), ring.Addr(0), 1)
	tg.Attach(v2)
	tg.Attach(v3)
	if tg.TipCount() != 2 {
		t.Fatalf("tips = %d, want 2", tg.TipCount())
	}
	rng := rand.New(rand.NewSource(1))
	a, b := tg.SelectTips(rng)
	if !tg.Has(a) || !tg.Has(b) {
		t.Fatal("selected tips not attached")
	}
	if tg.Confirmed(a) && tg.Confirmed(b) {
		// With threshold 100 nothing beyond genesis is confirmed, and
		// genesis is no longer a tip.
		t.Fatal("selected confirmed vertices as tips")
	}
}

func TestGapEvictionBound(t *testing.T) {
	ring := testRing(t, 1)
	tg, _ := newTestTangle(t, ring, 100)
	tg.SetGapLimit(2)
	var evicted []*Vertex
	tg.SetGapEvicted(func(v *Vertex) { evicted = append(evicted, v) })
	missing := hashx.Sum([]byte("nowhere"))
	var orphans []*Vertex
	for i := 0; i < 4; i++ {
		v := NewVertex(ring.Pair(0), uint64(i+1), missing, missing, ring.Addr(0), 1)
		orphans = append(orphans, v)
		if res := tg.Attach(v); res.Status != GapParent {
			t.Fatalf("orphan %d: %v", i, res.Status)
		}
	}
	if tg.ParkedCount() != 2 {
		t.Fatalf("ParkedCount = %d, want 2", tg.ParkedCount())
	}
	if len(evicted) != 2 || evicted[0] != orphans[0] || evicted[1] != orphans[1] {
		t.Fatalf("evicted %d, want the two oldest", len(evicted))
	}
}

func TestCoverageClosureRandomDAG(t *testing.T) {
	ring := testRing(t, 4)
	tg, _ := newTestTangle(t, ring, 3)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		pa, pb := tg.SelectTips(rng)
		who := rng.Intn(4)
		v := NewVertex(ring.Pair(who), uint64(1000*who+i), pa, pb, ring.Addr(rng.Intn(4)), 1)
		if res := tg.Attach(v); res.Status != Accepted {
			t.Fatalf("attach %d: %v", i, res.Status)
		}
	}
	assertCoverageClosure(t, tg)
	if tg.ConfirmedCount() < 2 {
		t.Fatal("random DAG confirmed nothing beyond genesis")
	}
}

// assertCoverageClosure checks the §IV invariant: every confirmed
// vertex's parents are attached and confirmed (coverage is closed over
// ancestry), and no confirmed vertex has been orphaned out of the DAG.
func assertCoverageClosure(t *testing.T, tg *Tangle) {
	t.Helper()
	for _, v := range tg.AllVertices() {
		h := v.Hash()
		if !tg.Has(h) {
			t.Fatalf("attached vertex %x missing from the DAG", h[:4])
		}
		if !tg.Confirmed(h) {
			continue
		}
		for _, p := range [2]hashx.Hash{v.ParentA, v.ParentB} {
			if p == hashx.Zero {
				continue // genesis
			}
			if !tg.Has(p) {
				t.Fatalf("confirmed vertex %x has unattached parent %x", h[:4], p[:4])
			}
			if !tg.Confirmed(p) {
				t.Fatalf("confirmed vertex %x has unconfirmed parent %x", h[:4], p[:4])
			}
		}
	}
}
