// Package tangle implements the simplified leaderless cooperative DAG
// the comparison's third paradigm runs on: a tangle in the IOTA /
// Proxima family. Every transaction is its own vertex; issuing a
// payment is also the act of validating the ledger, because the new
// vertex approves two earlier vertices (its parents) and transitively
// everything in their past cone. There are no miners, no
// representatives and no elections — confirmation is cumulative
// coverage: a vertex is confirmed once enough later vertices have
// attached on top of it (its future cone reaches a weight threshold),
// the cooperative analogue of the paper's §IV confirmation-confidence
// depth rules.
//
// The ledger keeps the same struct-of-arrays shape as the other hot
// paths in this repo: vertices live in dense attachment-ordered
// columns, parents/weights/flags are parallel int32 slices, and the
// per-attach ancestor walk uses an epoch-stamped scratch column instead
// of an allocate-per-call set.
package tangle

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/hashx"
	"repro/internal/keys"
)

// Vertex is one transaction of the tangle: a payment plus the two
// parent approvals that weave it into the DAG (§II-B's "each node holds
// a single transaction", with cooperative two-parent references instead
// of the lattice's per-account chains).
type Vertex struct {
	// Issuer is the account that created (and signed) the vertex.
	Issuer keys.Address
	// Seq is the issuer's vertex counter; it keeps the content hash of
	// otherwise-identical payments distinct.
	Seq uint64
	// ParentA and ParentB are the approved vertices. Both must already
	// be attached before this vertex can attach; they may coincide when
	// tip selection draws the same tip twice.
	ParentA hashx.Hash
	ParentB hashx.Hash
	// From/To/Amount is the settled payment.
	From   keys.Address
	To     keys.Address
	Amount uint64
	// PubKey and Sig authenticate the issuer.
	PubKey ed25519.PublicKey
	Sig    []byte

	// memoSelf/memoHash cache the content hash under the same
	// pointer-identity rule as lattice.Block: valid only while memoSelf
	// still points at this exact value, so copies silently re-hash.
	memoSelf *Vertex
	memoHash hashx.Hash

	// memoSigSelf/memoSigOK cache a positive VerifySig outcome; failure
	// is never cached, so a swapped Sig cannot be laundered.
	memoSigSelf *Vertex
	memoSigOK   bool
}

// wireSize is the modeled encoding of a vertex: issuer + seq + two
// parent references + payment + key material.
const wireSize = keys.AddressSize + 8 + 2*hashx.Size + 2*keys.AddressSize + 8 +
	ed25519.PublicKeySize + ed25519.SignatureSize

// EncodedSize returns the modeled wire size of a vertex.
func (v *Vertex) EncodedSize() int { return wireSize }

// contentBytes serializes the signed/hashed portion (everything except
// Sig and PubKey, which authenticate the content).
func (v *Vertex) contentBytes() []byte {
	buf := make([]byte, 0, wireSize)
	buf = append(buf, v.Issuer[:]...)
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], v.Seq)
	buf = append(buf, scratch[:]...)
	buf = append(buf, v.ParentA[:]...)
	buf = append(buf, v.ParentB[:]...)
	buf = append(buf, v.From[:]...)
	buf = append(buf, v.To[:]...)
	binary.BigEndian.PutUint64(scratch[:], v.Amount)
	buf = append(buf, scratch[:]...)
	return buf
}

// Hash returns the vertex identifier, memoized on first use. Not safe
// for a concurrent FIRST call on the same pointer.
func (v *Vertex) Hash() hashx.Hash {
	if v.memoSelf == v {
		return v.memoHash
	}
	v.memoHash = hashx.Sum(v.contentBytes())
	v.memoSelf = v
	return v.memoHash
}

// sign fills PubKey and Sig.
func (v *Vertex) sign(kp *keys.KeyPair) {
	digest := v.Hash()
	v.PubKey = kp.Pub
	v.Sig = kp.Sign(digest[:])
}

// VerifySig checks the issuer signature and that PubKey matches Issuer.
// Success is memoized per pointer; the same *Vertex flooding every
// simulated node costs one ed25519 verification total.
func (v *Vertex) VerifySig() bool {
	if v.memoSigSelf == v && v.memoSigOK {
		return true
	}
	if keys.AddressOf(v.PubKey) != v.Issuer {
		return false
	}
	digest := v.Hash()
	if !keys.Verify(v.PubKey, digest[:], v.Sig) {
		return false
	}
	v.memoSigSelf = v
	v.memoSigOK = true
	return true
}

// NewVertex builds and signs a payment vertex approving the two parents.
func NewVertex(kp *keys.KeyPair, seq uint64, parentA, parentB hashx.Hash, to keys.Address, amount uint64) *Vertex {
	v := &Vertex{
		Issuer:  kp.Address(),
		Seq:     seq,
		ParentA: parentA,
		ParentB: parentB,
		From:    kp.Address(),
		To:      to,
		Amount:  amount,
	}
	v.sign(kp)
	return v
}

// Genesis builds the deterministic origin vertex every replica starts
// from: zero parents, a self-payment of the supply, confirmed at birth.
func Genesis(kp *keys.KeyPair, supply uint64) *Vertex {
	v := &Vertex{
		Issuer: kp.Address(),
		From:   kp.Address(),
		To:     kp.Address(),
		Amount: supply,
	}
	v.sign(kp)
	return v
}

// Status reports the outcome of an Attach.
type Status int

const (
	// Accepted: the vertex attached and is part of the tangle.
	Accepted Status = iota + 1
	// Duplicate: the vertex was already attached.
	Duplicate
	// GapParent: a parent is unknown; the vertex is parked until it
	// arrives (Result.Missing names the first missing parent).
	GapParent
	// Rejected: the vertex is invalid (bad signature or self-reference).
	Rejected
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Accepted:
		return "accepted"
	case Duplicate:
		return "duplicate"
	case GapParent:
		return "gap-parent"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result reports what an Attach did.
type Result struct {
	Status Status
	// Missing is the first unknown parent when Status is GapParent.
	Missing hashx.Hash
	// Drained lists parked vertices that attached because this arrival
	// filled their gap, in attach order.
	Drained []*Vertex
	// Confirmed lists vertices newly past the coverage threshold, in
	// ancestor-before-descendant order (genesis excluded — it is born
	// confirmed).
	Confirmed []hashx.Hash
}

// Tangle is one replica's view of the DAG. All columns are indexed by
// dense attachment-order ids; the id order is also a topological order,
// because a vertex only attaches once both parents have.
type Tangle struct {
	confirmWeight int32

	ids      map[hashx.Hash]int32
	vertices []*Vertex  // id → vertex, attachment order
	parents  [][2]int32 // id → parent ids (-1 for genesis)
	children []int32    // id → direct approver count (0 ⇒ tip)
	weight   []int32    // id → future-cone size while unconfirmed
	flags    []uint8    // id → confirmedFlag

	tips   []int32 // ids with children == 0
	tipPos []int32 // id → index in tips, -1 when not a tip

	// stamp/epoch is the O(1)-reset visited set for the per-attach
	// ancestor walk; stack is its reused scratch.
	stamp []uint32
	epoch uint32
	stack []int32

	confirmedCount int

	// parked holds vertices waiting for a missing parent, bounded by
	// gapLimit with FIFO eviction (arrival order).
	parked      map[hashx.Hash][]*Vertex
	parkedOrder []parkedRef
	gapLimit    int
	gapEvicted  func(*Vertex)
}

const confirmedFlag uint8 = 1

// parkedRef remembers where a parked vertex waits so FIFO eviction can
// find it without scanning the map.
type parkedRef struct {
	missing hashx.Hash
	v       *Vertex
}

// DefaultGapLimit bounds the parked-vertex backlog.
const DefaultGapLimit = 1024

// New builds a replica seeded with the shared genesis vertex. Every
// node of a network must be constructed from the identical genesis so
// the replicas agree on the DAG's root.
func New(genesis *Vertex, confirmWeight int) (*Tangle, error) {
	if genesis == nil {
		return nil, fmt.Errorf("tangle: nil genesis")
	}
	if !genesis.VerifySig() {
		return nil, fmt.Errorf("tangle: genesis signature invalid")
	}
	if genesis.ParentA != hashx.Zero || genesis.ParentB != hashx.Zero {
		return nil, fmt.Errorf("tangle: genesis must have zero parents")
	}
	if confirmWeight < 1 {
		confirmWeight = 1
	}
	t := &Tangle{
		confirmWeight: int32(confirmWeight),
		ids:           map[hashx.Hash]int32{},
		parked:        map[hashx.Hash][]*Vertex{},
		gapLimit:      DefaultGapLimit,
	}
	id := t.grow(genesis)
	t.parents[id] = [2]int32{-1, -1}
	t.flags[id] = confirmedFlag // born confirmed: the coverage base case
	t.confirmedCount = 1
	t.addTip(id)
	return t, nil
}

// SetGapLimit bounds the parked-vertex backlog (minimum 1).
func (t *Tangle) SetGapLimit(n int) {
	if n < 1 {
		n = 1
	}
	t.gapLimit = n
}

// SetGapEvicted installs a callback invoked with each vertex dropped
// from the parked backlog, so callers can clear dedup state and re-pull.
func (t *Tangle) SetGapEvicted(fn func(*Vertex)) { t.gapEvicted = fn }

// grow appends one vertex to every column and returns its id.
func (t *Tangle) grow(v *Vertex) int32 {
	id := int32(len(t.vertices))
	t.ids[v.Hash()] = id
	t.vertices = append(t.vertices, v)
	t.parents = append(t.parents, [2]int32{-1, -1})
	t.children = append(t.children, 0)
	t.weight = append(t.weight, 0)
	t.flags = append(t.flags, 0)
	t.tipPos = append(t.tipPos, -1)
	t.stamp = append(t.stamp, 0)
	return id
}

// addTip registers id as a tip.
func (t *Tangle) addTip(id int32) {
	t.tipPos[id] = int32(len(t.tips))
	t.tips = append(t.tips, id)
}

// removeTip unregisters id as a tip (swap-remove; deterministic given
// deterministic attach order).
func (t *Tangle) removeTip(id int32) {
	pos := t.tipPos[id]
	if pos < 0 {
		return
	}
	last := t.tips[len(t.tips)-1]
	t.tips[pos] = last
	t.tipPos[last] = pos
	t.tips = t.tips[:len(t.tips)-1]
	t.tipPos[id] = -1
}

// Attach validates and inserts a vertex, draining any parked vertices
// the arrival unblocks and reporting newly confirmed coverage.
func (t *Tangle) Attach(v *Vertex) Result {
	res := t.attachOne(v)
	if res.Status != Accepted {
		return res
	}
	// Drain parked descendants breadth-first: each drained vertex may
	// itself unblock more.
	queue := []hashx.Hash{v.Hash()}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		waiting := t.parked[h]
		if len(waiting) == 0 {
			continue
		}
		delete(t.parked, h)
		for _, w := range waiting {
			t.unparkRef(h, w)
			sub := t.attachOne(w)
			if sub.Status != Accepted {
				continue
			}
			res.Drained = append(res.Drained, w)
			res.Confirmed = append(res.Confirmed, sub.Confirmed...)
			queue = append(queue, w.Hash())
		}
	}
	return res
}

// attachOne inserts a single vertex without draining.
func (t *Tangle) attachOne(v *Vertex) Result {
	h := v.Hash()
	if _, ok := t.ids[h]; ok {
		return Result{Status: Duplicate}
	}
	if v.ParentA == h || v.ParentB == h {
		return Result{Status: Rejected}
	}
	if !v.VerifySig() {
		return Result{Status: Rejected}
	}
	pa, okA := t.ids[v.ParentA]
	if !okA {
		t.park(v.ParentA, v)
		return Result{Status: GapParent, Missing: v.ParentA}
	}
	pb, okB := t.ids[v.ParentB]
	if !okB {
		t.park(v.ParentB, v)
		return Result{Status: GapParent, Missing: v.ParentB}
	}
	id := t.grow(v)
	t.parents[id] = [2]int32{pa, pb}
	t.children[pa]++
	t.removeTip(pa)
	if pb != pa {
		t.children[pb]++
		t.removeTip(pb)
	}
	t.addTip(id)
	return Result{Status: Accepted, Confirmed: t.propagate(id)}
}

// propagate walks the new vertex's past cone, incrementing cumulative
// weight on every unconfirmed ancestor, and cements the ones that cross
// the threshold. The walk is pruned at confirmed vertices — sound
// because cementing is closed over ancestry: an ancestor is always
// confirmed no later than its descendants (its future cone strictly
// contains theirs), so nothing beyond a confirmed vertex still needs
// weight.
func (t *Tangle) propagate(id int32) []hashx.Hash {
	t.epoch++
	var newly []hashx.Hash
	t.stack = append(t.stack[:0], t.parents[id][0], t.parents[id][1])
	for len(t.stack) > 0 {
		u := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		if u < 0 || t.flags[u]&confirmedFlag != 0 || t.stamp[u] == t.epoch {
			continue
		}
		t.stamp[u] = t.epoch
		t.weight[u]++
		if t.weight[u] >= t.confirmWeight {
			t.cement(u, &newly)
			continue
		}
		t.stack = append(t.stack, t.parents[u][0], t.parents[u][1])
	}
	return newly
}

// cement confirms id and, first, every still-unconfirmed ancestor —
// each necessarily at or past the threshold already, since an
// unconfirmed ancestor's weight is at least its descendant's plus one.
// Output order is ancestor before descendant, the §IV coverage closure.
func (t *Tangle) cement(id int32, out *[]hashx.Hash) {
	t.flags[id] |= confirmedFlag
	for _, p := range t.parents[id] {
		if p >= 0 && t.flags[p]&confirmedFlag == 0 {
			t.cement(p, out)
		}
	}
	t.confirmedCount++
	*out = append(*out, t.vertices[id].Hash())
}

// park holds v until missing arrives, evicting the oldest parked vertex
// when the backlog is full.
func (t *Tangle) park(missing hashx.Hash, v *Vertex) {
	for _, w := range t.parked[missing] {
		if w.Hash() == v.Hash() {
			return
		}
	}
	if len(t.parkedOrder) >= t.gapLimit {
		old := t.parkedOrder[0]
		t.parkedOrder = t.parkedOrder[1:]
		t.dropParked(old.missing, old.v)
		if t.gapEvicted != nil {
			t.gapEvicted(old.v)
		}
	}
	t.parked[missing] = append(t.parked[missing], v)
	t.parkedOrder = append(t.parkedOrder, parkedRef{missing: missing, v: v})
}

// dropParked removes v from the parked map bucket for missing.
func (t *Tangle) dropParked(missing hashx.Hash, v *Vertex) {
	bucket := t.parked[missing]
	for i, w := range bucket {
		if w == v {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(t.parked, missing)
	} else {
		t.parked[missing] = bucket
	}
}

// unparkRef removes the FIFO record for a drained vertex.
func (t *Tangle) unparkRef(missing hashx.Hash, v *Vertex) {
	for i, ref := range t.parkedOrder {
		if ref.v == v && ref.missing == missing {
			t.parkedOrder = append(t.parkedOrder[:i], t.parkedOrder[i+1:]...)
			return
		}
	}
}

// SelectTips draws two tips uniformly (they may coincide) — the honest
// cooperative rule: approve what you currently see unapproved.
func (t *Tangle) SelectTips(rng *rand.Rand) (hashx.Hash, hashx.Hash) {
	n := len(t.tips)
	if n == 0 {
		// Unreachable in practice (genesis starts as a tip and every
		// attach leaves at least one), but keep the zero-value safe.
		g := t.vertices[0].Hash()
		return g, g
	}
	a := t.tips[rng.Intn(n)]
	b := t.tips[rng.Intn(n)]
	return t.vertices[a].Hash(), t.vertices[b].Hash()
}

// Has reports whether the vertex is attached.
func (t *Tangle) Has(h hashx.Hash) bool {
	_, ok := t.ids[h]
	return ok
}

// Get returns an attached vertex.
func (t *Tangle) Get(h hashx.Hash) (*Vertex, bool) {
	id, ok := t.ids[h]
	if !ok {
		return nil, false
	}
	return t.vertices[id], true
}

// Confirmed reports whether the vertex is attached and past the
// coverage threshold.
func (t *Tangle) Confirmed(h hashx.Hash) bool {
	id, ok := t.ids[h]
	return ok && t.flags[id]&confirmedFlag != 0
}

// Weight returns the accumulated future-cone weight of an attached
// vertex (frozen once confirmed).
func (t *Tangle) Weight(h hashx.Hash) int {
	id, ok := t.ids[h]
	if !ok {
		return 0
	}
	return int(t.weight[id])
}

// VertexCount is the number of attached vertices, genesis included.
func (t *Tangle) VertexCount() int { return len(t.vertices) }

// ConfirmedCount is the number of confirmed vertices, genesis included.
func (t *Tangle) ConfirmedCount() int { return t.confirmedCount }

// TipCount is the number of current tips.
func (t *Tangle) TipCount() int { return len(t.tips) }

// ParkedCount is the number of vertices waiting on missing parents.
func (t *Tangle) ParkedCount() int { return len(t.parkedOrder) }

// LedgerBytes is the modeled storage footprint: §V's size axis. One
// transaction per vertex means the whole graph is payload — there is no
// block header amortization to subtract.
func (t *Tangle) LedgerBytes() int { return len(t.vertices) * wireSize }

// AllVertices returns the attachment-ordered vertex stream — a
// topological order by construction, which is what makes it servable as
// the cold-start canonical stream: a puller attaching in this order
// never gaps (modulo network reordering, which parking absorbs).
func (t *Tangle) AllVertices() []*Vertex {
	out := make([]*Vertex, len(t.vertices))
	copy(out, t.vertices)
	return out
}

// VertexAt returns the i-th vertex in attachment order.
func (t *Tangle) VertexAt(i int) *Vertex { return t.vertices[i] }
