// Package orv implements Open Representative Voting, Nano's consensus
// (paper §III-B): accounts delegate their balance to representatives,
// whose votes are "weighted: a representative's weight is calculated as
// the sum of all balances for accounts that chose this representative".
// Conflicts are decided by weighted majority — "the winning transaction is
// the one that gained the most votes with regards to the voters weight" —
// while ordinary blocks are confirmed by the automatic first-seen votes of
// §IV-B. Confirmed blocks can be cemented, the planned finality feature
// the paper mentions ("block-cementing … will prevent transactions from
// being rolled back").
//
// The package is deliberately decoupled from the lattice: it tallies votes
// over abstract block hashes and a weight table, so the same machinery
// drives unit tests, the netsim network and the consensus experiments.
package orv

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/hashx"
	"repro/internal/keys"
)

// Weights is the representative weight table with online tracking: quorum
// is measured against the currently online voting weight, as in Nano.
type Weights struct {
	weight      map[keys.Address]uint64
	online      map[keys.Address]bool
	total       uint64
	onlineTotal uint64
}

// NewWeights builds a table from a rep→weight map (see
// lattice.RepWeights). All representatives start online.
func NewWeights(byRep map[keys.Address]uint64) *Weights {
	w := &Weights{
		weight: make(map[keys.Address]uint64, len(byRep)),
		online: make(map[keys.Address]bool, len(byRep)),
	}
	for rep, wt := range byRep {
		if wt == 0 {
			continue
		}
		w.weight[rep] = wt
		w.online[rep] = true
		w.total += wt
		w.onlineTotal += wt
	}
	return w
}

// WeightOf returns a representative's voting weight.
func (w *Weights) WeightOf(rep keys.Address) uint64 { return w.weight[rep] }

// Total returns the total delegated weight.
func (w *Weights) Total() uint64 { return w.total }

// OnlineTotal returns the online delegated weight, the quorum base.
func (w *Weights) OnlineTotal() uint64 { return w.onlineTotal }

// SetOnline marks a representative on- or offline, adjusting the quorum
// base (offline representatives model §IV-B's real-world vote loss).
func (w *Weights) SetOnline(rep keys.Address, online bool) {
	cur, known := w.online[rep]
	if !known || cur == online {
		return
	}
	w.online[rep] = online
	if online {
		w.onlineTotal += w.weight[rep]
	} else {
		w.onlineTotal -= w.weight[rep]
	}
}

// IsOnline reports whether the representative is marked online.
func (w *Weights) IsOnline(rep keys.Address) bool { return w.online[rep] }

// Update replaces a representative's weight (after re-delegation via a
// Change block) keeping totals consistent.
func (w *Weights) Update(rep keys.Address, newWeight uint64) {
	old := w.weight[rep]
	wasOnline, known := w.online[rep]
	if !known {
		if newWeight == 0 {
			return
		}
		w.weight[rep] = newWeight
		w.online[rep] = true
		w.total += newWeight
		w.onlineTotal += newWeight
		return
	}
	w.total += newWeight - old
	if wasOnline {
		w.onlineTotal += newWeight - old
	}
	if newWeight == 0 {
		delete(w.weight, rep)
		delete(w.online, rep)
		return
	}
	w.weight[rep] = newWeight
}

// Vote is a representative's signed statement for one block. Seq lets a
// representative switch its vote during conflict resolution: higher
// sequence numbers supersede lower ones.
type Vote struct {
	Rep    keys.Address
	Block  hashx.Hash
	Seq    uint64
	PubKey ed25519.PublicKey
	Sig    []byte

	// memoSelf/memoDigest cache a positive Verify outcome: the digest
	// that carried a valid signature, valid only while memoSelf still
	// points at this exact Vote value (a copied vote re-verifies). A
	// broadcast vote is one shared pointer delivered to every node, so
	// one ed25519 check serves the whole network; re-deriving the cheap
	// digest on every call keeps a vote whose content is mutated after a
	// successful check from riding the memo. Only success is cached.
	memoSelf   *Vote
	memoDigest hashx.Hash
}

// voteWireSize models the network cost of one vote message.
const voteWireSize = keys.AddressSize + hashx.Size + 8 + ed25519.PublicKeySize + ed25519.SignatureSize

// EncodedSize returns the modeled wire size of the vote.
func (v *Vote) EncodedSize() int { return voteWireSize }

// voteDigest computes the signed vote content digest. The buffer is a
// stack array: this runs once per vote per receiving node (every
// Verify re-derives it to guard the memo), so a heap buffer here was
// one allocation per delivered vote network-wide.
func voteDigest(v *Vote) hashx.Hash {
	var buf [keys.AddressSize + hashx.Size + 8]byte
	copy(buf[:keys.AddressSize], v.Rep[:])
	copy(buf[keys.AddressSize:], v.Block[:])
	binary.BigEndian.PutUint64(buf[keys.AddressSize+hashx.Size:], v.Seq)
	return hashx.Sum(buf[:])
}

// NewVote builds a signed vote by the representative key.
func NewVote(kp *keys.KeyPair, block hashx.Hash, seq uint64) *Vote {
	v := &Vote{Rep: kp.Address(), Block: block, Seq: seq, PubKey: kp.Pub}
	digest := voteDigest(v)
	v.Sig = kp.Sign(digest[:])
	return v
}

// Verify checks the vote signature and key/address binding. A positive
// outcome is memoized per pointer keyed by the content digest (see
// memoSelf): every node after the first pays only the digest hash, not
// ed25519 — and a vote mutated after a successful check re-verifies,
// because its digest no longer matches the memoized one.
func (v *Vote) Verify() bool {
	digest := voteDigest(v)
	if v.memoSelf == v && digest == v.memoDigest {
		return true
	}
	if keys.AddressOf(v.PubKey) != v.Rep {
		return false
	}
	if !keys.Verify(v.PubKey, digest[:], v.Sig) {
		return false
	}
	v.memoSelf = v
	v.memoDigest = digest
	return true
}

// Config tunes the tracker.
type Config struct {
	// QuorumFraction of the online weight a candidate must exceed to be
	// confirmed. The paper speaks of a "majority vote" (0.5); modern Nano
	// uses 0.67. Values outside (0,1) fall back to 0.5.
	QuorumFraction float64
}

// Tracker errors.
var (
	ErrBadVoteSig     = errors.New("orv: bad vote signature")
	ErrNotRep         = errors.New("orv: voter has no weight")
	ErrUnknownRoot    = errors.New("orv: no election for root")
	ErrNotCandidate   = errors.New("orv: vote for a non-candidate block")
	ErrAlreadyDecided = errors.New("orv: election already decided")
	ErrNotConfirmed   = errors.New("orv: block not confirmed")
	ErrCementConflict = errors.New("orv: conflicting block already cemented")
)

// repVote remembers a representative's current choice in an election.
type repVote struct {
	block hashx.Hash
	seq   uint64
}

// Election tallies weighted votes over a candidate set sharing one root
// (for forks, the contested predecessor; for plain confirmation, the block
// itself).
type Election struct {
	root       hashx.Hash
	candidates map[hashx.Hash]bool
	votes      map[keys.Address]repVote
	tallies    map[hashx.Hash]uint64
	decided    bool
	winner     hashx.Hash
}

// Outcome reports an election's state after a vote.
type Outcome struct {
	// Confirmed is true once a candidate exceeded the quorum.
	Confirmed bool
	// Winner is the confirmed candidate (zero until Confirmed).
	Winner hashx.Hash
	// Tally is the winner's (or current leader's) weight.
	Tally uint64
	// Quorum is the weight needed to confirm.
	Quorum uint64
}

// Tracker runs all live elections against one weight table.
type Tracker struct {
	weights   *Weights
	cfg       Config
	elections map[hashx.Hash]*Election
	confirmed map[hashx.Hash]bool
	cemented  map[hashx.Hash]bool
	// rootOf remembers which root a confirmed block belonged to.
	rootOf map[hashx.Hash]hashx.Hash
}

// NewTracker creates a tracker over the weight table.
func NewTracker(weights *Weights, cfg Config) *Tracker {
	if cfg.QuorumFraction <= 0 || cfg.QuorumFraction >= 1 {
		cfg.QuorumFraction = 0.5
	}
	return &Tracker{
		weights:   weights,
		cfg:       cfg,
		elections: make(map[hashx.Hash]*Election),
		confirmed: make(map[hashx.Hash]bool),
		cemented:  make(map[hashx.Hash]bool),
		rootOf:    make(map[hashx.Hash]hashx.Hash),
	}
}

// Weights returns the tracker's weight table.
func (t *Tracker) Weights() *Weights { return t.weights }

// QuorumWeight returns the weight a candidate must strictly exceed.
func (t *Tracker) QuorumWeight() uint64 {
	return uint64(t.cfg.QuorumFraction * float64(t.weights.OnlineTotal()))
}

// StartElection opens (or extends) the election for root with candidates.
// Reopening a decided election is an error.
func (t *Tracker) StartElection(root hashx.Hash, candidates ...hashx.Hash) error {
	e, ok := t.elections[root]
	if !ok {
		e = &Election{
			root:       root,
			candidates: make(map[hashx.Hash]bool),
			votes:      make(map[keys.Address]repVote),
			tallies:    make(map[hashx.Hash]uint64),
		}
		t.elections[root] = e
	}
	if e.decided {
		return ErrAlreadyDecided
	}
	for _, c := range candidates {
		e.candidates[c] = true
	}
	return nil
}

// HasElection reports whether a live or decided election exists for root.
func (t *Tracker) HasElection(root hashx.Hash) bool {
	_, ok := t.elections[root]
	return ok
}

// AdoptVotes copies the votes recorded for candidate in the election
// rooted at fromRoot into the (live) election rooted at toRoot. A fork
// election opened after representatives already voted in the candidates'
// plain single-candidate elections inherits that knowledge instead of
// waiting for re-broadcasts the vote dedup would discard. Votes are
// adopted in deterministic representative order and obey the same
// sequence rules as ProcessVote; the returned outcome reflects the target
// election afterward (it may have been decided by the adoption).
func (t *Tracker) AdoptVotes(toRoot, fromRoot, candidate hashx.Hash) (Outcome, error) {
	from, ok := t.elections[fromRoot]
	if !ok {
		return Outcome{}, ErrUnknownRoot
	}
	to, ok := t.elections[toRoot]
	if !ok {
		return Outcome{}, ErrUnknownRoot
	}
	if !to.candidates[candidate] {
		return t.outcomeOf(to), fmt.Errorf("%w: %s", ErrNotCandidate, candidate)
	}
	reps := make([]keys.Address, 0, len(from.votes))
	for rep, rv := range from.votes {
		if rv.block == candidate {
			reps = append(reps, rep)
		}
	}
	sort.Slice(reps, func(i, j int) bool { return bytes.Compare(reps[i][:], reps[j][:]) < 0 })
	for _, rep := range reps {
		if to.decided {
			break
		}
		rv := from.votes[rep]
		weight := t.weights.WeightOf(rep)
		if weight == 0 {
			continue
		}
		if prior, voted := to.votes[rep]; voted {
			if rv.seq <= prior.seq {
				continue
			}
			to.tallies[prior.block] -= weight
		}
		to.votes[rep] = repVote{block: candidate, seq: rv.seq}
		to.tallies[candidate] += weight
		if to.tallies[candidate] > t.QuorumWeight() {
			to.decided = true
			to.winner = candidate
			t.confirmed[candidate] = true
			t.rootOf[candidate] = toRoot
		}
	}
	return t.outcomeOf(to), nil
}

// ProcessVote verifies and tallies a vote in the election for root.
// A representative may switch candidates by voting with a higher Seq; the
// weight moves with it. The outcome reflects the election state after the
// vote.
func (t *Tracker) ProcessVote(root hashx.Hash, v *Vote) (Outcome, error) {
	e, ok := t.elections[root]
	if !ok {
		return Outcome{}, ErrUnknownRoot
	}
	if !v.Verify() {
		return Outcome{}, ErrBadVoteSig
	}
	weight := t.weights.WeightOf(v.Rep)
	if weight == 0 {
		return Outcome{}, fmt.Errorf("%w: %s", ErrNotRep, v.Rep)
	}
	if !e.candidates[v.Block] {
		return Outcome{}, fmt.Errorf("%w: %s", ErrNotCandidate, v.Block)
	}
	if e.decided {
		return t.outcomeOf(e), ErrAlreadyDecided
	}
	if prior, voted := e.votes[v.Rep]; voted {
		if v.Seq <= prior.seq {
			return t.outcomeOf(e), nil // stale or duplicate vote
		}
		e.tallies[prior.block] -= weight
	}
	e.votes[v.Rep] = repVote{block: v.Block, seq: v.Seq}
	e.tallies[v.Block] += weight

	if e.tallies[v.Block] > t.QuorumWeight() {
		e.decided = true
		e.winner = v.Block
		t.confirmed[v.Block] = true
		t.rootOf[v.Block] = root
	}
	return t.outcomeOf(e), nil
}

// leaderOf scans an election's tallies for the heaviest candidate. Ties
// break on the smaller hash: the map's iteration order must never leak
// into results (runs are reproducible bit for bit from a seed).
func leaderOf(e *Election) (hashx.Hash, uint64) {
	var lead hashx.Hash
	var best uint64
	for c, tally := range e.tallies {
		c := c
		if tally > best || (tally == best && tally > 0 && bytes.Compare(c[:], lead[:]) < 0) {
			best = tally
			lead = c
		}
	}
	return lead, best
}

// outcomeOf summarizes an election.
func (t *Tracker) outcomeOf(e *Election) Outcome {
	o := Outcome{Quorum: t.QuorumWeight()}
	if e.decided {
		o.Confirmed = true
		o.Winner = e.winner
		o.Tally = e.tallies[e.winner]
		return o
	}
	_, o.Tally = leaderOf(e)
	o.Winner = hashx.Zero // no winner until confirmed
	return o
}

// Leader returns the current leading candidate and tally for a live
// election (useful for §III-B's "most votes with regards to the voters
// weight" conflict view). Equal tallies resolve to the smaller hash, so
// the answer is deterministic.
func (t *Tracker) Leader(root hashx.Hash) (hashx.Hash, uint64, error) {
	e, ok := t.elections[root]
	if !ok {
		return hashx.Zero, 0, ErrUnknownRoot
	}
	lead, best := leaderOf(e)
	return lead, best, nil
}

// Confirmed reports whether a block won its election.
func (t *Tracker) Confirmed(h hashx.Hash) bool { return t.confirmed[h] }

// Winner returns the decided winner for a root.
func (t *Tracker) Winner(root hashx.Hash) (hashx.Hash, bool) {
	e, ok := t.elections[root]
	if !ok || !e.decided {
		return hashx.Zero, false
	}
	return e.winner, true
}

// Cement marks a confirmed block irreversible (§IV-B's planned
// block-cementing). Cementing an unconfirmed block is an error, as is
// cementing a block whose election another candidate won.
func (t *Tracker) Cement(h hashx.Hash) error {
	if !t.confirmed[h] {
		return ErrNotConfirmed
	}
	root := t.rootOf[h]
	if w, ok := t.Winner(root); ok && w != h {
		return ErrCementConflict
	}
	t.cemented[h] = true
	return nil
}

// IsCemented reports whether a block has been cemented.
func (t *Tracker) IsCemented(h hashx.Hash) bool { return t.cemented[h] }

// Stats summarizes tracker activity.
type Stats struct {
	LiveElections int
	Decided       int
	Confirmed     int
	Cemented      int
}

// Stats returns a snapshot of tracker activity.
func (t *Tracker) Stats() Stats {
	s := Stats{Confirmed: len(t.confirmed), Cemented: len(t.cemented)}
	for _, e := range t.elections {
		if e.decided {
			s.Decided++
		} else {
			s.LiveElections++
		}
	}
	return s
}
