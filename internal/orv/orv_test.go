package orv

import (
	"errors"
	"testing"

	"repro/internal/hashx"
	"repro/internal/keys"
)

func blockHash(name string) hashx.Hash { return hashx.Sum([]byte(name)) }

func weights(t *testing.T, byIdx map[int]uint64) (*Weights, *keys.Ring) {
	t.Helper()
	r := keys.NewRing("orv-test", 8)
	m := make(map[keys.Address]uint64, len(byIdx))
	for i, w := range byIdx {
		m[r.Addr(i)] = w
	}
	return NewWeights(m), r
}

func TestWeightsBasics(t *testing.T) {
	w, r := weights(t, map[int]uint64{0: 100, 1: 200, 2: 0})
	if w.Total() != 300 || w.OnlineTotal() != 300 {
		t.Fatalf("totals = %d/%d", w.Total(), w.OnlineTotal())
	}
	if w.WeightOf(r.Addr(2)) != 0 {
		t.Fatal("zero-weight rep should not register")
	}
	if !w.IsOnline(r.Addr(0)) {
		t.Fatal("reps start online")
	}
}

func TestWeightsOnlineToggle(t *testing.T) {
	w, r := weights(t, map[int]uint64{0: 100, 1: 200})
	w.SetOnline(r.Addr(1), false)
	if w.OnlineTotal() != 100 || w.Total() != 300 {
		t.Fatalf("offline not subtracted: %d/%d", w.OnlineTotal(), w.Total())
	}
	// Toggling twice is idempotent.
	w.SetOnline(r.Addr(1), false)
	if w.OnlineTotal() != 100 {
		t.Fatal("double offline double-subtracted")
	}
	w.SetOnline(r.Addr(1), true)
	if w.OnlineTotal() != 300 {
		t.Fatal("online not restored")
	}
	// Unknown rep is a no-op.
	w.SetOnline(keys.Deterministic("ghost").Address(), false)
	if w.OnlineTotal() != 300 {
		t.Fatal("unknown rep affected totals")
	}
}

func TestWeightsUpdateRedelegation(t *testing.T) {
	w, r := weights(t, map[int]uint64{0: 100, 1: 200})
	// Account re-delegates 50 from rep1 to rep0.
	w.Update(r.Addr(1), 150)
	w.Update(r.Addr(0), 150)
	if w.Total() != 300 || w.OnlineTotal() != 300 {
		t.Fatalf("re-delegation changed totals: %d/%d", w.Total(), w.OnlineTotal())
	}
	// New rep appears.
	w.Update(r.Addr(3), 40)
	if w.Total() != 340 || w.WeightOf(r.Addr(3)) != 40 {
		t.Fatal("new rep not registered")
	}
	// Rep drops to zero: removed.
	w.Update(r.Addr(3), 0)
	if w.Total() != 300 || w.IsOnline(r.Addr(3)) {
		t.Fatal("zeroed rep not removed")
	}
	// Offline rep update keeps online total consistent.
	w.SetOnline(r.Addr(1), false)
	w.Update(r.Addr(1), 100)
	if w.OnlineTotal() != 150 {
		t.Fatalf("offline update leaked into online total: %d", w.OnlineTotal())
	}
}

func TestVoteSignature(t *testing.T) {
	r := keys.NewRing("vote", 1)
	v := NewVote(r.Pair(0), blockHash("b"), 1)
	if !v.Verify() {
		t.Fatal("fresh vote rejected")
	}
	v.Seq = 2
	if v.Verify() {
		t.Fatal("tampered vote verified")
	}
	if v.EncodedSize() <= 0 {
		t.Fatal("vote size must be positive")
	}
}

// §IV-B: a transaction "is only confirmed when it receives a majority
// vote" — single-candidate election crossing quorum.
func TestSimpleConfirmation(t *testing.T) {
	w, r := weights(t, map[int]uint64{0: 40, 1: 35, 2: 25})
	tr := NewTracker(w, Config{QuorumFraction: 0.5})
	b := blockHash("tx-1")
	if err := tr.StartElection(b, b); err != nil {
		t.Fatal(err)
	}
	out, err := tr.ProcessVote(b, NewVote(r.Pair(0), b, 1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Confirmed {
		t.Fatal("40/100 should not confirm at majority quorum")
	}
	out, err = tr.ProcessVote(b, NewVote(r.Pair(1), b, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Confirmed || out.Winner != b || out.Tally != 75 {
		t.Fatalf("outcome = %+v", out)
	}
	if !tr.Confirmed(b) {
		t.Fatal("tracker did not record confirmation")
	}
}

// §III-B: "the winning transaction is the one that gained the most votes
// with regards to the voters weight" — fork election with vote switching.
func TestForkElectionWithVoteSwitching(t *testing.T) {
	w, r := weights(t, map[int]uint64{0: 40, 1: 35, 2: 25})
	tr := NewTracker(w, Config{QuorumFraction: 0.5})
	root := blockHash("contested-prev")
	a, b := blockHash("candidate-a"), blockHash("candidate-b")
	if err := tr.StartElection(root, a, b); err != nil {
		t.Fatal(err)
	}
	// Initial split: 40 for a, 35 for b — no quorum either way.
	tr.ProcessVote(root, NewVote(r.Pair(0), a, 1))
	tr.ProcessVote(root, NewVote(r.Pair(1), b, 1))
	lead, tally, err := tr.Leader(root)
	if err != nil || lead != a || tally != 40 {
		t.Fatalf("leader = %s/%d (%v)", lead, tally, err)
	}
	// Rep 1 switches to the leader (higher seq): 75 for a -> confirmed.
	out, err := tr.ProcessVote(root, NewVote(r.Pair(1), a, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Confirmed || out.Winner != a || out.Tally != 75 {
		t.Fatalf("outcome = %+v", out)
	}
	winner, ok := tr.Winner(root)
	if !ok || winner != a {
		t.Fatal("winner not recorded")
	}
	// Loser never confirmed.
	if tr.Confirmed(b) {
		t.Fatal("losing candidate confirmed")
	}
}

func TestStaleAndDuplicateVotesIgnored(t *testing.T) {
	w, r := weights(t, map[int]uint64{0: 60, 1: 60})
	tr := NewTracker(w, Config{})
	root := blockHash("root")
	a, b := blockHash("a"), blockHash("b")
	tr.StartElection(root, a, b)
	tr.ProcessVote(root, NewVote(r.Pair(0), a, 5))
	// Stale switch (lower seq) must not move weight.
	tr.ProcessVote(root, NewVote(r.Pair(0), b, 3))
	lead, tally, _ := tr.Leader(root)
	if lead != a || tally != 60 {
		t.Fatalf("stale vote moved weight: %s/%d", lead, tally)
	}
	// Duplicate (same seq) is a no-op as well.
	tr.ProcessVote(root, NewVote(r.Pair(0), a, 5))
	_, tally, _ = tr.Leader(root)
	if tally != 60 {
		t.Fatal("duplicate vote double counted")
	}
}

func TestProcessVoteErrors(t *testing.T) {
	w, r := weights(t, map[int]uint64{0: 100})
	tr := NewTracker(w, Config{})
	root := blockHash("root")
	a := blockHash("a")
	if _, err := tr.ProcessVote(root, NewVote(r.Pair(0), a, 1)); !errors.Is(err, ErrUnknownRoot) {
		t.Fatalf("err = %v", err)
	}
	tr.StartElection(root, a)
	// Non-candidate block.
	if _, err := tr.ProcessVote(root, NewVote(r.Pair(0), blockHash("x"), 1)); !errors.Is(err, ErrNotCandidate) {
		t.Fatalf("err = %v", err)
	}
	// Zero-weight voter.
	stranger := keys.Deterministic("stranger")
	if _, err := tr.ProcessVote(root, NewVote(stranger, a, 1)); !errors.Is(err, ErrNotRep) {
		t.Fatalf("err = %v", err)
	}
	// Bad signature.
	v := NewVote(r.Pair(0), a, 1)
	v.Sig[0] ^= 0xFF
	if _, err := tr.ProcessVote(root, v); !errors.Is(err, ErrBadVoteSig) {
		t.Fatalf("err = %v", err)
	}
	// Decided election rejects further elector changes and reports.
	if _, err := tr.ProcessVote(root, NewVote(r.Pair(0), a, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.StartElection(root, blockHash("late")); !errors.Is(err, ErrAlreadyDecided) {
		t.Fatalf("err = %v", err)
	}
	if out, err := tr.ProcessVote(root, NewVote(r.Pair(0), a, 9)); !errors.Is(err, ErrAlreadyDecided) || !out.Confirmed {
		t.Fatalf("err = %v out = %+v", err, out)
	}
}

// Offline representatives shrink the quorum base, keeping liveness when
// voters disappear (§IV-B's real-world condition).
func TestQuorumAgainstOnlineWeight(t *testing.T) {
	w, r := weights(t, map[int]uint64{0: 30, 1: 30, 2: 40})
	tr := NewTracker(w, Config{QuorumFraction: 0.5})
	b := blockHash("tx")
	tr.StartElection(b, b)
	// With rep 2 (40) offline, online total is 60; 30+30 > 30 confirms.
	w.SetOnline(r.Addr(2), false)
	tr.ProcessVote(b, NewVote(r.Pair(0), b, 1))
	out, err := tr.ProcessVote(b, NewVote(r.Pair(1), b, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Confirmed {
		t.Fatalf("quorum not reduced by offline rep: %+v", out)
	}
}

func TestCementing(t *testing.T) {
	w, r := weights(t, map[int]uint64{0: 100})
	tr := NewTracker(w, Config{})
	b := blockHash("tx")
	tr.StartElection(b, b)
	if err := tr.Cement(b); !errors.Is(err, ErrNotConfirmed) {
		t.Fatalf("err = %v", err)
	}
	tr.ProcessVote(b, NewVote(r.Pair(0), b, 1))
	if err := tr.Cement(b); err != nil {
		t.Fatal(err)
	}
	if !tr.IsCemented(b) {
		t.Fatal("cement not recorded")
	}
	st := tr.Stats()
	if st.Cemented != 1 || st.Confirmed != 1 || st.Decided != 1 || st.LiveElections != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTrackerConfigFallback(t *testing.T) {
	w, _ := weights(t, map[int]uint64{0: 100})
	for _, q := range []float64{0, -1, 1, 2} {
		tr := NewTracker(w, Config{QuorumFraction: q})
		if tr.QuorumWeight() != 50 {
			t.Fatalf("fraction %g: quorum = %d, want 50", q, tr.QuorumWeight())
		}
	}
	tr := NewTracker(w, Config{QuorumFraction: 0.67})
	if tr.QuorumWeight() != 67 {
		t.Fatalf("quorum = %d, want 67", tr.QuorumWeight())
	}
}

func BenchmarkProcessVote(b *testing.B) {
	r := keys.NewRing("bench-orv", 64)
	m := make(map[keys.Address]uint64, 64)
	for i := 0; i < 64; i++ {
		m[r.Addr(i)] = 100
	}
	w := NewWeights(m)
	tr := NewTracker(w, Config{QuorumFraction: 0.99})
	root := blockHash("root")
	cand := blockHash("cand")
	tr.StartElection(root, cand)
	// Leave one representative silent so the 0.99 quorum is never
	// reached and the election stays live for the whole measurement.
	votes := make([]*Vote, 63)
	for i := range votes {
		votes[i] = NewVote(r.Pair(i), cand, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.ProcessVote(root, votes[i%63]); err != nil {
			b.Fatal(err)
		}
	}
}
