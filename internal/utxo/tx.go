// Package utxo implements a Bitcoin-style ledger (paper §II-A, reference
// implementation #1): transactions spend unspent transaction outputs,
// blocks bundle transactions under a Merkle root, miners collect fees plus
// a halving block subsidy, and the mempool holds the pending-transaction
// backlog that §VI quotes at 186,951 for Bitcoin. Block bodies satisfy
// chain.Payload, so the generic fork-choice/reorg machinery of
// internal/chain drives the ledger's view of history.
package utxo

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/merkle"
)

// Modeled wire sizes in bytes, calibrated to Bitcoin's typical encoding so
// the ledger-size experiments of §V produce realistic byte counts.
const (
	outpointWireSize = hashx.Size + 4
	txOutWireSize    = 8 + keys.AddressSize
	txInWireSize     = outpointWireSize + ed25519.SignatureSize + ed25519.PublicKeySize
	txOverheadSize   = 10
)

// Outpoint references one output of a prior transaction.
type Outpoint struct {
	TxID  hashx.Hash
	Index uint32
}

// String renders the outpoint for logs.
func (o Outpoint) String() string { return fmt.Sprintf("%s:%d", o.TxID, o.Index) }

// TxOut is a spendable output: an amount locked to an address.
type TxOut struct {
	Value uint64
	Owner keys.Address
}

// TxIn spends a prior output by proving ownership with an ed25519
// signature over the transaction's SigHash.
type TxIn struct {
	Prev   Outpoint
	PubKey ed25519.PublicKey
	Sig    []byte
}

// Tx is a transfer of value from its inputs to its outputs. A coinbase
// transaction has no inputs; CoinbaseHeight makes each one unique, the
// role Bitcoin gives the height it requires in the coinbase script.
type Tx struct {
	Ins            []TxIn
	Outs           []TxOut
	CoinbaseHeight uint64

	// memoSigSelf/memoSigsOK cache an all-inputs-signatures-valid verdict
	// while memoSigSelf still points at this exact Tx value (a copied Tx
	// re-verifies). The signatures cover SigHash — pure transaction
	// content — so the verdict holds at every ledger the same pointer is
	// submitted to; the state-dependent checks (output existence, owner
	// binding, amounts) are NOT cached and re-run per ledger. Only
	// success is cached: a failing input re-verifies on every call.
	memoSigSelf *Tx
	memoSigsOK  bool
}

// IsCoinbase reports whether the transaction mints the block reward.
func (tx *Tx) IsCoinbase() bool { return len(tx.Ins) == 0 }

// EncodedSize returns the modeled wire size.
func (tx *Tx) EncodedSize() int {
	return txOverheadSize + len(tx.Ins)*txInWireSize + len(tx.Outs)*txOutWireSize
}

// sigBytes serializes the signature-covered portion: every input's
// outpoint, every output, and the coinbase height. Typical payments (a
// few ins/outs) serialize into the caller's stack scratch via SigHash
// and ID; larger transactions spill to the heap on append.
func (tx *Tx) appendSigBytes(buf []byte) []byte {
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], tx.CoinbaseHeight)
	buf = append(buf, scratch[:]...)
	for _, in := range tx.Ins {
		buf = append(buf, in.Prev.TxID[:]...)
		binary.BigEndian.PutUint32(scratch[:4], in.Prev.Index)
		buf = append(buf, scratch[:4]...)
	}
	for _, out := range tx.Outs {
		binary.BigEndian.PutUint64(scratch[:], out.Value)
		buf = append(buf, scratch[:]...)
		buf = append(buf, out.Owner[:]...)
	}
	return buf
}

// sigScratch fits the signed portion of a several-input payment on the
// caller's stack.
type sigScratch [512]byte

// SigHash is the digest each input signs.
func (tx *Tx) SigHash() hashx.Hash {
	var sb sigScratch
	return hashx.Sum(tx.appendSigBytes(sb[:0]))
}

// ID returns the transaction identifier, covering signatures as well.
func (tx *Tx) ID() hashx.Hash {
	var sb sigScratch
	buf := tx.appendSigBytes(sb[:0])
	for _, in := range tx.Ins {
		buf = append(buf, in.PubKey...)
		buf = append(buf, in.Sig...)
	}
	return hashx.SumDouble(buf)
}

// Sign fills in the i-th input's public key and signature.
func (tx *Tx) Sign(i int, kp *keys.KeyPair) error {
	if i < 0 || i >= len(tx.Ins) {
		return fmt.Errorf("utxo: sign: input %d out of range", i)
	}
	digest := tx.SigHash()
	tx.Ins[i].PubKey = kp.Pub
	tx.Ins[i].Sig = kp.Sign(digest[:])
	return nil
}

// SignAll signs every input with the same key.
func (tx *Tx) SignAll(kp *keys.KeyPair) {
	digest := tx.SigHash()
	sig := kp.Sign(digest[:])
	for i := range tx.Ins {
		tx.Ins[i].PubKey = kp.Pub
		tx.Ins[i].Sig = sig
	}
}

// NewCoinbase builds the reward transaction for a block at the given
// height paying value to the miner.
func NewCoinbase(height uint64, miner keys.Address, value uint64) *Tx {
	return &Tx{
		CoinbaseHeight: height,
		Outs:           []TxOut{{Value: value, Owner: miner}},
	}
}

// Subsidy returns the block reward at a height under a Bitcoin-style
// halving schedule. It reaches zero after 64 halvings.
func Subsidy(height, initial, halvingInterval uint64) uint64 {
	if halvingInterval == 0 {
		return initial
	}
	halvings := height / halvingInterval
	if halvings >= 64 {
		return 0
	}
	return initial >> halvings
}

// BlockBody is the transaction list carried by a block; it satisfies
// chain.Payload with a Merkle-root commitment (§II-A, Fig. 1).
type BlockBody struct {
	Txs []*Tx
}

// Verify interface compliance at compile time.
var _ interface {
	Root() hashx.Hash
	Size() int
	TxCount() int
} = (*BlockBody)(nil)

// Root returns the Merkle root over the transaction IDs.
func (b *BlockBody) Root() hashx.Hash {
	ids := make([]hashx.Hash, len(b.Txs))
	for i, tx := range b.Txs {
		ids[i] = tx.ID()
	}
	return merkle.RootOfHashes(ids)
}

// Size returns the summed modeled wire size of all transactions.
func (b *BlockBody) Size() int {
	sz := 0
	for _, tx := range b.Txs {
		sz += tx.EncodedSize()
	}
	return sz
}

// TxCount returns the number of transactions.
func (b *BlockBody) TxCount() int { return len(b.Txs) }

// Validation errors.
var (
	ErrMissingOutput = errors.New("utxo: input spends unknown or already-spent output")
	ErrBadSignature  = errors.New("utxo: bad input signature")
	ErrWrongOwner    = errors.New("utxo: public key does not match output owner")
	ErrValueOverflow = errors.New("utxo: value overflow")
	ErrInsufficient  = errors.New("utxo: inputs worth less than outputs")
	ErrCoinbaseValue = errors.New("utxo: coinbase exceeds subsidy plus fees")
)

// Set is the unspent-transaction-output set: the ledger state a Bitcoin
// node needs to validate new transactions. An owner index keeps
// per-address coin selection O(own outputs) instead of O(whole set).
type Set struct {
	outs     map[Outpoint]TxOut
	byOwner  map[keys.Address]map[Outpoint]struct{}
	balances map[keys.Address]uint64
	total    uint64
}

// NewSet returns an empty UTXO set.
func NewSet() *Set {
	return &Set{
		outs:     make(map[Outpoint]TxOut),
		byOwner:  make(map[keys.Address]map[Outpoint]struct{}),
		balances: make(map[keys.Address]uint64),
	}
}

// Len returns the number of unspent outputs.
func (s *Set) Len() int { return len(s.outs) }

// TotalValue returns the sum of all unspent outputs: total supply.
func (s *Set) TotalValue() uint64 { return s.total }

// Balance returns the summed unspent value owned by addr.
func (s *Set) Balance(addr keys.Address) uint64 { return s.balances[addr] }

// Get looks up an unspent output.
func (s *Set) Get(op Outpoint) (TxOut, bool) {
	out, ok := s.outs[op]
	return out, ok
}

// OutpointsOf returns the unspent outpoints owned by addr. Order is
// unspecified; callers that need determinism sort by value/ID themselves.
func (s *Set) OutpointsOf(addr keys.Address) []Outpoint {
	owned := s.byOwner[addr]
	out := make([]Outpoint, 0, len(owned))
	for op := range owned {
		out = append(out, op)
	}
	return out
}

func (s *Set) add(op Outpoint, out TxOut) {
	s.outs[op] = out
	owned, ok := s.byOwner[out.Owner]
	if !ok {
		owned = make(map[Outpoint]struct{})
		s.byOwner[out.Owner] = owned
	}
	owned[op] = struct{}{}
	s.balances[out.Owner] += out.Value
	s.total += out.Value
}

func (s *Set) remove(op Outpoint) (TxOut, bool) {
	out, ok := s.outs[op]
	if !ok {
		return TxOut{}, false
	}
	delete(s.outs, op)
	if owned, ok := s.byOwner[out.Owner]; ok {
		delete(owned, op)
		if len(owned) == 0 {
			delete(s.byOwner, out.Owner)
		}
	}
	s.balances[out.Owner] -= out.Value
	if s.balances[out.Owner] == 0 {
		delete(s.balances, out.Owner)
	}
	s.total -= out.Value
	return out, true
}

// CheckTx validates a non-coinbase transaction against the set without
// mutating it, returning the fee it pays.
func (s *Set) CheckTx(tx *Tx) (fee uint64, err error) {
	if tx.IsCoinbase() {
		return 0, errors.New("utxo: CheckTx does not accept coinbase transactions")
	}
	// Signatures cover pure transaction content, so one verified pass
	// serves every ledger this pointer reaches (the memo); the state
	// checks below always re-run against this set.
	sigsMemoed := tx.memoSigSelf == tx && tx.memoSigsOK
	var digest hashx.Hash
	if !sigsMemoed {
		digest = tx.SigHash()
	}
	var inSum uint64
	seen := make(map[Outpoint]bool, len(tx.Ins))
	for i, in := range tx.Ins {
		if seen[in.Prev] {
			return 0, fmt.Errorf("%w: duplicate input %s", ErrMissingOutput, in.Prev)
		}
		seen[in.Prev] = true
		out, ok := s.outs[in.Prev]
		if !ok {
			return 0, fmt.Errorf("%w: %s", ErrMissingOutput, in.Prev)
		}
		if keys.AddressOf(in.PubKey) != out.Owner {
			return 0, fmt.Errorf("%w: input %d", ErrWrongOwner, i)
		}
		if !sigsMemoed && !keys.Verify(in.PubKey, digest[:], in.Sig) {
			return 0, fmt.Errorf("%w: input %d", ErrBadSignature, i)
		}
		next := inSum + out.Value
		if next < inSum {
			return 0, ErrValueOverflow
		}
		inSum = next
	}
	// Every input signature verified (or was already memoed as valid).
	tx.memoSigSelf = tx
	tx.memoSigsOK = true
	var outSum uint64
	for _, out := range tx.Outs {
		next := outSum + out.Value
		if next < outSum {
			return 0, ErrValueOverflow
		}
		outSum = next
	}
	if inSum < outSum {
		return 0, fmt.Errorf("%w: in=%d out=%d", ErrInsufficient, inSum, outSum)
	}
	return inSum - outSum, nil
}

// spentOutput records one consumed output for undo.
type spentOutput struct {
	op  Outpoint
	out TxOut
}

// Undo journals one applied block so a reorg can disconnect it (§IV-A:
// abandoned blocks' effects must be reverted and their transactions
// re-included).
type Undo struct {
	spent   []spentOutput
	created []Outpoint
}

// ApplyTx validates and applies one transaction, journaling into undo.
func (s *Set) applyTx(tx *Tx, undo *Undo) (fee uint64, err error) {
	if !tx.IsCoinbase() {
		fee, err = s.CheckTx(tx)
		if err != nil {
			return 0, err
		}
	}
	for _, in := range tx.Ins {
		out, _ := s.remove(in.Prev)
		undo.spent = append(undo.spent, spentOutput{op: in.Prev, out: out})
	}
	id := tx.ID()
	for i, out := range tx.Outs {
		op := Outpoint{TxID: id, Index: uint32(i)}
		s.add(op, out)
		undo.created = append(undo.created, op)
	}
	return fee, nil
}

// ApplyBlock validates and applies a block body: non-coinbase transactions
// first (accumulating fees), then the coinbase, whose outputs may mint at
// most subsidy+fees. On any failure the set is left unchanged.
func (s *Set) ApplyBlock(body *BlockBody, subsidy uint64) (*Undo, error) {
	undo := &Undo{}
	var fees uint64
	var coinbase *Tx
	for i, tx := range body.Txs {
		if tx.IsCoinbase() {
			if coinbase != nil {
				s.UndoBlock(undo)
				return nil, errors.New("utxo: multiple coinbase transactions")
			}
			if i != 0 {
				s.UndoBlock(undo)
				return nil, errors.New("utxo: coinbase must be first")
			}
			coinbase = tx
			continue
		}
		fee, err := s.applyTx(tx, undo)
		if err != nil {
			s.UndoBlock(undo)
			return nil, fmt.Errorf("utxo: tx %d: %w", i, err)
		}
		fees += fee
	}
	if coinbase != nil {
		var mint uint64
		for _, out := range coinbase.Outs {
			mint += out.Value
		}
		if mint > subsidy+fees {
			s.UndoBlock(undo)
			return nil, fmt.Errorf("%w: mint=%d allowed=%d", ErrCoinbaseValue, mint, subsidy+fees)
		}
		if _, err := s.applyTx(coinbase, undo); err != nil {
			s.UndoBlock(undo)
			return nil, err
		}
	}
	return undo, nil
}

// UndoBlock reverses an applied block: created outputs are removed and
// spent outputs restored, in reverse order.
func (s *Set) UndoBlock(undo *Undo) {
	for i := len(undo.created) - 1; i >= 0; i-- {
		s.remove(undo.created[i])
	}
	for i := len(undo.spent) - 1; i >= 0; i-- {
		s.add(undo.spent[i].op, undo.spent[i].out)
	}
}
