package utxo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
	"repro/internal/hashx"
	"repro/internal/keys"
)

// testParams keeps difficulty and block size small for unit tests.
func testParams() Params {
	p := DefaultParams()
	p.InitialDifficulty = 1
	p.MaxBlockBytes = 100_000
	return p
}

// ring returns n deterministic identities for a test.
func ring(n int) *keys.Ring { return keys.NewRing("utxo-test", n) }

// newTestLedger funds the first nFunded ring accounts with 1000 units each.
func newTestLedger(t *testing.T, r *keys.Ring, nFunded int) *Ledger {
	t.Helper()
	alloc := make(map[keys.Address]uint64, nFunded)
	for i := 0; i < nFunded; i++ {
		alloc[r.Addr(i)] = 1000
	}
	l, err := NewLedger(alloc, testParams())
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	return l
}

func TestSubsidyHalving(t *testing.T) {
	cases := []struct {
		height uint64
		want   uint64
	}{
		{0, 50}, {209_999, 50}, {210_000, 25}, {419_999, 25}, {420_000, 12},
		{210_000 * 64, 0}, {210_000 * 100, 0},
	}
	for _, tc := range cases {
		if got := Subsidy(tc.height, 50, 210_000); got != tc.want {
			t.Fatalf("Subsidy(%d) = %d, want %d", tc.height, got, tc.want)
		}
	}
	if Subsidy(5, 50, 0) != 50 {
		t.Fatal("zero halving interval should mean no halving")
	}
}

func TestTxIDCoversSignature(t *testing.T) {
	r := ring(2)
	tx := &Tx{
		Ins:  []TxIn{{Prev: Outpoint{TxID: hashx.Sum([]byte("prev")), Index: 0}}},
		Outs: []TxOut{{Value: 10, Owner: r.Addr(1)}},
	}
	if err := tx.Sign(0, r.Pair(0)); err != nil {
		t.Fatal(err)
	}
	id1 := tx.ID()
	tx.Ins[0].Sig[0] ^= 0xFF
	if tx.ID() == id1 {
		t.Fatal("signature change should change the tx ID")
	}
	if err := tx.Sign(5, r.Pair(0)); err == nil {
		t.Fatal("signing out-of-range input should fail")
	}
}

func TestSigHashExcludesSignature(t *testing.T) {
	r := ring(1)
	tx := &Tx{Ins: []TxIn{{Prev: Outpoint{Index: 1}}}, Outs: []TxOut{{Value: 1, Owner: r.Addr(0)}}}
	before := tx.SigHash()
	tx.SignAll(r.Pair(0))
	if tx.SigHash() != before {
		t.Fatal("SigHash must not cover signatures")
	}
}

func TestSetApplyAndCheck(t *testing.T) {
	r := ring(3)
	set := NewSet()
	fund := NewCoinbase(1, r.Addr(0), 100)
	undo := &Undo{}
	if _, err := set.applyTx(fund, undo); err != nil {
		t.Fatal(err)
	}
	if set.Balance(r.Addr(0)) != 100 || set.TotalValue() != 100 || set.Len() != 1 {
		t.Fatalf("post-fund set wrong: bal=%d total=%d len=%d",
			set.Balance(r.Addr(0)), set.TotalValue(), set.Len())
	}

	pay := &Tx{
		Ins: []TxIn{{Prev: Outpoint{TxID: fund.ID(), Index: 0}}},
		Outs: []TxOut{
			{Value: 60, Owner: r.Addr(1)},
			{Value: 30, Owner: r.Addr(0)}, // change; 10 is fee
		},
	}
	pay.SignAll(r.Pair(0))
	fee, err := set.CheckTx(pay)
	if err != nil {
		t.Fatal(err)
	}
	if fee != 10 {
		t.Fatalf("fee = %d, want 10", fee)
	}
}

func TestCheckTxRejections(t *testing.T) {
	r := ring(3)
	set := NewSet()
	fund := NewCoinbase(1, r.Addr(0), 100)
	set.applyTx(fund, &Undo{})
	op := Outpoint{TxID: fund.ID(), Index: 0}

	t.Run("missing output", func(t *testing.T) {
		tx := &Tx{Ins: []TxIn{{Prev: Outpoint{TxID: hashx.Sum([]byte("no")), Index: 0}}},
			Outs: []TxOut{{Value: 1, Owner: r.Addr(1)}}}
		tx.SignAll(r.Pair(0))
		if _, err := set.CheckTx(tx); !errors.Is(err, ErrMissingOutput) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate input", func(t *testing.T) {
		tx := &Tx{Ins: []TxIn{{Prev: op}, {Prev: op}},
			Outs: []TxOut{{Value: 1, Owner: r.Addr(1)}}}
		tx.SignAll(r.Pair(0))
		if _, err := set.CheckTx(tx); !errors.Is(err, ErrMissingOutput) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("wrong owner", func(t *testing.T) {
		tx := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 1, Owner: r.Addr(1)}}}
		tx.SignAll(r.Pair(1)) // signed by non-owner
		if _, err := set.CheckTx(tx); !errors.Is(err, ErrWrongOwner) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad signature", func(t *testing.T) {
		tx := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 1, Owner: r.Addr(1)}}}
		tx.SignAll(r.Pair(0))
		tx.Ins[0].Sig[0] ^= 0xFF
		if _, err := set.CheckTx(tx); !errors.Is(err, ErrBadSignature) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("overspend", func(t *testing.T) {
		tx := &Tx{Ins: []TxIn{{Prev: op}}, Outs: []TxOut{{Value: 101, Owner: r.Addr(1)}}}
		tx.SignAll(r.Pair(0))
		if _, err := set.CheckTx(tx); !errors.Is(err, ErrInsufficient) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("coinbase refused", func(t *testing.T) {
		if _, err := set.CheckTx(NewCoinbase(2, r.Addr(0), 1)); err == nil {
			t.Fatal("CheckTx should refuse coinbase")
		}
	})
}

func TestApplyBlockAndUndoRoundTrip(t *testing.T) {
	r := ring(3)
	set := NewSet()
	fund := NewCoinbase(1, r.Addr(0), 100)
	set.applyTx(fund, &Undo{})

	pay := &Tx{
		Ins:  []TxIn{{Prev: Outpoint{TxID: fund.ID(), Index: 0}}},
		Outs: []TxOut{{Value: 90, Owner: r.Addr(1)}}, // fee 10
	}
	pay.SignAll(r.Pair(0))
	coinbase := NewCoinbase(2, r.Addr(2), 50+10) // subsidy + fees
	body := &BlockBody{Txs: []*Tx{coinbase, pay}}

	totalBefore := set.TotalValue()
	undo, err := set.ApplyBlock(body, 50)
	if err != nil {
		t.Fatal(err)
	}
	if set.Balance(r.Addr(1)) != 90 || set.Balance(r.Addr(2)) != 60 || set.Balance(r.Addr(0)) != 0 {
		t.Fatalf("balances wrong: %d/%d/%d",
			set.Balance(r.Addr(0)), set.Balance(r.Addr(1)), set.Balance(r.Addr(2)))
	}
	// Supply grew by exactly the subsidy (fees just moved).
	if set.TotalValue() != totalBefore+50 {
		t.Fatalf("supply = %d, want %d", set.TotalValue(), totalBefore+50)
	}
	set.UndoBlock(undo)
	if set.Balance(r.Addr(0)) != 100 || set.TotalValue() != totalBefore || set.Len() != 1 {
		t.Fatal("undo did not restore the set")
	}
}

func TestApplyBlockCoinbaseRules(t *testing.T) {
	r := ring(2)
	set := NewSet()
	fund := NewCoinbase(1, r.Addr(0), 100)
	set.applyTx(fund, &Undo{})

	t.Run("greedy coinbase rejected", func(t *testing.T) {
		body := &BlockBody{Txs: []*Tx{NewCoinbase(2, r.Addr(1), 51)}}
		if _, err := set.ApplyBlock(body, 50); !errors.Is(err, ErrCoinbaseValue) {
			t.Fatalf("err = %v", err)
		}
		if set.Len() != 1 {
			t.Fatal("failed apply must leave set unchanged")
		}
	})
	t.Run("coinbase not first rejected", func(t *testing.T) {
		pay := &Tx{Ins: []TxIn{{Prev: Outpoint{TxID: fund.ID(), Index: 0}}},
			Outs: []TxOut{{Value: 100, Owner: r.Addr(1)}}}
		pay.SignAll(r.Pair(0))
		body := &BlockBody{Txs: []*Tx{pay, NewCoinbase(2, r.Addr(1), 50)}}
		if _, err := set.ApplyBlock(body, 50); err == nil {
			t.Fatal("coinbase in position 1 accepted")
		}
		if set.Balance(r.Addr(0)) != 100 {
			t.Fatal("failed apply must roll back partial state")
		}
	})
	t.Run("two coinbases rejected", func(t *testing.T) {
		body := &BlockBody{Txs: []*Tx{NewCoinbase(2, r.Addr(1), 25), NewCoinbase(3, r.Addr(1), 25)}}
		if _, err := set.ApplyBlock(body, 50); err == nil {
			t.Fatal("two coinbases accepted")
		}
	})
}

// Property: random valid payment chains conserve value minus fees, and
// undoing everything restores the initial state exactly.
func TestQuickValueConservation(t *testing.T) {
	r := ring(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := NewSet()
		fund := NewCoinbase(1, r.Addr(0), 1_000_000)
		set.applyTx(fund, &Undo{})
		supply := set.TotalValue()

		var undos []*Undo
		for round := 0; round < 5; round++ {
			// Pick a funded sender and pay a random recipient.
			var sender int
			for i := 0; i < 8; i++ {
				if set.Balance(r.Addr(i)) > 100 {
					sender = i
					break
				}
			}
			to := rng.Intn(8)
			amount := uint64(rng.Intn(50) + 1)
			fee := uint64(rng.Intn(5))
			tx, err := NewPayment(set, r.Pair(sender), r.Addr(to), amount, fee)
			if err != nil {
				return false
			}
			coinbase := NewCoinbase(uint64(round+2), r.Addr(7), 50+fee)
			undo, err := set.ApplyBlock(&BlockBody{Txs: []*Tx{coinbase, tx}}, 50)
			if err != nil {
				return false
			}
			undos = append(undos, undo)
			supply += 50
			if set.TotalValue() != supply {
				return false
			}
		}
		for i := len(undos) - 1; i >= 0; i-- {
			set.UndoBlock(undos[i])
		}
		return set.TotalValue() == 1_000_000 && set.Balance(r.Addr(0)) == 1_000_000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMempoolOrderingAndConflicts(t *testing.T) {
	r := ring(4)
	set := NewSet()
	// Three outputs for account 0 so we can build three independent txs.
	for i := 0; i < 3; i++ {
		set.applyTx(NewCoinbase(uint64(i+1), r.Addr(0), 100), &Undo{})
	}
	pool := NewMempool(set)
	ops := set.OutpointsOf(r.Addr(0))

	mkTx := func(op Outpoint, fee uint64) *Tx {
		tx := &Tx{Ins: []TxIn{{Prev: op}},
			Outs: []TxOut{{Value: 100 - fee, Owner: r.Addr(1)}}}
		tx.SignAll(r.Pair(0))
		return tx
	}
	low := mkTx(ops[0], 1)
	mid := mkTx(ops[1], 5)
	high := mkTx(ops[2], 20)
	for _, tx := range []*Tx{low, mid, high} {
		if err := pool.Add(tx); err != nil {
			t.Fatal(err)
		}
	}
	if pool.Len() != 3 || pool.Bytes() == 0 {
		t.Fatalf("pool len=%d bytes=%d", pool.Len(), pool.Bytes())
	}
	if err := pool.Add(low); !errors.Is(err, ErrPoolDup) {
		t.Fatalf("duplicate add err = %v", err)
	}
	// A conflicting spend of ops[0] must be rejected (first-seen rule).
	rival := mkTx(ops[0], 50)
	if err := pool.Add(rival); !errors.Is(err, ErrPoolConflict) {
		t.Fatalf("conflict err = %v", err)
	}
	// Assembly must order by fee rate.
	txs := pool.Assemble(1_000_000)
	if len(txs) != 3 {
		t.Fatalf("assembled %d txs", len(txs))
	}
	if txs[0].ID() != high.ID() || txs[2].ID() != low.ID() {
		t.Fatal("assembly not fee-ordered")
	}
	// A tight budget takes only the best-paying tx.
	small := pool.Assemble(high.EncodedSize())
	if len(small) != 1 || small[0].ID() != high.ID() {
		t.Fatal("size-capped assembly wrong")
	}
	// Confirming high evicts it; confirming a rival spend evicts victims.
	pool.RemoveConfirmed([]*Tx{high})
	if pool.Contains(high.ID()) {
		t.Fatal("confirmed tx still pooled")
	}
	if _, ok := pool.FeeOf(mid.ID()); !ok {
		t.Fatal("unrelated tx evicted")
	}
}

func TestMempoolRejectsCoinbaseAndUnfunded(t *testing.T) {
	r := ring(2)
	set := NewSet()
	pool := NewMempool(set)
	if err := pool.Add(NewCoinbase(1, r.Addr(0), 50)); err == nil {
		t.Fatal("coinbase pooled")
	}
	tx := &Tx{Ins: []TxIn{{Prev: Outpoint{TxID: hashx.Sum([]byte("x")), Index: 0}}},
		Outs: []TxOut{{Value: 1, Owner: r.Addr(1)}}}
	tx.SignAll(r.Pair(0))
	if err := pool.Add(tx); err == nil {
		t.Fatal("unfunded tx pooled")
	}
}

func TestLedgerMineAndConfirm(t *testing.T) {
	r := ring(4)
	l := newTestLedger(t, r, 2)
	miner := r.Addr(3)

	tx, err := NewPayment(l.UTXOSet(), r.Pair(0), r.Addr(2), 250, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	b := l.BuildBlock(miner, time.Minute)
	if b.TxCount() != 2 { // coinbase + payment
		t.Fatalf("block has %d txs", b.TxCount())
	}
	res, err := l.ProcessBlock(b)
	if err != nil || res.Status != chain.Accepted {
		t.Fatalf("ProcessBlock: %v %v", res.Status, err)
	}
	if l.Balance(r.Addr(2)) != 250 {
		t.Fatalf("recipient balance = %d", l.Balance(r.Addr(2)))
	}
	if l.Balance(r.Addr(0)) != 1000-255 {
		t.Fatalf("sender balance = %d", l.Balance(r.Addr(0)))
	}
	wantMiner := Subsidy(1, l.Params().InitialSubsidy, l.Params().HalvingInterval) + 5
	if l.Balance(miner) != wantMiner {
		t.Fatalf("miner balance = %d, want %d", l.Balance(miner), wantMiner)
	}
	if got := l.Confirmations(tx.ID()); got != 1 {
		t.Fatalf("confirmations = %d, want 1", got)
	}
	if l.Pool().Len() != 0 {
		t.Fatal("mined tx still pooled")
	}
	// More blocks deepen the confirmation.
	for i := 0; i < 5; i++ {
		b := l.BuildBlock(miner, time.Duration(i+2)*time.Minute)
		if _, err := l.ProcessBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Confirmations(tx.ID()); got != 6 {
		t.Fatalf("confirmations = %d, want 6", got)
	}
}

// The §IV-A double-spend story end to end: a payment confirmed on the main
// chain is reversed when a heavier attacker branch with a conflicting
// spend reorganizes the ledger; the merchant's confirmations drop to 0.
func TestLedgerReorgDoubleSpend(t *testing.T) {
	r := ring(4)
	attacker, victim, minerA, minerB := r.Pair(0), r.Addr(1), r.Addr(2), r.Addr(3)
	l := newTestLedger(t, r, 1) // only attacker funded

	// Honest branch: attacker pays the victim, block mined on top.
	honest, err := NewPayment(l.UTXOSet(), attacker, victim, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SubmitTx(honest); err != nil {
		t.Fatal(err)
	}
	b1 := l.BuildBlock(minerA, 1*time.Minute)
	if _, err := l.ProcessBlock(b1); err != nil {
		t.Fatal(err)
	}
	if l.Confirmations(honest.ID()) != 1 || l.Balance(victim) != 600 {
		t.Fatal("honest payment not confirmed")
	}

	// Attacker branch: a second ledger replica sees the same genesis but
	// not b1, and mines the conflicting self-payment plus one more block.
	alloc := map[keys.Address]uint64{attacker.Address(): 1000}
	evil, err := NewLedger(alloc, testParams())
	if err != nil {
		t.Fatal(err)
	}
	conflict, err := NewPayment(evil.UTXOSet(), attacker, attacker.Address(), 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := evil.SubmitTx(conflict); err != nil {
		t.Fatal(err)
	}
	e1 := evil.BuildBlock(minerB, 1*time.Minute)
	if _, err := evil.ProcessBlock(e1); err != nil {
		t.Fatal(err)
	}
	e2 := evil.BuildBlock(minerB, 2*time.Minute)
	if _, err := evil.ProcessBlock(e2); err != nil {
		t.Fatal(err)
	}

	// The victim's node receives the longer attacker branch.
	if res, err := l.ProcessBlock(e1); err != nil || res.Status != chain.AcceptedSide {
		t.Fatalf("e1: %v %v", res.Status, err)
	}
	res, err := l.ProcessBlock(e2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != chain.AcceptedReorg {
		t.Fatalf("e2 status = %v, want reorg", res.Status)
	}
	// The double spend succeeded: victim's money is gone, merchant sees
	// zero confirmations again.
	if l.Balance(victim) != 0 {
		t.Fatalf("victim balance after reorg = %d, want 0", l.Balance(victim))
	}
	if l.Confirmations(honest.ID()) != 0 {
		t.Fatal("orphaned payment still reports confirmations")
	}
	// The honest tx conflicts with the attacker's spend, so reinjection
	// must have dropped it.
	if l.Pool().Contains(honest.ID()) {
		t.Fatal("conflicting tx must not be reinjected")
	}
}

func TestLedgerRetargetsDifficulty(t *testing.T) {
	r := ring(2)
	p := testParams()
	p.RetargetWindow = 4
	p.TargetInterval = 10 * time.Minute
	p.InitialDifficulty = 1000
	alloc := map[keys.Address]uint64{r.Addr(0): 1000}
	l, err := NewLedger(alloc, p)
	if err != nil {
		t.Fatal(err)
	}
	// Mine the first window at double speed (5-minute blocks). Like
	// Bitcoin, the retarget measures first-to-last timestamps of the
	// window, i.e. window-1 = 3 intervals: actual 15 min vs expected
	// 40 min, so difficulty scales by 8/3.
	now := time.Duration(0)
	for i := 0; i < 4; i++ {
		d := l.NextDifficulty()
		if i < 3 && d != 1000 {
			t.Fatalf("difficulty changed mid-window at block %d: %g", i, d)
		}
		now += 5 * time.Minute
		b := l.BuildBlock(r.Addr(1), now)
		if _, err := l.ProcessBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	d := l.NextDifficulty()
	if d < 2600 || d > 2700 {
		t.Fatalf("retargeted difficulty = %g, want ≈2666.7 (8/3 of 1000)", d)
	}
}

func TestNewPaymentInsufficient(t *testing.T) {
	r := ring(2)
	l := newTestLedger(t, r, 1)
	if _, err := NewPayment(l.UTXOSet(), r.Pair(0), r.Addr(1), 5000, 0); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewPayment(l.UTXOSet(), r.Pair(1), r.Addr(0), 1, 0); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("unfunded sender err = %v", err)
	}
}

func TestLedgerBytesGrow(t *testing.T) {
	r := ring(2)
	l := newTestLedger(t, r, 1)
	before := l.LedgerBytes()
	b := l.BuildBlock(r.Addr(1), time.Minute)
	if _, err := l.ProcessBlock(b); err != nil {
		t.Fatal(err)
	}
	if l.LedgerBytes() <= before {
		t.Fatal("ledger size should grow with each block")
	}
}

func BenchmarkCheckTx(b *testing.B) {
	r := keys.NewRing("bench", 2)
	set := NewSet()
	fund := NewCoinbase(1, r.Addr(0), 1000)
	set.applyTx(fund, &Undo{})
	tx := &Tx{Ins: []TxIn{{Prev: Outpoint{TxID: fund.ID(), Index: 0}}},
		Outs: []TxOut{{Value: 999, Owner: r.Addr(1)}}}
	tx.SignAll(r.Pair(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := set.CheckTx(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildAndProcessBlock(b *testing.B) {
	r := keys.NewRing("bench2", 3)
	alloc := map[keys.Address]uint64{r.Addr(0): 1 << 40}
	l, err := NewLedger(alloc, testParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := NewPayment(l.UTXOSet(), r.Pair(0), r.Addr(1), 100, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.SubmitTx(tx); err != nil {
			b.Fatal(err)
		}
		blk := l.BuildBlock(r.Addr(2), time.Duration(i)*time.Minute)
		if _, err := l.ProcessBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
}

// Regression: blocks delivered out of order wait in the orphan pool and
// cascade in when the missing ancestor arrives — and the UTXO set, tx
// index and mempool must follow the cascade. Before the fix, Store.Add
// adopted orphans internally but reported only the first block, so a
// reordered catch-up burst left the ledger's state layer behind its own
// main chain (confirmed txs invisible, balances stale).
func TestProcessBlockOutOfOrderAdoption(t *testing.T) {
	r := ring(4)
	src := newTestLedger(t, r, 2)
	dst := newTestLedger(t, r, 2)

	tx, err := NewPayment(src.UTXOSet(), r.Pair(0), r.Addr(3), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	if err := dst.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	miner := r.Addr(2)
	var blocks []*chain.Block
	for i := 1; i <= 3; i++ {
		b := src.BuildBlock(miner, time.Duration(i)*time.Second)
		if res, err := src.ProcessBlock(b); err != nil || res.Status != chain.Accepted {
			t.Fatalf("source block %d: %v %v", i, res.Status, err)
		}
		blocks = append(blocks, b)
	}
	// Deliver 2, 3 first (orphaned), then 1 (cascade adoption).
	for _, i := range []int{1, 2, 0} {
		if _, err := dst.ProcessBlock(blocks[i]); err != nil {
			t.Fatalf("out-of-order delivery: %v", err)
		}
	}
	if dst.Height() != 3 || dst.Store().Tip() != src.Store().Tip() {
		t.Fatalf("destination did not adopt the chain: height %d", dst.Height())
	}
	if got := dst.Confirmations(tx.ID()); got != 3 {
		t.Fatalf("confirmations after cascade = %d, want 3", got)
	}
	if got := dst.Balance(r.Addr(3)); got != 100 {
		t.Fatalf("recipient balance after cascade = %d, want 100", got)
	}
	if dst.Pool().Contains(tx.ID()) {
		t.Fatal("confirmed tx still pooled after cascade adoption")
	}
}
