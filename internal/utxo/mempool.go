package utxo

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/hashx"
)

// Mempool errors.
var (
	ErrPoolConflict = errors.New("utxo: transaction conflicts with a pooled transaction")
	ErrPoolDup      = errors.New("utxo: transaction already pooled")
)

// poolEntry is one pending transaction with its cached fee.
type poolEntry struct {
	tx      *Tx
	id      hashx.Hash
	fee     uint64
	size    int
	seq     uint64 // arrival order, tie-breaker
	feeRate float64
}

// Mempool holds validated, unconfirmed transactions ordered by fee rate.
// It is the "pending transactions" backlog of §VI. Transactions must spend
// confirmed outputs: chains of unconfirmed transactions are rejected, a
// simplification that keeps validation stateless against the UTXO set.
type Mempool struct {
	set     *Set
	entries map[hashx.Hash]*poolEntry
	spends  map[Outpoint]hashx.Hash // pooled input -> pooled tx id
	bytes   int
	nextSeq uint64
}

// NewMempool creates a pool validating against the given UTXO set.
func NewMempool(set *Set) *Mempool {
	return &Mempool{
		set:     set,
		entries: make(map[hashx.Hash]*poolEntry),
		spends:  make(map[Outpoint]hashx.Hash),
	}
}

// Len returns the number of pooled transactions.
func (m *Mempool) Len() int { return len(m.entries) }

// Bytes returns the total modeled size of pooled transactions.
func (m *Mempool) Bytes() int { return m.bytes }

// Contains reports whether a transaction is pooled.
func (m *Mempool) Contains(id hashx.Hash) bool {
	_, ok := m.entries[id]
	return ok
}

// Spends reports whether a pooled transaction already claims the output —
// the wallet-side check that keeps multiple payments in flight without
// self-conflicts (see NewPaymentAvoiding).
func (m *Mempool) Spends(op Outpoint) bool {
	_, ok := m.spends[op]
	return ok
}

// Add validates tx against the UTXO set and pools it. Double spends of
// outputs already claimed by a pooled transaction are rejected — the
// first-seen rule relay nodes apply.
func (m *Mempool) Add(tx *Tx) error {
	if tx.IsCoinbase() {
		return errors.New("utxo: coinbase transactions cannot be pooled")
	}
	id := tx.ID()
	if _, dup := m.entries[id]; dup {
		return ErrPoolDup
	}
	fee, err := m.set.CheckTx(tx)
	if err != nil {
		return err
	}
	for _, in := range tx.Ins {
		if rival, clash := m.spends[in.Prev]; clash {
			return fmt.Errorf("%w: %s also spent by %s", ErrPoolConflict, in.Prev, rival)
		}
	}
	e := &poolEntry{tx: tx, id: id, fee: fee, size: tx.EncodedSize(), seq: m.nextSeq}
	m.nextSeq++
	e.feeRate = float64(fee) / float64(e.size)
	m.entries[id] = e
	for _, in := range tx.Ins {
		m.spends[in.Prev] = id
	}
	m.bytes += e.size
	return nil
}

// remove unlinks one entry.
func (m *Mempool) remove(id hashx.Hash) {
	e, ok := m.entries[id]
	if !ok {
		return
	}
	delete(m.entries, id)
	for _, in := range e.tx.Ins {
		if m.spends[in.Prev] == id {
			delete(m.spends, in.Prev)
		}
	}
	m.bytes -= e.size
}

// RemoveConfirmed drops transactions that were just mined, plus any pooled
// transaction that became invalid because one of its inputs is now spent.
func (m *Mempool) RemoveConfirmed(txs []*Tx) {
	for _, tx := range txs {
		m.remove(tx.ID())
		// Evict pooled rivals spending the same outputs.
		for _, in := range tx.Ins {
			if rival, ok := m.spends[in.Prev]; ok {
				m.remove(rival)
			}
		}
	}
}

// Reinject returns orphaned transactions to the pool after a reorg
// (§IV-A: "Orphaned transactions need to be included in a new block").
// Transactions that no longer validate (e.g. double-spent on the new
// branch) are silently dropped; the count of successfully reinjected
// transactions is returned.
func (m *Mempool) Reinject(txs []*Tx) int {
	n := 0
	for _, tx := range txs {
		if tx.IsCoinbase() {
			continue // orphaned block rewards simply vanish
		}
		if err := m.Add(tx); err == nil {
			n++
		}
	}
	return n
}

// Assemble selects transactions for a new block greedily by fee rate
// until maxBytes of body space is used. Entries that no longer validate
// against the UTXO set are evicted on the way.
func (m *Mempool) Assemble(maxBytes int) []*Tx {
	order := make([]*poolEntry, 0, len(m.entries))
	for _, e := range m.entries {
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].feeRate != order[j].feeRate {
			return order[i].feeRate > order[j].feeRate
		}
		return order[i].seq < order[j].seq
	})
	var (
		out   []*Tx
		used  int
		stale []hashx.Hash
	)
	for _, e := range order {
		if used+e.size > maxBytes {
			continue
		}
		if _, err := m.set.CheckTx(e.tx); err != nil {
			stale = append(stale, e.id)
			continue
		}
		out = append(out, e.tx)
		used += e.size
	}
	for _, id := range stale {
		m.remove(id)
	}
	return out
}

// FeeOf returns the cached fee of a pooled transaction.
func (m *Mempool) FeeOf(id hashx.Hash) (uint64, bool) {
	e, ok := m.entries[id]
	if !ok {
		return 0, false
	}
	return e.fee, true
}
