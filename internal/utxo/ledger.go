package utxo

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/pow"
)

// Params configures a Bitcoin-style ledger. DefaultParams mirrors Bitcoin:
// 1 MB blocks every ~10 minutes (§VI-A), a 50-unit subsidy halving every
// 210,000 blocks, retargeting every 2016 blocks clamped 4×.
type Params struct {
	MaxBlockBytes     int
	InitialSubsidy    uint64
	HalvingInterval   uint64
	TargetInterval    time.Duration
	RetargetWindow    uint64
	MaxRetargetFactor float64
	InitialDifficulty float64
	ForkChoice        chain.ForkChoice
	// GenesisOutputsPerAccount splits each genesis allocation into this
	// many equal outputs (default 1). Simulations raise it so accounts
	// can keep several payments in flight without chaining unconfirmed
	// change.
	GenesisOutputsPerAccount int
}

// DefaultParams returns Bitcoin-shaped parameters.
func DefaultParams() Params {
	return Params{
		MaxBlockBytes:     1_000_000,
		InitialSubsidy:    50_0000_0000, // 50 coins at 10^8 base units
		HalvingInterval:   210_000,
		TargetInterval:    10 * time.Minute,
		RetargetWindow:    2016,
		MaxRetargetFactor: 4,
		InitialDifficulty: 1 << 20,
		ForkChoice:        chain.HeaviestChain,
	}
}

// Ledger is a full Bitcoin-style node state: block store with fork choice,
// the UTXO set at the main-chain tip, per-block undo journals for reorgs,
// and a fee-ordered mempool.
type Ledger struct {
	params  Params
	store   *chain.Store
	set     *Set
	pool    *Mempool
	undos   map[hashx.Hash]*Undo      // main-chain block -> undo journal
	txBlock map[hashx.Hash]hashx.Hash // confirmed tx id -> containing block
	genesis *chain.Block
}

// NewLedger creates a ledger whose genesis block mints the given
// allocation. All replicas constructed from equal allocations and params
// share the same genesis hash.
func NewLedger(alloc map[keys.Address]uint64, params Params) (*Ledger, error) {
	if params.MaxBlockBytes <= 0 {
		return nil, errors.New("utxo: MaxBlockBytes must be positive")
	}
	genesisTx := &Tx{CoinbaseHeight: 0}
	addrs := make([]keys.Address, 0, len(alloc))
	for a := range alloc {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	split := params.GenesisOutputsPerAccount
	if split < 1 {
		split = 1
	}
	for _, a := range addrs {
		value := alloc[a]
		chunk := value / uint64(split)
		if chunk == 0 {
			genesisTx.Outs = append(genesisTx.Outs, TxOut{Value: value, Owner: a})
			continue
		}
		for i := 0; i < split; i++ {
			v := chunk
			if i == 0 {
				v += value % uint64(split) // remainder rides the first output
			}
			genesisTx.Outs = append(genesisTx.Outs, TxOut{Value: v, Owner: a})
		}
	}
	body := &BlockBody{Txs: []*Tx{genesisTx}}
	genesis := &chain.Block{
		Header: chain.Header{
			Parent: hashx.Zero,
			Height: 0,
			TxRoot: body.Root(),
		},
		Payload: body,
	}
	store, err := chain.NewStore(genesis, params.ForkChoice)
	if err != nil {
		return nil, fmt.Errorf("utxo: %w", err)
	}
	set := NewSet()
	undo, err := set.ApplyBlock(body, totalAlloc(alloc))
	if err != nil {
		return nil, fmt.Errorf("utxo: apply genesis: %w", err)
	}
	l := &Ledger{
		params:  params,
		store:   store,
		set:     set,
		undos:   map[hashx.Hash]*Undo{genesis.Hash(): undo},
		txBlock: map[hashx.Hash]hashx.Hash{genesisTx.ID(): genesis.Hash()},
		genesis: genesis,
	}
	l.pool = NewMempool(set)
	return l, nil
}

func totalAlloc(alloc map[keys.Address]uint64) uint64 {
	var t uint64
	for _, v := range alloc {
		t += v
	}
	return t
}

// Store exposes the underlying block store (read-mostly; use ProcessBlock
// to add blocks so the UTXO set stays in sync).
func (l *Ledger) Store() *chain.Store { return l.store }

// Pool exposes the mempool.
func (l *Ledger) Pool() *Mempool { return l.pool }

// PoolLen returns the mempool backlog size — the pending-transaction
// census the throughput experiments report (§VI).
func (l *Ledger) PoolLen() int { return l.pool.Len() }

// UTXOSet exposes the tip UTXO set for read-only queries.
func (l *Ledger) UTXOSet() *Set { return l.set }

// Genesis returns the genesis block.
func (l *Ledger) Genesis() *chain.Block { return l.genesis }

// Params returns the ledger parameters.
func (l *Ledger) Params() Params { return l.params }

// Balance returns the confirmed balance of an address at the tip.
func (l *Ledger) Balance(addr keys.Address) uint64 { return l.set.Balance(addr) }

// Height returns the main-chain height.
func (l *Ledger) Height() uint64 { return l.store.Height() }

// SubmitTx validates a transaction and adds it to the mempool.
func (l *Ledger) SubmitTx(tx *Tx) error { return l.pool.Add(tx) }

// Confirmations returns how deep a transaction is buried on the main
// chain: 1 means "in the tip block", 0 means unconfirmed or orphaned —
// exactly the §IV-A notion merchants count before trusting a payment.
func (l *Ledger) Confirmations(txID hashx.Hash) int {
	blockHash, ok := l.txBlock[txID]
	if !ok {
		return 0
	}
	return l.store.Confirmations(blockHash)
}

// NextDifficulty computes the difficulty for the next block: unchanged
// within a retarget window, rescaled at window boundaries so the average
// interval converges back to TargetInterval (§VI-A: "the PoW puzzle
// difficulty is dynamic so that the block generation time converges to a
// fixed value").
func (l *Ledger) NextDifficulty() float64 {
	tip := l.store.TipBlock()
	if tip.Header.Height == 0 {
		return l.params.InitialDifficulty
	}
	next := tip.Header.Height + 1
	if l.params.RetargetWindow == 0 || next%l.params.RetargetWindow != 0 {
		return tip.Header.Difficulty
	}
	windowStartHeight := next - l.params.RetargetWindow
	startHash, ok := l.store.HashAtHeight(windowStartHeight)
	if !ok {
		return tip.Header.Difficulty
	}
	start, _ := l.store.Get(startHash)
	actual := tip.Header.Time - start.Header.Time
	expected := time.Duration(l.params.RetargetWindow) * l.params.TargetInterval
	return pow.BitcoinRetarget(tip.Header.Difficulty, actual, expected, l.params.MaxRetargetFactor)
}

// BuildBlock assembles a candidate block on the current tip: mempool
// transactions by fee rate up to the block-size limit (the §VI-A cap on
// throughput), plus the miner's coinbase collecting subsidy and fees. The
// header's Nonce is left zero — the simulation's Poisson mining model
// stands in for hash grinding, and tests that want real PoW call
// pow.MineHeader on the result.
func (l *Ledger) BuildBlock(miner keys.Address, now time.Duration) *chain.Block {
	tip := l.store.TipBlock()
	height := tip.Header.Height + 1
	coinbaseSize := NewCoinbase(height, miner, 0).EncodedSize()
	budget := l.params.MaxBlockBytes - tip.Header.EncodedSize() - coinbaseSize
	txs := l.pool.Assemble(budget)
	var fees uint64
	for _, tx := range txs {
		if fee, err := l.set.CheckTx(tx); err == nil {
			fees += fee
		}
	}
	subsidy := Subsidy(height, l.params.InitialSubsidy, l.params.HalvingInterval)
	coinbase := NewCoinbase(height, miner, subsidy+fees)
	body := &BlockBody{Txs: append([]*Tx{coinbase}, txs...)}
	return &chain.Block{
		Header: chain.Header{
			Parent:     tip.Hash(),
			Height:     height,
			Time:       now,
			TxRoot:     body.Root(),
			Difficulty: l.NextDifficulty(),
			Proposer:   miner,
		},
		Payload: body,
	}
}

// BuildBlockOn assembles a coinbase-only block extending an arbitrary
// known parent, not necessarily the tip. This is how an honest miner
// races on the selfish miner's published branch (the γ side of the
// Eyal–Sirer 1-1 race): its mempool and UTXO view track its own main
// chain, not the side branch, so the block carries only the subsidy
// coinbase — valid on any parent without re-executing the branch.
func (l *Ledger) BuildBlockOn(parent hashx.Hash, miner keys.Address, now time.Duration) (*chain.Block, error) {
	p, ok := l.store.Get(parent)
	if !ok {
		return nil, fmt.Errorf("utxo: build on %s: %w", parent, chain.ErrUnknownBlock)
	}
	height := p.Header.Height + 1
	coinbase := NewCoinbase(height, miner, Subsidy(height, l.params.InitialSubsidy, l.params.HalvingInterval))
	body := &BlockBody{Txs: []*Tx{coinbase}}
	return &chain.Block{
		Header: chain.Header{
			Parent:     parent,
			Height:     height,
			Time:       now,
			TxRoot:     body.Root(),
			Difficulty: p.Header.Difficulty,
			Proposer:   miner,
		},
		Payload: body,
	}, nil
}

// ProcessBlock adds a received block, keeping the UTXO set, the tx index
// and the mempool consistent through any reorg. Side-chain blocks are
// stored but not executed; their transactions are validated if and when
// their branch becomes the main chain — the same lazy rule Bitcoin uses.
// Orphan-pool blocks the insertion cascades in replay their effects too:
// out-of-order delivery (a post-heal catch-up burst over jittery links)
// must leave the UTXO set exactly where in-order delivery would.
func (l *Ledger) ProcessBlock(b *chain.Block) (chain.AddResult, error) {
	if b.Payload == nil {
		return chain.AddResult{Status: chain.Rejected, Err: errors.New("utxo: block without body")},
			errors.New("utxo: block without body")
	}
	res := l.store.Add(b)
	if err := l.applyAddOutcome(b, res.Status, res.Reorg); err != nil {
		return res, err
	}
	for _, ad := range res.Adopted {
		if err := l.applyAddOutcome(ad.Block, ad.Status, ad.Reorg); err != nil {
			return res, err
		}
	}
	return res, nil
}

// applyAddOutcome applies one inserted block's state effects.
func (l *Ledger) applyAddOutcome(b *chain.Block, status chain.AddStatus, reorg *chain.Reorg) error {
	switch status {
	case chain.Accepted:
		return l.connect(b)
	case chain.AcceptedReorg:
		return l.applyReorg(reorg)
	}
	return nil
}

// connect applies a block's transactions at the tip.
func (l *Ledger) connect(b *chain.Block) error {
	body, ok := b.Payload.(*BlockBody)
	if !ok {
		return errors.New("utxo: foreign payload type")
	}
	subsidy := Subsidy(b.Header.Height, l.params.InitialSubsidy, l.params.HalvingInterval)
	undo, err := l.set.ApplyBlock(body, subsidy)
	if err != nil {
		return fmt.Errorf("utxo: connect %s: %w", b.Hash(), err)
	}
	h := b.Hash()
	l.undos[h] = undo
	for _, tx := range body.Txs {
		l.txBlock[tx.ID()] = h
	}
	l.pool.RemoveConfirmed(body.Txs)
	return nil
}

// disconnect reverses a block at the tip and reinjects its transactions.
func (l *Ledger) disconnect(h hashx.Hash) error {
	b, ok := l.store.Get(h)
	if !ok {
		return fmt.Errorf("utxo: disconnect: %w", chain.ErrUnknownBlock)
	}
	undo, ok := l.undos[h]
	if !ok {
		return fmt.Errorf("utxo: no undo journal for %s", h)
	}
	l.set.UndoBlock(undo)
	delete(l.undos, h)
	body := b.Payload.(*BlockBody)
	for _, tx := range body.Txs {
		delete(l.txBlock, tx.ID())
	}
	l.pool.Reinject(body.Txs)
	return nil
}

// applyReorg rewinds the abandoned branch and plays the adopted one.
func (l *Ledger) applyReorg(r *chain.Reorg) error {
	for _, h := range r.Abandoned { // already ordered old-tip first
		if err := l.disconnect(h); err != nil {
			return err
		}
	}
	for _, h := range r.Adopted { // ancestor-to-tip order
		b, _ := l.store.Get(h)
		if err := l.connect(b); err != nil {
			return fmt.Errorf("utxo: reorg connect: %w", err)
		}
	}
	return nil
}

// LedgerBytes returns the total modeled size of the main chain — the
// §V "ledger size" a full node stores before pruning.
func (l *Ledger) LedgerBytes() int {
	total := 0
	for _, h := range l.store.MainChain() {
		b, _ := l.store.Get(h)
		total += b.Size()
	}
	return total
}

// NewPayment builds and signs a payment of amount (plus fee) from the key
// pair's confirmed outputs to a recipient, returning change to the sender.
// Output selection is deterministic: largest value first, ties broken by
// outpoint identity.
func NewPayment(set *Set, from *keys.KeyPair, to keys.Address, amount, fee uint64) (*Tx, error) {
	return NewPaymentAvoiding(set, nil, from, to, amount, fee)
}

// NewPaymentAvoiding is NewPayment with wallet-style in-flight tracking:
// outputs for which avoid returns true (typically Mempool.Spends) are not
// selected, so an account can keep several unconfirmed payments in flight
// without double-spending its own pooled transactions.
func NewPaymentAvoiding(set *Set, avoid func(Outpoint) bool, from *keys.KeyPair, to keys.Address, amount, fee uint64) (*Tx, error) {
	need := amount + fee
	if need < amount {
		return nil, ErrValueOverflow
	}
	ops := set.OutpointsOf(from.Address())
	if avoid != nil {
		kept := ops[:0]
		for _, op := range ops {
			if !avoid(op) {
				kept = append(kept, op)
			}
		}
		ops = kept
	}
	sort.Slice(ops, func(i, j int) bool {
		oi, _ := set.Get(ops[i])
		oj, _ := set.Get(ops[j])
		if oi.Value != oj.Value {
			return oi.Value > oj.Value
		}
		if c := ops[i].TxID.Cmp(ops[j].TxID); c != 0 {
			return c < 0
		}
		return ops[i].Index < ops[j].Index
	})
	tx := &Tx{}
	var gathered uint64
	for _, op := range ops {
		out, _ := set.Get(op)
		tx.Ins = append(tx.Ins, TxIn{Prev: op})
		gathered += out.Value
		if gathered >= need {
			break
		}
	}
	if gathered < need {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrInsufficient, gathered, need)
	}
	tx.Outs = append(tx.Outs, TxOut{Value: amount, Owner: to})
	if change := gathered - need; change > 0 {
		tx.Outs = append(tx.Outs, TxOut{Value: change, Owner: from.Address()})
	}
	tx.SignAll(from)
	return tx, nil
}
