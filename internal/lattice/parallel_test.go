package lattice

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hashx"
	"repro/internal/keys"
)

// buildWorkload records a valid block stream against a scratch lattice:
// the genesis account opens n-1 accounts, then random sends and receives
// circulate value. Returned blocks are in creation (dependency) order.
func buildWorkload(t *testing.T, ring *keys.Ring, n, transfers int, seed int64) []*Block {
	t.Helper()
	oracle, _, err := New(ring.Pair(0), 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	var stream []*Block
	apply := func(b *Block) {
		t.Helper()
		if res := oracle.Process(b); res.Status != Accepted {
			t.Fatalf("oracle rejected workload block: %v (%v)", res.Status, res.Err)
		}
		stream = append(stream, b)
	}
	share := uint64(1<<30) / uint64(n)
	for i := 1; i < n; i++ {
		send, err := oracle.NewSend(ring.Pair(0), ring.Addr(i), share)
		if err != nil {
			t.Fatal(err)
		}
		apply(send)
		open, err := oracle.NewOpen(ring.Pair(i), send.Hash(), ring.Addr(i%4))
		if err != nil {
			t.Fatal(err)
		}
		apply(open)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < transfers; i++ {
		from := rng.Intn(n)
		to := (from + 1 + rng.Intn(n-1)) % n
		amount := uint64(1 + rng.Intn(50))
		if oracle.Balance(ring.Addr(from)) < amount {
			continue
		}
		send, err := oracle.NewSend(ring.Pair(from), ring.Addr(to), amount)
		if err != nil {
			t.Fatal(err)
		}
		apply(send)
		recv, err := oracle.NewReceive(ring.Pair(to), send.Hash())
		if err != nil {
			t.Fatal(err)
		}
		apply(recv)
	}
	return stream
}

// stateFingerprint captures everything the batch contract promises to be
// schedule-independent.
type stateFingerprint struct {
	accounts, blocks, pending, gaps int
	balances                        map[keys.Address]uint64
	heads                           map[keys.Address]hashx.Hash
}

func fingerprint(l *Lattice, ring *keys.Ring) stateFingerprint {
	fp := stateFingerprint{
		accounts: l.Accounts(),
		blocks:   l.BlockCount(),
		pending:  l.PendingCount(),
		gaps:     l.GapCount(),
		balances: make(map[keys.Address]uint64),
		heads:    make(map[keys.Address]hashx.Hash),
	}
	for i := 0; i < ring.Len(); i++ {
		addr := ring.Addr(i)
		fp.balances[addr] = l.Balance(addr)
		if h, ok := l.Head(addr); ok {
			fp.heads[addr] = h
		}
	}
	return fp
}

func equalFingerprints(a, b stateFingerprint) bool {
	if a.accounts != b.accounts || a.blocks != b.blocks || a.pending != b.pending || a.gaps != b.gaps {
		return false
	}
	for addr, bal := range a.balances {
		if b.balances[addr] != bal {
			return false
		}
	}
	for addr, h := range a.heads {
		if b.heads[addr] != h {
			return false
		}
	}
	return true
}

// The batch contract: for any worker count, ProcessBatch converges to the
// exact state a serial Process loop produces.
func TestProcessBatchMatchesSerial(t *testing.T) {
	ring := keys.NewRing("batch-parity", 16)
	stream := buildWorkload(t, ring, 16, 120, 99)

	serial, _, err := New(ring.Pair(0), 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range stream {
		if res := serial.Process(b); res.Status == Rejected {
			t.Fatalf("serial rejected: %v", res.Err)
		}
	}
	if err := serial.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(serial, ring)

	for _, workers := range []int{1, 2, 4, 8} {
		batch, _, err := New(ring.Pair(0), 1<<30, 0)
		if err != nil {
			t.Fatal(err)
		}
		results := batch.ProcessBatch(stream, workers)
		for i, res := range results {
			if res.Status == Rejected {
				t.Fatalf("workers=%d block %d rejected: %v", workers, i, res.Err)
			}
		}
		if err := batch.CheckInvariant(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := fingerprint(batch, ring); !equalFingerprints(got, want) {
			t.Fatalf("workers=%d state diverged from serial:\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

// Tampered blocks must be rejected by the parallel crypto stage without
// poisoning the valid remainder of the batch.
func TestProcessBatchRejectsInvalid(t *testing.T) {
	ring := keys.NewRing("batch-reject", 8)
	stream := buildWorkload(t, ring, 8, 20, 7)

	// Forge three failure modes on copies so the stream stays valid.
	badSig := *stream[2]
	badSig.Sig = append([]byte(nil), badSig.Sig...)
	badSig.Sig[0] ^= 0xff

	wrongKey := *stream[4]
	wrongKey.PubKey = ring.Pair(7).Pub // key/account binding broken

	batch, _, err := New(ring.Pair(0), 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks := append([]*Block{&badSig, &wrongKey}, stream...)
	results := batch.ProcessBatch(blocks, 4)
	for i := 0; i < 2; i++ {
		if results[i].Status != Rejected || !errors.Is(results[i].Err, ErrBadSignature) {
			t.Fatalf("forged block %d: %v (%v), want Rejected/ErrBadSignature", i, results[i].Status, results[i].Err)
		}
	}
	for i, res := range results[2:] {
		if res.Status == Rejected {
			t.Fatalf("valid block %d rejected alongside forgeries: %v", i, res.Err)
		}
	}
	if err := batch.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// Work stamps are checked in the parallel stage too.
func TestProcessBatchChecksWork(t *testing.T) {
	const bits = 8
	ring := keys.NewRing("batch-work", 2)
	lat, _, err := New(ring.Pair(0), 1000, bits)
	if err != nil {
		t.Fatal(err)
	}
	good, err := lat.NewSend(ring.Pair(0), ring.Addr(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the content until the inherited work stamp is stale for the
	// new hash (a fresh hash can satisfy 8 bits by luck).
	bad := *good
	for {
		bad.Balance--
		bad.sign(ring.Pair(0))
		if !bad.VerifyWork(bits) {
			break
		}
	}

	results := lat.ProcessBatch([]*Block{good, &bad}, 2)
	if results[0].Status != Accepted {
		t.Fatalf("good block: %v (%v)", results[0].Status, results[0].Err)
	}
	if results[1].Status != Rejected || !errors.Is(results[1].Err, ErrBadWork) {
		t.Fatalf("stale-work block: %v (%v), want Rejected/ErrBadWork", results[1].Status, results[1].Err)
	}
}

// Duplicates within one batch resolve exactly once.
func TestProcessBatchDuplicates(t *testing.T) {
	ring := keys.NewRing("batch-dup", 2)
	lat, _, err := New(ring.Pair(0), 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	send, err := lat.NewSend(ring.Pair(0), ring.Addr(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	results := lat.ProcessBatch([]*Block{send, send, send}, 2)
	accepted, dup := 0, 0
	for _, res := range results {
		switch res.Status {
		case Accepted:
			accepted++
		case Duplicate:
			dup++
		default:
			t.Fatalf("unexpected status %v (%v)", res.Status, res.Err)
		}
	}
	if accepted != 1 || dup != 2 {
		t.Fatalf("accepted=%d dup=%d, want 1 and 2", accepted, dup)
	}
	if lat.BlockCount() != 2 { // genesis + one send
		t.Fatalf("block count %d, want 2", lat.BlockCount())
	}
}
