// Parallel batch settlement for the block-lattice. Accounts are
// independent chains by construction (§II-B: "every account is linked to
// its own account-chain"), which is the defining throughput lever of DAG
// ledgers: validation work for different accounts never conflicts. The
// batch pipeline below exploits that in two stages — an embarrassingly
// parallel crypto stage (hashing, ed25519 signatures via keys.VerifyBatch,
// anti-spam work stamps), followed by sharded per-account application
// guarded by a striped per-account lock table plus a short state mutex for
// the cross-account maps (pending sends, gap buffers, fork records).
package lattice

import (
	"sync"

	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/par"
)

// lockTable stripes per-account mutexes so batch workers serialize blocks
// of the same account (chain order matters) without one global bottleneck.
type lockTable struct {
	stripes []sync.Mutex
}

func newLockTable(n int) *lockTable {
	return &lockTable{stripes: make([]sync.Mutex, n)}
}

// of maps an account address onto its stripe. Two accounts may share a
// stripe; that only costs concurrency, never correctness.
func (t *lockTable) of(addr keys.Address) *sync.Mutex {
	i := (uint(addr[0]) | uint(addr[1])<<8) % uint(len(t.stripes))
	return &t.stripes[i]
}

// prechecked carries stage-1 verification results into stage 2.
type prechecked struct {
	h      hashx.Hash
	sigOK  bool
	workOK bool
}

// ProcessBatch validates and attaches a batch of blocks using a bounded
// worker pool (workers <= 0 means runtime.NumCPU()). Results are returned
// in input order, one per block.
//
// Guarantees: blocks of the same account are applied in input order, and
// the final lattice state (attached blocks, balances, pending set) is
// identical to serial Process calls regardless of the worker count —
// cross-account dependencies that apply out of order settle through the
// same gap buffers that absorb out-of-order network arrival. Individual
// statuses may differ from the serial schedule only in how a dependent
// block attaches (directly, or buffered as GapSource/GapPrevious and then
// drained by its dependency's Result).
//
// ProcessBatch must not run concurrently with other Lattice calls; the
// lattice is otherwise a single-goroutine structure.
func (l *Lattice) ProcessBatch(blocks []*Block, workers int) []Result {
	results := make([]Result, len(blocks))
	if len(blocks) == 0 {
		return results
	}

	// Stage 1: parallel crypto. Hash and work-stamp checks chunk across
	// the pool; the signature checks ride the keys.VerifyBatch pool using
	// the hashes computed here.
	pre := make([]prechecked, len(blocks))
	jobs := make([]keys.VerifyJob, len(blocks))
	par.For(len(blocks), workers, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b := blocks[i]
			pre[i].h = b.Hash()
			pre[i].workOK = l.workBits <= 0 ||
				hashx.VerifyStamp(pre[i].h[:], hashx.Stamp{Nonce: b.Work, Bits: l.workBits})
			// The key/account binding is part of signature validity.
			pre[i].sigOK = keys.AddressOf(b.PubKey) == b.Account
			jobs[i] = keys.VerifyJob{Pub: b.PubKey, Msg: pre[i].h[:], Sig: b.Sig}
		}
	})
	for i, ok := range keys.VerifyBatch(jobs, workers) {
		pre[i].sigOK = pre[i].sigOK && ok
	}

	// Stage 2: shard application by account. Each group holds the blocks
	// of one account in input order; a worker takes the account's stripe
	// lock for the whole group and the state mutex per block.
	groups := make(map[keys.Address][]int, len(blocks))
	var order []keys.Address
	for i, b := range blocks {
		if _, seen := groups[b.Account]; !seen {
			order = append(order, b.Account)
		}
		groups[b.Account] = append(groups[b.Account], i)
	}
	par.Each(len(order), workers, 1, func(g int) {
		acct := order[g]
		stripe := l.locks.of(acct)
		stripe.Lock()
		for _, i := range groups[acct] {
			l.mu.Lock()
			res := l.processVerified(blocks[i], pre[i].h, pre[i].sigOK, pre[i].workOK)
			if res.Status == Accepted {
				res.Drained = l.drainGaps(blocks[i], nil)
			}
			l.mu.Unlock()
			results[i] = res
		}
		stripe.Unlock()
	})
	return results
}
