// Parallel batch settlement for the block-lattice. Accounts are
// independent chains by construction (§II-B: "every account is linked to
// its own account-chain"), which is the defining throughput lever of DAG
// ledgers: validation work for different accounts never conflicts. The
// batch pipeline below exploits that where the cycles actually go — an
// embarrassingly parallel crypto stage (hashing, ed25519 signatures via
// keys.VerifyBatch, anti-spam work stamps) — and then applies the
// pre-verified blocks serially in input order. Application is pure map
// and slice bookkeeping, orders of magnitude cheaper than the signature
// checks; doing it in input order makes the batch bit-identical to serial
// Process calls even for adversarial streams (deliberate forks, where
// WHICH of two conflicting blocks attaches first decides the incumbent
// the network votes on).
package lattice

import (
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/par"
)

// prechecked carries stage-1 verification results into stage 2.
type prechecked struct {
	h      hashx.Hash
	sigOK  bool
	workOK bool
	// memoed marks blocks whose signature verdict came from the VerifySig
	// memo; they carry no VerifyBatch job.
	memoed bool
}

// ProcessBatch validates and attaches a batch of blocks, fanning the
// expensive crypto checks across a bounded worker pool (workers <= 0
// means runtime.NumCPU()). Results are returned in input order, one per
// block.
//
// Guarantees: the resulting lattice state AND the per-block results are
// byte-identical to calling Process serially on the same stream, for any
// worker count — including streams containing duplicates, malformed
// blocks and deliberate forks, where attachment order decides which
// rival becomes the incumbent (fuzzed by FuzzLatticeProcessBatch).
//
// ProcessBatch must not run concurrently with other Lattice calls; the
// lattice is otherwise a single-goroutine structure.
func (l *Lattice) ProcessBatch(blocks []*Block, workers int) []Result {
	results := make([]Result, len(blocks))
	if len(blocks) == 0 {
		return results
	}

	// Stage 0: serial hashing. Block.Hash memoizes on first call, and a
	// batch may legitimately contain the same pointer twice (duplicates
	// are part of the contract), so the first hash of each block must not
	// race across workers. Hashing is ~200ns against ~50µs of ed25519
	// per block, so serializing it costs nothing measurable.
	for _, b := range blocks {
		_ = b.Hash()
	}

	// Stage 1: parallel crypto. Work-stamp checks chunk across the pool;
	// the signature checks ride the keys.VerifyBatch pool using the
	// memoized hashes. Blocks whose signature already verified (the
	// VerifySig memo — in a network sim the same pointer reaches every
	// replica) skip the batch: workers only READ the memo here; writes
	// happen in the serial pass below, so duplicate pointers in one batch
	// never race.
	pre := make([]prechecked, len(blocks))
	jobs := make([]keys.VerifyJob, len(blocks))
	par.For(len(blocks), workers, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b := blocks[i]
			pre[i].h = b.Hash()
			pre[i].workOK = l.workBits <= 0 ||
				hashx.VerifyStamp(pre[i].h[:], hashx.Stamp{Nonce: b.Work, Bits: l.workBits})
			if b.memoSigSelf == b {
				pre[i].sigOK = b.memoSigOK
				pre[i].memoed = true
				continue // zero-value job; its verdict is ignored below
			}
			// The key/account binding is part of signature validity.
			pre[i].sigOK = keys.AddressOf(b.PubKey) == b.Account
			jobs[i] = keys.VerifyJob{Pub: b.PubKey, Msg: pre[i].h[:], Sig: b.Sig}
		}
	})
	for i, ok := range keys.VerifyBatch(jobs, workers) {
		if !pre[i].memoed {
			pre[i].sigOK = pre[i].sigOK && ok
		}
	}
	// Serial memo write-back: successful verdicts feed later batches and
	// the serial Process path (only success is ever cached — see
	// Block.VerifySig).
	for i, b := range blocks {
		if pre[i].sigOK && b.memoSigSelf != b {
			b.memoSigSelf = b
			b.memoSigOK = true
		}
	}

	// Stage 2: apply in input order. Fork incumbency, gap draining and
	// pending settlement all depend on attachment order, so the serial
	// schedule is the specification — and it is already the cheap part.
	for i, b := range blocks {
		res := l.processVerified(b, pre[i].h, pre[i].sigOK, pre[i].workOK)
		if res.Status == Accepted {
			res.Drained = l.drainGaps(b, nil)
		}
		results[i] = res
	}
	return results
}
