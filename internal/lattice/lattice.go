// Package lattice implements Nano's block-lattice, the DAG ledger of paper
// §II-B (Fig. 2): "every account is linked to its own account-chain …
// equivalent to the account's transaction/balance history". A transfer
// takes two blocks — the sender's send and the receiver's receive
// (Fig. 3); between the two the funds are *pending* ("unsettled"), and
// "a node has to be online in order to receive a transaction". Every block
// carries the anti-spam proof of work of §III-B and names the account's
// representative for the Open Representative Voting of internal/orv.
//
// Forks — two blocks claiming the same predecessor — "are only possible as
// a result of a malicious attack or bad programming" (§IV-B); the lattice
// detects them and defers resolution to representative voting.
//
// Performance invariants (tracked by internal/perf, gated in CI):
// block content is immutable after the first Hash call, which is what
// lets Block.Hash memoize its digest; and ProcessBatch produces
// byte-identical lattice state and results for any worker count, so
// perf-suite runs pinned at Workers=1 describe the same computation the
// parallel paths execute.
package lattice

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/hashx"
	"repro/internal/keys"
)

// BlockType distinguishes the four lattice block kinds.
type BlockType uint8

const (
	// Open starts an account chain by receiving its first pending send.
	Open BlockType = iota + 1
	// Send deducts from the sender's balance, leaving the amount pending.
	Send
	// Receive settles a pending send into the receiver's balance.
	Receive
	// Change switches the account's representative without moving value.
	Change
)

// String returns the block type name.
func (t BlockType) String() string {
	switch t {
	case Open:
		return "open"
	case Send:
		return "send"
	case Receive:
		return "receive"
	case Change:
		return "change"
	default:
		return fmt.Sprintf("BlockType(%d)", uint8(t))
	}
}

// Block is one node of the DAG: a single transaction on one account chain
// (§II-B: "each node holds a single transaction"). Like Nano's state
// blocks it records the resulting balance rather than a delta.
type Block struct {
	Type BlockType
	// Account is the chain this block belongs to.
	Account keys.Address
	// Prev is the previous block on the account chain (zero for Open).
	Prev hashx.Hash
	// Representative is the account's chosen voting delegate (§III-B).
	Representative keys.Address
	// Balance is the account balance after this block.
	Balance uint64
	// Destination receives the funds of a Send.
	Destination keys.Address
	// Source is the send block being settled by an Open/Receive.
	Source hashx.Hash
	// Work is the anti-spam Hashcash nonce (§III-B).
	Work uint64
	// PubKey and Sig authenticate the account owner.
	PubKey ed25519.PublicKey
	Sig    []byte

	// memoSelf/memoHash cache the content hash. The cache is valid only
	// while memoSelf still points at this exact Block value, so a copied
	// or moved block (memoSelf != &copy) silently re-hashes instead of
	// reading a stale digest — value copies stay safe without a noCopy
	// guard. Content fields are never mutated after the first Hash call
	// (blocks are signed over the digest immediately after construction),
	// which is the invariant that makes the memo sound.
	memoSelf *Block
	memoHash hashx.Hash

	// memoSigSelf/memoSigOK cache a positive VerifySig outcome under the
	// same pointer-identity rule as memoSelf. In a network simulation the
	// same *Block floods every node, and the signature is content-pure —
	// one ed25519 verification serves all replicas. Only success is
	// cached: a failed check re-verifies on every call, so the memo can
	// never launder a block whose Sig was swapped after a rejection.
	memoSigSelf *Block
	memoSigOK   bool
}

// wireSize is the modeled encoding of a lattice block: near Nano's real
// ~216-byte state blocks.
const wireSize = 1 + keys.AddressSize + hashx.Size + keys.AddressSize + 8 +
	keys.AddressSize + hashx.Size + 8 + ed25519.PublicKeySize + ed25519.SignatureSize

// EncodedSize returns the modeled wire size of a block.
func (b *Block) EncodedSize() int { return wireSize }

// contentBytes serializes the signed/hashed portion (everything except
// Work and Sig; work can be recomputed without invalidating signatures).
func (b *Block) contentBytes() []byte {
	buf := make([]byte, 0, wireSize)
	buf = append(buf, byte(b.Type))
	buf = append(buf, b.Account[:]...)
	buf = append(buf, b.Prev[:]...)
	buf = append(buf, b.Representative[:]...)
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], b.Balance)
	buf = append(buf, scratch[:]...)
	buf = append(buf, b.Destination[:]...)
	buf = append(buf, b.Source[:]...)
	return buf
}

// Hash returns the block identifier, memoized on first use. Not safe
// for a concurrent FIRST call on the same pointer; ProcessBatch hashes
// its batch serially before fanning out for exactly this reason.
func (b *Block) Hash() hashx.Hash {
	if b.memoSelf == b {
		return b.memoHash
	}
	b.memoHash = hashx.Sum(b.contentBytes())
	b.memoSelf = b
	return b.memoHash
}

// sign fills PubKey and Sig.
func (b *Block) sign(kp *keys.KeyPair) {
	digest := b.Hash()
	b.PubKey = kp.Pub
	b.Sig = kp.Sign(digest[:])
}

// VerifySig checks the owner signature and the key/account binding. The
// outcome is memoized per pointer (see memoSigSelf): every replica after
// the first reads the cached verdict instead of re-running ed25519.
func (b *Block) VerifySig() bool {
	if b.memoSigSelf == b {
		return b.memoSigOK
	}
	if keys.AddressOf(b.PubKey) != b.Account {
		return false
	}
	digest := b.Hash()
	if !keys.Verify(b.PubKey, digest[:], b.Sig) {
		return false
	}
	b.memoSigSelf = b
	b.memoSigOK = true
	return true
}

// SolveWork attaches an anti-spam stamp of the given difficulty (§III-B:
// "PoW is used as a spam protection measure"). It returns false if no
// stamp is found within maxIter attempts.
func (b *Block) SolveWork(bits int, maxIter uint64) bool {
	h := b.Hash()
	stamp, ok := hashx.FindStamp(h[:], bits, 0, maxIter)
	if !ok {
		return false
	}
	b.Work = stamp.Nonce
	return true
}

// VerifyWork checks the anti-spam stamp.
func (b *Block) VerifyWork(bits int) bool {
	h := b.Hash()
	return hashx.VerifyStamp(h[:], hashx.Stamp{Nonce: b.Work, Bits: bits})
}

// Status classifies the result of Lattice.Process.
type Status int

const (
	// Accepted means the block extended its account chain.
	Accepted Status = iota + 1
	// AcceptedFork means the block is valid but a competing block already
	// claims the same predecessor: representatives must vote (§IV-B).
	AcceptedFork
	// Duplicate means the block was already processed.
	Duplicate
	// GapPrevious means the block's predecessor has not been seen yet —
	// "the network [ignores] all subsequent transactions on top of the
	// missing block" (§IV-B). The block is buffered.
	GapPrevious
	// GapSource means a receive references an unknown or already-settled
	// send; the block is buffered until the source arrives.
	GapSource
	// Rejected means validation failed permanently.
	Rejected
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Accepted:
		return "accepted"
	case AcceptedFork:
		return "accepted-fork"
	case Duplicate:
		return "duplicate"
	case GapPrevious:
		return "gap-previous"
	case GapSource:
		return "gap-source"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Validation errors.
var (
	ErrBadSignature  = errors.New("lattice: bad signature")
	ErrBadWork       = errors.New("lattice: insufficient work")
	ErrAlreadyOpened = errors.New("lattice: account already opened")
	ErrNotOpened     = errors.New("lattice: account not opened")
	ErrBadBalance    = errors.New("lattice: balance arithmetic does not check out")
	ErrWrongDest     = errors.New("lattice: send is not addressed to this account")
	ErrUnknownFork   = errors.New("lattice: no such fork")
	ErrNotAtHead     = errors.New("lattice: fork loser is not at the chain head")
)

// Pending describes one unsettled send (Fig. 3's "pending in the network
// awaiting the recipient").
type Pending struct {
	Destination keys.Address
	Amount      uint64
}

// accountChain is the per-account history.
type accountChain struct {
	blocks []*Block
	head   hashx.Hash
}

// Result reports what Process did.
type Result struct {
	Status Status
	Err    error
	// ForkRivals holds the competing block hashes when Status ==
	// AcceptedFork (the attached incumbent first).
	ForkRivals []hashx.Hash
	// Settled names the send block settled by an accepted Open/Receive.
	Settled hashx.Hash
	// Drained lists previously gap-buffered blocks that attached as a
	// consequence of this block, in attachment order. Network nodes use
	// it to vote on and settle late-arriving chains (§IV-B).
	Drained []*Block
}

// Lattice is the whole DAG: every account chain, the pending (unsettled)
// send set, fork records awaiting votes, and gap buffers.
type Lattice struct {
	workBits int
	chains   map[keys.Address]*accountChain
	byHash   map[hashx.Hash]*Block
	pending  map[hashx.Hash]Pending // send hash -> unsettled amount
	settled  map[hashx.Hash]bool    // send hash -> settled
	// forks maps a contested predecessor to the detached rival blocks.
	forks map[hashx.Hash][]*Block
	// successor maps an attached block to its attached successor.
	successor map[hashx.Hash]hashx.Hash
	// gapPrev buffers blocks whose predecessor is missing.
	gapPrev map[hashx.Hash][]*Block
	// gapSource buffers receives whose source send is missing.
	gapSource map[hashx.Hash][]*Block
	// gapLimit bounds the total number of parked blocks across both gap
	// buffers (<= 0 means DefaultGapLimit). gapOrder is the FIFO parking
	// order driving eviction; entries go stale when their block drains or
	// is evicted, so eviction and compaction skip entries that are no
	// longer present in their buffer (same staleness-tolerant scheme as
	// netsim's pendingOrder).
	gapLimit   int
	gapParked  int
	gapEvicted int
	gapOrder   []gapEntry
	onGapEvict func(*Block)
	// gapTTL evicts parked blocks by age instead of only by count: a
	// block parked longer than the TTL is dropped even while the buffer
	// is under its count bound. Zero (or a nil clock) disables it.
	gapTTL  time.Duration
	clock   func() time.Duration
	supply  uint64
	genesis hashx.Hash
}

// gapEntry remembers where a parked block went — the gapSource buffer
// (src) or the gapPrev buffer — and when it was parked (clock time,
// meaningful only while a clock is installed).
type gapEntry struct {
	b   *Block
	at  time.Duration
	src bool
}

// DefaultGapLimit bounds the gap buffers when SetGapLimit was never
// called. It is generous — honest steady-state traffic parks at most a
// handful of blocks per missing ancestor — so only a flood of orphaned
// blocks (spam, or a node fallen catastrophically behind) evicts.
const DefaultGapLimit = 4096

// New creates a lattice whose genesis open block grants the entire supply
// to the genesis account (§II-B: "The genesis transaction defines the
// initial state"). workBits is the anti-spam difficulty all blocks must
// meet (0 disables work checks, useful in unit tests).
func New(genesisOwner *keys.KeyPair, supply uint64, workBits int) (*Lattice, *Block, error) {
	l := &Lattice{
		workBits:  workBits,
		chains:    make(map[keys.Address]*accountChain),
		byHash:    make(map[hashx.Hash]*Block),
		pending:   make(map[hashx.Hash]Pending),
		settled:   make(map[hashx.Hash]bool),
		forks:     make(map[hashx.Hash][]*Block),
		successor: make(map[hashx.Hash]hashx.Hash),
		gapPrev:   make(map[hashx.Hash][]*Block),
		gapSource: make(map[hashx.Hash][]*Block),
		supply:    supply,
	}
	genesis := &Block{
		Type:           Open,
		Account:        genesisOwner.Address(),
		Representative: genesisOwner.Address(),
		Balance:        supply,
	}
	genesis.sign(genesisOwner)
	if workBits > 0 {
		if !genesis.SolveWork(workBits, 1<<40) {
			return nil, nil, errors.New("lattice: could not solve genesis work")
		}
	}
	h := genesis.Hash()
	l.byHash[h] = genesis
	l.chains[genesis.Account] = &accountChain{blocks: []*Block{genesis}, head: h}
	l.genesis = h
	return l, genesis, nil
}

// Genesis returns the genesis block hash.
func (l *Lattice) Genesis() hashx.Hash { return l.genesis }

// Supply returns the total issued value.
func (l *Lattice) Supply() uint64 { return l.supply }

// WorkBits returns the anti-spam difficulty.
func (l *Lattice) WorkBits() int { return l.workBits }

// Head returns an account's chain head hash.
func (l *Lattice) Head(addr keys.Address) (hashx.Hash, bool) {
	c, ok := l.chains[addr]
	if !ok {
		return hashx.Zero, false
	}
	return c.head, true
}

// HeadBlock returns an account's chain head block.
func (l *Lattice) HeadBlock(addr keys.Address) (*Block, bool) {
	c, ok := l.chains[addr]
	if !ok {
		return nil, false
	}
	return l.byHash[c.head], true
}

// Balance returns an account's settled balance (0 for unopened accounts).
func (l *Lattice) Balance(addr keys.Address) uint64 {
	if b, ok := l.HeadBlock(addr); ok {
		return b.Balance
	}
	return 0
}

// Representative returns the account's current representative.
func (l *Lattice) Representative(addr keys.Address) (keys.Address, bool) {
	b, ok := l.HeadBlock(addr)
	if !ok {
		return keys.ZeroAddress, false
	}
	return b.Representative, true
}

// Get returns a block by hash.
func (l *Lattice) Get(h hashx.Hash) (*Block, bool) {
	b, ok := l.byHash[h]
	return b, ok
}

// ChainLen returns the number of blocks on an account's chain.
func (l *Lattice) ChainLen(addr keys.Address) int {
	c, ok := l.chains[addr]
	if !ok {
		return 0
	}
	return len(c.blocks)
}

// Chain returns a copy of the account's block sequence, oldest first.
func (l *Lattice) Chain(addr keys.Address) []*Block {
	c, ok := l.chains[addr]
	if !ok {
		return nil
	}
	out := make([]*Block, len(c.blocks))
	copy(out, c.blocks)
	return out
}

// Accounts returns the number of opened accounts.
func (l *Lattice) Accounts() int { return len(l.chains) }

// AllBlocks returns every attached block in a deterministic order:
// accounts sorted by address, each account's chain oldest-first. Churn
// recovery uses it as the catch-up stream a live peer replays to a
// rejoining node — per-chain order minimizes gap buffering at the
// receiver (in-order delivery attaches directly; reordered delivery
// settles through the gap buffers), and the fixed account order keeps
// replay byte-reproducible across runs.
func (l *Lattice) AllBlocks() []*Block {
	addrs := make([]keys.Address, 0, len(l.chains))
	for a := range l.chains {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})
	out := make([]*Block, 0, l.BlockCount())
	for _, a := range addrs {
		out = append(out, l.chains[a].blocks...)
	}
	return out
}

// BlockCount returns the number of attached blocks (rivals and buffered
// blocks excluded).
func (l *Lattice) BlockCount() int {
	n := 0
	for _, c := range l.chains {
		n += len(c.blocks)
	}
	return n
}

// PendingFor lists the unsettled send hashes addressed to an account.
func (l *Lattice) PendingFor(addr keys.Address) []hashx.Hash {
	var out []hashx.Hash
	for h, p := range l.pending {
		if p.Destination == addr {
			out = append(out, h)
		}
	}
	return out
}

// PendingInfo returns the pending record of a send block.
func (l *Lattice) PendingInfo(send hashx.Hash) (Pending, bool) {
	p, ok := l.pending[send]
	return p, ok
}

// PendingCount returns the number of unsettled sends.
func (l *Lattice) PendingCount() int { return len(l.pending) }

// PendingTotal returns the total unsettled value.
func (l *Lattice) PendingTotal() uint64 {
	var t uint64
	for _, p := range l.pending {
		t += p.Amount
	}
	return t
}

// Process validates and attaches a block, buffering it on gaps and
// recording forks for representative voting. Aged-out gap blocks are
// expired first, so TTL eviction advances with every processed block
// even when nothing new parks.
func (l *Lattice) Process(b *Block) Result {
	l.expireGaps()
	res := l.processOne(b)
	if res.Status == Accepted {
		res.Drained = l.drainGaps(b, nil)
	}
	return res
}

func (l *Lattice) processOne(b *Block) Result {
	h := b.Hash()
	if _, dup := l.byHash[h]; dup {
		return Result{Status: Duplicate}
	}
	return l.processVerified(b, h, b.VerifySig(), l.workBits <= 0 || b.VerifyWork(l.workBits))
}

// processVerified attaches a block whose expensive crypto checks (owner
// signature, anti-spam work) were already performed — inline by processOne,
// or across the ProcessBatch worker pool.
func (l *Lattice) processVerified(b *Block, h hashx.Hash, sigOK, workOK bool) Result {
	if _, dup := l.byHash[h]; dup {
		return Result{Status: Duplicate}
	}
	if !sigOK {
		return Result{Status: Rejected, Err: ErrBadSignature}
	}
	if !workOK {
		return Result{Status: Rejected, Err: ErrBadWork}
	}
	switch b.Type {
	case Open:
		return l.processOpen(b, h)
	case Send, Receive, Change:
		return l.processChained(b, h)
	default:
		return Result{Status: Rejected, Err: fmt.Errorf("lattice: unknown block type %d", b.Type)}
	}
}

func (l *Lattice) processOpen(b *Block, h hashx.Hash) Result {
	if _, opened := l.chains[b.Account]; opened {
		return Result{Status: Rejected, Err: ErrAlreadyOpened}
	}
	if !b.Prev.IsZero() {
		return Result{Status: Rejected, Err: errors.New("lattice: open block must have zero prev")}
	}
	p, ok := l.pending[b.Source]
	if !ok {
		if l.settled[b.Source] {
			return Result{Status: Rejected, Err: errors.New("lattice: source already settled")}
		}
		l.parkSource(b)
		return Result{Status: GapSource}
	}
	if p.Destination != b.Account {
		return Result{Status: Rejected, Err: ErrWrongDest}
	}
	if b.Balance != p.Amount {
		return Result{Status: Rejected, Err: fmt.Errorf("%w: open balance %d, pending %d", ErrBadBalance, b.Balance, p.Amount)}
	}
	delete(l.pending, b.Source)
	l.settled[b.Source] = true
	l.byHash[h] = b
	l.chains[b.Account] = &accountChain{blocks: []*Block{b}, head: h}
	return Result{Status: Accepted, Settled: b.Source}
}

func (l *Lattice) processChained(b *Block, h hashx.Hash) Result {
	c, opened := l.chains[b.Account]
	if !opened {
		l.parkPrev(b)
		return Result{Status: GapPrevious}
	}
	prev, known := l.byHash[b.Prev]
	if !known || prev.Account != b.Account {
		l.parkPrev(b)
		return Result{Status: GapPrevious}
	}
	if b.Prev != c.head {
		// The predecessor already has a successor: a fork (§IV-B, "two
		// transactions may claim the same predecessor causing a fork").
		if err := l.validateAgainstPrev(b, prev); err != nil {
			if errors.Is(err, errGapSource) {
				l.parkSource(b)
				return Result{Status: GapSource}
			}
			return Result{Status: Rejected, Err: err}
		}
		for _, r := range l.forks[b.Prev] {
			if r.Hash() == h {
				return Result{Status: Duplicate}
			}
		}
		l.forks[b.Prev] = append(l.forks[b.Prev], b)
		rivals := []hashx.Hash{l.successor[b.Prev]}
		for _, r := range l.forks[b.Prev] {
			rivals = append(rivals, r.Hash())
		}
		return Result{Status: AcceptedFork, ForkRivals: rivals}
	}
	if err := l.validateAgainstPrev(b, prev); err != nil {
		if errors.Is(err, errGapSource) {
			l.parkSource(b)
			return Result{Status: GapSource}
		}
		return Result{Status: Rejected, Err: err}
	}
	return l.attach(b, h, c)
}

// validateAgainstPrev checks type-specific balance rules relative to the
// claimed predecessor.
func (l *Lattice) validateAgainstPrev(b, prev *Block) error {
	switch b.Type {
	case Send:
		if b.Balance >= prev.Balance {
			return fmt.Errorf("%w: send must decrease balance (%d -> %d)", ErrBadBalance, prev.Balance, b.Balance)
		}
		if b.Destination.IsZero() {
			return errors.New("lattice: send without destination")
		}
	case Receive:
		p, ok := l.pending[b.Source]
		if !ok {
			if l.settled[b.Source] {
				return errors.New("lattice: source already settled")
			}
			return errGapSource
		}
		if p.Destination != b.Account {
			return ErrWrongDest
		}
		if b.Balance != prev.Balance+p.Amount {
			return fmt.Errorf("%w: receive balance %d, want %d", ErrBadBalance, b.Balance, prev.Balance+p.Amount)
		}
	case Change:
		if b.Balance != prev.Balance {
			return fmt.Errorf("%w: change must not move value", ErrBadBalance)
		}
	default:
		return fmt.Errorf("lattice: type %s cannot chain", b.Type)
	}
	return nil
}

// errGapSource is an internal sentinel turned into GapSource status.
var errGapSource = errors.New("lattice: source not yet pending")

// attach links a validated block at the head of its chain.
func (l *Lattice) attach(b *Block, h hashx.Hash, c *accountChain) Result {
	res := Result{Status: Accepted}
	switch b.Type {
	case Send:
		prev := l.byHash[b.Prev]
		amount := prev.Balance - b.Balance
		l.pending[h] = Pending{Destination: b.Destination, Amount: amount}
	case Receive:
		delete(l.pending, b.Source)
		l.settled[b.Source] = true
		res.Settled = b.Source
	}
	l.byHash[h] = b
	l.successor[b.Prev] = h
	c.blocks = append(c.blocks, b)
	c.head = h
	return res
}

// parkPrev buffers a block whose predecessor is missing.
func (l *Lattice) parkPrev(b *Block) {
	l.gapPrev[b.Prev] = append(l.gapPrev[b.Prev], b)
	l.parked(gapEntry{b: b})
}

// parkSource buffers a receive/open whose source send is missing.
func (l *Lattice) parkSource(b *Block) {
	l.gapSource[b.Source] = append(l.gapSource[b.Source], b)
	l.parked(gapEntry{b: b, src: true})
}

// parked records the FIFO position of a freshly buffered gap block and
// enforces the backlog bound, evicting oldest-first past the cap.
func (l *Lattice) parked(e gapEntry) {
	if l.clock != nil {
		e.at = l.clock()
	}
	l.gapParked++
	l.gapOrder = append(l.gapOrder, e)
	limit := l.gapLimit
	if limit <= 0 {
		limit = DefaultGapLimit
	}
	for l.gapParked > limit {
		if !l.evictOldestGap() {
			break
		}
	}
	if len(l.gapOrder) > 2*limit {
		l.compactGapOrder()
	}
}

// gapEntryLive reports whether an order entry still points at a parked
// block (drained and evicted blocks leave stale order entries behind).
func (l *Lattice) gapEntryLive(e gapEntry) bool {
	m, key := l.gapPrev, e.b.Prev
	if e.src {
		m, key = l.gapSource, e.b.Source
	}
	for _, w := range m[key] {
		if w == e.b {
			return true
		}
	}
	return false
}

// evictOldestGap drops the oldest still-parked gap block, invoking the
// eviction hook so the owner can unmark dedup state and re-pull. Returns
// false if every order entry was stale.
func (l *Lattice) evictOldestGap() bool {
	for len(l.gapOrder) > 0 {
		e := l.gapOrder[0]
		l.gapOrder = l.gapOrder[1:]
		if !l.gapEntryLive(e) {
			continue
		}
		m, key := l.gapPrev, e.b.Prev
		if e.src {
			m, key = l.gapSource, e.b.Source
		}
		waiting := m[key]
		idx := 0
		for i, w := range waiting {
			if w == e.b {
				idx = i
				break
			}
		}
		if len(waiting) == 1 {
			delete(m, key)
		} else {
			m[key] = append(waiting[:idx:idx], waiting[idx+1:]...)
		}
		l.gapParked--
		l.gapEvicted++
		if l.onGapEvict != nil {
			l.onGapEvict(e.b)
		}
		return true
	}
	return false
}

// compactGapOrder drops stale order entries so the FIFO slice stays
// proportional to the live parked population.
func (l *Lattice) compactGapOrder() {
	live := l.gapOrder[:0]
	for _, e := range l.gapOrder {
		if l.gapEntryLive(e) {
			live = append(live, e)
		}
	}
	l.gapOrder = live
}

// expireGaps evicts parked blocks whose age exceeds the TTL. The FIFO
// order is also time order (the clock is monotonic), so expiry only
// ever inspects the front — O(1) amortized per call.
func (l *Lattice) expireGaps() {
	if l.gapTTL <= 0 || l.clock == nil {
		return
	}
	cutoff := l.clock() - l.gapTTL
	for len(l.gapOrder) > 0 {
		e := l.gapOrder[0]
		if !l.gapEntryLive(e) {
			l.gapOrder = l.gapOrder[1:]
			continue
		}
		if e.at > cutoff {
			return
		}
		l.evictOldestGap()
	}
}

// SetGapLimit overrides the gap-buffer bound (n <= 0 restores
// DefaultGapLimit). The new bound applies from the next parked block.
func (l *Lattice) SetGapLimit(n int) { l.gapLimit = n }

// SetGapTTL enables age-based gap eviction: a parked block older than
// ttl is dropped on the next Process or park, even while the buffer is
// under its count bound (ttl <= 0 disables). Requires a clock
// (SetClock); count-triggered eviction keeps working either way.
func (l *Lattice) SetGapTTL(ttl time.Duration) { l.gapTTL = ttl }

// SetClock installs the time source TTL eviction stamps and expires
// against — simulation time in the network layers, so eviction stays
// deterministic.
func (l *Lattice) SetClock(now func() time.Duration) { l.clock = now }

// SetGapEvicted installs a hook invoked for each evicted gap block —
// network layers use it to unmark dedup state and schedule a re-pull.
func (l *Lattice) SetGapEvicted(fn func(*Block)) { l.onGapEvict = fn }

// GapEvictions returns how many parked blocks the bound has evicted.
func (l *Lattice) GapEvictions() int { return l.gapEvicted }

// drainGaps retries blocks that were waiting on the newly attached block,
// appending every block that attaches to drained (in attachment order).
func (l *Lattice) drainGaps(b *Block, drained []*Block) []*Block {
	h := b.Hash()
	queue := []*Block{}
	if waiting, ok := l.gapPrev[h]; ok {
		delete(l.gapPrev, h)
		l.gapParked -= len(waiting)
		queue = append(queue, waiting...)
	}
	if b.Type == Send {
		if waiting, ok := l.gapSource[h]; ok {
			delete(l.gapSource, h)
			l.gapParked -= len(waiting)
			queue = append(queue, waiting...)
		}
	}
	for _, w := range queue {
		res := l.processOne(w)
		if res.Status == Accepted {
			drained = append(drained, w)
			drained = l.drainGaps(w, drained)
		}
	}
	return drained
}

// GapCount returns how many blocks are buffered waiting for predecessors
// or sources.
func (l *Lattice) GapCount() int {
	n := 0
	for _, ws := range l.gapPrev {
		n += len(ws)
	}
	for _, ws := range l.gapSource {
		n += len(ws)
	}
	return n
}

// Forks returns the contested predecessors with at least one detached
// rival.
func (l *Lattice) Forks() []hashx.Hash {
	out := make([]hashx.Hash, 0, len(l.forks))
	for h := range l.forks {
		out = append(out, h)
	}
	return out
}

// ForkCandidates returns all candidates for a contested predecessor: the
// attached incumbent first, then the detached rivals.
func (l *Lattice) ForkCandidates(prev hashx.Hash) ([]hashx.Hash, bool) {
	rivals, ok := l.forks[prev]
	if !ok {
		return nil, false
	}
	out := []hashx.Hash{l.successor[prev]}
	for _, r := range rivals {
		out = append(out, r.Hash())
	}
	return out, true
}

// ResolveFork applies a representative-vote outcome (§III-B): the winner
// stays or replaces the incumbent. Only head-level forks can swing — a
// rival can replace the incumbent only while the incumbent is the chain
// head (it has not been built upon); Nano's voting likewise settles forks
// before dependents are confirmed.
func (l *Lattice) ResolveFork(prev, winner hashx.Hash) error {
	rivals, ok := l.forks[prev]
	if !ok {
		return ErrUnknownFork
	}
	incumbent := l.successor[prev]
	if winner == incumbent {
		delete(l.forks, prev)
		return nil
	}
	var win *Block
	for _, r := range rivals {
		if r.Hash() == winner {
			win = r
			break
		}
	}
	if win == nil {
		return fmt.Errorf("%w: winner %s not a candidate", ErrUnknownFork, winner)
	}
	c := l.chains[win.Account]
	if c.head != incumbent {
		return ErrNotAtHead
	}
	// Roll back the incumbent...
	loser := l.byHash[incumbent]
	switch loser.Type {
	case Send:
		delete(l.pending, incumbent)
	case Receive:
		prevBlk := l.byHash[loser.Prev]
		amount := loser.Balance - prevBlk.Balance
		l.pending[loser.Source] = Pending{Destination: loser.Account, Amount: amount}
		delete(l.settled, loser.Source)
	}
	delete(l.byHash, incumbent)
	c.blocks = c.blocks[:len(c.blocks)-1]
	c.head = loser.Prev
	delete(l.successor, prev)
	// ...and attach the winner through the normal path.
	res := l.processOne(win)
	if res.Status != Accepted {
		return fmt.Errorf("lattice: fork winner failed to attach: %v (%v)", res.Status, res.Err)
	}
	delete(l.forks, prev)
	l.drainGaps(win, nil)
	return nil
}

// Clone returns an independent replica of the lattice: every map and
// chain slice is copied, while the immutable *Block values are shared
// (block content never changes after signing, and the Hash/VerifySig
// memos only ever move toward the computed-once state). Network
// simulations use it to stamp out one replica per node from a single
// replayed template instead of re-validating the same setup stream N
// times — at mega-scale node counts that replay is the entire setup
// cost. The clone and the original evolve independently afterwards. The
// eviction hook (SetGapEvicted) is per-replica state and is not carried
// over — each owner installs its own.
func (l *Lattice) Clone() *Lattice {
	c := &Lattice{
		workBits:   l.workBits,
		chains:     make(map[keys.Address]*accountChain, len(l.chains)),
		byHash:     make(map[hashx.Hash]*Block, len(l.byHash)),
		pending:    make(map[hashx.Hash]Pending, len(l.pending)),
		settled:    make(map[hashx.Hash]bool, len(l.settled)),
		forks:      make(map[hashx.Hash][]*Block, len(l.forks)),
		successor:  make(map[hashx.Hash]hashx.Hash, len(l.successor)),
		gapPrev:    make(map[hashx.Hash][]*Block, len(l.gapPrev)),
		gapSource:  make(map[hashx.Hash][]*Block, len(l.gapSource)),
		gapLimit:   l.gapLimit,
		gapParked:  l.gapParked,
		gapEvicted: l.gapEvicted,
		gapOrder:   append([]gapEntry(nil), l.gapOrder...),
		gapTTL:     l.gapTTL,
		clock:      l.clock,
		supply:     l.supply,
		genesis:    l.genesis,
	}
	for addr, ch := range l.chains {
		blocks := make([]*Block, len(ch.blocks))
		copy(blocks, ch.blocks)
		c.chains[addr] = &accountChain{blocks: blocks, head: ch.head}
	}
	for h, b := range l.byHash {
		c.byHash[h] = b
	}
	for h, p := range l.pending {
		c.pending[h] = p
	}
	for h := range l.settled {
		c.settled[h] = true
	}
	for h, rs := range l.forks {
		c.forks[h] = append([]*Block(nil), rs...)
	}
	for h, s := range l.successor {
		c.successor[h] = s
	}
	for h, ws := range l.gapPrev {
		c.gapPrev[h] = append([]*Block(nil), ws...)
	}
	for h, ws := range l.gapSource {
		c.gapSource[h] = append([]*Block(nil), ws...)
	}
	return c
}

// RepWeights computes each representative's voting weight: "the sum of
// all balances for accounts that chose this representative" (§III-B).
// Pending (unsettled) amounts back no representative until received.
func (l *Lattice) RepWeights() map[keys.Address]uint64 {
	out := make(map[keys.Address]uint64, len(l.chains))
	for _, c := range l.chains {
		head := l.byHash[c.head]
		if head.Balance > 0 {
			out[head.Representative] += head.Balance
		}
	}
	return out
}

// CheckInvariant verifies value conservation: settled balances plus
// pending amounts equal the issued supply.
func (l *Lattice) CheckInvariant() error {
	var total uint64
	for _, c := range l.chains {
		total += l.byHash[c.head].Balance
	}
	total += l.PendingTotal()
	if total != l.supply {
		return fmt.Errorf("lattice: conservation violated: %d != supply %d", total, l.supply)
	}
	return nil
}

// LedgerBytes returns the modeled full-history ledger size, what §V-B's
// "historical" nodes store.
func (l *Lattice) LedgerBytes() int { return l.BlockCount() * wireSize }

// HeadBytes returns the modeled size after head-only pruning, what §V-B's
// "current" nodes keep ("accounts keep record of account balances instead
// of unspent transaction inputs, [so] all other historical data can be
// discarded").
func (l *Lattice) HeadBytes() int { return l.Accounts() * wireSize }

// NewSend builds a signed send block for the key pair's account. The
// caller supplies the lattice to read the current head and balance;
// newBalance must be below the current balance.
func (l *Lattice) NewSend(kp *keys.KeyPair, dest keys.Address, amount uint64) (*Block, error) {
	head, ok := l.HeadBlock(kp.Address())
	if !ok {
		return nil, ErrNotOpened
	}
	if head.Balance < amount {
		return nil, fmt.Errorf("lattice: balance %d below send amount %d", head.Balance, amount)
	}
	b := &Block{
		Type:           Send,
		Account:        kp.Address(),
		Prev:           head.Hash(),
		Representative: head.Representative,
		Balance:        head.Balance - amount,
		Destination:    dest,
	}
	b.sign(kp)
	if l.workBits > 0 && !b.SolveWork(l.workBits, 1<<40) {
		return nil, ErrBadWork
	}
	return b, nil
}

// NewReceive builds a signed receive block settling the given send.
func (l *Lattice) NewReceive(kp *keys.KeyPair, source hashx.Hash) (*Block, error) {
	p, ok := l.pending[source]
	if !ok {
		return nil, fmt.Errorf("lattice: source %s not pending", source)
	}
	head, ok := l.HeadBlock(kp.Address())
	if !ok {
		return nil, ErrNotOpened
	}
	b := &Block{
		Type:           Receive,
		Account:        kp.Address(),
		Prev:           head.Hash(),
		Representative: head.Representative,
		Balance:        head.Balance + p.Amount,
		Source:         source,
	}
	b.sign(kp)
	if l.workBits > 0 && !b.SolveWork(l.workBits, 1<<40) {
		return nil, ErrBadWork
	}
	return b, nil
}

// NewOpen builds a signed open block for an unopened account, settling
// its first pending send and electing a representative.
func (l *Lattice) NewOpen(kp *keys.KeyPair, source hashx.Hash, rep keys.Address) (*Block, error) {
	p, ok := l.pending[source]
	if !ok {
		return nil, fmt.Errorf("lattice: source %s not pending", source)
	}
	b := &Block{
		Type:           Open,
		Account:        kp.Address(),
		Representative: rep,
		Balance:        p.Amount,
		Source:         source,
	}
	b.sign(kp)
	if l.workBits > 0 && !b.SolveWork(l.workBits, 1<<40) {
		return nil, ErrBadWork
	}
	return b, nil
}

// NewChange builds a signed representative change block ("it must choose a
// representative that can be changed over time", §III-B).
func (l *Lattice) NewChange(kp *keys.KeyPair, rep keys.Address) (*Block, error) {
	head, ok := l.HeadBlock(kp.Address())
	if !ok {
		return nil, ErrNotOpened
	}
	b := &Block{
		Type:           Change,
		Account:        kp.Address(),
		Prev:           head.Hash(),
		Representative: rep,
		Balance:        head.Balance,
	}
	b.sign(kp)
	if l.workBits > 0 && !b.SolveWork(l.workBits, 1<<40) {
		return nil, ErrBadWork
	}
	return b, nil
}

// NewForkSend builds a signed send that deliberately claims an arbitrary
// predecessor — the "malicious attack or bad programming" fork generator
// used by the §IV-B experiments. prevBalance must be the balance at prev.
func NewForkSend(kp *keys.KeyPair, prev hashx.Hash, prevBalance uint64, dest keys.Address, amount uint64, rep keys.Address, workBits int) (*Block, error) {
	if prevBalance < amount {
		return nil, fmt.Errorf("lattice: fork send amount %d exceeds balance %d", amount, prevBalance)
	}
	b := &Block{
		Type:           Send,
		Account:        kp.Address(),
		Prev:           prev,
		Representative: rep,
		Balance:        prevBalance - amount,
		Destination:    dest,
	}
	b.sign(kp)
	if workBits > 0 && !b.SolveWork(workBits, 1<<40) {
		return nil, ErrBadWork
	}
	return b, nil
}
