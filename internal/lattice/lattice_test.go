package lattice

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hashx"
	"repro/internal/keys"
)

const supply = 1_000_000

// env is a small test world: a lattice plus its identities.
type env struct {
	l   *Lattice
	gen *Block
	r   *keys.Ring
}

func newEnv(t *testing.T, workBits int) *env {
	t.Helper()
	r := keys.NewRing("lattice-test", 8)
	l, gen, err := New(r.Pair(0), supply, workBits)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &env{l: l, gen: gen, r: r}
}

// transfer sends amount from ring index a to b and settles it (open or
// receive on the destination side). It returns the send and settle blocks.
func (e *env) transfer(t *testing.T, a, b int, amount uint64) (*Block, *Block) {
	t.Helper()
	send, err := e.l.NewSend(e.r.Pair(a), e.r.Addr(b), amount)
	if err != nil {
		t.Fatalf("NewSend: %v", err)
	}
	if res := e.l.Process(send); res.Status != Accepted {
		t.Fatalf("process send: %v (%v)", res.Status, res.Err)
	}
	var settle *Block
	if _, opened := e.l.Head(e.r.Addr(b)); !opened {
		settle, err = e.l.NewOpen(e.r.Pair(b), send.Hash(), e.r.Addr(b))
	} else {
		settle, err = e.l.NewReceive(e.r.Pair(b), send.Hash())
	}
	if err != nil {
		t.Fatalf("settle build: %v", err)
	}
	if res := e.l.Process(settle); res.Status != Accepted {
		t.Fatalf("process settle: %v (%v)", res.Status, res.Err)
	}
	return send, settle
}

func TestGenesisState(t *testing.T) {
	e := newEnv(t, 0)
	if e.l.Balance(e.r.Addr(0)) != supply {
		t.Fatal("genesis owner should hold the full supply")
	}
	if e.l.Accounts() != 1 || e.l.BlockCount() != 1 {
		t.Fatal("genesis lattice should have one account, one block")
	}
	if err := e.l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if e.l.Supply() != supply {
		t.Fatal("supply accessor wrong")
	}
}

// Fig. 3: "two transactions are needed to fully execute a transfer of
// value" — after the send the amount is pending/unsettled; the receive
// settles it.
func TestSendReceiveSettlement(t *testing.T) {
	e := newEnv(t, 0)
	send, err := e.l.NewSend(e.r.Pair(0), e.r.Addr(1), 500)
	if err != nil {
		t.Fatal(err)
	}
	if res := e.l.Process(send); res.Status != Accepted {
		t.Fatalf("send: %v", res.Status)
	}
	// Unsettled: sender debited, receiver not yet credited.
	if e.l.Balance(e.r.Addr(0)) != supply-500 {
		t.Fatal("sender not debited")
	}
	if e.l.Balance(e.r.Addr(1)) != 0 {
		t.Fatal("receiver credited before receive block")
	}
	if e.l.PendingCount() != 1 || e.l.PendingTotal() != 500 {
		t.Fatalf("pending = %d/%d", e.l.PendingCount(), e.l.PendingTotal())
	}
	p, ok := e.l.PendingInfo(send.Hash())
	if !ok || p.Destination != e.r.Addr(1) || p.Amount != 500 {
		t.Fatalf("pending info = %+v", p)
	}
	if err := e.l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// Open settles.
	open, err := e.l.NewOpen(e.r.Pair(1), send.Hash(), e.r.Addr(1))
	if err != nil {
		t.Fatal(err)
	}
	res := e.l.Process(open)
	if res.Status != Accepted || res.Settled != send.Hash() {
		t.Fatalf("open: %v settled=%s", res.Status, res.Settled)
	}
	if e.l.Balance(e.r.Addr(1)) != 500 {
		t.Fatal("receiver not credited after open")
	}
	if e.l.PendingCount() != 0 {
		t.Fatal("send still pending after settlement")
	}
	if err := e.l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestReceiveOnExistingAccount(t *testing.T) {
	e := newEnv(t, 0)
	e.transfer(t, 0, 1, 500) // opens account 1
	send2, err := e.l.NewSend(e.r.Pair(0), e.r.Addr(1), 300)
	if err != nil {
		t.Fatal(err)
	}
	e.l.Process(send2)
	recv, err := e.l.NewReceive(e.r.Pair(1), send2.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if res := e.l.Process(recv); res.Status != Accepted {
		t.Fatalf("receive: %v (%v)", res.Status, res.Err)
	}
	if e.l.Balance(e.r.Addr(1)) != 800 {
		t.Fatalf("balance = %d, want 800", e.l.Balance(e.r.Addr(1)))
	}
	if e.l.ChainLen(e.r.Addr(1)) != 2 {
		t.Fatal("account 1 chain should have open+receive")
	}
}

func TestChangeRepresentative(t *testing.T) {
	e := newEnv(t, 0)
	e.transfer(t, 0, 1, 500)
	change, err := e.l.NewChange(e.r.Pair(1), e.r.Addr(2))
	if err != nil {
		t.Fatal(err)
	}
	if res := e.l.Process(change); res.Status != Accepted {
		t.Fatalf("change: %v", res.Status)
	}
	rep, _ := e.l.Representative(e.r.Addr(1))
	if rep != e.r.Addr(2) {
		t.Fatal("representative not changed")
	}
	if e.l.Balance(e.r.Addr(1)) != 500 {
		t.Fatal("change moved value")
	}
}

func TestRepWeights(t *testing.T) {
	e := newEnv(t, 0)
	e.transfer(t, 0, 1, 300)
	e.transfer(t, 0, 2, 200)
	// Account 1 delegates to addr(5); account 2 self-represents.
	change, _ := e.l.NewChange(e.r.Pair(1), e.r.Addr(5))
	e.l.Process(change)
	w := e.l.RepWeights()
	if w[e.r.Addr(5)] != 300 {
		t.Fatalf("delegated weight = %d, want 300", w[e.r.Addr(5)])
	}
	if w[e.r.Addr(2)] != 200 {
		t.Fatalf("self weight = %d, want 200", w[e.r.Addr(2)])
	}
	if w[e.r.Addr(0)] != supply-500 {
		t.Fatal("genesis weight wrong")
	}
	var total uint64
	for _, v := range w {
		total += v
	}
	if total != supply {
		t.Fatalf("weights total %d != supply (no pending)", total)
	}
}

func TestRejections(t *testing.T) {
	e := newEnv(t, 0)
	send, _ := e.l.NewSend(e.r.Pair(0), e.r.Addr(1), 500)
	e.l.Process(send)

	t.Run("duplicate", func(t *testing.T) {
		if res := e.l.Process(send); res.Status != Duplicate {
			t.Fatalf("status = %v", res.Status)
		}
	})
	t.Run("bad signature", func(t *testing.T) {
		bad := *send
		bad.Balance -= 1 // changes the hash, breaks the signature
		if res := e.l.Process(&bad); res.Status != Rejected || !errors.Is(res.Err, ErrBadSignature) {
			t.Fatalf("status = %v err = %v", res.Status, res.Err)
		}
	})
	t.Run("overspending send rejected by builder", func(t *testing.T) {
		if _, err := e.l.NewSend(e.r.Pair(0), e.r.Addr(1), supply*2); err == nil {
			t.Fatal("overspend accepted")
		}
	})
	t.Run("unopened sender", func(t *testing.T) {
		if _, err := e.l.NewSend(e.r.Pair(6), e.r.Addr(1), 1); !errors.Is(err, ErrNotOpened) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("wrong destination open", func(t *testing.T) {
		// Account 2 tries to open with a send addressed to account 1.
		if _, err := e.l.NewOpen(e.r.Pair(2), send.Hash(), e.r.Addr(2)); err != nil {
			// builder reads pending.Destination, so craft manually
			t.Skipf("builder refused: %v", err)
		}
		b := &Block{Type: Open, Account: e.r.Addr(2), Representative: e.r.Addr(2), Balance: 500, Source: send.Hash()}
		b.sign(e.r.Pair(2))
		if res := e.l.Process(b); res.Status != Rejected || !errors.Is(res.Err, ErrWrongDest) {
			t.Fatalf("status = %v err = %v", res.Status, res.Err)
		}
	})
	t.Run("double open", func(t *testing.T) {
		open, _ := e.l.NewOpen(e.r.Pair(1), send.Hash(), e.r.Addr(1))
		if res := e.l.Process(open); res.Status != Accepted {
			t.Fatalf("first open: %v", res.Status)
		}
		// Forge a second open for the same account.
		b := &Block{Type: Open, Account: e.r.Addr(1), Representative: e.r.Addr(1), Balance: 1, Source: send.Hash()}
		b.sign(e.r.Pair(1))
		if res := e.l.Process(b); res.Status != Rejected || !errors.Is(res.Err, ErrAlreadyOpened) {
			t.Fatalf("status = %v err = %v", res.Status, res.Err)
		}
	})
	t.Run("settled source rejected", func(t *testing.T) {
		recv := &Block{Type: Receive, Account: e.r.Addr(1), Representative: e.r.Addr(1), Balance: 1000, Source: send.Hash()}
		head, _ := e.l.Head(e.r.Addr(1))
		recv.Prev = head
		recv.sign(e.r.Pair(1))
		if res := e.l.Process(recv); res.Status != Rejected {
			t.Fatalf("double settle status = %v", res.Status)
		}
	})
}

// §IV-B: "a transaction may not have been properly broadcasted, causing
// the network to ignore all subsequent transactions on top of the missing
// block" — gap buffering must recover once the missing block arrives.
func TestGapPreviousRecovery(t *testing.T) {
	e := newEnv(t, 0)
	send1, _ := e.l.NewSend(e.r.Pair(0), e.r.Addr(1), 100)
	// Build send2 on top of send1 locally, but deliver send2 first.
	// Craft send2 manually since the lattice hasn't seen send1.
	send2 := &Block{
		Type:           Send,
		Account:        e.r.Addr(0),
		Prev:           send1.Hash(),
		Representative: e.gen.Representative,
		Balance:        send1.Balance - 200,
		Destination:    e.r.Addr(2),
	}
	send2.sign(e.r.Pair(0))

	if res := e.l.Process(send2); res.Status != GapPrevious {
		t.Fatalf("out-of-order block status = %v", res.Status)
	}
	if e.l.GapCount() != 1 {
		t.Fatal("gap buffer empty")
	}
	// Parent arrives: both must attach.
	if res := e.l.Process(send1); res.Status != Accepted {
		t.Fatalf("send1: %v", res.Status)
	}
	if e.l.GapCount() != 0 {
		t.Fatal("gap not drained")
	}
	if e.l.ChainLen(e.r.Addr(0)) != 3 { // genesis + send1 + send2
		t.Fatalf("chain length = %d, want 3", e.l.ChainLen(e.r.Addr(0)))
	}
	if err := e.l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// A parked gap block must not wait forever for a parent that was lost:
// once its age exceeds the TTL it is evicted on the next Process call,
// even while the buffer is far under its count bound.
func TestGapTTLEviction(t *testing.T) {
	e := newEnv(t, 0)
	now := time.Duration(0)
	e.l.SetClock(func() time.Duration { return now })
	e.l.SetGapTTL(10 * time.Second)
	var evicted []*Block
	e.l.SetGapEvicted(func(b *Block) { evicted = append(evicted, b) })

	// send2 arrives without its parent send1 and parks at t=0.
	send1, _ := e.l.NewSend(e.r.Pair(0), e.r.Addr(1), 100)
	send2 := &Block{
		Type:           Send,
		Account:        e.r.Addr(0),
		Prev:           send1.Hash(),
		Representative: e.gen.Representative,
		Balance:        send1.Balance - 200,
		Destination:    e.r.Addr(2),
	}
	send2.sign(e.r.Pair(0))
	if res := e.l.Process(send2); res.Status != GapPrevious {
		t.Fatalf("out-of-order block status = %v", res.Status)
	}

	// Under the TTL, unrelated traffic leaves the parked block alone.
	now = 9 * time.Second
	e.transfer(t, 0, 1, 50)
	if e.l.GapCount() != 1 {
		t.Fatalf("GapCount = %d before the TTL elapsed", e.l.GapCount())
	}
	if e.l.GapEvictions() != 0 {
		t.Fatal("premature eviction")
	}

	// Past the TTL, the next processed block expires it.
	now = 20 * time.Second
	e.transfer(t, 0, 1, 50)
	if e.l.GapCount() != 0 {
		t.Fatalf("GapCount = %d after the TTL elapsed", e.l.GapCount())
	}
	if e.l.GapEvictions() != 1 {
		t.Fatalf("GapEvictions = %d, want 1", e.l.GapEvictions())
	}
	if len(evicted) != 1 || evicted[0].Hash() != send2.Hash() {
		t.Fatalf("eviction hook saw %d blocks", len(evicted))
	}
	if err := e.l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestGapSourceRecovery(t *testing.T) {
	e := newEnv(t, 0)
	// Account 1 opens with a send the lattice hasn't seen yet.
	send, _ := e.l.NewSend(e.r.Pair(0), e.r.Addr(1), 100)
	open := &Block{Type: Open, Account: e.r.Addr(1), Representative: e.r.Addr(1), Balance: 100, Source: send.Hash()}
	open.sign(e.r.Pair(1))
	if res := e.l.Process(open); res.Status != GapSource {
		t.Fatalf("status = %v", res.Status)
	}
	if res := e.l.Process(send); res.Status != Accepted {
		t.Fatalf("send: %v", res.Status)
	}
	if e.l.Balance(e.r.Addr(1)) != 100 {
		t.Fatal("gapped open not replayed after source arrived")
	}
}

// §IV-B/§III-B: a fork (two blocks claiming one predecessor) is detected
// and resolvable either way by the representatives' verdict.
func TestForkDetectionAndResolution(t *testing.T) {
	for _, winnerIsIncumbent := range []bool{true, false} {
		name := "rival-wins"
		if winnerIsIncumbent {
			name = "incumbent-wins"
		}
		t.Run(name, func(t *testing.T) {
			e := newEnv(t, 0)
			// The genesis owner double-spends: two sends claim the
			// genesis block as predecessor.
			honest, err := e.l.NewSend(e.r.Pair(0), e.r.Addr(1), 500)
			if err != nil {
				t.Fatal(err)
			}
			if res := e.l.Process(honest); res.Status != Accepted {
				t.Fatalf("honest: %v", res.Status)
			}
			evil, err := NewForkSend(e.r.Pair(0), e.gen.Hash(), supply, e.r.Addr(2), 500, e.r.Addr(0), 0)
			if err != nil {
				t.Fatal(err)
			}
			res := e.l.Process(evil)
			if res.Status != AcceptedFork {
				t.Fatalf("evil: %v (%v)", res.Status, res.Err)
			}
			if len(res.ForkRivals) != 2 {
				t.Fatalf("rivals = %v", res.ForkRivals)
			}
			forks := e.l.Forks()
			if len(forks) != 1 || forks[0] != e.gen.Hash() {
				t.Fatalf("forks = %v", forks)
			}
			cands, ok := e.l.ForkCandidates(e.gen.Hash())
			if !ok || cands[0] != honest.Hash() {
				t.Fatalf("candidates = %v", cands)
			}

			winner, loserDest := honest.Hash(), e.r.Addr(2)
			if !winnerIsIncumbent {
				winner, loserDest = evil.Hash(), e.r.Addr(1)
			}
			if err := e.l.ResolveFork(e.gen.Hash(), winner); err != nil {
				t.Fatalf("ResolveFork: %v", err)
			}
			if len(e.l.Forks()) != 0 {
				t.Fatal("fork not cleared")
			}
			head, _ := e.l.Head(e.r.Addr(0))
			if head != winner {
				t.Fatal("winner is not the chain head")
			}
			// Exactly one pending send — to the winner's destination.
			if e.l.PendingCount() != 1 {
				t.Fatalf("pending = %d", e.l.PendingCount())
			}
			for _, h := range e.l.PendingFor(loserDest) {
				p, _ := e.l.PendingInfo(h)
				t.Fatalf("loser's pending survived: %+v", p)
			}
			if err := e.l.CheckInvariant(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestResolveForkErrors(t *testing.T) {
	e := newEnv(t, 0)
	if err := e.l.ResolveFork(hashx.Sum([]byte("none")), hashx.Zero); !errors.Is(err, ErrUnknownFork) {
		t.Fatalf("err = %v", err)
	}
	// Build a fork, then extend the incumbent so it is no longer at head:
	// the rival can no longer swing.
	honest, _ := e.l.NewSend(e.r.Pair(0), e.r.Addr(1), 100)
	e.l.Process(honest)
	evil, _ := NewForkSend(e.r.Pair(0), e.gen.Hash(), supply, e.r.Addr(2), 100, e.r.Addr(0), 0)
	e.l.Process(evil)
	deeper, _ := e.l.NewSend(e.r.Pair(0), e.r.Addr(3), 50)
	e.l.Process(deeper)
	if err := e.l.ResolveFork(e.gen.Hash(), evil.Hash()); !errors.Is(err, ErrNotAtHead) {
		t.Fatalf("err = %v", err)
	}
	// Unknown winner.
	if err := e.l.ResolveFork(e.gen.Hash(), hashx.Sum([]byte("ghost"))); !errors.Is(err, ErrUnknownFork) {
		t.Fatalf("err = %v", err)
	}
}

// §III-B: anti-spam PoW gates block admission.
func TestWorkRequirement(t *testing.T) {
	r := keys.NewRing("work-test", 3)
	l, _, err := New(r.Pair(0), supply, 8)
	if err != nil {
		t.Fatal(err)
	}
	send, err := l.NewSend(r.Pair(0), r.Addr(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !send.VerifyWork(8) {
		t.Fatal("builder did not attach valid work")
	}
	// Strip the work: rejection.
	stripped := *send
	stripped.Work = 0
	if stripped.VerifyWork(8) {
		t.Skip("unlucky: zero nonce happens to satisfy work")
	}
	if res := l.Process(&stripped); res.Status != Rejected || !errors.Is(res.Err, ErrBadWork) {
		t.Fatalf("status = %v err = %v", res.Status, res.Err)
	}
	if res := l.Process(send); res.Status != Accepted {
		t.Fatalf("worked block: %v", res.Status)
	}
}

func TestLedgerSizeAndPruning(t *testing.T) {
	e := newEnv(t, 0)
	for i := 1; i <= 5; i++ {
		e.transfer(t, 0, i, 100)
	}
	full := e.l.LedgerBytes()
	heads := e.l.HeadBytes()
	// 6 accounts; genesis chain has 6 blocks (genesis + 5 sends), each
	// other account 1 open. 11 blocks total vs 6 heads.
	if e.l.BlockCount() != 11 {
		t.Fatalf("block count = %d, want 11", e.l.BlockCount())
	}
	if full != 11*wireSize || heads != 6*wireSize {
		t.Fatalf("sizes = %d/%d", full, heads)
	}
	if heads >= full {
		t.Fatal("head-only pruning must shrink the ledger")
	}
}

func TestChainAccessor(t *testing.T) {
	e := newEnv(t, 0)
	e.transfer(t, 0, 1, 100)
	chain := e.l.Chain(e.r.Addr(0))
	if len(chain) != 2 || chain[0].Type != Open || chain[1].Type != Send {
		t.Fatalf("chain = %v", chain)
	}
	// Mutating the copy must not affect the lattice.
	chain[0] = nil
	if e.l.Chain(e.r.Addr(0))[0] == nil {
		t.Fatal("Chain returned internal slice")
	}
	if e.l.Chain(e.r.Addr(7)) != nil {
		t.Fatal("unopened account should have nil chain")
	}
}

// Property: random transfer sequences conserve value and keep per-account
// balances consistent with a model map.
func TestQuickConservationAndModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := keys.NewRing("quick-lattice", 6)
		l, _, err := New(r.Pair(0), supply, 0)
		if err != nil {
			return false
		}
		model := map[int]uint64{0: supply}
		for step := 0; step < 30; step++ {
			from := rng.Intn(6)
			to := rng.Intn(6)
			if from == to || model[from] == 0 {
				continue
			}
			amount := uint64(rng.Int63n(int64(model[from]))) + 1
			send, err := l.NewSend(r.Pair(from), r.Addr(to), amount)
			if err != nil {
				return false
			}
			if res := l.Process(send); res.Status != Accepted {
				return false
			}
			var settle *Block
			if _, opened := l.Head(r.Addr(to)); !opened {
				settle, err = l.NewOpen(r.Pair(to), send.Hash(), r.Addr(to))
			} else {
				settle, err = l.NewReceive(r.Pair(to), send.Hash())
			}
			if err != nil {
				return false
			}
			if res := l.Process(settle); res.Status != Accepted {
				return false
			}
			model[from] -= amount
			model[to] += amount
		}
		if err := l.CheckInvariant(); err != nil {
			return false
		}
		for i, want := range model {
			if l.Balance(r.Addr(i)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransferSettled(b *testing.B) {
	r := keys.NewRing("bench-lattice", 2)
	l, _, err := New(r.Pair(0), 1<<40, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Open account 1 first.
	send, _ := l.NewSend(r.Pair(0), r.Addr(1), 1)
	l.Process(send)
	open, _ := l.NewOpen(r.Pair(1), send.Hash(), r.Addr(1))
	l.Process(open)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := l.NewSend(r.Pair(0), r.Addr(1), 1)
		if err != nil {
			b.Fatal(err)
		}
		if res := l.Process(s); res.Status != Accepted {
			b.Fatalf("send: %v", res.Status)
		}
		rcv, err := l.NewReceive(r.Pair(1), s.Hash())
		if err != nil {
			b.Fatal(err)
		}
		if res := l.Process(rcv); res.Status != Accepted {
			b.Fatalf("receive: %v", res.Status)
		}
	}
}

func BenchmarkWorkSolve16Bits(b *testing.B) {
	r := keys.NewRing("bench-work", 2)
	l, _, err := New(r.Pair(0), 1<<40, 0)
	if err != nil {
		b.Fatal(err)
	}
	send, _ := l.NewSend(r.Pair(0), r.Addr(1), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := *send
		blk.Balance = uint64(i) // vary the hash
		if !blk.SolveWork(16, 1<<32) {
			b.Fatal("work not found")
		}
	}
}
