package lattice

import (
	"testing"

	"repro/internal/keys"
)

// A fork on the *receive* side: the same account publishes two receive
// blocks claiming the same predecessor but settling different sends.
// Resolution must roll the loser back, restoring its send to pending.
func TestReceiveForkResolution(t *testing.T) {
	r := keys.NewRing("recv-fork", 4)
	l, _, err := New(r.Pair(0), 1_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Open account 1 with a first transfer.
	send0, err := l.NewSend(r.Pair(0), r.Addr(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	l.Process(send0)
	open, err := l.NewOpen(r.Pair(1), send0.Hash(), r.Addr(1))
	if err != nil {
		t.Fatal(err)
	}
	l.Process(open)

	// Two more pending sends to account 1.
	sendA, err := l.NewSend(r.Pair(0), r.Addr(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	l.Process(sendA)
	sendB, err := l.NewSend(r.Pair(0), r.Addr(1), 20)
	if err != nil {
		t.Fatal(err)
	}
	l.Process(sendB)
	if l.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", l.PendingCount())
	}

	// Receive A attaches normally.
	recvA, err := l.NewReceive(r.Pair(1), sendA.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if res := l.Process(recvA); res.Status != Accepted {
		t.Fatalf("recvA: %v", res.Status)
	}
	// A rival receive B claims the same predecessor (open's head).
	recvB := &Block{
		Type:           Receive,
		Account:        r.Addr(1),
		Prev:           open.Hash(),
		Representative: r.Addr(1),
		Balance:        open.Balance + 20,
		Source:         sendB.Hash(),
	}
	recvB.sign(r.Pair(1))
	res := l.Process(recvB)
	if res.Status != AcceptedFork {
		t.Fatalf("recvB: %v (%v)", res.Status, res.Err)
	}

	// Representatives pick B: A's settlement must unwind — its send goes
	// back to pending — and B's settles.
	if err := l.ResolveFork(open.Hash(), recvB.Hash()); err != nil {
		t.Fatalf("ResolveFork: %v", err)
	}
	if l.Balance(r.Addr(1)) != 120 {
		t.Fatalf("balance = %d, want 120 (100 + sendB 20)", l.Balance(r.Addr(1)))
	}
	if _, pending := l.PendingInfo(sendA.Hash()); !pending {
		t.Fatal("loser's send not restored to pending")
	}
	if _, pending := l.PendingInfo(sendB.Hash()); pending {
		t.Fatal("winner's send still pending")
	}
	if err := l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}

	// The restored send can still be received afterwards.
	recvA2, err := l.NewReceive(r.Pair(1), sendA.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if res := l.Process(recvA2); res.Status != Accepted {
		t.Fatalf("re-receive: %v (%v)", res.Status, res.Err)
	}
	if l.Balance(r.Addr(1)) != 130 {
		t.Fatalf("final balance = %d, want 130", l.Balance(r.Addr(1)))
	}
	if err := l.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}
