package lattice

// FuzzLatticeProcessBatch: the batch pipeline's contract is that any
// block stream — valid transfers interleaved with malformed signatures,
// bad balances, duplicates, deliberate forks (double spends) and
// gap-source orphans — leaves the lattice in a state byte-identical to
// applying the same stream serially through Process, for any worker
// count. The fuzzer drives op generation from raw bytes so coverage
// feedback explores the interleavings.

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/hashx"
	"repro/internal/keys"
)

// fuzzAccounts keeps key generation cheap per exec.
const fuzzAccounts = 4

// buildFuzzStream turns fuzz bytes into a block stream. A builder lattice
// tracks the valid view so generated blocks reference real heads; the
// returned stream also carries blocks the builder would reject.
func buildFuzzStream(ring *keys.Ring, data []byte) []*Block {
	builder, _, err := New(ring.Pair(0), 1_000, 0)
	if err != nil {
		panic(err)
	}
	var stream []*Block
	emitValid := func(b *Block, err error) {
		if err != nil || b == nil {
			return
		}
		builder.Process(b)
		stream = append(stream, b)
	}
	// Seed distribution: fund and open every account so each op has
	// chains to work with.
	for i := 1; i < fuzzAccounts; i++ {
		send, err := builder.NewSend(ring.Pair(0), ring.Addr(i), 100)
		emitValid(send, err)
		if send == nil {
			continue
		}
		open, err := builder.NewOpen(ring.Pair(i), send.Hash(), ring.Addr(i))
		emitValid(open, err)
	}

	sortedPending := func(addr keys.Address) []hashx.Hash {
		hs := builder.PendingFor(addr)
		sort.Slice(hs, func(i, j int) bool { return bytes.Compare(hs[i][:], hs[j][:]) < 0 })
		return hs
	}

	const maxOps = 24
	ops := 0
	for i := 0; i+1 < len(data) && ops < maxOps; i += 2 {
		ops++
		op, arg := data[i]%8, data[i+1]
		acct := int(arg) % fuzzAccounts
		other := (acct + 1 + int(arg/16)%(fuzzAccounts-1)) % fuzzAccounts
		pair, addr := ring.Pair(acct), ring.Addr(acct)
		switch op {
		case 0: // valid send
			if builder.Balance(addr) > 0 {
				send, err := builder.NewSend(pair, ring.Addr(other), 1+uint64(arg%5))
				emitValid(send, err)
			}
		case 1: // settle the first pending send of this account
			if hs := sortedPending(addr); len(hs) > 0 {
				src := hs[int(arg)%len(hs)]
				if _, opened := builder.Head(addr); opened {
					emitValid(builder.NewReceive(pair, src))
				} else {
					emitValid(builder.NewOpen(pair, src, addr))
				}
			}
		case 2: // deliberate fork: a second send claiming an interior prev
			chain := builder.Chain(addr)
			if len(chain) >= 2 {
				at := chain[int(arg)%(len(chain)-1)] // any non-head block
				if at.Balance > 0 {
					fork, err := NewForkSend(pair, at.Hash(), at.Balance,
						ring.Addr(other), 1, at.Representative, 0)
					if err == nil {
						stream = append(stream, fork)
					}
				}
			}
		case 3: // representative change
			if _, opened := builder.Head(addr); opened {
				emitValid(builder.NewChange(pair, ring.Addr(other)))
			}
		case 4: // corrupt signature on a copy of an earlier block
			if len(stream) > 0 {
				orig := stream[int(arg)%len(stream)]
				bad := *orig
				bad.Sig = append([]byte(nil), orig.Sig...)
				bad.Sig[int(arg)%len(bad.Sig)] ^= 0x40
				stream = append(stream, &bad)
			}
		case 5: // balance violation: a "send" that increases the balance
			if head, opened := builder.HeadBlock(addr); opened {
				bad := &Block{
					Type:           Send,
					Account:        addr,
					Prev:           head.Hash(),
					Representative: head.Representative,
					Balance:        head.Balance + 1 + uint64(arg),
					Destination:    ring.Addr(other),
				}
				bad.sign(pair)
				stream = append(stream, bad)
			}
		case 6: // exact duplicate of an earlier stream block
			if len(stream) > 0 {
				stream = append(stream, stream[int(arg)%len(stream)])
			}
		case 7: // receive of a nonexistent source (gap-source orphan)
			if head, opened := builder.HeadBlock(addr); opened {
				orphan := &Block{
					Type:           Receive,
					Account:        addr,
					Prev:           head.Hash(),
					Representative: head.Representative,
					Balance:        head.Balance + 1,
					Source:         hashx.Sum([]byte{arg, byte(op), byte(i)}),
				}
				orphan.sign(pair)
				stream = append(stream, orphan)
			}
		}
	}
	return stream
}

func FuzzLatticeProcessBatch(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 2, 3, 6, 0}, uint8(2))
	f.Add([]byte{2, 9, 2, 17, 4, 3, 5, 7, 7, 11, 0, 255}, uint8(3))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{6, 0, 6, 1, 6, 2, 1, 0, 1, 1, 1, 2, 0, 8, 2, 200}, uint8(7))

	ring := keys.NewRing("fuzz-lattice", fuzzAccounts)

	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		stream := buildFuzzStream(ring, data)

		serial, _, err := New(ring.Pair(0), 1_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range stream {
			serial.Process(b)
		}

		batched, _, err := New(ring.Pair(0), 1_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		batched.ProcessBatch(stream, 1+int(workers%8))

		// The two replicas must agree on every piece of attached state.
		if a, b := serial.BlockCount(), batched.BlockCount(); a != b {
			t.Fatalf("block count: serial %d vs batch %d", a, b)
		}
		if a, b := serial.Accounts(), batched.Accounts(); a != b {
			t.Fatalf("accounts: serial %d vs batch %d", a, b)
		}
		if a, b := serial.PendingCount(), batched.PendingCount(); a != b {
			t.Fatalf("pending count: serial %d vs batch %d", a, b)
		}
		if a, b := serial.PendingTotal(), batched.PendingTotal(); a != b {
			t.Fatalf("pending total: serial %d vs batch %d", a, b)
		}
		if a, b := serial.GapCount(), batched.GapCount(); a != b {
			t.Fatalf("gap count: serial %d vs batch %d", a, b)
		}
		for i := 0; i < fuzzAccounts; i++ {
			addr := ring.Addr(i)
			sh, sok := serial.Head(addr)
			bh, bok := batched.Head(addr)
			if sok != bok || sh != bh {
				t.Fatalf("account %d head: serial %v/%v vs batch %v/%v", i, sh, sok, bh, bok)
			}
			if a, b := serial.Balance(addr), batched.Balance(addr); a != b {
				t.Fatalf("account %d balance: serial %d vs batch %d", i, a, b)
			}
		}
		// Neither replica may violate value conservation, no matter how
		// hostile the stream was.
		if err := serial.CheckInvariant(); err != nil {
			t.Fatalf("serial: %v", err)
		}
		if err := batched.CheckInvariant(); err != nil {
			t.Fatalf("batched: %v", err)
		}
	})
}
