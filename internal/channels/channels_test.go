package channels

import (
	"errors"
	"testing"
	"time"

	"repro/internal/hashx"
	"repro/internal/keys"
)

const window = 100 * time.Second

func openTestChannel(t *testing.T, fundA, fundB uint64) (*Channel, *keys.KeyPair, *keys.KeyPair) {
	t.Helper()
	a, b := keys.Deterministic("chan-a"), keys.Deterministic("chan-b")
	ch, err := OpenChannel(a, b, fundA, fundB, window)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	return ch, a, b
}

func TestOpenValidation(t *testing.T) {
	a, b := keys.Deterministic("a"), keys.Deterministic("b")
	if _, err := OpenChannel(a, b, 0, 0, window); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := OpenChannel(a, b, 10, 0, 0); err == nil {
		t.Fatal("zero dispute window accepted")
	}
}

func TestPayBothDirections(t *testing.T) {
	ch, a, b := openTestChannel(t, 100, 50)
	if err := ch.Pay(a.Address(), 30); err != nil {
		t.Fatal(err)
	}
	balA, balB := ch.Balances()
	if balA != 70 || balB != 80 {
		t.Fatalf("balances = %d/%d", balA, balB)
	}
	if err := ch.Pay(b.Address(), 80); err != nil {
		t.Fatal(err)
	}
	balA, balB = ch.Balances()
	if balA != 150 || balB != 0 {
		t.Fatalf("balances = %d/%d", balA, balB)
	}
	if ch.Updates() != 2 {
		t.Fatalf("updates = %d", ch.Updates())
	}
	// Capacity is conserved through every update.
	if balA+balB != ch.Capacity() {
		t.Fatal("capacity leaked")
	}
}

func TestPayRejections(t *testing.T) {
	ch, a, _ := openTestChannel(t, 10, 10)
	if err := ch.Pay(a.Address(), 11); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	stranger := keys.Deterministic("stranger")
	if err := ch.Pay(stranger.Address(), 1); !errors.Is(err, ErrWrongParty) {
		t.Fatalf("err = %v", err)
	}
}

// §VI-A's throughput claim: thousands of payments, exactly two on-chain
// operations (funding + close).
func TestMicropaymentsUseTwoOnChainOps(t *testing.T) {
	ch, a, b := openTestChannel(t, 10_000, 0)
	for i := 0; i < 5_000; i++ {
		if err := ch.Pay(a.Address(), 1); err != nil {
			t.Fatal(err)
		}
	}
	balA, balB, err := ch.CooperativeClose()
	if err != nil {
		t.Fatal(err)
	}
	if balA != 5_000 || balB != 5_000 {
		t.Fatalf("final = %d/%d", balA, balB)
	}
	if ch.OnChainOps() != 2 {
		t.Fatalf("on-chain ops = %d, want 2", ch.OnChainOps())
	}
	if ch.Updates() != 5_000 {
		t.Fatalf("updates = %d", ch.Updates())
	}
	// Closed channel refuses more traffic.
	if err := ch.Pay(a.Address(), 1); !errors.Is(err, ErrNotOpen) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ch.CooperativeClose(); !errors.Is(err, ErrNotOpen) {
		t.Fatalf("err = %v", err)
	}
	fa, fb, err := ch.FinalBalances()
	if err != nil || fa != 5000 || fb != 5000 {
		t.Fatalf("FinalBalances = %d/%d (%v)", fa, fb, err)
	}
	_ = b
}

func TestUnilateralCloseHonest(t *testing.T) {
	ch, a, b := openTestChannel(t, 100, 0)
	ch.Pay(a.Address(), 40)
	latest := ch.LatestState()
	if err := ch.UnilateralClose(b.Address(), latest, 0); err != nil {
		t.Fatal(err)
	}
	if ch.Status() != Disputed {
		t.Fatal("status should be disputed")
	}
	// Settling before the window ends is premature.
	if _, _, err := ch.Settle(window / 2); !errors.Is(err, ErrDisputeRunning) {
		t.Fatalf("err = %v", err)
	}
	balA, balB, err := ch.Settle(window + time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if balA != 60 || balB != 40 {
		t.Fatalf("settled = %d/%d", balA, balB)
	}
}

// The §VI-A cheating scenario: party A publishes an old state where it
// had more money; B challenges with the newer state and takes everything.
func TestCheatingChallengePenalty(t *testing.T) {
	ch, a, b := openTestChannel(t, 100, 0)
	old := ch.LatestState() // A still owns 100 here
	ch.Pay(a.Address(), 90) // now A owns 10
	if err := ch.UnilateralClose(a.Address(), old, 0); err != nil {
		t.Fatal(err)
	}
	// Challenge with the newer state within the window.
	if err := ch.Challenge(b.Address(), ch.LatestState(), window/2); err != nil {
		t.Fatal(err)
	}
	balA, balB, err := ch.FinalBalances()
	if err != nil {
		t.Fatal(err)
	}
	if balA != 0 || balB != ch.Capacity() {
		t.Fatalf("cheater kept funds: %d/%d", balA, balB)
	}
}

func TestChallengeValidation(t *testing.T) {
	ch, a, b := openTestChannel(t, 100, 0)
	old := ch.LatestState()
	ch.Pay(a.Address(), 50)
	newer := ch.LatestState()

	// No dispute yet.
	if err := ch.Challenge(b.Address(), newer, 0); !errors.Is(err, ErrNoDispute) {
		t.Fatalf("err = %v", err)
	}
	if err := ch.UnilateralClose(a.Address(), old, 0); err != nil {
		t.Fatal(err)
	}
	// The closer cannot challenge itself.
	if err := ch.Challenge(a.Address(), newer, 1); !errors.Is(err, ErrWrongParty) {
		t.Fatalf("err = %v", err)
	}
	// A state older than the published one does not win.
	if err := ch.Challenge(b.Address(), old, 1); !errors.Is(err, ErrStaleState) {
		t.Fatalf("err = %v", err)
	}
	// Tampered state fails signature verification.
	forged := newer
	forged.BalB += 10
	if err := ch.Challenge(b.Address(), forged, 1); !errors.Is(err, ErrBadSig) {
		t.Fatalf("err = %v", err)
	}
	// After the window the challenge is too late.
	if err := ch.Challenge(b.Address(), newer, window*2); !errors.Is(err, ErrDisputeOver) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnilateralCloseValidation(t *testing.T) {
	ch, a, _ := openTestChannel(t, 100, 0)
	forged := ch.LatestState()
	forged.BalA = 1_000_000
	if err := ch.UnilateralClose(a.Address(), forged, 0); !errors.Is(err, ErrBadSig) {
		t.Fatalf("err = %v", err)
	}
	stranger := keys.Deterministic("x")
	if err := ch.UnilateralClose(stranger.Address(), ch.LatestState(), 0); !errors.Is(err, ErrWrongParty) {
		t.Fatalf("err = %v", err)
	}
}

func TestHTLCFulfillAndCancel(t *testing.T) {
	ch, a, _ := openTestChannel(t, 100, 0)
	preimage := []byte("the secret")
	lock := hashx.Sum(preimage)
	id, err := ch.AddHTLC(a.Address(), lock, 30, 50*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	balA, balB := ch.Balances()
	if balA != 70 || balB != 0 {
		t.Fatalf("locked balances = %d/%d", balA, balB)
	}
	if ch.PendingHTLCs() != 1 {
		t.Fatal("HTLC not pending")
	}
	// Wrong preimage rejected.
	if err := ch.FulfillHTLC(id, []byte("wrong"), 0); !errors.Is(err, ErrBadPreimage) {
		t.Fatalf("err = %v", err)
	}
	if err := ch.FulfillHTLC(id, preimage, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	balA, balB = ch.Balances()
	if balA != 70 || balB != 30 {
		t.Fatalf("fulfilled balances = %d/%d", balA, balB)
	}
	// Expired lock refunds the sender instead.
	id2, _ := ch.AddHTLC(a.Address(), lock, 10, 20*time.Second)
	if err := ch.FulfillHTLC(id2, preimage, 30*time.Second); !errors.Is(err, ErrHTLCExpired) {
		t.Fatalf("err = %v", err)
	}
	if err := ch.CancelHTLC(id2, 10*time.Second); err == nil {
		t.Fatal("cancel before expiry accepted")
	}
	if err := ch.CancelHTLC(id2, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	balA, _ = ch.Balances()
	if balA != 70 {
		t.Fatalf("refund failed: %d", balA)
	}
	if err := ch.CancelHTLC(99, 0); !errors.Is(err, ErrHTLCUnknown) {
		t.Fatalf("err = %v", err)
	}
}

// Multi-hop routing: A pays C through B without a direct channel —
// the Lightning topology of §VI-A.
func TestMultiHopRoute(t *testing.T) {
	a, b, c := keys.Deterministic("hop-a"), keys.Deterministic("hop-b"), keys.Deterministic("hop-c")
	ab, err := OpenChannel(a, b, 100, 100, window)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := OpenChannel(b, c, 100, 100, window)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetwork()
	n.AddChannel(ab)
	n.AddChannel(bc)
	if _, ok := n.ChannelBetween(c.Address(), b.Address()); !ok {
		t.Fatal("pair lookup must be order independent")
	}
	preimage := []byte("routing secret")
	if err := n.Route([]keys.Address{a.Address(), b.Address(), c.Address()}, 25, preimage, 0, 50*time.Second); err != nil {
		t.Fatal(err)
	}
	// A->B leg: A down 25, B up 25. B->C leg: B down 25, C up 25.
	balA, balB1 := ab.Balances()
	if balA != 75 || balB1 != 125 {
		t.Fatalf("ab balances = %d/%d", balA, balB1)
	}
	balB2, balC := bc.Balances()
	if balB2 != 75 || balC != 125 {
		t.Fatalf("bc balances = %d/%d", balB2, balC)
	}
}

func TestRouteFailureUnwinds(t *testing.T) {
	a, b, c := keys.Deterministic("u-a"), keys.Deterministic("u-b"), keys.Deterministic("u-c")
	ab, _ := OpenChannel(a, b, 100, 0, window)
	// B has no outbound capacity to C.
	bc, _ := OpenChannel(b, c, 0, 100, window)
	n := NewNetwork()
	n.AddChannel(ab)
	n.AddChannel(bc)
	err := n.Route([]keys.Address{a.Address(), b.Address(), c.Address()}, 25, []byte("s"), 0, 50*time.Second)
	if err == nil {
		t.Fatal("route should fail on empty hop capacity")
	}
	// The first hop's lock must have been unwound.
	balA, _ := ab.Balances()
	if balA != 100 {
		t.Fatalf("unwind failed: A has %d", balA)
	}
	if ab.PendingHTLCs() != 0 {
		t.Fatal("dangling HTLC after unwind")
	}
	// Missing channel entirely.
	d := keys.Deterministic("u-d")
	if err := n.Route([]keys.Address{a.Address(), d.Address()}, 1, []byte("s"), 0, time.Second); err == nil {
		t.Fatal("route across missing channel accepted")
	}
	if err := n.Route([]keys.Address{a.Address()}, 1, []byte("s"), 0, time.Second); err == nil {
		t.Fatal("single-party path accepted")
	}
}

func BenchmarkChannelPay(b *testing.B) {
	a, bb := keys.Deterministic("bench-a"), keys.Deterministic("bench-b")
	ch, err := OpenChannel(a, bb, 1<<40, 1<<40, window)
	if err != nil {
		b.Fatal(err)
	}
	payer := a.Address()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Pay(payer, 1); err != nil {
			b.Fatal(err)
		}
	}
}
