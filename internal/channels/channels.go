// Package channels implements off-chain payment channels in the style of
// the Lightning Network and Raiden (paper §VI-A): "creating an off chain
// channel to which a prepaid amount is locked in for the lifetime of the
// channel. The involved parties are able to run micro transactions at
// high volume and speed, avoiding the transaction cap of the network."
// Channels are funded on chain, updated by mutually signed balance
// states, and closed either cooperatively or through a dispute window
// that punishes stale-state cheating. Hash-time-locked payments route
// value across multi-hop channel paths.
package channels

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/hashx"
	"repro/internal/keys"
)

// Channel errors.
var (
	ErrNotOpen        = errors.New("channels: channel is not open")
	ErrWrongParty     = errors.New("channels: not a channel party")
	ErrInsufficient   = errors.New("channels: insufficient channel balance")
	ErrBadState       = errors.New("channels: invalid balance state")
	ErrBadSig         = errors.New("channels: bad state signature")
	ErrStaleState     = errors.New("channels: state is not newer")
	ErrDisputeOver    = errors.New("channels: dispute window elapsed")
	ErrDisputeRunning = errors.New("channels: dispute window still open")
	ErrNoDispute      = errors.New("channels: no unilateral close in progress")
	ErrHTLCUnknown    = errors.New("channels: unknown HTLC")
	ErrHTLCExpired    = errors.New("channels: HTLC expired")
	ErrBadPreimage    = errors.New("channels: preimage does not match hash lock")
)

// Status is a channel's lifecycle stage.
type Status int

const (
	// Open channels accept off-chain updates.
	Open Status = iota + 1
	// Disputed channels have a unilateral close pending.
	Disputed
	// Closed channels have settled on chain.
	Closed
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Open:
		return "open"
	case Disputed:
		return "disputed"
	case Closed:
		return "closed"
	default:
		return "unknown"
	}
}

// State is one signed balance snapshot. Higher Seq supersedes lower.
type State struct {
	Seq  uint64
	BalA uint64
	BalB uint64
	SigA []byte
	SigB []byte
}

// HTLC is a hash-time-locked conditional payment pending inside a channel.
type HTLC struct {
	ID       uint64
	HashLock hashx.Hash
	Amount   uint64
	// FromA is true when party A's balance funds the lock.
	FromA  bool
	Expiry time.Duration
}

// Channel is a two-party payment channel. All methods take the acting
// party's key pair; both parties' signatures are maintained on the latest
// state, so either can close unilaterally at any time.
type Channel struct {
	id       hashx.Hash
	a, b     *keys.KeyPair
	capacity uint64
	status   Status
	state    State
	htlcs    map[uint64]*HTLC
	nextHTLC uint64
	// dispute bookkeeping
	disputeState  State
	disputeBy     keys.Address
	disputeEnds   time.Duration
	disputeWindow time.Duration
	// stats
	updates int
	onChain int
	finalA  uint64
	finalB  uint64
}

// stateDigest is the content both parties sign.
func stateDigest(id hashx.Hash, s State) hashx.Hash {
	var buf [hashx.Size + 24]byte
	copy(buf[:], id[:])
	binary.BigEndian.PutUint64(buf[hashx.Size:], s.Seq)
	binary.BigEndian.PutUint64(buf[hashx.Size+8:], s.BalA)
	binary.BigEndian.PutUint64(buf[hashx.Size+16:], s.BalB)
	return hashx.Sum(buf[:])
}

// OpenChannel funds a channel with fundA+fundB locked capacity. The
// funding is one on-chain operation ("a prepaid amount is locked in for
// the lifetime of the channel").
func OpenChannel(a, b *keys.KeyPair, fundA, fundB uint64, disputeWindow time.Duration) (*Channel, error) {
	if fundA+fundB == 0 {
		return nil, errors.New("channels: zero capacity")
	}
	if disputeWindow <= 0 {
		return nil, errors.New("channels: dispute window must be positive")
	}
	idBytes := append(append([]byte("chan/"), a.Address().Bytes()...), b.Address().Bytes()...)
	ch := &Channel{
		id:            hashx.Sum(idBytes),
		a:             a,
		b:             b,
		capacity:      fundA + fundB,
		status:        Open,
		htlcs:         make(map[uint64]*HTLC),
		disputeWindow: disputeWindow,
		onChain:       1, // the funding transaction
	}
	ch.state = State{Seq: 0, BalA: fundA, BalB: fundB}
	ch.signBoth(&ch.state)
	return ch, nil
}

func (c *Channel) signBoth(s *State) {
	digest := stateDigest(c.id, *s)
	s.SigA = c.a.Sign(digest[:])
	s.SigB = c.b.Sign(digest[:])
}

// verifyState checks both signatures on a state.
func (c *Channel) verifyState(s State) bool {
	digest := stateDigest(c.id, s)
	return keys.Verify(c.a.Pub, digest[:], s.SigA) && keys.Verify(c.b.Pub, digest[:], s.SigB)
}

// ID returns the channel identifier.
func (c *Channel) ID() hashx.Hash { return c.id }

// Status returns the lifecycle stage.
func (c *Channel) Status() Status { return c.status }

// Capacity returns the locked capacity.
func (c *Channel) Capacity() uint64 { return c.capacity }

// Balances returns the latest signed balances.
func (c *Channel) Balances() (balA, balB uint64) { return c.state.BalA, c.state.BalB }

// LatestState returns a copy of the latest mutually signed state.
func (c *Channel) LatestState() State { return c.state }

// Updates returns the number of off-chain updates performed.
func (c *Channel) Updates() int { return c.updates }

// OnChainOps returns the number of on-chain operations consumed (funding,
// closes, disputes) — the denominator of the §VI-A scaling argument.
func (c *Channel) OnChainOps() int { return c.onChain }

// Pay moves amount from the payer's side to the other side, producing a
// new mutually signed state. This is the "micro transactions at high
// volume and speed" path: no chain interaction at all.
func (c *Channel) Pay(payer keys.Address, amount uint64) error {
	if c.status != Open {
		return ErrNotOpen
	}
	next := c.state
	next.Seq++
	switch payer {
	case c.a.Address():
		if c.state.BalA < amount {
			return fmt.Errorf("%w: have %d, pay %d", ErrInsufficient, c.state.BalA, amount)
		}
		next.BalA -= amount
		next.BalB += amount
	case c.b.Address():
		if c.state.BalB < amount {
			return fmt.Errorf("%w: have %d, pay %d", ErrInsufficient, c.state.BalB, amount)
		}
		next.BalB -= amount
		next.BalA += amount
	default:
		return ErrWrongParty
	}
	c.signBoth(&next)
	c.state = next
	c.updates++
	return nil
}

// CooperativeClose settles the final balances with a single on-chain
// operation ("the final account balances are recorded on chain and the
// channel is closed").
func (c *Channel) CooperativeClose() (balA, balB uint64, err error) {
	if c.status != Open {
		return 0, 0, ErrNotOpen
	}
	c.status = Closed
	c.finalA, c.finalB = c.state.BalA, c.state.BalB
	c.onChain++
	return c.finalA, c.finalB, nil
}

// UnilateralClose starts a dispute: by publishes a signed state on chain
// and the counterparty has disputeWindow to challenge with a newer one.
// Publishing a stale state is how a cheater tries to steal.
func (c *Channel) UnilateralClose(by keys.Address, published State, now time.Duration) error {
	if c.status != Open {
		return ErrNotOpen
	}
	if by != c.a.Address() && by != c.b.Address() {
		return ErrWrongParty
	}
	if !c.verifyState(published) {
		return ErrBadSig
	}
	if published.BalA+published.BalB != c.capacity {
		return ErrBadState
	}
	c.status = Disputed
	c.disputeState = published
	c.disputeBy = by
	c.disputeEnds = now + c.disputeWindow
	c.onChain++
	return nil
}

// Challenge lets the counterparty present a strictly newer signed state
// during the dispute window. A successful challenge proves the closer
// cheated: the entire capacity is awarded to the challenger, the
// penalty that makes publishing old states irrational.
func (c *Channel) Challenge(by keys.Address, newer State, now time.Duration) error {
	if c.status != Disputed {
		return ErrNoDispute
	}
	if by != c.a.Address() && by != c.b.Address() || by == c.disputeBy {
		return ErrWrongParty
	}
	if now > c.disputeEnds {
		return ErrDisputeOver
	}
	if !c.verifyState(newer) {
		return ErrBadSig
	}
	if newer.Seq <= c.disputeState.Seq {
		return ErrStaleState
	}
	// Cheater forfeits everything.
	c.status = Closed
	if by == c.a.Address() {
		c.finalA, c.finalB = c.capacity, 0
	} else {
		c.finalA, c.finalB = 0, c.capacity
	}
	c.onChain++
	return nil
}

// Settle finalizes an undisputed unilateral close after the window.
func (c *Channel) Settle(now time.Duration) (balA, balB uint64, err error) {
	if c.status != Disputed {
		return 0, 0, ErrNoDispute
	}
	if now <= c.disputeEnds {
		return 0, 0, ErrDisputeRunning
	}
	c.status = Closed
	c.finalA, c.finalB = c.disputeState.BalA, c.disputeState.BalB
	c.onChain++
	return c.finalA, c.finalB, nil
}

// FinalBalances returns the settled balances of a closed channel.
func (c *Channel) FinalBalances() (balA, balB uint64, err error) {
	if c.status != Closed {
		return 0, 0, ErrNotOpen
	}
	return c.finalA, c.finalB, nil
}

// AddHTLC locks amount from the sender's balance behind a hash lock,
// the building block of multi-hop routing.
func (c *Channel) AddHTLC(sender keys.Address, hashLock hashx.Hash, amount uint64, expiry time.Duration) (uint64, error) {
	if c.status != Open {
		return 0, ErrNotOpen
	}
	fromA := sender == c.a.Address()
	if !fromA && sender != c.b.Address() {
		return 0, ErrWrongParty
	}
	next := c.state
	next.Seq++
	if fromA {
		if next.BalA < amount {
			return 0, ErrInsufficient
		}
		next.BalA -= amount
	} else {
		if next.BalB < amount {
			return 0, ErrInsufficient
		}
		next.BalB -= amount
	}
	c.signBoth(&next)
	c.state = next
	c.updates++
	id := c.nextHTLC
	c.nextHTLC++
	c.htlcs[id] = &HTLC{ID: id, HashLock: hashLock, Amount: amount, FromA: fromA, Expiry: expiry}
	return id, nil
}

// FulfillHTLC releases a locked payment to the recipient by revealing the
// preimage before expiry.
func (c *Channel) FulfillHTLC(id uint64, preimage []byte, now time.Duration) error {
	h, ok := c.htlcs[id]
	if !ok {
		return ErrHTLCUnknown
	}
	if now > h.Expiry {
		return ErrHTLCExpired
	}
	if hashx.Sum(preimage) != h.HashLock {
		return ErrBadPreimage
	}
	next := c.state
	next.Seq++
	if h.FromA {
		next.BalB += h.Amount
	} else {
		next.BalA += h.Amount
	}
	c.signBoth(&next)
	c.state = next
	c.updates++
	delete(c.htlcs, id)
	return nil
}

// CancelHTLC refunds an expired lock to its sender.
func (c *Channel) CancelHTLC(id uint64, now time.Duration) error {
	h, ok := c.htlcs[id]
	if !ok {
		return ErrHTLCUnknown
	}
	if now <= h.Expiry {
		return errors.New("channels: HTLC not yet expired")
	}
	next := c.state
	next.Seq++
	if h.FromA {
		next.BalA += h.Amount
	} else {
		next.BalB += h.Amount
	}
	c.signBoth(&next)
	c.state = next
	c.updates++
	delete(c.htlcs, id)
	return nil
}

// PendingHTLCs returns the number of unresolved locks.
func (c *Channel) PendingHTLCs() int { return len(c.htlcs) }

// Network is a set of channels indexed by party pair, supporting
// multi-hop HTLC routing (the topology of the Lightning Network).
type Network struct {
	channels map[[2]keys.Address]*Channel
}

// NewNetwork creates an empty channel network.
func NewNetwork() *Network {
	return &Network{channels: make(map[[2]keys.Address]*Channel)}
}

func pairKey(x, y keys.Address) [2]keys.Address {
	if y.Less(x) {
		x, y = y, x
	}
	return [2]keys.Address{x, y}
}

// AddChannel registers a channel on the network.
func (n *Network) AddChannel(c *Channel) {
	n.channels[pairKey(c.a.Address(), c.b.Address())] = c
}

// ChannelBetween finds the channel connecting two parties.
func (n *Network) ChannelBetween(x, y keys.Address) (*Channel, bool) {
	c, ok := n.channels[pairKey(x, y)]
	return c, ok
}

// Route pays amount along a path of adjacent channel parties using HTLCs
// locked hop by hop and fulfilled in reverse once the recipient reveals
// the preimage — the atomicity trick that makes multi-hop channels safe.
func (n *Network) Route(path []keys.Address, amount uint64, preimage []byte, now, expiry time.Duration) error {
	if len(path) < 2 {
		return errors.New("channels: path needs at least two parties")
	}
	hashLock := hashx.Sum(preimage)
	// Lock forward.
	ids := make([]uint64, 0, len(path)-1)
	hops := make([]*Channel, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		ch, ok := n.ChannelBetween(path[i], path[i+1])
		if !ok {
			n.unwind(hops, ids, now)
			return fmt.Errorf("channels: no channel %s-%s", path[i], path[i+1])
		}
		id, err := ch.AddHTLC(path[i], hashLock, amount, expiry)
		if err != nil {
			n.unwind(hops, ids, now)
			return fmt.Errorf("channels: hop %d: %w", i, err)
		}
		ids = append(ids, id)
		hops = append(hops, ch)
	}
	// Fulfill backward.
	for i := len(hops) - 1; i >= 0; i-- {
		if err := hops[i].FulfillHTLC(ids[i], preimage, now); err != nil {
			return fmt.Errorf("channels: fulfill hop %d: %w", i, err)
		}
	}
	return nil
}

// unwind cancels partially locked HTLCs after a routing failure.
func (n *Network) unwind(hops []*Channel, ids []uint64, now time.Duration) {
	for i := range hops {
		// Force-expire: locks created at `now` are canceled with a time
		// after their expiry.
		h, ok := hops[i].htlcs[ids[i]]
		if !ok {
			continue
		}
		hops[i].CancelHTLC(ids[i], h.Expiry+1)
	}
}
