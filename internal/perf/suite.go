package perf

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Benchmark is one suite member. Op performs exactly n operations and
// returns the simulated throughput its last operation achieved (0 when
// the benchmark has no simulated clock).
type Benchmark struct {
	Name string
	Kind string
	Op   func(scale float64, n int) (simTPS float64)
}

// Options parameterizes Collect.
type Options struct {
	// Baseline names the trajectory point ("007" for BENCH_007.json).
	Baseline string
	// Scale multiplies workload sizes; reports are only comparable at
	// equal scale. Default 1.
	Scale float64
	// BenchTime is the minimum measured duration per benchmark; shorter
	// runs average fewer iterations but keep the same workload (this is
	// the knob CI turns down, NOT Scale). Default 1s.
	BenchTime time.Duration
	// Progress receives one line per benchmark when non-nil.
	Progress io.Writer
}

// Suite returns the curated benchmark list, in run order. Workload
// sizes derive from fixed seeds and pin Workers to 1 (see package doc).
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "sim/event-loop", Kind: "micro", Op: benchEventLoop},
		{Name: "sim/net-send", Kind: "micro", Op: benchNetSend},
		{Name: "keys/verify-batch", Kind: "micro", Op: benchVerifyBatch},
		{Name: "lattice/block-hash", Kind: "micro", Op: benchBlockHash},
		{Name: "lattice/process-batch", Kind: "micro", Op: benchProcessBatch},
		{Name: "chain/store-add", Kind: "micro", Op: benchStoreAdd},
		{Name: "netsim/nano-gossip", Kind: "micro", Op: benchNanoGossip},
		{Name: "netsim/tangle-gossip", Kind: "micro", Op: benchTangleGossip},
		{Name: "netsim/scale-gossip", Kind: "micro", Op: benchScaleGossip},
		{Name: "netsim/cold-start", Kind: "micro", Op: benchColdStart},
		{Name: "sim/sharded-loop", Kind: "micro", Op: benchShardedLoop},
		{Name: "sim/calendar-loop", Kind: "micro", Op: benchCalendarLoop},
		{Name: "metrics/streaming-quantile", Kind: "micro", Op: benchStreamingQuantile},
		{Name: "e2e/E1", Kind: "e2e", Op: benchExperiment("E1")},
		{Name: "e2e/E2", Kind: "e2e", Op: benchExperiment("E2")},
		{Name: "e2e/E9", Kind: "e2e", Op: benchExperiment("E9")},
	}
}

// Collect runs the suite and assembles the report, calibration included.
func Collect(opts Options) (*Report, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.BenchTime <= 0 {
		opts.BenchTime = time.Second
	}
	r := &Report{
		Schema:    SchemaVersion,
		Baseline:  opts.Baseline,
		Scale:     opts.Scale,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	cal := measure(opts.BenchTime/4, func(n int) {
		for i := 0; i < n; i++ {
			calibrationOp()
		}
	})
	r.CalibrationNsPerOp = cal.NsPerOp
	if opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "calibration: %.0f ns/op\n", cal.NsPerOp)
	}
	for _, b := range Suite() {
		var tps float64
		res := measure(opts.BenchTime, func(n int) {
			tps = b.Op(opts.Scale, n)
		})
		res.SimTPS = tps
		r.Entries = append(r.Entries, Entry{
			Name: b.Name, Kind: b.Kind,
			NsPerOp: res.NsPerOp, BytesPerOp: res.BytesPerOp,
			AllocsPerOp: res.AllocsPerOp, SimTPS: res.SimTPS,
			Iters: res.Iters,
		})
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "%-22s %12.0f ns/op %10.0f allocs/op (n=%d)\n",
				b.Name, res.NsPerOp, res.AllocsPerOp, res.Iters)
		}
	}
	return r, nil
}

// calibrationOp is the fixed machine-speed reference: SHA-256 over 64KB
// in 4KB strides. It exercises the same primitive the ledgers lean on
// hardest and has no allocation, scheduling or branch-predictor noise.
func calibrationOp() {
	var buf [4096]byte
	for i := 0; i < 16; i++ {
		buf[0] = byte(i)
		_ = hashx.Sum(buf[:])
	}
}

// scaled returns max(1, round(base*scale)).
func scaled(base int, scale float64) int {
	n := int(float64(base)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// benchEventLoop schedules and drains a seeded burst of timer events —
// the raw cost of the discrete-event core every simulation spins on.
func benchEventLoop(scale float64, n int) float64 {
	events := scaled(5000, scale)
	for op := 0; op < n; op++ {
		s := sim.New(1)
		rng := rand.New(rand.NewSource(7))
		// A tenth of the events are canceled, covering the cancel path.
		var cancel []sim.EventID
		for i := 0; i < events; i++ {
			id := s.At(time.Duration(rng.Intn(1000))*time.Millisecond, func() {})
			if i%10 == 0 {
				cancel = append(cancel, id)
			}
		}
		for _, id := range cancel {
			s.Cancel(id)
		}
		s.Run(0)
	}
	return 0
}

// benchNetSend pushes a seeded message burst through Network.Send with
// uniform links and no-op handlers — scheduling plus delivery dispatch,
// the per-message overhead under every gossip flood.
func benchNetSend(scale float64, n int) float64 {
	sends := scaled(4000, scale)
	const nodes = 64
	for op := 0; op < n; op++ {
		s := sim.New(1)
		net := sim.NewNetwork(s, sim.UniformLinks{
			MinLatency: 10 * time.Millisecond, MaxLatency: 100 * time.Millisecond,
		})
		for i := 0; i < nodes; i++ {
			net.AddNode(func(sim.NodeID, any, int) {})
		}
		for i := 0; i < sends; i++ {
			from := sim.NodeID(i % nodes)
			to := sim.NodeID((i + 1 + i/nodes) % nodes)
			net.Send(from, to, nil, 200)
		}
		s.Run(0)
	}
	return 0
}

// verifyJobs builds the fixed signature workload once per scale.
var verifyJobs = map[int][]keys.VerifyJob{}

func benchVerifyBatch(scale float64, n int) float64 {
	count := scaled(192, scale)
	jobs, ok := verifyJobs[count]
	if !ok {
		ring := keys.NewRing("perf-verify", 16)
		jobs = make([]keys.VerifyJob, count)
		for i := range jobs {
			kp := ring.Pair(i % ring.Len())
			msg := hashx.Sum([]byte{byte(i), byte(i >> 8), 0x5f})
			jobs[i] = keys.VerifyJob{Pub: kp.Pub, Msg: msg[:], Sig: kp.Sign(msg[:])}
		}
		verifyJobs[count] = jobs
	}
	for op := 0; op < n; op++ {
		keys.VerifyBatch(jobs, 1)
	}
	return 0
}

// benchBlockHash measures the cold lattice block hash: each operation
// copies the block (resetting any memoized digest) and hashes it.
func benchBlockHash(_ float64, n int) float64 {
	r := keys.NewRing("perf-hash", 2)
	l, _, err := lattice.New(r.Pair(0), 1<<40, 0)
	if err != nil {
		panic(err)
	}
	send, err := l.NewSend(r.Pair(0), r.Addr(1), 1)
	if err != nil {
		panic(err)
	}
	for op := 0; op < n; op++ {
		blk := *send
		_ = blk.Hash()
	}
	return 0
}

// latticeBatches caches the pre-built distribution batch per scale.
type latticeBatch struct {
	owner  *keys.KeyPair
	blocks []*lattice.Block
}

var latticeBatches = map[int]latticeBatch{}

// benchProcessBatch replays a seeded initial-distribution batch into a
// fresh lattice through ProcessBatch with Workers=1 — signature and
// work checks plus serial in-order application.
func benchProcessBatch(scale float64, n int) float64 {
	accounts := scaled(40, scale)
	if accounts < 4 {
		accounts = 4
	}
	batch, ok := latticeBatches[accounts]
	if !ok {
		ring := keys.NewRing("perf-lattice", accounts)
		seed, _, err := lattice.New(ring.Pair(0), 1<<40, 0)
		if err != nil {
			panic(err)
		}
		var blocks []*lattice.Block
		share := uint64(1<<40) / uint64(accounts)
		for i := 1; i < accounts; i++ {
			send, err := seed.NewSend(ring.Pair(0), ring.Addr(i), share)
			if err != nil {
				panic(err)
			}
			seed.Process(send)
			open, err := seed.NewOpen(ring.Pair(i), send.Hash(), ring.Addr(i%4))
			if err != nil {
				panic(err)
			}
			seed.Process(open)
			blocks = append(blocks, send, open)
		}
		batch = latticeBatch{owner: ring.Pair(0), blocks: blocks}
		latticeBatches[accounts] = batch
	}
	for op := 0; op < n; op++ {
		l, _, err := lattice.New(batch.owner, 1<<40, 0)
		if err != nil {
			panic(err)
		}
		for _, res := range l.ProcessBatch(batch.blocks, 1) {
			if res.Status == lattice.Rejected {
				panic(res.Err)
			}
		}
	}
	return 0
}

// storeBlocks caches the pre-built block stream per scale: a linear
// chain with a heavier rival forking in every tenth height, so Add
// exercises extension, side-chain storage and reorgs.
var storeBlocks = map[int][]*chain.Block{}

func benchStoreAdd(scale float64, n int) float64 {
	length := scaled(240, scale)
	blocks, ok := storeBlocks[length]
	if !ok {
		genesis := chain.NewGenesis(hashx.Zero)
		mk := func(parent *chain.Block, id int, diff float64) *chain.Block {
			p := chain.OpaquePayload{ID: hashx.Sum([]byte{byte(id), byte(id >> 8), byte(diff)}), Bytes: 64, Txs: 1}
			return &chain.Block{Header: chain.Header{
				Parent: parent.Hash(), Height: parent.Header.Height + 1,
				TxRoot: p.Root(), Difficulty: diff,
			}, Payload: p}
		}
		prev := genesis
		for h := 0; h < length; h++ {
			blk := mk(prev, h, 1)
			blocks = append(blocks, blk)
			if h%10 == 0 {
				blocks = append(blocks, mk(prev, h+1<<16, 5))
			}
			prev = blk
		}
		storeBlocks[length] = blocks
	}
	for op := 0; op < n; op++ {
		store, err := chain.NewStore(chain.NewGenesis(hashx.Zero), chain.HeaviestChain)
		if err != nil {
			panic(err)
		}
		for _, b := range blocks {
			store.Add(b)
		}
	}
	return 0
}

// benchNanoGossip runs a small live block-lattice network end to end —
// block gossip with first-seen dedup, ORV votes, receives — and reports
// the settled sim-throughput. This is the per-event hot path of every
// §VI-B table.
func benchNanoGossip(scale float64, n int) float64 {
	transfers := scaled(40, scale)
	const horizon = 10 * time.Second
	var tps float64
	for op := 0; op < n; op++ {
		net, err := netsim.NewNano(netsim.NanoConfig{
			Net:      netsim.NetParams{Nodes: 8, Seed: 11},
			Accounts: 24, Reps: 4, Workers: 1,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(13))
		ps := workload.Payments(rng, workload.Config{
			Accounts: 24, Rate: float64(transfers) / horizon.Seconds(), Duration: horizon,
		})
		m := net.RunWithTransfers(horizon+2*time.Second, ps)
		tps = m.TPS
	}
	return tps
}

// benchTangleGossip runs a small live cooperative-tangle network end to
// end — vertex gossip with first-seen dedup, tip selection, the
// per-attach cumulative-coverage walk — and reports the confirmed
// sim-throughput. This is the per-event hot path of the third
// paradigm's E9/E19/E21 rows.
func benchTangleGossip(scale float64, n int) float64 {
	transfers := scaled(40, scale)
	const horizon = 10 * time.Second
	var vps float64
	for op := 0; op < n; op++ {
		net, err := netsim.NewTangle(netsim.TangleConfig{
			Net:      netsim.NetParams{Nodes: 8, Seed: 11},
			Accounts: 24,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(13))
		ps := workload.Payments(rng, workload.Config{
			Accounts: 24, Rate: float64(transfers) / horizon.Seconds(), Duration: horizon,
		})
		m := net.RunWithTransfers(horizon+2*time.Second, ps)
		vps = m.VPS
	}
	return vps
}

// benchScaleGossip is benchNanoGossip at mega-scale: a 512-node ORV
// network settling a small fixed transfer schedule. Construction leans
// on the cloned setup template and the run on the struct-of-arrays
// seen-state — the two costs that used to grow with nodes × history.
func benchScaleGossip(scale float64, n int) float64 {
	nodes := scaled(512, scale)
	if nodes < 8 {
		nodes = 8
	}
	const horizon = 5 * time.Second
	var tps float64
	for op := 0; op < n; op++ {
		net, err := netsim.NewNano(netsim.NanoConfig{
			Net: netsim.NetParams{
				Nodes: nodes, PeerDegree: 4, Seed: 17,
				MinLatency: 20 * time.Millisecond, MaxLatency: 200 * time.Millisecond,
			},
			Accounts: 16, Reps: 4, Workers: 1,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(19))
		ps := workload.Payments(rng, workload.Config{
			Accounts: 16, Rate: 2, Duration: horizon,
		})
		m := net.RunWithTransfers(horizon+5*time.Second, ps)
		tps = m.TPS
	}
	return tps
}

// benchColdStart drives the sync-manager bootstrap path: an 8-node ORV
// network builds a short history while one node sits detached, then the
// cold node rejoins and range-pulls the canonical stream window by
// window. The measured cost is the pull/serve machinery plus the gap
// repair that backstops out-of-order window delivery.
func benchColdStart(scale float64, n int) float64 {
	transfers := scaled(30, scale)
	const span = 4 * time.Second
	var tps float64
	for op := 0; op < n; op++ {
		net, err := netsim.NewNano(netsim.NanoConfig{
			Net: netsim.NetParams{
				Nodes: 8, PeerDegree: 4, Seed: 23,
				MinLatency: 20 * time.Millisecond, MaxLatency: 200 * time.Millisecond,
			},
			Accounts: 16, Reps: 4, Workers: 1,
		})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(29))
		var ps []workload.TimedPayment
		for _, p := range workload.Payments(rng, workload.Config{
			Accounts: 16, Rate: float64(transfers) / span.Seconds(), Duration: span,
		}) {
			// The cold node (7) owns accounts 7 and 15; keep them out of
			// the workload so the pulled history is complete.
			if p.From%8 != 7 && p.To%8 != 7 {
				ps = append(ps, p)
			}
		}
		net.ScheduleColdStart(7, 0, span+2*time.Second, 8)
		m := net.RunWithTransfers(span+6*time.Second, ps)
		if _, ok := net.ColdSyncDone(7); !ok {
			panic("perf: cold sync incomplete")
		}
		tps = m.TPS
	}
	return tps
}

// benchShardedLoop is benchEventLoop on the K-lane sharded queue: the
// same seeded timer burst spread round-robin over 4 lanes, paying the
// deterministic cross-lane merge on every pop.
func benchShardedLoop(scale float64, n int) float64 {
	events := scaled(5000, scale)
	for op := 0; op < n; op++ {
		s := sim.NewSharded(1, 4)
		rng := rand.New(rand.NewSource(7))
		var cancel []sim.EventID
		for i := 0; i < events; i++ {
			id := s.At(time.Duration(rng.Intn(1000))*time.Millisecond, func() {})
			if i%10 == 0 {
				cancel = append(cancel, id)
			}
		}
		for _, id := range cancel {
			s.Cancel(id)
		}
		s.Run(0)
	}
	return 0
}

// benchCalendarLoop is benchEventLoop on the calendar-queue backend:
// the same seeded timer burst (cancels included) through the bucketed
// O(1) scheduler instead of the binary heap — the pop/push cost the
// mega-scale runs pay per event.
func benchCalendarLoop(scale float64, n int) float64 {
	events := scaled(5000, scale)
	for op := 0; op < n; op++ {
		s := sim.NewQueued(1, 1, sim.QueueCalendar)
		rng := rand.New(rand.NewSource(7))
		var cancel []sim.EventID
		for i := 0; i < events; i++ {
			id := s.At(time.Duration(rng.Intn(1000))*time.Millisecond, func() {})
			if i%10 == 0 {
				cancel = append(cancel, id)
			}
		}
		for _, id := range cancel {
			s.Cancel(id)
		}
		s.Run(0)
	}
	return 0
}

// benchStreamingQuantile drives the fixed-budget estimator through its
// collapse: a seeded sample stream four times the budget is absorbed
// and the tracked quantiles read back — the per-sample cost of the
// mega-scale histograms that no longer store one float64 per node.
func benchStreamingQuantile(scale float64, n int) float64 {
	budget := scaled(4096, scale)
	samples := 4 * budget
	for op := 0; op < n; op++ {
		st := metrics.NewStreaming(budget)
		rng := rand.New(rand.NewSource(31))
		for i := 0; i < samples; i++ {
			st.Add(rng.Float64() * 100)
		}
		for _, p := range []float64{0.5, 0.95, 0.99, 0.999} {
			_ = st.Quantile(p)
		}
	}
	return 0
}

// benchExperiment regenerates one registered experiment table at a
// fixed reduced core scale with Workers=1 — the end-to-end trajectory
// anchor for the paper's append (E1/E2) and throughput (E9) claims.
func benchExperiment(id string) func(float64, int) float64 {
	return func(scale float64, n int) float64 {
		e, err := core.ByID(id)
		if err != nil {
			panic(err)
		}
		cfg := core.Config{Seed: 1, Scale: 0.15 * scale, Workers: 1}
		for op := 0; op < n; op++ {
			if _, err := e.Run(context.Background(), cfg); err != nil {
				panic(fmt.Sprintf("%s: %v", id, err))
			}
		}
		return 0
	}
}
