package perf

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	return &Report{
		Schema: SchemaVersion, Baseline: "006", Scale: 1,
		GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64",
		CalibrationNsPerOp: 50_000,
		Entries: []Entry{
			{Name: "sim/event-loop", Kind: "micro", NsPerOp: 1_000_000, BytesPerOp: 4096, AllocsPerOp: 128, Iters: 100},
			{Name: "e2e/E9", Kind: "e2e", NsPerOp: 2_500_000_000, BytesPerOp: 1 << 20, AllocsPerOp: 5_000, SimTPS: 12.5, Iters: 3},
		},
	}
}

// The committed BENCH files must be byte-stable: decoding a canonical
// encoding and re-encoding it reproduces the bytes exactly.
func TestEncodeDecodeRoundTripByteIdentical(t *testing.T) {
	first, err := Encode(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Encode(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("round trip not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

func TestEncodeSortsEntries(t *testing.T) {
	r := sampleReport()
	r.Entries[0], r.Entries[1] = r.Entries[1], r.Entries[0]
	out, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	if e9 := bytes.Index(out, []byte("e2e/E9")); e9 > bytes.Index(out, []byte("sim/event-loop")) {
		t.Fatalf("entries not sorted by name:\n%s", out)
	}
	// Encode must not mutate the caller's report.
	if r.Entries[0].Name != "e2e/E9" {
		t.Fatal("Encode reordered the caller's entries in place")
	}
}

func TestDecodeRejectsUnknownSchema(t *testing.T) {
	if _, err := Decode([]byte(`{"schema": 99}`)); err == nil {
		t.Fatal("schema 99 accepted")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// mutate returns a copy of base with the named entry transformed.
func mutate(base *Report, name string, f func(*Entry)) *Report {
	cp := *base
	cp.Entries = append([]Entry(nil), base.Entries...)
	for i := range cp.Entries {
		if cp.Entries[i].Name == name {
			f(&cp.Entries[i])
		}
	}
	return &cp
}

func TestCompareIdenticalReportsPass(t *testing.T) {
	base := sampleReport()
	deltas, ok, err := Compare(base, sampleReport(), 0.15)
	if err != nil || !ok {
		t.Fatalf("identical reports failed the gate: ok=%v err=%v deltas=%+v", ok, err, deltas)
	}
}

func TestCompareExactlyAtThresholdPasses(t *testing.T) {
	base := sampleReport()
	cur := mutate(base, "sim/event-loop", func(e *Entry) {
		e.NsPerOp *= 1.15
		e.AllocsPerOp *= 1.15
	})
	if _, ok, err := Compare(base, cur, 0.15); err != nil || !ok {
		t.Fatalf("exactly-at-threshold must pass: ok=%v err=%v", ok, err)
	}
	over := mutate(base, "sim/event-loop", func(e *Entry) { e.NsPerOp *= 1.1501 })
	if _, ok, _ := Compare(base, over, 0.15); ok {
		t.Fatal("just-over-threshold ns/op must fail")
	}
}

func TestCompareAllocRegressionFails(t *testing.T) {
	base := sampleReport()
	cur := mutate(base, "sim/event-loop", func(e *Entry) { e.AllocsPerOp *= 2 })
	deltas, ok, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("2x allocs/op must fail the gate")
	}
	if deltas[0].Status != StatusRegression || !strings.Contains(deltas[0].Why, "allocs") {
		t.Fatalf("unexpected delta: %+v", deltas[0])
	}
}

func TestCompareZeroAllocBaselineDefended(t *testing.T) {
	base := sampleReport()
	base.Entries[0].AllocsPerOp = 0
	cur := mutate(base, "sim/event-loop", func(e *Entry) { e.AllocsPerOp = 1 })
	if _, ok, _ := Compare(base, cur, 0.15); ok {
		t.Fatal("allocation appearing on a zero-alloc path must fail")
	}
	same := mutate(base, "sim/event-loop", func(e *Entry) { e.AllocsPerOp = 0 })
	if _, ok, _ := Compare(base, same, 0.15); !ok {
		t.Fatal("zero-alloc path staying zero-alloc must pass")
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Entries = cur.Entries[:1] // drop e2e/E9
	deltas, ok, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a benchmark disappearing must fail the gate")
	}
	found := false
	for _, d := range deltas {
		if d.Name == "e2e/E9" && d.Status == StatusMissing {
			found = true
		}
	}
	if !found {
		t.Fatalf("no MISSING delta for e2e/E9: %+v", deltas)
	}
}

func TestCompareNewBenchmarkPasses(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Entries = append(cur.Entries, Entry{Name: "chain/store-add", Kind: "micro", NsPerOp: 1, AllocsPerOp: 1})
	deltas, ok, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a new benchmark must not fail the gate")
	}
	found := false
	for _, d := range deltas {
		if d.Name == "chain/store-add" && d.Status == StatusNew {
			found = true
		}
	}
	if !found {
		t.Fatalf("no new-status delta: %+v", deltas)
	}
}

// The sim_tps column is informational: a halved simulated throughput
// renders in the delta table but never fails the gate, and benchmarks
// without a sim clock show the dash.
func TestCompareSimTPSInformational(t *testing.T) {
	base := sampleReport()
	cur := mutate(base, "e2e/E9", func(e *Entry) { e.SimTPS /= 2 })
	deltas, ok, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a sim_tps drop alone must not fail the gate")
	}
	var e9 Delta
	for _, d := range deltas {
		if d.Name == "e2e/E9" {
			e9 = d
		}
	}
	if e9.SimTPSRatio < 0.499 || e9.SimTPSRatio > 0.501 {
		t.Fatalf("SimTPSRatio = %v, want 0.5", e9.SimTPSRatio)
	}
	var buf bytes.Buffer
	if err := RenderDeltas(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sim_tps ratio") {
		t.Fatalf("delta table missing the sim_tps column:\n%s", out)
	}
	if !strings.Contains(out, "0.500") {
		t.Fatalf("delta table missing the 0.500 sim_tps ratio:\n%s", out)
	}
	// sim/event-loop has no sim clock on either side: its row keeps the
	// dash, and its delta carries no ratio.
	for _, d := range deltas {
		if d.Name == "sim/event-loop" && d.SimTPSRatio != 0 {
			t.Fatalf("clockless benchmark grew a SimTPSRatio: %+v", d)
		}
	}
}

func TestCompareScaleMismatchRejected(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Scale = 0.5
	if _, _, err := Compare(base, cur, 0.15); err == nil {
		t.Fatal("reports at different scales compared")
	}
}

// Calibration normalization: a candidate measured on a machine that is
// 2x slower everywhere (benchmarks AND calibration) is NOT a
// regression; the same raw numbers without the calibration shift are.
func TestCompareCalibrationNormalizes(t *testing.T) {
	base := sampleReport()
	slowMachine := sampleReport()
	slowMachine.CalibrationNsPerOp *= 2
	for i := range slowMachine.Entries {
		slowMachine.Entries[i].NsPerOp *= 2
	}
	if _, ok, err := Compare(base, slowMachine, 0.15); err != nil || !ok {
		t.Fatalf("uniformly slower machine flagged as regression: ok=%v err=%v", ok, err)
	}
	sameMachineSlower := sampleReport()
	for i := range sameMachineSlower.Entries {
		sameMachineSlower.Entries[i].NsPerOp *= 2
	}
	if _, ok, _ := Compare(base, sameMachineSlower, 0.15); ok {
		t.Fatal("real 2x slowdown passed under equal calibration")
	}
}

// The acceptance demo for the CI gate: take the committed baseline,
// inject a 2x ns/op slowdown into every entry, and require the gate to
// fail — and require the untouched baseline to pass against itself.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_010.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	base, err := Decode(data)
	if err != nil {
		t.Fatalf("committed baseline does not decode: %v", err)
	}
	if len(base.Entries) < 8 {
		t.Fatalf("committed baseline has %d entries, want >= 8", len(base.Entries))
	}
	if _, ok, err := Compare(base, base, DefaultThreshold); err != nil || !ok {
		t.Fatalf("baseline does not pass against itself: ok=%v err=%v", ok, err)
	}
	slowed := *base
	slowed.Entries = append([]Entry(nil), base.Entries...)
	for i := range slowed.Entries {
		slowed.Entries[i].NsPerOp *= 2
	}
	deltas, ok, err := Compare(base, &slowed, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("gate passed a 2x ns/op slowdown")
	}
	var buf bytes.Buffer
	if err := RenderDeltas(&buf, deltas); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), string(StatusRegression)) {
		t.Fatalf("rendered table carries no regression marker:\n%s", buf.String())
	}
}

// The committed baseline must be in canonical byte form (Encode of its
// Decode), or diffs against regenerated baselines churn.
func TestCommittedBaselineIsCanonical(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_010.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	r, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, out) {
		t.Fatal("BENCH_010.json is not in canonical encoding; regenerate with make bench-commit")
	}
}

// Every micro benchmark must run at tiny scale — the smoke that keeps
// the suite itself from rotting between baseline commits. E2E members
// are exercised by the experiment tests and by report generation.
func TestSuiteMicroSmoke(t *testing.T) {
	for _, b := range Suite() {
		if b.Kind != "micro" {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) { b.Op(0.05, 1) })
	}
}

var measureSink any

// Allocation counts are the machine-independent half of the gate: for a
// deterministic workload two measurements must agree exactly.
func TestMeasureAllocsDeterministic(t *testing.T) {
	op := func(n int) {
		for i := 0; i < n; i++ {
			measureSink = make([]byte, 1024)
			measureSink = map[int]int{1: 1}
		}
	}
	a := measure(time.Millisecond, op)
	b := measure(time.Millisecond, op)
	if a.AllocsPerOp != b.AllocsPerOp {
		t.Fatalf("allocs/op not deterministic: %v vs %v", a.AllocsPerOp, b.AllocsPerOp)
	}
	if a.AllocsPerOp < 2 {
		t.Fatalf("allocs/op = %v, want >= 2", a.AllocsPerOp)
	}
}
