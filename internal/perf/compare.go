package perf

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// DefaultThreshold is the regression gate's default: a benchmark fails
// when its normalized ns/op or its allocs/op exceeds the baseline by
// MORE than 15%. Exactly-at-threshold passes.
const DefaultThreshold = 0.15

// DeltaStatus classifies one compared benchmark.
type DeltaStatus string

const (
	// StatusOK means the benchmark stayed within the threshold.
	StatusOK DeltaStatus = "ok"
	// StatusRegression means ns/op or allocs/op regressed past the
	// threshold; the gate fails.
	StatusRegression DeltaStatus = "REGRESSION"
	// StatusMissing means the baseline benchmark is absent from the
	// candidate — a benchmark silently disappearing is itself a
	// regression, so the gate fails.
	StatusMissing DeltaStatus = "MISSING"
	// StatusNew means the candidate carries a benchmark the baseline
	// lacks; informational, the gate passes (the next committed baseline
	// absorbs it).
	StatusNew DeltaStatus = "new"
)

// Delta is one benchmark's comparison outcome.
type Delta struct {
	Name   string
	Status DeltaStatus
	// NsRatio and AllocRatio are candidate/baseline; ns is calibration-
	// normalized when both reports embed a calibration. Zero when the
	// ratio is undefined (missing/new, or zero-alloc baseline).
	NsRatio    float64
	AllocRatio float64
	// SimTPSRatio is candidate/baseline simulated throughput — purely
	// informational, never gated: sim-TPS moves with workload semantics
	// (horizons, batch knobs), not host speed, so a drop is a prompt to
	// look, not a failure. Zero when either side reports no sim clock.
	SimTPSRatio float64
	// Why carries the human-readable reason for a non-ok status.
	Why string
}

// Compare diffs candidate against baseline under the given threshold
// (<= 0 selects DefaultThreshold). It returns one Delta per benchmark in
// baseline-then-new order, and ok=false when any delta fails the gate.
// Reports generated at different suite scales are incomparable and
// return an error.
func Compare(baseline, candidate *Report, threshold float64) ([]Delta, bool, error) {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if baseline.Scale != candidate.Scale {
		return nil, false, fmt.Errorf(
			"perf: incomparable reports: baseline scale %g vs candidate scale %g",
			baseline.Scale, candidate.Scale)
	}
	// Normalize ns by the per-report calibration when both sides have
	// one: ratio = (curNs/curCal) / (baseNs/baseCal). On the same
	// machine this reduces to the raw ratio; across machines it cancels
	// most of the speed difference.
	baseCal, curCal := baseline.CalibrationNsPerOp, candidate.CalibrationNsPerOp
	normalize := baseCal > 0 && curCal > 0

	var deltas []Delta
	ok := true
	for _, be := range baseline.Entries {
		ce, found := candidate.Lookup(be.Name)
		if !found {
			deltas = append(deltas, Delta{
				Name: be.Name, Status: StatusMissing,
				Why: "present in baseline, absent from candidate",
			})
			ok = false
			continue
		}
		d := Delta{Name: be.Name, Status: StatusOK}
		if be.SimTPS > 0 && ce.SimTPS > 0 {
			d.SimTPSRatio = ce.SimTPS / be.SimTPS
		}
		if be.NsPerOp > 0 {
			d.NsRatio = ce.NsPerOp / be.NsPerOp
			if normalize {
				d.NsRatio = (ce.NsPerOp / curCal) / (be.NsPerOp / baseCal)
			}
		}
		switch {
		case be.AllocsPerOp > 0:
			d.AllocRatio = ce.AllocsPerOp / be.AllocsPerOp
		case ce.AllocsPerOp > 0:
			// Zero-alloc baselines are a property worth defending: any
			// new allocation on such a path fails the gate outright.
			d.Status = StatusRegression
			d.Why = fmt.Sprintf("allocs/op appeared on a zero-alloc path (now %.1f)", ce.AllocsPerOp)
		}
		if d.Status == StatusOK && d.NsRatio > 1+threshold {
			d.Status = StatusRegression
			d.Why = fmt.Sprintf("ns/op ratio %.3f exceeds %.3f", d.NsRatio, 1+threshold)
		}
		if d.Status == StatusOK && d.AllocRatio > 1+threshold {
			d.Status = StatusRegression
			d.Why = fmt.Sprintf("allocs/op ratio %.3f exceeds %.3f", d.AllocRatio, 1+threshold)
		}
		if d.Status != StatusOK {
			ok = false
		}
		deltas = append(deltas, d)
	}
	for _, ce := range candidate.Entries {
		if _, found := baseline.Lookup(ce.Name); !found {
			deltas = append(deltas, Delta{
				Name: ce.Name, Status: StatusNew,
				Why: "absent from baseline; will join the next committed one",
			})
		}
	}
	return deltas, ok, nil
}

// RenderDeltas writes the comparison as an aligned table. The sim_tps
// column is informational only — it reflects simulated-throughput drift
// between reports and never moves the gate.
func RenderDeltas(w io.Writer, deltas []Delta) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op ratio\tallocs ratio\tsim_tps ratio\tstatus")
	for _, d := range deltas {
		ns, al, tps := "-", "-", "-"
		if d.NsRatio > 0 {
			ns = fmt.Sprintf("%.3f", d.NsRatio)
		}
		if d.AllocRatio > 0 {
			al = fmt.Sprintf("%.3f", d.AllocRatio)
		}
		if d.SimTPSRatio > 0 {
			tps = fmt.Sprintf("%.3f", d.SimTPSRatio)
		}
		status := string(d.Status)
		if d.Why != "" {
			status += " (" + d.Why + ")"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", d.Name, ns, al, tps, status)
	}
	return tw.Flush()
}
