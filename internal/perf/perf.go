// Package perf is the committed performance-trajectory harness: it runs
// a curated suite of micro and end-to-end benchmarks over the hot paths
// of the reproduction (event loop, gossip dedup, signature batching,
// lattice batch settlement, chain store insertion, plus E1/E2/E9
// end-to-end), normalizes the results into a stable JSON schema, and
// compares two reports under a regression threshold. The committed
// BENCH_<pr>.json files at the repository root are its output — the
// per-PR perf history every "raw speed" claim is anchored against — and
// the CI bench-gate job is its consumer.
//
// Invariants the harness relies on:
//
//   - Determinism: every suite benchmark derives its workload from fixed
//     seeds, so allocs/op and sim-throughput are bit-stable run to run;
//     only ns/op carries machine noise.
//   - Worker-count invariance: suite benchmarks pin Workers to 1, so a
//     report means the same thing on a 2-core CI runner and a 32-core
//     workstation.
//   - Calibration: each report embeds the ns/op of a fixed SHA-256
//     reference workload measured in the same process; comparisons use
//     ns/op ratios normalized by it, which cancels most of the raw
//     machine-speed difference between the committed baseline and the
//     machine re-checking it.
package perf

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion identifies the BENCH JSON layout. Bump only with a
// migration note in PERFORMANCE.md; Decode rejects unknown versions.
const SchemaVersion = 1

// Entry is one benchmark's normalized result.
type Entry struct {
	// Name is the canonical benchmark id, e.g. "sim/event-loop".
	Name string `json:"name"`
	// Kind is "micro" (one subsystem) or "e2e" (a full experiment).
	Kind string `json:"kind"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are heap cost per operation; both are
	// machine-independent for a deterministic workload.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// SimTPS is the simulated settled-transfer throughput the workload
	// achieved (transfers per simulated second), when the benchmark has
	// one; 0 means not applicable.
	SimTPS float64 `json:"sim_tps,omitempty"`
	// Iters is how many operations the measurement averaged over.
	Iters int `json:"iters"`
}

// Report is one committed benchmark trajectory point (one BENCH file).
type Report struct {
	// Schema is SchemaVersion at encode time.
	Schema int `json:"schema"`
	// Baseline names the trajectory point, conventionally the PR number
	// ("007" for BENCH_007.json).
	Baseline string `json:"baseline"`
	// Scale is the suite workload scale the report was generated at.
	// Compare refuses to diff reports taken at different scales.
	Scale float64 `json:"scale"`
	// GoVersion, GOOS and GOARCH record the toolchain and platform.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CalibrationNsPerOp is the fixed SHA-256 reference workload's ns/op
	// on the generating machine (see package doc).
	CalibrationNsPerOp float64 `json:"calibration_ns_per_op"`
	// Entries are the benchmark results, sorted by Name.
	Entries []Entry `json:"entries"`
}

// Lookup returns the entry with the given name.
func (r *Report) Lookup(name string) (Entry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Encode renders the report in its canonical byte form: schema fields in
// declaration order, entries sorted by name, two-space indentation, one
// trailing newline. Encode(Decode(b)) == b for any canonical b, which is
// what keeps committed BENCH files diff-stable.
func Encode(r *Report) ([]byte, error) {
	cp := *r
	cp.Entries = append([]Entry(nil), r.Entries...)
	sort.Slice(cp.Entries, func(i, j int) bool { return cp.Entries[i].Name < cp.Entries[j].Name })
	out, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("perf: encode: %w", err)
	}
	return append(out, '\n'), nil
}

// Decode parses a BENCH report and validates its schema version.
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: decode: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: unsupported schema %d (want %d)", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// Result is one measured benchmark before normalization into an Entry.
type Result struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	SimTPS      float64
	Iters       int
}

// measure times op, which must perform exactly n operations per call,
// growing n until the run lasts at least target. It reports per-op wall
// time and heap cost. The allocation counters come from MemStats deltas
// around the timed run, so they are exact for a single-goroutine op and
// deterministic for a seeded workload.
func measure(target time.Duration, op func(n int)) Result {
	if target <= 0 {
		target = time.Second
	}
	// Warm once outside the measurement (pools, lazy init, code paths).
	op(1)
	n := 1
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		op(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= target || n >= 1e9 {
			if elapsed <= 0 {
				elapsed = 1
			}
			return Result{
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
				Iters:       n,
			}
		}
		// Grow like testing.B: aim past the target, bounded to 100x.
		grow := int64(float64(n) * 1.5 * float64(target) / float64(elapsed+1))
		if grow < int64(n)+1 {
			grow = int64(n) + 1
		}
		if grow > int64(n)*100 {
			grow = int64(n) * 100
		}
		n = int(grow)
	}
}
