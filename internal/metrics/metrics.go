// Package metrics provides the measurement and reporting plumbing for the
// experiments: counters, sample histograms with percentiles, time series,
// and the aligned text tables the benchmark harness prints so that each
// experiment's output reads like the corresponding table in the paper.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"
)

// Histogram accumulates float64 samples and answers distribution queries.
// The zero value is ready to use and stores every sample exactly;
// SetBudget caps the exact storage for mega-scale runs.
type Histogram struct {
	samples []float64
	sorted  bool
	sum     float64
	budget  int
	stream  *Streaming
}

// SetBudget caps exact sample storage at n: past the budget the
// histogram collapses into a Streaming estimator and runs in O(1)
// memory, with count/sum/mean/min/max still exact and quantiles P²
// estimates. Until the budget is crossed every query is exact, so a
// budgeted histogram renders byte-identically to an unbudgeted one on
// any run that stays below it — which is how the golden tables survive
// the mega-scale budget. n <= 0 removes the cap (the default);
// budgets below 32 are clamped up so the P² markers always have a
// real distribution to warm-start from.
func (h *Histogram) SetBudget(n int) {
	if n > 0 && n < 32 {
		n = 32
	}
	h.budget = n
	if n > 0 && len(h.samples) > n && h.stream == nil {
		h.collapse()
	}
}

// collapse hands the exact samples to a warm-started Streaming
// estimator and drops them.
func (h *Histogram) collapse() {
	h.ensureSorted()
	st := NewStreaming(len(h.samples))
	st.exact = h.samples
	st.sorted = true
	st.n = int64(len(h.samples))
	st.sum = h.sum
	for _, v := range h.samples {
		st.sumsq += v * v
	}
	st.min = h.samples[0]
	st.max = h.samples[len(h.samples)-1]
	st.collapse()
	h.samples = nil
	h.sorted = false
	h.stream = st
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.sum += v
	if h.stream != nil {
		h.stream.Add(v)
		return
	}
	h.samples = append(h.samples, v)
	h.sorted = false
	if h.budget > 0 && len(h.samples) > h.budget {
		h.collapse()
	}
}

// AddDuration records a duration sample in seconds.
func (h *Histogram) AddDuration(d time.Duration) { h.Add(d.Seconds()) }

// Merge folds another histogram's samples into h — pooling per-trial
// distributions so quantiles and means are computed over every sample,
// not averaged over summaries. Merging histograms that have collapsed
// into streaming estimators keeps counts, sums and extremes exact but
// merges quantile state approximately (marker feeding); budgeted
// mega-runs only ever merge at summary accuracy.
func (h *Histogram) Merge(other *Histogram) {
	h.sum += other.sum
	switch {
	case h.stream == nil && other.stream == nil:
		h.samples = append(h.samples, other.samples...)
		h.sorted = false
		if h.budget > 0 && len(h.samples) > h.budget {
			h.collapse()
		}
	case h.stream == nil:
		if len(h.samples) < 32 {
			// Too few exact samples to warm-start markers from: fold
			// them into a copy of the other side's estimator instead.
			st := other.stream.clone()
			for _, v := range h.samples {
				st.Add(v)
			}
			h.samples = nil
			h.sorted = false
			h.stream = st
		} else {
			h.collapse()
			h.stream.absorb(other.stream)
		}
	case other.stream == nil:
		for _, v := range other.samples {
			h.stream.Add(v)
		}
	default:
		h.stream.absorb(other.stream)
	}
}

// N returns the number of samples.
func (h *Histogram) N() int {
	if h.stream != nil {
		return int(h.stream.N())
	}
	return len(h.samples)
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	return h.sum / float64(n)
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) by nearest-rank, or 0 with
// no samples. Past a SetBudget collapse it is the streaming estimate.
func (h *Histogram) Quantile(p float64) float64 {
	if h.stream != nil {
		return h.stream.Quantile(p)
	}
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(p*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 { return h.Quantile(0) }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// P999 returns the 0.999 quantile — the deep-tail latency column the
// workload-realism experiments report next to p50/p99.
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// Stddev returns the population standard deviation.
func (h *Histogram) Stddev() float64 {
	if h.stream != nil {
		return h.stream.Stddev()
	}
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var acc float64
	for _, v := range h.samples {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Summary returns a one-line human-readable distribution summary.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
}

// Series is an append-only (x, y) series, used for sweep outputs such as
// "orphan rate vs block interval".
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Xs) }

// Table renders experiment results as an aligned text table, mirroring how
// the paper reports comparisons.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row, normalizing its arity to the header count: cells
// beyond the header count are dropped, missing cells are padded empty.
// Rows therefore always align with the headers and Render can never index
// out of range, whatever arity the caller passed.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a deep copy of the data rows — cross-experiment checks
// (e.g. "E14's baseline cells equal E9's") compare cells through it.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string { return append([]string(nil), t.headers...) }

// Notes returns a copy of the footnote lines.
func (t *Table) Notes() []string { return append([]string(nil), t.notes...) }

// Render writes the table to w. Column widths are measured in runes, not
// bytes: headers and cells carry multibyte characters (§, –, ≥), and
// byte-length padding would misalign every column after them.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				break
			}
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		b.WriteString("  * ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header row first, notes omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	var b strings.Builder
	for i, h := range t.headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TableDoc is the machine-readable form of a Table — what RenderJSON
// writes and what consumers unmarshal. Round-tripping a table through it
// loses nothing: FromDoc rebuilds an identical table.
type TableDoc struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Doc returns the table's machine-readable form.
func (t *Table) Doc() TableDoc {
	return TableDoc{Title: t.Title, Headers: t.Headers(), Rows: t.Rows(), Notes: t.Notes()}
}

// FromDoc rebuilds a table from its machine-readable form. Row arity is
// normalized through AddRow, exactly as if the rows were added live.
func FromDoc(d TableDoc) *Table {
	t := NewTable(d.Title, d.Headers...)
	for _, row := range d.Rows {
		t.AddRow(row...)
	}
	for _, n := range d.Notes {
		t.AddNote("%s", n)
	}
	return t
}

// RenderJSON writes the table as a JSON object (title, headers, rows,
// notes) so bench trajectories are machine-readable.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Doc())
}

// F formats a float with 2 decimal places for table cells.
func F(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// F1 formats a float with 1 decimal place.
func F1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// F4 formats a float with 4 decimal places (probabilities).
func F4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// I formats an integer cell.
func I(v int) string { return strconv.Itoa(v) }

// I64 formats an int64 cell.
func I64(v int64) string { return strconv.FormatInt(v, 10) }

// U64 formats a uint64 cell.
func U64(v uint64) string { return strconv.FormatUint(v, 10) }

// Bytes renders a byte count in human units (KB/MB/GB, powers of 1000 to
// match how the paper quotes ledger sizes).
func Bytes(n float64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2f GB", n/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2f MB", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.2f KB", n/1e3)
	default:
		return fmt.Sprintf("%.0f B", n)
	}
}

// Pct renders a fraction as a percentage.
func Pct(frac float64) string { return fmt.Sprintf("%.2f%%", 100*frac) }

// Dur renders a duration with millisecond precision.
func Dur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// X renders a multiplier cell, e.g. "3.42x" — used by the runner's
// wall-clock/speedup reporting.
func X(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) + "x" }

// Speedup returns how many times faster cur is than base (base/cur), or 0
// when cur is not positive.
func Speedup(base, cur time.Duration) float64 {
	if cur <= 0 {
		return 0
	}
	return float64(base) / float64(cur)
}
