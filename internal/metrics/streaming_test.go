package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamingExactBelowBudget pins the fixed-budget contract: until
// the budget is crossed, every Streaming answer equals the exact
// Histogram's, bit for bit.
func TestStreamingExactBelowBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewStreaming(1000)
	var h Histogram
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*3 + 10
		s.Add(v)
		h.Add(v)
	}
	if s.Estimating() {
		t.Fatal("estimator collapsed below its budget")
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.95, 0.99, 0.999, 1} {
		if got, want := s.Quantile(p), h.Quantile(p); got != want {
			t.Fatalf("Quantile(%v) = %v, want exact %v", p, got, want)
		}
	}
	if s.Mean() != h.Mean() || s.Sum() != h.Sum() || int(s.N()) != h.N() {
		t.Fatal("exact-phase moments diverged from Histogram")
	}
	if s.Stddev() != h.Stddev() {
		t.Fatalf("Stddev = %v, want %v", s.Stddev(), h.Stddev())
	}
}

// TestStreamingEstimateAccuracy feeds 200k uniform samples — far past
// the budget — and requires the P² estimates to land near the true
// quantiles while moments and extremes stay exact.
func TestStreamingEstimateAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewStreaming(4096)
	var h Histogram
	const n = 200_000
	for i := 0; i < n; i++ {
		v := rng.Float64() * 100
		s.Add(v)
		h.Add(v)
	}
	if !s.Estimating() {
		t.Fatal("estimator never collapsed")
	}
	if int(s.N()) != n || s.Sum() != h.Sum() || s.Min() != h.Min() || s.Max() != h.Max() {
		t.Fatal("moments/extremes must stay exact past the budget")
	}
	for _, p := range []float64{0.5, 0.95, 0.99, 0.999} {
		got, want := s.Quantile(p), h.Quantile(p)
		if math.Abs(got-want) > 1.5 { // 1.5% of the range on 200k uniforms
			t.Fatalf("Quantile(%v) = %v, want ~%v", p, got, want)
		}
	}
	if d := math.Abs(s.Stddev() - h.Stddev()); d > 0.05 {
		t.Fatalf("Stddev drifted %v from exact", d)
	}
}

// TestStreamingDeterminism pins that identical inputs give identical
// estimates — the property that keeps budgeted tables shard- and
// worker-invariant.
func TestStreamingDeterminism(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(11))
		s := NewStreaming(64)
		for i := 0; i < 10_000; i++ {
			s.Add(rng.ExpFloat64())
		}
		return []float64{s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99), s.Quantile(0.999), s.Stddev()}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestHistogramBudgetCollapse pins the SetBudget integration: exact
// below the budget (byte-identical rendering), streaming past it with
// exact count/sum/extremes, including a retroactive SetBudget on an
// already-overfull histogram.
func TestHistogramBudgetCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var budgeted, exact Histogram
	budgeted.SetBudget(256)
	for i := 0; i < 100; i++ {
		v := rng.Float64()
		budgeted.Add(v)
		exact.Add(v)
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if budgeted.Quantile(p) != exact.Quantile(p) {
			t.Fatalf("below budget, Quantile(%v) diverged", p)
		}
	}
	for i := 0; i < 10_000; i++ {
		v := rng.Float64()
		budgeted.Add(v)
		exact.Add(v)
	}
	if budgeted.N() != exact.N() || budgeted.Sum() != exact.Sum() {
		t.Fatal("count/sum must stay exact past the budget")
	}
	if budgeted.Min() != exact.Min() || budgeted.Max() != exact.Max() {
		t.Fatal("extremes must stay exact past the budget")
	}
	if d := math.Abs(budgeted.Quantile(0.5) - exact.Quantile(0.5)); d > 0.03 {
		t.Fatalf("p50 estimate off by %v", d)
	}

	var retro Histogram
	for i := 0; i < 5000; i++ {
		retro.Add(rng.Float64())
	}
	retro.SetBudget(64)
	if retro.N() != 5000 {
		t.Fatalf("retroactive budget lost samples: N = %d", retro.N())
	}
	if retro.Quantile(0.5) < 0.3 || retro.Quantile(0.5) > 0.7 {
		t.Fatalf("retroactive collapse p50 = %v, want ~0.5", retro.Quantile(0.5))
	}

	// SetBudget clamps tiny budgets so markers can warm-start.
	var tiny Histogram
	tiny.SetBudget(1)
	for i := 0; i < 40; i++ {
		tiny.Add(float64(i))
	}
	if tiny.Max() != 39 {
		t.Fatalf("tiny-budget Max = %v, want 39", tiny.Max())
	}
}

// TestHistogramBudgetMerge exercises every Merge combination of exact
// and collapsed sides.
func TestHistogramBudgetMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	build := func(n, budget int) *Histogram {
		var h Histogram
		if budget > 0 {
			h.SetBudget(budget)
		}
		for i := 0; i < n; i++ {
			h.Add(rng.Float64())
		}
		return &h
	}
	cases := []struct {
		name string
		a, b *Histogram
	}{
		{"exact+exact", build(500, 0), build(700, 0)},
		{"exact+collapsed", build(500, 0), build(900, 64)},
		{"collapsed+exact", build(900, 64), build(500, 0)},
		{"collapsed+collapsed", build(900, 64), build(900, 64)},
		{"tiny-exact+collapsed", build(3, 0), build(900, 64)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantN := tc.a.N() + tc.b.N()
			wantSum := tc.a.Sum() + tc.b.Sum()
			tc.a.Merge(tc.b)
			if tc.a.N() != wantN {
				t.Fatalf("N = %d, want %d", tc.a.N(), wantN)
			}
			if math.Abs(tc.a.Sum()-wantSum) > 1e-9 {
				t.Fatalf("Sum = %v, want %v", tc.a.Sum(), wantSum)
			}
			if p := tc.a.Quantile(0.5); p < 0.3 || p > 0.7 {
				t.Fatalf("merged p50 = %v, want ~0.5 on uniforms", p)
			}
		})
	}
}

// TestQuantileEdgeCases pins the nearest-rank boundary behavior the
// tail columns rely on: empty, single sample, p=0 and p=1.
func TestQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, p := range []float64{0, 0.5, 0.999, 1} {
		if got := empty.Quantile(p); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", p, got)
		}
	}
	if empty.P999() != 0 {
		t.Fatalf("empty P999 = %v, want 0", empty.P999())
	}

	var single Histogram
	single.Add(42)
	for _, p := range []float64{0, 0.001, 0.5, 0.999, 1} {
		if got := single.Quantile(p); got != 42 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 42", p, got)
		}
	}
	if single.P999() != 42 || single.Min() != 42 || single.Max() != 42 {
		t.Fatal("single-sample accessors must all return the sample")
	}

	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want the minimum", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %v, want the maximum", got)
	}
	// Nearest-rank on 1000 ordered samples: p999 is sample 999.
	if got := h.P999(); got != 999 {
		t.Fatalf("P999 = %v, want 999", got)
	}
	if got := h.Quantile(0.5); got != 500 {
		t.Fatalf("Quantile(0.5) = %v, want 500", got)
	}
}
