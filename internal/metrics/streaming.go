package metrics

import (
	"math"
	"sort"
	"time"
)

// defaultStreamQuantiles are the tracked quantiles of a collapsed
// histogram — every quantile the experiment tables actually render
// (p50, p95, p99) plus the p999 tail column.
var defaultStreamQuantiles = []float64{0.5, 0.95, 0.99, 0.999}

// Streaming is a fixed-budget quantile estimator: it stores samples
// exactly (answering nearest-rank quantiles identical to Histogram)
// until the budget is crossed, then collapses into one P² estimator
// per tracked quantile (Jain & Chlamtac 1985) and runs in O(1) memory
// from there on. Count, sum, mean, min, max and standard deviation
// stay exact in both phases; post-collapse quantiles are P² estimates.
//
// Everything is deterministic — same samples in the same order, same
// answers — so shard/worker invariance of the experiment tables is
// unaffected by the estimator kicking in.
type Streaming struct {
	budget int
	qs     []float64
	exact  []float64
	sorted bool
	est    []p2est // one per tracked quantile; non-nil once collapsed
	n      int64
	sum    float64
	sumsq  float64
	min    float64
	max    float64
}

// NewStreaming creates an estimator that keeps up to budget exact
// samples (budgets below 32 are clamped up so the P² markers have a
// real distribution to warm-start from; <= 0 selects 4096) and tracks
// the given quantiles after collapse. With no quantiles it tracks the
// table set: p50, p95, p99, p999.
func NewStreaming(budget int, quantiles ...float64) *Streaming {
	switch {
	case budget <= 0:
		budget = 4096
	case budget < 32:
		budget = 32
	}
	if len(quantiles) == 0 {
		quantiles = defaultStreamQuantiles
	}
	return &Streaming{budget: budget, qs: append([]float64(nil), quantiles...)}
}

// Add records one sample.
func (s *Streaming) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumsq += v * v
	if s.est != nil {
		for i := range s.est {
			s.est[i].add(v)
		}
		return
	}
	s.exact = append(s.exact, v)
	s.sorted = false
	if len(s.exact) > s.budget {
		s.collapse()
	}
}

// AddDuration records a duration sample in seconds.
func (s *Streaming) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// collapse warm-starts one P² estimator per tracked quantile from the
// exact sample set and drops the samples.
func (s *Streaming) collapse() {
	s.ensureSorted()
	s.est = make([]p2est, len(s.qs))
	for i, p := range s.qs {
		s.est[i] = newP2(p, s.exact)
	}
	s.exact = nil
	s.sorted = false
}

func (s *Streaming) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.exact)
		s.sorted = true
	}
}

// N returns the number of samples recorded.
func (s *Streaming) N() int64 { return s.n }

// Sum returns the exact sample sum.
func (s *Streaming) Sum() float64 { return s.sum }

// Mean returns the exact sample mean, or 0 with no samples.
func (s *Streaming) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (s *Streaming) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Streaming) Max() float64 { return s.max }

// Estimating reports whether the budget has been crossed — quantiles
// are P² estimates from here on.
func (s *Streaming) Estimating() bool { return s.est != nil }

// Stddev returns the population standard deviation: two-pass exact
// below the budget (matching Histogram bit for bit), moment-based
// after collapse.
func (s *Streaming) Stddev() float64 {
	if s.n == 0 {
		return 0
	}
	if s.est == nil {
		mean := s.Mean()
		var acc float64
		for _, v := range s.exact {
			d := v - mean
			acc += d * d
		}
		return math.Sqrt(acc / float64(s.n))
	}
	mean := s.Mean()
	if v := s.sumsq/float64(s.n) - mean*mean; v > 0 {
		return math.Sqrt(v)
	}
	return 0
}

// Quantile returns the p-quantile. Below the budget it is the exact
// nearest-rank answer Histogram gives; after collapse it is the P²
// estimate of the nearest tracked quantile (p <= 0 and p >= 1 stay
// exact via min/max), clamped into [min, max].
func (s *Streaming) Quantile(p float64) float64 {
	if s.n == 0 {
		return 0
	}
	if s.est == nil {
		s.ensureSorted()
		if p <= 0 {
			return s.exact[0]
		}
		if p >= 1 {
			return s.exact[len(s.exact)-1]
		}
		idx := int(math.Ceil(p*float64(len(s.exact)))) - 1
		if idx < 0 {
			idx = 0
		}
		return s.exact[idx]
	}
	if p <= 0 {
		return s.min
	}
	if p >= 1 {
		return s.max
	}
	best := 0
	for i := range s.qs {
		if math.Abs(s.qs[i]-p) < math.Abs(s.qs[best]-p) {
			best = i
		}
	}
	v := s.est[best].value()
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

// clone returns an independent copy of the estimator.
func (s *Streaming) clone() *Streaming {
	c := *s
	c.qs = append([]float64(nil), s.qs...)
	c.exact = append([]float64(nil), s.exact...)
	c.est = append([]p2est(nil), s.est...)
	return &c
}

// absorb folds another estimator's population into s. Exact counters
// (count, sum, moments, extremes) merge losslessly; if either side has
// collapsed, the other's marker heights (or exact samples) are fed
// through the P² estimators, so merged quantiles are approximations —
// summary-level accuracy, intended for budgeted mega-runs only.
func (s *Streaming) absorb(o *Streaming) {
	if o.n == 0 {
		return
	}
	if s.est == nil && o.est == nil && len(s.exact)+len(o.exact) <= s.budget {
		for _, v := range o.exact {
			s.Add(v)
		}
		return
	}
	if s.est == nil {
		s.collapse()
	}
	feed := o.exact
	if o.est != nil {
		for i := range o.est {
			for _, h := range o.est[i].q {
				feed = append(feed, h)
			}
		}
	}
	for i := range s.est {
		for _, v := range feed {
			s.est[i].add(v)
		}
	}
	s.n += o.n
	s.sum += o.sum
	s.sumsq += o.sumsq
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// p2est is one P² marker set: five heights q tracking the quantile p,
// with actual positions n and desired positions np.
type p2est struct {
	p  float64
	q  [5]float64
	n  [5]float64
	np [5]float64
}

// newP2 warm-starts the markers from a sorted sample set (len >= 5):
// heights are the samples at the five canonical ranks, de-collided so
// positions stay strictly increasing.
func newP2(p float64, sorted []float64) p2est {
	m := len(sorted)
	e := p2est{p: p}
	d := [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	idx := [5]int{}
	for i := 0; i < 5; i++ {
		idx[i] = int(math.Round(d[i] * float64(m-1)))
	}
	for i := 1; i < 5; i++ {
		if idx[i] <= idx[i-1] {
			idx[i] = idx[i-1] + 1
		}
	}
	for i := 4; i >= 0; i-- {
		if idx[i] > m-5+i {
			idx[i] = m - 5 + i
		}
	}
	for i := 0; i < 5; i++ {
		e.q[i] = sorted[idx[i]]
		e.n[i] = float64(idx[i] + 1)
		e.np[i] = 1 + d[i]*float64(m-1)
	}
	return e
}

// value returns the current estimate: the middle marker's height.
func (e *p2est) value() float64 { return e.q[2] }

// add runs one P² update step.
func (e *p2est) add(v float64) {
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	d := [5]float64{0, e.p / 2, e.p, (1 + e.p) / 2, 1}
	for i := range e.np {
		e.np[i] += d[i]
	}
	for i := 1; i <= 3; i++ {
		diff := e.np[i] - e.n[i]
		if (diff >= 1 && e.n[i+1]-e.n[i] > 1) || (diff <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if diff < 0 {
				s = -1
			}
			if qp := e.parabolic(i, s); e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (e *p2est) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+s)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-s)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height prediction when the parabola would
// break marker monotonicity.
func (e *p2est) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}
