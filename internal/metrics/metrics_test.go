package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []float64{4, 1, 3, 2, 5} {
		h.Add(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %g", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %g/%g", h.Min(), h.Max())
	}
	if h.Quantile(0.5) != 3 {
		t.Fatalf("median = %g", h.Quantile(0.5))
	}
	if h.Sum() != 15 {
		t.Fatalf("Sum = %g", h.Sum())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Quantile(-1) != 1 || h.Quantile(0) != 1 {
		t.Fatal("p<=0 should return min")
	}
	if h.Quantile(2) != 100 || h.Quantile(1) != 100 {
		t.Fatal("p>=1 should return max")
	}
	if got := h.Quantile(0.95); got != 95 {
		t.Fatalf("p95 = %g, want 95", got)
	}
}

func TestHistogramAddAfterQuantile(t *testing.T) {
	var h Histogram
	h.Add(10)
	_ = h.Quantile(0.5) // forces sort
	h.Add(1)
	if h.Min() != 1 {
		t.Fatal("Add after Quantile lost ordering")
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if math.Abs(h.Stddev()-2) > 1e-9 {
		t.Fatalf("Stddev = %g, want 2", h.Stddev())
	}
}

func TestHistogramDurations(t *testing.T) {
	var h Histogram
	h.AddDuration(1500 * time.Millisecond)
	if h.Mean() != 1.5 {
		t.Fatalf("AddDuration recorded %g, want 1.5", h.Mean())
	}
	if !strings.Contains(h.Summary(), "n=1") {
		t.Fatalf("Summary missing count: %s", h.Summary())
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "tps"}
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 || s.Xs[1] != 2 || s.Ys[1] != 20 {
		t.Fatal("Series append broken")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("E9 throughput", "system", "tps")
	tb.AddRow("bitcoin", "5.1")
	tb.AddRow("nano", "105.8")
	tb.AddNote("visa baseline: %d", 56000)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E9 throughput", "system", "bitcoin", "105.8", "visa baseline: 56000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow("only-one")         // short row: pad
	tb.AddRow("1", "2", "3", "4") // long row: truncate
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "4") {
		t.Fatal("cell beyond header count should be dropped")
	}
}

// Multibyte headers and cells (§, –, ≥) must align by rune count, not
// byte length: a column whose widest cell is ASCII pads the multibyte
// cells to the same visual width.
func TestTableRenderMultibyteAlignment(t *testing.T) {
	tb := NewTable("t", "§-section", "range")
	tb.AddRow("§IV-B", "3–7")
	tb.AddRow("plain", "wider-cell")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	header, row1, row2 := lines[1], lines[3], lines[4]
	// The second column must start at the same rune offset on every line;
	// byte-length padding would shift it left after a multibyte cell.
	offset := func(line string) int {
		runes := []rune(line)
		for i := len(runes) - 1; i > 0; i-- {
			if runes[i] != ' ' && runes[i-1] == ' ' {
				return i
			}
		}
		return -1
	}
	want := offset(header)
	for i, line := range []string{row1, row2} {
		if got := offset(line); got != want {
			t.Fatalf("row %d second column at rune %d, header at %d:\n%s", i, got, want, sb.String())
		}
	}
}

// Rows longer than the header set — constructible only by hand — must
// not panic Render; extra cells are ignored.
func TestTableRenderOverlongRowSafe(t *testing.T) {
	tb := NewTable("t", "a")
	tb.rows = append(tb.rows, []string{"x", "overflow"})
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "overflow") {
		t.Fatalf("overflow cell rendered:\n%s", sb.String())
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("E16 (§IV): eclipse", "captured", "confirm-p95")
	tb.AddRow("50.00%", "320 ms")
	tb.AddRow("100.00%", "—")
	tb.AddNote("victim is node 0")
	var sb strings.Builder
	if err := tb.RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc TableDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("RenderJSON output not valid JSON: %v", err)
	}
	back := FromDoc(doc)
	if back.Title != tb.Title {
		t.Fatalf("title lost: %q", back.Title)
	}
	if !reflect.DeepEqual(back.Headers(), tb.Headers()) {
		t.Fatalf("headers lost: %v", back.Headers())
	}
	if !reflect.DeepEqual(back.Rows(), tb.Rows()) {
		t.Fatalf("rows lost: %v", back.Rows())
	}
	if !reflect.DeepEqual(back.Notes(), tb.Notes()) {
		t.Fatalf("notes lost: %v", back.Notes())
	}
	// And the round-tripped table renders byte-identically.
	var a, b strings.Builder
	if err := tb.Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := back.Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("round-trip changed rendering:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow(`with,comma`, `with"quote`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "name,value\n") {
		t.Fatalf("CSV header malformed: %q", out)
	}
	if !strings.Contains(out, `"with,comma"`) || !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("CSV escaping broken: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{F(3.14159), "3.14"},
		{F1(3.14159), "3.1"},
		{F4(0.00012), "0.0001"},
		{I(42), "42"},
		{I64(-7), "-7"},
		{U64(9), "9"},
		{Bytes(1500), "1.50 KB"},
		{Bytes(2.5e6), "2.50 MB"},
		{Bytes(145.95e9), "145.95 GB"},
		{Bytes(12), "12 B"},
		{Pct(0.0625), "6.25%"},
		{Dur(1500 * time.Millisecond), "1.5s"},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Fatalf("formatter got %q want %q", tc.got, tc.want)
		}
	}
}
