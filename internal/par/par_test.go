package par

import (
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Fatalf("Workers(0, 100) = %d", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3", w)
	}
	if w := Workers(-5, 10); w < 1 {
		t.Fatalf("Workers(-5, 10) = %d", w)
	}
	if w := Workers(2, 10); w != 2 {
		t.Fatalf("Workers(2, 10) = %d, want 2", w)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, workers := range []int{0, 1, 3, 16} {
			hits := make([]int32, n)
			For(n, workers, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, workers := range []int{0, 1, 3, 16} {
			hits := make([]int32, n)
			Each(n, workers, 1, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestInlineThreshold(t *testing.T) {
	// Below the threshold the callback must run on the calling goroutine;
	// observable as: no data race on an unguarded counter under -race.
	count := 0
	Each(4, 8, 100, func(i int) { count++ })
	For(4, 8, 100, func(lo, hi int) { count += hi - lo })
	if count != 8 {
		t.Fatalf("inline paths covered %d/8", count)
	}
}
