// Package par holds the repository's two worker-pool primitives. Every
// parallel site — the experiment scheduler, batch signature checks,
// merkle level hashing, lattice batch settlement — distributes the same
// shape of work ("n independent index tasks on w goroutines") and shares
// these helpers instead of hand-rolling a pool.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker bound: <= 0 means one per CPU
// core, and the result never exceeds n (one task per worker at most).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For splits [0, n) into one contiguous chunk per worker and runs f on
// each chunk concurrently — the right shape for uniform, cheap
// per-element work such as hashing, where chunking amortizes scheduling.
// Runs inline (no goroutines) when n < inlineBelow or only one worker is
// available.
func For(n, workers, inlineBelow int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 || n < inlineBelow {
		f(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Each runs f(i) for every i in [0, n), handing indices to workers
// dynamically through an atomic counter — the right shape for uneven
// per-item work (whole experiments, signature checks of varying cost),
// where static chunks would leave workers idle. Runs inline when
// n < inlineBelow or only one worker is available.
func Each(n, workers, inlineBelow int, f func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 || n < inlineBelow {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
