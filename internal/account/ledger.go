package account

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/chain"
	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/merkle"
	"repro/internal/pow"
	"repro/internal/trie"
)

// BlockBody is an Ethereum-style block body: transactions, their receipts,
// and the gas accounting that bounds the block ("a measure called gas
// limit defines the maximum amount of gas all transactions in the whole
// block combined are allowed to consume", §VI-A).
type BlockBody struct {
	Txs      []*Tx
	Receipts []*Receipt
	GasLimit uint64
	GasUsed  uint64
}

var _ chain.Payload = (*BlockBody)(nil)

// TxRoot returns the Merkle root over transaction IDs.
func (b *BlockBody) TxRoot() hashx.Hash {
	ids := make([]hashx.Hash, len(b.Txs))
	for i, tx := range b.Txs {
		ids[i] = tx.ID()
	}
	return merkle.RootOfHashes(ids)
}

// Root commits to transactions, receipts and gas accounting, mirroring
// Ethereum's three commitments (§II-A: "three different structures to
// store transactions, receipts and state"; state is in the header).
func (b *BlockBody) Root() hashx.Hash {
	tx := b.TxRoot()
	rc := ReceiptsRoot(b.Receipts)
	var tail [16]byte
	binary.BigEndian.PutUint64(tail[:8], b.GasLimit)
	binary.BigEndian.PutUint64(tail[8:], b.GasUsed)
	return hashx.Concat(tx[:], rc[:], tail[:])
}

// Size returns the modeled wire size of transactions plus receipts.
func (b *BlockBody) Size() int {
	sz := 16
	for _, tx := range b.Txs {
		sz += tx.EncodedSize()
	}
	for _, r := range b.Receipts {
		sz += r.receiptWireSize()
	}
	return sz
}

// TxCount returns the number of transactions.
func (b *BlockBody) TxCount() int { return len(b.Txs) }

// Params configures an Ethereum-style ledger. Defaults follow the paper's
// description of Ethereum circa 2018: ~15 s blocks, a dynamic gas limit,
// per-block difficulty adjustment.
type Params struct {
	InitialGasLimit uint64
	TargetGasLimit  uint64
	// GasLimitQuotient bounds per-block gas-limit drift (parent/1024).
	GasLimitQuotient  uint64
	TargetInterval    time.Duration
	InitialDifficulty float64
	ForkChoice        chain.ForkChoice
}

// DefaultParams returns Ethereum-shaped parameters.
func DefaultParams() Params {
	return Params{
		InitialGasLimit:   8_000_000,
		TargetGasLimit:    8_000_000,
		GasLimitQuotient:  1024,
		TargetInterval:    15 * time.Second,
		InitialDifficulty: 1 << 22,
		ForkChoice:        chain.HeaviestChain,
	}
}

// Mempool orders pending account-model transactions by gas price, the fee
// market §VI-A describes. One transaction per (sender, nonce) is kept; a
// higher-gas-price replacement evicts the old one.
type Mempool struct {
	byID    map[hashx.Hash]*Tx
	byNonce map[keys.Address]map[uint64]*Tx
}

// NewMempool returns an empty pool.
func NewMempool() *Mempool {
	return &Mempool{
		byID:    make(map[hashx.Hash]*Tx),
		byNonce: make(map[keys.Address]map[uint64]*Tx),
	}
}

// Len returns the number of pooled transactions.
func (m *Mempool) Len() int { return len(m.byID) }

// Bytes returns the modeled total size of the pool.
func (m *Mempool) Bytes() int {
	n := 0
	for _, tx := range m.byID {
		n += tx.EncodedSize()
	}
	return n
}

// Contains reports whether a transaction is pooled.
func (m *Mempool) Contains(id hashx.Hash) bool {
	_, ok := m.byID[id]
	return ok
}

// Add validates a transaction's signature and stationary properties
// against state (nonce not in the past, funds cover the worst case) and
// pools it.
func (m *Mempool) Add(tx *Tx, state *State) error {
	if !tx.VerifySig() {
		return ErrBadSig
	}
	acct := state.GetAccount(tx.From)
	if tx.Nonce < acct.Nonce {
		return fmt.Errorf("%w: tx nonce %d already used (account at %d)", ErrBadNonce, tx.Nonce, acct.Nonce)
	}
	if tx.GasLimit < tx.IntrinsicGas() {
		return ErrGasTooLow
	}
	need := tx.Value + tx.GasLimit*tx.GasPrice
	if acct.Balance < need {
		return fmt.Errorf("%w: balance %d < %d", ErrInsufficient, acct.Balance, need)
	}
	slot, ok := m.byNonce[tx.From]
	if !ok {
		slot = make(map[uint64]*Tx)
		m.byNonce[tx.From] = slot
	}
	if old, exists := slot[tx.Nonce]; exists {
		if old.GasPrice >= tx.GasPrice {
			return fmt.Errorf("account: replacement for nonce %d does not raise gas price", tx.Nonce)
		}
		delete(m.byID, old.ID())
	}
	slot[tx.Nonce] = tx
	m.byID[tx.ID()] = tx
	return nil
}

// remove unlinks one transaction.
func (m *Mempool) remove(tx *Tx) {
	delete(m.byID, tx.ID())
	if slot, ok := m.byNonce[tx.From]; ok {
		if cur, ok2 := slot[tx.Nonce]; ok2 && cur.ID() == tx.ID() {
			delete(slot, tx.Nonce)
		}
		if len(slot) == 0 {
			delete(m.byNonce, tx.From)
		}
	}
}

// RemoveConfirmed drops mined transactions and any pooled transaction
// whose nonce they consumed.
func (m *Mempool) RemoveConfirmed(txs []*Tx) {
	for _, tx := range txs {
		m.remove(tx)
		if slot, ok := m.byNonce[tx.From]; ok {
			if rival, clash := slot[tx.Nonce]; clash {
				m.remove(rival)
			}
		}
	}
}

// Reinject pools orphaned transactions back, ignoring ones that no longer
// validate; it returns the number actually restored.
func (m *Mempool) Reinject(txs []*Tx, state *State) int {
	n := 0
	for _, tx := range txs {
		if err := m.Add(tx, state); err == nil {
			n++
		}
	}
	return n
}

// Candidates returns pooled transactions ordered for block inclusion:
// per-sender nonce runs starting at the state nonce, interleaved by gas
// price (highest first).
func (m *Mempool) Candidates(state *State) []*Tx {
	type run struct {
		txs []*Tx
	}
	runs := make([]run, 0, len(m.byNonce))
	for sender, slot := range m.byNonce {
		nonce := state.Nonce(sender)
		var r run
		for {
			tx, ok := slot[nonce]
			if !ok {
				break
			}
			r.txs = append(r.txs, tx)
			nonce++
		}
		if len(r.txs) > 0 {
			runs = append(runs, r)
		}
	}
	// Deterministic order: by head gas price desc, then sender address.
	sort.Slice(runs, func(i, j int) bool {
		a, b := runs[i].txs[0], runs[j].txs[0]
		if a.GasPrice != b.GasPrice {
			return a.GasPrice > b.GasPrice
		}
		return a.From.Less(b.From)
	})
	var out []*Tx
	for _, r := range runs {
		out = append(out, r.txs...)
	}
	return out
}

// Ledger is a full Ethereum-style node: block store with fork choice, a
// persistent state snapshot per block (so reorgs are O(1) pointer swaps
// and historical roots remain queryable until pruned), and a gas-price
// mempool.
type Ledger struct {
	params  Params
	store   *chain.Store
	states  map[hashx.Hash]*trie.Trie // block hash -> post-state
	deltas  map[hashx.Hash]trie.Stats // block hash -> state delta footprint
	pool    *Mempool
	txBlock map[hashx.Hash]hashx.Hash
	genesis *chain.Block
}

// NewLedger creates a ledger whose genesis state holds the allocation.
func NewLedger(alloc map[keys.Address]uint64, params Params) (*Ledger, error) {
	if params.InitialGasLimit == 0 {
		return nil, errors.New("account: InitialGasLimit must be positive")
	}
	state := NewState()
	addrs := make([]keys.Address, 0, len(alloc))
	for a := range alloc {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	for _, a := range addrs {
		state.SetAccount(a, Account{Balance: alloc[a]})
	}
	body := &BlockBody{GasLimit: params.InitialGasLimit}
	genesis := &chain.Block{
		Header: chain.Header{
			Parent:    hashx.Zero,
			Height:    0,
			TxRoot:    body.Root(),
			StateRoot: state.Root(),
		},
		Payload: body,
	}
	l := &Ledger{
		params:  params,
		states:  map[hashx.Hash]*trie.Trie{genesis.Hash(): state.Trie()},
		deltas:  map[hashx.Hash]trie.Stats{genesis.Hash(): state.Trie().Measure()},
		pool:    NewMempool(),
		txBlock: make(map[hashx.Hash]hashx.Hash),
		genesis: genesis,
	}
	store, err := chain.NewStore(genesis, params.ForkChoice)
	if err != nil {
		return nil, fmt.Errorf("account: %w", err)
	}
	store.SetValidator(l.validateBlock)
	l.store = store
	return l, nil
}

// Store exposes the underlying block store.
func (l *Ledger) Store() *chain.Store { return l.store }

// Pool exposes the mempool.
func (l *Ledger) Pool() *Mempool { return l.pool }

// PoolLen returns the mempool backlog size — the pending-transaction
// census the throughput experiments report (§VI).
func (l *Ledger) PoolLen() int { return l.pool.Len() }

// Genesis returns the genesis block.
func (l *Ledger) Genesis() *chain.Block { return l.genesis }

// Params returns the ledger parameters.
func (l *Ledger) Params() Params { return l.params }

// Height returns the main-chain height.
func (l *Ledger) Height() uint64 { return l.store.Height() }

// State returns a mutable copy of the tip state.
func (l *Ledger) State() *State { return StateAt(l.states[l.store.Tip()]).Copy() }

// StateOf returns a copy of the post-state of any known block (nil when
// the block is unknown or its state was pruned).
func (l *Ledger) StateOf(blockHash hashx.Hash) *State {
	t, ok := l.states[blockHash]
	if !ok {
		return nil
	}
	return StateAt(t).Copy()
}

// Balance returns the tip balance of an address.
func (l *Ledger) Balance(addr keys.Address) uint64 {
	return StateAt(l.states[l.store.Tip()]).Balance(addr)
}

// SubmitTx pools a transaction after stationary validation at the tip.
func (l *Ledger) SubmitTx(tx *Tx) error { return l.pool.Add(tx, l.State()) }

// Confirmations reports the §IV-A confirmation depth of a transaction.
func (l *Ledger) Confirmations(txID hashx.Hash) int {
	blockHash, ok := l.txBlock[txID]
	if !ok {
		return 0
	}
	return l.store.Confirmations(blockHash)
}

// NextGasLimit drifts the block gas limit toward the target by at most
// parent/quotient per block — the "dynamic [block size that] will adapt
// to network conditions" of §VI-A.
func (l *Ledger) NextGasLimit(parent uint64) uint64 {
	q := l.params.GasLimitQuotient
	if q == 0 {
		q = 1024
	}
	step := parent / q
	if step == 0 {
		step = 1
	}
	switch {
	case parent < l.params.TargetGasLimit:
		next := parent + step
		if next > l.params.TargetGasLimit {
			next = l.params.TargetGasLimit
		}
		return next
	case parent > l.params.TargetGasLimit:
		next := parent - step
		if next < l.params.TargetGasLimit {
			next = l.params.TargetGasLimit
		}
		return next
	default:
		return parent
	}
}

// BuildBlock assembles and executes a candidate block on the tip: mempool
// candidates by gas price, packed until the block gas limit is reached.
func (l *Ledger) BuildBlock(proposer keys.Address, now time.Duration) *chain.Block {
	tip := l.store.TipBlock()
	parentBody := tip.Payload.(*BlockBody)
	gasLimit := l.NextGasLimit(parentBody.GasLimit)
	state := l.State()
	body := &BlockBody{GasLimit: gasLimit}
	for _, tx := range l.pool.Candidates(state) {
		if body.GasUsed+tx.GasLimit > gasLimit {
			continue
		}
		receipt, err := ApplyTx(state, tx, proposer)
		if err != nil {
			continue // stale entry; stays pooled until eviction
		}
		body.Txs = append(body.Txs, tx)
		body.Receipts = append(body.Receipts, receipt)
		body.GasUsed += receipt.GasUsed
	}
	diff := pow.EthereumAdjust(tip.Header.Difficulty, now-tip.Header.Time)
	if tip.Header.Height == 0 {
		diff = l.params.InitialDifficulty
	}
	return &chain.Block{
		Header: chain.Header{
			Parent:     tip.Hash(),
			Height:     tip.Header.Height + 1,
			Time:       now,
			TxRoot:     body.Root(),
			StateRoot:  state.Root(),
			Difficulty: diff,
			Proposer:   proposer,
		},
		Payload: body,
	}
}

// BuildBlockOn assembles an empty block extending an arbitrary known
// parent, not necessarily the tip — the honest miner that races on a
// selfish miner's published branch (the γ side of the Eyal–Sirer 1-1
// race) builds here. With no transactions the post-state equals the
// parent state, so the block validates on any branch whose state is
// still retained.
func (l *Ledger) BuildBlockOn(parent hashx.Hash, proposer keys.Address, now time.Duration) (*chain.Block, error) {
	p, ok := l.store.Get(parent)
	if !ok {
		return nil, fmt.Errorf("account: build on %s: %w", parent, chain.ErrUnknownBlock)
	}
	parentState, ok := l.states[parent]
	if !ok {
		return nil, fmt.Errorf("account: no state for parent %s (pruned?)", parent)
	}
	body := &BlockBody{GasLimit: l.NextGasLimit(p.Payload.(*BlockBody).GasLimit)}
	diff := pow.EthereumAdjust(p.Header.Difficulty, now-p.Header.Time)
	if p.Header.Height == 0 {
		diff = l.params.InitialDifficulty
	}
	return &chain.Block{
		Header: chain.Header{
			Parent:     parent,
			Height:     p.Header.Height + 1,
			Time:       now,
			TxRoot:     body.Root(),
			StateRoot:  StateAt(parentState).Root(),
			Difficulty: diff,
			Proposer:   proposer,
		},
		Payload: body,
	}, nil
}

// validateBlock re-executes a block against its parent's state and checks
// the declared roots — full validation at acceptance time, side chains
// included (possible here, unlike the UTXO ledger, because persistent
// tries give every branch its own cheap state snapshot).
func (l *Ledger) validateBlock(b, parent *chain.Block) error {
	body, ok := b.Payload.(*BlockBody)
	if !ok {
		return errors.New("account: foreign payload type")
	}
	parentState, ok := l.states[parent.Hash()]
	if !ok {
		return fmt.Errorf("account: no state for parent %s (pruned?)", parent.Hash())
	}
	parentBody := parent.Payload.(*BlockBody)
	wantLimit := l.NextGasLimit(parentBody.GasLimit)
	if body.GasLimit != wantLimit {
		return fmt.Errorf("account: gas limit %d, want %d", body.GasLimit, wantLimit)
	}
	if len(body.Receipts) != len(body.Txs) {
		return errors.New("account: receipt count mismatch")
	}
	state := StateAt(parentState).Copy()
	var gasUsed uint64
	for i, tx := range body.Txs {
		receipt, err := ApplyTx(state, tx, b.Header.Proposer)
		if err != nil {
			return fmt.Errorf("account: tx %d invalid: %w", i, err)
		}
		gasUsed += receipt.GasUsed
		if receipt.GasUsed != body.Receipts[i].GasUsed || receipt.Status != body.Receipts[i].Status {
			return fmt.Errorf("account: receipt %d does not match execution", i)
		}
	}
	if gasUsed != body.GasUsed {
		return fmt.Errorf("account: gas used %d, declared %d", gasUsed, body.GasUsed)
	}
	if gasUsed > body.GasLimit {
		return fmt.Errorf("account: gas used %d exceeds limit %d", gasUsed, body.GasLimit)
	}
	if state.Root() != b.Header.StateRoot {
		return errors.New("account: state root mismatch")
	}
	// Stash the executed state; ProcessBlock links it after Add succeeds.
	l.states[b.Hash()] = state.Trie()
	l.deltas[b.Hash()] = trie.DiffStats(StateAt(parentState).Trie(), state.Trie())
	return nil
}

// ProcessBlock adds a received block. Validation (including execution)
// happens inside the store's validator hook; this method reconciles the
// mempool and the confirmation index with the outcome — for the block
// itself and for every orphan-pool block its insertion cascaded in, so
// out-of-order delivery leaves the index exactly where in-order delivery
// would.
func (l *Ledger) ProcessBlock(b *chain.Block) (chain.AddResult, error) {
	res := l.store.Add(b)
	if res.Status == chain.Rejected {
		// Drop any state the validator stashed for a rejected block.
		delete(l.states, b.Hash())
		delete(l.deltas, b.Hash())
		return res, res.Err
	}
	l.applyAddOutcome(b, res.Status, res.Reorg)
	for _, ad := range res.Adopted {
		l.applyAddOutcome(ad.Block, ad.Status, ad.Reorg)
	}
	return res, nil
}

// applyAddOutcome reconciles the tx index and mempool with one inserted
// block's outcome.
func (l *Ledger) applyAddOutcome(b *chain.Block, status chain.AddStatus, reorg *chain.Reorg) {
	switch status {
	case chain.Accepted:
		l.indexBlock(b)
	case chain.AcceptedReorg:
		state := l.State()
		for _, h := range reorg.Abandoned {
			old, _ := l.store.Get(h)
			body := old.Payload.(*BlockBody)
			for _, tx := range body.Txs {
				delete(l.txBlock, tx.ID())
			}
			l.pool.Reinject(body.Txs, state)
		}
		for _, h := range reorg.Adopted {
			nb, _ := l.store.Get(h)
			l.indexBlock(nb)
		}
	}
}

func (l *Ledger) indexBlock(b *chain.Block) {
	body := b.Payload.(*BlockBody)
	h := b.Hash()
	for _, tx := range body.Txs {
		l.txBlock[tx.ID()] = h
	}
	l.pool.RemoveConfirmed(body.Txs)
}

// LedgerBytes returns the modeled size of all main-chain blocks (headers,
// transactions and receipts) — the raw chain data of §V-A.
func (l *Ledger) LedgerBytes() int {
	total := 0
	for _, h := range l.store.MainChain() {
		b, _ := l.store.Get(h)
		total += b.Size()
	}
	return total
}

// StateBytes returns the footprint of the tip state alone — what a
// fast-synced node stores (§V-A).
func (l *Ledger) StateBytes() trie.Stats {
	return StateAt(l.states[l.store.Tip()]).Trie().Measure()
}

// ArchiveBytes returns the footprint of every retained main-chain state
// with structural sharing counted once — an archive node before pruning.
func (l *Ledger) ArchiveBytes() trie.Stats {
	tries := make([]*trie.Trie, 0, len(l.states))
	for _, h := range l.store.MainChain() {
		if t, ok := l.states[h]; ok {
			tries = append(tries, t)
		}
	}
	return trie.MeasureMany(tries)
}

// DeltaOf returns the state-delta footprint a block introduced.
func (l *Ledger) DeltaOf(blockHash hashx.Hash) (trie.Stats, bool) {
	d, ok := l.deltas[blockHash]
	return d, ok
}

// PruneStatesBelow discards state snapshots for main-chain blocks deeper
// than keepDepth below the tip (side-chain snapshots at those heights are
// dropped too). This is §V-A's delta pruning: "if one is not interested
// in past states, the deltas can be discarded without harming the chain
// integrity". It returns the number of snapshots dropped.
func (l *Ledger) PruneStatesBelow(keepDepth uint64) int {
	tipHeight := l.store.Height()
	if tipHeight <= keepDepth {
		return 0
	}
	cutoff := tipHeight - keepDepth
	dropped := 0
	for h := range l.states {
		b, ok := l.store.Get(h)
		if !ok {
			continue
		}
		if b.Header.Height < cutoff {
			delete(l.states, h)
			dropped++
		}
	}
	return dropped
}
