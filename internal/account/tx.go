package account

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/merkle"
)

// Intrinsic gas costs, shaped after Ethereum's.
const (
	GasTxBase     = 21_000 // every transaction
	GasTxDataByte = 16     // per byte of call/creation data
	GasCreateByte = 200    // per byte of deployed code
)

// Tx is an account-model transaction: a nonce-ordered transfer with an
// optional contract call or creation. Gas is "the unit used to measure
// the fees required for a particular computation" (§VI-A).
type Tx struct {
	From     keys.Address
	Nonce    uint64
	To       *keys.Address // nil creates a contract from Data
	Value    uint64
	GasLimit uint64
	GasPrice uint64
	Data     []byte
	PubKey   ed25519.PublicKey
	Sig      []byte
}

// txWireOverhead is the modeled fixed encoding cost of a transaction.
const txWireOverhead = keys.AddressSize + 8 + keys.AddressSize + 8 + 8 + 8 +
	ed25519.PublicKeySize + ed25519.SignatureSize + 4

// EncodedSize returns the modeled wire size.
func (tx *Tx) EncodedSize() int { return txWireOverhead + len(tx.Data) }

// appendSigBytes serializes the signed portion into buf. Callers hand
// in a stack scratch sized for data-free transactions — SigHash and ID
// run per signature check, so a heap buffer each was allocator churn.
func (tx *Tx) appendSigBytes(buf []byte) []byte {
	buf = append(buf, tx.From[:]...)
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], tx.Nonce)
	buf = append(buf, scratch[:]...)
	if tx.To != nil {
		buf = append(buf, 0x01)
		buf = append(buf, tx.To[:]...)
	} else {
		buf = append(buf, 0x00)
	}
	for _, v := range []uint64{tx.Value, tx.GasLimit, tx.GasPrice} {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	return append(buf, tx.Data...)
}

// sigScratch holds a data-free transaction's full wire form (signature
// fields included) without spilling to the heap.
type sigScratch [txWireOverhead + 64]byte

// SigHash is the digest the sender signs.
func (tx *Tx) SigHash() hashx.Hash {
	var sb sigScratch
	return hashx.Sum(tx.appendSigBytes(sb[:0]))
}

// ID is the transaction identifier (covers the signature).
func (tx *Tx) ID() hashx.Hash {
	var sb sigScratch
	buf := tx.appendSigBytes(sb[:0])
	buf = append(buf, tx.PubKey...)
	buf = append(buf, tx.Sig...)
	return hashx.Sum(buf)
}

// Sign fills From, PubKey and Sig from the key pair.
func (tx *Tx) Sign(kp *keys.KeyPair) {
	tx.From = kp.Address()
	digest := tx.SigHash()
	tx.PubKey = kp.Pub
	tx.Sig = kp.Sign(digest[:])
}

// VerifySig checks the signature and that PubKey matches From.
func (tx *Tx) VerifySig() bool {
	if keys.AddressOf(tx.PubKey) != tx.From {
		return false
	}
	digest := tx.SigHash()
	return keys.Verify(tx.PubKey, digest[:], tx.Sig)
}

// IntrinsicGas is the gas charged before any execution.
func (tx *Tx) IntrinsicGas() uint64 {
	return GasTxBase + uint64(len(tx.Data))*GasTxDataByte
}

// Receipt records a transaction's execution outcome, the per-transaction
// artifact Ethereum stores in its receipts trie (§II-A, §V-A).
type Receipt struct {
	TxID    hashx.Hash
	Status  uint8 // 1 success, 0 reverted/failed
	GasUsed uint64
	Return  uint64
	Logs    []uint64
	// Contract is the created contract's address when the tx deployed one.
	Contract keys.Address
}

// receiptWireSize is the modeled encoding cost of one receipt.
func (r *Receipt) receiptWireSize() int {
	return hashx.Size + 1 + 8 + 8 + 8*len(r.Logs) + keys.AddressSize
}

// appendEncode serializes the receipt for Merkle commitment into buf.
func (r *Receipt) appendEncode(buf []byte) []byte {
	buf = append(buf, r.TxID[:]...)
	buf = append(buf, r.Status)
	var scratch [8]byte
	binary.BigEndian.PutUint64(scratch[:], r.GasUsed)
	buf = append(buf, scratch[:]...)
	binary.BigEndian.PutUint64(scratch[:], r.Return)
	buf = append(buf, scratch[:]...)
	for _, l := range r.Logs {
		binary.BigEndian.PutUint64(scratch[:], l)
		buf = append(buf, scratch[:]...)
	}
	return append(buf, r.Contract[:]...)
}

// ReceiptsRoot is the Merkle root over encoded receipts. One scratch
// buffer serves the whole batch — HashLeaf consumes, never retains.
func ReceiptsRoot(receipts []*Receipt) hashx.Hash {
	leaves := make([]hashx.Hash, len(receipts))
	var buf []byte
	for i, r := range receipts {
		buf = r.appendEncode(buf[:0])
		leaves[i] = merkle.HashLeaf(buf)
	}
	return merkle.RootOfHashes(leaves)
}

// Execution errors surfaced by ApplyTx.
var (
	ErrBadNonce     = errors.New("account: wrong nonce")
	ErrBadSig       = errors.New("account: bad signature")
	ErrInsufficient = errors.New("account: insufficient balance")
	ErrGasTooLow    = errors.New("account: gas limit below intrinsic gas")
	ErrNotContract  = errors.New("account: call target has no code")
)

// ApplyTx executes one transaction against state, crediting gas fees to
// coinbase. It returns the receipt; the state is modified in place. On
// a validation error (bad nonce/signature/funds) the state is untouched
// and no receipt is produced. On an execution failure (revert, out of
// gas) the value transfer and execution effects are rolled back but gas
// is still consumed and the nonce still advances — Ethereum's rules.
func ApplyTx(state *State, tx *Tx, coinbase keys.Address) (*Receipt, error) {
	if !tx.VerifySig() {
		return nil, ErrBadSig
	}
	sender := state.GetAccount(tx.From)
	if tx.Nonce != sender.Nonce {
		return nil, fmt.Errorf("%w: tx %d, account %d", ErrBadNonce, tx.Nonce, sender.Nonce)
	}
	intrinsic := tx.IntrinsicGas()
	if tx.GasLimit < intrinsic {
		return nil, fmt.Errorf("%w: limit %d < intrinsic %d", ErrGasTooLow, tx.GasLimit, intrinsic)
	}
	upfront := tx.GasLimit * tx.GasPrice
	if sender.Balance < upfront || sender.Balance-upfront < tx.Value {
		return nil, fmt.Errorf("%w: balance %d, need value %d + gas %d",
			ErrInsufficient, sender.Balance, tx.Value, upfront)
	}

	// Charge the full gas limit up front and advance the nonce; the
	// unused remainder is refunded below.
	state.SubBalance(tx.From, upfront)
	state.BumpNonce(tx.From)

	receipt := &Receipt{TxID: tx.ID(), Status: 1, GasUsed: intrinsic}
	// Snapshot after nonce/gas so failures keep those effects.
	checkpoint := state.Copy()

	execGas := tx.GasLimit - intrinsic
	switch {
	case tx.To == nil:
		// Contract creation: Data is the code; charge per byte.
		createGas := uint64(len(tx.Data)) * GasCreateByte
		if createGas > execGas {
			receipt.Status = 0
			receipt.GasUsed = tx.GasLimit
			state.restore(checkpoint)
		} else {
			receipt.GasUsed += createGas
			addr := ContractAddress(tx.From, tx.Nonce)
			state.SetAccount(addr, Account{Balance: tx.Value, Code: append([]byte{}, tx.Data...)})
			state.SubBalance(tx.From, tx.Value)
			receipt.Contract = addr
		}
	default:
		target := state.GetAccount(*tx.To)
		// Plain value transfer.
		state.SubBalance(tx.From, tx.Value)
		state.AddBalance(*tx.To, tx.Value)
		if target.IsContract() {
			res, err := Execute(state, target.Code, CallContext{
				Contract: *tx.To,
				Caller:   tx.From,
				Value:    tx.Value,
				Data:     tx.Data,
				GasLimit: execGas,
			})
			receipt.GasUsed += res.GasUsed
			receipt.Return = res.Return
			receipt.Logs = res.Logs
			if err != nil {
				// Revert all effects of the call including the value
				// transfer; gas is still consumed.
				receipt.Status = 0
				receipt.Logs = nil
				receipt.Return = 0
				if errors.Is(err, ErrOutOfGas) {
					receipt.GasUsed = tx.GasLimit
				}
				state.restore(checkpoint)
			}
		}
	}

	// Refund unused gas; pay the miner/validator for gas consumed.
	state.AddBalance(tx.From, (tx.GasLimit-receipt.GasUsed)*tx.GasPrice)
	state.AddBalance(coinbase, receipt.GasUsed*tx.GasPrice)
	return receipt, nil
}

// restore resets the state view to a checkpoint taken with Copy.
func (s *State) restore(checkpoint *State) { s.t = checkpoint.t }
