package account

import (
	"testing"

	"repro/internal/keys"
)

// Two contracts at different addresses must have fully isolated storage,
// even for equal slot numbers — the prefix scheme in the shared state
// trie cannot collide.
func TestContractStorageIsolation(t *testing.T) {
	s := NewState()
	a := keys.Deterministic("contract-a").Address()
	b := keys.Deterministic("contract-b").Address()
	s.SetStorage(a, 0, 111)
	s.SetStorage(b, 0, 222)
	if s.GetStorage(a, 0) != 111 || s.GetStorage(b, 0) != 222 {
		t.Fatal("storage collided across contracts")
	}
	s.SetStorage(a, 0, 0) // delete a's slot
	if s.GetStorage(b, 0) != 222 {
		t.Fatal("deleting a's slot destroyed b's")
	}
}

// Account records and storage slots share the trie; an account whose
// address bytes coincide with a storage key prefix must not alias.
func TestAccountVsStorageKeyspace(t *testing.T) {
	s := NewState()
	addr := keys.Deterministic("keyspace").Address()
	s.SetAccount(addr, Account{Balance: 500})
	s.SetStorage(addr, 0, 999)
	got := s.GetAccount(addr)
	if got.Balance != 500 {
		t.Fatalf("storage write corrupted the account: %+v", got)
	}
	if s.GetStorage(addr, 0) != 999 {
		t.Fatal("account write corrupted storage")
	}
	// Deleting the account leaves its storage (self-destruct semantics
	// are out of scope; the keyspaces just must not alias).
	s.SetAccount(addr, Account{})
	if s.GetStorage(addr, 0) != 999 {
		t.Fatal("account delete destroyed storage")
	}
}

// Executing one contract can never write another contract's storage: the
// VM only exposes the executing contract's slots.
func TestVMCannotTouchForeignStorage(t *testing.T) {
	s := NewState()
	victim := keys.Deterministic("victim").Address()
	attacker := keys.Deterministic("attacker-contract").Address()
	s.SetStorage(victim, 7, 1_000_000)

	code := Asm(OpPush, 7, OpPush, 0, OpSStore, OpStop) // storage[7] = 0
	_, err := Execute(s, code, CallContext{Contract: attacker, GasLimit: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if s.GetStorage(victim, 7) != 1_000_000 {
		t.Fatal("attacker contract overwrote victim storage")
	}
	if s.GetStorage(attacker, 7) != 0 {
		t.Fatal("attacker's own write went missing")
	}
}
