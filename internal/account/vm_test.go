package account

import (
	"errors"
	"testing"

	"repro/internal/keys"
)

// exec runs code with a generous gas limit against a fresh state.
func exec(t *testing.T, code []byte, ctx CallContext) (ExecResult, *State) {
	t.Helper()
	state := NewState()
	if ctx.GasLimit == 0 {
		ctx.GasLimit = 1_000_000
	}
	res, err := Execute(state, code, ctx)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res, state
}

func TestVMArithmetic(t *testing.T) {
	cases := []struct {
		name string
		code []byte
		want uint64
	}{
		{"add", Asm(OpPush, 7, OpPush, 3, OpAdd, OpReturn), 10},
		{"sub", Asm(OpPush, 7, OpPush, 3, OpSub, OpReturn), 4},
		{"mul", Asm(OpPush, 7, OpPush, 3, OpMul, OpReturn), 21},
		{"div", Asm(OpPush, 7, OpPush, 3, OpDiv, OpReturn), 2},
		{"div by zero", Asm(OpPush, 7, OpPush, 0, OpDiv, OpReturn), 0},
		{"mod", Asm(OpPush, 7, OpPush, 3, OpMod, OpReturn), 1},
		{"mod by zero", Asm(OpPush, 7, OpPush, 0, OpMod, OpReturn), 0},
		{"lt true", Asm(OpPush, 3, OpPush, 7, OpLt, OpReturn), 1},
		{"lt false", Asm(OpPush, 7, OpPush, 3, OpLt, OpReturn), 0},
		{"gt", Asm(OpPush, 7, OpPush, 3, OpGt, OpReturn), 1},
		{"eq", Asm(OpPush, 5, OpPush, 5, OpEq, OpReturn), 1},
		{"iszero", Asm(OpPush, 0, OpIsZero, OpReturn), 1},
		{"and", Asm(OpPush, 6, OpPush, 3, OpAnd, OpReturn), 2},
		{"or", Asm(OpPush, 6, OpPush, 3, OpOr, OpReturn), 7},
		{"not", Asm(OpPush, 0, OpNot, OpReturn), ^uint64(0)},
		{"dup", Asm(OpPush, 4, OpDup, OpAdd, OpReturn), 8},
		// After PUSH 10, PUSH 3: stack [10, 3]. SWAP -> [3, 10].
		// SUB pops b=10, a=3 and computes a-b = 3-10, wrapping.
		{"swap", Asm(OpPush, 10, OpPush, 3, OpSwap, OpSub, OpReturn), ^uint64(0) - 6}, // 3-10 wraps
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, _ := exec(t, tc.code, CallContext{})
			if res.Return != tc.want {
				t.Fatalf("Return = %d, want %d", res.Return, tc.want)
			}
		})
	}
}

func TestVMJumpLoop(t *testing.T) {
	// Sum 1..5 with a loop:
	//   counter in slot-free stack form is fiddly; use storage slot 0 as
	//   accumulator and slot 1 as counter.
	code := Asm(
		// slot1 = 5
		OpPush, 1, OpPush, 5, OpSwap, OpSStore, // SStore pops val,slot: stack [1,5] -> swap -> [5,1]? verify below
		// loop: if slot1 == 0 -> exit
		// pc of loop start:
	)
	_ = code
	// The operand order of SStore (pops value then slot) is what this
	// test pins down, using a straight-line program instead of a loop.
	straight := Asm(
		OpPush, 7, // slot
		OpPush, 42, // value
		OpSStore, // storage[7] = 42
		OpPush, 7,
		OpSLoad,
		OpReturn,
	)
	res, state := exec(t, straight, CallContext{Contract: keys.Deterministic("c").Address()})
	if res.Return != 42 {
		t.Fatalf("SSTORE/SLOAD round trip = %d, want 42", res.Return)
	}
	if state.GetStorage(keys.Deterministic("c").Address(), 7) != 42 {
		t.Fatal("storage not persisted to state")
	}
}

func TestVMConditionalJump(t *testing.T) {
	// if calldata[0] != 0 return 100 else return 200
	// Layout: [0] PUSH 0 [9] CALLDATA [10] PUSH dst [19] JUMPI
	//         [20] PUSH 200 [29] RETURN [30:] PUSH 100 RETURN
	code := Asm(
		OpPush, 30, // jump destination (byte offset)
		OpPush, 0, OpCallData, // calldata word 0
		OpJumpI,
		OpPush, 200, OpReturn,
		OpPush, 100, OpReturn, // offset 30
	)
	// Check layout: OpPush(1+8)=9, OpPush(9)=18, OpCallData(1)=19, OpJumpI(1)=20.
	// So "true" branch target must be 20 + PUSH(9) + RETURN(1) = 30. ✓
	data := make([]byte, 8)
	res, _ := exec(t, code, CallContext{Data: data})
	if res.Return != 200 {
		t.Fatalf("false branch = %d, want 200", res.Return)
	}
	data[7] = 1
	res, _ = exec(t, code, CallContext{Data: data})
	if res.Return != 100 {
		t.Fatalf("true branch = %d, want 100", res.Return)
	}
}

func TestVMCallerAndValue(t *testing.T) {
	alice := keys.Deterministic("alice").Address()
	code := Asm(OpCaller, OpReturn)
	res, _ := exec(t, code, CallContext{Caller: alice})
	if res.Return != AddrWord(alice) {
		t.Fatal("OpCaller returned wrong word")
	}
	code = Asm(OpCallValue, OpReturn)
	res, _ = exec(t, code, CallContext{Value: 1234})
	if res.Return != 1234 {
		t.Fatal("OpCallValue wrong")
	}
}

func TestVMBalanceOps(t *testing.T) {
	alice := keys.Deterministic("alice")
	contract := keys.Deterministic("contract").Address()
	state := NewState()
	state.AddBalance(alice.Address(), 500)
	state.AddBalance(contract, 70)
	res, err := Execute(state, Asm(OpSelfBalance, OpReturn), CallContext{
		Contract: contract, GasLimit: 1000,
	})
	if err != nil || res.Return != 70 {
		t.Fatalf("SelfBalance = %d (%v)", res.Return, err)
	}
	res, err = Execute(state, Asm(OpCaller, OpBalance, OpReturn), CallContext{
		Contract: contract, Caller: alice.Address(), GasLimit: 1000,
	})
	if err != nil || res.Return != 500 {
		t.Fatalf("Balance(caller) = %d (%v)", res.Return, err)
	}
	// Unknown address word resolves to 0.
	res, err = Execute(state, Asm(OpPush, 12345, OpBalance, OpReturn), CallContext{
		Contract: contract, GasLimit: 1000,
	})
	if err != nil || res.Return != 0 {
		t.Fatalf("Balance(unknown) = %d (%v)", res.Return, err)
	}
}

func TestVMLogs(t *testing.T) {
	code := Asm(OpPush, 11, OpLog, OpPush, 22, OpLog, OpStop)
	res, _ := exec(t, code, CallContext{})
	if len(res.Logs) != 2 || res.Logs[0] != 11 || res.Logs[1] != 22 {
		t.Fatalf("logs = %v", res.Logs)
	}
}

func TestVMCallDataSizeAndOutOfRange(t *testing.T) {
	code := Asm(OpCallDataSize, OpReturn)
	res, _ := exec(t, code, CallContext{Data: make([]byte, 24)})
	if res.Return != 24 {
		t.Fatalf("CallDataSize = %d", res.Return)
	}
	// Reading word 5 of 24 bytes (3 words) yields 0.
	code = Asm(OpPush, 5, OpCallData, OpReturn)
	res, _ = exec(t, code, CallContext{Data: make([]byte, 24)})
	if res.Return != 0 {
		t.Fatal("out-of-range calldata should read 0")
	}
}

func TestVMErrors(t *testing.T) {
	state := NewState()
	run := func(code []byte, gas uint64) error {
		_, err := Execute(state, code, CallContext{GasLimit: gas})
		return err
	}
	if err := run(Asm(OpRevert), 1000); !errors.Is(err, ErrRevert) {
		t.Fatalf("revert err = %v", err)
	}
	if err := run(Asm(OpAdd), 1000); !errors.Is(err, ErrStack) {
		t.Fatalf("underflow err = %v", err)
	}
	if err := run(Asm(OpPush, 99999, OpJump), 1000); !errors.Is(err, ErrBadJump) {
		t.Fatalf("bad jump err = %v", err)
	}
	if err := run([]byte{0xFE}, 1000); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("bad opcode err = %v", err)
	}
	if err := run([]byte{OpPush, 0x01}, 1000); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated err = %v", err)
	}
	// Out of gas: SSTORE costs 5000.
	err := run(Asm(OpPush, 1, OpPush, 1, OpSStore), 100)
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("oog err = %v", err)
	}
}

func TestVMGasAccounting(t *testing.T) {
	state := NewState()
	code := Asm(OpPush, 1, OpPush, 2, OpAdd, OpReturn) // 3+3+3+0 = 9 gas
	res, err := Execute(state, code, CallContext{GasLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.GasUsed != 9 {
		t.Fatalf("GasUsed = %d, want 9", res.GasUsed)
	}
	// Exactly enough gas succeeds; one less fails.
	if _, err := Execute(state, code, CallContext{GasLimit: 9}); err != nil {
		t.Fatalf("exact gas should succeed: %v", err)
	}
	if _, err := Execute(state, code, CallContext{GasLimit: 8}); !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("8 gas should fail: %v", err)
	}
}

func TestVMInfiniteLoopHaltsOnGas(t *testing.T) {
	state := NewState()
	// 0: PUSH 0; 9: JUMP -> pc 0 forever.
	code := Asm(OpPush, 0, OpJump)
	_, err := Execute(state, code, CallContext{GasLimit: 10_000})
	if !errors.Is(err, ErrOutOfGas) {
		t.Fatalf("infinite loop must exhaust gas, got %v", err)
	}
}

func TestVMStackOverflow(t *testing.T) {
	state := NewState()
	// DUP forever after one push: overflow at maxStack.
	code := Asm(OpPush, 1)
	for i := 0; i < maxStack+8; i++ {
		code = append(code, OpDup)
	}
	_, err := Execute(state, code, CallContext{GasLimit: 1 << 20})
	if !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("err = %v", err)
	}
}

func TestAsmPanicsOnBadOperand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Asm should panic on unsupported operand type")
		}
	}()
	Asm("not a byte")
}

func BenchmarkVMCounterContract(b *testing.B) {
	state := NewState()
	contract := keys.Deterministic("bench-contract").Address()
	// storage[0] += 1
	code := Asm(OpPush, 0, OpPush, 0, OpSLoad, OpPush, 1, OpAdd, OpSStore, OpStop)
	ctx := CallContext{Contract: contract, GasLimit: 100_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(state, code, ctx); err != nil {
			b.Fatal(err)
		}
	}
}
