// Package account implements an Ethereum-style ledger (paper §II-A,
// reference implementation #2): a transaction-based state machine whose
// world state — balances, nonces, contract code and storage — lives in a
// Merkle state trie committed to by every block header. Blocks are sized
// in gas, not bytes ("a dynamic block size not measured in bytes but
// rather in gas", §VI-A), contracts run in a small gas-metered VM, and
// historical state roots share structure in the persistent trie, which is
// exactly what makes §V-A's state-delta pruning and fast sync work.
package account

import (
	"encoding/binary"

	"repro/internal/hashx"
	"repro/internal/keys"
	"repro/internal/trie"
)

// Account is one entry in the world state.
type Account struct {
	Nonce   uint64
	Balance uint64
	Code    []byte
}

// IsContract reports whether the account carries code.
func (a Account) IsContract() bool { return len(a.Code) > 0 }

// appendEncode serializes an account for trie storage into buf. Hot
// callers pass a stack scratch; the trie copies what it stores.
func (a Account) appendEncode(buf []byte) []byte {
	var fixed [16]byte
	binary.BigEndian.PutUint64(fixed[0:], a.Nonce)
	binary.BigEndian.PutUint64(fixed[8:], a.Balance)
	buf = append(buf, fixed[:]...)
	return append(buf, a.Code...)
}

func decodeAccount(raw []byte) Account {
	if len(raw) < 16 {
		return Account{}
	}
	a := Account{
		Nonce:   binary.BigEndian.Uint64(raw[0:]),
		Balance: binary.BigEndian.Uint64(raw[8:]),
	}
	if len(raw) > 16 {
		a.Code = append([]byte{}, raw[16:]...)
	}
	return a
}

// Trie key prefixes: accounts and contract storage share one state trie,
// which keeps "the Merkle state tree" (§V-A) a single root per block.
const (
	accountPrefix = 0x0A
	storagePrefix = 0x0B
)

// Key buffers live on the caller's stack: the trie never retains the
// key slice (it expands keys to nibbles), so per-access heap keys were
// pure allocator churn on the state's hottest paths.

type accountKeyBuf [1 + keys.AddressSize]byte

func accountKey(buf *accountKeyBuf, addr keys.Address) []byte {
	buf[0] = accountPrefix
	copy(buf[1:], addr[:])
	return buf[:]
}

type storageKeyBuf [1 + keys.AddressSize + 8]byte

func storageKey(buf *storageKeyBuf, addr keys.Address, slot uint64) []byte {
	buf[0] = storagePrefix
	copy(buf[1:], addr[:])
	binary.BigEndian.PutUint64(buf[1+keys.AddressSize:], slot)
	return buf[:]
}

// State is a mutable view over the persistent state trie. Mutations
// replace the underlying immutable trie, so snapshots (Copy) are O(1) and
// historical roots remain readable — the property §V-A's pruning and fast
// sync discussions rely on.
type State struct {
	t *trie.Trie
}

// NewState returns an empty world state. The trie lineage is arena-
// backed: every snapshot and checkpoint derived from it carves nodes
// from shared slabs, which cuts the per-transaction allocation count by
// an order of magnitude. Ledgers mutate state single-threaded (Copy
// checkpoints included), which is what the shared arena requires.
func NewState() *State { return &State{t: trie.EmptyArena()} }

// StateAt wraps an existing trie snapshot.
func StateAt(t *trie.Trie) *State { return &State{t: t} }

// Copy returns an independent state sharing all structure (O(1)).
func (s *State) Copy() *State { return &State{t: s.t} }

// Trie returns the current underlying snapshot.
func (s *State) Trie() *trie.Trie { return s.t }

// Root returns the state root committed into block headers.
func (s *State) Root() hashx.Hash { return s.t.Root() }

// GetAccount fetches an account; missing accounts read as zero.
func (s *State) GetAccount(addr keys.Address) Account {
	var kb accountKeyBuf
	raw, ok := s.t.Get(accountKey(&kb, addr))
	if !ok {
		return Account{}
	}
	return decodeAccount(raw)
}

// SetAccount stores an account. Zero-valued accounts without code are
// deleted, keeping the trie canonical.
func (s *State) SetAccount(addr keys.Address, a Account) {
	var kb accountKeyBuf
	if a.Nonce == 0 && a.Balance == 0 && len(a.Code) == 0 {
		s.t = s.t.Delete(accountKey(&kb, addr))
		return
	}
	var vb [64]byte
	s.t = s.t.Put(accountKey(&kb, addr), a.appendEncode(vb[:0]))
}

// Balance returns an address's balance.
func (s *State) Balance(addr keys.Address) uint64 { return s.GetAccount(addr).Balance }

// Nonce returns an address's next expected transaction nonce.
func (s *State) Nonce(addr keys.Address) uint64 { return s.GetAccount(addr).Nonce }

// AddBalance credits an account.
func (s *State) AddBalance(addr keys.Address, amount uint64) {
	a := s.GetAccount(addr)
	a.Balance += amount
	s.SetAccount(addr, a)
}

// SubBalance debits an account; the caller must have checked funds.
func (s *State) SubBalance(addr keys.Address, amount uint64) {
	a := s.GetAccount(addr)
	a.Balance -= amount
	s.SetAccount(addr, a)
}

// BumpNonce increments an account's nonce.
func (s *State) BumpNonce(addr keys.Address) {
	a := s.GetAccount(addr)
	a.Nonce++
	s.SetAccount(addr, a)
}

// GetStorage reads a contract storage slot (zero when unset).
func (s *State) GetStorage(addr keys.Address, slot uint64) uint64 {
	var kb storageKeyBuf
	raw, ok := s.t.Get(storageKey(&kb, addr, slot))
	if !ok || len(raw) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(raw)
}

// SetStorage writes a contract storage slot; zero deletes the entry.
func (s *State) SetStorage(addr keys.Address, slot, value uint64) {
	var kb storageKeyBuf
	key := storageKey(&kb, addr, slot)
	if value == 0 {
		s.t = s.t.Delete(key)
		return
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], value)
	s.t = s.t.Put(key, buf[:])
}

// ContractAddress derives the address of a contract created by sender at
// the given nonce, Ethereum's CREATE rule adapted to our hash.
func ContractAddress(sender keys.Address, nonce uint64) keys.Address {
	var buf [keys.AddressSize + 8]byte
	copy(buf[:], sender[:])
	binary.BigEndian.PutUint64(buf[keys.AddressSize:], nonce)
	digest := hashx.Concat([]byte("create/"), buf[:])
	var out keys.Address
	copy(out[:], digest[:keys.AddressSize])
	return out
}
