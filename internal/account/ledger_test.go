package account

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
	"repro/internal/keys"
)

func testParams() Params {
	p := DefaultParams()
	p.InitialGasLimit = 1_000_000
	p.TargetGasLimit = 1_000_000
	p.InitialDifficulty = 1
	return p
}

func newTestLedger(t *testing.T, r *keys.Ring, funded int, balance uint64) *Ledger {
	t.Helper()
	alloc := make(map[keys.Address]uint64, funded)
	for i := 0; i < funded; i++ {
		alloc[r.Addr(i)] = balance
	}
	l, err := NewLedger(alloc, testParams())
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	return l
}

// payTx builds and signs a simple transfer.
func payTx(from *keys.KeyPair, nonce uint64, to keys.Address, value, gasPrice uint64) *Tx {
	tx := &Tx{Nonce: nonce, To: &to, Value: value, GasLimit: GasTxBase, GasPrice: gasPrice}
	tx.Sign(from)
	return tx
}

func TestStateAccountRoundTrip(t *testing.T) {
	s := NewState()
	addr := keys.Deterministic("a").Address()
	if got := s.GetAccount(addr); got.Nonce != 0 || got.Balance != 0 {
		t.Fatal("missing account should read zero")
	}
	s.SetAccount(addr, Account{Nonce: 3, Balance: 100, Code: []byte{OpStop}})
	got := s.GetAccount(addr)
	if got.Nonce != 3 || got.Balance != 100 || len(got.Code) != 1 {
		t.Fatalf("round trip = %+v", got)
	}
	if !got.IsContract() {
		t.Fatal("account with code should be a contract")
	}
	// Zeroing deletes the entry and restores the empty root.
	empty := NewState()
	s2 := NewState()
	s2.SetAccount(addr, Account{Balance: 5})
	s2.SetAccount(addr, Account{})
	if s2.Root() != empty.Root() {
		t.Fatal("zero account should be deleted from the trie")
	}
}

func TestStateStorageRoundTrip(t *testing.T) {
	s := NewState()
	addr := keys.Deterministic("c").Address()
	s.SetStorage(addr, 1, 42)
	if s.GetStorage(addr, 1) != 42 {
		t.Fatal("storage round trip failed")
	}
	if s.GetStorage(addr, 2) != 0 {
		t.Fatal("unset slot should read 0")
	}
	root := s.Root()
	s.SetStorage(addr, 1, 0) // delete
	s.SetStorage(addr, 1, 42)
	if s.Root() != root {
		t.Fatal("delete+rewrite should restore the same root")
	}
}

func TestStateCopyIsolation(t *testing.T) {
	s := NewState()
	addr := keys.Deterministic("a").Address()
	s.AddBalance(addr, 10)
	snap := s.Copy()
	s.AddBalance(addr, 5)
	if snap.Balance(addr) != 10 {
		t.Fatal("copy must not observe later writes")
	}
	if s.Balance(addr) != 15 {
		t.Fatal("original lost a write")
	}
}

func TestContractAddressDeterministic(t *testing.T) {
	a := keys.Deterministic("a").Address()
	if ContractAddress(a, 0) != ContractAddress(a, 0) {
		t.Fatal("not deterministic")
	}
	if ContractAddress(a, 0) == ContractAddress(a, 1) {
		t.Fatal("nonce must vary the address")
	}
	b := keys.Deterministic("b").Address()
	if ContractAddress(a, 0) == ContractAddress(b, 0) {
		t.Fatal("sender must vary the address")
	}
}

func TestApplyTxTransfer(t *testing.T) {
	r := keys.NewRing("apply", 3)
	s := NewState()
	s.AddBalance(r.Addr(0), 1_000_000)
	coinbase := r.Addr(2)
	tx := payTx(r.Pair(0), 0, r.Addr(1), 500, 2)
	rec, err := ApplyTx(s, tx, coinbase)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != 1 || rec.GasUsed != GasTxBase {
		t.Fatalf("receipt = %+v", rec)
	}
	if s.Balance(r.Addr(1)) != 500 {
		t.Fatal("recipient not credited")
	}
	wantSender := 1_000_000 - 500 - GasTxBase*2
	if s.Balance(r.Addr(0)) != uint64(wantSender) {
		t.Fatalf("sender = %d, want %d", s.Balance(r.Addr(0)), wantSender)
	}
	if s.Balance(coinbase) != GasTxBase*2 {
		t.Fatalf("coinbase = %d", s.Balance(coinbase))
	}
	if s.Nonce(r.Addr(0)) != 1 {
		t.Fatal("nonce not bumped")
	}
}

func TestApplyTxValidationErrors(t *testing.T) {
	r := keys.NewRing("apply2", 3)
	s := NewState()
	s.AddBalance(r.Addr(0), 100_000)

	t.Run("bad nonce", func(t *testing.T) {
		tx := payTx(r.Pair(0), 5, r.Addr(1), 1, 1)
		if _, err := ApplyTx(s, tx, r.Addr(2)); !errors.Is(err, ErrBadNonce) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad signature", func(t *testing.T) {
		tx := payTx(r.Pair(0), 0, r.Addr(1), 1, 1)
		tx.Sig[0] ^= 0xFF
		if _, err := ApplyTx(s, tx, r.Addr(2)); !errors.Is(err, ErrBadSig) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("forged from", func(t *testing.T) {
		tx := payTx(r.Pair(0), 0, r.Addr(1), 1, 1)
		tx.From = r.Addr(1) // no longer matches pubkey
		if _, err := ApplyTx(s, tx, r.Addr(2)); !errors.Is(err, ErrBadSig) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("insufficient", func(t *testing.T) {
		tx := payTx(r.Pair(0), 0, r.Addr(1), 1_000_000_000, 1)
		if _, err := ApplyTx(s, tx, r.Addr(2)); !errors.Is(err, ErrInsufficient) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("gas below intrinsic", func(t *testing.T) {
		to := r.Addr(1)
		tx := &Tx{Nonce: 0, To: &to, Value: 1, GasLimit: 100, GasPrice: 1}
		tx.Sign(r.Pair(0))
		if _, err := ApplyTx(s, tx, r.Addr(2)); !errors.Is(err, ErrGasTooLow) {
			t.Fatalf("err = %v", err)
		}
	})
	// None of the failures may touch state.
	if s.Balance(r.Addr(0)) != 100_000 || s.Nonce(r.Addr(0)) != 0 {
		t.Fatal("failed txs must leave state untouched")
	}
}

func TestApplyTxContractLifecycle(t *testing.T) {
	r := keys.NewRing("contract", 3)
	s := NewState()
	s.AddBalance(r.Addr(0), 100_000_000)
	coinbase := r.Addr(2)

	// Deploy a counter: storage[0] += calldata word 0.
	code := Asm(
		OpPush, 0, // slot (for final SStore)
		OpPush, 0, OpSLoad, // current value
		OpPush, 0, OpCallData, // increment
		OpAdd,
		OpSStore,
		OpStop,
	)
	deploy := &Tx{Nonce: 0, To: nil, Data: code, GasLimit: 200_000, GasPrice: 1}
	deploy.Sign(r.Pair(0))
	rec, err := ApplyTx(s, deploy, coinbase)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != 1 || rec.Contract.IsZero() {
		t.Fatalf("deploy receipt = %+v", rec)
	}
	contractAddr := rec.Contract
	if !s.GetAccount(contractAddr).IsContract() {
		t.Fatal("contract code not stored")
	}
	wantGas := deploy.IntrinsicGas() + uint64(len(code))*GasCreateByte
	if rec.GasUsed != wantGas {
		t.Fatalf("deploy gas = %d, want %d", rec.GasUsed, wantGas)
	}

	// Call it with increment 7, twice.
	for i, want := range []uint64{7, 14} {
		call := &Tx{Nonce: uint64(1 + i), To: &contractAddr, Data: Asm(7), GasLimit: 100_000, GasPrice: 1}
		call.Sign(r.Pair(0))
		rec, err := ApplyTx(s, call, coinbase)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Status != 1 {
			t.Fatalf("call %d failed", i)
		}
		if got := s.GetStorage(contractAddr, 0); got != want {
			t.Fatalf("counter = %d, want %d", got, want)
		}
	}
}

func TestApplyTxRevertRollsBackButCharges(t *testing.T) {
	r := keys.NewRing("revert", 3)
	s := NewState()
	s.AddBalance(r.Addr(0), 10_000_000)
	coinbase := r.Addr(2)

	// Contract writes storage then reverts.
	code := Asm(OpPush, 1, OpPush, 99, OpSStore, OpRevert)
	deploy := &Tx{Nonce: 0, Data: code, GasLimit: 200_000, GasPrice: 1}
	deploy.Sign(r.Pair(0))
	rec, err := ApplyTx(s, deploy, coinbase)
	if err != nil {
		t.Fatal(err)
	}
	addr := rec.Contract

	call := &Tx{Nonce: 1, To: &addr, Value: 500, GasLimit: 100_000, GasPrice: 1}
	call.Sign(r.Pair(0))
	before := s.Balance(r.Addr(0))
	rec, err = ApplyTx(s, call, coinbase)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != 0 {
		t.Fatal("reverted call should report status 0")
	}
	if s.GetStorage(addr, 1) != 0 {
		t.Fatal("reverted SSTORE persisted")
	}
	if got := s.GetAccount(addr).Balance; got != 0 {
		t.Fatalf("reverted value transfer persisted: %d", got)
	}
	// Sender paid gas but kept the value; nonce advanced.
	paid := before - s.Balance(r.Addr(0))
	if paid != rec.GasUsed*1 {
		t.Fatalf("sender paid %d, want gas only %d", paid, rec.GasUsed)
	}
	if s.Nonce(r.Addr(0)) != 2 {
		t.Fatal("nonce must advance on reverted execution")
	}
}

func TestApplyTxOutOfGasConsumesLimit(t *testing.T) {
	r := keys.NewRing("oog", 3)
	s := NewState()
	s.AddBalance(r.Addr(0), 10_000_000)
	code := Asm(OpPush, 0, OpJump) // infinite loop
	deploy := &Tx{Nonce: 0, Data: code, GasLimit: 100_000, GasPrice: 1}
	deploy.Sign(r.Pair(0))
	rec, _ := ApplyTx(s, deploy, r.Addr(2))
	addr := rec.Contract

	call := &Tx{Nonce: 1, To: &addr, GasLimit: 50_000, GasPrice: 2}
	call.Sign(r.Pair(0))
	before := s.Balance(r.Addr(0))
	rec, err := ApplyTx(s, call, r.Addr(2))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != 0 || rec.GasUsed != 50_000 {
		t.Fatalf("OOG receipt = %+v", rec)
	}
	if before-s.Balance(r.Addr(0)) != 100_000 { // 50k gas at price 2
		t.Fatal("OOG must charge the full gas limit")
	}
}

// Property: ApplyTx conserves total balance (gas fees move, nothing mints).
func TestQuickSupplyConservation(t *testing.T) {
	r := keys.NewRing("supply", 6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState()
		var supply uint64
		for i := 0; i < 4; i++ {
			s.AddBalance(r.Addr(i), 1_000_000)
			supply += 1_000_000
		}
		coinbase := r.Addr(5)
		for i := 0; i < 10; i++ {
			from := rng.Intn(4)
			to := r.Addr(rng.Intn(5))
			tx := payTx(r.Pair(from), s.Nonce(r.Addr(from)), to,
				uint64(rng.Intn(1000)), uint64(rng.Intn(3)))
			if _, err := ApplyTx(s, tx, coinbase); err != nil {
				continue // e.g. insufficient; state must be unchanged
			}
		}
		var total uint64
		for i := 0; i < 6; i++ {
			total += s.Balance(r.Addr(i))
		}
		return total == supply
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReceiptsRootSensitivity(t *testing.T) {
	r1 := &Receipt{Status: 1, GasUsed: 100}
	r2 := &Receipt{Status: 1, GasUsed: 200}
	a := ReceiptsRoot([]*Receipt{r1, r2})
	r2.Status = 0
	b := ReceiptsRoot([]*Receipt{r1, r2})
	if a == b {
		t.Fatal("receipt change did not change root")
	}
}

func TestMempoolNonceRuns(t *testing.T) {
	r := keys.NewRing("pool", 3)
	s := NewState()
	s.AddBalance(r.Addr(0), 100_000_000)
	s.AddBalance(r.Addr(1), 100_000_000)
	m := NewMempool()

	// Sender 0: nonces 0,1,2 at low gas price. Sender 1: nonce 0 high.
	for n := uint64(0); n < 3; n++ {
		if err := m.Add(payTx(r.Pair(0), n, r.Addr(2), 1, 1), s); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Add(payTx(r.Pair(1), 0, r.Addr(2), 1, 50), s); err != nil {
		t.Fatal(err)
	}
	cands := m.Candidates(s)
	if len(cands) != 4 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if cands[0].From != r.Addr(1) {
		t.Fatal("highest gas price sender must come first")
	}
	// Sender 0's run must be nonce ordered.
	if cands[1].Nonce != 0 || cands[2].Nonce != 1 || cands[3].Nonce != 2 {
		t.Fatal("nonce run out of order")
	}
}

func TestMempoolGapsExcluded(t *testing.T) {
	r := keys.NewRing("gap", 2)
	s := NewState()
	s.AddBalance(r.Addr(0), 100_000_000)
	m := NewMempool()
	// Nonce 0 and 2 pooled; 2 is unexecutable until 1 arrives.
	m.Add(payTx(r.Pair(0), 0, r.Addr(1), 1, 1), s)
	m.Add(payTx(r.Pair(0), 2, r.Addr(1), 1, 1), s)
	if got := len(m.Candidates(s)); got != 1 {
		t.Fatalf("candidates with gap = %d, want 1", got)
	}
	m.Add(payTx(r.Pair(0), 1, r.Addr(1), 1, 1), s)
	if got := len(m.Candidates(s)); got != 3 {
		t.Fatalf("candidates after fill = %d, want 3", got)
	}
}

func TestMempoolReplacement(t *testing.T) {
	r := keys.NewRing("repl", 2)
	s := NewState()
	s.AddBalance(r.Addr(0), 100_000_000)
	m := NewMempool()
	low := payTx(r.Pair(0), 0, r.Addr(1), 1, 1)
	if err := m.Add(low, s); err != nil {
		t.Fatal(err)
	}
	same := payTx(r.Pair(0), 0, r.Addr(1), 2, 1)
	if err := m.Add(same, s); err == nil {
		t.Fatal("equal gas price replacement accepted")
	}
	high := payTx(r.Pair(0), 0, r.Addr(1), 2, 5)
	if err := m.Add(high, s); err != nil {
		t.Fatal(err)
	}
	if m.Contains(low.ID()) || !m.Contains(high.ID()) || m.Len() != 1 {
		t.Fatal("replacement bookkeeping wrong")
	}
}

func TestMempoolRejects(t *testing.T) {
	r := keys.NewRing("rej", 2)
	s := NewState()
	s.AddBalance(r.Addr(0), 100)
	m := NewMempool()
	// Past nonce.
	s.BumpNonce(r.Addr(0))
	if err := m.Add(payTx(r.Pair(0), 0, r.Addr(1), 1, 0), s); !errors.Is(err, ErrBadNonce) {
		t.Fatalf("err = %v", err)
	}
	// Unaffordable.
	if err := m.Add(payTx(r.Pair(0), 1, r.Addr(1), 1, 10), s); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
}

func TestLedgerBuildAndProcess(t *testing.T) {
	r := keys.NewRing("ledger", 4)
	l := newTestLedger(t, r, 2, 10_000_000)
	proposer := r.Addr(3)

	tx := payTx(r.Pair(0), 0, r.Addr(2), 777, 1)
	if err := l.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	b := l.BuildBlock(proposer, 15*time.Second)
	if b.TxCount() != 1 {
		t.Fatalf("block tx count = %d", b.TxCount())
	}
	res, err := l.ProcessBlock(b)
	if err != nil || res.Status != chain.Accepted {
		t.Fatalf("ProcessBlock: %v %v", res.Status, err)
	}
	if l.Balance(r.Addr(2)) != 777 {
		t.Fatal("transfer not applied")
	}
	if l.Confirmations(tx.ID()) != 1 {
		t.Fatal("confirmation index wrong")
	}
	if l.Pool().Len() != 0 {
		t.Fatal("mined tx still pooled")
	}
	// A second node replays the block and reaches the same state root.
	alloc := map[keys.Address]uint64{r.Addr(0): 10_000_000, r.Addr(1): 10_000_000}
	replica, err := NewLedger(alloc, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if replica.Genesis().Hash() != l.Genesis().Hash() {
		t.Fatal("replicas disagree on genesis")
	}
	res, err = replica.ProcessBlock(b)
	if err != nil || res.Status != chain.Accepted {
		t.Fatalf("replica ProcessBlock: %v %v", res.Status, err)
	}
	if replica.State().Root() != l.State().Root() {
		t.Fatal("replica state root diverged")
	}
}

func TestLedgerRejectsTamperedBlocks(t *testing.T) {
	r := keys.NewRing("tamper", 3)
	l := newTestLedger(t, r, 1, 10_000_000)
	tx := payTx(r.Pair(0), 0, r.Addr(1), 100, 1)
	l.SubmitTx(tx)
	good := l.BuildBlock(r.Addr(2), 15*time.Second)

	t.Run("wrong state root", func(t *testing.T) {
		bad := *good
		bad.Header.StateRoot = hashHashOf("forged")
		if res, _ := l.ProcessBlock(&bad); res.Status != chain.Rejected {
			t.Fatalf("status = %v", res.Status)
		}
	})
	t.Run("tampered gas used", func(t *testing.T) {
		body := *good.Payload.(*BlockBody)
		body.GasUsed += 5
		bad := &chain.Block{Header: good.Header, Payload: &body}
		bad.Header.TxRoot = body.Root()
		if res, _ := l.ProcessBlock(bad); res.Status != chain.Rejected {
			t.Fatalf("status = %v", res.Status)
		}
	})
	t.Run("wrong gas limit", func(t *testing.T) {
		body := *good.Payload.(*BlockBody)
		body.GasLimit *= 2
		bad := &chain.Block{Header: good.Header, Payload: &body}
		bad.Header.TxRoot = body.Root()
		if res, _ := l.ProcessBlock(bad); res.Status != chain.Rejected {
			t.Fatalf("status = %v", res.Status)
		}
	})
	// The untampered block still applies.
	if res, err := l.ProcessBlock(good); err != nil || res.Status != chain.Accepted {
		t.Fatalf("good block rejected: %v %v", res.Status, err)
	}
}

// hashHashOf is a test helper for arbitrary roots.
func hashHashOf(s string) (h [32]byte) {
	copy(h[:], s)
	return h
}

func TestLedgerReorgSwitchesState(t *testing.T) {
	r := keys.NewRing("reorg", 4)
	l := newTestLedger(t, r, 2, 10_000_000)

	// Branch A: one block paying addr2.
	txA := payTx(r.Pair(0), 0, r.Addr(2), 111, 1)
	l.SubmitTx(txA)
	a1 := l.BuildBlock(r.Addr(3), 15*time.Second)
	if _, err := l.ProcessBlock(a1); err != nil {
		t.Fatal(err)
	}
	if l.Balance(r.Addr(2)) != 111 {
		t.Fatal("branch A not applied")
	}

	// Branch B (built on a replica): two heavier blocks paying addr2 more.
	alloc := map[keys.Address]uint64{r.Addr(0): 10_000_000, r.Addr(1): 10_000_000}
	replica, err := NewLedger(alloc, testParams())
	if err != nil {
		t.Fatal(err)
	}
	txB := payTx(r.Pair(0), 0, r.Addr(2), 222, 1)
	replica.SubmitTx(txB)
	b1 := replica.BuildBlock(r.Addr(3), 16*time.Second)
	if _, err := replica.ProcessBlock(b1); err != nil {
		t.Fatal(err)
	}
	b2 := replica.BuildBlock(r.Addr(3), 31*time.Second)
	if _, err := replica.ProcessBlock(b2); err != nil {
		t.Fatal(err)
	}

	if res, err := l.ProcessBlock(b1); err != nil || res.Status != chain.AcceptedSide {
		t.Fatalf("b1: %v %v", res.Status, err)
	}
	res, err := l.ProcessBlock(b2)
	if err != nil || res.Status != chain.AcceptedReorg {
		t.Fatalf("b2: %v %v", res.Status, err)
	}
	// State is now branch B's.
	if l.Balance(r.Addr(2)) != 222 {
		t.Fatalf("post-reorg balance = %d, want 222", l.Balance(r.Addr(2)))
	}
	if l.Confirmations(txA.ID()) != 0 {
		t.Fatal("orphaned tx still confirmed")
	}
	if l.Confirmations(txB.ID()) != 2 {
		t.Fatalf("adopted tx confirmations = %d, want 2", l.Confirmations(txB.ID()))
	}
}

func TestLedgerGasLimitDrift(t *testing.T) {
	p := testParams()
	p.InitialGasLimit = 1_000_000
	p.TargetGasLimit = 2_000_000
	r := keys.NewRing("drift", 2)
	l, err := NewLedger(map[keys.Address]uint64{r.Addr(0): 1000}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Each block moves the limit at most parent/1024 toward the target.
	limit := p.InitialGasLimit
	for i := 0; i < 5; i++ {
		b := l.BuildBlock(r.Addr(1), time.Duration(i+1)*15*time.Second)
		body := b.Payload.(*BlockBody)
		wantMax := limit + limit/1024
		if body.GasLimit != wantMax {
			t.Fatalf("block %d gas limit = %d, want %d", i, body.GasLimit, wantMax)
		}
		limit = body.GasLimit
		if _, err := l.ProcessBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	// Overshoot clamps to target.
	if l.NextGasLimit(p.TargetGasLimit-1) != p.TargetGasLimit {
		t.Fatal("approach must clamp at target")
	}
	if l.NextGasLimit(p.TargetGasLimit+5) != p.TargetGasLimit {
		t.Fatal("descent must clamp at target")
	}
}

func TestLedgerGasCapsBlockContents(t *testing.T) {
	p := testParams()
	p.InitialGasLimit = GasTxBase * 3 // room for 3 plain transfers
	p.TargetGasLimit = p.InitialGasLimit
	r := keys.NewRing("cap", 3)
	l, err := NewLedger(map[keys.Address]uint64{r.Addr(0): 100_000_000}, p)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(0); n < 10; n++ {
		if err := l.SubmitTx(payTx(r.Pair(0), n, r.Addr(1), 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	b := l.BuildBlock(r.Addr(2), 15*time.Second)
	if b.TxCount() != 3 {
		t.Fatalf("gas-capped block carries %d txs, want 3", b.TxCount())
	}
}

func TestLedgerStatePruning(t *testing.T) {
	r := keys.NewRing("prune", 3)
	l := newTestLedger(t, r, 1, 100_000_000)
	for i := 0; i < 10; i++ {
		l.SubmitTx(payTx(r.Pair(0), uint64(i), r.Addr(1), 10, 1))
		b := l.BuildBlock(r.Addr(2), time.Duration(i+1)*15*time.Second)
		if _, err := l.ProcessBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	archive := l.ArchiveBytes()
	tipOnly := l.StateBytes()
	if archive.Bytes <= tipOnly.Bytes {
		t.Fatal("archive must cost more than the tip state")
	}
	dropped := l.PruneStatesBelow(2)
	if dropped == 0 {
		t.Fatal("pruning dropped nothing")
	}
	// Tip state must survive pruning.
	if l.State().Balance(r.Addr(1)) != 100 {
		t.Fatal("tip state lost by pruning")
	}
	// Deep historical states are gone.
	old, _ := l.Store().HashAtHeight(1)
	if l.StateOf(old) != nil {
		t.Fatal("pruned state still accessible")
	}
	// Delta accounting exists for recent blocks.
	if _, ok := l.DeltaOf(l.Store().Tip()); !ok {
		t.Fatal("missing delta for tip")
	}
}

func BenchmarkApplyTxTransfer(b *testing.B) {
	r := keys.NewRing("bench", 3)
	s := NewState()
	s.AddBalance(r.Addr(0), 1<<60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := payTx(r.Pair(0), uint64(i), r.Addr(1), 1, 1)
		if _, err := ApplyTx(s, tx, r.Addr(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildBlock100Txs(b *testing.B) {
	r := keys.NewRing("bench2", 3)
	p := testParams()
	p.InitialGasLimit = 100 * GasTxBase
	p.TargetGasLimit = p.InitialGasLimit
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l, err := NewLedger(map[keys.Address]uint64{r.Addr(0): 1 << 60}, p)
		if err != nil {
			b.Fatal(err)
		}
		for n := uint64(0); n < 100; n++ {
			if err := l.SubmitTx(payTx(r.Pair(0), n, r.Addr(1), 1, 1)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		blk := l.BuildBlock(r.Addr(2), 15*time.Second)
		if blk.TxCount() != 100 {
			b.Fatalf("tx count %d", blk.TxCount())
		}
	}
}

// Regression: orphan-pool blocks cascaded in by a late ancestor must
// update the tx index and mempool just like in-order delivery (the
// store-level adoption used to be invisible to the ledger layer).
func TestProcessBlockOutOfOrderAdoption(t *testing.T) {
	r := keys.NewRing("ooo", 4)
	src := newTestLedger(t, r, 2, 1_000_000)
	dst := newTestLedger(t, r, 2, 1_000_000)

	tx := payTx(r.Pair(0), 0, r.Addr(3), 500, 2)
	if err := src.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	if err := dst.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	proposer := r.Addr(2)
	var blocks []*chain.Block
	for i := 1; i <= 3; i++ {
		b := src.BuildBlock(proposer, time.Duration(i)*time.Second)
		if res, err := src.ProcessBlock(b); err != nil || res.Status != chain.Accepted {
			t.Fatalf("source block %d: %v %v", i, res.Status, err)
		}
		blocks = append(blocks, b)
	}
	for _, i := range []int{1, 2, 0} {
		if _, err := dst.ProcessBlock(blocks[i]); err != nil {
			t.Fatalf("out-of-order delivery: %v", err)
		}
	}
	if dst.Height() != 3 || dst.Store().Tip() != src.Store().Tip() {
		t.Fatalf("destination did not adopt the chain: height %d", dst.Height())
	}
	if got := dst.Confirmations(tx.ID()); got != 3 {
		t.Fatalf("confirmations after cascade = %d, want 3", got)
	}
	if got := dst.Balance(r.Addr(3)); got != 500 {
		t.Fatalf("recipient balance after cascade = %d, want 500", got)
	}
	if dst.Pool().Contains(tx.ID()) {
		t.Fatal("confirmed tx still pooled after cascade adoption")
	}
}
