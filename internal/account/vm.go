package account

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/keys"
)

// Opcodes of the gas-metered stack VM. Word size is uint64; contract
// storage maps uint64 slots to uint64 values. The instruction set is a
// deliberately small subset of the EVM's: enough to express the smart
// contracts the paper's scalability section builds on (payment channels,
// Plasma commitments, Casper deposits) without byte-level EVM fidelity.
const (
	OpStop byte = iota
	OpPush      // 8-byte big-endian immediate
	OpPop
	OpDup
	OpSwap
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLt
	OpGt
	OpEq
	OpIsZero
	OpAnd
	OpOr
	OpNot
	OpJump
	OpJumpI
	OpCaller
	OpCallValue
	OpBalance
	OpSelfBalance
	OpSLoad
	OpSStore
	OpCallDataSize
	OpCallData
	OpLog
	OpReturn
	OpRevert
	opMax // sentinel
)

// Gas costs per operation, shaped after the EVM's relative pricing: state
// writes dominate, reads are mid-priced, arithmetic is cheap.
var gasCost = [opMax]uint64{
	OpStop: 0, OpPush: 3, OpPop: 2, OpDup: 3, OpSwap: 3,
	OpAdd: 3, OpSub: 3, OpMul: 5, OpDiv: 5, OpMod: 5,
	OpLt: 3, OpGt: 3, OpEq: 3, OpIsZero: 3, OpAnd: 3, OpOr: 3, OpNot: 3,
	OpJump: 8, OpJumpI: 10,
	OpCaller: 2, OpCallValue: 2, OpBalance: 100, OpSelfBalance: 5,
	OpSLoad: 200, OpSStore: 5000,
	OpCallDataSize: 2, OpCallData: 3,
	OpLog: 375, OpReturn: 0, OpRevert: 0,
}

// VM execution errors. ErrRevert and ErrOutOfGas mark failed-but-charged
// executions; the others indicate malformed code.
var (
	ErrOutOfGas      = errors.New("vm: out of gas")
	ErrRevert        = errors.New("vm: execution reverted")
	ErrStack         = errors.New("vm: stack underflow")
	ErrStackOverflow = errors.New("vm: stack overflow")
	ErrBadJump       = errors.New("vm: jump out of bounds")
	ErrBadOpcode     = errors.New("vm: unknown opcode")
	ErrTruncated     = errors.New("vm: truncated immediate")
)

const maxStack = 1024

// CallContext carries the environment of one contract execution.
type CallContext struct {
	// Contract is the executing contract's address (storage owner).
	Contract keys.Address
	// Caller is the transaction sender.
	Caller keys.Address
	// Value is the amount transferred with the call.
	Value uint64
	// Data is the call data, read as 8-byte words by OpCallData.
	Data []byte
	// GasLimit bounds execution.
	GasLimit uint64
}

// ExecResult reports a completed execution.
type ExecResult struct {
	// GasUsed is the gas consumed (== GasLimit on ErrOutOfGas).
	GasUsed uint64
	// Return is the value left by OpReturn (0 otherwise).
	Return uint64
	// Logs collects OpLog emissions in order.
	Logs []uint64
}

// Execute runs code against state under ctx. State mutations are applied
// directly; callers snapshot beforehand (State.Copy is O(1)) and discard
// on error — exactly what applyTx does.
func Execute(state *State, code []byte, ctx CallContext) (ExecResult, error) {
	var (
		res   ExecResult
		stack = make([]uint64, 0, 32)
		pc    int
	)
	useGas := func(g uint64) bool {
		if res.GasUsed+g > ctx.GasLimit {
			res.GasUsed = ctx.GasLimit
			return false
		}
		res.GasUsed += g
		return true
	}
	pop := func() (uint64, bool) {
		if len(stack) == 0 {
			return 0, false
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, true
	}
	push := func(v uint64) bool {
		if len(stack) >= maxStack {
			return false
		}
		stack = append(stack, v)
		return true
	}

	for pc < len(code) {
		op := code[pc]
		if op >= byte(opMax) {
			return res, fmt.Errorf("%w: 0x%02x at %d", ErrBadOpcode, op, pc)
		}
		if !useGas(gasCost[op]) {
			return res, ErrOutOfGas
		}
		pc++
		switch op {
		case OpStop:
			return res, nil
		case OpPush:
			if pc+8 > len(code) {
				return res, ErrTruncated
			}
			if !push(binary.BigEndian.Uint64(code[pc:])) {
				return res, ErrStackOverflow
			}
			pc += 8
		case OpPop:
			if _, ok := pop(); !ok {
				return res, ErrStack
			}
		case OpDup:
			if len(stack) == 0 {
				return res, ErrStack
			}
			if !push(stack[len(stack)-1]) {
				return res, ErrStackOverflow
			}
		case OpSwap:
			if len(stack) < 2 {
				return res, ErrStack
			}
			stack[len(stack)-1], stack[len(stack)-2] = stack[len(stack)-2], stack[len(stack)-1]
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLt, OpGt, OpEq, OpAnd, OpOr:
			b, ok1 := pop()
			a, ok2 := pop()
			if !ok1 || !ok2 {
				return res, ErrStack
			}
			var v uint64
			switch op {
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpMul:
				v = a * b
			case OpDiv:
				if b != 0 {
					v = a / b
				}
			case OpMod:
				if b != 0 {
					v = a % b
				}
			case OpLt:
				if a < b {
					v = 1
				}
			case OpGt:
				if a > b {
					v = 1
				}
			case OpEq:
				if a == b {
					v = 1
				}
			case OpAnd:
				v = a & b
			case OpOr:
				v = a | b
			}
			push(v)
		case OpIsZero, OpNot:
			a, ok := pop()
			if !ok {
				return res, ErrStack
			}
			if op == OpIsZero {
				var v uint64
				if a == 0 {
					v = 1
				}
				push(v)
			} else {
				push(^a)
			}
		case OpJump:
			dst, ok := pop()
			if !ok {
				return res, ErrStack
			}
			if dst > uint64(len(code)) {
				return res, ErrBadJump
			}
			pc = int(dst)
		case OpJumpI:
			cond, ok1 := pop()
			dst, ok2 := pop()
			if !ok1 || !ok2 {
				return res, ErrStack
			}
			if cond != 0 {
				if dst > uint64(len(code)) {
					return res, ErrBadJump
				}
				pc = int(dst)
			}
		case OpCaller:
			if !push(addrWord(ctx.Caller)) {
				return res, ErrStackOverflow
			}
		case OpCallValue:
			if !push(ctx.Value) {
				return res, ErrStackOverflow
			}
		case OpBalance:
			// Pops an address word; address words are only observable
			// inside a run via OpCaller, so the lookup resolves the
			// caller's or the contract's balance and 0 for anything else.
			w, ok := pop()
			if !ok {
				return res, ErrStack
			}
			var v uint64
			switch w {
			case addrWord(ctx.Caller):
				v = state.Balance(ctx.Caller)
			case addrWord(ctx.Contract):
				v = state.Balance(ctx.Contract)
			}
			push(v)
		case OpSelfBalance:
			if !push(state.Balance(ctx.Contract)) {
				return res, ErrStackOverflow
			}
		case OpSLoad:
			slot, ok := pop()
			if !ok {
				return res, ErrStack
			}
			push(state.GetStorage(ctx.Contract, slot))
		case OpSStore:
			val, ok1 := pop()
			slot, ok2 := pop()
			if !ok1 || !ok2 {
				return res, ErrStack
			}
			state.SetStorage(ctx.Contract, slot, val)
		case OpCallDataSize:
			if !push(uint64(len(ctx.Data))) {
				return res, ErrStackOverflow
			}
		case OpCallData:
			idx, ok := pop()
			if !ok {
				return res, ErrStack
			}
			off := idx * 8
			var v uint64
			if off+8 <= uint64(len(ctx.Data)) {
				v = binary.BigEndian.Uint64(ctx.Data[off:])
			}
			push(v)
		case OpLog:
			v, ok := pop()
			if !ok {
				return res, ErrStack
			}
			res.Logs = append(res.Logs, v)
		case OpReturn:
			v, ok := pop()
			if !ok {
				return res, ErrStack
			}
			res.Return = v
			return res, nil
		case OpRevert:
			return res, ErrRevert
		}
	}
	return res, nil
}

// addrWord folds an address into a stack word, the VM's address
// representation for OpCaller comparisons.
func addrWord(a keys.Address) uint64 {
	return binary.BigEndian.Uint64(a[:8])
}

// AddrWord exposes the address-to-word folding for tests and contract
// authors (e.g. storing an owner address with OpCaller/OpSStore).
func AddrWord(a keys.Address) uint64 { return addrWord(a) }

// Asm is a tiny helper for building bytecode in tests and examples:
// Asm(OpPush, 7, OpPush, 3, OpAdd) — integers after OpPush become 8-byte
// immediates.
func Asm(parts ...any) []byte {
	var out []byte
	for _, p := range parts {
		switch v := p.(type) {
		case byte:
			out = append(out, v)
		case int:
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			out = append(out, buf[:]...)
		case uint64:
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], v)
			out = append(out, buf[:]...)
		default:
			panic(fmt.Sprintf("account: Asm: unsupported operand %T", p))
		}
	}
	return out
}
