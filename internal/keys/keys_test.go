package keys

import (
	"testing"
)

func TestDeterministicStable(t *testing.T) {
	a := Deterministic("alice")
	b := Deterministic("alice")
	if a.Address() != b.Address() {
		t.Fatal("same seed should derive same address")
	}
	if Deterministic("bob").Address() == a.Address() {
		t.Fatal("different seeds should derive different addresses")
	}
}

func TestSignVerify(t *testing.T) {
	kp := Deterministic("signer")
	msg := []byte("transfer 5 to bob")
	sig := kp.Sign(msg)
	if !Verify(kp.Pub, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Pub, []byte("transfer 500 to bob"), sig) {
		t.Fatal("signature verified for altered message")
	}
	other := Deterministic("other")
	if Verify(other.Pub, msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestVerifyMalformedInputs(t *testing.T) {
	kp := Deterministic("m")
	msg := []byte("msg")
	sig := kp.Sign(msg)
	if Verify(kp.Pub[:16], msg, sig) {
		t.Fatal("short public key should not verify")
	}
	if Verify(kp.Pub, msg, sig[:10]) {
		t.Fatal("short signature should not verify")
	}
	if Verify(nil, msg, nil) {
		t.Fatal("nil key/sig should not verify")
	}
}

func TestAddressOfMatchesKeyPair(t *testing.T) {
	kp := Deterministic("addr")
	if AddressOf(kp.Pub) != kp.Address() {
		t.Fatal("AddressOf(pub) != kp.Address()")
	}
}

func TestAddressBytesRoundTrip(t *testing.T) {
	a := Deterministic("rt").Address()
	back, err := AddressFromBytes(a.Bytes())
	if err != nil {
		t.Fatalf("AddressFromBytes: %v", err)
	}
	if back != a {
		t.Fatal("address byte round trip mismatch")
	}
	if _, err := AddressFromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("short byte slice should be rejected")
	}
}

func TestAddressBytesIsCopy(t *testing.T) {
	a := Deterministic("copy").Address()
	raw := a.Bytes()
	raw[0] ^= 0xFF
	if raw[0] == a[0] {
		t.Fatal("mutating Bytes() result should not affect the address")
	}
}

func TestZeroAddress(t *testing.T) {
	if !ZeroAddress.IsZero() {
		t.Fatal("ZeroAddress.IsZero() = false")
	}
	if Deterministic("nonzero").Address().IsZero() {
		t.Fatal("derived address should not be zero")
	}
}

func TestRing(t *testing.T) {
	const n = 16
	r := NewRing("net", n)
	if r.Len() != n {
		t.Fatalf("Len() = %d, want %d", r.Len(), n)
	}
	seen := make(map[Address]bool, n)
	for i := 0; i < n; i++ {
		addr := r.Addr(i)
		if seen[addr] {
			t.Fatalf("duplicate address at index %d", i)
		}
		seen[addr] = true
		if r.Index(addr) != i {
			t.Fatalf("Index(Addr(%d)) = %d", i, r.Index(addr))
		}
		if r.Pair(i).Address() != addr {
			t.Fatalf("Pair(%d) address mismatch", i)
		}
	}
	if r.Index(Deterministic("stranger").Address()) != -1 {
		t.Fatal("foreign address should have index -1")
	}
}

func TestRingReproducible(t *testing.T) {
	a := NewRing("family", 4)
	b := NewRing("family", 4)
	for i := 0; i < 4; i++ {
		if a.Addr(i) != b.Addr(i) {
			t.Fatalf("ring not reproducible at index %d", i)
		}
	}
	c := NewRing("otherfamily", 4)
	if a.Addr(0) == c.Addr(0) {
		t.Fatal("different families should not share identities")
	}
}

func TestAddressesFreshSlice(t *testing.T) {
	r := NewRing("addrs", 3)
	addrs := r.Addresses()
	if len(addrs) != 3 {
		t.Fatalf("Addresses() length = %d", len(addrs))
	}
	addrs[0] = Address{}
	if r.Addr(0).IsZero() {
		t.Fatal("mutating Addresses() result must not affect the ring")
	}
}

func BenchmarkSign(b *testing.B) {
	kp := Deterministic("bench")
	msg := []byte("a 64-byte-ish payment message for signature benchmarking....")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kp.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	kp := Deterministic("bench")
	msg := []byte("a 64-byte-ish payment message for signature benchmarking....")
	sig := kp.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(kp.Pub, msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func TestVerifyBatch(t *testing.T) {
	msgs := make([][]byte, 40)
	jobs := make([]VerifyJob, 40)
	want := make([]bool, 40)
	for i := range jobs {
		kp := DeterministicN("batch", i)
		msgs[i] = []byte{byte(i), byte(i >> 8), 0xaa}
		sig := kp.Sign(msgs[i])
		jobs[i] = VerifyJob{Pub: kp.Pub, Msg: msgs[i], Sig: sig}
		want[i] = true
		switch i % 5 {
		case 1: // tampered signature
			jobs[i].Sig = append([]byte(nil), sig...)
			jobs[i].Sig[3] ^= 0x01
			want[i] = false
		case 2: // wrong key
			jobs[i].Pub = DeterministicN("batch", i+1).Pub
			want[i] = false
		case 3: // malformed sizes must not panic the pool
			jobs[i].Sig = sig[:10]
			want[i] = false
		}
	}
	for _, workers := range []int{0, 1, 3, 64} {
		got := VerifyBatch(jobs, workers)
		if len(got) != len(jobs) {
			t.Fatalf("workers=%d: %d verdicts for %d jobs", workers, len(got), len(jobs))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d job %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
	if out := VerifyBatch(nil, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d verdicts", len(out))
	}
}
